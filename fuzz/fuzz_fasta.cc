/**
 * @file
 * Fuzz harness for the incremental FASTA parser (seq::FastaStream),
 * which reads user-supplied workload files in dphls_align and the
 * examples. Malformed input must surface as an exception (the parser
 * throws on grammar violations), never as a memory error; records
 * that do parse are additionally pushed through the DNA/protein
 * alphabet decoders, which must reject out-of-alphabet residues
 * without crashing.
 */

#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "seq/alphabet.hh"
#include "seq/fasta.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    std::istringstream in(
        std::string(reinterpret_cast<const char *>(data), size));
    std::vector<dphls::seq::FastaRecord> records;
    try {
        dphls::seq::FastaStream stream(in);
        dphls::seq::FastaRecord rec;
        while (stream.next(rec))
            records.push_back(rec);
    } catch (const std::exception &) {
        return 0; // malformed FASTA: rejected, not crashed
    }
    try {
        dphls::seq::toDna(records);
    } catch (const std::exception &) {
    }
    try {
        dphls::seq::toProtein(records);
    } catch (const std::exception &) {
    }
    return 0;
}
