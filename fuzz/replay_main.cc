/**
 * @file
 * Standalone driver for the fuzz harnesses: links against any
 * fuzz_*.cc (each defines LLVMFuzzerTestOneInput) in place of
 * libFuzzer, so corpus replay works on every compiler — gcc has no
 * -fsanitize=fuzzer — and fuzz/regressions/ runs as an ordinary CTest
 * case in every build.
 *
 * Usage: <harness>_replay [--mutate=N] <file-or-dir>...
 *
 * Every named file (and every regular file under every named
 * directory) is fed to the harness once. With --mutate=N, each input
 * additionally seeds N deterministic mutants (byte flips, truncation,
 * extension, duplication) from a PRNG keyed on the input bytes — a
 * poor man's fuzz session with reproducible results, used for local
 * smoke runs under ASan/UBSan where libFuzzer is unavailable.
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size);

namespace {

namespace fs = std::filesystem;

uint64_t
nextRand(uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

std::vector<uint8_t>
readAll(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
runOne(const std::vector<uint8_t> &bytes)
{
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

/** Deterministic mutant @p round of @p seed (identity on no bytes). */
std::vector<uint8_t>
mutate(const std::vector<uint8_t> &seed, uint64_t round)
{
    uint64_t state = 0x9E3779B97F4A7C15ull ^ (round + 1);
    for (const uint8_t b : seed)
        state = (state ^ b) * 0x100000001B3ull;
    std::vector<uint8_t> m = seed;
    const uint64_t edits = 1 + nextRand(state) % 4;
    for (uint64_t e = 0; e < edits; e++) {
        switch (nextRand(state) % 5) {
          case 0: // flip one bit
            if (!m.empty())
                m[nextRand(state) % m.size()] ^=
                    static_cast<uint8_t>(1u << (nextRand(state) % 8));
            break;
          case 1: // overwrite one byte
            if (!m.empty())
                m[nextRand(state) % m.size()] =
                    static_cast<uint8_t>(nextRand(state));
            break;
          case 2: // truncate
            if (!m.empty())
                m.resize(nextRand(state) % m.size());
            break;
          case 3: { // extend with random bytes
            const uint64_t add = 1 + nextRand(state) % 64;
            for (uint64_t i = 0; i < add; i++)
                m.push_back(static_cast<uint8_t>(nextRand(state)));
            break;
          }
          case 4: { // duplicate a slice onto the end
            if (!m.empty()) {
                const size_t at = nextRand(state) % m.size();
                const size_t len =
                    1 + nextRand(state) % (m.size() - at);
                m.insert(m.end(), m.begin() + static_cast<long>(at),
                         m.begin() + static_cast<long>(at + len));
            }
            break;
          }
        }
    }
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t mutate_rounds = 0;
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--mutate=", 0) == 0) {
            mutate_rounds = std::strtoull(arg.c_str() + 9, nullptr, 10);
            continue;
        }
        std::error_code ec;
        if (fs::is_directory(arg, ec)) {
            for (const auto &entry : fs::directory_iterator(arg)) {
                if (entry.is_regular_file())
                    inputs.push_back(entry.path());
            }
        } else if (fs::is_regular_file(arg, ec)) {
            inputs.push_back(arg);
        } else {
            std::fprintf(stderr, "replay: skipping %s (not found)\n",
                         arg.c_str());
        }
    }
    uint64_t executed = 0;
    for (const fs::path &path : inputs) {
        const std::vector<uint8_t> bytes = readAll(path);
        runOne(bytes);
        executed++;
        for (uint64_t r = 0; r < mutate_rounds; r++) {
            runOne(mutate(bytes, r));
            executed++;
        }
    }
    std::printf("replay: %llu inputs executed (%zu corpus files)\n",
                static_cast<unsigned long long>(executed),
                inputs.size());
    return 0;
}
