/**
 * @file
 * Fuzz harness for the dphls_serve wire-protocol decoders — the
 * daemon's largest untrusted-input surface. The first input byte
 * selects a decoder (so one corpus covers them all and libFuzzer can
 * learn per-decoder dictionaries); the rest is the frame payload.
 *
 * Contract under fuzz: a decoder either returns a value or throws
 * ProtocolError. Any other escape — ASan/UBSan report, crash,
 * uncaught std::exception, unbounded allocation — is a bug. Decoders
 * that succeed are round-tripped through their encoder to pin the
 * codec against silent asymmetry.
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "serve/protocol.hh"
#include "serve/socket_io.hh"

using namespace dphls::serve;

namespace {

Frame
frameOf(const uint8_t *data, size_t size)
{
    Frame f;
    f.payload.assign(data, data + size);
    return f;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    if (size == 0)
        return 0;
    const uint8_t which = data[0] % 7;
    data++;
    size--;
    try {
        switch (which) {
          case 0: {
            // Raw 20-byte frame header (magic/version/length attacks).
            if (size >= kFrameHeaderBytes) {
                FrameHeader hdr;
                std::string err;
                parseFrameHeader(data, hdr, &err);
            }
            break;
          }
          case 1:
            decodeHello(frameOf(data, size));
            break;
          case 2:
            decodeHelloOk(frameOf(data, size));
            break;
          case 3: {
            const AlignRequest req =
                decodeAlignRequest(frameOf(data, size));
            // Round trip: what decoded must re-encode and re-decode
            // to the same shape.
            const std::vector<uint8_t> bytes = encodeAlignRequest(req);
            const AlignRequest again =
                decodeAlignRequest(frameOf(bytes.data(), bytes.size()));
            if (again.jobs.size() != req.jobs.size() ||
                again.tenant != req.tenant)
                std::abort();
            break;
          }
          case 4:
            decodeAlignResponse(frameOf(data, size));
            break;
          case 5: {
            const RejectInfo info = decodeReject(frameOf(data, size));
            const std::vector<uint8_t> bytes = encodeReject(info);
            const RejectInfo again =
                decodeReject(frameOf(bytes.data(), bytes.size()));
            if (again.message != info.message ||
                again.reason != info.reason)
                std::abort();
            break;
          }
          case 6:
            decodeStats(frameOf(data, size));
            break;
        }
    } catch (const ProtocolError &) {
        // Expected rejection of malformed input.
    }
    return 0;
}
