/**
 * @file
 * Fuzz harness for the squiggle chunk-stream decoder
 * (workloads::decodeChunkStream), which parses untrusted byte streams
 * of framed signal chunks for the streaming basecaller. Malformed
 * input must surface as ChunkFormatError (truncation, bad magic,
 * reserved flags, oversized counts), never as an over-read or crash.
 * Streams that do decode are additionally re-encoded — the round trip
 * must be byte-identical, so the decoder cannot silently normalize —
 * and pushed through groupChunksByRead, which must preserve every
 * chunk across its grouping.
 */

#include <cstddef>
#include <cstdint>
#include <exception>
#include <vector>

#include "workloads/chunk_io.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    std::vector<dphls::workloads::SignalChunk> chunks;
    try {
        chunks = dphls::workloads::decodeChunkStream(data, size);
    } catch (const dphls::workloads::ChunkFormatError &) {
        return 0; // malformed stream: rejected, not crashed
    }
    // Decoded streams must re-encode to the exact input bytes.
    const auto bytes = dphls::workloads::encodeChunkStream(chunks);
    if (bytes.size() != size)
        __builtin_trap();
    for (size_t i = 0; i < size; i++) {
        if (bytes[i] != data[i])
            __builtin_trap();
    }
    // Grouping must keep every chunk exactly once.
    size_t grouped = 0;
    for (const auto &[id, group] :
         dphls::workloads::groupChunksByRead(chunks))
        grouped += group.size();
    if (grouped != chunks.size())
        __builtin_trap();
    return 0;
}
