/**
 * @file
 * Fuzz harness for the CIGAR run-length codec (count << 2 | op wire
 * records). Input bytes are reinterpreted as little-endian u32 run
 * words and decoded; a successful decode is re-encoded and decoded
 * again, and the expanded op lists must match — encodeRuns emits the
 * canonical (merged-run) form, so decode ∘ encode ∘ decode must be
 * identity on the op list even when the input runs were non-canonical
 * (adjacent same-op runs, zero-count words).
 */

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "serve/protocol.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    std::vector<uint32_t> runs;
    runs.reserve(size / 4);
    for (size_t i = 0; i + 4 <= size; i += 4) {
        uint32_t v = 0;
        for (int b = 0; b < 4; b++)
            v |= static_cast<uint32_t>(data[i + static_cast<size_t>(b)])
                 << (8 * b);
        runs.push_back(v);
    }
    try {
        const std::vector<dphls::core::AlnOp> ops =
            dphls::serve::decodeRuns(runs);
        const std::vector<uint32_t> canon =
            dphls::serve::encodeRuns(ops);
        if (dphls::serve::decodeRuns(canon) != ops)
            std::abort();
        // Canonical form never has more words than the input.
        if (canon.size() > runs.size())
            std::abort();
    } catch (const dphls::serve::ProtocolError &) {
        // Expected rejection: bad op code or over-limit expansion.
    }
    return 0;
}
