#include "model/frequency_model.hh"

namespace dphls::model {

double
frequencyMhz(const core::PeProfile &pe)
{
    // Discrete tiers matching the achieved frequencies of Table 2. The
    // drivers are dependent logic levels through one PE (the wavefront
    // loop's recurrence limits retiming across cells).
    const int levels = pe.critPathLevels;
    if (levels <= 4)
        return 250.0;
    if (levels <= 6)
        return 200.0;
    if (levels <= 8)
        return 166.7;
    if (levels <= 10)
        return 150.0;
    return 125.0;
}

} // namespace dphls::model
