/**
 * @file
 * Analytical FPGA resource model for DP-HLS kernel configurations.
 *
 * Substitutes for Vitis HLS synthesis + Vivado place-and-route reports.
 * The model maps the structural drivers of the generated systolic array
 * to resource counts:
 *
 *  - LUT/FF scale with the per-PE datapath (adders, comparators and muxes
 *    times operand width) and therefore linearly with NPE (Fig. 3B/E);
 *  - DSPs come from per-PE multipliers (DTW squaring, profile mat-vec
 *    products) plus a small fixed count for traceback-address
 *    pre-computation outside the PEs (Fig. 3B: flat for kernel #1,
 *    scaling for #9);
 *  - BRAM is dominated by the per-PE traceback banks (depth = chunks x
 *    wavefronts, width = pointer bits), plus score/init/preserved-row
 *    buffers and substitution tables; at high NPE the per-bank depth
 *    falls under the LUTRAM threshold and the HLS compiler moves banks
 *    out of BRAM (the Fig. 3 NPE=64 BRAM drop);
 *  - every parallel block replicates the whole structure, so utilization
 *    is linear in NB (Fig. 3C/F).
 *
 * Constants are calibrated against Table 2 (32-PE single blocks on the
 * XCVU9P); EXPERIMENTS.md records modeled vs. paper values per kernel.
 */

#ifndef DPHLS_MODEL_RESOURCE_MODEL_HH
#define DPHLS_MODEL_RESOURCE_MODEL_HH

#include "core/types.hh"
#include "model/device.hh"

namespace dphls::model {

/** Everything the hardware model needs to know about one kernel. */
struct KernelHwDesc
{
    core::PeProfile pe;
    int nLayers = 1;
    int tbPtrBits = 2;
    int charBits = 2;
    bool hasTraceback = true;
    bool banded = false;
    int maxQueryLength = 256;
    int maxReferenceLength = 256;
    int dspFixed = 1; //!< traceback-address precompute DSPs per block
};

/** Build the descriptor for a kernel specification type. */
template <typename K>
KernelHwDesc
kernelHwDesc(int max_query = 256, int max_ref = 256, int dsp_fixed = 1)
{
    KernelHwDesc d;
    d.pe = K::peProfile();
    d.nLayers = K::nLayers;
    d.tbPtrBits = K::tbPtrBits;
    d.charBits = 2; // overridden by callers for non-DNA alphabets
    d.hasTraceback = K::hasTraceback;
    d.banded = K::banded;
    d.maxQueryLength = max_query;
    d.maxReferenceLength = max_ref;
    d.dspFixed = dsp_fixed;
    return d;
}

/** Resources of a single NPE-wide systolic block. */
DeviceResources estimateBlock(const KernelHwDesc &desc, int npe);

/** Resources of one kernel: NB identical blocks plus the shared arbiter. */
DeviceResources estimateKernel(const KernelHwDesc &desc, int npe, int nb);

/**
 * Resources of a full design: NK linked kernels plus the static AWS F1
 * shell (DMA, PCIe, clocking).
 */
DeviceResources estimateDesign(const KernelHwDesc &desc, int npe, int nb,
                               int nk);

/**
 * Search the (NB, NK) space for the largest parallel configuration that
 * fits the device at a given NPE; returns alignments-in-flight NB*NK.
 */
struct ParallelFit
{
    int nb = 1;
    int nk = 1;
};
ParallelFit maxParallelFit(const KernelHwDesc &desc, int npe,
                           const FpgaDevice &device, int max_nk = 8);

} // namespace dphls::model

#endif // DPHLS_MODEL_RESOURCE_MODEL_HH
