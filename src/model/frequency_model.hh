/**
 * @file
 * Achieved-clock-frequency model.
 *
 * The paper sets a 250 MHz synthesis target; kernels with deeper per-PE
 * combinational paths close timing at lower frequencies (Table 2 spans
 * 125-250 MHz and Section 7.1 attributes the drops to scoring-equation
 * complexity). The model maps the kernel's critical-path depth to the
 * discrete frequency tiers observed in the paper.
 */

#ifndef DPHLS_MODEL_FREQUENCY_MODEL_HH
#define DPHLS_MODEL_FREQUENCY_MODEL_HH

#include "core/types.hh"

namespace dphls::model {

/** Synthesis target frequency (MHz), as in Section 6.2. */
constexpr double targetFrequencyMhz = 250.0;

/** Achieved frequency (MHz) for a PE with the given critical path. */
double frequencyMhz(const core::PeProfile &pe);

/** Achieved frequency for a kernel specification type. */
template <typename K>
double
kernelFrequencyMhz()
{
    return frequencyMhz(K::peProfile());
}

} // namespace dphls::model

#endif // DPHLS_MODEL_FREQUENCY_MODEL_HH
