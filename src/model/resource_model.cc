#include "model/resource_model.hh"

#include <algorithm>
#include <cmath>

namespace dphls::model {

namespace {

// Calibration constants (fit against Table 2, 32-PE blocks).
constexpr double lutPerAdderBit = 2.0;   // carry-chain adder/subtractor
constexpr double lutPerCmpMuxBit = 3.0;  // comparator + 2:1 select
constexpr double lutPeBase = 58.0;       // control, char regs, band checks
constexpr double lutPerTbBit = 8.0;      // pointer formation and routing
constexpr double ffLutFraction = 0.5;    // pipeline regs track datapath LUTs
constexpr double ffPerLayerBit = 2.0;    // wavefront buffers per layer
constexpr double ffPeBase = 120.0;
constexpr double bram18Bits = 18432.0;
constexpr double tbBankSafety = 1.05;    // HLS pads banks beyond minimum
constexpr int lutramDepthLimit = 1536;   // banks shallower than this go to
                                         // LUTRAM at high NPE (Fig. 3 note)
constexpr double lutPerLutramBit = 0.04; // 64-bit deep LUTRAM cells
constexpr double arbiterLut = 900.0;     // per-kernel arbiter + AXI plumbing
constexpr double arbiterFf = 1400.0;
constexpr double shellLutPct = 0.0;      // shell reported separately by AWS

/** DSP slices needed for one multiplier of the given operand width. */
double
dspPerMult(int width)
{
    if (width <= 18)
        return 1.0;
    if (width <= 27)
        return 2.0;
    return 3.0;
}

/** Per-PE traceback bank depth: chunks x wavefronts per chunk. */
double
tbBankDepth(const KernelHwDesc &desc, int npe)
{
    const double chunks =
        std::ceil(static_cast<double>(desc.maxQueryLength) / npe);
    double wavefronts = desc.maxReferenceLength + npe;
    if (desc.banded) {
        // Banded kernels size banks by the band window, not the full row.
        wavefronts = std::min<double>(wavefronts, 2.0 * 64 + 2.0 * npe);
    }
    return chunks * wavefronts * tbBankSafety;
}

/** Round pointer bits up to a power of two (memory port packing). */
int
pow2Bits(int bits)
{
    int b = 1;
    while (b < bits)
        b *= 2;
    return b;
}

} // namespace

DeviceResources
estimateBlock(const KernelHwDesc &desc, int npe)
{
    const core::PeProfile &pe = desc.pe;
    DeviceResources r;

    // --- per-PE datapath -------------------------------------------------
    double lut_pe = lutPerAdderBit * pe.addSub * pe.scoreWidth +
                    lutPerCmpMuxBit * pe.maxMin2 * pe.scoreWidth +
                    lutPerTbBit * desc.tbPtrBits + pe.lutExtra + lutPeBase;
    double ff_pe = ffLutFraction * lut_pe +
                   ffPerLayerBit * desc.nLayers * pe.scoreWidth +
                   2.0 * desc.charBits + ffPeBase;
    double dsp_pe = pe.mult * dspPerMult(pe.multWidth);

    // --- traceback memory banks (Section 5.2) ----------------------------
    double bram = 0;
    double lutram_lut = 0;
    if (desc.hasTraceback) {
        const double depth = tbBankDepth(desc, npe);
        const double bits = depth * pow2Bits(desc.tbPtrBits);
        if (depth <= lutramDepthLimit) {
            // The HLS compiler converts shallow banks to LUTRAM to cut
            // memory latency (observed at NPE=64 in Fig. 3).
            lutram_lut = bits * lutPerLutramBit;
        } else if (bits <= bram18Bits / 4) {
            // Shallow banks pack pairwise into single BRAM18s.
            bram = 0.5;
        } else {
            // Each bank needs its own read+write porting: BRAM36 units.
            bram = std::ceil(bits / bram18Bits);
        }
    }

    // --- per-block shared buffers ----------------------------------------
    // Init row/column, preserved row and score buffers per layer, plus the
    // local query/reference buffers sized by MAX lengths.
    const double score_buf_bits =
        3.0 * desc.nLayers * desc.maxReferenceLength * pe.scoreWidth;
    const double seq_buf_bits =
        desc.charBits *
        (desc.maxQueryLength + 2.0 * desc.maxReferenceLength);
    const double table_bits = pe.tableEntries * 8.0;
    double block_bram =
        std::ceil(score_buf_bits / bram18Bits) * 0.5 +
        std::ceil(seq_buf_bits / bram18Bits) * 0.5;
    if (pe.tableEntries >= 64) {
        // Substitution tables are replicated per PE pair for single-cycle
        // lookups (what drives kernel #15's BRAM in Table 2).
        block_bram += std::ceil(table_bits / bram18Bits) * 0.5 *
                      std::ceil(npe / 2.0);
    }

    r.lut = npe * (lut_pe + lutram_lut) + 500.0; // block control overhead
    r.ff = npe * ff_pe + 800.0;
    r.dsp = npe * dsp_pe + desc.dspFixed;
    r.bram36 = npe * bram + block_bram + 8.0; // host I/O buffering
    return r;
}

DeviceResources
estimateKernel(const KernelHwDesc &desc, int npe, int nb)
{
    DeviceResources block = estimateBlock(desc, npe);
    DeviceResources r = block * static_cast<double>(nb);
    r.lut += arbiterLut;
    r.ff += arbiterFf;
    return r;
}

DeviceResources
estimateDesign(const KernelHwDesc &desc, int npe, int nb, int nk)
{
    DeviceResources kernel = estimateKernel(desc, npe, nb);
    DeviceResources r = kernel * static_cast<double>(nk);
    (void)shellLutPct;
    // AWS F1 shell: DMA engines, PCIe and clocking on the static region.
    r.lut += 140000.0;
    r.ff += 180000.0;
    r.bram36 += 200.0;
    r.dsp += 12.0;
    return r;
}

ParallelFit
maxParallelFit(const KernelHwDesc &desc, int npe, const FpgaDevice &device,
               int max_nk)
{
    ParallelFit best;
    long best_blocks = 0;
    for (int nk = 1; nk <= max_nk; nk++) {
        for (int nb = 1; nb <= 64; nb++) {
            if (!device.fits(estimateDesign(desc, npe, nb, nk)))
                break;
            const long blocks = static_cast<long>(nb) * nk;
            if (blocks > best_blocks) {
                best_blocks = blocks;
                best = ParallelFit{nb, nk};
            }
        }
    }
    return best;
}

} // namespace dphls::model
