#include "model/device.hh"

namespace dphls::model {

FpgaDevice
FpgaDevice::xcvu9p()
{
    FpgaDevice d;
    d.name = "XCVU9P-FLGB2104-2-I (AWS EC2 F1)";
    d.total.lut = 1182240;
    d.total.ff = 2364480;
    d.total.bram36 = 2160;
    d.total.dsp = 6840;
    return d;
}

Utilization
FpgaDevice::utilization(const DeviceResources &used) const
{
    Utilization u;
    u.lutPct = 100.0 * used.lut / total.lut;
    u.ffPct = 100.0 * used.ff / total.ff;
    u.bramPct = 100.0 * used.bram36 / total.bram36;
    u.dspPct = 100.0 * used.dsp / total.dsp;
    return u;
}

bool
FpgaDevice::fits(const DeviceResources &used) const
{
    return used.lut <= total.lut && used.ff <= total.ff &&
           used.bram36 <= total.bram36 && used.dsp <= total.dsp;
}

} // namespace dphls::model
