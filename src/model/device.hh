/**
 * @file
 * FPGA device resource tables.
 *
 * The paper reports utilization as a percentage of the AWS EC2 F1 FPGA
 * (XCVU9P-FLGB2104-2-I); the same totals are used here to convert modeled
 * absolute resource counts into the percentages of Table 2 and Figs. 3-5.
 */

#ifndef DPHLS_MODEL_DEVICE_HH
#define DPHLS_MODEL_DEVICE_HH

#include <string>

namespace dphls::model {

/** Absolute resource counts (LUTs, flip-flops, BRAM36 tiles, DSP slices). */
struct DeviceResources
{
    double lut = 0;
    double ff = 0;
    double bram36 = 0;
    double dsp = 0;

    DeviceResources &
    operator+=(const DeviceResources &o)
    {
        lut += o.lut;
        ff += o.ff;
        bram36 += o.bram36;
        dsp += o.dsp;
        return *this;
    }

    friend DeviceResources
    operator+(DeviceResources a, const DeviceResources &b)
    {
        a += b;
        return a;
    }

    friend DeviceResources
    operator*(DeviceResources a, double k)
    {
        a.lut *= k;
        a.ff *= k;
        a.bram36 *= k;
        a.dsp *= k;
        return a;
    }
};

/** Utilization as a percentage of a device's totals. */
struct Utilization
{
    double lutPct = 0;
    double ffPct = 0;
    double bramPct = 0;
    double dspPct = 0;
};

/** An FPGA device with its total resources. */
struct FpgaDevice
{
    std::string name;
    DeviceResources total;

    /** The AWS EC2 F1 device used throughout the paper. */
    static FpgaDevice xcvu9p();

    Utilization utilization(const DeviceResources &used) const;

    /** True if the given design fits on the device. */
    bool fits(const DeviceResources &used) const;
};

} // namespace dphls::model

#endif // DPHLS_MODEL_DEVICE_HH
