#include "reference/classic.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace dphls::ref::classic {

namespace {

constexpr int64_t negInf = std::numeric_limits<int64_t>::min() / 4;

/** Two rolling rows of int64 scores. */
using Row = std::vector<int64_t>;

} // namespace

int64_t
nwScore(const seq::DnaSequence &q, const seq::DnaSequence &r, int match,
        int mismatch, int gap)
{
    const int n = q.length(), m = r.length();
    Row prev(static_cast<size_t>(m + 1)), cur(static_cast<size_t>(m + 1));
    for (int j = 0; j <= m; j++)
        prev[static_cast<size_t>(j)] = static_cast<int64_t>(gap) * j;
    for (int i = 1; i <= n; i++) {
        cur[0] = static_cast<int64_t>(gap) * i;
        for (int j = 1; j <= m; j++) {
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            cur[static_cast<size_t>(j)] = std::max({
                prev[static_cast<size_t>(j - 1)] + s,
                prev[static_cast<size_t>(j)] + gap,
                cur[static_cast<size_t>(j - 1)] + gap});
        }
        std::swap(prev, cur);
    }
    return prev[static_cast<size_t>(m)];
}

int64_t
gotohScore(const seq::DnaSequence &q, const seq::DnaSequence &r, int match,
           int mismatch, int open, int extend)
{
    const int n = q.length(), m = r.length();
    Row h_prev(static_cast<size_t>(m + 1)), h_cur(static_cast<size_t>(m + 1));
    Row ix_prev(static_cast<size_t>(m + 1)), ix_cur(static_cast<size_t>(m + 1));
    Row iy_prev(static_cast<size_t>(m + 1)), iy_cur(static_cast<size_t>(m + 1));

    h_prev[0] = 0;
    ix_prev[0] = iy_prev[0] = negInf;
    for (int j = 1; j <= m; j++) {
        const int64_t g = -(open + static_cast<int64_t>(extend) * (j - 1));
        h_prev[static_cast<size_t>(j)] = g;
        iy_prev[static_cast<size_t>(j)] = g;
        ix_prev[static_cast<size_t>(j)] = negInf;
    }
    for (int i = 1; i <= n; i++) {
        const int64_t g = -(open + static_cast<int64_t>(extend) * (i - 1));
        h_cur[0] = g;
        ix_cur[0] = g;
        iy_cur[0] = negInf;
        for (int j = 1; j <= m; j++) {
            const size_t js = static_cast<size_t>(j);
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            ix_cur[js] = std::max(h_prev[js] - open, ix_prev[js] - extend);
            iy_cur[js] =
                std::max(h_cur[js - 1] - open, iy_cur[js - 1] - extend);
            h_cur[js] = std::max(
                {h_prev[js - 1] + s, ix_cur[js], iy_cur[js]});
        }
        std::swap(h_prev, h_cur);
        std::swap(ix_prev, ix_cur);
        std::swap(iy_prev, iy_cur);
    }
    return h_prev[static_cast<size_t>(m)];
}

int64_t
swScore(const seq::DnaSequence &q, const seq::DnaSequence &r, int match,
        int mismatch, int gap)
{
    const int n = q.length(), m = r.length();
    Row prev(static_cast<size_t>(m + 1), 0), cur(static_cast<size_t>(m + 1), 0);
    int64_t best = 0;
    for (int i = 1; i <= n; i++) {
        cur[0] = 0;
        for (int j = 1; j <= m; j++) {
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            int64_t v = std::max({
                prev[static_cast<size_t>(j - 1)] + s,
                prev[static_cast<size_t>(j)] + gap,
                cur[static_cast<size_t>(j - 1)] + gap,
                int64_t{0}});
            cur[static_cast<size_t>(j)] = v;
            best = std::max(best, v);
        }
        std::swap(prev, cur);
    }
    return best;
}

int64_t
swgScore(const seq::DnaSequence &q, const seq::DnaSequence &r, int match,
         int mismatch, int open, int extend)
{
    const int n = q.length(), m = r.length();
    Row h_prev(static_cast<size_t>(m + 1), 0), h_cur(static_cast<size_t>(m + 1), 0);
    Row ix_prev(static_cast<size_t>(m + 1), negInf),
        ix_cur(static_cast<size_t>(m + 1), negInf);
    Row iy_prev(static_cast<size_t>(m + 1), negInf),
        iy_cur(static_cast<size_t>(m + 1), negInf);
    int64_t best = 0;
    for (int i = 1; i <= n; i++) {
        h_cur[0] = 0;
        ix_cur[0] = iy_cur[0] = negInf;
        for (int j = 1; j <= m; j++) {
            const size_t js = static_cast<size_t>(j);
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            ix_cur[js] = std::max(h_prev[js] - open, ix_prev[js] - extend);
            iy_cur[js] =
                std::max(h_cur[js - 1] - open, iy_cur[js - 1] - extend);
            int64_t v = std::max(
                {h_prev[js - 1] + s, ix_cur[js], iy_cur[js], int64_t{0}});
            h_cur[js] = v;
            best = std::max(best, v);
        }
        std::swap(h_prev, h_cur);
        std::swap(ix_prev, ix_cur);
        std::swap(iy_prev, iy_cur);
    }
    return best;
}

int64_t
twoPieceScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
              int match, int mismatch, int open1, int extend1, int open2,
              int extend2)
{
    const int n = q.length(), m = r.length();
    const size_t w = static_cast<size_t>(m + 1);
    Row h_prev(w), h_cur(w), a_prev(w), a_cur(w), b_prev(w), b_cur(w),
        c_prev(w), c_cur(w), d_prev(w), d_cur(w);

    auto gap1 = [&](int k) {
        return -(open1 + static_cast<int64_t>(extend1) * (k - 1));
    };
    auto gap2 = [&](int k) {
        return -(open2 + static_cast<int64_t>(extend2) * (k - 1));
    };

    h_prev[0] = 0;
    a_prev[0] = b_prev[0] = c_prev[0] = d_prev[0] = negInf;
    for (int j = 1; j <= m; j++) {
        h_prev[static_cast<size_t>(j)] = std::max(gap1(j), gap2(j));
        b_prev[static_cast<size_t>(j)] = gap1(j); // Iy
        d_prev[static_cast<size_t>(j)] = gap2(j); // I'y
        a_prev[static_cast<size_t>(j)] = c_prev[static_cast<size_t>(j)] =
            negInf;
    }
    for (int i = 1; i <= n; i++) {
        h_cur[0] = std::max(gap1(i), gap2(i));
        a_cur[0] = gap1(i); // Ix
        c_cur[0] = gap2(i); // I'x
        b_cur[0] = d_cur[0] = negInf;
        for (int j = 1; j <= m; j++) {
            const size_t js = static_cast<size_t>(j);
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            a_cur[js] = std::max(h_prev[js] - open1, a_prev[js] - extend1);
            b_cur[js] =
                std::max(h_cur[js - 1] - open1, b_cur[js - 1] - extend1);
            c_cur[js] = std::max(h_prev[js] - open2, c_prev[js] - extend2);
            d_cur[js] =
                std::max(h_cur[js - 1] - open2, d_cur[js - 1] - extend2);
            h_cur[js] = std::max({h_prev[js - 1] + s, a_cur[js], b_cur[js],
                                  c_cur[js], d_cur[js]});
        }
        std::swap(h_prev, h_cur);
        std::swap(a_prev, a_cur);
        std::swap(b_prev, b_cur);
        std::swap(c_prev, c_cur);
        std::swap(d_prev, d_cur);
    }
    return h_prev[static_cast<size_t>(m)];
}

int64_t
overlapScore(const seq::DnaSequence &q, const seq::DnaSequence &r, int match,
             int mismatch, int gap)
{
    const int n = q.length(), m = r.length();
    Row prev(static_cast<size_t>(m + 1), 0), cur(static_cast<size_t>(m + 1), 0);
    int64_t best = negInf;
    for (int i = 1; i <= n; i++) {
        cur[0] = 0;
        for (int j = 1; j <= m; j++) {
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            cur[static_cast<size_t>(j)] = std::max({
                prev[static_cast<size_t>(j - 1)] + s,
                prev[static_cast<size_t>(j)] + gap,
                cur[static_cast<size_t>(j - 1)] + gap});
        }
        // Right column is part of the overlap end region.
        best = std::max(best, cur[static_cast<size_t>(m)]);
        std::swap(prev, cur);
    }
    // Bottom row.
    for (int j = 1; j <= m; j++)
        best = std::max(best, prev[static_cast<size_t>(j)]);
    if (n == 0 || m == 0)
        return 0;
    return best;
}

int64_t
semiGlobalScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                int match, int mismatch, int gap)
{
    const int n = q.length(), m = r.length();
    Row prev(static_cast<size_t>(m + 1), 0), cur(static_cast<size_t>(m + 1));
    for (int i = 1; i <= n; i++) {
        cur[0] = static_cast<int64_t>(gap) * i;
        for (int j = 1; j <= m; j++) {
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            cur[static_cast<size_t>(j)] = std::max({
                prev[static_cast<size_t>(j - 1)] + s,
                prev[static_cast<size_t>(j)] + gap,
                cur[static_cast<size_t>(j - 1)] + gap});
        }
        std::swap(prev, cur);
    }
    int64_t best = negInf;
    for (int j = 1; j <= m; j++)
        best = std::max(best, prev[static_cast<size_t>(j)]);
    if (n == 0 || m == 0)
        return 0;
    return best;
}

int64_t
bandedNwScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
              int match, int mismatch, int gap, int band)
{
    const int n = q.length(), m = r.length();
    if (std::abs(n - m) > band)
        return negInf;
    Row prev(static_cast<size_t>(m + 1), negInf),
        cur(static_cast<size_t>(m + 1), negInf);
    for (int j = 0; j <= std::min(m, band); j++)
        prev[static_cast<size_t>(j)] = static_cast<int64_t>(gap) * j;
    for (int i = 1; i <= n; i++) {
        std::fill(cur.begin(), cur.end(), negInf);
        if (i <= band)
            cur[0] = static_cast<int64_t>(gap) * i;
        const int lo = std::max(1, i - band);
        const int hi = std::min(m, i + band);
        for (int j = lo; j <= hi; j++) {
            const int64_t s =
                q[i - 1] == r[j - 1] ? match : mismatch;
            int64_t v = prev[static_cast<size_t>(j - 1)] + s;
            if (prev[static_cast<size_t>(j)] > negInf / 2)
                v = std::max(v, prev[static_cast<size_t>(j)] + gap);
            if (cur[static_cast<size_t>(j - 1)] > negInf / 2)
                v = std::max(v, cur[static_cast<size_t>(j - 1)] + gap);
            cur[static_cast<size_t>(j)] = v;
        }
        std::swap(prev, cur);
    }
    return prev[static_cast<size_t>(m)];
}

double
dtwDistance(const seq::ComplexSequence &q, const seq::ComplexSequence &r)
{
    const int n = q.length(), m = r.length();
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> prev(static_cast<size_t>(m + 1), inf),
        cur(static_cast<size_t>(m + 1), inf);
    prev[0] = 0.0;
    for (int i = 1; i <= n; i++) {
        cur[0] = inf;
        for (int j = 1; j <= m; j++) {
            const double dr =
                q[i - 1].real.toDouble() - r[j - 1].real.toDouble();
            const double di =
                q[i - 1].imag.toDouble() - r[j - 1].imag.toDouble();
            const double d = dr * dr + di * di;
            cur[static_cast<size_t>(j)] =
                d + std::min({prev[static_cast<size_t>(j - 1)],
                              prev[static_cast<size_t>(j)],
                              cur[static_cast<size_t>(j - 1)]});
        }
        std::swap(prev, cur);
    }
    return prev[static_cast<size_t>(m)];
}

int64_t
sdtwDistance(const seq::SignalSequence &q, const seq::SignalSequence &r)
{
    const int n = q.length(), m = r.length();
    constexpr int64_t inf = std::numeric_limits<int64_t>::max() / 4;
    Row prev(static_cast<size_t>(m + 1), 0), cur(static_cast<size_t>(m + 1));
    for (int i = 1; i <= n; i++) {
        cur[0] = inf;
        for (int j = 1; j <= m; j++) {
            const int64_t d = std::abs(
                static_cast<int64_t>(q[i - 1].value) - r[j - 1].value);
            cur[static_cast<size_t>(j)] =
                d + std::min({prev[static_cast<size_t>(j - 1)],
                              prev[static_cast<size_t>(j)],
                              cur[static_cast<size_t>(j - 1)]});
        }
        std::swap(prev, cur);
    }
    int64_t best = inf;
    for (int j = 1; j <= m; j++)
        best = std::min(best, prev[static_cast<size_t>(j)]);
    return best;
}

double
viterbiLogProb(const seq::DnaSequence &q, const seq::DnaSequence &r,
               double delta, double epsilon, double p_match,
               double p_mismatch)
{
    const int n = q.length(), m = r.length();
    const double inf = -std::numeric_limits<double>::infinity();
    const double ld = std::log(delta);
    const double le = std::log(epsilon);
    const double l12d = std::log(1.0 - 2.0 * delta);
    const double l1e = std::log(1.0 - epsilon);
    const double lq = std::log(0.25);

    const size_t w = static_cast<size_t>(m + 1);
    std::vector<double> vm_prev(w, inf), vm_cur(w, inf);
    std::vector<double> vi_prev(w, inf), vi_cur(w, inf);
    std::vector<double> vj_prev(w, inf), vj_cur(w, inf);

    vm_prev[0] = 0.0;
    for (int j = 1; j <= m; j++)
        vj_prev[static_cast<size_t>(j)] = ld + le * (j - 1) + lq * j;
    for (int i = 1; i <= n; i++) {
        vm_cur[0] = vj_cur[0] = inf;
        vi_cur[0] = ld + le * (i - 1) + lq * i;
        for (int j = 1; j <= m; j++) {
            const size_t js = static_cast<size_t>(j);
            const double lp =
                std::log(q[i - 1] == r[j - 1] ? p_match : p_mismatch);
            vm_cur[js] = lp + std::max({l12d + vm_prev[js - 1],
                                        l1e + vi_prev[js - 1],
                                        l1e + vj_prev[js - 1]});
            vi_cur[js] =
                lq + std::max(ld + vm_prev[js], le + vi_prev[js]);
            vj_cur[js] =
                lq + std::max(ld + vm_cur[js - 1], le + vj_cur[js - 1]);
        }
        std::swap(vm_prev, vm_cur);
        std::swap(vi_prev, vi_cur);
        std::swap(vj_prev, vj_cur);
    }
    return vm_prev[static_cast<size_t>(m)];
}

int64_t
profileScore(const seq::ProfileSequence &q, const seq::ProfileSequence &r,
             const int8_t pair_score[5][5], int gap_scale)
{
    const int n = q.length(), m = r.length();
    auto sop = [&](const seq::ProfileColumn &a, const seq::ProfileColumn &b) {
        int64_t t = 0;
        for (int x = 0; x < 5; x++) {
            for (int y = 0; y < 5; y++) {
                t += static_cast<int64_t>(pair_score[x][y]) *
                     a.freq[static_cast<size_t>(x)] *
                     b.freq[static_cast<size_t>(y)];
            }
        }
        return t;
    };
    auto gap_col = [&](const seq::ProfileColumn &a) {
        int64_t t = 0;
        for (int x = 0; x < 5; x++) {
            t += static_cast<int64_t>(pair_score[x][4]) *
                 a.freq[static_cast<size_t>(x)];
        }
        return t * gap_scale;
    };

    Row prev(static_cast<size_t>(m + 1)), cur(static_cast<size_t>(m + 1));
    prev[0] = 0;
    for (int j = 1; j <= m; j++) {
        prev[static_cast<size_t>(j)] =
            static_cast<int64_t>(-2) * gap_scale * gap_scale * j;
    }
    for (int i = 1; i <= n; i++) {
        cur[0] = static_cast<int64_t>(-2) * gap_scale * gap_scale * i;
        for (int j = 1; j <= m; j++) {
            const size_t js = static_cast<size_t>(j);
            cur[js] = std::max(
                {prev[js - 1] + sop(q[i - 1], r[j - 1]),
                 prev[js] + gap_col(q[i - 1]),
                 cur[js - 1] + gap_col(r[j - 1])});
        }
        std::swap(prev, cur);
    }
    return prev[static_cast<size_t>(m)];
}

int64_t
proteinSwScore(const seq::ProteinSequence &q, const seq::ProteinSequence &r,
               const seq::ProteinMatrix &m, int gap)
{
    const int n = q.length(), mm = r.length();
    Row prev(static_cast<size_t>(mm + 1), 0), cur(static_cast<size_t>(mm + 1), 0);
    int64_t best = 0;
    for (int i = 1; i <= n; i++) {
        cur[0] = 0;
        for (int j = 1; j <= mm; j++) {
            const int64_t s = m(q[i - 1].code, r[j - 1].code);
            int64_t v = std::max({
                prev[static_cast<size_t>(j - 1)] + s,
                prev[static_cast<size_t>(j)] + gap,
                cur[static_cast<size_t>(j - 1)] + gap,
                int64_t{0}});
            cur[static_cast<size_t>(j)] = v;
            best = std::max(best, v);
        }
        std::swap(prev, cur);
    }
    return best;
}

} // namespace dphls::ref::classic
