/**
 * @file
 * Full-matrix reference executor for any DP-HLS kernel specification.
 *
 * This is the paper's "C/C++-simulation" golden model: it runs the same
 * kernel front-end (init, PE function, traceback FSM) through an obviously
 * correct row-major full-matrix evaluation, with none of the systolic
 * buffering. The systolic engine must agree with it bit-for-bit on score,
 * optimum cell and traceback path; the test suite enforces exactly that.
 */

#ifndef DPHLS_REFERENCE_MATRIX_ALIGNER_HH
#define DPHLS_REFERENCE_MATRIX_ALIGNER_HH

#include <cstdlib>
#include <vector>

#include "core/alignment.hh"
#include "core/kernel_concept.hh"
#include "core/traceback_walk.hh"
#include "core/types.hh"
#include "seq/alphabet.hh"

namespace dphls::ref {

/**
 * Row-major full-matrix aligner for kernel @p K. Supports banding (fixed
 * band of half-width `bandWidth` around the main diagonal) when the kernel
 * declares `banded`.
 */
template <core::KernelSpec K>
class MatrixAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;

    explicit MatrixAligner(typename K::Params params = K::defaultParams(),
                           int band_width = 64)
        : _params(params), _bandWidth(band_width)
    {}

    const typename K::Params &params() const { return _params; }
    int bandWidth() const { return _bandWidth; }

    /** True if cell (i, j) is inside the band (1-based coordinates). */
    bool
    inBand(int i, int j) const
    {
        if (!K::banded)
            return true;
        return std::abs(i - j) <= _bandWidth;
    }

    Result
    align(const seq::Sequence<CharT> &query,
          const seq::Sequence<CharT> &reference) const
    {
        const int qlen = query.length();
        const int rlen = reference.length();
        const int stride = rlen + 1;
        const auto worst =
            core::scoreSentinelWorst<ScoreT>(K::objective);

        // scores[layer][(i * stride) + j]
        std::vector<std::vector<ScoreT>> scores(
            nLayers,
            std::vector<ScoreT>(static_cast<size_t>((qlen + 1) * stride),
                                worst));
        std::vector<core::TbPtr> tbp(
            static_cast<size_t>((qlen + 1) * stride));

        // Initialization (paper front-end step 2).
        for (int l = 0; l < nLayers; l++) {
            scores[static_cast<size_t>(l)][0] =
                K::originScore(l, _params);
            for (int j = 1; j <= rlen; j++) {
                scores[static_cast<size_t>(l)][static_cast<size_t>(j)] =
                    K::initRowScore(j, l, _params);
            }
            for (int i = 1; i <= qlen; i++) {
                scores[static_cast<size_t>(l)]
                      [static_cast<size_t>(i * stride)] =
                    K::initColScore(i, l, _params);
            }
        }

        // Matrix fill in row-major order.
        core::PeIn<ScoreT, CharT, nLayers> in;
        for (int i = 1; i <= qlen; i++) {
            for (int j = 1; j <= rlen; j++) {
                if (!inBand(i, j))
                    continue;
                for (int l = 0; l < nLayers; l++) {
                    const auto &s = scores[static_cast<size_t>(l)];
                    const size_t up = static_cast<size_t>((i - 1) * stride + j);
                    const size_t left = static_cast<size_t>(i * stride + j - 1);
                    const size_t diag =
                        static_cast<size_t>((i - 1) * stride + j - 1);
                    in.up[static_cast<size_t>(l)] =
                        inBandOrInit(i - 1, j) ? s[up] : worst;
                    in.left[static_cast<size_t>(l)] =
                        inBandOrInit(i, j - 1) ? s[left] : worst;
                    in.diag[static_cast<size_t>(l)] =
                        inBandOrInit(i - 1, j - 1) ? s[diag] : worst;
                }
                in.qryVal = query[i - 1];
                in.refVal = reference[j - 1];
                in.row = i;
                in.col = j;
                const auto out = K::peFunc(in, _params);
                for (int l = 0; l < nLayers; l++) {
                    scores[static_cast<size_t>(l)]
                          [static_cast<size_t>(i * stride + j)] =
                        out.score[static_cast<size_t>(l)];
                }
                tbp[static_cast<size_t>(i * stride + j)] = out.tbPtr;
            }
        }

        // Locate the optimum per the traceback strategy. Tie-break:
        // lexicographically smallest (row, col) among equal scores, the
        // same canonical rule the systolic reduction implements.
        Result res;
        const auto &h = scores[0];
        auto consider = [&](int i, int j) {
            const ScoreT v = h[static_cast<size_t>(i * stride + j)];
            if (res.end == core::Coord{} ||
                core::isBetter(K::objective, v, res.score)) {
                res.score = v;
                res.end = core::Coord{i, j};
            }
        };
        const bool degenerate = qlen == 0 || rlen == 0;
        switch (K::alignKind) {
          case core::AlignmentKind::Global:
            consider(qlen, rlen);
            break;
          case core::AlignmentKind::Local:
            for (int i = 1; i <= qlen; i++) {
                for (int j = 1; j <= rlen; j++) {
                    if (inBand(i, j))
                        consider(i, j);
                }
            }
            break;
          case core::AlignmentKind::SemiGlobal:
            if (!degenerate) {
                for (int j = 1; j <= rlen; j++) {
                    if (inBand(qlen, j))
                        consider(qlen, j);
                }
            }
            break;
          case core::AlignmentKind::Overlap:
            // Eligible cells visited in (row, col) lexicographic order so
            // tie-breaking matches the systolic reduction exactly.
            if (!degenerate) {
                for (int i = 1; i < qlen; i++) {
                    if (inBand(i, rlen))
                        consider(i, rlen);
                }
                for (int j = 1; j <= rlen; j++) {
                    if (inBand(qlen, j))
                        consider(qlen, j);
                }
            }
            break;
        }

        // An end cell outside the band means no feasible alignment: report
        // the sentinel score without a traceback path, exactly like the
        // systolic engine.
        const bool feasible = inBand(res.end.row, res.end.col) ||
                              res.end.row == 0 || res.end.col == 0;
        if (K::hasTraceback && feasible) {
            auto walk = core::walkTraceback<K>(
                res.end, [&](int i, int j) {
                    return tbp[static_cast<size_t>(i * stride + j)];
                });
            res.ops = std::move(walk.ops);
            res.start = walk.start;
        } else {
            res.start = res.end;
        }
        return res;
    }

  private:
    /** Neighbor validity: init row/column cells are always available. */
    bool
    inBandOrInit(int i, int j) const
    {
        if (i == 0 || j == 0)
            return true;
        return inBand(i, j);
    }

    typename K::Params _params;
    int _bandWidth;
};

} // namespace dphls::ref

#endif // DPHLS_REFERENCE_MATRIX_ALIGNER_HH
