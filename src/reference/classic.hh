/**
 * @file
 * Independent textbook implementations of the 15 kernels' algorithms.
 *
 * These are deliberately written against the classic formulations
 * (Needleman-Wunsch 1970, Gotoh 1982, Smith-Waterman 1981, minimap2's
 * two-piece convex gap, DTW, pair-HMM Viterbi, sum-of-pairs profile
 * scoring) and share no code with the kernel specifications. They close
 * the verification triangle: kernel recurrences are validated against the
 * literature here, while the systolic engine is validated bit-for-bit
 * against the full-matrix executor of the same kernel spec.
 *
 * They also serve as the runnable CPU baseline bodies for Fig. 6A.
 */

#ifndef DPHLS_REFERENCE_CLASSIC_HH
#define DPHLS_REFERENCE_CLASSIC_HH

#include <cstdint>

#include "seq/alphabet.hh"
#include "seq/substitution_matrix.hh"

namespace dphls::ref::classic {

/** Needleman-Wunsch global alignment score (linear gap). */
int64_t nwScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                int match, int mismatch, int gap);

/** Gotoh global alignment score (affine gap; open = first gap char). */
int64_t gotohScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                   int match, int mismatch, int open, int extend);

/** Smith-Waterman local alignment score (linear gap). */
int64_t swScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                int match, int mismatch, int gap);

/** Smith-Waterman-Gotoh local alignment score (affine gap). */
int64_t swgScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                 int match, int mismatch, int open, int extend);

/** Global alignment with a two-piece (convex) gap cost, minimap2-style. */
int64_t twoPieceScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                      int match, int mismatch, int open1, int extend1,
                      int open2, int extend2);

/** Overlap alignment score: free leading/trailing gaps on both ends. */
int64_t overlapScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                     int match, int mismatch, int gap);

/** Semi-global score: query end-to-end against a reference infix. */
int64_t semiGlobalScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                        int match, int mismatch, int gap);

/** Banded Needleman-Wunsch (band half-width around the main diagonal). */
int64_t bandedNwScore(const seq::DnaSequence &q, const seq::DnaSequence &r,
                      int match, int mismatch, int gap, int band);

/** Classic DTW distance (squared Euclidean), computed in double. */
double dtwDistance(const seq::ComplexSequence &q,
                   const seq::ComplexSequence &r);

/** Semi-global DTW distance over integer signals (|q - r| cost). */
int64_t sdtwDistance(const seq::SignalSequence &q,
                     const seq::SignalSequence &r);

/**
 * Pair-HMM Viterbi log-probability of ending in the Match state,
 * computed in double with the same border convention as kernel #10.
 */
double viterbiLogProb(const seq::DnaSequence &q, const seq::DnaSequence &r,
                      double delta, double epsilon, double p_match,
                      double p_mismatch);

/** Global profile-profile alignment with sum-of-pairs scoring. */
int64_t profileScore(const seq::ProfileSequence &q,
                     const seq::ProfileSequence &r,
                     const int8_t pair_score[5][5], int gap_scale);

/** Smith-Waterman over proteins with a substitution matrix. */
int64_t proteinSwScore(const seq::ProteinSequence &q,
                       const seq::ProteinSequence &r,
                       const seq::ProteinMatrix &m, int gap);

} // namespace dphls::ref::classic

#endif // DPHLS_REFERENCE_CLASSIC_HH
