/**
 * @file
 * SquiggleFilter RTL-accelerator simulator (Dunn et al. [57]).
 *
 * Compared against DP-HLS kernel #14 (sDTW) in Fig. 4C/F. The paper
 * removed SquiggleFilter's match-bonus feature to match kernel #14's
 * plain |q - r| distance; this simulator does the same. Like the other
 * RTL baselines it overlaps load/init with compute.
 */

#ifndef DPHLS_BASELINES_SQUIGGLEFILTER_HH
#define DPHLS_BASELINES_SQUIGGLEFILTER_HH

#include "kernels/sdtw.hh"
#include "model/device.hh"
#include "systolic/engine.hh"

namespace dphls::baseline {

/** Configuration of the SquiggleFilter accelerator core. */
struct SquiggleFilterConfig
{
    int npe = 32;
    int maxQuery = 1024;
    int maxReference = 4096;
};

/** Simulator of the SquiggleFilter accelerator core. */
class SquiggleFilterSimulator
{
  public:
    using Kernel = kernels::Sdtw;
    using Result = core::AlignResult<Kernel::ScoreT>;
    using Config = SquiggleFilterConfig;

    explicit SquiggleFilterSimulator(
        Config cfg = {}, Kernel::Params params = Kernel::defaultParams());

    Result align(const seq::SignalSequence &query,
                 const seq::SignalSequence &reference);

    uint64_t lastCycles() const;

    static double fmaxMhz() { return 250.0; }

    /** Resource footprint of one SquiggleFilter array. */
    static model::DeviceResources blockResources(int npe);

  private:
    sim::SystolicAligner<Kernel> _engine;
};

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_SQUIGGLEFILTER_HH
