#include "baselines/gact.hh"

#include "model/resource_model.hh"

namespace dphls::baseline {

namespace {

sim::EngineConfig
engineConfig(const GactSimulator::Config &cfg)
{
    sim::EngineConfig ecfg;
    ecfg.numPe = cfg.npe;
    ecfg.maxQueryLength = cfg.maxLength;
    ecfg.maxReferenceLength = cfg.maxLength;
    // The defining difference vs. DP-HLS: RTL overlaps sequence load and
    // init with the previous alignment's compute (paper Section 7.3).
    ecfg.cycles.overlapLoadInit = true;
    return ecfg;
}

} // namespace

GactSimulator::GactSimulator(Config cfg, Kernel::Params params)
    : _engine(engineConfig(cfg), params), _cfg(cfg)
{}

GactSimulator::Result
GactSimulator::align(const seq::DnaSequence &query,
                     const seq::DnaSequence &reference)
{
    return _engine.align(query, reference);
}

host::TiledAlignment
GactSimulator::alignLong(const seq::DnaSequence &query,
                         const seq::DnaSequence &reference)
{
    return host::tiledAlign(_engine, query, reference, _cfg.tiling);
}

uint64_t
GactSimulator::lastCycles() const
{
    return _engine.lastTotalCycles();
}

model::DeviceResources
GactSimulator::blockResources(int npe)
{
    // Hand-written RTL: slightly leaner datapath than the HLS-generated
    // array (no generic layer muxing, no traceback-address DSPs), same
    // traceback storage needs. Factors calibrated to Fig. 4D / Fig. 5B-C.
    const auto desc = model::kernelHwDesc<Kernel>(256, 256, 0);
    model::DeviceResources r = model::estimateBlock(desc, npe);
    r.lut *= 0.90;
    r.ff *= 0.82;
    r.dsp = 0;
    return r;
}

} // namespace dphls::baseline
