#include "baselines/bsw.hh"

#include "model/resource_model.hh"

namespace dphls::baseline {

namespace {

sim::EngineConfig
engineConfig(const BswSimulator::Config &cfg)
{
    sim::EngineConfig ecfg;
    ecfg.numPe = cfg.npe;
    ecfg.bandWidth = cfg.bandWidth;
    ecfg.maxQueryLength = cfg.maxLength;
    ecfg.maxReferenceLength = cfg.maxLength;
    ecfg.cycles.overlapLoadInit = true;
    return ecfg;
}

} // namespace

BswSimulator::BswSimulator(Config cfg, Kernel::Params params)
    : _engine(engineConfig(cfg), params)
{}

BswSimulator::Result
BswSimulator::align(const seq::DnaSequence &query,
                    const seq::DnaSequence &reference)
{
    return _engine.align(query, reference);
}

uint64_t
BswSimulator::lastCycles() const
{
    return _engine.lastTotalCycles();
}

model::DeviceResources
BswSimulator::blockResources(int npe)
{
    // Fig. 4E: DP-HLS has slightly *better* LUT and FF utilization than
    // the BSW RTL here; BSW spends extra logic on its adaptive control.
    const auto desc = model::kernelHwDesc<Kernel>(256, 256, 0);
    model::DeviceResources r = model::estimateBlock(desc, npe);
    r.lut *= 1.18;
    r.ff *= 1.12;
    r.dsp = 0;
    return r;
}

} // namespace dphls::baseline
