#include "baselines/cpu_runner.hh"

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "host/scheduler.hh"
#include "reference/classic.hh"
#include "seq/read_simulator.hh"

namespace dphls::baseline {

CpuRunResult
measureCpu(int n, int threads, const std::function<void(int)> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    host::parallelFor(n, threads, fn);
    const auto t1 = std::chrono::steady_clock::now();
    CpuRunResult r;
    r.alignments = n;
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.alignsPerSec = r.seconds > 0 ? n / r.seconds : 0;
    return r;
}

uint64_t
wallClockCycles(double seconds, double mhz)
{
    const double cycles = seconds * mhz * 1e6;
    return cycles >= 1.0 ? static_cast<uint64_t>(cycles + 0.5) : 1;
}

CpuRunResult
runDnaCpuBaseline(int kernel_id, int pairs, int length, int threads,
                  uint64_t seed)
{
    seq::ReadSimConfig cfg;
    cfg.readLength = length;
    const auto jobs = seq::simulateReadPairs(pairs, cfg, length, seed);

    // sink prevents the optimizer from dropping the scoring loops.
    std::atomic<int64_t> sink{0};
    auto body = [&](int i) {
        const auto &p = jobs[static_cast<size_t>(i)];
        int64_t s = 0;
        switch (kernel_id) {
          case 1: s = ref::classic::nwScore(p.query, p.target, 1, -1, -1);
            break;
          case 2:
            s = ref::classic::gotohScore(p.query, p.target, 2, -3, 4, 1);
            break;
          case 3: s = ref::classic::swScore(p.query, p.target, 2, -1, -1);
            break;
          case 4:
            s = ref::classic::swgScore(p.query, p.target, 2, -3, 4, 1);
            break;
          case 5:
            s = ref::classic::twoPieceScore(p.query, p.target, 2, -4, 4, 2,
                                            13, 1);
            break;
          case 6:
            s = ref::classic::overlapScore(p.query, p.target, 1, -2, -2);
            break;
          case 7:
            s = ref::classic::semiGlobalScore(p.query, p.target, 1, -2, -2);
            break;
          case 11:
            s = ref::classic::bandedNwScore(p.query, p.target, 1, -1, -1,
                                            64);
            break;
          case 12:
            s = ref::classic::swgScore(p.query, p.target, 2, -3, 4, 1);
            break;
          default:
            throw std::invalid_argument(
                "no DNA CPU baseline for this kernel id");
        }
        sink += s;
    };
    return measureCpu(pairs, threads, body);
}

} // namespace dphls::baseline
