/**
 * @file
 * Iso-cost GPU baseline throughput model (Fig. 6B).
 *
 * The paper measures GASAL2 (kernels #2, #4, #12) and CUDASW++ 4.0 (#15,
 * traceback disabled) on an AWS p3.2xlarge with a Tesla V100 ($3.06/h)
 * and normalizes throughput by instance cost against the f1.2xlarge
 * ($1.65/h). Without a GPU, the baselines are modeled as iso-cost GCUPS
 * derived from the published ratios:
 *   GASAL2 GLOBAL: 2.85e6/5.8  = 0.49e6 aligns/s at 256x256 -> 32 GCUPS
 *   GASAL2 LOCAL : 2.71e6/7.6  = 0.36e6                     -> 23 GCUPS
 *   GASAL2 BSW   : 4.77e6/17.7 = 0.27e6                     -> 18 GCUPS
 *   CUDASW++ 4.0 : ~0.85e6 (vs. DP-HLS #15 without traceback, 1.41x)
 *                                                           -> 56 GCUPS
 */

#ifndef DPHLS_BASELINES_GPU_MODEL_HH
#define DPHLS_BASELINES_GPU_MODEL_HH

#include <cstdint>
#include <string>

namespace dphls::baseline {

/** A modeled GPU baseline: tool name and iso-cost cell-update rate. */
struct GpuBaseline
{
    std::string tool;
    double gcups = 0; //!< iso-cost-normalized GCUPS (V100 x 1.65/3.06)
};

/** The GPU tool the paper benchmarks against the given kernel. */
GpuBaseline gpuBaselineFor(int kernel_id);

/** Modeled baseline throughput for a workload of the given cell count. */
double gpuBaselineAlignsPerSec(int kernel_id, double cells_per_alignment);

/** True if the paper has a GPU baseline for this kernel. */
bool hasGpuBaseline(int kernel_id);

/**
 * Clock (MHz) the GPU-model backend counts its modeled cycles at — the
 * V100's boost clock, so GPU cycle numbers sit in the same unit system
 * as the device channels' fmax-domain cycles and the CPU backend's
 * wall-derived cycles.
 */
double gpuModelClockMhz();

/**
 * Modeled kernel-launch overhead per submitted batch, in seconds.
 * GASAL2 and CUDASW++ both amortize one launch over thousands of pairs;
 * the overhead matters only for the small batches a streaming host
 * submits, which is exactly when the cost-model router should prefer
 * the FPGA channels.
 */
double gpuModelLaunchOverheadSec();

/**
 * Modeled GPU service time for @p cells DP cells of kernel
 * @p kernel_id: cells / (iso-cost GCUPS), excluding launch overhead.
 * Returns 0 when the kernel has no GPU baseline.
 */
double gpuModelServiceSec(int kernel_id, double cells);

/** gpuModelServiceSec() converted to cycles at gpuModelClockMhz(). */
uint64_t gpuModelServiceCycles(int kernel_id, double cells);

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_GPU_MODEL_HH
