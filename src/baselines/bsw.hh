/**
 * @file
 * BSW (Banded Smith-Waterman, Darwin-WGA [12]) RTL-accelerator simulator.
 *
 * Compared against DP-HLS kernel #12 (banded local affine, score-only) in
 * Fig. 4B/E. Like GACT, the hand-coded RTL overlaps load/init with
 * compute; because kernel #12 has no traceback phase to amortize the
 * sequential front-end, DP-HLS shows its largest gap (16.8%) here.
 */

#ifndef DPHLS_BASELINES_BSW_HH
#define DPHLS_BASELINES_BSW_HH

#include "kernels/banded_local_affine.hh"
#include "model/device.hh"
#include "systolic/engine.hh"

namespace dphls::baseline {

/** Configuration of the BSW accelerator core. */
struct BswConfig
{
    int npe = 16;
    int bandWidth = 32;
    int maxLength = 1024;
};

/** Simulator of the BSW accelerator core. */
class BswSimulator
{
  public:
    using Kernel = kernels::BandedLocalAffine;
    using Result = core::AlignResult<Kernel::ScoreT>;
    using Config = BswConfig;

    explicit BswSimulator(Config cfg = {},
                          Kernel::Params params = Kernel::defaultParams());

    Result align(const seq::DnaSequence &query,
                 const seq::DnaSequence &reference);

    uint64_t lastCycles() const;

    static double fmaxMhz() { return 200.0; }

    /** Resource footprint of one BSW array (hand-coded RTL). */
    static model::DeviceResources blockResources(int npe);

  private:
    sim::SystolicAligner<Kernel> _engine;
};

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_BSW_HH
