/**
 * @file
 * Runnable multithreaded CPU baseline (the "SeqAn3 substitute").
 *
 * Complements the iso-cost model in cpu_model.hh with a real measurement
 * on the local machine: the classic reference implementations executed
 * across host threads, timed wall-clock, exactly how the paper measures
 * its CPU baselines (32 threads, wall time of total execution).
 */

#ifndef DPHLS_BASELINES_CPU_RUNNER_HH
#define DPHLS_BASELINES_CPU_RUNNER_HH

#include <cstdint>
#include <functional>

namespace dphls::baseline {

/** Outcome of a timed CPU run. */
struct CpuRunResult
{
    int alignments = 0;
    double seconds = 0;
    double alignsPerSec = 0;
};

/**
 * Time fn(i) for i in [0, n) across the given number of threads and
 * report wall-clock throughput.
 */
CpuRunResult measureCpu(int n, int threads,
                        const std::function<void(int)> &fn);

/**
 * Device-comparable cycle count for a wall-clock measurement at the
 * given equivalent clock (MHz). The host CPU has no analytic cycle
 * model; the hetero dispatcher charges CPU-backend jobs this derived
 * count so per-backend accounting stays in one unit. Never returns 0
 * for a completed alignment (clock granularity can round short jobs
 * down).
 */
uint64_t wallClockCycles(double seconds, double mhz);

/** Run a DNA kernel's classic CPU implementation over read pairs. */
CpuRunResult runDnaCpuBaseline(int kernel_id, int pairs, int length,
                               int threads, uint64_t seed);

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_CPU_RUNNER_HH
