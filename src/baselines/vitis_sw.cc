#include "baselines/vitis_sw.hh"

#include "model/resource_model.hh"

namespace dphls::baseline {

namespace {

sim::EngineConfig
engineConfig(const VitisSwSimulator::Config &cfg)
{
    sim::EngineConfig ecfg;
    ecfg.numPe = cfg.npe;
    ecfg.maxQueryLength = cfg.maxLength;
    ecfg.maxReferenceLength = cfg.maxLength;
    ecfg.cycles.hostStreamCyclesPerChar = cfg.streamStallPerChar;
    return ecfg;
}

} // namespace

VitisSwSimulator::VitisSwSimulator(Config cfg, Kernel::Params params)
    : _engine(engineConfig(cfg), params)
{}

VitisSwSimulator::Result
VitisSwSimulator::align(const seq::DnaSequence &query,
                        const seq::DnaSequence &reference)
{
    return _engine.align(query, reference);
}

uint64_t
VitisSwSimulator::lastCycles() const
{
    return _engine.lastTotalCycles();
}

model::DeviceResources
VitisSwSimulator::blockResources(int npe)
{
    // "Slightly higher resource utilization than the baseline but better
    // throughput" (Section 7.5) — from the baseline's side: ~8% leaner.
    const auto desc = model::kernelHwDesc<Kernel>(256, 256, 0);
    model::DeviceResources r = model::estimateBlock(desc, npe);
    r.lut *= 0.92;
    r.ff *= 0.93;
    return r;
}

} // namespace dphls::baseline
