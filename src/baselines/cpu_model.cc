#include "baselines/cpu_model.hh"

namespace dphls::baseline {

CpuBaseline
cpuBaselineFor(int kernel_id)
{
    switch (kernel_id) {
      case 5:
        return {"Minimap2 (2-piece affine)", 5.8};
      case 15:
        return {"EMBOSS Water (32 jobs)", 1.9};
      case 11:
      case 12:
        // SeqAn3's banded code path is marginally faster per alignment
        // but computes fewer cells; the paper's measured throughput stays
        // in the same ~1.7-1.8e6 range. Rate expressed over full-matrix
        // cells for comparability.
        return {"SeqAn3 (banded)", 113.0};
      default:
        return {"SeqAn3", 117.0};
    }
}

double
cpuBaselineAlignsPerSec(int kernel_id, double cells_per_alignment)
{
    const CpuBaseline b = cpuBaselineFor(kernel_id);
    if (cells_per_alignment <= 0)
        return 0;
    return b.gcups * 1e9 / cells_per_alignment;
}

} // namespace dphls::baseline
