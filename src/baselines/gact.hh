/**
 * @file
 * GACT RTL-accelerator simulator (Darwin, Turakhia et al. [11]).
 *
 * The paper compares DP-HLS kernel #2 against the open-source GACT
 * systolic array (Fig. 4A/D, Fig. 5). GACT is a tiled global affine
 * aligner whose RTL overlaps query loading and DP-matrix initialization
 * with compute — the concrete optimization the paper credits for the RTL
 * baselines' 7.7-16.8% throughput edge (Section 7.3). This simulator runs
 * the same systolic micro-architecture with that overlap enabled and a
 * resource footprint calibrated to the published comparison.
 */

#ifndef DPHLS_BASELINES_GACT_HH
#define DPHLS_BASELINES_GACT_HH

#include "host/tiling.hh"
#include "kernels/global_affine.hh"
#include "model/device.hh"
#include "systolic/engine.hh"

namespace dphls::baseline {

/** Configuration of the GACT accelerator core. */
struct GactConfig
{
    int npe = 32;
    int maxLength = 1024;
    host::TilingConfig tiling{};
};

/** Simulator of the GACT accelerator core. */
class GactSimulator
{
  public:
    using Kernel = kernels::GlobalAffine;
    using Result = core::AlignResult<Kernel::ScoreT>;
    using Config = GactConfig;

    explicit GactSimulator(Config cfg = {},
                           Kernel::Params params = Kernel::defaultParams());

    /** Single-tile alignment (short reads). */
    Result align(const seq::DnaSequence &query,
                 const seq::DnaSequence &reference);

    /** Tiled alignment for long reads (GACT's raison d'etre). */
    host::TiledAlignment alignLong(const seq::DnaSequence &query,
                                   const seq::DnaSequence &reference);

    /** Cycles of the most recent align() call. */
    uint64_t lastCycles() const;

    /** Achieved clock frequency (GACT closes timing at the 250 target). */
    static double fmaxMhz() { return 250.0; }

    /** Resource footprint of one GACT array (hand-coded RTL). */
    static model::DeviceResources blockResources(int npe);

  private:
    sim::SystolicAligner<Kernel> _engine;
    Config _cfg;
};

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_GACT_HH
