#include "baselines/squigglefilter.hh"

#include "model/resource_model.hh"

namespace dphls::baseline {

namespace {

sim::EngineConfig
engineConfig(const SquiggleFilterSimulator::Config &cfg)
{
    sim::EngineConfig ecfg;
    ecfg.numPe = cfg.npe;
    ecfg.maxQueryLength = cfg.maxQuery;
    ecfg.maxReferenceLength = cfg.maxReference;
    ecfg.cycles.overlapLoadInit = true;
    return ecfg;
}

} // namespace

SquiggleFilterSimulator::SquiggleFilterSimulator(Config cfg,
                                                 Kernel::Params params)
    : _engine(engineConfig(cfg), params)
{}

SquiggleFilterSimulator::Result
SquiggleFilterSimulator::align(const seq::SignalSequence &query,
                               const seq::SignalSequence &reference)
{
    return _engine.align(query, reference);
}

uint64_t
SquiggleFilterSimulator::lastCycles() const
{
    return _engine.lastTotalCycles();
}

model::DeviceResources
SquiggleFilterSimulator::blockResources(int npe)
{
    // Fig. 4F: comparable utilization, RTL slightly leaner in FF.
    const auto desc = model::kernelHwDesc<Kernel>(256, 1024, 0);
    model::DeviceResources r = model::estimateBlock(desc, npe);
    r.lut *= 0.95;
    r.ff *= 0.88;
    r.dsp = 0;
    return r;
}

} // namespace dphls::baseline
