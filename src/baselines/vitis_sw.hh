/**
 * @file
 * Vitis Genomics Library Smith-Waterman HLS baseline (Section 7.5).
 *
 * AMD's optimized HLS library kernel matches DP-HLS kernel #3. The paper
 * attributes DP-HLS's 32.6% throughput advantage to (i) the baseline
 * streaming some data host<->device instead of using device memory and
 * (ii) weaker compiler optimization hints. This simulator models (i) as a
 * per-character streaming stall and (ii) shows up as the baseline's
 * slightly lower resource usage.
 */

#ifndef DPHLS_BASELINES_VITIS_SW_HH
#define DPHLS_BASELINES_VITIS_SW_HH

#include "kernels/local_linear.hh"
#include "model/device.hh"
#include "systolic/engine.hh"

namespace dphls::baseline {

/** Configuration of the Vitis Genomics Library SW baseline. */
struct VitisSwConfig
{
    int npe = 32;
    int maxLength = 1024;
    /** Host-streaming stall per streamed character (Section 7.5). */
    int streamStallPerChar = 2;
};

/** Simulator of the Vitis Genomics Library SW kernel. */
class VitisSwSimulator
{
  public:
    using Kernel = kernels::LocalLinear;
    using Result = core::AlignResult<Kernel::ScoreT>;
    using Config = VitisSwConfig;

    explicit VitisSwSimulator(Config cfg = {},
                              Kernel::Params params = Kernel::defaultParams());

    Result align(const seq::DnaSequence &query,
                 const seq::DnaSequence &reference);

    uint64_t lastCycles() const;

    /** Library targets 333 MHz but is throughput-bound by streaming. */
    static double fmaxMhz() { return 250.0; }

    static model::DeviceResources blockResources(int npe);

  private:
    sim::SystolicAligner<Kernel> _engine;
};

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_VITIS_SW_HH
