#include "baselines/gpu_model.hh"

namespace dphls::baseline {

bool
hasGpuBaseline(int kernel_id)
{
    return kernel_id == 2 || kernel_id == 4 || kernel_id == 12 ||
           kernel_id == 15;
}

GpuBaseline
gpuBaselineFor(int kernel_id)
{
    switch (kernel_id) {
      case 2:
        return {"GASAL2 (GLOBAL)", 32.0};
      case 4:
        return {"GASAL2 (LOCAL)", 23.0};
      case 12:
        return {"GASAL2 (BSW)", 18.0};
      case 15:
        return {"CUDASW++ 4.0", 56.0};
      default:
        return {"(none)", 0.0};
    }
}

double
gpuBaselineAlignsPerSec(int kernel_id, double cells_per_alignment)
{
    const GpuBaseline b = gpuBaselineFor(kernel_id);
    if (cells_per_alignment <= 0 || b.gcups <= 0)
        return 0;
    return b.gcups * 1e9 / cells_per_alignment;
}

double
gpuModelClockMhz()
{
    return 1380.0; // Tesla V100 boost clock
}

double
gpuModelLaunchOverheadSec()
{
    return 50e-6; // one kernel launch + staging per submitted batch
}

double
gpuModelServiceSec(int kernel_id, double cells)
{
    const GpuBaseline b = gpuBaselineFor(kernel_id);
    if (b.gcups <= 0 || cells <= 0)
        return 0;
    return cells / (b.gcups * 1e9);
}

uint64_t
gpuModelServiceCycles(int kernel_id, double cells)
{
    return static_cast<uint64_t>(gpuModelServiceSec(kernel_id, cells) *
                                 gpuModelClockMhz() * 1e6);
}

} // namespace dphls::baseline
