#include "baselines/gpu_model.hh"

namespace dphls::baseline {

bool
hasGpuBaseline(int kernel_id)
{
    return kernel_id == 2 || kernel_id == 4 || kernel_id == 12 ||
           kernel_id == 15;
}

GpuBaseline
gpuBaselineFor(int kernel_id)
{
    switch (kernel_id) {
      case 2:
        return {"GASAL2 (GLOBAL)", 32.0};
      case 4:
        return {"GASAL2 (LOCAL)", 23.0};
      case 12:
        return {"GASAL2 (BSW)", 18.0};
      case 15:
        return {"CUDASW++ 4.0", 56.0};
      default:
        return {"(none)", 0.0};
    }
}

double
gpuBaselineAlignsPerSec(int kernel_id, double cells_per_alignment)
{
    const GpuBaseline b = gpuBaselineFor(kernel_id);
    if (cells_per_alignment <= 0 || b.gcups <= 0)
        return 0;
    return b.gcups * 1e9 / cells_per_alignment;
}

} // namespace dphls::baseline
