/**
 * @file
 * Iso-cost CPU baseline throughput model (Fig. 6A).
 *
 * The paper measures SeqAn3 (kernels #1-4, #6-7, #11-12), Minimap2 (#5)
 * and EMBOSS Water (#15) on a 36-core AWS c4.8xlarge ($1.591/h), cost-
 * comparable to the f1.2xlarge ($1.650/h) running DP-HLS. We have neither
 * instance, so the baselines are modeled as cell-update rates (GCUPS)
 * derived from the paper's published measurements; the model then scales
 * to any workload size. A real, runnable multithreaded CPU implementation
 * lives in cpu_runner.hh for functional verification and local
 * measurements.
 *
 * Derivation of the constants (paper Table 2 throughput / Fig. 6A ratio,
 * at 256x256 = 65,536 cells per alignment, 32 threads):
 *   SeqAn3   ~1.78e6 aligns/s -> ~117 GCUPS   (nearly kernel-independent,
 *            as the paper notes: same underlying implementation)
 *   Minimap2 two-piece: 1.06e6/12 = 0.088e6 -> ~5.8 GCUPS
 *   EMBOSS Water: 0.933e6/32 = 0.029e6 -> ~1.9 GCUPS (no multithreading;
 *            32 GNU-parallel jobs)
 */

#ifndef DPHLS_BASELINES_CPU_MODEL_HH
#define DPHLS_BASELINES_CPU_MODEL_HH

#include <string>

namespace dphls::baseline {

/** A modeled CPU baseline: tool name and iso-cost cell-update rate. */
struct CpuBaseline
{
    std::string tool;
    double gcups = 0; //!< 1e9 cell updates/s at iso-cost (32 threads)
};

/** The CPU tool the paper benchmarks against the given kernel. */
CpuBaseline cpuBaselineFor(int kernel_id);

/** Modeled baseline throughput for a workload of the given cell count. */
double cpuBaselineAlignsPerSec(int kernel_id, double cells_per_alignment);

} // namespace dphls::baseline

#endif // DPHLS_BASELINES_CPU_MODEL_HH
