/**
 * @file
 * Kernel #1: Global Linear Alignment (Needleman-Wunsch).
 *
 * The baseline kernel of Table 1: DNA alphabet, single scoring layer,
 * linear gap penalty, global traceback. All other kernels are described
 * in the paper as modifications of this one.
 */

#ifndef DPHLS_KERNELS_GLOBAL_LINEAR_HH
#define DPHLS_KERNELS_GLOBAL_LINEAR_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct GlobalLinear
{
    static constexpr int kernelId = 1;
    static constexpr const char *name = "Global Linear (Needleman-Wunsch)";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    /** Paper Listing 2 (left): match/mismatch/linear gap. */
    struct Params
    {
        ScoreT match = 1;
        ScoreT mismatch = -1;
        ScoreT linearGap = -1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }

    /** Paper Listing 4: multiples of the gap penalty. */
    static ScoreT
    initRowScore(int j, int, const Params &p)
    {
        return p.linearGap * j;
    }

    static ScoreT
    initColScore(int i, int, const Params &p)
    {
        return p.linearGap * i;
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::linearCell(
            in.diag[0], in.up[0], in.left[0], subst, p.linearGap, false);
        return {{cell.score}, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaLinearLaneCell(up, left, diag, qry, ref, p, false,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 3;          // three candidate additions
        p.maxMin2 = 2;         // 3-way max
        p.scoreWidth = 16;
        p.critPathLevels = 3;  // add -> max -> max
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_GLOBAL_LINEAR_HH
