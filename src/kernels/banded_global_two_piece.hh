/**
 * @file
 * Kernel #13: Banded Global Two-piece Affine Alignment.
 *
 * The minimap2 long-read kernel with both heuristics combined: five
 * scoring layers, 7-bit traceback pointers and a fixed band. The deep
 * five-way reduction plus band handling gives the lowest clock tier in
 * Table 2 (125 MHz).
 */

#ifndef DPHLS_KERNELS_BANDED_GLOBAL_TWO_PIECE_HH
#define DPHLS_KERNELS_BANDED_GLOBAL_TWO_PIECE_HH

#include <algorithm>

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct BandedGlobalTwoPiece
{
    static constexpr int kernelId = 13;
    static constexpr const char *name = "Banded Global Two-piece Affine";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 5;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = true;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 7;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 2;
        ScoreT mismatch = -4;
        ScoreT gapOpen1 = 4;
        ScoreT gapExtend1 = 2;
        ScoreT gapOpen2 = 13;
        ScoreT gapExtend2 = 1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT
    originScore(int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initRowScore(int j, int layer, const Params &p)
    {
        const ScoreT g1 = -(p.gapOpen1 + p.gapExtend1 * (j - 1));
        const ScoreT g2 = -(p.gapOpen2 + p.gapExtend2 * (j - 1));
        switch (layer) {
          case 0: return std::max(g1, g2);
          case 2: return g1;
          case 4: return g2;
          default:
            return core::scoreSentinelWorst<ScoreT>(objective);
        }
    }

    static ScoreT
    initColScore(int i, int layer, const Params &p)
    {
        const ScoreT g1 = -(p.gapOpen1 + p.gapExtend1 * (i - 1));
        const ScoreT g2 = -(p.gapOpen2 + p.gapExtend2 * (i - 1));
        switch (layer) {
          case 0: return std::max(g1, g2);
          case 1: return g1;
          case 3: return g2;
          default:
            return core::scoreSentinelWorst<ScoreT>(objective);
        }
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::twoPieceCell(
            in.up, in.left, in.diag, subst, p.gapOpen1, p.gapExtend1,
            p.gapOpen2, p.gapExtend2, false);
        return {cell.score, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaTwoPieceLaneCell(up, left, diag, qry, ref, p, false,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = detail::TpMM;

    static core::TbStep
    tbStep(uint8_t state, core::TbPtr ptr)
    {
        return detail::twoPieceTbStep(state, ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 10;
        p.maxMin2 = 8;
        p.scoreWidth = 16;
        p.critPathLevels = 11; // deepest reduction + band handling
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_BANDED_GLOBAL_TWO_PIECE_HH
