/**
 * @file
 * SIMD (struct-of-arrays) forms of the kernel-family cell updates, used
 * by the lane engine's vectorized inner loop.
 *
 * These mirror the scalar helpers in `detail.hh` operation for
 * operation — same candidate order, same strictly-greater selects, same
 * after-the-fact traceback-source decode — so every lane of a vector
 * cell is bit-identical to the scalar recurrence (enforced by
 * tests/test_lane_batching.cc, which diffs the lane engine against
 * scalar engine runs for every hooked kernel).
 *
 * Implementation uses the GNU vector extension (`vector_size`), which
 * GCC and Clang lower to SSE/AVX/NEON as available and split for
 * narrower ISAs; comparisons yield all-ones/zero lane masks and selects
 * are mask arithmetic, so the code is branch-free by construction. On
 * compilers without the extension, DPHLS_VEC stays undefined and the
 * lane engine falls back to its scalar per-lane loop.
 */

#ifndef DPHLS_KERNELS_DETAIL_SIMD_HH
#define DPHLS_KERNELS_DETAIL_SIMD_HH

#include <cstddef>
#include <cstdint>

#include "kernels/detail.hh"

#if defined(__GNUC__) || defined(__clang__)
#define DPHLS_VEC 1
#endif

#ifdef DPHLS_VEC

/**
 * Force-inline marker for the lane-cell helpers. The sweep bodies are
 * compiled once per ISA tier into separate translation units with
 * different -m flags (systolic/lane_sweep_*.cc); if any of these
 * helpers were emitted out of line they would be weak COMDAT symbols
 * with one definition per tier, and the linker could legally resolve a
 * baseline TU's call to an AVX-512 copy. Forcing inlining keeps every
 * tier's instructions inside that tier's own sweep function.
 */
#define DPHLS_SIMD_INLINE inline __attribute__((always_inline))

namespace dphls::kernels::detail::simd {

/**
 * Pack of W 32-bit score lanes at the vector's natural alignment: the
 * engine allocates its SoA rows on 64-byte boundaries (the AVX-512
 * vector) and lays lanes out at stride W, so every (layer, column)
 * slot is naturally aligned and plain dereferences lower to aligned
 * vector loads. W must be a power of two (4, 8 or 16).
 */
template <int W>
struct VecPack;

template <>
struct VecPack<4>
{
    typedef int32_t I32 __attribute__((vector_size(16)));
    typedef uint8_t U8 __attribute__((vector_size(4), aligned(1)));
};
template <>
struct VecPack<8>
{
    typedef int32_t I32 __attribute__((vector_size(32)));
    typedef uint8_t U8 __attribute__((vector_size(8), aligned(1)));
};
template <>
struct VecPack<16>
{
    typedef int32_t I32 __attribute__((vector_size(64)));
    typedef uint8_t U8 __attribute__((vector_size(16), aligned(1)));
};

/**
 * The AVX-512 vector bounds the alignment any tier needs; the engine's
 * SoA allocations use this so one buffer serves every tier.
 */
inline constexpr size_t kLaneRowAlign = 64;

// What makes direct (aligned) slot dereferences legal on the SoA rows:
// bases are kLaneRowAlign-aligned and slots sit at multiples of the
// pack size, so every slot is aligned as long as kLaneRowAlign is a
// multiple of each pack's size (a pack's alignment never exceeds its
// size; GCC caps alignof at the TU's largest native vector). If a
// wider pack or an aligned(n) attribute ever sneaks in, these trip
// instead of faulting at runtime on the widest tier.
static_assert(kLaneRowAlign % sizeof(VecPack<4>::I32) == 0);
static_assert(kLaneRowAlign % sizeof(VecPack<8>::I32) == 0);
static_assert(kLaneRowAlign % sizeof(VecPack<16>::I32) == 0);
static_assert(alignof(VecPack<16>::I32) <= kLaneRowAlign);

/** Broadcast a scalar into every lane. */
template <typename V>
DPHLS_SIMD_INLINE V
splat(int32_t v)
{
    return V{} + v;
}

/** Lane-mask select: mask lanes are all-ones (take a) or zero (take b). */
template <typename V>
DPHLS_SIMD_INLINE V
sel(V mask, V a, V b)
{
    return (a & mask) | (b & ~mask);
}

/** Lane-wise max keeping @p a on ties (matches detail::maxOf). */
template <typename V>
DPHLS_SIMD_INLINE V
maxV(V a, V b)
{
    return sel(b > a, b, a);
}

/** Lane-wise min keeping @p a on ties. */
template <typename V>
DPHLS_SIMD_INLINE V
minV(V a, V b)
{
    return sel(b < a, b, a);
}

/** Linear-gap family (mirrors detail::linearCell). */
template <typename V>
DPHLS_SIMD_INLINE void
linearCellV(const V *up, const V *left, const V *diag, V subst, V gap,
            bool clamp_zero, V *score, V &ptr)
{
    const V mat = diag[0] + subst;
    const V ins = up[0] + gap;
    const V del = left[0] + gap;
    V best = maxV(maxV(mat, ins), del);
    const V clamp = clamp_zero ? (best < V{}) : V{};
    best = clamp_zero ? maxV(best, V{}) : best;

    V p = splat<V>(core::tb::Left);
    p = sel(best == ins, splat<V>(core::tb::Up), p);
    p = sel(best == mat, splat<V>(core::tb::Diag), p);
    p = sel(clamp, splat<V>(core::tb::End), p);
    score[0] = best;
    ptr = p;
}

/** Affine-gap family (mirrors detail::affineCell). */
template <typename V>
DPHLS_SIMD_INLINE void
affineCellV(const V *up, const V *left, const V *diag, V subst, V open,
            V extend, bool clamp_zero, V *score, V &ptr)
{
    using namespace affine_ptr;
    V p = V{};
    const V ixo = up[0] - open;
    const V ixe = up[1] - extend;
    const V mx = ixe > ixo;
    const V ix = sel(mx, ixe, ixo);
    p |= mx & splat<V>(IxExtBit);

    const V iyo = left[0] - open;
    const V iye = left[2] - extend;
    const V my = iye > iyo;
    const V iy = sel(my, iye, iyo);
    p |= my & splat<V>(IyExtBit);

    const V mat = diag[0] + subst;
    V h = maxV(maxV(mat, ix), iy);
    const V clamp = clamp_zero ? (h < V{}) : V{};
    h = clamp_zero ? maxV(h, V{}) : h;

    V src = splat<V>(HIy);
    src = sel(h == ix, splat<V>(HIx), src);
    src = sel(h == mat, splat<V>(HDiag), src);
    src = sel(clamp, splat<V>(HEnd), src);
    score[0] = h;
    score[1] = ix;
    score[2] = iy;
    ptr = p | src;
}

/** Two-piece affine family (mirrors detail::twoPieceCell). */
template <typename V>
DPHLS_SIMD_INLINE void
twoPieceCellV(const V *up, const V *left, const V *diag, V subst, V open1,
              V extend1, V open2, V extend2, bool clamp_zero, V *score,
              V &ptr)
{
    using namespace two_piece_ptr;
    V p = V{};
    const V ixo = up[0] - open1, ixe = up[1] - extend1;
    const V mx = ixe > ixo;
    const V ix = sel(mx, ixe, ixo);
    p |= mx & splat<V>(IxExtBit);

    const V iyo = left[0] - open1, iye = left[2] - extend1;
    const V my = iye > iyo;
    const V iy = sel(my, iye, iyo);
    p |= my & splat<V>(IyExtBit);

    const V ix2o = up[0] - open2, ix2e = up[3] - extend2;
    const V mx2 = ix2e > ix2o;
    const V ix2 = sel(mx2, ix2e, ix2o);
    p |= mx2 & splat<V>(Ix2ExtBit);

    const V iy2o = left[0] - open2, iy2e = left[4] - extend2;
    const V my2 = iy2e > iy2o;
    const V iy2 = sel(my2, iy2e, iy2o);
    p |= my2 & splat<V>(Iy2ExtBit);

    const V mat = diag[0] + subst;
    V h = maxV(maxV(maxV(mat, ix), maxV(iy, ix2)), iy2);
    const V clamp = clamp_zero ? (h < V{}) : V{};
    h = clamp_zero ? maxV(h, V{}) : h;

    V src = splat<V>(HIy2);
    src = sel(h == ix2, splat<V>(HIx2), src);
    src = sel(h == iy, splat<V>(HIy), src);
    src = sel(h == ix, splat<V>(HIx), src);
    src = sel(h == mat, splat<V>(HDiag), src);
    src = sel(clamp, splat<V>(HEnd), src);
    score[0] = h;
    score[1] = ix;
    score[2] = iy;
    score[3] = ix2;
    score[4] = iy2;
    ptr = p | src;
}

/**
 * Family-level lane cells for the DNA kernels: substitution score from a
 * lane-wise match/mismatch select, then the family recurrence. Kernel
 * headers forward their `laneCell` here.
 */
template <typename V, typename Params>
DPHLS_SIMD_INLINE void
dnaLinearLaneCell(const V *up, const V *left, const V *diag, V qry, V ref,
                  const Params &p, bool clamp_zero, V *score, V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    linearCellV(up, left, diag, subst, splat<V>(p.linearGap), clamp_zero,
                score, ptr);
}

template <typename V, typename Params>
DPHLS_SIMD_INLINE void
dnaAffineLaneCell(const V *up, const V *left, const V *diag, V qry, V ref,
                  const Params &p, bool clamp_zero, V *score, V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    affineCellV(up, left, diag, subst, splat<V>(p.gapOpen),
                splat<V>(p.gapExtend), clamp_zero, score, ptr);
}

template <typename V, typename Params>
DPHLS_SIMD_INLINE void
dnaTwoPieceLaneCell(const V *up, const V *left, const V *diag, V qry,
                    V ref, const Params &p, bool clamp_zero, V *score,
                    V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    twoPieceCellV(up, left, diag, subst, splat<V>(p.gapOpen1),
                  splat<V>(p.gapExtend1), splat<V>(p.gapOpen2),
                  splat<V>(p.gapExtend2), clamp_zero, score, ptr);
}

/**
 * Protein local-linear lane cell: the substitution score is a per-lane
 * gather from the dense 20x20 matrix (ISAs without a real gather lower
 * to exactly this scalar loop; the DP recurrence itself — the adds,
 * maxes, clamp and traceback decode — stays fully vectorized), then the
 * shared linear-gap recurrence. Lane character codes beyond a pair's
 * own length are default-encoded (0), a valid matrix row/column, so the
 * gather never reads out of bounds.
 */
template <typename V, typename Params>
DPHLS_SIMD_INLINE void
proteinLocalLaneCell(const V *up, const V *left, const V *diag, V qry,
                     V ref, const Params &p, V *score, V &ptr)
{
    constexpr int W = static_cast<int>(sizeof(V) / sizeof(int32_t));
    V subst{};
    for (int lane = 0; lane < W; lane++)
        subst[lane] = p.subst(qry[lane], ref[lane]);
    linearCellV(up, left, diag, subst, splat<V>(p.linearGap), true, score,
                ptr);
}

/** sDTW distance cell (mirrors kernels::Sdtw::peFunc). */
template <typename V>
DPHLS_SIMD_INLINE void
sdtwCellV(const V *up, const V *left, const V *diag, V qry, V ref,
          V *score, V &ptr)
{
    const V d = sel(qry > ref, qry - ref, ref - qry);
    V best = diag[0];
    V p = splat<V>(core::tb::Diag);
    const V mu = up[0] < best;
    best = sel(mu, up[0], best);
    p = sel(mu, splat<V>(core::tb::Up), p);
    const V ml = left[0] < best;
    best = sel(ml, left[0], best);
    p = sel(ml, splat<V>(core::tb::Left), p);
    score[0] = best + d;
    ptr = p;
}

/**
 * Viterbi (pair-HMM) lane cell over raw ApFixed<32,14> lane values.
 *
 * ApFixed<32,.> add/subtract/compare are exactly int32 wrap-around
 * add/subtract/compare on the normalized raw value (the fixed-point
 * scale only matters for multiplication, which this recurrence never
 * does), so the three-layer log-space recurrence runs directly on int32
 * lanes. The emission/Q terms are per-lane gathers from the 5x5 and
 * 5-entry tables (character codes, including the padding lanes'
 * default 0, always index in bounds); the adds and strictly-greater
 * maxima stay fully vectorized and mirror Viterbi::peFunc's candidate
 * order via maxV's keep-first-on-ties select.
 */
template <typename V, typename Params>
DPHLS_SIMD_INLINE void
viterbiLaneCell(const V *up, const V *left, const V *diag, V qry, V ref,
                const Params &p, V *score, V &ptr)
{
    constexpr int W = static_cast<int>(sizeof(V) / sizeof(int32_t));
    V em{}, gq{}, gr{};
    for (int lane = 0; lane < W; lane++) {
        const int x = qry[lane];
        const int y = ref[lane];
        em[lane] = static_cast<int32_t>(p.logEmission[x][y].raw());
        gq[lane] = static_cast<int32_t>(p.logQ[x].raw());
        gr[lane] = static_cast<int32_t>(p.logQ[y].raw());
    }

    const V trans1me =
        splat<V>(static_cast<int32_t>(p.log1MEpsilon.raw()));
    V vm = splat<V>(static_cast<int32_t>(p.log1M2Delta.raw())) + diag[0];
    vm = maxV(vm, trans1me + diag[1]);
    vm = maxV(vm, trans1me + diag[2]);
    vm += em;

    const V delta = splat<V>(static_cast<int32_t>(p.logDelta.raw()));
    const V eps = splat<V>(static_cast<int32_t>(p.logEpsilon.raw()));
    const V vi = maxV(delta + up[0], eps + up[1]) + gq;
    const V vj = maxV(delta + left[0], eps + left[2]) + gr;

    score[0] = vm;
    score[1] = vi;
    score[2] = vj;
    ptr = V{}; // no traceback (tbPtrBits == 0)
}

/**
 * DTW lane cell over raw ApFixed<32,26> lane values. The character
 * planes carry the raw real/imag parts of each complex sample. The
 * squared-distance products need the 64-bit intermediate of
 * ApFixed::operator* and run as a per-lane scalar loop mirroring
 * Dtw::distance term for term (wrap-around subtract, (a*b)>>fracBits
 * with fracBits = 6, wrap-around adds); the min chain and accumulate
 * stay vectorized with sdtwCellV's strictly-less Diag>Up>Left order.
 */
template <typename V>
DPHLS_SIMD_INLINE void
dtwLaneCell(const V *up, const V *left, const V *diag, const V *qry,
            const V *ref, V *score, V &ptr)
{
    constexpr int W = static_cast<int>(sizeof(V) / sizeof(int32_t));
    V d{};
    for (int lane = 0; lane < W; lane++) {
        const int32_t dr = static_cast<int32_t>(
            static_cast<uint32_t>(qry[0][lane]) -
            static_cast<uint32_t>(ref[0][lane]));
        const int32_t di = static_cast<int32_t>(
            static_cast<uint32_t>(qry[1][lane]) -
            static_cast<uint32_t>(ref[1][lane]));
        const int32_t dr2 = static_cast<int32_t>(
            (static_cast<int64_t>(dr) * dr) >> 6);
        const int32_t di2 = static_cast<int32_t>(
            (static_cast<int64_t>(di) * di) >> 6);
        d[lane] = static_cast<int32_t>(static_cast<uint32_t>(dr2) +
                                       static_cast<uint32_t>(di2));
    }

    V best = diag[0];
    V p = splat<V>(core::tb::Diag);
    const V mu = up[0] < best;
    best = sel(mu, up[0], best);
    p = sel(mu, splat<V>(core::tb::Up), p);
    const V ml = left[0] < best;
    best = sel(ml, left[0], best);
    p = sel(ml, splat<V>(core::tb::Left), p);
    score[0] = best + d;
    ptr = p;
}

/**
 * Profile-alignment lane cell. The five character planes carry each
 * profile column's frequency tuple, so the sum-of-pairs double
 * matrix-vector product becomes 30 fully vectorized multiply-adds
 * (no gathers at all: the pair-score matrix entries are splat
 * constants). Arithmetic is int32 exactly like the scalar
 * sumOfPairs/gapColumnScore, and the Diag>Up>Left strictly-greater
 * decode mirrors ProfileAlignment::peFunc.
 */
template <typename V, typename Params>
DPHLS_SIMD_INLINE void
profileLaneCell(const V *up, const V *left, const V *diag, const V *qry,
                const V *ref, const Params &p, V *score, V &ptr)
{
    V subst = V{}, gq = V{}, gr = V{};
    for (int a = 0; a < 5; a++) {
        V row = V{};
        for (int b = 0; b < 5; b++)
            row += splat<V>(p.pairScore[a][b]) * ref[b];
        subst += row * qry[a];
        gq += splat<V>(p.pairScore[a][4]) * qry[a];
        gr += splat<V>(p.pairScore[a][4]) * ref[a];
    }
    const V scale = splat<V>(p.gapScale);
    gq *= scale;
    gr *= scale;

    const V mat = diag[0] + subst;
    const V ins = up[0] + gq;
    const V del = left[0] + gr;
    V best = mat;
    V pp = splat<V>(core::tb::Diag);
    const V mi = ins > best;
    best = sel(mi, ins, best);
    pp = sel(mi, splat<V>(core::tb::Up), pp);
    const V md = del > best;
    best = sel(md, del, best);
    pp = sel(md, splat<V>(core::tb::Left), pp);
    score[0] = best;
    ptr = pp;
}

} // namespace dphls::kernels::detail::simd

#endif // DPHLS_VEC

#endif // DPHLS_KERNELS_DETAIL_SIMD_HH
