/**
 * @file
 * SIMD (struct-of-arrays) forms of the kernel-family cell updates, used
 * by the lane engine's vectorized inner loop.
 *
 * These mirror the scalar helpers in `detail.hh` operation for
 * operation — same candidate order, same strictly-greater selects, same
 * after-the-fact traceback-source decode — so every lane of a vector
 * cell is bit-identical to the scalar recurrence (enforced by
 * tests/test_lane_batching.cc, which diffs the lane engine against
 * scalar engine runs for every hooked kernel).
 *
 * Implementation uses the GNU vector extension (`vector_size`), which
 * GCC and Clang lower to SSE/AVX/NEON as available and split for
 * narrower ISAs; comparisons yield all-ones/zero lane masks and selects
 * are mask arithmetic, so the code is branch-free by construction. On
 * compilers without the extension, DPHLS_VEC stays undefined and the
 * lane engine falls back to its scalar per-lane loop.
 */

#ifndef DPHLS_KERNELS_DETAIL_SIMD_HH
#define DPHLS_KERNELS_DETAIL_SIMD_HH

#include <cstdint>

#include "kernels/detail.hh"

#if defined(__GNUC__) || defined(__clang__)
#define DPHLS_VEC 1
#endif

#ifdef DPHLS_VEC

namespace dphls::kernels::detail::simd {

/**
 * Pack of W 32-bit score lanes. `aligned(4)` keeps loads/stores legal
 * on unaligned addresses (the engine's SoA rows are only element-
 * aligned). W must be a power of two (4, 8 or 16).
 */
template <int W>
struct VecPack;

template <>
struct VecPack<4>
{
    typedef int32_t I32 __attribute__((vector_size(16), aligned(4)));
    typedef uint8_t U8 __attribute__((vector_size(4), aligned(1)));
};
template <>
struct VecPack<8>
{
    typedef int32_t I32 __attribute__((vector_size(32), aligned(4)));
    typedef uint8_t U8 __attribute__((vector_size(8), aligned(1)));
};
template <>
struct VecPack<16>
{
    typedef int32_t I32 __attribute__((vector_size(64), aligned(4)));
    typedef uint8_t U8 __attribute__((vector_size(16), aligned(1)));
};

/** Broadcast a scalar into every lane. */
template <typename V>
inline V
splat(int32_t v)
{
    return V{} + v;
}

/** Lane-mask select: mask lanes are all-ones (take a) or zero (take b). */
template <typename V>
inline V
sel(V mask, V a, V b)
{
    return (a & mask) | (b & ~mask);
}

/** Lane-wise max keeping @p a on ties (matches detail::maxOf). */
template <typename V>
inline V
maxV(V a, V b)
{
    return sel(b > a, b, a);
}

/** Lane-wise min keeping @p a on ties. */
template <typename V>
inline V
minV(V a, V b)
{
    return sel(b < a, b, a);
}

/** Linear-gap family (mirrors detail::linearCell). */
template <typename V>
inline void
linearCellV(const V *up, const V *left, const V *diag, V subst, V gap,
            bool clamp_zero, V *score, V &ptr)
{
    const V mat = diag[0] + subst;
    const V ins = up[0] + gap;
    const V del = left[0] + gap;
    V best = maxV(maxV(mat, ins), del);
    const V clamp = clamp_zero ? (best < V{}) : V{};
    best = clamp_zero ? maxV(best, V{}) : best;

    V p = splat<V>(core::tb::Left);
    p = sel(best == ins, splat<V>(core::tb::Up), p);
    p = sel(best == mat, splat<V>(core::tb::Diag), p);
    p = sel(clamp, splat<V>(core::tb::End), p);
    score[0] = best;
    ptr = p;
}

/** Affine-gap family (mirrors detail::affineCell). */
template <typename V>
inline void
affineCellV(const V *up, const V *left, const V *diag, V subst, V open,
            V extend, bool clamp_zero, V *score, V &ptr)
{
    using namespace affine_ptr;
    V p = V{};
    const V ixo = up[0] - open;
    const V ixe = up[1] - extend;
    const V mx = ixe > ixo;
    const V ix = sel(mx, ixe, ixo);
    p |= mx & splat<V>(IxExtBit);

    const V iyo = left[0] - open;
    const V iye = left[2] - extend;
    const V my = iye > iyo;
    const V iy = sel(my, iye, iyo);
    p |= my & splat<V>(IyExtBit);

    const V mat = diag[0] + subst;
    V h = maxV(maxV(mat, ix), iy);
    const V clamp = clamp_zero ? (h < V{}) : V{};
    h = clamp_zero ? maxV(h, V{}) : h;

    V src = splat<V>(HIy);
    src = sel(h == ix, splat<V>(HIx), src);
    src = sel(h == mat, splat<V>(HDiag), src);
    src = sel(clamp, splat<V>(HEnd), src);
    score[0] = h;
    score[1] = ix;
    score[2] = iy;
    ptr = p | src;
}

/** Two-piece affine family (mirrors detail::twoPieceCell). */
template <typename V>
inline void
twoPieceCellV(const V *up, const V *left, const V *diag, V subst, V open1,
              V extend1, V open2, V extend2, bool clamp_zero, V *score,
              V &ptr)
{
    using namespace two_piece_ptr;
    V p = V{};
    const V ixo = up[0] - open1, ixe = up[1] - extend1;
    const V mx = ixe > ixo;
    const V ix = sel(mx, ixe, ixo);
    p |= mx & splat<V>(IxExtBit);

    const V iyo = left[0] - open1, iye = left[2] - extend1;
    const V my = iye > iyo;
    const V iy = sel(my, iye, iyo);
    p |= my & splat<V>(IyExtBit);

    const V ix2o = up[0] - open2, ix2e = up[3] - extend2;
    const V mx2 = ix2e > ix2o;
    const V ix2 = sel(mx2, ix2e, ix2o);
    p |= mx2 & splat<V>(Ix2ExtBit);

    const V iy2o = left[0] - open2, iy2e = left[4] - extend2;
    const V my2 = iy2e > iy2o;
    const V iy2 = sel(my2, iy2e, iy2o);
    p |= my2 & splat<V>(Iy2ExtBit);

    const V mat = diag[0] + subst;
    V h = maxV(maxV(maxV(mat, ix), maxV(iy, ix2)), iy2);
    const V clamp = clamp_zero ? (h < V{}) : V{};
    h = clamp_zero ? maxV(h, V{}) : h;

    V src = splat<V>(HIy2);
    src = sel(h == ix2, splat<V>(HIx2), src);
    src = sel(h == iy, splat<V>(HIy), src);
    src = sel(h == ix, splat<V>(HIx), src);
    src = sel(h == mat, splat<V>(HDiag), src);
    src = sel(clamp, splat<V>(HEnd), src);
    score[0] = h;
    score[1] = ix;
    score[2] = iy;
    score[3] = ix2;
    score[4] = iy2;
    ptr = p | src;
}

/**
 * Family-level lane cells for the DNA kernels: substitution score from a
 * lane-wise match/mismatch select, then the family recurrence. Kernel
 * headers forward their `laneCell` here.
 */
template <typename V, typename Params>
inline void
dnaLinearLaneCell(const V *up, const V *left, const V *diag, V qry, V ref,
                  const Params &p, bool clamp_zero, V *score, V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    linearCellV(up, left, diag, subst, splat<V>(p.linearGap), clamp_zero,
                score, ptr);
}

template <typename V, typename Params>
inline void
dnaAffineLaneCell(const V *up, const V *left, const V *diag, V qry, V ref,
                  const Params &p, bool clamp_zero, V *score, V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    affineCellV(up, left, diag, subst, splat<V>(p.gapOpen),
                splat<V>(p.gapExtend), clamp_zero, score, ptr);
}

template <typename V, typename Params>
inline void
dnaTwoPieceLaneCell(const V *up, const V *left, const V *diag, V qry,
                    V ref, const Params &p, bool clamp_zero, V *score,
                    V &ptr)
{
    const V subst =
        sel(qry == ref, splat<V>(p.match), splat<V>(p.mismatch));
    twoPieceCellV(up, left, diag, subst, splat<V>(p.gapOpen1),
                  splat<V>(p.gapExtend1), splat<V>(p.gapOpen2),
                  splat<V>(p.gapExtend2), clamp_zero, score, ptr);
}

/**
 * Protein local-linear lane cell: the substitution score is a per-lane
 * gather from the dense 20x20 matrix (ISAs without a real gather lower
 * to exactly this scalar loop; the DP recurrence itself — the adds,
 * maxes, clamp and traceback decode — stays fully vectorized), then the
 * shared linear-gap recurrence. Lane character codes beyond a pair's
 * own length are default-encoded (0), a valid matrix row/column, so the
 * gather never reads out of bounds.
 */
template <typename V, typename Params>
inline void
proteinLocalLaneCell(const V *up, const V *left, const V *diag, V qry,
                     V ref, const Params &p, V *score, V &ptr)
{
    constexpr int W = static_cast<int>(sizeof(V) / sizeof(int32_t));
    V subst{};
    for (int lane = 0; lane < W; lane++)
        subst[lane] = p.subst(qry[lane], ref[lane]);
    linearCellV(up, left, diag, subst, splat<V>(p.linearGap), true, score,
                ptr);
}

/** sDTW distance cell (mirrors kernels::Sdtw::peFunc). */
template <typename V>
inline void
sdtwCellV(const V *up, const V *left, const V *diag, V qry, V ref,
          V *score, V &ptr)
{
    const V d = sel(qry > ref, qry - ref, ref - qry);
    V best = diag[0];
    V p = splat<V>(core::tb::Diag);
    const V mu = up[0] < best;
    best = sel(mu, up[0], best);
    p = sel(mu, splat<V>(core::tb::Up), p);
    const V ml = left[0] < best;
    best = sel(ml, left[0], best);
    p = sel(ml, splat<V>(core::tb::Left), p);
    score[0] = best + d;
    ptr = p;
}

} // namespace dphls::kernels::detail::simd

#endif // DPHLS_VEC

#endif // DPHLS_KERNELS_DETAIL_SIMD_HH
