/**
 * @file
 * Runtime registry of the 15 DP-HLS kernels.
 *
 * Couples each kernel specification with (i) the paper's published
 * Table 2 row (resource %, optimal NPE/NB/NK, achieved frequency,
 * throughput) for side-by-side reporting, (ii) its hardware-model
 * descriptor and frequency tier, and (iii) a type-erased runner that
 * generates the kernel's standard workload (Section 6.1) and executes it
 * on the simulated device. The benches regenerate every table and figure
 * through this registry.
 */

#ifndef DPHLS_KERNELS_REGISTRY_HH
#define DPHLS_KERNELS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/resource_model.hh"

namespace dphls::kernels {

/** One row of the paper's Table 2 (utilization for a 32-PE block). */
struct PaperRow
{
    double lutPct = 0;
    double ffPct = 0;
    double bramPct = 0;
    double dspPct = 0;
    int npe = 32;
    int nb = 1;
    int nk = 1;
    double fmaxMhz = 250.0;
    double alignsPerSec = 0;
};

/** Runner configuration (parallelism and workload size). */
struct RunConfig
{
    int npe = 32;
    int nb = 16;
    int nk = 4;
    int threads = 0;                //!< host workers (0 = one per channel)
    int count = 64;                 //!< alignments to simulate
    uint64_t seed = 42;
    bool skipTraceback = false;
    uint64_t hostOverheadCycles = 2000;
    /** Cost-model dispatch instead of the threshold rule. */
    bool costModelDispatch = false;
    /** Keep a CPU fallback backend alongside the device channels. */
    bool cpuFallback = false;
    /** Deterministic CPU rate for cost-model runs (0 = measure). */
    double cpuModeledCellsPerSec = 0;
    /** Add the modeled GPU backend (covered kernels only). */
    bool gpuModel = false;
    /** Scheduling class of the workload's ticket (0 = default FIFO). */
    int priority = 0;
    /** Ticket deadline in ms from submission (0 = no deadline). */
    double deadlineMs = 0;
};

/** Outcome of one simulated device run on the standard workload. */
struct RunResult
{
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;
    double fmaxMhz = 0;
    double cellsPerAlign = 0; //!< mean full-matrix cells (for GCUPS)
    int deadlineMisses = 0;   //!< jobs finished past the ticket deadline
};

/** Registry entry for one kernel. */
struct KernelEntry
{
    int id = 0;
    std::string name;
    std::string alphabet;
    int nLayers = 1;
    int tbPtrBits = 2;
    bool banded = false;
    bool hasTraceback = true;
    int bandWidth = 0;              //!< standard band for banded kernels
    PaperRow paper;
    double fmaxMhz = 250.0;         //!< from the frequency model
    model::KernelHwDesc hw;         //!< at the standard workload maxima
    std::function<RunResult(const RunConfig &)> run;
};

/** All 15 kernels, ordered by id. */
const std::vector<KernelEntry> &registry();

/** Lookup by kernel id (throws if unknown). */
const KernelEntry &kernelById(int id);

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_REGISTRY_HH
