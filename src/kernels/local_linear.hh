/**
 * @file
 * Kernel #3: Local Linear Alignment (Smith-Waterman).
 *
 * Modifications relative to kernel #1 (Table 1): zero initialization,
 * score clamped at zero with an End traceback pointer (paper Listing 6),
 * traceback from the maximum-scoring cell to the first zero-score cell.
 * Compared against the Vitis Genomics Library HLS baseline in Section 7.5.
 */

#ifndef DPHLS_KERNELS_LOCAL_LINEAR_HH
#define DPHLS_KERNELS_LOCAL_LINEAR_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct LocalLinear
{
    static constexpr int kernelId = 3;
    static constexpr const char *name = "Local Linear (Smith-Waterman)";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Local;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 2;
        ScoreT mismatch = -1;
        ScoreT linearGap = -1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }
    static ScoreT initRowScore(int, int, const Params &) { return 0; }
    static ScoreT initColScore(int, int, const Params &) { return 0; }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::linearCell(
            in.diag[0], in.up[0], in.left[0], subst, p.linearGap, true);
        return {{cell.score}, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaLinearLaneCell(up, left, diag, qry, ref, p, true,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 3;
        p.maxMin2 = 3;         // 3-way max plus the zero clamp
        p.scoreWidth = 16;
        p.critPathLevels = 4;  // add -> max -> max -> clamp
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_LOCAL_LINEAR_HH
