/**
 * @file
 * Shared recurrence/traceback building blocks for the kernel families.
 *
 * The 15 kernels in Table 1 fall into four scoring families (linear gap,
 * affine gap, two-piece affine gap, DTW-style distance) crossed with the
 * four traceback strategies. The per-cell arithmetic and the traceback
 * FSMs of each family are implemented once here; each kernel header then
 * only configures initialization, alphabet, banding and strategy, exactly
 * mirroring the "Modifications in DP-HLS" column of Table 1.
 */

#ifndef DPHLS_KERNELS_DETAIL_HH
#define DPHLS_KERNELS_DETAIL_HH

#include <array>

#include "core/types.hh"

namespace dphls::kernels::detail {

/**
 * Traceback pointer layout for the affine family (4 bits, matching the
 * paper's ap_uint<4> for kernel #2):
 *   bits[1:0] : source of H  (0 diag, 1 Ix, 2 Iy, 3 end)
 *   bit[2]    : Ix extends an existing gap (1) or opens from H (0)
 *   bit[3]    : Iy extends an existing gap (1) or opens from H (0)
 */
namespace affine_ptr {
constexpr uint8_t HDiag = 0;
constexpr uint8_t HIx = 1;
constexpr uint8_t HIy = 2;
constexpr uint8_t HEnd = 3;
constexpr uint8_t IxExtBit = 1 << 2;
constexpr uint8_t IyExtBit = 1 << 3;
} // namespace affine_ptr

/** Affine-family traceback FSM states (paper Listing 3, left). */
enum AffineState : uint8_t { MM = 0, INS = 1, DEL = 2 };

/**
 * Traceback pointer layout for the two-piece affine family (7 bits,
 * matching the paper's ">= 7 bits per pointer" for kernels #5/#13):
 *   bits[2:0] : source of H (0 diag, 1 Ix, 2 Iy, 3 I'x, 4 I'y, 5 end)
 *   bit[3..6] : extend flags for Ix, Iy, I'x, I'y respectively
 */
namespace two_piece_ptr {
constexpr uint8_t HDiag = 0;
constexpr uint8_t HIx = 1;
constexpr uint8_t HIy = 2;
constexpr uint8_t HIx2 = 3;
constexpr uint8_t HIy2 = 4;
constexpr uint8_t HEnd = 5;
constexpr uint8_t SrcMask = 0x7;
constexpr uint8_t IxExtBit = 1 << 3;
constexpr uint8_t IyExtBit = 1 << 4;
constexpr uint8_t Ix2ExtBit = 1 << 5;
constexpr uint8_t Iy2ExtBit = 1 << 6;
} // namespace two_piece_ptr

/** Two-piece traceback FSM states (paper Listing 3, right). */
enum TwoPieceState : uint8_t
{
    TpMM = 0,
    TpIns = 1,
    TpDel = 2,
    TpLongIns = 3,
    TpLongDel = 4,
};

/**
 * Branch-free building blocks for the cell updates.
 *
 * Two ideas keep the recurrences free of data-dependent branches (which
 * mispredict badly — e.g. the local-alignment zero clamp flips at
 * essentially random cells):
 *
 *  - score maxima are plain `b > a ? b : a` selects (cmov/blend);
 *  - the traceback source is *decoded after the fact* from equality
 *    tests against the final maximum, assigned in reverse priority
 *    order so the last (highest-priority) match wins. This reproduces
 *    the classic strictly-greater update chain bit-for-bit: a candidate
 *    only beat the chain if it was strictly greater than every
 *    higher-priority candidate, so the highest-priority candidate equal
 *    to the maximum is exactly the chain's pick.
 */
template <typename ScoreT>
inline ScoreT
maxOf(ScoreT a, ScoreT b)
{
    return b > a ? b : a;
}

/** Branch-free max of open/extend gap candidates, or-ing the extend bit. */
template <typename ScoreT>
inline ScoreT
gapSelect(ScoreT open_cand, ScoreT ext_cand, uint8_t ext_bit, uint8_t &ptr)
{
    const bool ext = ext_cand > open_cand;
    ptr = static_cast<uint8_t>(ptr | (ext ? ext_bit : 0));
    return ext ? ext_cand : open_cand;
}

/**
 * Linear-gap cell update: returns the best of diag+subst / up+gap /
 * left+gap (optionally clamped at zero for local alignment, writing the
 * End pointer). Tie-break priority is Diag > Up > Left, the same order
 * the reference implementations use.
 */
template <typename ScoreT>
struct LinearCell
{
    ScoreT score;
    core::TbPtr ptr;
};

template <typename ScoreT>
inline LinearCell<ScoreT>
linearCell(ScoreT diag, ScoreT up, ScoreT left, ScoreT subst, ScoreT gap,
           bool clamp_zero)
{
    const ScoreT mat = diag + subst;
    const ScoreT ins = up + gap;
    const ScoreT del = left + gap;
    // The clamp is a max (cmov), never a two-output branch: the zero
    // crossing is data-random in local alignment and would mispredict.
    ScoreT best = maxOf(maxOf(mat, ins), del);
    const bool clamp = clamp_zero & (best < ScoreT{0});
    best = clamp_zero ? maxOf(best, ScoreT{0}) : best;

    uint8_t ptr = core::tb::Left;
    ptr = best == ins ? core::tb::Up : ptr;
    ptr = best == mat ? core::tb::Diag : ptr;
    ptr = clamp ? core::tb::End : ptr;
    return {best, core::TbPtr{ptr}};
}

/** Linear-family traceback FSM: single state, pointer is the move. */
inline core::TbStep
linearTbStep(core::TbPtr ptr)
{
    core::TbStep s;
    switch (ptr.bits) {
      case core::tb::Diag: s.move = core::TbMove::Diag; break;
      case core::tb::Up: s.move = core::TbMove::Up; break;
      case core::tb::Left: s.move = core::TbMove::Left; break;
      default: s.stop = true; break;
    }
    return s;
}

/** Affine-gap cell update (Gotoh): layers [H, Ix, Iy]. */
template <typename ScoreT>
struct AffineCell
{
    std::array<ScoreT, 3> score;
    core::TbPtr ptr;
};

template <typename ScoreT>
inline AffineCell<ScoreT>
affineCell(const std::array<ScoreT, 3> &up,
           const std::array<ScoreT, 3> &left,
           const std::array<ScoreT, 3> &diag, ScoreT subst, ScoreT open,
           ScoreT extend, bool clamp_zero)
{
    using namespace affine_ptr;
    uint8_t ptr = 0;

    // Ix: vertical gap (consumes query), from H(i-1,j) or Ix(i-1,j).
    const ScoreT ix =
        gapSelect(up[0] - open, up[1] - extend, IxExtBit, ptr);
    // Iy: horizontal gap (consumes reference).
    const ScoreT iy =
        gapSelect(left[0] - open, left[2] - extend, IyExtBit, ptr);
    // H: best of diagonal continuation and the two gap layers.
    const ScoreT mat = diag[0] + subst;
    // Clamp via max (cmov), never a two-output branch: the zero
    // crossing is data-random in local alignment and would mispredict.
    ScoreT h = maxOf(maxOf(mat, ix), iy);
    const bool clamp = clamp_zero & (h < ScoreT{0});
    h = clamp_zero ? maxOf(h, ScoreT{0}) : h;

    uint8_t src = HIy;
    src = h == ix ? HIx : src;
    src = h == mat ? HDiag : src;
    src = clamp ? HEnd : src;
    ptr = static_cast<uint8_t>(ptr | src);
    return {{h, ix, iy}, core::TbPtr{ptr}};
}

/** Affine-family traceback FSM (states MM / INS / DEL). */
inline core::TbStep
affineTbStep(uint8_t state, core::TbPtr ptr)
{
    using namespace affine_ptr;
    core::TbStep s;
    if (state == MM) {
        switch (ptr.bits & 0x3) {
          case HDiag:
            s.move = core::TbMove::Diag;
            s.nextState = MM;
            break;
          case HIx:
            s.move = core::TbMove::None;
            s.nextState = INS;
            break;
          case HIy:
            s.move = core::TbMove::None;
            s.nextState = DEL;
            break;
          default:
            s.stop = true;
            break;
        }
    } else if (state == INS) {
        s.move = core::TbMove::Up;
        s.nextState = (ptr.bits & IxExtBit) ? INS : MM;
    } else { // DEL
        s.move = core::TbMove::Left;
        s.nextState = (ptr.bits & IyExtBit) ? DEL : MM;
    }
    return s;
}

/** Two-piece affine cell update: layers [H, Ix, Iy, I'x, I'y]. */
template <typename ScoreT>
struct TwoPieceCell
{
    std::array<ScoreT, 5> score;
    core::TbPtr ptr;
};

template <typename ScoreT>
inline TwoPieceCell<ScoreT>
twoPieceCell(const std::array<ScoreT, 5> &up,
             const std::array<ScoreT, 5> &left,
             const std::array<ScoreT, 5> &diag, ScoreT subst, ScoreT open1,
             ScoreT extend1, ScoreT open2, ScoreT extend2, bool clamp_zero)
{
    using namespace two_piece_ptr;
    uint8_t ptr = 0;

    const ScoreT ix =
        gapSelect(up[0] - open1, up[1] - extend1, IxExtBit, ptr);
    const ScoreT iy =
        gapSelect(left[0] - open1, left[2] - extend1, IyExtBit, ptr);
    const ScoreT ix2 =
        gapSelect(up[0] - open2, up[3] - extend2, Ix2ExtBit, ptr);
    const ScoreT iy2 =
        gapSelect(left[0] - open2, left[4] - extend2, Iy2ExtBit, ptr);

    const ScoreT mat = diag[0] + subst;
    ScoreT h = maxOf(maxOf(maxOf(mat, ix), maxOf(iy, ix2)), iy2);
    const bool clamp = clamp_zero & (h < ScoreT{0});
    h = clamp_zero ? maxOf(h, ScoreT{0}) : h;

    uint8_t src = HIy2;
    src = h == ix2 ? HIx2 : src;
    src = h == iy ? HIy : src;
    src = h == ix ? HIx : src;
    src = h == mat ? HDiag : src;
    src = clamp ? HEnd : src;
    ptr = static_cast<uint8_t>(ptr | src);
    return {{h, ix, iy, ix2, iy2}, core::TbPtr{ptr}};
}

/** Two-piece traceback FSM (paper Listing 3, right). */
inline core::TbStep
twoPieceTbStep(uint8_t state, core::TbPtr ptr)
{
    using namespace two_piece_ptr;
    core::TbStep s;
    switch (state) {
      case TpMM:
        switch (ptr.bits & SrcMask) {
          case HDiag:
            s.move = core::TbMove::Diag;
            s.nextState = TpMM;
            break;
          case HIx:
            s.move = core::TbMove::None;
            s.nextState = TpIns;
            break;
          case HIy:
            s.move = core::TbMove::None;
            s.nextState = TpDel;
            break;
          case HIx2:
            s.move = core::TbMove::None;
            s.nextState = TpLongIns;
            break;
          case HIy2:
            s.move = core::TbMove::None;
            s.nextState = TpLongDel;
            break;
          default:
            s.stop = true;
            break;
        }
        break;
      case TpIns:
        s.move = core::TbMove::Up;
        s.nextState = (ptr.bits & IxExtBit) ? TpIns : TpMM;
        break;
      case TpDel:
        s.move = core::TbMove::Left;
        s.nextState = (ptr.bits & IyExtBit) ? TpDel : TpMM;
        break;
      case TpLongIns:
        s.move = core::TbMove::Up;
        s.nextState = (ptr.bits & Ix2ExtBit) ? TpLongIns : TpMM;
        break;
      default: // TpLongDel
        s.move = core::TbMove::Left;
        s.nextState = (ptr.bits & Iy2ExtBit) ? TpLongDel : TpMM;
        break;
    }
    return s;
}

} // namespace dphls::kernels::detail

#endif // DPHLS_KERNELS_DETAIL_HH
