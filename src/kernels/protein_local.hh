/**
 * @file
 * Kernel #15: Local Linear Alignment with protein sequences.
 *
 * Smith-Waterman over the 20-letter amino-acid alphabet with a full
 * BLOSUM62 substitution matrix (EMBOSS Water / BLASTp style). The 20x20
 * matrix is what drives this kernel's elevated BRAM usage in Table 2.
 * Compared against CUDASW++ 4.0 on GPU (traceback disabled for parity).
 */

#ifndef DPHLS_KERNELS_PROTEIN_LOCAL_HH
#define DPHLS_KERNELS_PROTEIN_LOCAL_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"
#include "seq/substitution_matrix.hh"

namespace dphls::kernels {

struct ProteinLocal
{
    static constexpr int kernelId = 15;
    static constexpr const char *name = "Protein Local Linear (BLOSUM62)";

    using CharT = seq::AminoChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Local;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    struct Params
    {
        seq::ProteinMatrix subst = seq::blosum62();
        ScoreT linearGap = -4;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }
    static ScoreT initRowScore(int, int, const Params &) { return 0; }
    static ScoreT initColScore(int, int, const Params &) { return 0; }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst = p.subst(in.qryVal.code, in.refVal.code);
        const auto cell = detail::linearCell(
            in.diag[0], in.up[0], in.left[0], subst, p.linearGap, true);
        return {{cell.score}, cell.ptr};
    }

#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::proteinLocalLaneCell(up, left, diag, qry, ref, p,
                                           score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 3;
        p.maxMin2 = 3;
        p.scoreWidth = 16;
        p.tableLookups = 1;
        p.tableEntries = 400;  // 20x20 BLOSUM62
        p.critPathLevels = 6;  // wide table mux ahead of the adder tree
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_PROTEIN_LOCAL_HH
