/**
 * @file
 * Kernel #10: Viterbi Algorithm (Pair-HMM) in log space.
 *
 * Three layers track the most likely path probability ending in the
 * Match, Insert and Delete hidden states (paper Fig. 1, Viterbi panel).
 * Probabilities are kept as fixed-point log values so the per-cell
 * products become additions, matching the paper's log_mu/log_lambda
 * parameters (Listing 2, right) plus a 5x5 emission matrix. No traceback
 * (Table 1). The reported score is the Match-state log probability of the
 * bottom-right cell.
 */

#ifndef DPHLS_KERNELS_VITERBI_HH
#define DPHLS_KERNELS_VITERBI_HH

#include <cmath>

#include "core/kernel_concept.hh"
#include "hls/ap_fixed.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct Viterbi
{
    static constexpr int kernelId = 10;
    static constexpr const char *name = "Viterbi (Pair-HMM)";

    using CharT = seq::DnaChar;
    using ScoreT = hls::ApFixed<32, 14>;

    static constexpr int nLayers = 3; //!< VM, VI, VJ
    static constexpr bool hasTraceback = false;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 0;
    static constexpr int ii = 1;

    /** Log-space HMM parameters (27 values, paper front-end step 1.3). */
    struct Params
    {
        ScoreT logDelta{0};      //!< log d: gap-open transition
        ScoreT logEpsilon{0};    //!< log e: gap-extend transition
        ScoreT log1M2Delta{0};   //!< log (1 - 2d)
        ScoreT log1MEpsilon{0};  //!< log (1 - e)
        ScoreT logEmission[5][5]{}; //!< M-state emissions over {A,C,G,T,-}
        ScoreT logQ[5]{};        //!< I/J-state emissions
    };

    static Params
    defaultParams()
    {
        Params p;
        const double delta = 0.1;
        const double epsilon = 0.3;
        p.logDelta = ScoreT(std::log(delta));
        p.logEpsilon = ScoreT(std::log(epsilon));
        p.log1M2Delta = ScoreT(std::log(1.0 - 2.0 * delta));
        p.log1MEpsilon = ScoreT(std::log(1.0 - epsilon));
        const double p_match = 0.22;
        const double p_mismatch = 0.01;
        for (int a = 0; a < 5; a++) {
            for (int b = 0; b < 5; b++) {
                p.logEmission[a][b] =
                    ScoreT(std::log(a == b ? p_match : p_mismatch));
            }
            p.logQ[a] = ScoreT(std::log(0.25));
        }
        return p;
    }

    static ScoreT
    originScore(int layer, const Params &)
    {
        return layer == 0
            ? ScoreT(0)
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    /** Top row: only the J (reference-gap) state is reachable. */
    static ScoreT
    initRowScore(int j, int layer, const Params &p)
    {
        if (layer == 2) {
            return p.logDelta +
                   ScoreT::fromRaw(p.logEpsilon.raw() * (j - 1)) +
                   ScoreT::fromRaw(p.logQ[0].raw() * j);
        }
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    /** Left column: only the I (query-gap) state is reachable. */
    static ScoreT
    initColScore(int i, int layer, const Params &p)
    {
        if (layer == 1) {
            return p.logDelta +
                   ScoreT::fromRaw(p.logEpsilon.raw() * (i - 1)) +
                   ScoreT::fromRaw(p.logQ[0].raw() * i);
        }
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const int x = in.qryVal.code;
        const int y = in.refVal.code;

        // VM(i,j) = e(x,y) + max((1-2d)VM, (1-e)VI, (1-e)VJ) at (i-1,j-1).
        ScoreT vm = p.log1M2Delta + in.diag[0];
        const ScoreT vi_d = p.log1MEpsilon + in.diag[1];
        const ScoreT vj_d = p.log1MEpsilon + in.diag[2];
        if (vi_d > vm)
            vm = vi_d;
        if (vj_d > vm)
            vm = vj_d;
        vm += p.logEmission[x][y];

        // VI(i,j) = q(x) + max(d VM, e VI) at (i-1,j).
        ScoreT vi = p.logDelta + in.up[0];
        const ScoreT vi_e = p.logEpsilon + in.up[1];
        if (vi_e > vi)
            vi = vi_e;
        vi += p.logQ[x];

        // VJ(i,j) = q(y) + max(d VM, e VJ) at (i,j-1).
        ScoreT vj = p.logDelta + in.left[0];
        const ScoreT vj_e = p.logEpsilon + in.left[2];
        if (vj_e > vj)
            vj = vj_e;
        vj += p.logQ[y];

        return {{vm, vi, vj}, core::TbPtr{}};
    }

#ifdef DPHLS_VEC
    /**
     * Vectorized lane cell (lane_engine.hh) over raw ApFixed lanes;
     * mirrors peFunc per lane (see detail::simd::viterbiLaneCell for
     * why int32 lane arithmetic is exact here).
     */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::viterbiLaneCell(up, left, diag, qry, ref, p, score,
                                      ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr)
    {
        return core::TbStep{core::TbMove::Diag, 0, true};
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 8;           // transition adds + emission adds
        p.maxMin2 = 4;          // VM 3-way + VI/VJ 2-way maxima
        p.scoreWidth = 32;
        p.tableLookups = 2;     // emission + Q lookups
        p.tableEntries = 30;
        p.critPathLevels = 11;  // wide fixed-point adds back to back
        p.lutExtra = 420;       // wide log-space selection network
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_VITERBI_HH
