/**
 * @file
 * Kernel #2: Global Affine Alignment (Gotoh).
 *
 * Three scoring layers (H, Ix, Iy) with affine gap penalties; 4-bit
 * traceback pointers (paper front-end step 1.5) and the MM/INS/DEL FSM of
 * Listing 3 (left). Compared against the GACT RTL accelerator in Fig. 4/5.
 */

#ifndef DPHLS_KERNELS_GLOBAL_AFFINE_HH
#define DPHLS_KERNELS_GLOBAL_AFFINE_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct GlobalAffine
{
    static constexpr int kernelId = 2;
    static constexpr const char *name = "Global Affine (Gotoh)";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 3; //!< H, Ix, Iy
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 4;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 2;
        ScoreT mismatch = -3;
        ScoreT gapOpen = 4;   //!< cost of the first gap character
        ScoreT gapExtend = 1; //!< cost of each further gap character
    };

    static Params defaultParams() { return {}; }

    static ScoreT
    originScore(int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initRowScore(int j, int layer, const Params &p)
    {
        const ScoreT gap = -(p.gapOpen + p.gapExtend * (j - 1));
        if (layer == 0 || layer == 2) // H and Iy carry the horizontal gap
            return gap;
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initColScore(int i, int layer, const Params &p)
    {
        const ScoreT gap = -(p.gapOpen + p.gapExtend * (i - 1));
        if (layer == 0 || layer == 1) // H and Ix carry the vertical gap
            return gap;
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::affineCell(
            in.up, in.left, in.diag, subst, p.gapOpen, p.gapExtend, false);
        return {cell.score, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaAffineLaneCell(up, left, diag, qry, ref, p, false,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = detail::MM;

    static core::TbStep
    tbStep(uint8_t state, core::TbPtr ptr)
    {
        return detail::affineTbStep(state, ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 5;          // 2 (Ix) + 2 (Iy) + 1 (diag+subst)
        p.maxMin2 = 4;         // Ix max, Iy max, 3-way H max
        p.scoreWidth = 16;
        p.critPathLevels = 4;  // sub -> max -> max -> max
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_GLOBAL_AFFINE_HH
