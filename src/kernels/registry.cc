#include "kernels/registry.hh"

#include <algorithm>
#include <stdexcept>

#include "host/stream_pipeline.hh"
#include "kernels/all.hh"
#include "model/frequency_model.hh"
#include "seq/profile_builder.hh"
#include "seq/protein_sampler.hh"
#include "seq/read_simulator.hh"
#include "seq/squiggle.hh"

namespace dphls::kernels {

namespace {

/**
 * Standard workload sizes (Section 6.1): 256-base DNA reads at 30% error,
 * 256-column profiles, 256-sample complex signals, SquiggleFilter-style
 * query/reference signals, 256-residue protein pairs.
 */
constexpr int dnaLen = 256;
constexpr int profileCols = 256;
constexpr int complexLen = 512;
constexpr int sdtwQueryEvents = 96;
constexpr int sdtwRefEvents = 320;
constexpr int proteinMaxLen = 512;

template <typename CharT>
using Jobs = std::vector<host::AlignmentJob<CharT>>;

/** DNA pairs: simulated reads against their true reference windows. */
enum class DnaShape { Equal, AsIs, Overlapping, Contained };

Jobs<seq::DnaChar>
dnaJobs(int count, uint64_t seed, DnaShape shape)
{
    Jobs<seq::DnaChar> jobs;
    jobs.reserve(static_cast<size_t>(count));
    seq::Rng rng(seed);
    seq::ReadSimConfig cfg;
    cfg.readLength = dnaLen;

    if (shape == DnaShape::Overlapping || shape == DnaShape::Contained) {
        const seq::DnaSequence genome =
            seq::makeReferenceGenome(dnaLen * 8, rng);
        for (int i = 0; i < count; i++) {
            host::AlignmentJob<seq::DnaChar> job;
            if (shape == DnaShape::Overlapping) {
                // Query suffix overlaps reference prefix (assembly case).
                const int start = static_cast<int>(
                    rng.below(static_cast<uint64_t>(genome.length() -
                                                    dnaLen * 3 / 2)));
                std::vector<seq::DnaChar> w1(
                    genome.chars.begin() + start,
                    genome.chars.begin() + start + dnaLen);
                std::vector<seq::DnaChar> w2(
                    genome.chars.begin() + start + dnaLen / 2,
                    genome.chars.begin() + start + dnaLen * 3 / 2);
                job.query = seq::DnaSequence(std::move(w1));
                job.reference = seq::mutateDna(
                    seq::DnaSequence(std::move(w2)), 0.05, 0.02, rng);
                if (job.reference.length() > dnaLen)
                    job.reference.chars.resize(dnaLen);
            } else {
                // Short query contained in a longer reference window.
                const int start = static_cast<int>(rng.below(
                    static_cast<uint64_t>(genome.length() - dnaLen)));
                std::vector<seq::DnaChar> w(
                    genome.chars.begin() + start,
                    genome.chars.begin() + start + dnaLen);
                job.reference = seq::DnaSequence(std::move(w));
                const int qlen = dnaLen * 3 / 4;
                const int qstart = static_cast<int>(
                    rng.below(static_cast<uint64_t>(dnaLen - qlen)));
                std::vector<seq::DnaChar> qw(
                    job.reference.chars.begin() + qstart,
                    job.reference.chars.begin() + qstart + qlen);
                job.query = seq::mutateDna(
                    seq::DnaSequence(std::move(qw)), 0.1, 0.05, rng);
                if (job.query.length() > dnaLen)
                    job.query.chars.resize(dnaLen);
            }
            jobs.push_back(std::move(job));
        }
        return jobs;
    }

    auto pairs = seq::simulateReadPairs(count, cfg, dnaLen, seed);
    for (auto &p : pairs) {
        host::AlignmentJob<seq::DnaChar> job;
        job.query = std::move(p.query);
        job.reference = std::move(p.target);
        if (shape == DnaShape::Equal) {
            // Global kernels (and banded ones in particular) work on
            // equal-length pairs so the end cell stays inside the band.
            const int len =
                std::min(job.query.length(), job.reference.length());
            job.query.chars.resize(static_cast<size_t>(len));
            job.reference.chars.resize(static_cast<size_t>(len));
        }
        jobs.push_back(std::move(job));
    }
    return jobs;
}

Jobs<seq::ProfileColumn>
profileJobs(int count, uint64_t seed)
{
    Jobs<seq::ProfileColumn> jobs;
    auto pairs = seq::sampleProfilePairs(count, profileCols, seed);
    for (auto &p : pairs)
        jobs.push_back({std::move(p.first), std::move(p.second)});
    return jobs;
}

Jobs<seq::ComplexSample>
complexJobs(int count, uint64_t seed)
{
    Jobs<seq::ComplexSample> jobs;
    seq::Rng rng(seed);
    for (int i = 0; i < count; i++) {
        auto a = seq::randomComplexSignal(complexLen, rng);
        auto b = seq::warpComplexSignal(a, 0.15, 0.4, rng);
        if (b.length() > complexLen)
            b.chars.resize(static_cast<size_t>(complexLen));
        jobs.push_back({std::move(b), std::move(a)});
    }
    return jobs;
}

Jobs<seq::SignalSample>
signalJobs(int count, uint64_t seed)
{
    Jobs<seq::SignalSample> jobs;
    auto pairs =
        seq::sampleSquigglePairs(count, sdtwRefEvents, sdtwQueryEvents, seed);
    for (auto &p : pairs) {
        if (p.query.length() > sdtwQueryEvents * 2) {
            p.query.chars.resize(
                static_cast<size_t>(sdtwQueryEvents * 2));
        }
        jobs.push_back({std::move(p.query), std::move(p.reference)});
    }
    return jobs;
}

Jobs<seq::AminoChar>
proteinJobs(int count, uint64_t seed)
{
    // Lengths sampled from the Swiss-Prot-like log-normal (clamped to
    // the device maximum): the baseline tools pay for E[len^2], which is
    // much larger than (E[len])^2 for log-normal lengths.
    Jobs<seq::AminoChar> jobs;
    seq::Rng rng(seed);
    for (int i = 0; i < count; i++) {
        const int len = seq::sampleProteinLength(rng, 64, proteinMaxLen);
        host::AlignmentJob<seq::AminoChar> job;
        job.reference = seq::sampleProtein(len, rng);
        job.query = seq::mutateProtein(job.reference, 0.15, 0.04, rng);
        if (job.query.length() > proteinMaxLen)
            job.query.chars.resize(proteinMaxLen);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Build the type-erased runner for kernel K over a job generator. */
template <typename K, typename MakeJobs>
std::function<RunResult(const RunConfig &)>
makeRunner(MakeJobs make_jobs, int band_width, int max_q, int max_r)
{
    const double fmax = model::kernelFrequencyMhz<K>();
    return [=](const RunConfig &rc) {
        auto jobs = make_jobs(rc.count, rc.seed);
        double cells = 0;
        for (const auto &j : jobs) {
            cells += static_cast<double>(j.query.length()) *
                     j.reference.length();
        }
        cells /= jobs.empty() ? 1 : static_cast<double>(jobs.size());

        host::BatchConfig bc;
        bc.npe = rc.npe;
        bc.nb = rc.nb;
        bc.nk = rc.nk;
        bc.threads = rc.threads;
        bc.fmaxMhz = fmax;
        bc.bandWidth = band_width;
        bc.maxQueryLength = max_q;
        bc.maxReferenceLength = max_r;
        bc.skipTraceback = rc.skipTraceback;
        bc.hostOverheadCycles = rc.hostOverheadCycles;
        bc.dispatch = rc.costModelDispatch ? host::DispatchPolicy::CostModel
                                           : host::DispatchPolicy::Threshold;
        bc.cpuFallback = rc.cpuFallback;
        bc.cpuModeledCellsPerSec = rc.cpuModeledCellsPerSec;
        bc.gpuModel = rc.gpuModel;
        bc.collectPathStats = false; // throughput-only run
        host::StreamPipeline<K> pipeline(bc);
        host::TicketOptions topt;
        topt.priority = rc.priority;
        if (rc.deadlineMs > 0)
            topt = host::TicketOptions::afterMs(rc.priority, rc.deadlineMs);
        const auto stats =
            pipeline.runAll(jobs, nullptr, nullptr, std::move(topt));

        RunResult out;
        out.alignsPerSec = stats.alignsPerSec;
        out.cyclesPerAlign = stats.cyclesPerAlign;
        out.fmaxMhz = fmax;
        out.cellsPerAlign = cells;
        out.deadlineMisses = stats.deadlineMisses;
        return out;
    };
}

template <typename K>
KernelEntry
makeEntry(const char *alphabet, PaperRow paper, int char_bits, int dsp_fixed,
          int band_width, int max_q, int max_r,
          std::function<RunResult(const RunConfig &)> run)
{
    KernelEntry e;
    e.id = K::kernelId;
    e.name = K::name;
    e.alphabet = alphabet;
    e.nLayers = K::nLayers;
    e.tbPtrBits = K::tbPtrBits;
    e.banded = K::banded;
    e.hasTraceback = K::hasTraceback;
    e.bandWidth = band_width;
    e.paper = paper;
    e.fmaxMhz = model::kernelFrequencyMhz<K>();
    e.hw = model::kernelHwDesc<K>(max_q, max_r, dsp_fixed);
    e.hw.charBits = char_bits;
    e.run = std::move(run);
    return e;
}

std::vector<KernelEntry>
buildRegistry()
{
    std::vector<KernelEntry> v;

    // Paper Table 2 rows: LUT%, FF%, BRAM%, DSP%, (NPE, NB, NK), fmax,
    // alignments/sec.
    v.push_back(makeEntry<GlobalLinear>(
        "DNA", {0.72, 0.42, 1.78, 0.029, 64, 16, 4, 250.0, 3.51e6}, 2, 2, 0,
        dnaLen, dnaLen,
        makeRunner<GlobalLinear>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<GlobalAffine>(
        "DNA", {1.30, 0.517, 1.78, 0.029, 32, 16, 4, 250.0, 2.85e6}, 2, 2, 0,
        dnaLen, dnaLen,
        makeRunner<GlobalAffine>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<LocalLinear>(
        "DNA", {0.95, 0.63, 1.67, 0.014, 32, 16, 5, 250.0, 3.43e6}, 2, 1, 0,
        dnaLen, dnaLen,
        makeRunner<LocalLinear>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::AsIs); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<LocalAffine>(
        "DNA", {1.60, 0.75, 1.67, 0.014, 32, 16, 4, 250.0, 2.71e6}, 2, 1, 0,
        dnaLen, dnaLen,
        makeRunner<LocalAffine>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::AsIs); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<GlobalTwoPiece>(
        "DNA", {2.03, 0.65, 2.67, 0.029, 32, 8, 5, 150.0, 1.06e6}, 2, 2, 0,
        dnaLen, dnaLen,
        makeRunner<GlobalTwoPiece>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<Overlap>(
        "DNA", {0.98, 0.66, 1.67, 0.014, 32, 16, 4, 250.0, 2.73e6}, 2, 1, 0,
        dnaLen, dnaLen,
        makeRunner<Overlap>(
            [](int n, uint64_t s) {
                return dnaJobs(n, s, DnaShape::Overlapping);
            },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<SemiGlobal>(
        "DNA", {1.17, 0.67, 0.83, 0.014, 32, 16, 4, 250.0, 3.34e6}, 2, 1, 0,
        dnaLen, dnaLen,
        makeRunner<SemiGlobal>(
            [](int n, uint64_t s) {
                return dnaJobs(n, s, DnaShape::Contained);
            },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<ProfileAlignment>(
        "Seq. Profiles", {3.66, 2.56, 2.56, 28.11, 16, 1, 5, 166.7, 3.70e4},
        80, 2, 0, profileCols, profileCols,
        makeRunner<ProfileAlignment>(
            [](int n, uint64_t s) { return profileJobs(n, s); }, 0,
            profileCols, profileCols)));

    v.push_back(makeEntry<Dtw>(
        "Complex Nos.", {1.62, 1.55, 1.88, 2.84, 64, 4, 3, 200.0, 2.31e5},
        64, 2, 0, complexLen, complexLen,
        makeRunner<Dtw>(
            [](int n, uint64_t s) { return complexJobs(n, s); }, 0,
            complexLen, complexLen)));

    v.push_back(makeEntry<Viterbi>(
        "DNA", {3.78, 1.69, 1.67, 0.014, 16, 4, 7, 125.0, 4.90e5}, 2, 1, 0,
        dnaLen, dnaLen,
        makeRunner<Viterbi>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            0, dnaLen, dnaLen)));

    v.push_back(makeEntry<BandedGlobalLinear>(
        "DNA", {1.02, 0.40, 0.94, 0.029, 64, 8, 7, 166.7, 2.25e6}, 2, 2, 64,
        dnaLen, dnaLen,
        makeRunner<BandedGlobalLinear>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            64, dnaLen, dnaLen)));

    v.push_back(makeEntry<BandedLocalAffine>(
        "DNA", {1.44, 0.70, 0.57, 0.014, 16, 16, 7, 200.0, 4.77e6}, 2, 1, 32,
        dnaLen, dnaLen,
        makeRunner<BandedLocalAffine>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::AsIs); },
            32, dnaLen, dnaLen)));

    v.push_back(makeEntry<BandedGlobalTwoPiece>(
        "DNA", {2.25, 0.69, 1.83, 0.029, 16, 8, 7, 125.0, 1.24e6}, 2, 2, 64,
        dnaLen, dnaLen,
        makeRunner<BandedGlobalTwoPiece>(
            [](int n, uint64_t s) { return dnaJobs(n, s, DnaShape::Equal); },
            64, dnaLen, dnaLen)));

    v.push_back(makeEntry<Sdtw>(
        "Integers", {1.22, 0.76, 0.57, 0.014, 32, 16, 5, 250.0, 5.16e6}, 16,
        1, 0, sdtwQueryEvents * 2, sdtwRefEvents,
        makeRunner<Sdtw>(
            [](int n, uint64_t s) { return signalJobs(n, s); }, 0,
            sdtwQueryEvents * 2, sdtwRefEvents)));

    v.push_back(makeEntry<ProteinLocal>(
        "Amino acids", {1.47, 0.95, 2.56, 0.014, 32, 8, 5, 200.0, 9.33e5},
        5, 1, 0, proteinMaxLen, proteinMaxLen,
        makeRunner<ProteinLocal>(
            [](int n, uint64_t s) { return proteinJobs(n, s); }, 0,
            proteinMaxLen, proteinMaxLen)));

    std::sort(v.begin(), v.end(),
              [](const KernelEntry &a, const KernelEntry &b) {
                  return a.id < b.id;
              });
    return v;
}

} // namespace

const std::vector<KernelEntry> &
registry()
{
    static const std::vector<KernelEntry> r = buildRegistry();
    return r;
}

const KernelEntry &
kernelById(int id)
{
    for (const auto &e : registry()) {
        if (e.id == id)
            return e;
    }
    throw std::out_of_range("unknown kernel id");
}

} // namespace dphls::kernels
