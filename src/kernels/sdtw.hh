/**
 * @file
 * Kernel #14: Semi-global Dynamic Time Warping (sDTW) over integer
 * signals, SquiggleFilter-style.
 *
 * The query (a raw nanopore read signal) must be consumed end-to-end but
 * may start anywhere along the reference signal: the top row is
 * initialized to zero and the result is the minimum of the bottom row.
 * Score-only (no traceback), absolute-difference distance. Compared
 * against the SquiggleFilter RTL accelerator in Fig. 4C/F (with its
 * match-bonus feature removed, as in the paper).
 */

#ifndef DPHLS_KERNELS_SDTW_HH
#define DPHLS_KERNELS_SDTW_HH

#include <cstdlib>

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct Sdtw
{
    static constexpr int kernelId = 14;
    static constexpr const char *name = "Semi-global DTW (sDTW)";

    using CharT = seq::SignalSample;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = false;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::SemiGlobal;
    static constexpr core::Objective objective = core::Objective::Minimize;
    static constexpr int tbPtrBits = 0;
    static constexpr int ii = 1;

    struct Params
    {
        // Distance is |q - r|; no tunable parameters (match-bonus removed
        // to mirror the paper's SquiggleFilter comparison).
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }

    /** Free start anywhere along the reference: zero top row. */
    static ScoreT initRowScore(int, int, const Params &) { return 0; }

    /** The query cannot be skipped: sentinel left column. */
    static ScoreT
    initColScore(int, int, const Params &)
    {
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &)
    {
        const ScoreT d = std::abs(
            static_cast<ScoreT>(in.qryVal.value) -
            static_cast<ScoreT>(in.refVal.value));
        ScoreT best = in.diag[0];
        uint8_t ptr = core::tb::Diag;
        if (in.up[0] < best) {
            best = in.up[0];
            ptr = core::tb::Up;
        }
        if (in.left[0] < best) {
            best = in.left[0];
            ptr = core::tb::Left;
        }
        return {{best + d}, core::TbPtr{ptr}};
    }

#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &, V *score, V &ptr)
    {
        detail::simd::sdtwCellV(up, left, diag, qry, ref, score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 3;          // diff, abs, accumulate
        p.maxMin2 = 2;         // 3-way min
        p.scoreWidth = 24;
        p.critPathLevels = 4;
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_SDTW_HH
