/**
 * @file
 * Kernel #9: Dynamic Time Warping over complex-number signals.
 *
 * The alphabet is a struct of two 32-bit fixed-point values (paper
 * Listing 1, right); the recurrence minimizes accumulated squared
 * Euclidean distance: S(i,j) = dist(Q_i, R_j) + min(S(i-1,j), S(i-1,j-1),
 * S(i,j-1)). The per-cell multiplications make this kernel DSP-bound
 * (Fig. 3E: DSP usage scales with NPE).
 */

#ifndef DPHLS_KERNELS_DTW_HH
#define DPHLS_KERNELS_DTW_HH

#include "core/kernel_concept.hh"
#include "hls/ap_fixed.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct Dtw
{
    static constexpr int kernelId = 9;
    static constexpr const char *name = "Dynamic Time Warping";

    using CharT = seq::ComplexSample;
    using ScoreT = hls::ApFixed<32, 26>;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Minimize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    struct Params
    {
        // DTW has no scoring parameters: the distance is computed from
        // the samples themselves (paper Section 2.2.2a).
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return ScoreT(0); }

    /** -inf-style init (Fig. 1): only the origin is a valid start. */
    static ScoreT
    initRowScore(int, int, const Params &)
    {
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initColScore(int, int, const Params &)
    {
        return core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    /** Squared Euclidean distance between two complex samples. */
    static ScoreT
    distance(const CharT &a, const CharT &b)
    {
        const ScoreT dr = a.real - b.real;
        const ScoreT di = a.imag - b.imag;
        return dr * dr + di * di;
    }

    static Out
    peFunc(const In &in, const Params &)
    {
        const ScoreT d = distance(in.qryVal, in.refVal);
        // Tie-break priority Diag > Up > Left, mirroring the max kernels.
        ScoreT best = in.diag[0];
        uint8_t ptr = core::tb::Diag;
        if (in.up[0] < best) {
            best = in.up[0];
            ptr = core::tb::Up;
        }
        if (in.left[0] < best) {
            best = in.left[0];
            ptr = core::tb::Left;
        }
        return {{best + d}, core::TbPtr{ptr}};
    }

#ifdef DPHLS_VEC
    /**
     * Vectorized lane cell over two character planes (raw real/imag
     * parts); mirrors peFunc per lane (detail::simd::dtwLaneCell).
     */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCellPlanes(const V *up, const V *left, const V *diag, const V *qry,
                   const V *ref, const Params &, V *score, V &ptr)
    {
        detail::simd::dtwLaneCell(up, left, diag, qry, ref, score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 4;          // two diffs, dist sum, accumulate
        p.maxMin2 = 2;         // 3-way min
        p.mult = 2;            // two squarings
        p.multWidth = 32;
        p.scoreWidth = 32;
        p.critPathLevels = 6;  // diff -> square -> add -> min -> min -> add
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_DTW_HH
