/**
 * @file
 * Kernel #12: Banded Local Affine Alignment (score-only).
 *
 * The minimap2 long-read assembly kernel: affine gaps inside a fixed
 * band, no traceback (Table 1), so the traceback memory disappears and
 * BRAM usage is minimal (Table 2: 0.57%). Compared against the BSW
 * (Darwin-WGA) RTL accelerator in Fig. 4B/E.
 */

#ifndef DPHLS_KERNELS_BANDED_LOCAL_AFFINE_HH
#define DPHLS_KERNELS_BANDED_LOCAL_AFFINE_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct BandedLocalAffine
{
    static constexpr int kernelId = 12;
    static constexpr const char *name = "Banded Local Affine";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 3;
    static constexpr bool hasTraceback = false;
    static constexpr bool banded = true;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Local;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 0;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 2;
        ScoreT mismatch = -3;
        ScoreT gapOpen = 4;
        ScoreT gapExtend = 1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT
    originScore(int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initRowScore(int, int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initColScore(int, int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::affineCell(
            in.up, in.left, in.diag, subst, p.gapOpen, p.gapExtend, true);
        return {cell.score, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaAffineLaneCell(up, left, diag, qry, ref, p, true,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = detail::MM;

    static core::TbStep
    tbStep(uint8_t state, core::TbPtr ptr)
    {
        return detail::affineTbStep(state, ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 6;
        p.maxMin2 = 5;
        p.scoreWidth = 16;
        p.critPathLevels = 6;  // affine maxima + band handling
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_BANDED_LOCAL_AFFINE_HH
