/**
 * @file
 * Convenience header pulling in all 15 DP-HLS kernel specifications
 * (Table 1 of the paper).
 */

#ifndef DPHLS_KERNELS_ALL_HH
#define DPHLS_KERNELS_ALL_HH

#include "kernels/banded_global_linear.hh"
#include "kernels/banded_global_two_piece.hh"
#include "kernels/banded_local_affine.hh"
#include "kernels/dtw.hh"
#include "kernels/global_affine.hh"
#include "kernels/global_linear.hh"
#include "kernels/global_two_piece.hh"
#include "kernels/local_affine.hh"
#include "kernels/local_linear.hh"
#include "kernels/overlap.hh"
#include "kernels/profile_alignment.hh"
#include "kernels/protein_local.hh"
#include "kernels/sdtw.hh"
#include "kernels/semi_global.hh"
#include "kernels/viterbi.hh"

#endif // DPHLS_KERNELS_ALL_HH
