/**
 * @file
 * Kernel #4: Local Affine Alignment (Smith-Waterman-Gotoh).
 *
 * Affine gap penalties with local traceback; used for whole-genome
 * alignment (LASTZ-style). Compared against GASAL2's LOCAL mode on GPU.
 */

#ifndef DPHLS_KERNELS_LOCAL_AFFINE_HH
#define DPHLS_KERNELS_LOCAL_AFFINE_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct LocalAffine
{
    static constexpr int kernelId = 4;
    static constexpr const char *name =
        "Local Affine (Smith-Waterman-Gotoh)";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 3;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Local;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 4;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 2;
        ScoreT mismatch = -3;
        ScoreT gapOpen = 4;
        ScoreT gapExtend = 1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT
    originScore(int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initRowScore(int, int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    static ScoreT
    initColScore(int, int layer, const Params &)
    {
        return layer == 0
            ? ScoreT{0}
            : core::scoreSentinelWorst<ScoreT>(objective);
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::affineCell(
            in.up, in.left, in.diag, subst, p.gapOpen, p.gapExtend, true);
        return {cell.score, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaAffineLaneCell(up, left, diag, qry, ref, p, true,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = detail::MM;

    static core::TbStep
    tbStep(uint8_t state, core::TbPtr ptr)
    {
        return detail::affineTbStep(state, ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 5;
        p.maxMin2 = 5;         // affine maxima plus the zero clamp
        p.scoreWidth = 16;
        p.critPathLevels = 4;
        p.lutExtra = 90;       // max-cell coordinate tracking per PE
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_LOCAL_AFFINE_HH
