/**
 * @file
 * Kernel #7: Semi-global Alignment.
 *
 * Matches the query end-to-end against a subsequence of the reference
 * (BWA-MEM-style short-read alignment): the reference prefix is free
 * (zero-initialized top row), query gaps are penalized, traceback runs
 * from the best cell of the bottom row to the top row.
 */

#ifndef DPHLS_KERNELS_SEMI_GLOBAL_HH
#define DPHLS_KERNELS_SEMI_GLOBAL_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct SemiGlobal
{
    static constexpr int kernelId = 7;
    static constexpr const char *name = "Semi-global Alignment";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::SemiGlobal;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 1;
        ScoreT mismatch = -2;
        ScoreT linearGap = -2;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }

    /** The reference prefix is free: zero top row. */
    static ScoreT initRowScore(int, int, const Params &) { return 0; }

    /** Query gaps at the start are penalized. */
    static ScoreT
    initColScore(int i, int, const Params &p)
    {
        return p.linearGap * i;
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::linearCell(
            in.diag[0], in.up[0], in.left[0], subst, p.linearGap, false);
        return {{cell.score}, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaLinearLaneCell(up, left, diag, qry, ref, p, false,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 3;
        p.maxMin2 = 2;
        p.scoreWidth = 16;
        p.critPathLevels = 3;
        p.lutExtra = 130;      // bottom-row max tracking and start logic
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_SEMI_GLOBAL_HH
