/**
 * @file
 * Kernel #8: Profile Alignment (sum-of-pairs scoring).
 *
 * Aligns two sequence profiles where each character is a tuple of five
 * frequencies (A, C, G, T, gap). The substitution score is computed
 * dynamically per cell as a sum-of-pairs double matrix-vector product
 * (paper Sections 2.2.1/2.2.2), which is why this kernel dominates DSP
 * usage in Table 2 and needs an initiation interval of 4.
 */

#ifndef DPHLS_KERNELS_PROFILE_ALIGNMENT_HH
#define DPHLS_KERNELS_PROFILE_ALIGNMENT_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct ProfileAlignment
{
    static constexpr int kernelId = 8;
    static constexpr const char *name = "Profile Alignment";

    using CharT = seq::ProfileColumn;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = false;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 4; //!< matrix-vector products need 4 cycles

    struct Params
    {
        /** Pair scores over {A, C, G, T, gap}. */
        int8_t pairScore[5][5] = {
            { 2, -1, -1, -1, -2},
            {-1,  2, -1, -1, -2},
            {-1, -1,  2, -1, -2},
            {-1, -1, -1,  2, -2},
            {-2, -2, -2, -2,  0},
        };
        /** Pairs formed against a gap column (the other family's size). */
        ScoreT gapScale = 8;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }

    /** Multiples of the profile-vs-gap penalty, like a linear gap. */
    static ScoreT
    initRowScore(int j, int, const Params &p)
    {
        return -2 * p.gapScale * p.gapScale * j;
    }

    static ScoreT
    initColScore(int i, int, const Params &p)
    {
        return -2 * p.gapScale * p.gapScale * i;
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    /** Sum-of-pairs substitution: fq^T * M * fr (two mat-vec products). */
    static ScoreT
    sumOfPairs(const CharT &q, const CharT &r, const Params &p)
    {
        ScoreT total = 0;
        for (int a = 0; a < 5; a++) {
            ScoreT row = 0;
            for (int b = 0; b < 5; b++) {
                row += static_cast<ScoreT>(p.pairScore[a][b]) *
                       static_cast<ScoreT>(r.freq[static_cast<size_t>(b)]);
            }
            total += row *
                     static_cast<ScoreT>(q.freq[static_cast<size_t>(a)]);
        }
        return total;
    }

    /** Score of a profile column paired against an all-gap column. */
    static ScoreT
    gapColumnScore(const CharT &col, const Params &p)
    {
        ScoreT total = 0;
        for (int a = 0; a < 5; a++) {
            total += static_cast<ScoreT>(p.pairScore[a][4]) *
                     static_cast<ScoreT>(col.freq[static_cast<size_t>(a)]);
        }
        return total * p.gapScale;
    }

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst = sumOfPairs(in.qryVal, in.refVal, p);
        const ScoreT mat = in.diag[0] + subst;
        const ScoreT ins = in.up[0] + gapColumnScore(in.qryVal, p);
        const ScoreT del = in.left[0] + gapColumnScore(in.refVal, p);
        ScoreT best = mat;
        uint8_t ptr = core::tb::Diag;
        if (ins > best) {
            best = ins;
            ptr = core::tb::Up;
        }
        if (del > best) {
            best = del;
            ptr = core::tb::Left;
        }
        return {{best}, core::TbPtr{ptr}};
    }

#ifdef DPHLS_VEC
    /**
     * Vectorized lane cell over five character planes (the frequency
     * tuple); the sum-of-pairs products vectorize fully
     * (detail::simd::profileLaneCell).
     */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCellPlanes(const V *up, const V *left, const V *diag, const V *qry,
                   const V *ref, const Params &p, V *score, V &ptr)
    {
        detail::simd::profileLaneCell(up, left, diag, qry, ref, p, score,
                                      ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 22;         // post-DSP adds (cascades absorb the rest)
        p.maxMin2 = 2;
        p.mult = 30;           // 25 + 5 sum-of-pairs products (gap columns
                               // fold into the same DSP cascades)
        p.multWidth = 24;      // frequency x score grows past 18 bits
        p.scoreWidth = 24;
        p.tableLookups = 1;
        p.tableEntries = 25;
        p.critPathLevels = 8;  // multiply + adder tree (pipelined, II=4)
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_PROFILE_ALIGNMENT_HH
