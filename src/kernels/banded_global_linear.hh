/**
 * @file
 * Kernel #11: Banded Global Linear Alignment.
 *
 * Kernel #1 restricted to a fixed band around the main diagonal (paper
 * Section 2.2.4 and front-end step 1.6): the back-end narrows the
 * wavefront loop bounds and feeds sentinel scores for out-of-band
 * neighbors. The extra band-boundary address computation lowers the
 * achievable clock frequency (Table 2: 166.7 MHz).
 */

#ifndef DPHLS_KERNELS_BANDED_GLOBAL_LINEAR_HH
#define DPHLS_KERNELS_BANDED_GLOBAL_LINEAR_HH

#include "core/kernel_concept.hh"
#include "kernels/detail.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"

namespace dphls::kernels {

struct BandedGlobalLinear
{
    static constexpr int kernelId = 11;
    static constexpr const char *name = "Banded Global Linear";

    using CharT = seq::DnaChar;
    using ScoreT = int32_t;

    static constexpr int nLayers = 1;
    static constexpr bool hasTraceback = true;
    static constexpr bool banded = true;
    static constexpr core::AlignmentKind alignKind =
        core::AlignmentKind::Global;
    static constexpr core::Objective objective = core::Objective::Maximize;
    static constexpr int tbPtrBits = 2;
    static constexpr int ii = 1;

    struct Params
    {
        ScoreT match = 1;
        ScoreT mismatch = -1;
        ScoreT linearGap = -1;
    };

    static Params defaultParams() { return {}; }

    static ScoreT originScore(int, const Params &) { return 0; }

    static ScoreT
    initRowScore(int j, int, const Params &p)
    {
        return p.linearGap * j;
    }

    static ScoreT
    initColScore(int i, int, const Params &p)
    {
        return p.linearGap * i;
    }

    using In = core::PeIn<ScoreT, CharT, nLayers>;
    using Out = core::PeOut<ScoreT, nLayers>;

    static Out
    peFunc(const In &in, const Params &p)
    {
        const ScoreT subst =
            in.qryVal == in.refVal ? p.match : p.mismatch;
        const auto cell = detail::linearCell(
            in.diag[0], in.up[0], in.left[0], subst, p.linearGap, false);
        return {{cell.score}, cell.ptr};
    }


#ifdef DPHLS_VEC
    /** Vectorized lane cell (lane_engine.hh); mirrors peFunc per lane. */
    template <typename V>
    DPHLS_SIMD_INLINE static void
    laneCell(const V *up, const V *left, const V *diag, V qry, V ref,
             const Params &p, V *score, V &ptr)
    {
        detail::simd::dnaLinearLaneCell(up, left, diag, qry, ref, p, false,
                                     score, ptr);
    }
#endif

    static constexpr uint8_t tbStartState = 0;

    static core::TbStep
    tbStep(uint8_t, core::TbPtr ptr)
    {
        return detail::linearTbStep(ptr);
    }

    static core::PeProfile
    peProfile()
    {
        core::PeProfile p;
        p.addSub = 4;          // scoring adds + band boundary compare
        p.maxMin2 = 2;
        p.scoreWidth = 16;
        p.critPathLevels = 7;  // band-edge index arithmetic in the path
        return p;
    }
};

} // namespace dphls::kernels

#endif // DPHLS_KERNELS_BANDED_GLOBAL_LINEAR_HH
