#include "workloads/basecaller.hh"

namespace dphls::workloads {

StreamingBasecaller::StreamingBasecaller(seq::SignalSequence target_signal,
                                         BasecallConfig cfg)
    : _target(std::move(target_signal)), _cfg(cfg)
{}

ReadOutcome
StreamingBasecaller::classify(
    const std::vector<seq::SignalSequence> &chunks) const
{
    ReadOutcome out;
    SdtwStream dp(_target);
    for (const auto &chunk : chunks) {
        dp.feed(chunk);
        out.chunksConsumed++;
        if (_cfg.abandonPerSample > 0 &&
            dp.samplesFed() >= _cfg.minSamplesBeforeAbandon &&
            dp.scorePerSample() > _cfg.abandonPerSample) {
            // The per-sample value is an admissible lower bound: the
            // final score can only be higher, so this read could never
            // have been called on-target under the same rule.
            out.abandoned = true;
            break;
        }
    }
    out.samplesConsumed = dp.samplesFed();
    out.hostScore = dp.score();
    out.perSample = dp.scorePerSample();
    out.onTarget = !out.abandoned &&
                   (_cfg.onTargetPerSample <= 0 ||
                    out.perSample <= _cfg.onTargetPerSample);
    return out;
}

StreamingBasecaller::Pending
StreamingBasecaller::submit(Pipeline &pipeline,
                            const std::vector<seq::SignalSequence> &chunks,
                            host::TicketOptions options,
                            Pipeline::Callback callback) const
{
    Pending pending;
    pending.outcome = classify(chunks);
    if (pending.outcome.abandoned)
        return pending; // never reaches the device
    Pipeline::Job job;
    for (const auto &chunk : chunks)
        job.query.chars.insert(job.query.chars.end(),
                               chunk.chars.begin(), chunk.chars.end());
    job.reference = _target;
    std::vector<Pipeline::Job> jobs;
    jobs.push_back(std::move(job));
    pending.ticket = pipeline.submit(std::move(jobs), std::move(options),
                                     std::move(callback));
    return pending;
}

ReadOutcome
StreamingBasecaller::finish(const Pending &pending) const
{
    ReadOutcome out = pending.outcome;
    if (!pending.ticket)
        return out;
    pending.ticket->wait();
    if (!pending.ticket->completed().empty() &&
        pending.ticket->completed()[0]) {
        out.deviceScored = true;
        out.deviceScore = pending.ticket->results()[0].score;
        out.deviceCycles = pending.ticket->cycles()[0];
        const double per_sample = out.samplesConsumed > 0
            ? static_cast<double>(out.deviceScore) /
                  static_cast<double>(out.samplesConsumed)
            : 0.0;
        out.perSample = per_sample;
        out.onTarget = _cfg.onTargetPerSample <= 0 ||
                       per_sample <= _cfg.onTargetPerSample;
    }
    return out;
}

ReadOutcome
StreamingBasecaller::process(Pipeline &pipeline,
                             const std::vector<seq::SignalSequence> &chunks,
                             host::TicketOptions options) const
{
    return finish(submit(pipeline, chunks, std::move(options)));
}

} // namespace dphls::workloads
