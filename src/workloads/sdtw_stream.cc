#include "workloads/sdtw_stream.hh"

#include <algorithm>
#include <cstdlib>

#include "core/types.hh"
#include "kernels/sdtw.hh"

namespace dphls::workloads {

namespace {

/** The kernel's unreachable-cell sentinel (Minimize objective). */
constexpr int32_t
sentinel()
{
    return core::scoreSentinelWorst<int32_t>(
        kernels::Sdtw::objective);
}

} // namespace

SdtwStream::SdtwStream(seq::SignalSequence reference)
    : _reference(std::move(reference))
{
    reset();
}

void
SdtwStream::reset()
{
    // Row 0 is the kernel's init row: origin 0 plus a zero top row
    // (free start anywhere along the reference).
    _row.assign(static_cast<size_t>(_reference.length()) + 1, 0);
    _rows = 0;
}

void
SdtwStream::feed(const seq::SignalSample *samples, size_t count)
{
    const int rlen = _reference.length();
    for (size_t s = 0; s < count; s++) {
        const int32_t q = samples[s].value;
        // In-place row update: `diag` carries the overwritten value of
        // the cell up-left of the one being computed. This is the
        // kernel's peFunc verbatim (3-way min plus |q - r|), so chunked
        // feeding is bit-identical to the one-shot DP.
        int32_t diag = _row[0];
        _row[0] = sentinel(); // the query cannot be skipped
        for (int j = 1; j <= rlen; j++) {
            const size_t sj = static_cast<size_t>(j);
            const int32_t up = _row[sj];
            const int32_t d = std::abs(
                q - static_cast<int32_t>(_reference[j - 1].value));
            const int32_t best =
                std::min(diag, std::min(up, _row[sj - 1]));
            _row[sj] = best + d;
            diag = up;
        }
        _rows++;
    }
}

int32_t
SdtwStream::score() const
{
    // Degenerate inputs (no samples fed, or an empty reference) score 0
    // with no optimum cell — the golden model's semantics: its
    // bottom-row scan skips degenerate shapes and leaves the
    // default-constructed score.
    if (_rows == 0 || _reference.length() == 0)
        return 0;
    int32_t best = _row[1];
    for (size_t j = 2; j < _row.size(); j++)
        best = std::min(best, _row[j]);
    return best;
}

} // namespace dphls::workloads
