/**
 * @file
 * Binary framing for streamed signal chunks (untrusted input).
 *
 * A streaming basecaller receives raw pore signal in chunks, many
 * reads interleaved on one stream. This is the minimal wire format the
 * workload demos and tools speak, and — like the serve protocol — it
 * decodes *untrusted* bytes, so every length and flag is validated and
 * malformed input throws ChunkFormatError instead of reading out of
 * bounds (fuzz/fuzz_chunk_stream.cc hammers exactly that, plus the
 * decode→encode→decode round-trip).
 *
 * Layout, all little-endian, after a 4-byte stream magic "DPSC":
 *
 *   per chunk: u32 readId | u8 flags | u16 sampleCount
 *              | sampleCount x i16 samples
 *
 * flags bit 0 marks a read's final chunk; all other bits are reserved
 * and must be zero (a decoder this strict keeps the format evolvable:
 * old decoders reject frames from a future writer instead of silently
 * misreading them).
 */

#ifndef DPHLS_WORKLOADS_CHUNK_IO_HH
#define DPHLS_WORKLOADS_CHUNK_IO_HH

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "seq/alphabet.hh"

namespace dphls::workloads {

constexpr uint32_t kChunkStreamMagic = 0x43535044; // "DPSC" LE
/** Per-chunk sample cap: bounds decoder allocations on hostile input. */
constexpr int kMaxChunkSamples = 4096;
constexpr uint8_t kChunkFlagLast = 0x01;

/** Malformed chunk stream (truncated, bad magic, oversized, ...). */
class ChunkFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One decoded signal chunk. */
struct SignalChunk
{
    uint32_t readId = 0;
    bool last = false; //!< final chunk of this read
    seq::SignalSequence samples;
};

/** Serialize chunks in order (throws on an oversized chunk). */
std::vector<uint8_t> encodeChunkStream(const std::vector<SignalChunk> &chunks);

/** Parse an untrusted byte stream; throws ChunkFormatError. */
std::vector<SignalChunk> decodeChunkStream(const uint8_t *data, size_t len);

inline std::vector<SignalChunk>
decodeChunkStream(const std::vector<uint8_t> &bytes)
{
    return decodeChunkStream(bytes.data(), bytes.size());
}

/**
 * Group a decoded stream into per-read chunk lists, in first-arrival
 * order of the read ids; chunks after a read's `last` marker start a
 * new occurrence of that id (the id space is per-flowcell-session, so
 * reuse is legal on long streams).
 */
std::vector<std::pair<uint32_t, std::vector<seq::SignalSequence>>>
groupChunksByRead(const std::vector<SignalChunk> &chunks);

} // namespace dphls::workloads

#endif // DPHLS_WORKLOADS_CHUNK_IO_HH
