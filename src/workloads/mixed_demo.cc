#include "workloads/mixed_demo.hh"

#include <utility>

#include "model/frequency_model.hh"
#include "seq/read_simulator.hh"
#include "seq/squiggle.hh"

namespace dphls::workloads {

MixedDemoConfig
MixedDemoConfig::makeDefault()
{
    MixedDemoConfig cfg;
    cfg.mapper.k = 13;
    cfg.mapper.window = 6;
    // Threshold between clean on-target warps (~2-3 per sample) and
    // random background (~12-22): half the squiggle reads are
    // background and should abandon.
    cfg.basecall.abandonPerSample = 8.0;
    cfg.basecall.minSamplesBeforeAbandon = 48;
    return cfg;
}

namespace {

/** Everything the three classes consume, all derived from cfg.seed. */
struct DemoInputs
{
    seq::DnaSequence genome;
    std::vector<seq::DnaSequence> shortReads;
    std::vector<int> trueLoci;
    seq::SignalSequence targetSignal;
    std::vector<std::vector<seq::SignalSequence>> squiggles;
    std::vector<std::vector<host::AlignmentJob<seq::DnaChar>>> bulk;
};

std::vector<seq::SignalSequence>
chunkSignal(const seq::SignalSequence &signal, int chunk)
{
    std::vector<seq::SignalSequence> out;
    for (int at = 0; at < signal.length(); at += chunk) {
        seq::SignalSequence c;
        const int end = std::min(signal.length(), at + chunk);
        c.chars.assign(signal.chars.begin() + at,
                       signal.chars.begin() + end);
        out.push_back(std::move(c));
    }
    return out;
}

DemoInputs
buildInputs(const MixedDemoConfig &cfg)
{
    seq::Rng rng(cfg.seed);
    DemoInputs in;
    in.genome = seq::makeReferenceGenome(cfg.genomeLength, rng);

    seq::ReadSimConfig rcfg;
    rcfg.readLength = cfg.shortReadLength;
    rcfg.errorRate = cfg.readErrorRate;
    for (int i = 0; i < cfg.shortReads; i++) {
        auto sim = seq::simulateRead(in.genome, rcfg, rng);
        in.shortReads.push_back(std::move(sim.read));
        in.trueLoci.push_back(sim.refStart);
    }

    // Squiggle class: a target stretch of the genome is the adaptive-
    // sampling reference; even reads come from it (on-target), odd
    // reads from an unrelated background sequence (should abandon).
    const seq::SquiggleConfig scfg;
    seq::DnaSequence target;
    target.chars.assign(in.genome.chars.begin(),
                        in.genome.chars.begin() + cfg.targetBases);
    in.targetSignal = seq::expectedSignal(target, scfg);
    const auto background = seq::randomDna(cfg.targetBases, rng);
    seq::SquiggleConfig qcfg = scfg;
    qcfg.meanDwell = 2.0; // keep full signals within the device window
    for (int i = 0; i < cfg.squiggleReads; i++) {
        const auto &origin = i % 2 == 0 ? target : background;
        const int span = cfg.squiggleBases;
        const int start = static_cast<int>(
            rng.below(static_cast<uint64_t>(
                std::max(1, origin.length() - span + 1))));
        seq::DnaSequence sub;
        sub.chars.assign(origin.chars.begin() + start,
                         origin.chars.begin() + start + span);
        in.squiggles.push_back(
            chunkSignal(seq::rawSignal(sub, qcfg, rng),
                        cfg.chunkSamples));
    }

    for (int b = 0; b < cfg.bulkBatches; b++) {
        std::vector<host::AlignmentJob<seq::DnaChar>> jobs;
        for (int j = 0; j < cfg.bulkBatchJobs; j++) {
            host::AlignmentJob<seq::DnaChar> job;
            job.query = seq::randomDna(cfg.bulkPairLength, rng);
            job.reference = seq::mutateDna(job.query, 0.06, 0.02, rng);
            jobs.push_back(std::move(job));
        }
        in.bulk.push_back(std::move(jobs));
    }
    return in;
}

host::BatchConfig
dnaConfig()
{
    host::BatchConfig cfg;
    cfg.npe = 32;
    cfg.nb = 2;
    cfg.nk = 1; // one channel: classes genuinely contend
    cfg.threads = 1;
    cfg.maxQueryLength = 256;
    cfg.maxReferenceLength = 512;
    cfg.hostOverheadCycles = 0;
    cfg.cacheEntries = 0;
    cfg.collectPathStats = false;
    return cfg;
}

host::BatchConfig
signalConfig()
{
    host::BatchConfig cfg;
    cfg.npe = 32;
    cfg.nb = 1;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.maxQueryLength = 4096; // full concatenated survivor signals
    cfg.maxReferenceLength = 1024;
    cfg.skipTraceback = true; // sDTW is score-only
    cfg.hostOverheadCycles = 0;
    cfg.cacheEntries = 0;
    cfg.collectPathStats = false;
    return cfg;
}

} // namespace

MixedDemoResult
runMixedDemo(const MixedDemoConfig &cfg, bool concurrent)
{
    const DemoInputs in = buildInputs(cfg);
    MixedDemoResult out;
    out.trueLoci = in.trueLoci;

    ReadMapper mapper(in.genome, cfg.mapper);
    const StreamingBasecaller caller(in.targetSignal, cfg.basecall);

    if (!concurrent) {
        // Isolated legs: each class alone on fresh pipelines, in turn.
        {
            ReadMapper::Pipeline pipeline(dnaConfig());
            for (const auto &read : in.shortReads) {
                out.mappings.push_back(mapper.mapRead(pipeline, read));
                out.tickets++;
            }
        }
        {
            StreamingBasecaller::Pipeline pipeline(signalConfig());
            for (const auto &chunks : in.squiggles) {
                out.basecalls.push_back(caller.process(pipeline, chunks));
                if (!out.basecalls.back().abandoned)
                    out.tickets++;
            }
        }
        {
            ReadMapper::Pipeline pipeline(dnaConfig());
            for (const auto &jobs : in.bulk) {
                std::vector<ReadMapper::Result> results;
                pipeline.runAll(jobs, &results);
                std::vector<double> scores;
                for (const auto &r : results)
                    scores.push_back(r.scoreAsDouble());
                out.bulkScores.push_back(std::move(scores));
                out.tickets++;
            }
        }
        return out;
    }

    // Concurrent leg: queue the entire three-class backlog on paused
    // pipelines, release both, and let the priority scheduler decide.
    ReadMapper::Pipeline dna(dnaConfig());
    StreamingBasecaller::Pipeline signal(signalConfig());
    const double dna_fmax =
        model::kernelFrequencyMhz<ReadMapper::Kernel>();
    const double sig_fmax =
        model::kernelFrequencyMhz<StreamingBasecaller::Kernel>();
    auto dna_probe = std::make_shared<ClassLatencyProbe>(dna_fmax);
    auto sig_probe = std::make_shared<ClassLatencyProbe>(sig_fmax);
    dna.pause();
    signal.pause();

    // Bulk first into the queue: the scheduler, not submission order,
    // must be what gets the realtime/interactive classes ahead.
    std::vector<ReadMapper::Pipeline::Ticket> bulk_tickets;
    for (const auto &jobs : in.bulk) {
        host::TicketOptions topt;
        topt.tag = "bulk";
        bulk_tickets.push_back(dna.submit(
            jobs, std::move(topt),
            [dna_probe](host::BatchTicket<ReadMapper::Kernel> &t) {
                dna_probe->record(t.stats().makespanCycles,
                                  ClassLatencyProbe::Bulk);
            }));
        out.tickets++;
    }

    std::vector<ReadMapper::Pending> map_pendings;
    for (const auto &read : in.shortReads) {
        host::TicketOptions topt;
        topt.priority = cfg.interactivePriority;
        topt.tag = "map";
        map_pendings.push_back(mapper.submit(
            dna, read, std::move(topt),
            [dna_probe](host::BatchTicket<ReadMapper::Kernel> &t) {
                dna_probe->record(t.stats().makespanCycles,
                                  ClassLatencyProbe::Interactive);
            }));
        if (map_pendings.back().ticket)
            out.tickets++;
    }

    std::vector<StreamingBasecaller::Pending> call_pendings;
    for (const auto &chunks : in.squiggles) {
        call_pendings.push_back(caller.submit(
            signal, chunks,
            host::TicketOptions::afterMs(cfg.realtimePriority,
                                         cfg.realtimeDeadlineMs, "rt"),
            [sig_probe](host::BatchTicket<StreamingBasecaller::Kernel>
                            &t) {
                sig_probe->record(t.stats().makespanCycles,
                                  ClassLatencyProbe::Realtime);
            }));
        if (call_pendings.back().ticket)
            out.tickets++;
    }

    dna.resume();
    signal.resume();

    for (size_t i = 0; i < map_pendings.size(); i++)
        out.mappings.push_back(
            mapper.finish(in.shortReads[i], map_pendings[i]));
    for (const auto &pending : call_pendings)
        out.basecalls.push_back(caller.finish(pending));
    for (const auto &ticket : bulk_tickets) {
        ticket->wait();
        std::vector<double> scores;
        for (const auto &r : ticket->results())
            scores.push_back(r.scoreAsDouble());
        out.bulkScores.push_back(std::move(scores));
    }
    dna.drain();
    signal.drain();

    out.latencies.realtime = sig_probe->of(ClassLatencyProbe::Realtime);
    out.latencies.interactive =
        dna_probe->of(ClassLatencyProbe::Interactive);
    out.latencies.bulk = dna_probe->of(ClassLatencyProbe::Bulk);
    return out;
}

} // namespace dphls::workloads
