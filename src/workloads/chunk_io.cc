#include "workloads/chunk_io.hh"

namespace dphls::workloads {

namespace {

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xff));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    putU16(out, static_cast<uint16_t>(v & 0xffff));
    putU16(out, static_cast<uint16_t>(v >> 16));
}

/** Bounds-checked little-endian reader over the untrusted buffer. */
struct Reader
{
    const uint8_t *data;
    size_t len;
    size_t pos = 0;

    void
    need(size_t n) const
    {
        if (len - pos < n)
            throw ChunkFormatError("truncated chunk stream");
    }

    uint8_t
    u8()
    {
        need(1);
        return data[pos++];
    }

    uint16_t
    u16()
    {
        need(2);
        const uint16_t v = static_cast<uint16_t>(
            data[pos] | (static_cast<uint16_t>(data[pos + 1]) << 8));
        pos += 2;
        return v;
    }

    uint32_t
    u32()
    {
        const uint32_t lo = u16();
        return lo | (static_cast<uint32_t>(u16()) << 16);
    }
};

} // namespace

std::vector<uint8_t>
encodeChunkStream(const std::vector<SignalChunk> &chunks)
{
    std::vector<uint8_t> out;
    putU32(out, kChunkStreamMagic);
    for (const auto &c : chunks) {
        const size_t n = c.samples.chars.size();
        if (n > static_cast<size_t>(kMaxChunkSamples))
            throw ChunkFormatError("chunk over the sample cap");
        putU32(out, c.readId);
        out.push_back(c.last ? kChunkFlagLast : 0);
        putU16(out, static_cast<uint16_t>(n));
        for (const auto &s : c.samples.chars)
            putU16(out, static_cast<uint16_t>(s.value));
    }
    return out;
}

std::vector<SignalChunk>
decodeChunkStream(const uint8_t *data, size_t len)
{
    Reader r{data, len};
    if (r.u32() != kChunkStreamMagic)
        throw ChunkFormatError("bad chunk stream magic");
    std::vector<SignalChunk> out;
    while (r.pos < r.len) {
        SignalChunk c;
        c.readId = r.u32();
        const uint8_t flags = r.u8();
        if ((flags & ~kChunkFlagLast) != 0)
            throw ChunkFormatError("reserved chunk flags set");
        c.last = (flags & kChunkFlagLast) != 0;
        const uint16_t count = r.u16();
        if (count > kMaxChunkSamples)
            throw ChunkFormatError("chunk over the sample cap");
        // Validate before allocating: the sample payload must be fully
        // present, so a hostile count cannot oversize the vector.
        r.need(static_cast<size_t>(count) * 2);
        c.samples.chars.reserve(count);
        for (uint16_t i = 0; i < count; i++) {
            c.samples.chars.push_back(
                seq::SignalSample{static_cast<int16_t>(r.u16())});
        }
        out.push_back(std::move(c));
    }
    return out;
}

std::vector<std::pair<uint32_t, std::vector<seq::SignalSequence>>>
groupChunksByRead(const std::vector<SignalChunk> &chunks)
{
    std::vector<std::pair<uint32_t, std::vector<seq::SignalSequence>>> out;
    // Open reads by id -> index into `out`. Linear scan: streams are
    // demo-sized and ids few; no need for a map.
    std::vector<std::pair<uint32_t, size_t>> open;
    for (const auto &c : chunks) {
        size_t slot = out.size();
        for (size_t k = 0; k < open.size(); k++) {
            if (open[k].first == c.readId) {
                slot = open[k].second;
                break;
            }
        }
        if (slot == out.size()) {
            out.emplace_back(c.readId,
                             std::vector<seq::SignalSequence>{});
            open.emplace_back(c.readId, slot);
        }
        out[slot].second.push_back(c.samples);
        if (c.last) {
            for (size_t k = 0; k < open.size(); k++) {
                if (open[k].first == c.readId) {
                    open.erase(open.begin() + static_cast<long>(k));
                    break;
                }
            }
        }
    }
    return out;
}

} // namespace dphls::workloads
