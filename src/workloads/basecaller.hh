/**
 * @file
 * Streaming sDTW basecalling/classification workload (read-until).
 *
 * SquiggleFilter-style targeted sequencing: each read's raw signal
 * arrives in chunks, and the host decides per chunk whether to keep
 * sequencing (on-target) or eject the read from the pore (off-target).
 * Two cooperating paths:
 *
 *  - **Host early-abandon**: each chunk feeds the incremental
 *    SdtwStream DP. Its prefix score is an admissible lower bound on
 *    the final sDTW score (sdtw_stream.hh), so once the per-sample
 *    bound exceeds the abandon threshold the read is provably
 *    off-target under the final-score decision rule too — it is
 *    dropped without ever touching the device, and no surviving
 *    read's score changes (survivors run the full, identical DP).
 *  - **Device scoring**: surviving reads submit their full signal as
 *    one deadline-tagged ticket through StreamPipeline<Sdtw> — the
 *    realtime traffic class of the mixed-workload story — and the
 *    device score (bit-identical to the golden model, hence to the
 *    host prefix DP at full length) is the authoritative
 *    classification input.
 *
 * tests/test_workload_basecall.cc locks the bit-identity between
 * pruned and unpruned runs on non-abandoned reads, the admissibility
 * of the bound, and the degenerate-input semantics.
 */

#ifndef DPHLS_WORKLOADS_BASECALLER_HH
#define DPHLS_WORKLOADS_BASECALLER_HH

#include <cstdint>
#include <vector>

#include "host/stream_pipeline.hh"
#include "kernels/sdtw.hh"
#include "workloads/sdtw_stream.hh"

namespace dphls::workloads {

/** Streaming classification knobs. */
struct BasecallConfig
{
    /**
     * Abandon a read once its admissible per-sample lower bound
     * exceeds this (ADC units per sample); 0 disables pruning and
     * every read runs to completion.
     */
    double abandonPerSample = 0;
    /** Samples that must be fed before the first abandon check, so a
     *  noisy first event cannot eject a read on its own. */
    int minSamplesBeforeAbandon = 64;
    /**
     * Final per-sample score at or below which a completed read is
     * called on-target; 0 means "on-target iff not abandoned"
     * (useful when the abandon threshold is the only decision rule).
     */
    double onTargetPerSample = 0;
};

/** Outcome of one read's streaming classification. */
struct ReadOutcome
{
    bool abandoned = false;
    int chunksConsumed = 0; //!< chunks fed before the decision
    int samplesConsumed = 0;
    int32_t hostScore = 0; //!< incremental DP score at decision point
    double perSample = 0;  //!< hostScore / samplesConsumed
    bool onTarget = false;
    /** Survivors only: authoritative device ticket result. */
    bool deviceScored = false;
    int32_t deviceScore = 0;
    uint64_t deviceCycles = 0;
};

/**
 * The classifier: owns the target's expected signal. classify() is
 * pure (host DP only); process()/submit()+finish() additionally score
 * survivors on the modeled device through a shared pipeline.
 */
class StreamingBasecaller
{
  public:
    using Kernel = kernels::Sdtw;
    using Pipeline = host::StreamPipeline<Kernel>;

    /** A survivor's in-flight device scoring. */
    struct Pending
    {
        ReadOutcome outcome;
        Pipeline::Ticket ticket; //!< null when abandoned host-side
    };

    explicit StreamingBasecaller(seq::SignalSequence target_signal,
                                 BasecallConfig cfg = {});

    /** Host-only streaming classification of one read's chunks. */
    ReadOutcome
    classify(const std::vector<seq::SignalSequence> &chunks) const;

    /** classify(), then submit the survivor's full signal as one
     *  deadline-tagged device ticket. */
    Pending submit(Pipeline &pipeline,
                   const std::vector<seq::SignalSequence> &chunks,
                   host::TicketOptions options = {},
                   Pipeline::Callback callback = nullptr) const;

    /** Wait for the device score and fold it into the outcome. */
    ReadOutcome finish(const Pending &pending) const;

    /** Synchronous convenience: submit() + finish(). */
    ReadOutcome process(Pipeline &pipeline,
                        const std::vector<seq::SignalSequence> &chunks,
                        host::TicketOptions options = {}) const;

    const seq::SignalSequence &target() const { return _target; }
    const BasecallConfig &config() const { return _cfg; }

  private:
    seq::SignalSequence _target;
    BasecallConfig _cfg;
};

} // namespace dphls::workloads

#endif // DPHLS_WORKLOADS_BASECALLER_HH
