/**
 * @file
 * Incremental semi-global DTW over a growing query signal.
 *
 * The sDTW kernel (#14) scores a whole read signal against a target's
 * expected signal; a *streaming* basecaller sees the read one chunk at
 * a time and wants to eject off-target reads early (read-until). This
 * class keeps exactly one DP row between feed() calls, so feeding a
 * signal in chunks of any size reproduces the whole-signal DP
 * bit-for-bit (the recurrence is row-local; chunk boundaries are
 * invisible to it — tests/test_workload_basecall.cc locks this against
 * the full-matrix golden model).
 *
 * Early-abandon soundness: every sDTW cell adds a non-negative cost
 * |q - r| to the minimum of its three neighbors, so the minimum of row
 * i+1 is >= the minimum of row i (induction along the row: each new
 * cell is >= the smaller of row i's minimum and the already-bounded
 * cells to its left; the sentinel left column never helps). The final
 * score is the minimum of the *last* row, hence
 *
 *     score(prefix fed so far)  <=  score(any extension)
 *
 * — score() is an admissible lower bound, and abandoning a read when
 * the bound already exceeds a rejection threshold can never misjudge a
 * read the full signal would have accepted, nor change any surviving
 * read's score (survivors run the identical DP).
 */

#ifndef DPHLS_WORKLOADS_SDTW_STREAM_HH
#define DPHLS_WORKLOADS_SDTW_STREAM_HH

#include <cstdint>
#include <vector>

#include "seq/alphabet.hh"

namespace dphls::workloads {

class SdtwStream
{
  public:
    explicit SdtwStream(seq::SignalSequence reference);

    /** Append query samples; the DP advances one row per sample. */
    void feed(const seq::SignalSample *samples, size_t count);
    void feed(const seq::SignalSequence &chunk)
    {
        feed(chunk.chars.data(), chunk.chars.size());
    }

    /** Query samples consumed so far. */
    int samplesFed() const { return _rows; }

    /**
     * Semi-global sDTW score of the prefix fed so far — identical to
     * running the whole prefix through the kernel in one shot, and an
     * admissible lower bound on the score of any extension (see the
     * file comment). Degenerate inputs score 0, matching the golden
     * model's empty-query/empty-reference semantics.
     */
    int32_t score() const;

    /** score() normalized by samples fed (0 before the first sample). */
    double
    scorePerSample() const
    {
        return _rows == 0
            ? 0.0
            : static_cast<double>(score()) / static_cast<double>(_rows);
    }

    /** Drop all fed samples and start a new read against the same
     *  reference. */
    void reset();

    const seq::SignalSequence &reference() const { return _reference; }

  private:
    seq::SignalSequence _reference;
    std::vector<int32_t> _row; //!< current DP row, cols 0..rlen
    int _rows = 0;
};

} // namespace dphls::workloads

#endif // DPHLS_WORKLOADS_SDTW_STREAM_HH
