/**
 * @file
 * Mixed-workload driver: read mapping (interactive), streaming sDTW
 * basecalling (realtime) and bulk batch alignment (class 0) running
 * concurrently against the modeled device, with per-class modeled
 * completion latencies.
 *
 * One seeded input set — genome, short reads with known loci, squiggle
 * chunk streams, bulk re-alignment batches — is served two ways:
 *
 *  - **concurrent**: the whole backlog of all three classes is queued
 *    on paused pipelines (mapper extensions and bulk batches share ONE
 *    StreamPipeline<SemiGlobal>; basecaller survivors run on a
 *    StreamPipeline<Sdtw>), released at a single instant, and the
 *    per-ticket completion latency is recorded in the cycle domain —
 *    deterministic, machine-independent;
 *  - **isolated**: each class runs alone on fresh pipelines.
 *
 * Scheduling only reorders work, it never touches a DP: the two runs
 * must produce bit-identical mappings, classifications and bulk scores
 * (tests/test_mixed_workloads.cc), while the latency report shows what
 * the priority scheduler buys the realtime and interactive classes.
 * Shared by `dphls_align --workload mixed`, examples/mixed_workloads
 * and bench_engine_micro's `workloads` section.
 */

#ifndef DPHLS_WORKLOADS_MIXED_DEMO_HH
#define DPHLS_WORKLOADS_MIXED_DEMO_HH

#include <cstdint>
#include <vector>

#include "host/check.hh"
#include "host/stream_pipeline.hh"
#include "workloads/basecaller.hh"
#include "workloads/mapper.hh"

namespace dphls::workloads {

/** Deterministic input/scale knobs of the mixed demo. */
struct MixedDemoConfig
{
    uint64_t seed = 1;        //!< drives every simulated input
    int genomeLength = 16000; //!< shared mapping reference
    // Interactive class: short reads mapped seed-chain-extend.
    int shortReads = 16;
    int shortReadLength = 150;
    double readErrorRate = 0.03;
    // Realtime class: squiggle chunk streams classified + scored.
    int squiggleReads = 8;
    int squiggleBases = 120;   //!< DNA bases behind each squiggle read
    int targetBases = 300;     //!< on-target reference stretch
    int chunkSamples = 64;     //!< samples per streamed chunk
    double realtimeDeadlineMs = 5.0;
    // Bulk class: re-alignment batches.
    int bulkBatches = 4;
    int bulkBatchJobs = 12;
    int bulkPairLength = 180;
    // Scheduling classes (mirror serve's traffic classes).
    int interactivePriority = 10;
    int realtimePriority = 20;
    MapperConfig mapper{};     //!< k/window sized by makeDefault()
    BasecallConfig basecall{}; //!< abandon threshold set by makeDefault()

    /** Defaults tuned so the demo exercises every path (some squiggle
     *  reads abandon, every class gets device time). */
    static MixedDemoConfig makeDefault();
};

/** Modeled per-class completion latencies, seconds at kernel fmax. */
struct ClassLatencies
{
    std::vector<double> realtime;
    std::vector<double> interactive;
    std::vector<double> bulk;
};

/** Everything one run produced (compare across runs for identity). */
struct MixedDemoResult
{
    std::vector<ReadMapping> mappings;    //!< per short read
    std::vector<int> trueLoci;            //!< simulated origin of each
    std::vector<ReadOutcome> basecalls;   //!< per squiggle read
    std::vector<std::vector<double>> bulkScores; //!< per batch
    ClassLatencies latencies; //!< empty vectors in isolated runs
    int tickets = 0;          //!< tickets submitted across classes
};

/**
 * Run the seeded mixed workload. @p concurrent selects the shared
 * paused-release run (latencies recorded) vs the per-class isolated
 * run (latencies empty). Both use the same @p cfg inputs, so all
 * result fields except `latencies`/`tickets` must match exactly.
 */
MixedDemoResult runMixedDemo(const MixedDemoConfig &cfg, bool concurrent);

/**
 * Cycle-domain completion-latency recorder for the three classes
 * (TwoClassLatencyProbe generalized). record() is called from ticket
 * completion callbacks; the cumulative busy-cycle clock is per probe,
 * so attach one probe per pipeline.
 */
class ClassLatencyProbe
{
  public:
    enum Class
    {
        Realtime = 0,
        Interactive = 1,
        Bulk = 2
    };

    explicit ClassLatencyProbe(double fmax_mhz) : _fmaxMhz(fmax_mhz) {}

    void
    record(uint64_t makespan_cycles, Class cls)
    {
        std::lock_guard lock(_mutex);
        _cumCycles += makespan_cycles;
        const double seconds =
            static_cast<double>(_cumCycles) / (_fmaxMhz * 1e6);
        _latencies[cls].push_back(seconds);
    }

    /** Read only after every ticket completed. */
    const std::vector<double> &of(Class cls) const
    {
        return _latencies[cls];
    }

  private:
    double _fmaxMhz;
    host::DebugMutex _mutex{host::lockrank::kWorkloadProbe,
                            "workload-probe"};
    uint64_t _cumCycles = 0;
    std::vector<double> _latencies[3];
};

} // namespace dphls::workloads

#endif // DPHLS_WORKLOADS_MIXED_DEMO_HH
