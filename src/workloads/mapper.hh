/**
 * @file
 * Seed–chain–extend read mapper over the streaming device executor.
 *
 * The paper's kernels align a read against a *given* reference window;
 * a real mapping workload first has to find that window. This module
 * reproduces the standard minimizer pipeline (minimap2-style, heavily
 * simplified) on top of the repo's existing layers:
 *
 *  1. **Seed**: a MinimizerIndex over the reference — every window of
 *     `window` consecutive k-mers contributes its minimum-hash k-mer,
 *     so matching reads and reference regions share seeds regardless
 *     of the sampling phase. Exact-match lookups of a read's
 *     minimizers yield anchors (qpos, rpos).
 *  2. **Chain**: a bounded O(n·lookback) DP over anchors sorted by
 *     reference position scores co-linear anchor runs with a
 *     diagonal-drift gap cost; the best non-overlapping chains become
 *     candidate reference windows.
 *  3. **Extend**: candidate windows are aligned with the semi-global
 *     kernel (#7) — one AlignmentJob per candidate, submitted as ONE
 *     StreamPipeline ticket so the mapper rides the same priority /
 *     deadline / admission machinery as every other workload. Long
 *     reads (over the device MAX_*_LENGTH) instead run the GACT tiling
 *     layer host-side with the intra-pair DiagSimd path.
 *  4. **MAPQ**: best-vs-second-best extension scores (chain scores on
 *     the long-read path), a simplified minimap2-style confidence.
 *
 * Planning (seed + chain) is pure and deterministic; extension results
 * are the engine's, which are bit-identical to the full-matrix golden
 * model — tests/test_workload_mapper.cc aligns the planned jobs through
 * ref::MatrixAligner and requires identical scores and paths.
 */

#ifndef DPHLS_WORKLOADS_MAPPER_HH
#define DPHLS_WORKLOADS_MAPPER_HH

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "host/stream_pipeline.hh"
#include "host/tiling.hh"
#include "kernels/global_affine.hh"
#include "kernels/semi_global.hh"
#include "seq/alphabet.hh"

namespace dphls::workloads {

/** Mapper tuning knobs (defaults sized for the simulated workloads). */
struct MapperConfig
{
    int k = 15;              //!< minimizer k-mer size (<= 31)
    int window = 10;         //!< k-mers per minimizer window
    /** Reference positions above which a minimizer is considered
     *  repetitive and skipped at query time. */
    int maxOccurrences = 64;
    int maxAnchors = 4096;   //!< anchor cap per read (keeps DP bounded)
    int chainLookback = 64;  //!< chaining DP predecessor cap
    /** Max query/reference advance between chained anchors. */
    int maxChainGap = 512;
    int maxCandidates = 4;   //!< extension candidates per read
    int windowPad = 64;      //!< reference slack either side of a chain
    /** Long-read extension path (GACT tiling + DiagSimd). */
    host::TilingConfig tiling{};
};

/** One exact seed match: read offset against reference offset. */
struct Anchor
{
    int qpos = 0;
    int rpos = 0;
};

/** One candidate reference window produced by chaining. */
struct CandidateWindow
{
    int refStart = 0;
    int refEnd = 0;      //!< one past the end
    double chainScore = 0;
    int anchors = 0;
};

/** Deterministic seed+chain outcome for one read. */
struct MapPlan
{
    std::vector<CandidateWindow> candidates;
    bool longRead = false; //!< extension must take the tiling path
};

/** Final placement of one read on the reference. */
struct ReadMapping
{
    bool mapped = false;
    int refStart = 0;
    int refEnd = 0;  //!< one past the end
    double score = 0;
    double secondScore = 0; //!< runner-up extension (0 when absent)
    int mapq = 0;           //!< 0..60 best-vs-second confidence
    std::vector<core::AlnOp> ops;
    uint64_t cycles = 0; //!< modeled device cycles spent extending
    int candidates = 0;  //!< windows the read was extended against
    bool longRead = false;
};

/**
 * Minimizer index over one reference sequence: hash → sorted positions.
 * Hashing is an invertible SplitMix64 finalizer over the 2-bit packed
 * k-mer, so equal k-mers always collide and distinct ones essentially
 * never do (within 2k bits).
 */
class MinimizerIndex
{
  public:
    MinimizerIndex(const seq::DnaSequence &reference, int k, int window);

    /**
     * The (hash, position) minimizers of @p dna under scheme (k, w):
     * each window of w consecutive k-mers contributes its min-hash
     * k-mer once (ties keep the leftmost, the canonical choice).
     * Sequences shorter than one k-mer yield none.
     */
    static std::vector<std::pair<uint64_t, int>>
    minimizers(const seq::DnaSequence &dna, int k, int window);

    /** Reference positions of @p hash; nullptr when absent. */
    const std::vector<int32_t> *lookup(uint64_t hash) const;

    int k() const { return _k; }
    int window() const { return _window; }
    size_t distinctMinimizers() const { return _table.size(); }

  private:
    int _k;
    int _window;
    std::unordered_map<uint64_t, std::vector<int32_t>> _table;
};

/**
 * The mapper: owns the reference, its index, and the long-read tiling
 * engine. Extension of short reads goes through a caller-provided
 * StreamPipeline<SemiGlobal> so many mappers/workloads can share one
 * modeled device.
 */
class ReadMapper
{
  public:
    using Kernel = kernels::SemiGlobal;
    using Pipeline = host::StreamPipeline<Kernel>;
    using Job = Pipeline::Job;
    using Result = Pipeline::Result;

    /** An in-flight short-read mapping: plan + extension ticket. */
    struct Pending
    {
        MapPlan plan;
        Pipeline::Ticket ticket; //!< null when the plan had no candidates
    };

    explicit ReadMapper(seq::DnaSequence reference, MapperConfig cfg = {});

    /** Seed + chain (pure): candidate windows for @p read, best first.
     *  @p max_query_len / @p max_ref_len are the device maxima that
     *  decide whether extension must take the long-read path. */
    MapPlan plan(const seq::DnaSequence &read, int max_query_len,
                 int max_ref_len) const;

    /** The semi-global extension jobs of a short-read plan, one per
     *  candidate window, in candidate order. */
    std::vector<Job> extensionJobs(const seq::DnaSequence &read,
                                   const MapPlan &plan) const;

    /**
     * Submit a short read's extensions as one ticket (empty-candidate
     * plans return a null ticket; long-read plans must go through
     * mapLong instead — submit() routes them there via mapRead()).
     */
    Pending submit(Pipeline &pipeline, const seq::DnaSequence &read,
                   host::TicketOptions options = {},
                   Pipeline::Callback callback = nullptr);

    /** Fold a completed ticket back into a placement. */
    ReadMapping finish(const seq::DnaSequence &read,
                       const Pending &pending) const;

    /** Synchronous convenience: plan, extend (device ticket or tiling
     *  path as the shape demands), place. */
    ReadMapping mapRead(Pipeline &pipeline, const seq::DnaSequence &read,
                        host::TicketOptions options = {});

    /** Long-read extension: GACT tiling over the best chain's window. */
    ReadMapping mapLong(const seq::DnaSequence &read, const MapPlan &plan);

    const seq::DnaSequence &reference() const { return _reference; }
    const MinimizerIndex &index() const { return _index; }
    const MapperConfig &config() const { return _cfg; }

    /** Anchors of @p read against the index (exposed for tests). */
    std::vector<Anchor> anchors(const seq::DnaSequence &read) const;

    /** Best-vs-second MAPQ on 0..60 (pure; exposed for tests). */
    static int mapqFrom(double best, double second, int anchor_count);

  private:
    seq::DnaSequence _reference;
    MapperConfig _cfg;
    MinimizerIndex _index;
    /** Long-read tiling engine (global affine per tile). */
    sim::SystolicAligner<kernels::GlobalAffine> _tileEngine;
};

} // namespace dphls::workloads

#endif // DPHLS_WORKLOADS_MAPPER_HH
