#include "workloads/mapper.hh"

#include <algorithm>
#include <deque>
#include <limits>

namespace dphls::workloads {

namespace {

/** SplitMix64 finalizer: the k-mer hash (invertible, so no k-mer
 *  aliasing within 2k bits). */
uint64_t
mixHash(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

// ------------------------------------------------------- MinimizerIndex

std::vector<std::pair<uint64_t, int>>
MinimizerIndex::minimizers(const seq::DnaSequence &dna, int k, int window)
{
    std::vector<std::pair<uint64_t, int>> out;
    const int n = dna.length();
    if (k < 1 || k > 31 || n < k)
        return out;
    const int kmers = n - k + 1;
    const uint64_t mask = (uint64_t{1} << (2 * k)) - 1;

    // Rolling 2-bit pack of every k-mer, hashed on the fly.
    std::vector<uint64_t> hash(static_cast<size_t>(kmers));
    uint64_t code = 0;
    for (int i = 0; i < n; i++) {
        code = ((code << 2) | dna[i].code) & mask;
        if (i >= k - 1)
            hash[static_cast<size_t>(i - k + 1)] = mixHash(code);
    }

    // Monotonic deque over each window of `window` k-mers; ties keep
    // the leftmost occurrence (the deque never pops an equal front).
    const int w = std::max(1, window);
    std::deque<int> q; // k-mer positions, hashes increasing front->back
    int last_emitted = -1;
    for (int i = 0; i < kmers; i++) {
        while (!q.empty() &&
               hash[static_cast<size_t>(q.back())] >
                   hash[static_cast<size_t>(i)])
            q.pop_back();
        q.push_back(i);
        if (q.front() <= i - w)
            q.pop_front();
        if (i >= w - 1 && q.front() != last_emitted) {
            last_emitted = q.front();
            out.emplace_back(hash[static_cast<size_t>(last_emitted)],
                             last_emitted);
        }
    }
    // Sequences with fewer k-mers than one window still seed: emit the
    // overall minimum so short reads are not unmappable by construction.
    if (kmers < w && kmers > 0) {
        int best = 0;
        for (int i = 1; i < kmers; i++) {
            if (hash[static_cast<size_t>(i)] <
                hash[static_cast<size_t>(best)])
                best = i;
        }
        out.emplace_back(hash[static_cast<size_t>(best)], best);
    }
    return out;
}

MinimizerIndex::MinimizerIndex(const seq::DnaSequence &reference, int k,
                               int window)
    : _k(k), _window(window)
{
    for (const auto &[h, pos] : minimizers(reference, k, window))
        _table[h].push_back(static_cast<int32_t>(pos));
}

const std::vector<int32_t> *
MinimizerIndex::lookup(uint64_t hash) const
{
    const auto it = _table.find(hash);
    return it == _table.end() ? nullptr : &it->second;
}

// ----------------------------------------------------------- ReadMapper

namespace {

sim::EngineConfig
tileEngineConfig(const MapperConfig &cfg)
{
    sim::EngineConfig ecfg;
    ecfg.maxQueryLength = cfg.tiling.tileSize;
    ecfg.maxReferenceLength = cfg.tiling.tileSize;
    return ecfg;
}

} // namespace

ReadMapper::ReadMapper(seq::DnaSequence reference, MapperConfig cfg)
    : _reference(std::move(reference)), _cfg(cfg),
      _index(_reference, cfg.k, cfg.window),
      _tileEngine(tileEngineConfig(cfg), kernels::GlobalAffine::defaultParams())
{}

std::vector<Anchor>
ReadMapper::anchors(const seq::DnaSequence &read) const
{
    std::vector<Anchor> out;
    for (const auto &[h, qpos] :
         MinimizerIndex::minimizers(read, _cfg.k, _cfg.window)) {
        const auto *positions = _index.lookup(h);
        if (positions == nullptr ||
            static_cast<int>(positions->size()) > _cfg.maxOccurrences)
            continue; // absent or repetitive seed
        for (const int32_t rpos : *positions) {
            if (static_cast<int>(out.size()) >= _cfg.maxAnchors)
                break;
            out.push_back(Anchor{qpos, static_cast<int>(rpos)});
        }
    }
    std::sort(out.begin(), out.end(), [](const Anchor &a, const Anchor &b) {
        return a.rpos != b.rpos ? a.rpos < b.rpos : a.qpos < b.qpos;
    });
    return out;
}

MapPlan
ReadMapper::plan(const seq::DnaSequence &read, int max_query_len,
                 int max_ref_len) const
{
    MapPlan out;
    out.longRead = read.length() > max_query_len;
    const auto a = anchors(read);
    if (a.empty())
        return out;

    // Co-linear chaining DP: f[i] = k + max over recent predecessors of
    // f[j] - gap(j, i), gap = half the diagonal drift. Bounded lookback
    // keeps the pass O(n * chainLookback).
    const int n = static_cast<int>(a.size());
    std::vector<double> f(static_cast<size_t>(n),
                          static_cast<double>(_cfg.k));
    std::vector<int> pred(static_cast<size_t>(n), -1);
    for (int i = 0; i < n; i++) {
        const int j0 = std::max(0, i - _cfg.chainLookback);
        for (int j = j0; j < i; j++) {
            const int dq = a[static_cast<size_t>(i)].qpos -
                           a[static_cast<size_t>(j)].qpos;
            const int dr = a[static_cast<size_t>(i)].rpos -
                           a[static_cast<size_t>(j)].rpos;
            if (dq <= 0 || dr <= 0 || dq > _cfg.maxChainGap ||
                dr > _cfg.maxChainGap)
                continue;
            const double drift = static_cast<double>(std::abs(dq - dr));
            const double cand = f[static_cast<size_t>(j)] +
                                static_cast<double>(_cfg.k) - 0.5 * drift;
            if (cand > f[static_cast<size_t>(i)]) {
                f[static_cast<size_t>(i)] = cand;
                pred[static_cast<size_t>(i)] = j;
            }
        }
    }

    // Peel off the best chains, best tail first; anchors already used
    // by a better chain cannot end (or extend) a later one.
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return f[static_cast<size_t>(x)] != f[static_cast<size_t>(y)]
            ? f[static_cast<size_t>(x)] > f[static_cast<size_t>(y)]
            : x < y;
    });
    std::vector<uint8_t> used(static_cast<size_t>(n), 0);
    const int ref_len = _reference.length();
    for (const int tail : order) {
        if (static_cast<int>(out.candidates.size()) >= _cfg.maxCandidates)
            break;
        if (used[static_cast<size_t>(tail)])
            continue;
        int q_lo = std::numeric_limits<int>::max(), q_hi = 0;
        int r_lo = std::numeric_limits<int>::max(), r_hi = 0;
        int count = 0;
        for (int i = tail; i != -1; i = pred[static_cast<size_t>(i)]) {
            if (used[static_cast<size_t>(i)])
                break; // merged into an earlier (better) chain
            used[static_cast<size_t>(i)] = 1;
            q_lo = std::min(q_lo, a[static_cast<size_t>(i)].qpos);
            q_hi = std::max(q_hi, a[static_cast<size_t>(i)].qpos + _cfg.k);
            r_lo = std::min(r_lo, a[static_cast<size_t>(i)].rpos);
            r_hi = std::max(r_hi, a[static_cast<size_t>(i)].rpos + _cfg.k);
            count++;
        }
        if (count == 0)
            continue;

        // Project the chain onto a reference window wide enough for the
        // whole read plus slack.
        int w0 = r_lo - q_lo - _cfg.windowPad;
        int w1 = r_hi + (read.length() - q_hi) + _cfg.windowPad;
        if (!out.longRead && w1 - w0 > max_ref_len) {
            // Keep the short-read path viable: center the window on the
            // chain and clamp to the device maximum.
            const int mid = (w0 + w1) / 2;
            w0 = mid - max_ref_len / 2;
            w1 = w0 + max_ref_len;
        }
        w0 = std::max(0, w0);
        w1 = std::min(ref_len, std::max(w0, w1));
        if (w1 - w0 < _cfg.k)
            continue;

        // Merge near-duplicate windows (chains of the same locus).
        bool dup = false;
        for (const auto &c : out.candidates) {
            const int ov = std::min(w1, c.refEnd) - std::max(w0, c.refStart);
            if (ov > (w1 - w0) / 2) {
                dup = true;
                break;
            }
        }
        if (dup)
            continue;
        out.candidates.push_back(CandidateWindow{
            w0, w1, f[static_cast<size_t>(tail)], count});
    }
    return out;
}

std::vector<ReadMapper::Job>
ReadMapper::extensionJobs(const seq::DnaSequence &read,
                          const MapPlan &plan) const
{
    std::vector<Job> jobs;
    jobs.reserve(plan.candidates.size());
    for (const auto &c : plan.candidates) {
        Job job;
        job.query = read;
        job.reference.chars.assign(
            _reference.chars.begin() + c.refStart,
            _reference.chars.begin() + c.refEnd);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

ReadMapper::Pending
ReadMapper::submit(Pipeline &pipeline, const seq::DnaSequence &read,
                   host::TicketOptions options,
                   Pipeline::Callback callback)
{
    Pending pending;
    pending.plan = plan(read, pipeline.config().maxQueryLength,
                        pipeline.config().maxReferenceLength);
    if (!pending.plan.longRead && !pending.plan.candidates.empty()) {
        pending.ticket = pipeline.submit(
            extensionJobs(read, pending.plan), std::move(options),
            std::move(callback));
    }
    return pending;
}

ReadMapping
ReadMapper::finish(const seq::DnaSequence &read,
                   const Pending &pending) const
{
    ReadMapping m;
    m.longRead = pending.plan.longRead;
    m.candidates = static_cast<int>(pending.plan.candidates.size());
    if (!pending.ticket)
        return m;
    pending.ticket->wait();
    const auto &results = pending.ticket->results();
    const auto &cycles = pending.ticket->cycles();
    const auto &done = pending.ticket->completed();

    int best = -1;
    double best_score = 0, second_score = 0;
    for (size_t i = 0; i < results.size(); i++) {
        m.cycles += cycles[i];
        if (!done[i])
            continue;
        const double s = results[i].scoreAsDouble();
        if (best < 0 || s > best_score) {
            second_score = best < 0 ? second_score : best_score;
            best = static_cast<int>(i);
            best_score = s;
        } else if (s > second_score) {
            second_score = s;
        }
    }
    if (best < 0 || best_score <= 0)
        return m;

    const auto &res = results[static_cast<size_t>(best)];
    const auto &cand = pending.plan.candidates[static_cast<size_t>(best)];
    m.mapped = true;
    m.score = best_score;
    m.secondScore = second_score;
    // Semi-global: traceback stops on the top row at the reference
    // prefix consumed for free; the optimum sits on the bottom row.
    m.refStart = cand.refStart + res.start.col;
    m.refEnd = cand.refStart + res.end.col;
    m.ops = res.ops;
    m.mapq = mapqFrom(best_score, second_score, cand.anchors);
    (void)read;
    return m;
}

ReadMapping
ReadMapper::mapRead(Pipeline &pipeline, const seq::DnaSequence &read,
                    host::TicketOptions options)
{
    MapPlan p = plan(read, pipeline.config().maxQueryLength,
                     pipeline.config().maxReferenceLength);
    if (p.longRead)
        return mapLong(read, p);
    Pending pending;
    pending.plan = std::move(p);
    if (!pending.plan.candidates.empty()) {
        pending.ticket = pipeline.submit(
            extensionJobs(read, pending.plan), std::move(options));
    }
    return finish(read, pending);
}

ReadMapping
ReadMapper::mapLong(const seq::DnaSequence &read, const MapPlan &plan)
{
    ReadMapping m;
    m.longRead = true;
    m.candidates = static_cast<int>(plan.candidates.size());
    if (plan.candidates.empty())
        return m;
    const auto &cand = plan.candidates[0];

    seq::DnaSequence window;
    window.chars.assign(_reference.chars.begin() + cand.refStart,
                        _reference.chars.begin() + cand.refEnd);
    const auto tiled =
        host::tiledAlign(_tileEngine, read, window, _cfg.tiling);
    m.cycles = tiled.totalCycles;

    // Global tiling consumes the whole window including the pad; trim
    // the reference-only flanks back off so the placement is tight.
    size_t lead = 0, tail = 0;
    while (lead < tiled.ops.size() &&
           tiled.ops[lead] == core::AlnOp::Del)
        lead++;
    while (tail < tiled.ops.size() - lead &&
           tiled.ops[tiled.ops.size() - 1 - tail] == core::AlnOp::Del)
        tail++;
    m.ops.assign(tiled.ops.begin() + static_cast<long>(lead),
                 tiled.ops.end() - static_cast<long>(tail));
    m.refStart = cand.refStart + static_cast<int>(lead);
    m.refEnd = cand.refEnd - static_cast<int>(tail);
    m.score = static_cast<double>(host::rescoreAffinePath(
        read, window, tiled.ops, _tileEngine.params()));
    m.secondScore =
        plan.candidates.size() > 1 ? plan.candidates[1].chainScore : 0;
    m.mapped = m.score > 0;
    // On the tiling path only one candidate is extended; confidence
    // falls back to the chain-score margin.
    m.mapq = m.mapped
        ? mapqFrom(cand.chainScore, m.secondScore, cand.anchors)
        : 0;
    return m;
}

int
ReadMapper::mapqFrom(double best, double second, int anchor_count)
{
    if (best <= 0)
        return 0;
    const double margin =
        second > 0 ? 1.0 - second / best : 1.0;
    const double support =
        std::min(1.0, static_cast<double>(anchor_count) / 10.0);
    const int q = static_cast<int>(60.0 * margin * support + 0.5);
    return std::clamp(q, 0, 60);
}

} // namespace dphls::workloads
