/**
 * @file
 * Cycle accounting for the systolic back-end.
 *
 * The paper computes kernel throughput from co-simulation cycle counts,
 * the achieved clock frequency and the number of parallel alignments
 * (Section 6.2). The engine tallies cycles per phase; this model combines
 * them according to the accelerator's phase-overlap capabilities:
 *
 *  - DP-HLS executes sequence load, initialization, matrix fill, max
 *    reduction, traceback and write-back sequentially (Section 7.3);
 *  - hand-written RTL baselines (GACT, BSW, SquiggleFilter) overlap load
 *    and initialization with the previous alignment's compute, which is
 *    exactly the 7.7-16.8% throughput edge the paper reports;
 *  - the Vitis Genomics Library baseline streams data through host
 *    channels, adding a per-alignment stall (Section 7.5).
 */

#ifndef DPHLS_SYSTOLIC_CYCLE_MODEL_HH
#define DPHLS_SYSTOLIC_CYCLE_MODEL_HH

#include <cstdint>

namespace dphls::sim {

/** Per-phase cycle counts for one alignment on one block. */
struct CycleStats
{
    uint64_t seqLoad = 0;    //!< streaming query+reference into local buffers
    uint64_t init = 0;       //!< writing init row/column score buffers
    uint64_t fill = 0;       //!< wavefront loop (trips x II + chunk overhead)
    uint64_t fillTrips = 0;  //!< raw wavefront loop trips
    uint64_t chunks = 0;     //!< query chunks processed
    uint64_t reduction = 0;  //!< max-cell reduction over PEs
    uint64_t traceback = 0;  //!< traceback FSM steps
    uint64_t writeback = 0;  //!< streaming the path back to the host
    uint64_t extra = 0;      //!< accelerator-specific stalls (HLS baseline)

    /** Paths must agree bit-for-bit; the equivalence suite compares. */
    bool operator==(const CycleStats &) const = default;
};

/** Phase-overlap capabilities of an accelerator implementation. */
struct CycleModelOptions
{
    /**
     * Overlap sequence load + init with compute (RTL baselines). DP-HLS
     * performs these phases sequentially; see paper Section 7.3.
     */
    bool overlapLoadInit = false;
    /** Pipeline fill/drain overhead added per chunk. */
    int pipelineDepth = 6;
    /** Cycles per traceback step (BRAM access is pipelined; 1 nominal). */
    int tracebackCyclesPerStep = 1;
    /** Alignment ops packed per write-back cycle. */
    int writebackOpsPerCycle = 4;
    /**
     * Host-streaming stall cycles per sequence character. Zero for DP-HLS
     * (sequences live in device memory); nonzero for the Vitis Genomics
     * Library baseline, which streams data through host channels
     * (Section 7.5).
     */
    int hostStreamCyclesPerChar = 0;
};

/** Combine phase counts into total cycles per alignment. */
uint64_t totalCycles(const CycleStats &stats, const CycleModelOptions &opt);

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_CYCLE_MODEL_HH
