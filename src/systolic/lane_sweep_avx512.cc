/**
 * AVX-512-tier sweep TU: CMakeLists.txt compiles this file with
 * -mavx512f -mavx512bw -mavx512vl -mavx512dq, native width 16. Only
 * dispatched when the CPU reports all four extensions (isa_tier.cc).
 * See lane_sweep_impl.hh.
 */

#define DPHLS_SWEEP_NS sweep_avx512
#define DPHLS_SWEEP_TIER IsaTier::Avx512
#define DPHLS_SWEEP_WIDTH 16

#include "systolic/lane_sweep_impl.hh"

namespace dphls::sim {

/** Force-link anchor referenced by lane_sweep.cc. */
void
dphlsLinkLaneSweepAvx512()
{}

} // namespace dphls::sim
