/**
 * Baseline-tier sweep TU: compiled with the default (x86-64 SSE2)
 * flags, native width 4. See lane_sweep_impl.hh.
 */

#define DPHLS_SWEEP_NS sweep_sse2
#define DPHLS_SWEEP_TIER IsaTier::Sse2
#define DPHLS_SWEEP_WIDTH 4

#include "systolic/lane_sweep_impl.hh"

namespace dphls::sim {

/** Force-link anchor referenced by lane_sweep.cc. */
void
dphlsLinkLaneSweepSse2()
{}

} // namespace dphls::sim
