/**
 * @file
 * The wavefront-scheduled reference path of the systolic engine.
 *
 * This path executes the exact micro-architecture the paper's HLS
 * pragmas produce (Fig. 2C): NPE-row query chunks, one anti-diagonal per
 * pipeline initiation interval, the two previous wavefronts in the DP
 * memory buffer, a preserved-row score buffer carrying the last PE's row
 * into the next chunk, address-coalesced per-PE traceback banks, per-PE
 * local-optimum tracking and the reduction tree (Section 5.2).
 *
 * It is the only path that visits cells in schedule order, so it is the
 * ground truth for `ScheduleTrace` consumers and structural tests. The
 * row-major fast path (`fast_path.hh`) must stay bit-identical to it in
 * results and cycle statistics (enforced by
 * tests/test_fastpath_equivalence.cc).
 */

#ifndef DPHLS_SYSTOLIC_WAVEFRONT_PATH_HH
#define DPHLS_SYSTOLIC_WAVEFRONT_PATH_HH

#include <array>
#include <cstdlib>
#include <vector>

#include "systolic/engine_common.hh"

namespace dphls::sim {

/**
 * Preserved-row fetch guarded by row stamps: the current generation,
 * then the shadow (read-before-write) generation, else a sentinel
 * (stale entry outside a banded chunk's window).
 */
template <core::KernelSpec K>
inline typename K::ScoreT
preservedFetch(
    const std::array<std::vector<typename K::ScoreT>, K::nLayers> &preserved,
    const std::array<std::vector<typename K::ScoreT>, K::nLayers> &shadow,
    const std::vector<int> &row_of, const std::vector<int> &shadow_row_of,
    int l, int j, int expect_row, typename K::ScoreT worst)
{
    if (row_of[static_cast<size_t>(j)] == expect_row)
        return preserved[static_cast<size_t>(l)][static_cast<size_t>(j)];
    if (shadow_row_of[static_cast<size_t>(j)] == expect_row)
        return shadow[static_cast<size_t>(l)][static_cast<size_t>(j)];
    return worst;
}

/** Align one pair on the wavefront-scheduled reference path. */
template <core::KernelSpec K>
core::AlignResult<typename K::ScoreT>
wavefrontAlign(const EngineConfig &cfg, const typename K::Params &params,
               const seq::Sequence<typename K::CharT> &query,
               const seq::Sequence<typename K::CharT> &reference,
               CycleStats &stats)
{
    using ScoreT = typename K::ScoreT;
    constexpr int nLayers = K::nLayers;

    const int qlen = query.length();
    const int rlen = reference.length();
    const int npe = cfg.numPe;
    const int band = cfg.bandWidth;
    const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
    const bool keep_tb = K::hasTraceback && !cfg.skipTraceback;

    stats = CycleStats{};
    accountLoadInit<K>(cfg, qlen, rlen, stats);
    const uint64_t total_trips = accountFill<K>(cfg, qlen, rlen, stats);

    // Init score buffers (front-end step 2); index 0 is the origin.
    std::array<std::vector<ScoreT>, nLayers> init_row, init_col;
    for (int l = 0; l < nLayers; l++) {
        auto &row = init_row[static_cast<size_t>(l)];
        auto &col = init_col[static_cast<size_t>(l)];
        row.assign(static_cast<size_t>(rlen + 1), worst);
        col.assign(static_cast<size_t>(qlen + 1), worst);
        row[0] = col[0] = K::originScore(l, params);
        for (int j = 1; j <= rlen; j++)
            row[static_cast<size_t>(j)] = K::initRowScore(j, l, params);
        for (int i = 1; i <= qlen; i++)
            col[static_cast<size_t>(i)] = K::initColScore(i, l, params);
    }

    // Preserved row score buffer: scores of row (chunk * NPE), plus a
    // row stamp so banded chunks never read stale entries. A single
    // shadow generation models the hardware's read-before-write
    // register: in chunks with one active row the same PE reads row
    // i-1 from an entry it overwrites with row i one cycle earlier.
    std::array<std::vector<ScoreT>, nLayers> preserved, shadow;
    std::vector<int> preserved_row_of(static_cast<size_t>(rlen + 1), 0);
    std::vector<int> shadow_row_of(static_cast<size_t>(rlen + 1), -1);
    for (int l = 0; l < nLayers; l++) {
        preserved[static_cast<size_t>(l)] = init_row[static_cast<size_t>(l)];
        shadow[static_cast<size_t>(l)] = init_row[static_cast<size_t>(l)];
    }

    // Per-PE wavefront buffers (N-1th and N-2th wavefronts).
    std::array<std::vector<ScoreT>, nLayers> prev1, prev2, cur;
    for (int l = 0; l < nLayers; l++) {
        prev1[static_cast<size_t>(l)].assign(static_cast<size_t>(npe),
                                             worst);
        prev2[static_cast<size_t>(l)].assign(static_cast<size_t>(npe),
                                             worst);
        cur[static_cast<size_t>(l)].assign(static_cast<size_t>(npe), worst);
    }

    // Traceback memory: one bank per PE, address-coalesced by wavefront
    // within each chunk. The total bank depth is the analytic trip count,
    // so each bank is sized exactly once up front instead of re-growing
    // chunk by chunk.
    std::vector<std::vector<core::TbPtr>> tb_mem;
    if (keep_tb) {
        tb_mem.assign(static_cast<size_t>(npe), {});
        for (auto &bank : tb_mem)
            bank.resize(static_cast<size_t>(total_trips));
    }
    std::vector<int> chunk_base, chunk_wstart;

    // Per-PE local optimum over the eligible region.
    struct Best
    {
        ScoreT score{};
        core::Coord cell;
        bool valid = false;
    };
    std::vector<Best> best(static_cast<size_t>(npe));

    const int n_chunks = numChunks(qlen, npe);
    core::PeIn<ScoreT, typename K::CharT, nLayers> in;
    int tb_offset = 0;

    for (int c = 0; c < n_chunks; c++) {
        const auto cb = chunkBounds<K>(c, npe, band, qlen, rlen);
        const int row0 = cb.row0;
        const int rows = cb.rows;
        const int w_lo = cb.wLo;
        const int w_hi = cb.wHi;
        chunk_wstart.push_back(w_lo);
        chunk_base.push_back(tb_offset);
        if (!cb.active())
            continue;
        tb_offset += cb.trips();

        for (int l = 0; l < nLayers; l++) {
            std::fill(prev1[static_cast<size_t>(l)].begin(),
                      prev1[static_cast<size_t>(l)].end(), worst);
            std::fill(prev2[static_cast<size_t>(l)].begin(),
                      prev2[static_cast<size_t>(l)].end(), worst);
        }

        for (int w = w_lo; w <= w_hi; w++) {
            for (int p = 0; p < rows; p++) {
                const int i = row0 + p;
                const int j = w - p + 1;
                const bool valid = j >= 1 && j <= rlen &&
                    (!K::banded || std::abs(i - j) <= band);
                core::TbPtr ptr{};
                if (!valid) {
                    for (int l = 0; l < nLayers; l++)
                        cur[static_cast<size_t>(l)][static_cast<size_t>(p)] =
                            worst;
                } else {
                    for (int l = 0; l < nLayers; l++) {
                        const size_t ls = static_cast<size_t>(l);
                        const size_t ps = static_cast<size_t>(p);
                        if (j == 1) {
                            in.left[ls] =
                                init_col[ls][static_cast<size_t>(i)];
                            in.diag[ls] =
                                init_col[ls][static_cast<size_t>(i - 1)];
                            in.up[ls] = p == 0
                                ? preservedFetch<K>(preserved, shadow,
                                                    preserved_row_of,
                                                    shadow_row_of, l, 1,
                                                    i - 1, worst)
                                : prev1[ls][ps - 1];
                        } else {
                            in.left[ls] = prev1[ls][ps];
                            if (p == 0) {
                                in.up[ls] = preservedFetch<K>(
                                    preserved, shadow, preserved_row_of,
                                    shadow_row_of, l, j, i - 1, worst);
                                in.diag[ls] = preservedFetch<K>(
                                    preserved, shadow, preserved_row_of,
                                    shadow_row_of, l, j - 1, i - 1, worst);
                            } else {
                                in.up[ls] = prev1[ls][ps - 1];
                                in.diag[ls] = prev2[ls][ps - 1];
                            }
                        }
                    }
                    in.qryVal = query[i - 1];
                    in.refVal = reference[j - 1];
                    in.row = i;
                    in.col = j;
                    const auto out = K::peFunc(in, params);
                    for (int l = 0; l < nLayers; l++) {
                        cur[static_cast<size_t>(l)][static_cast<size_t>(p)] =
                            out.score[static_cast<size_t>(l)];
                    }
                    ptr = out.tbPtr;

                    // Local optimum tracking (Section 5.2): strictly
                    // better only, so the per-PE best is the first
                    // optimum in (row, col) order.
                    if (cellEligible<K>(i, j, qlen, rlen)) {
                        auto &b = best[static_cast<size_t>(p)];
                        const ScoreT v = out.score[0];
                        if (!b.valid ||
                            core::isBetter(K::objective, v, b.score)) {
                            b.score = v;
                            b.cell = core::Coord{i, j};
                            b.valid = true;
                        }
                    }
                }
                if (keep_tb) {
                    tb_mem[static_cast<size_t>(p)]
                          [static_cast<size_t>(chunk_base.back() +
                                               (w - w_lo))] = ptr;
                }
                if (cfg.trace) {
                    ScheduleEvent ev;
                    ev.chunk = c;
                    ev.wavefront = w - w_lo;
                    ev.pe = p;
                    ev.row = i;
                    ev.col = j;
                    ev.valid = valid;
                    ev.tbAddr =
                        keep_tb ? chunk_base.back() + (w - w_lo) : -1;
                    cfg.trace->push_back(ev);
                }
                // Preserved-row update by the chunk's last PE; the old
                // value drops into the shadow generation.
                if (p == rows - 1 && j >= 1 && j <= rlen) {
                    for (int l = 0; l < nLayers; l++) {
                        const size_t ls = static_cast<size_t>(l);
                        const size_t js = static_cast<size_t>(j);
                        shadow[ls][js] = preserved[ls][js];
                        preserved[ls][js] =
                            cur[ls][static_cast<size_t>(p)];
                    }
                    shadow_row_of[static_cast<size_t>(j)] =
                        preserved_row_of[static_cast<size_t>(j)];
                    preserved_row_of[static_cast<size_t>(j)] = i;
                }
            }
            for (int l = 0; l < nLayers; l++) {
                std::swap(prev2[static_cast<size_t>(l)],
                          prev1[static_cast<size_t>(l)]);
                std::swap(prev1[static_cast<size_t>(l)],
                          cur[static_cast<size_t>(l)]);
            }
        }
    }

    // Reduction over the PEs' local optima (Section 5.2).
    bool found = false;
    ScoreT best_score{};
    core::Coord best_cell;
    for (const auto &b : best) {
        if (!b.valid)
            continue;
        const bool better = !found ||
            core::isBetter(K::objective, b.score, best_score) ||
            (b.score == best_score &&
             (b.cell.row < best_cell.row ||
              (b.cell.row == best_cell.row &&
               b.cell.col < best_cell.col)));
        if (better) {
            best_score = b.score;
            best_cell = b.cell;
            found = true;
        }
    }

    auto fetch = [&](int i, int j) {
        const int c = (i - 1) / npe;
        const int p = (i - 1) % npe;
        const int w = (j - 1) + p;
        const int addr = chunk_base[static_cast<size_t>(c)] +
                         (w - chunk_wstart[static_cast<size_t>(c)]);
        return tb_mem[static_cast<size_t>(p)][static_cast<size_t>(addr)];
    };
    return finishResult<K>(cfg, params, qlen, rlen, found, best_score,
                           best_cell, keep_tb, fetch, stats);
}

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_WAVEFRONT_PATH_HH
