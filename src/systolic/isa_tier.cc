#include "systolic/isa_tier.hh"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dphls::sim {

namespace {

int
tierRank(IsaTier t)
{
    switch (t) {
      case IsaTier::Avx512:
        return 3;
      case IsaTier::Avx2:
        return 2;
      case IsaTier::Sse2:
        return 1;
      default:
        return 0;
    }
}

IsaTier
probeCpu()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    // The AVX-512 sweeps are compiled with F+BW+VL+DQ; require all of
    // them before advertising the tier.
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw")
        && __builtin_cpu_supports("avx512vl")
        && __builtin_cpu_supports("avx512dq"))
        return IsaTier::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return IsaTier::Avx2;
#endif
    return IsaTier::Sse2;
}

} // namespace

const char *
isaTierName(IsaTier tier)
{
    switch (tier) {
      case IsaTier::Auto:
        return "auto";
      case IsaTier::Scalar:
        return "scalar";
      case IsaTier::Sse2:
        return "sse2";
      case IsaTier::Avx2:
        return "avx2";
      case IsaTier::Avx512:
        return "avx512";
    }
    return "auto";
}

bool
parseIsaTier(std::string_view name, IsaTier &out)
{
    for (IsaTier t : {IsaTier::Auto, IsaTier::Scalar, IsaTier::Sse2,
                      IsaTier::Avx2, IsaTier::Avx512}) {
        if (name == isaTierName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

bool
isaTierSupported(IsaTier tier)
{
    if (tier == IsaTier::Auto || tier == IsaTier::Scalar
        || tier == IsaTier::Sse2)
        return true;
    return tierRank(tier) <= tierRank(probeCpu());
}

IsaTier
detectIsaTier()
{
    static const IsaTier detected = [] {
        IsaTier best = probeCpu();
        if (const char *env = std::getenv("DPHLS_ISA_TIER")) {
            IsaTier cap = IsaTier::Auto;
            if (parseIsaTier(env, cap) && cap != IsaTier::Auto
                && tierRank(cap) <= tierRank(best))
                best = cap;
        }
        return best;
    }();
    return detected;
}

IsaTier
resolveIsaTier(IsaTier requested)
{
    if (requested == IsaTier::Auto)
        return detectIsaTier();
    if (!isaTierSupported(requested))
        throw std::invalid_argument(std::string("isa tier not supported on "
                                                "this host: ")
                                    + isaTierName(requested));
    return requested;
}

double
isaTierSeedCellsPerSec(IsaTier tier)
{
    // Startup guesses only -- the EWMA replaces them after the first
    // measured batch. Ratios follow the native lane widths.
    switch (tier) {
      case IsaTier::Avx512:
        return 8e8;
      case IsaTier::Avx2:
        return 4e8;
      case IsaTier::Sse2:
        return 2e8;
      default:
        return 1.2e8; // Scalar (and unresolved Auto)
    }
}

} // namespace dphls::sim
