/**
 * @file
 * Tier-compiled sweep bodies. Included ONLY by the per-tier translation
 * units (lane_sweep_{sse2,avx2,avx512}.cc), each of which defines
 *
 *   DPHLS_SWEEP_NS    - tier namespace (sweep_sse2, ...)
 *   DPHLS_SWEEP_TIER  - the IsaTier enumerator
 *   DPHLS_SWEEP_WIDTH - the tier's native lane count (4, 8, 16)
 *
 * before including this file, and is compiled with the matching -m
 * flags. A static registrar publishes the instantiations (all registry
 * kernels x widths up to native) into the sweep registry; everything
 * here lives in a tier-specific namespace and every helper it calls is
 * force-inlined, so no tier's instructions can leak into another TU
 * through COMDAT folding.
 *
 * The bodies mirror the scalar engines cell for cell:
 *
 *  - laneSweep: the lane engine's lockstep row loop (inter-pair SIMD),
 *    identical to LaneAligner's scalar per-lane fallback in visit
 *    order, boundary handling and optimum masking.
 *  - diagSweep: the intra-pair anti-diagonal loop (diag_path.hh),
 *    whose optimum reduction re-establishes the scalar paths'
 *    first-optimum-in-(row,col)-order semantics explicitly, because
 *    anti-diagonal visit order differs from row-major.
 */

#ifndef DPHLS_SWEEP_NS
#error "lane_sweep_impl.hh must be included by a tier TU"
#endif

#include <cstring>

#include "kernels/all.hh"
#include "systolic/lane_sweep.hh"

namespace dphls::sim::DPHLS_SWEEP_NS {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"

constexpr IsaTier kTier = DPHLS_SWEEP_TIER;
constexpr int kNativeW = DPHLS_SWEEP_WIDTH;

namespace simd = kernels::detail::simd;

/** Per-lane eligibility mask of the optimum reduction (both sweeps). */
template <typename K, typename V>
DPHLS_SIMD_INLINE V
eligMask(V vi, V vj, V vql, V vrl)
{
    if constexpr (K::alignKind == core::AlignmentKind::Local)
        return (vi <= vql) & (vj <= vrl);
    else if constexpr (K::alignKind == core::AlignmentKind::Global)
        return (vi == vql) & (vj == vrl);
    else if constexpr (K::alignKind == core::AlignmentKind::SemiGlobal)
        return (vi == vql) & (vj <= vrl);
    else // Overlap
        return ((vi == vql) & (vj <= vrl)) | ((vj == vrl) & (vi <= vql));
}

/** Dispatch to the kernel's single-plane or multi-plane lane cell. */
template <typename K, typename V>
DPHLS_SIMD_INLINE void
callLaneCell(const V *up, const V *lf, const V *dg, const V *qry,
             const V *ref, const typename K::Params &params, V *sc, V &ptr)
{
    if constexpr (KernelHasLaneCellPlanes<K, V>)
        K::template laneCellPlanes<V>(up, lf, dg, qry, ref, params, sc,
                                      ptr);
    else
        K::template laneCell<V>(up, lf, dg, qry[0], ref[0], params, sc,
                                ptr);
}

/**
 * Inter-pair lockstep row sweep over W lanes (the lane engine's vector
 * path). See LaneAligner for the surrounding buffer layout contract.
 */
template <typename K, int W>
void
laneSweep(const LaneSweepArgs<K> &a)
{
    using V = typename simd::VecPack<W>::I32;
    using U8V = typename simd::VecPack<W>::U8;
    constexpr int nLayers = K::nLayers;
    constexpr int planes = LaneCharTraits<typename K::CharT>::planes;

    const int maxq = a.maxq, maxr = a.maxr, band = a.band;
    const V worst = simd::splat<V>(a.worstRaw);

    V vql, vrl;
    std::memcpy(&vql, a.qlen, sizeof(V));
    std::memcpy(&vrl, a.rlen, sizeof(V));
    V vbs{}, vbi{}, vbj{}, vfound{};

    int32_t *row_prev[nLayers], *row_cur[nLayers];
    for (int l = 0; l < nLayers; l++) {
        row_prev[l] = a.rowPrev[l];
        row_cur[l] = a.rowCur[l];
    }

    for (int i = 1; i <= maxq; i++) {
        const int jlo = K::banded ? (i - band > 1 ? i - band : 1) : 1;
        const int jhi =
            K::banded ? (i + band < maxr ? i + band : maxr) : maxr;
        if (jlo > jhi)
            continue; // band fully outside this row

        // Left-edge boundary + in-register diag/left packs. Row
        // buffers are 64-byte aligned with stride-W slots, so slot
        // pointers are naturally aligned for direct vector loads.
        V dg[nLayers], lf[nLayers];
        for (int l = 0; l < nLayers; l++) {
            const int32_t bval =
                jlo == 1 ? a.colInit[i * nLayers + l] : a.worstRaw;
            const V bv = simd::splat<V>(bval);
            *reinterpret_cast<V *>(
                row_cur[l] + static_cast<size_t>(jlo - 1) * W) = bv;
            dg[l] = *reinterpret_cast<const V *>(
                row_prev[l] + static_cast<size_t>(jlo - 1) * W);
            lf[l] = bv;
        }

        V qry[planes];
        for (int pl = 0; pl < planes; pl++) {
            qry[pl] = *reinterpret_cast<const V *>(
                a.qch32 +
                (static_cast<size_t>(i - 1) * planes +
                 static_cast<size_t>(pl)) * W);
        }

        core::TbPtr *tb_row =
            a.keepTb ? a.tb + static_cast<size_t>(a.rowBase[i]) * W
                     : a.tbScratch;
        const size_t tb_stride = a.keepTb ? W : 0;
        const V vi = simd::splat<V>(i);

        for (int j = jlo; j <= jhi; j++) {
            V up[nLayers], sc[nLayers];
            for (int l = 0; l < nLayers; l++) {
                up[l] = *reinterpret_cast<const V *>(
                    row_prev[l] + static_cast<size_t>(j) * W);
            }
            V ref[planes];
            for (int pl = 0; pl < planes; pl++) {
                ref[pl] = *reinterpret_cast<const V *>(
                    a.rch32 +
                    (static_cast<size_t>(j - 1) * planes +
                     static_cast<size_t>(pl)) * W);
            }
            V vptr{};
            callLaneCell<K, V>(up, lf, dg, qry, ref, *a.params, sc, vptr);
            for (int l = 0; l < nLayers; l++) {
                *reinterpret_cast<V *>(
                    row_cur[l] + static_cast<size_t>(j) * W) = sc[l];
                dg[l] = up[l];
                lf[l] = sc[l];
            }
            const U8V nb = __builtin_convertvector(vptr, U8V);
            std::memcpy(static_cast<void *>(
                            tb_row +
                            static_cast<size_t>(j - jlo) * tb_stride),
                        &nb, sizeof(nb));

            // Per-lane optimum masks, identical to the scalar lane
            // loop's select chain.
            const V vj = simd::splat<V>(j);
            const V elig = eligMask<K, V>(vi, vj, vql, vrl);
            const V v = sc[0];
            const V is_better = K::objective == core::Objective::Maximize
                                    ? (v > vbs)
                                    : (v < vbs);
            const V better = elig & (~vfound | is_better);
            vbs = simd::sel(better, v, vbs);
            vbi = simd::sel(better, vi, vbi);
            vbj = simd::sel(better, vj, vbj);
            vfound |= better;
        }
        if (jhi < maxr) {
            for (int l = 0; l < nLayers; l++) {
                *reinterpret_cast<V *>(
                    row_cur[l] + static_cast<size_t>(jhi + 1) * W) = worst;
            }
        }
        for (int l = 0; l < nLayers; l++) {
            int32_t *tmp = row_prev[l];
            row_prev[l] = row_cur[l];
            row_cur[l] = tmp;
        }
    }

    std::memcpy(a.found, &vfound, sizeof(V));
    std::memcpy(a.bestRaw, &vbs, sizeof(V));
    std::memcpy(a.bestI, &vbi, sizeof(V));
    std::memcpy(a.bestJ, &vbj, sizeof(V));
}

/**
 * Intra-pair anti-diagonal sweep: one alignment, W cells of each
 * anti-diagonal advance in lockstep. Cell (i, j) of diagonal d = i + j
 * lives at slot i of that diagonal's buffer, so the dependencies are
 *
 *   up   (i-1, j)   -> diagonal d-1, slot i-1
 *   left (i,   j-1) -> diagonal d-1, slot i
 *   diag (i-1, j-1) -> diagonal d-2, slot i-1
 *
 * and a chunk of W consecutive i values loads each operand as one
 * (unaligned) vector. Boundary slots (i == 0 and j == 0) are refreshed
 * after every diagonal from the precomputed init tables; out-of-band /
 * out-of-matrix slots hold the sentinel-worst value, exactly what the
 * row-sweep engines expose to their in-band neighbours, so every cell
 * consumes bit-identical inputs to the scalar row-major engine.
 *
 * The per-diagonal compute range [ilo, ihi] is nondecreasing in ilo
 * and grows by at most one cell per diagonal in ihi, so writing slots
 * [ilo-1, ihi+1] each diagonal covers every future read of that
 * buffer; diagonals with no in-band cells (odd diagonals at band 0)
 * still refresh their two boundary/sentinel slots.
 */
template <typename K, int W>
void
diagSweep(const DiagSweepArgs<K> &a)
{
    using V = typename simd::VecPack<W>::I32;
    constexpr int nLayers = K::nLayers;
    constexpr int planes = LaneCharTraits<typename K::CharT>::planes;

    const int qlen = a.qlen, rlen = a.rlen, band = a.band;
    const V worst = simd::splat<V>(a.worstRaw);
    const V vql = simd::splat<V>(qlen);
    const V vrl = simd::splat<V>(rlen);
    V iota{};
    for (int k = 0; k < W; k++)
        iota[k] = k;

    int32_t *d2[nLayers], *d1[nLayers], *cur[nLayers];
    for (int l = 0; l < nLayers; l++) {
        d2[l] = a.d2[l];
        d1[l] = a.d1[l];
        cur[l] = a.cur[l];
    }

    V vbs{}, vbi{}, vbj{}, vfound{};

    for (int d = 2; d <= qlen + rlen; d++) {
        int ilo = d - rlen > 1 ? d - rlen : 1;
        int ihi = d - 1 < qlen ? d - 1 : qlen;
        if constexpr (K::banded) {
            // |2i - d| <= band  <=>  ceil((d-band)/2) <= i <= (d+band)/2
            if (d - band > 0 && (d - band + 1) / 2 > ilo)
                ilo = (d - band + 1) / 2;
            if ((d + band) / 2 < ihi)
                ihi = (d + band) / 2;
        }

        for (int i0 = ilo; i0 <= ihi; i0 += W) {
            V up[nLayers], lf[nLayers], dg[nLayers], sc[nLayers];
            for (int l = 0; l < nLayers; l++) {
                std::memcpy(&up[l], d1[l] + (i0 - 1), sizeof(V));
                std::memcpy(&lf[l], d1[l] + i0, sizeof(V));
                std::memcpy(&dg[l], d2[l] + (i0 - 1), sizeof(V));
            }
            V qry[planes], ref[planes];
            for (int pl = 0; pl < planes; pl++) {
                std::memcpy(&qry[pl],
                            a.q32 + static_cast<size_t>(pl) * a.qStride +
                                (i0 - 1),
                            sizeof(V));
                std::memcpy(&ref[pl],
                            a.rrev32 + static_cast<size_t>(pl) * a.rStride +
                                (rlen - d + i0),
                            sizeof(V));
            }
            V vptr{};
            callLaneCell<K, V>(up, lf, dg, qry, ref, *a.params, sc, vptr);

            const V vi = simd::splat<V>(i0) + iota;
            const V vj = simd::splat<V>(d) - vi;
            const V in_range = vi <= simd::splat<V>(ihi);
            for (int l = 0; l < nLayers; l++) {
                const V out = simd::sel(in_range, sc[l], worst);
                std::memcpy(cur[l] + i0, &out, sizeof(V));
            }
            if (a.keepTb) {
                const int kmax = ihi - i0 + 1 < W ? ihi - i0 + 1 : W;
                for (int k = 0; k < kmax; k++) {
                    const int i = i0 + k;
                    const int j = d - i;
                    const int jlo_row =
                        K::banded ? (i - band > 1 ? i - band : 1) : 1;
                    a.tb[a.rowBase[i] + (j - jlo_row)] =
                        core::TbPtr{static_cast<uint8_t>(vptr[k])};
                }
            }

            // Optimum reduction with an explicit row-major-first
            // tie-break: anti-diagonal order visits a row-major-later
            // cell before a row-major-earlier one whenever the earlier
            // cell sits on a later diagonal, so equal scores must
            // still prefer the (row, col)-smaller cell to reproduce
            // the scalar engines' keep-first-optimum semantics.
            const V cand = eligMask<K, V>(vi, vj, vql, vrl) & in_range;
            const V v = sc[0];
            const V is_better = K::objective == core::Objective::Maximize
                                    ? (v > vbs)
                                    : (v < vbs);
            const V earlier =
                (vi < vbi) | ((vi == vbi) & (vj < vbj));
            const V take =
                cand & (~vfound | is_better | ((v == vbs) & earlier));
            vbs = simd::sel(take, v, vbs);
            vbi = simd::sel(take, vi, vbi);
            vbj = simd::sel(take, vj, vbj);
            vfound |= take;
        }

        // Boundary / sentinel slots around the computed range.
        const int wlo = ilo - 1 > 0 ? ilo - 1 : 0;
        const int whi = ihi + 1 < qlen + 1 ? ihi + 1 : qlen + 1;
        for (int s = wlo; s <= whi; s++) {
            if (s >= ilo && s <= ihi)
                continue;
            for (int l = 0; l < nLayers; l++) {
                int32_t raw = a.worstRaw;
                if (s == 0 && d <= rlen)
                    raw = a.rowInit[d * nLayers + l];
                else if (s == d && d <= qlen)
                    raw = a.colInit[d * nLayers + l];
                cur[l][s] = raw;
            }
        }

        for (int l = 0; l < nLayers; l++) {
            int32_t *tmp = d2[l];
            d2[l] = d1[l];
            d1[l] = cur[l];
            cur[l] = tmp;
        }
    }

    // Cross-lane reduction, same row-major-first tie-break.
    int32_t found = 0, best = 0, bi = 0, bj = 0;
    for (int k = 0; k < W; k++) {
        if (!vfound[k])
            continue;
        bool take = !found;
        if (found) {
            const bool better = K::objective == core::Objective::Maximize
                                    ? vbs[k] > best
                                    : vbs[k] < best;
            take = better ||
                   (vbs[k] == best &&
                    (vbi[k] < bi || (vbi[k] == bi && vbj[k] < bj)));
        }
        if (take) {
            found = 1;
            best = vbs[k];
            bi = vbi[k];
            bj = vbj[k];
        }
    }
    *a.found = found;
    *a.bestRaw = best;
    *a.bestI = bi;
    *a.bestJ = bj;
}

/** Register every width this tier natively covers for one kernel. */
template <typename K>
void
registerKernelSweeps()
{
    if constexpr (laneSweepEnabled<K>) {
        registerSweep(typeid(LaneSweepTag<K, 4>), kTier,
                      reinterpret_cast<SweepFnErased>(&laneSweep<K, 4>));
        registerSweep(typeid(DiagSweepTag<K, 4>), kTier,
                      reinterpret_cast<SweepFnErased>(&diagSweep<K, 4>));
        if constexpr (kNativeW >= 8) {
            registerSweep(
                typeid(LaneSweepTag<K, 8>), kTier,
                reinterpret_cast<SweepFnErased>(&laneSweep<K, 8>));
            registerSweep(
                typeid(DiagSweepTag<K, 8>), kTier,
                reinterpret_cast<SweepFnErased>(&diagSweep<K, 8>));
        }
        if constexpr (kNativeW >= 16) {
            registerSweep(
                typeid(LaneSweepTag<K, 16>), kTier,
                reinterpret_cast<SweepFnErased>(&laneSweep<K, 16>));
            registerSweep(
                typeid(DiagSweepTag<K, 16>), kTier,
                reinterpret_cast<SweepFnErased>(&diagSweep<K, 16>));
        }
    }
}

inline bool
registerAllSweeps()
{
    registerKernelSweeps<kernels::GlobalLinear>();
    registerKernelSweeps<kernels::GlobalAffine>();
    registerKernelSweeps<kernels::GlobalTwoPiece>();
    registerKernelSweeps<kernels::LocalLinear>();
    registerKernelSweeps<kernels::LocalAffine>();
    registerKernelSweeps<kernels::SemiGlobal>();
    registerKernelSweeps<kernels::Overlap>();
    registerKernelSweeps<kernels::BandedGlobalLinear>();
    registerKernelSweeps<kernels::BandedLocalAffine>();
    registerKernelSweeps<kernels::BandedGlobalTwoPiece>();
    registerKernelSweeps<kernels::ProfileAlignment>();
    registerKernelSweeps<kernels::Dtw>();
    registerKernelSweeps<kernels::Viterbi>();
    registerKernelSweeps<kernels::Sdtw>();
    registerKernelSweeps<kernels::ProteinLocal>();
    return true;
}

namespace {
[[maybe_unused]] const bool kSweepsRegistered = registerAllSweeps();
} // namespace

#pragma GCC diagnostic pop

} // namespace dphls::sim::DPHLS_SWEEP_NS
