/**
 * AVX2-tier sweep TU: CMakeLists.txt compiles this file with -mavx2,
 * native width 8. Only dispatched when the CPU reports AVX2 support
 * (isa_tier.cc). See lane_sweep_impl.hh.
 */

#define DPHLS_SWEEP_NS sweep_avx2
#define DPHLS_SWEEP_TIER IsaTier::Avx2
#define DPHLS_SWEEP_WIDTH 8

#include "systolic/lane_sweep_impl.hh"

namespace dphls::sim {

/** Force-link anchor referenced by lane_sweep.cc. */
void
dphlsLinkLaneSweepAvx2()
{}

} // namespace dphls::sim
