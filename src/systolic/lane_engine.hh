/**
 * @file
 * Batch-level SIMD lanes: lockstep row-major DP over several pairs.
 *
 * CPU aligners (the BSW baseline in `baselines/bsw.*`) recover SIMD
 * throughput by running one alignment per vector lane — inter-sequence
 * parallelism. LaneAligner is the host-simulator analog: up to 16
 * same-kernel pairs advance through a struct-of-arrays row buffer in
 * lockstep, with the lane loop innermost and contiguous (stride-1 per
 * (layer, column) slot).
 *
 * The vector row sweep itself is compiled once per ISA tier (SSE2 /
 * AVX2 / AVX-512, see lane_sweep_impl.hh) and dispatched at runtime
 * through the sweep registry: the constructor resolves the configured
 * tier (EngineConfig::isaTier, default Auto = widest the CPU supports)
 * once, and each group runs the widest registered sweep at that tier.
 * Kernels without a registered sweep — custom kernels, or any kernel
 * under IsaTier::Scalar — run the scalar per-lane fallback loop, which
 * carries a `#pragma omp simd` hint for the auto-vectorizer.
 *
 * Pairs of different lengths share one padded (max-q x max-r) iteration
 * space. Per-lane results stay bit-identical to the scalar fast path
 * because
 *
 *  - init row/column values depend only on (index, layer, params),
 *    never on the pair, so every lane sees its own exact boundary;
 *  - cells beyond a lane's own (qlen, rlen) compute garbage that no
 *    in-range cell of that lane ever reads (DP dependencies only point
 *    down-right);
 *  - optimum eligibility is masked per lane with the lane's own
 *    dimensions, preserving the first-optimum-in-(row,col)-order
 *    reduction semantics;
 *  - cycle statistics are analytic per lane (same trip-count formulas
 *    as the scalar paths, over the lane's own dimensions).
 *
 * Enforced by tests/test_lane_batching.cc and (across every host tier)
 * tests/test_isa_tiers.cc.
 */

#ifndef DPHLS_SYSTOLIC_LANE_ENGINE_HH
#define DPHLS_SYSTOLIC_LANE_ENGINE_HH

#include <array>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "kernels/detail_simd.hh"
#include "systolic/engine_common.hh"
#include "systolic/lane_sweep.hh"

#if defined(_OPENMP) || defined(DPHLS_OPENMP_SIMD)
#define DPHLS_SIMD_LOOP _Pragma("omp simd")
#else
#define DPHLS_SIMD_LOOP
#endif

namespace dphls::sim {

/**
 * Lockstep multi-pair aligner for kernel @p K. One group of at most
 * `maxLanes` pairs per alignLanes() call; the host (BatchPipeline)
 * forms the groups.
 */
template <core::KernelSpec K>
class LaneAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Params = typename K::Params;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;
    static constexpr int maxLanes = 16;

    /** One lane: non-owning views of a query/reference pair. */
    struct LanePair
    {
        const seq::Sequence<CharT> *query = nullptr;
        const seq::Sequence<CharT> *reference = nullptr;
    };

    /**
     * Fill output of one native-width sub-group: everything the
     * per-lane traceback epilogue needs. The state owns the traceback
     * bank (moved out of the workspace), so laneTraceback() may run on
     * a consumer thread while this aligner fills the next group —
     * staged shard execution's lane-group boundary.
     */
    struct LaneFillState
    {
        int count = 0; //!< lanes actually occupied in this sub-group
        int packW = 0; //!< pack width the sub-group ran at (tb stride)
        int maxr = 0;
        int band = 0;
        bool keepTb = false;
        std::array<int, maxLanes> qlen{}, rlen{};
        std::array<uint8_t, maxLanes> found{};
        std::array<ScoreT, maxLanes> bestScore{};
        std::array<int, maxLanes> bestI{}, bestJ{};
        std::vector<core::TbPtr> tb;
        std::vector<int64_t> rowBase;
    };

    explicit LaneAligner(EngineConfig cfg = {},
                         Params params = K::defaultParams())
        : _cfg(cfg), _params(params), _tier(resolveIsaTier(cfg.isaTier))
    {
        if (_cfg.numPe < 1)
            throw std::invalid_argument("numPe must be >= 1");
    }

    const EngineConfig &config() const { return _cfg; }

    /** The resolved runtime ISA tier this aligner dispatches to. */
    IsaTier activeTier() const { return _tier; }

    /** Per-lane cycle statistics of the most recent alignLanes() call. */
    const std::vector<CycleStats> &laneStats() const { return _laneStats; }

    /** Total cycles of lane @p lane per the cycle model. */
    uint64_t
    laneTotalCycles(int lane) const
    {
        return totalCycles(_laneStats[static_cast<size_t>(lane)],
                           _cfg.cycles);
    }

    /** Align a group of pairs in lockstep; returns one result per lane. */
    std::vector<Result>
    alignLanes(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        if (n == 0)
            return {};
        if (n > maxLanes)
            throw std::invalid_argument("lane group exceeds maxLanes");
        for (const auto &lp : lanes) {
            if (lp.query->length() > _cfg.maxQueryLength)
                throw std::invalid_argument(
                    "query exceeds MAX_QUERY_LENGTH");
            if (lp.reference->length() > _cfg.maxReferenceLength)
                throw std::invalid_argument(
                    "reference exceeds MAX_REFERENCE_LENGTH");
        }

        // Split into native-width sub-groups of the resolved tier
        // (also shrinks the padded iteration space when lengths vary
        // across the group).
        const size_t native = static_cast<size_t>(isaTierLanes(_tier));
        std::vector<Result> results;
        std::vector<CycleStats> stats;
        results.reserve(lanes.size());
        stats.reserve(lanes.size());
        for (size_t g = 0; g < lanes.size(); g += native) {
            const size_t count = std::min(native, lanes.size() - g);
            const std::vector<LanePair> sub(
                lanes.begin() + static_cast<ptrdiff_t>(g),
                lanes.begin() + static_cast<ptrdiff_t>(g + count));
            auto sub_results = dispatch(sub);
            results.insert(results.end(),
                           std::make_move_iterator(sub_results.begin()),
                           std::make_move_iterator(sub_results.end()));
            stats.insert(stats.end(), _laneStats.begin(),
                         _laneStats.end());
        }
        _laneStats = std::move(stats);
        return results;
    }

    /**
     * Fill stage of a lane group: the same native-width sub-group split
     * as alignLanes(), stopping before the per-lane epilogue. Returns
     * one state per sub-group; feed each lane of each state through
     * laneTraceback() to obtain the bit-identical result and cycles.
     */
    std::vector<LaneFillState>
    fillLanes(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        if (n == 0)
            return {};
        if (n > maxLanes)
            throw std::invalid_argument("lane group exceeds maxLanes");
        for (const auto &lp : lanes) {
            if (lp.query->length() > _cfg.maxQueryLength)
                throw std::invalid_argument(
                    "query exceeds MAX_QUERY_LENGTH");
            if (lp.reference->length() > _cfg.maxReferenceLength)
                throw std::invalid_argument(
                    "reference exceeds MAX_REFERENCE_LENGTH");
        }
        const size_t native = static_cast<size_t>(isaTierLanes(_tier));
        std::vector<LaneFillState> states;
        states.reserve((lanes.size() + native - 1) / native);
        for (size_t g = 0; g < lanes.size(); g += native) {
            const size_t count = std::min(native, lanes.size() - g);
            const std::vector<LanePair> sub(
                lanes.begin() + static_cast<ptrdiff_t>(g),
                lanes.begin() + static_cast<ptrdiff_t>(g + count));
            states.push_back(dispatchFill(sub));
        }
        return states;
    }

    /**
     * Traceback epilogue of one lane of a fill state. Touches no
     * workspace (only the state's bank and the immutable config), so it
     * is safe concurrently with fillLanes() on this same aligner.
     */
    Result
    laneTraceback(const LaneFillState &st, int lane,
                  CycleStats &stats) const
    {
        const size_t lu = static_cast<size_t>(lane);
        const int ql = st.qlen[lu];
        const int rl = st.rlen[lu];
        stats = CycleStats{};
        accountLoadInit<K>(_cfg, ql, rl, stats);
        accountFill<K>(_cfg, ql, rl, stats);
        const auto fetch = [&](int fi, int fj) {
            const int flo = bandJLo<K>(fi, st.band);
            if (fj < flo || fj > bandJHi<K>(fi, st.maxr, st.band))
                return core::TbPtr{};
            return st.tb[static_cast<size_t>(
                             st.rowBase[static_cast<size_t>(fi)] +
                             (fj - flo)) *
                             static_cast<size_t>(st.packW) +
                         lu];
        };
        return finishResult<K>(_cfg, _params, ql, rl, st.found[lu] != 0,
                               st.bestScore[lu],
                               core::Coord{st.bestI[lu], st.bestJ[lu]},
                               st.keepTb, fetch, stats);
    }

    /**
     * Hand a finished group's buffers back for reuse. The staged
     * consumer calls this after the last laneTraceback() of a state so
     * the producer's next fillLanes() reuses the traceback bank instead
     * of paying a fresh allocation (and first-touch faults) per group —
     * the same amortization the monolithic run() gets by moving the
     * bank back into the workspace. Keeps the single largest bank;
     * thread-safe against fillLanes() on this same aligner.
     */
    void
    recycleBank(LaneFillState &&st)
    {
        std::lock_guard lock(_spareMutex);
        if (st.tb.capacity() > _spareTb.capacity())
            _spareTb = std::move(st.tb);
        if (st.rowBase.capacity() > _spareRowBase.capacity())
            _spareRowBase = std::move(st.rowBase);
    }

  private:
    std::vector<Result>
    dispatch(const std::vector<LanePair> &lanes)
    {
        // Pick the narrowest pack that still fits the group: packs
        // wider than the tier's native registers would be split into
        // slow multi-op sequences, so the tier caps the width.
        const int n = static_cast<int>(lanes.size());
        const int native = isaTierLanes(_tier);
        if (native >= 16 && n > 8)
            return run<16>(lanes);
        if (native >= 8 && n > 4)
            return run<8>(lanes);
        return run<4>(lanes);
    }

    LaneFillState
    dispatchFill(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        const int native = isaTierLanes(_tier);
        if (native >= 16 && n > 8)
            return fillRun<16>(lanes);
        if (native >= 8 && n > 4)
            return fillRun<8>(lanes);
        return fillRun<4>(lanes);
    }

    /** Monolithic group run: fill stage + per-lane epilogue in place. */
    template <int W>
    std::vector<Result>
    run(const std::vector<LanePair> &lanes)
    {
        LaneFillState st = fillRun<W>(lanes);
        const int n = st.count;
        std::vector<Result> results;
        results.reserve(static_cast<size_t>(n));
        _laneStats.assign(static_cast<size_t>(n), CycleStats{});
        for (int lane = 0; lane < n; lane++) {
            results.push_back(laneTraceback(
                st, lane, _laneStats[static_cast<size_t>(lane)]));
        }
        // Hand the bank back so lane groups keep amortizing allocations.
        _ws.tb = std::move(st.tb);
        _ws.rowBase = std::move(st.rowBase);
        return results;
    }

    template <int W>
    LaneFillState
    fillRun(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        const int band = _cfg.bandWidth;
        const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
        const bool keep_tb = K::hasTraceback && !_cfg.skipTraceback;

        // Unused lanes run as empty pairs: never eligible, cost nothing
        // beyond the lockstep arithmetic.
        std::array<int, W> qlen{}, rlen{};
        int maxq = 0, maxr = 0;
        for (int lane = 0; lane < n; lane++) {
            qlen[static_cast<size_t>(lane)] = lanes
                [static_cast<size_t>(lane)].query->length();
            rlen[static_cast<size_t>(lane)] = lanes
                [static_cast<size_t>(lane)].reference->length();
            maxq = std::max(maxq, qlen[static_cast<size_t>(lane)]);
            maxr = std::max(maxr, rlen[static_cast<size_t>(lane)]);
        }

        // Shared band-compressed traceback bank, [cell][lane]. When
        // traceback is off, every cell's store lands in one scratch
        // slot instead — the lane loop stays branch-free either way
        // (a conditional store would block vectorization). A staged run
        // moves the bank out per group; reclaim the consumer's recycled
        // one before falling back to a fresh allocation.
        if (_ws.tb.capacity() == 0 || _ws.rowBase.capacity() == 0) {
            std::lock_guard lock(_spareMutex);
            if (_ws.tb.capacity() == 0)
                _ws.tb = std::move(_spareTb);
            if (_ws.rowBase.capacity() == 0)
                _ws.rowBase = std::move(_spareRowBase);
        }
        std::vector<core::TbPtr> &tb = _ws.tb;
        tb.clear();
        std::array<core::TbPtr, W> tb_scratch{};
        std::vector<int64_t> &row_base = _ws.rowBase;
        if (keep_tb) {
            const int64_t cells =
                buildTbRowBase<K>(maxq, maxr, band, row_base);
            tb.resize(static_cast<size_t>(cells) * W);
        } else {
            row_base.assign(static_cast<size_t>(maxq + 1), 0);
        }

        std::array<uint8_t, W> found{};
        std::array<ScoreT, W> best_score{};
        std::array<int, W> best_i{}, best_j{};

        bool swept = false;
#ifdef DPHLS_VEC
        if constexpr (laneSweepEnabled<K>) {
            const LaneSweepFn<K> fn = _tier == IsaTier::Scalar
                ? nullptr : lookupLaneSweep<K, W>(_tier);
            if (fn) {
                runSweep<W>(fn, lanes, qlen, rlen, maxq, maxr, band,
                            LaneScoreTraits<ScoreT>::toRaw(worst), keep_tb,
                            tb, tb_scratch, row_base, found, best_score,
                            best_i, best_j);
                swept = true;
            }
        }
#endif
        if (!swept) {
            runScalar<W>(lanes, qlen, rlen, maxq, maxr, band, worst,
                         keep_tb, tb, tb_scratch, row_base, found,
                         best_score, best_i, best_j);
        }

        LaneFillState st;
        st.count = n;
        st.packW = W;
        st.maxr = maxr;
        st.band = band;
        st.keepTb = keep_tb;
        for (int lane = 0; lane < n; lane++) {
            const size_t lu = static_cast<size_t>(lane);
            st.qlen[lu] = qlen[lu];
            st.rlen[lu] = rlen[lu];
            st.found[lu] = found[lu];
            st.bestScore[lu] = best_score[lu];
            st.bestI[lu] = best_i[lu];
            st.bestJ[lu] = best_j[lu];
        }
        st.tb = std::move(tb);
        st.rowBase = std::move(row_base);
        return st;
    }

#ifdef DPHLS_VEC
    /**
     * Tier-compiled vector sweep: marshal the group into the raw-lane
     * SoA layout (64-byte-aligned int32 buffers, multi-plane character
     * codes, precomputed boundary tables) and hand it to the registered
     * sweep for the resolved tier. See lane_sweep.hh for the layout
     * contract and why raw int32 lanes are exact for ApFixed scores.
     */
    template <int W>
    void
    runSweep(LaneSweepFn<K> fn, const std::vector<LanePair> &lanes,
             const std::array<int, W> &qlen, const std::array<int, W> &rlen,
             int maxq, int maxr, int band, int32_t worst_raw, bool keep_tb,
             std::vector<core::TbPtr> &tb,
             std::array<core::TbPtr, W> &tb_scratch,
             const std::vector<int64_t> &row_base,
             std::array<uint8_t, W> &found,
             std::array<ScoreT, W> &best_score, std::array<int, W> &best_i,
             std::array<int, W> &best_j)
    {
        using CharTr = LaneCharTraits<CharT>;
        constexpr int planes = CharTr::planes;
        const int n = static_cast<int>(lanes.size());

        // Widened character planes, [pos][plane][lane]; padding lanes
        // stay zero (a valid code for the gather-style cells).
        RawLaneBuf &qp = _ws.qplanes;
        RawLaneBuf &rp = _ws.rplanes;
        qp.assign(static_cast<size_t>(maxq) * planes * W, 0);
        rp.assign(static_cast<size_t>(maxr) * planes * W, 0);
        for (int lane = 0; lane < n; lane++) {
            const auto &q = *lanes[static_cast<size_t>(lane)].query;
            const auto &r = *lanes[static_cast<size_t>(lane)].reference;
            for (int i = 0; i < q.length(); i++)
                for (int pl = 0; pl < planes; pl++)
                    qp[(static_cast<size_t>(i) * planes +
                        static_cast<size_t>(pl)) * W +
                       static_cast<size_t>(lane)] = CharTr::plane(q[i], pl);
            for (int j = 0; j < r.length(); j++)
                for (int pl = 0; pl < planes; pl++)
                    rp[(static_cast<size_t>(j) * planes +
                        static_cast<size_t>(pl)) * W +
                       static_cast<size_t>(lane)] = CharTr::plane(r[j], pl);
        }

        // Raw boundary tables: some kernels' init-column values depend
        // on the row index (Viterbi), so the sweep gets a full table.
        RawLaneBuf &col_init = _ws.colInitRaw;
        col_init.assign(static_cast<size_t>(maxq + 1) * nLayers, 0);
        for (int i = 1; i <= maxq; i++)
            for (int l = 0; l < nLayers; l++)
                col_init[static_cast<size_t>(i) * nLayers +
                         static_cast<size_t>(l)] =
                    LaneScoreTraits<ScoreT>::toRaw(
                        K::initColScore(i, l, _params));

        // Raw SoA row buffers with the origin/init-row boundary, same
        // values as the scalar path's ScoreT rows.
        std::array<int32_t *, nLayers> row_prev{}, row_cur{};
        for (int l = 0; l < nLayers; l++) {
            RawLaneBuf &prev = _ws.rowRawPrev[static_cast<size_t>(l)];
            RawLaneBuf &cur = _ws.rowRawCur[static_cast<size_t>(l)];
            prev.assign(static_cast<size_t>(maxr + 1) * W, worst_raw);
            cur.assign(static_cast<size_t>(maxr + 1) * W, worst_raw);
            const int32_t origin = LaneScoreTraits<ScoreT>::toRaw(
                K::originScore(l, _params));
            for (int lane = 0; lane < W; lane++)
                prev[static_cast<size_t>(lane)] = origin;
            for (int j = 1; j <= maxr; j++) {
                const int32_t v = LaneScoreTraits<ScoreT>::toRaw(
                    K::initRowScore(j, l, _params));
                for (int lane = 0; lane < W; lane++)
                    prev[static_cast<size_t>(j) * W +
                         static_cast<size_t>(lane)] = v;
            }
            row_prev[static_cast<size_t>(l)] = prev.data();
            row_cur[static_cast<size_t>(l)] = cur.data();
        }

        std::array<int32_t, W> qlen32{}, rlen32{};
        for (int lane = 0; lane < W; lane++) {
            qlen32[static_cast<size_t>(lane)] =
                qlen[static_cast<size_t>(lane)];
            rlen32[static_cast<size_t>(lane)] =
                rlen[static_cast<size_t>(lane)];
        }
        std::array<int32_t, W> out_found{}, out_best{}, out_i{}, out_j{};

        LaneSweepArgs<K> args;
        args.maxq = maxq;
        args.maxr = maxr;
        args.band = band;
        args.worstRaw = worst_raw;
        args.keepTb = keep_tb;
        args.qch32 = qp.data();
        args.rch32 = rp.data();
        args.colInit = col_init.data();
        args.rowPrev = row_prev.data();
        args.rowCur = row_cur.data();
        args.tb = tb.data();
        args.tbScratch = tb_scratch.data();
        args.rowBase = row_base.data();
        args.qlen = qlen32.data();
        args.rlen = rlen32.data();
        args.params = &_params;
        args.found = out_found.data();
        args.bestRaw = out_best.data();
        args.bestI = out_i.data();
        args.bestJ = out_j.data();
        fn(args);

        for (int lane = 0; lane < W; lane++) {
            const size_t lu = static_cast<size_t>(lane);
            found[lu] = out_found[lu] != 0;
            best_score[lu] =
                LaneScoreTraits<ScoreT>::fromRaw(out_best[lu]);
            best_i[lu] = out_i[lu];
            best_j[lu] = out_j[lu];
        }
    }
#endif // DPHLS_VEC

    /**
     * Scalar per-lane fallback: branch-free lockstep lane loop the
     * auto-vectorizer can lift. Used for kernels without a registered
     * sweep and under IsaTier::Scalar.
     */
    template <int W>
    void
    runScalar(const std::vector<LanePair> &lanes,
              const std::array<int, W> &qlen,
              const std::array<int, W> &rlen, int maxq, int maxr, int band,
              ScoreT worst, bool keep_tb, std::vector<core::TbPtr> &tb,
              std::array<core::TbPtr, W> &tb_scratch,
              const std::vector<int64_t> &row_base,
              std::array<uint8_t, W> &found,
              std::array<ScoreT, W> &best_score, std::array<int, W> &best_i,
              std::array<int, W> &best_j)
    {
        const int n = static_cast<int>(lanes.size());

        // Struct-of-arrays padded character buffers: [pos][lane].
        std::vector<CharT> &qch = _ws.qch;
        std::vector<CharT> &rch = _ws.rch;
        qch.assign(static_cast<size_t>(maxq) * W, CharT{});
        rch.assign(static_cast<size_t>(maxr) * W, CharT{});
        for (int lane = 0; lane < n; lane++) {
            const auto &q = *lanes[static_cast<size_t>(lane)].query;
            const auto &r = *lanes[static_cast<size_t>(lane)].reference;
            for (int i = 0; i < q.length(); i++)
                qch[static_cast<size_t>(i) * W +
                    static_cast<size_t>(lane)] = q[i];
            for (int j = 0; j < r.length(); j++)
                rch[static_cast<size_t>(j) * W +
                    static_cast<size_t>(lane)] = r[j];
        }

        const auto j_lo = [&](int i) { return bandJLo<K>(i, band); };
        const auto j_hi = [&](int i) { return bandJHi<K>(i, maxr, band); };

        // SoA row buffers: [layer][column][lane].
        std::array<std::vector<ScoreT>, nLayers> &row_prev = _ws.rowPrev;
        std::array<std::vector<ScoreT>, nLayers> &row_cur = _ws.rowCur;
        for (int l = 0; l < nLayers; l++) {
            auto &prev = row_prev[static_cast<size_t>(l)];
            auto &cur = row_cur[static_cast<size_t>(l)];
            prev.assign(static_cast<size_t>(maxr + 1) * W, worst);
            cur.assign(static_cast<size_t>(maxr + 1) * W, worst);
            const ScoreT origin = K::originScore(l, _params);
            for (int lane = 0; lane < W; lane++)
                prev[static_cast<size_t>(lane)] = origin;
            for (int j = 1; j <= maxr; j++) {
                const ScoreT v = K::initRowScore(j, l, _params);
                for (int lane = 0; lane < W; lane++)
                    prev[static_cast<size_t>(j) * W +
                         static_cast<size_t>(lane)] = v;
            }
        }

        for (int i = 1; i <= maxq; i++) {
            const int jlo = j_lo(i);
            const int jhi = j_hi(i);
            if (jlo > jhi)
                continue; // band fully outside this row

            for (int l = 0; l < nLayers; l++) {
                const ScoreT bval = jlo == 1
                    ? K::initColScore(i, l, _params) : worst;
                auto *cur = row_cur[static_cast<size_t>(l)].data() +
                            static_cast<size_t>(jlo - 1) * W;
                for (int lane = 0; lane < W; lane++)
                    cur[lane] = bval;
            }

            const CharT *qv = qch.data() + static_cast<size_t>(i - 1) * W;
            core::TbPtr *tb_row = keep_tb
                ? tb.data() + static_cast<size_t>(
                      row_base[static_cast<size_t>(i)]) * W
                : tb_scratch.data();
            const size_t tb_stride = keep_tb ? W : 0;

            for (int j = jlo; j <= jhi; j++) {
                const CharT *rv =
                    rch.data() + static_cast<size_t>(j - 1) * W;
                core::TbPtr *tb_cell =
                    tb_row + static_cast<size_t>(j - jlo) * tb_stride;
                // The lane body is branch-free by construction (plain
                // selects, non-short-circuit masks, unconditional
                // stores) so the compiler can if-convert and vectorize
                // the whole recurrence across lanes.
                DPHLS_SIMD_LOOP
                for (int lane = 0; lane < W; lane++) {
                    // Layer loops are unrolled via fold expressions:
                    // a runtime inner loop would read as control flow
                    // and defeat the vectorizer.
                    core::PeIn<ScoreT, CharT, nLayers> in;
                    const size_t js = static_cast<size_t>(j) * W +
                                      static_cast<size_t>(lane);
                    [&]<size_t... L>(std::index_sequence<L...>) {
                        ((in.up[L] = row_prev[L][js]), ...);
                        ((in.diag[L] = row_prev[L][js - W]), ...);
                        ((in.left[L] = row_cur[L][js - W]), ...);
                    }(std::make_index_sequence<
                        static_cast<size_t>(nLayers)>{});
                    in.qryVal = qv[lane];
                    in.refVal = rv[lane];
                    in.row = i;
                    in.col = j;
                    const auto out = K::peFunc(in, _params);
                    [&]<size_t... L>(std::index_sequence<L...>) {
                        ((row_cur[L][js] = out.score[L]), ...);
                    }(std::make_index_sequence<
                        static_cast<size_t>(nLayers)>{});
                    tb_cell[lane] = out.tbPtr;

                    // Per-lane optimum mask over the lane's own
                    // dimensions; select-style update keeps the lane
                    // loop branch-free.
                    const int ql = qlen[static_cast<size_t>(lane)];
                    const int rl = rlen[static_cast<size_t>(lane)];
                    bool elig;
                    if constexpr (K::alignKind ==
                                  core::AlignmentKind::Local) {
                        elig = (i <= ql) & (j <= rl);
                    } else if constexpr (K::alignKind ==
                                         core::AlignmentKind::Global) {
                        elig = (i == ql) & (j == rl);
                    } else if constexpr (
                        K::alignKind == core::AlignmentKind::SemiGlobal) {
                        elig = (i == ql) & (j <= rl);
                    } else { // Overlap
                        elig = ((i == ql) & (j <= rl)) |
                               ((j == rl) & (i <= ql));
                    }
                    const ScoreT v = out.score[0];
                    const size_t lu = static_cast<size_t>(lane);
                    const bool better = elig &
                        (!found[lu] |
                         core::isBetter(K::objective, v, best_score[lu]));
                    best_score[lu] = better ? v : best_score[lu];
                    best_i[lu] = better ? i : best_i[lu];
                    best_j[lu] = better ? j : best_j[lu];
                    found[lu] = found[lu] | static_cast<uint8_t>(better);
                }
            }
            if (jhi < maxr) {
                for (int l = 0; l < nLayers; l++) {
                    auto *cur = row_cur[static_cast<size_t>(l)].data() +
                                static_cast<size_t>(jhi + 1) * W;
                    for (int lane = 0; lane < W; lane++)
                        cur[lane] = worst;
                }
            }
            for (int l = 0; l < nLayers; l++) {
                std::swap(row_prev[static_cast<size_t>(l)],
                          row_cur[static_cast<size_t>(l)]);
            }
        }
    }

    /**
     * Reusable buffers amortized across alignLanes() calls (the batch
     * host calls once per lane group; reallocating multi-megabyte
     * traceback banks per group would dominate).
     */
    struct Workspace
    {
        std::vector<CharT> qch, rch;
        RawLaneBuf qplanes, rplanes, colInitRaw;
        std::array<RawLaneBuf, nLayers> rowRawPrev, rowRawCur;
        std::vector<core::TbPtr> tb;
        std::vector<int64_t> rowBase;
        std::array<std::vector<ScoreT>, nLayers> rowPrev, rowCur;
    };

    EngineConfig _cfg;
    Params _params;
    IsaTier _tier;
    std::vector<CycleStats> _laneStats;
    Workspace _ws;
    std::mutex _spareMutex; //!< guards the recycled-bank pool below
    std::vector<core::TbPtr> _spareTb;
    std::vector<int64_t> _spareRowBase;
};

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_LANE_ENGINE_HH
