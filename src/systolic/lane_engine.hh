/**
 * @file
 * Batch-level SIMD lanes: lockstep row-major DP over several pairs.
 *
 * CPU aligners (the BSW baseline in `baselines/bsw.*`) recover SIMD
 * throughput by running one alignment per vector lane — inter-sequence
 * parallelism. LaneAligner is the host-simulator analog: up to 16
 * same-kernel pairs advance through a struct-of-arrays row buffer in
 * lockstep, with the lane loop innermost and contiguous (stride-1 per
 * (layer, column) slot) so the compiler can auto-vectorize the score
 * recurrence (the loop carries a `#pragma omp simd` hint when the
 * compiler accepts `-fopenmp-simd`; no runtime dependency).
 *
 * Pairs of different lengths share one padded (max-q x max-r) iteration
 * space. Per-lane results stay bit-identical to the scalar fast path
 * because
 *
 *  - init row/column values depend only on (index, layer, params),
 *    never on the pair, so every lane sees its own exact boundary;
 *  - cells beyond a lane's own (qlen, rlen) compute garbage that no
 *    in-range cell of that lane ever reads (DP dependencies only point
 *    down-right);
 *  - optimum eligibility is masked per lane with the lane's own
 *    dimensions, preserving the first-optimum-in-(row,col)-order
 *    reduction semantics;
 *  - cycle statistics are analytic per lane (same trip-count formulas
 *    as the scalar paths, over the lane's own dimensions).
 *
 * Enforced by tests/test_lane_batching.cc.
 */

#ifndef DPHLS_SYSTOLIC_LANE_ENGINE_HH
#define DPHLS_SYSTOLIC_LANE_ENGINE_HH

#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/detail_simd.hh"
#include "systolic/engine_common.hh"

#if defined(_OPENMP) || defined(DPHLS_OPENMP_SIMD)
#define DPHLS_SIMD_LOOP _Pragma("omp simd")
#else
#define DPHLS_SIMD_LOOP
#endif

namespace dphls::sim {

#ifdef DPHLS_VEC
// Vector types carry alignment attributes that concept/template
// argument binding drops by design; the resulting -Wignored-attributes
// is noise here (the types are only probed, never stored).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
/**
 * Kernels exposing a vectorized lane cell (one call computes one cell
 * across all W lanes on int32 vector packs). The formulas mirror
 * peFunc bit-for-bit; kernels without the hook run the scalar per-lane
 * loop instead.
 */
template <typename K, typename V>
concept KernelHasLaneCell =
    requires(const V *v, V x, const typename K::Params &p, V *s, V &ptr) {
        K::template laneCell<V>(v, v, v, x, x, p, s, ptr);
    };
#endif

/** Lane-widened integer code of a character (for vector lane cells). */
template <typename C>
constexpr bool laneCharWidens =
    requires(const C &c) { c.code; } || requires(const C &c) { c.value; };

template <typename C>
inline int32_t
laneCharCode(const C &c)
{
    if constexpr (requires { c.code; })
        return static_cast<int32_t>(c.code);
    else
        return static_cast<int32_t>(c.value);
}

/**
 * Lockstep multi-pair aligner for kernel @p K. One group of at most
 * `maxLanes` pairs per alignLanes() call; the host (BatchPipeline)
 * forms the groups.
 */
template <core::KernelSpec K>
class LaneAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Params = typename K::Params;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;
    static constexpr int maxLanes = 16;

    /** One lane: non-owning views of a query/reference pair. */
    struct LanePair
    {
        const seq::Sequence<CharT> *query = nullptr;
        const seq::Sequence<CharT> *reference = nullptr;
    };

    explicit LaneAligner(EngineConfig cfg = {},
                         Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {
        if (_cfg.numPe < 1)
            throw std::invalid_argument("numPe must be >= 1");
    }

    const EngineConfig &config() const { return _cfg; }

    /** Per-lane cycle statistics of the most recent alignLanes() call. */
    const std::vector<CycleStats> &laneStats() const { return _laneStats; }

    /** Total cycles of lane @p lane per the cycle model. */
    uint64_t
    laneTotalCycles(int lane) const
    {
        return totalCycles(_laneStats[static_cast<size_t>(lane)],
                           _cfg.cycles);
    }

    /**
     * Lockstep width matching the host's native vector registers: wider
     * packs get split by the compiler into slower multi-op sequences,
     * so larger groups run as several native-width sweeps instead.
     */
    static constexpr int nativeLanes =
#if defined(__AVX512F__)
        16;
#elif defined(__AVX2__)
        8;
#else
        4;
#endif

    /** Align a group of pairs in lockstep; returns one result per lane. */
    std::vector<Result>
    alignLanes(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        if (n == 0)
            return {};
        if (n > maxLanes)
            throw std::invalid_argument("lane group exceeds maxLanes");
        for (const auto &lp : lanes) {
            if (lp.query->length() > _cfg.maxQueryLength)
                throw std::invalid_argument(
                    "query exceeds MAX_QUERY_LENGTH");
            if (lp.reference->length() > _cfg.maxReferenceLength)
                throw std::invalid_argument(
                    "reference exceeds MAX_REFERENCE_LENGTH");
        }

        // Split into native-width sub-groups (also shrinks the padded
        // iteration space when lengths vary across the group).
        std::vector<Result> results;
        std::vector<CycleStats> stats;
        results.reserve(lanes.size());
        stats.reserve(lanes.size());
        for (size_t g = 0; g < lanes.size();
             g += static_cast<size_t>(nativeLanes)) {
            const size_t count = std::min(
                static_cast<size_t>(nativeLanes), lanes.size() - g);
            const std::vector<LanePair> sub(
                lanes.begin() + static_cast<ptrdiff_t>(g),
                lanes.begin() + static_cast<ptrdiff_t>(g + count));
            auto sub_results = dispatch(sub);
            results.insert(results.end(),
                           std::make_move_iterator(sub_results.begin()),
                           std::make_move_iterator(sub_results.end()));
            stats.insert(stats.end(), _laneStats.begin(),
                         _laneStats.end());
        }
        _laneStats = std::move(stats);
        return results;
    }

  private:
    std::vector<Result>
    dispatch(const std::vector<LanePair> &lanes)
    {
        // Only native-width (or narrower) sweeps are instantiated:
        // wider vector packs than the ISA provides would be split into
        // slow multi-op sequences by the compiler.
        [[maybe_unused]] const int n = static_cast<int>(lanes.size());
        if constexpr (nativeLanes >= 16) {
            if (n > 8)
                return run<16>(lanes);
        }
        if constexpr (nativeLanes >= 8) {
            if (n > 4)
                return run<8>(lanes);
        }
        return run<4>(lanes);
    }
    template <int W>
    std::vector<Result>
    run(const std::vector<LanePair> &lanes)
    {
        const int n = static_cast<int>(lanes.size());
        const int band = _cfg.bandWidth;
        const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
        const bool keep_tb = K::hasTraceback && !_cfg.skipTraceback;

        // Unused lanes run as empty pairs: never eligible, cost nothing
        // beyond the lockstep arithmetic.
        std::array<int, W> qlen{}, rlen{};
        int maxq = 0, maxr = 0;
        for (int lane = 0; lane < n; lane++) {
            qlen[static_cast<size_t>(lane)] = lanes
                [static_cast<size_t>(lane)].query->length();
            rlen[static_cast<size_t>(lane)] = lanes
                [static_cast<size_t>(lane)].reference->length();
            maxq = std::max(maxq, qlen[static_cast<size_t>(lane)]);
            maxr = std::max(maxr, rlen[static_cast<size_t>(lane)]);
        }

        // Struct-of-arrays padded character buffers: [pos][lane].
        std::vector<CharT> &qch = _ws.qch;
        std::vector<CharT> &rch = _ws.rch;
        qch.assign(static_cast<size_t>(maxq) * W, CharT{});
        rch.assign(static_cast<size_t>(maxr) * W, CharT{});
        for (int lane = 0; lane < n; lane++) {
            const auto &q = *lanes[static_cast<size_t>(lane)].query;
            const auto &r = *lanes[static_cast<size_t>(lane)].reference;
            for (int i = 0; i < q.length(); i++)
                qch[static_cast<size_t>(i) * W +
                    static_cast<size_t>(lane)] = q[i];
            for (int j = 0; j < r.length(); j++)
                rch[static_cast<size_t>(j) * W +
                    static_cast<size_t>(lane)] = r[j];
        }

#ifdef DPHLS_VEC
        using V = typename kernels::detail::simd::VecPack<W>::I32;
        using U8V = typename kernels::detail::simd::VecPack<W>::U8;
        constexpr bool kVec = KernelHasLaneCell<K, V> &&
            laneCharWidens<CharT> && std::is_same_v<ScoreT, int32_t>;
        // Lane-widened int32 character codes for the vector path.
        std::vector<int32_t> &qch32 = _ws.qch32;
        std::vector<int32_t> &rch32 = _ws.rch32;
        if constexpr (kVec) {
            qch32.resize(static_cast<size_t>(maxq) * W);
            rch32.resize(static_cast<size_t>(maxr) * W);
            for (size_t k = 0; k < qch.size(); k++)
                qch32[k] = laneCharCode(qch[k]);
            for (size_t k = 0; k < rch.size(); k++)
                rch32[k] = laneCharCode(rch[k]);
        }
#endif

        const auto j_lo = [&](int i) { return bandJLo<K>(i, band); };
        const auto j_hi = [&](int i) { return bandJHi<K>(i, maxr, band); };

        // Shared band-compressed traceback bank, [cell][lane]. When
        // traceback is off, every cell's store lands in one scratch
        // slot instead — the lane loop stays branch-free either way
        // (a conditional store would block vectorization).
        std::vector<core::TbPtr> &tb = _ws.tb;
        tb.clear();
        std::array<core::TbPtr, W> tb_scratch{};
        std::vector<int64_t> &row_base = _ws.rowBase;
        if (keep_tb) {
            const int64_t cells =
                buildTbRowBase<K>(maxq, maxr, band, row_base);
            tb.resize(static_cast<size_t>(cells) * W);
        } else {
            row_base.assign(static_cast<size_t>(maxq + 1), 0);
        }

        // SoA row buffers: [layer][column][lane].
        std::array<std::vector<ScoreT>, nLayers> &row_prev = _ws.rowPrev;
        std::array<std::vector<ScoreT>, nLayers> &row_cur = _ws.rowCur;
        for (int l = 0; l < nLayers; l++) {
            auto &prev = row_prev[static_cast<size_t>(l)];
            auto &cur = row_cur[static_cast<size_t>(l)];
            prev.assign(static_cast<size_t>(maxr + 1) * W, worst);
            cur.assign(static_cast<size_t>(maxr + 1) * W, worst);
            const ScoreT origin = K::originScore(l, _params);
            for (int lane = 0; lane < W; lane++)
                prev[static_cast<size_t>(lane)] = origin;
            for (int j = 1; j <= maxr; j++) {
                const ScoreT v = K::initRowScore(j, l, _params);
                for (int lane = 0; lane < W; lane++)
                    prev[static_cast<size_t>(j) * W +
                         static_cast<size_t>(lane)] = v;
            }
        }

        std::array<uint8_t, W> found{};
        std::array<ScoreT, W> best_score{};
        std::array<int, W> best_i{}, best_j{};

#ifdef DPHLS_VEC
        [[maybe_unused]] V vbs{}, vbi{}, vbj{}, vfound{}, vql{}, vrl{};
        if constexpr (kVec) {
            std::memcpy(&vql, qlen.data(), sizeof(V));
            std::memcpy(&vrl, rlen.data(), sizeof(V));
        }
#endif

        for (int i = 1; i <= maxq; i++) {
            const int jlo = j_lo(i);
            const int jhi = j_hi(i);
            if (jlo > jhi)
                continue; // band fully outside this row

            for (int l = 0; l < nLayers; l++) {
                const ScoreT bval = jlo == 1
                    ? K::initColScore(i, l, _params) : worst;
                auto *cur = row_cur[static_cast<size_t>(l)].data() +
                            static_cast<size_t>(jlo - 1) * W;
                for (int lane = 0; lane < W; lane++)
                    cur[lane] = bval;
            }

            const CharT *qv = qch.data() + static_cast<size_t>(i - 1) * W;
            core::TbPtr *tb_row = keep_tb
                ? tb.data() + static_cast<size_t>(
                      row_base[static_cast<size_t>(i)]) * W
                : tb_scratch.data();
            const size_t tb_stride = keep_tb ? W : 0;

#ifdef DPHLS_VEC
            if constexpr (kVec) {
                // Vector row sweep: one laneCell call computes the cell
                // for all W lanes; diag/left packs carry in registers.
                V dg[nLayers], lf[nLayers], up[nLayers], sc[nLayers];
                for (int l = 0; l < nLayers; l++) {
                    std::memcpy(&dg[l],
                                &row_prev[static_cast<size_t>(l)]
                                         [static_cast<size_t>(jlo - 1) * W],
                                sizeof(V));
                    std::memcpy(&lf[l],
                                &row_cur[static_cast<size_t>(l)]
                                        [static_cast<size_t>(jlo - 1) * W],
                                sizeof(V));
                }
                V vqry;
                std::memcpy(&vqry, &qch32[static_cast<size_t>(i - 1) * W],
                            sizeof(V));
                const V vi = kernels::detail::simd::splat<V>(i);
                for (int j = jlo; j <= jhi; j++) {
                    for (int l = 0; l < nLayers; l++) {
                        std::memcpy(
                            &up[l],
                            &row_prev[static_cast<size_t>(l)]
                                     [static_cast<size_t>(j) * W],
                            sizeof(V));
                    }
                    V vref, vptr{};
                    std::memcpy(&vref,
                                &rch32[static_cast<size_t>(j - 1) * W],
                                sizeof(V));
                    K::template laneCell<V>(up, lf, dg, vqry, vref,
                                            _params, sc, vptr);
                    for (int l = 0; l < nLayers; l++) {
                        std::memcpy(&row_cur[static_cast<size_t>(l)]
                                            [static_cast<size_t>(j) * W],
                                    &sc[l], sizeof(V));
                        dg[l] = up[l];
                        lf[l] = sc[l];
                    }
                    const U8V nb = __builtin_convertvector(vptr, U8V);
                    std::memcpy(static_cast<void *>(
                                    tb_row + static_cast<size_t>(j - jlo) *
                                                 tb_stride),
                                &nb, sizeof(nb));

                    // Per-lane optimum masks, identical to the scalar
                    // lane loop's select chain.
                    const V vj = kernels::detail::simd::splat<V>(j);
                    V elig;
                    if constexpr (K::alignKind ==
                                  core::AlignmentKind::Local) {
                        elig = (vi <= vql) & (vj <= vrl);
                    } else if constexpr (K::alignKind ==
                                         core::AlignmentKind::Global) {
                        elig = (vi == vql) & (vj == vrl);
                    } else if constexpr (
                        K::alignKind == core::AlignmentKind::SemiGlobal) {
                        elig = (vi == vql) & (vj <= vrl);
                    } else { // Overlap
                        elig = ((vi == vql) & (vj <= vrl)) |
                               ((vj == vrl) & (vi <= vql));
                    }
                    const V v = sc[0];
                    const V is_better =
                        K::objective == core::Objective::Maximize
                            ? (v > vbs) : (v < vbs);
                    const V better = elig & (~vfound | is_better);
                    vbs = kernels::detail::simd::sel(better, v, vbs);
                    vbi = kernels::detail::simd::sel(better, vi, vbi);
                    vbj = kernels::detail::simd::sel(better, vj, vbj);
                    vfound |= better;
                }
                if (jhi < maxr) {
                    for (int l = 0; l < nLayers; l++) {
                        auto *cur =
                            row_cur[static_cast<size_t>(l)].data() +
                            static_cast<size_t>(jhi + 1) * W;
                        for (int lane = 0; lane < W; lane++)
                            cur[lane] = worst;
                    }
                }
                for (int l = 0; l < nLayers; l++) {
                    std::swap(row_prev[static_cast<size_t>(l)],
                              row_cur[static_cast<size_t>(l)]);
                }
                continue;
            }
#endif

            for (int j = jlo; j <= jhi; j++) {
                const CharT *rv =
                    rch.data() + static_cast<size_t>(j - 1) * W;
                core::TbPtr *tb_cell =
                    tb_row + static_cast<size_t>(j - jlo) * tb_stride;
                // The lane body is branch-free by construction (plain
                // selects, non-short-circuit masks, unconditional
                // stores) so the compiler can if-convert and vectorize
                // the whole recurrence across lanes.
                DPHLS_SIMD_LOOP
                for (int lane = 0; lane < W; lane++) {
                    // Layer loops are unrolled via fold expressions:
                    // a runtime inner loop would read as control flow
                    // and defeat the vectorizer.
                    core::PeIn<ScoreT, CharT, nLayers> in;
                    const size_t js = static_cast<size_t>(j) * W +
                                      static_cast<size_t>(lane);
                    [&]<size_t... L>(std::index_sequence<L...>) {
                        ((in.up[L] = row_prev[L][js]), ...);
                        ((in.diag[L] = row_prev[L][js - W]), ...);
                        ((in.left[L] = row_cur[L][js - W]), ...);
                    }(std::make_index_sequence<
                        static_cast<size_t>(nLayers)>{});
                    in.qryVal = qv[lane];
                    in.refVal = rv[lane];
                    in.row = i;
                    in.col = j;
                    const auto out = K::peFunc(in, _params);
                    [&]<size_t... L>(std::index_sequence<L...>) {
                        ((row_cur[L][js] = out.score[L]), ...);
                    }(std::make_index_sequence<
                        static_cast<size_t>(nLayers)>{});
                    tb_cell[lane] = out.tbPtr;

                    // Per-lane optimum mask over the lane's own
                    // dimensions; select-style update keeps the lane
                    // loop branch-free.
                    const int ql = qlen[static_cast<size_t>(lane)];
                    const int rl = rlen[static_cast<size_t>(lane)];
                    bool elig;
                    if constexpr (K::alignKind ==
                                  core::AlignmentKind::Local) {
                        elig = (i <= ql) & (j <= rl);
                    } else if constexpr (K::alignKind ==
                                         core::AlignmentKind::Global) {
                        elig = (i == ql) & (j == rl);
                    } else if constexpr (
                        K::alignKind == core::AlignmentKind::SemiGlobal) {
                        elig = (i == ql) & (j <= rl);
                    } else { // Overlap
                        elig = ((i == ql) & (j <= rl)) |
                               ((j == rl) & (i <= ql));
                    }
                    const ScoreT v = out.score[0];
                    const size_t lu = static_cast<size_t>(lane);
                    const bool better = elig &
                        (!found[lu] |
                         core::isBetter(K::objective, v, best_score[lu]));
                    best_score[lu] = better ? v : best_score[lu];
                    best_i[lu] = better ? i : best_i[lu];
                    best_j[lu] = better ? j : best_j[lu];
                    found[lu] = found[lu] | static_cast<uint8_t>(better);
                }
            }
            if (jhi < maxr) {
                for (int l = 0; l < nLayers; l++) {
                    auto *cur = row_cur[static_cast<size_t>(l)].data() +
                                static_cast<size_t>(jhi + 1) * W;
                    for (int lane = 0; lane < W; lane++)
                        cur[lane] = worst;
                }
            }
            for (int l = 0; l < nLayers; l++) {
                std::swap(row_prev[static_cast<size_t>(l)],
                          row_cur[static_cast<size_t>(l)]);
            }
        }

#ifdef DPHLS_VEC
        if constexpr (kVec) {
            for (int lane = 0; lane < W; lane++) {
                const size_t lu = static_cast<size_t>(lane);
                found[lu] = vfound[lane] != 0;
                best_score[lu] = vbs[lane];
                best_i[lu] = vbi[lane];
                best_j[lu] = vbj[lane];
            }
        }
#endif

        // Per-lane epilogue: analytic cycle accounting over the lane's
        // own dimensions plus the shared traceback walk machinery.
        std::vector<Result> results;
        results.reserve(static_cast<size_t>(n));
        _laneStats.assign(static_cast<size_t>(n), CycleStats{});
        for (int lane = 0; lane < n; lane++) {
            const size_t lu = static_cast<size_t>(lane);
            CycleStats &stats = _laneStats[lu];
            const int ql = qlen[lu];
            const int rl = rlen[lu];
            accountLoadInit<K>(_cfg, ql, rl, stats);
            accountFill<K>(_cfg, ql, rl, stats);
            const auto fetch = [&](int fi, int fj) {
                const int flo = j_lo(fi);
                if (fj < flo || fj > j_hi(fi))
                    return core::TbPtr{};
                return tb[static_cast<size_t>(
                              row_base[static_cast<size_t>(fi)] +
                              (fj - flo)) * W + lu];
            };
            results.push_back(finishResult<K>(
                _cfg, _params, ql, rl, found[lu] != 0, best_score[lu],
                core::Coord{best_i[lu], best_j[lu]}, keep_tb, fetch,
                stats));
        }
        return results;
    }

    /**
     * Reusable buffers amortized across alignLanes() calls (the batch
     * host calls once per lane group; reallocating multi-megabyte
     * traceback banks per group would dominate).
     */
    struct Workspace
    {
        std::vector<CharT> qch, rch;
        std::vector<int32_t> qch32, rch32;
        std::vector<core::TbPtr> tb;
        std::vector<int64_t> rowBase;
        std::array<std::vector<ScoreT>, nLayers> rowPrev, rowCur;
    };

    EngineConfig _cfg;
    Params _params;
    std::vector<CycleStats> _laneStats;
    Workspace _ws;
};

#ifdef DPHLS_VEC
#pragma GCC diagnostic pop
#endif

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_LANE_ENGINE_HH
