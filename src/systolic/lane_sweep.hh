/**
 * @file
 * Tier-compiled SIMD sweeps: the contract between the baseline-compiled
 * engines and the per-ISA-tier sweep translation units.
 *
 * The hot vector loops of the lane engine (inter-pair lockstep rows)
 * and the diagonal path (intra-pair anti-diagonal) live in
 * `lane_sweep_impl.hh`, which is compiled three times with different
 * `-m` flags (lane_sweep_{sse2,avx2,avx512}.cc). Each TU registers its
 * instantiations in a type-erased registry keyed by (kernel, width,
 * tier); the engines look up a function pointer for the resolved
 * runtime tier (`isa_tier.hh`) and fall back to their scalar loops on a
 * miss — which keeps custom out-of-registry kernels working and makes
 * `IsaTier::Scalar` a pure forced-fallback switch.
 *
 * Everything crossing the TU boundary is plain data: raw int32 score
 * lanes (`LaneScoreTraits` maps ScoreT <-> raw, exact for int32_t and
 * for ApFixed<32,I>, whose add/sub/compare are int32 wrap-around ops on
 * the normalized raw value), widened int32 character planes
 * (`LaneCharTraits`; multi-plane for complex samples and profile
 * columns), and precomputed boundary tables — so a sweep never calls
 * back into baseline-compiled code.
 */

#ifndef DPHLS_SYSTOLIC_LANE_SWEEP_HH
#define DPHLS_SYSTOLIC_LANE_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <typeinfo>
#include <vector>

#include "core/types.hh"
#include "hls/ap_fixed.hh"
#include "kernels/detail_simd.hh"
#include "seq/alphabet.hh"
#include "systolic/isa_tier.hh"

namespace dphls::sim {

#ifdef DPHLS_VEC
// Vector types carry alignment attributes that concept/template
// argument binding drops by design; the resulting -Wignored-attributes
// is noise here (the types are only probed, never stored).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
/**
 * Kernels exposing a vectorized lane cell (one call computes one cell
 * across all W lanes on int32 vector packs). The formulas mirror
 * peFunc bit-for-bit; kernels without the hook run the scalar per-lane
 * loop instead.
 */
template <typename K, typename V>
concept KernelHasLaneCell =
    requires(const V *v, V x, const typename K::Params &p, V *s, V &ptr) {
        K::template laneCell<V>(v, v, v, x, x, p, s, ptr);
    };

/**
 * Multi-plane variant: characters too wide for one int32 lane (complex
 * samples, profile columns) arrive as `LaneCharTraits<CharT>::planes`
 * parallel int32 planes.
 */
template <typename K, typename V>
concept KernelHasLaneCellPlanes =
    requires(const V *v, const typename K::Params &p, V *s, V &ptr) {
        K::template laneCellPlanes<V>(v, v, v, v, v, p, s, ptr);
    };
#pragma GCC diagnostic pop
#endif

/** Lane-widened integer code of a character (for vector lane cells). */
template <typename C>
constexpr bool laneCharWidens =
    requires(const C &c) { c.code; } || requires(const C &c) { c.value; };

template <typename C>
inline int32_t
laneCharCode(const C &c)
{
    if constexpr (requires { c.code; })
        return static_cast<int32_t>(c.code);
    else
        return static_cast<int32_t>(c.value);
}

/**
 * How a character type widens into int32 SIMD planes. Single-code
 * characters (DNA, amino, integer samples) take the generic one-plane
 * form; wider alphabets specialize.
 */
template <typename C>
struct LaneCharTraits
{
    static constexpr bool enabled = laneCharWidens<C>;
    static constexpr int planes = 1;
    static int32_t
    plane(const C &c, int)
    {
        return laneCharCode(c);
    }
};

template <>
struct LaneCharTraits<seq::ComplexSample>
{
    static constexpr bool enabled = true;
    static constexpr int planes = 2;
    static int32_t
    plane(const seq::ComplexSample &c, int k)
    {
        return static_cast<int32_t>(k == 0 ? c.real.raw() : c.imag.raw());
    }
};

template <>
struct LaneCharTraits<seq::ProfileColumn>
{
    static constexpr bool enabled = true;
    static constexpr int planes = 5;
    static int32_t
    plane(const seq::ProfileColumn &c, int k)
    {
        return static_cast<int32_t>(c.freq[static_cast<size_t>(k)]);
    }
};

/**
 * How a score type maps onto raw int32 SIMD lanes. int32_t is the
 * identity; 32-bit ApFixed round-trips through its normalized raw
 * value (the sweeps only add/subtract/compare, which are exactly int32
 * wrap-around ops on that raw — multiplication, where the fixed-point
 * scale matters, happens in per-lane 64-bit gathers inside the lane
 * cells). Other widths stay scalar-only.
 */
template <typename S>
struct LaneScoreTraits
{
    static constexpr bool enabled = false;
};

template <>
struct LaneScoreTraits<int32_t>
{
    static constexpr bool enabled = true;
    static int32_t
    toRaw(int32_t v)
    {
        return v;
    }
    static int32_t
    fromRaw(int32_t r)
    {
        return r;
    }
};

template <int I>
struct LaneScoreTraits<hls::ApFixed<32, I>>
{
    static constexpr bool enabled = true;
    static int32_t
    toRaw(hls::ApFixed<32, I> v)
    {
        return static_cast<int32_t>(v.raw());
    }
    static hls::ApFixed<32, I>
    fromRaw(int32_t r)
    {
        return hls::ApFixed<32, I>::fromRaw(r);
    }
};

#ifdef DPHLS_VEC
/** True when kernel @p K can run the tier-compiled vector sweeps. */
template <typename K>
constexpr bool laneSweepEnabled =
    (KernelHasLaneCell<K, typename kernels::detail::simd::VecPack<4>::I32> ||
     KernelHasLaneCellPlanes<
         K, typename kernels::detail::simd::VecPack<4>::I32>) &&
    LaneCharTraits<typename K::CharT>::enabled &&
    LaneScoreTraits<typename K::ScoreT>::enabled;
#else
template <typename K>
constexpr bool laneSweepEnabled = false;
#endif

/**
 * Minimal 64-byte-aligning allocator for the SoA lane buffers: slots
 * are laid out at stride W int32s, so a 64-byte base (the AVX-512
 * vector, detail::simd::kLaneRowAlign) makes every slot naturally
 * aligned for every tier's vector width.
 */
template <typename T, size_t A>
struct AlignedAlloc
{
    using value_type = T;
    // allocator_traits can't derive the default rebind for class
    // templates with non-type parameters.
    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, A>;
    };

    AlignedAlloc() = default;
    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, A> &)
    {}

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(A)));
    }
    void
    deallocate(T *p, size_t)
    {
        ::operator delete(p, std::align_val_t(A));
    }

    template <typename U>
    bool
    operator==(const AlignedAlloc<U, A> &) const
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAlloc<U, A> &) const
    {
        return false;
    }
};

/** Raw int32 lane buffer at sweep alignment. */
using RawLaneBuf = std::vector<int32_t, AlignedAlloc<int32_t, 64>>;

inline constexpr int kMaxSweepLanes = 16;

/**
 * Inter-pair row sweep inputs/outputs, all plain data. Lane-indexed
 * arrays have stride W (the registered width); SoA buffers follow the
 * lane engine's [pos/column][plane][lane] layout and are 64-byte
 * aligned. `colInit` is precomputed per (row, layer) because some
 * kernels' init-column values depend on the row index (Viterbi).
 */
template <typename K>
struct LaneSweepArgs
{
    int maxq = 0;            //!< padded query length of the group
    int maxr = 0;            //!< padded reference length of the group
    int band = 0;            //!< band half-width (banded kernels)
    int32_t worstRaw = 0;    //!< sentinel-worst score, raw form
    bool keepTb = false;     //!< store traceback pointers
    const int32_t *qch32 = nullptr; //!< [maxq][planes][W] query planes
    const int32_t *rch32 = nullptr; //!< [maxr][planes][W] reference planes
    const int32_t *colInit = nullptr; //!< [(maxq+1)][nLayers] raw
    int32_t *const *rowPrev = nullptr; //!< nLayers row buffers (scratch)
    int32_t *const *rowCur = nullptr;
    core::TbPtr *tb = nullptr;        //!< bank base ([cell][W])
    core::TbPtr *tbScratch = nullptr; //!< one [W] slot when !keepTb
    const int64_t *rowBase = nullptr; //!< per-row bank offsets
    const int32_t *qlen = nullptr;    //!< [W] per-lane query lengths
    const int32_t *rlen = nullptr;    //!< [W] per-lane reference lengths
    const typename K::Params *params = nullptr;
    // Outputs, [W] each: running-optimum reduction state per lane.
    int32_t *found = nullptr;
    int32_t *bestRaw = nullptr;
    int32_t *bestI = nullptr;
    int32_t *bestJ = nullptr;
};

/**
 * Intra-pair anti-diagonal sweep inputs/outputs (one long alignment,
 * lanes run along the anti-diagonal). Character planes are plane-major
 * with the reference stored reversed so both operands of a diagonal
 * load contiguously; both carry >= kMaxSweepLanes zeroed slack entries
 * so overhanging tail-lane loads stay in bounds (zero is a valid
 * character code for the gather-style cells). The three rotating
 * diagonal buffers are (qlen + 2 + kMaxSweepLanes) slots per layer.
 */
template <typename K>
struct DiagSweepArgs
{
    int qlen = 0;
    int rlen = 0;
    int band = 0;
    int32_t worstRaw = 0;
    bool keepTb = false;
    const int32_t *q32 = nullptr;    //!< [planes][qlen + slack]
    const int32_t *rrev32 = nullptr; //!< [planes][rlen + slack], reversed
    size_t qStride = 0;              //!< plane stride of q32
    size_t rStride = 0;              //!< plane stride of rrev32
    const int32_t *rowInit = nullptr; //!< [(rlen+1)][nLayers] raw
    const int32_t *colInit = nullptr; //!< [(qlen+1)][nLayers] raw; [0]=origin
    int32_t *const *d2 = nullptr;     //!< diagonal d-2, nLayers buffers
    int32_t *const *d1 = nullptr;     //!< diagonal d-1
    int32_t *const *cur = nullptr;    //!< diagonal d (scratch)
    core::TbPtr *tb = nullptr;        //!< band-compressed bank, [cell]
    const int64_t *rowBase = nullptr;
    const typename K::Params *params = nullptr;
    // Outputs (single pair).
    int32_t *found = nullptr;
    int32_t *bestRaw = nullptr;
    int32_t *bestI = nullptr;
    int32_t *bestJ = nullptr;
};

/** Registry keys: typeid(LaneSweepTag<K, W>) / typeid(DiagSweepTag<K, W>). */
template <typename K, int W>
struct LaneSweepTag
{};
template <typename K, int W>
struct DiagSweepTag
{};

template <typename K>
using LaneSweepFn = void (*)(const LaneSweepArgs<K> &);
template <typename K>
using DiagSweepFn = void (*)(const DiagSweepArgs<K> &);

/** Type-erased sweep entry point (cast back via Lane/DiagSweepFn). */
using SweepFnErased = void (*)();

/** Called by the tier TUs' static registrars (thread-safe after main). */
void registerSweep(const std::type_info &tag, IsaTier tier,
                   SweepFnErased fn);

/** nullptr when (tag, tier) has no registered sweep -> scalar fallback. */
SweepFnErased lookupSweep(const std::type_info &tag, IsaTier tier);

/** Typed lookup helpers. */
template <typename K, int W>
LaneSweepFn<K>
lookupLaneSweep(IsaTier tier)
{
    return reinterpret_cast<LaneSweepFn<K>>(
        lookupSweep(typeid(LaneSweepTag<K, W>), tier));
}

template <typename K, int W>
DiagSweepFn<K>
lookupDiagSweep(IsaTier tier)
{
    return reinterpret_cast<DiagSweepFn<K>>(
        lookupSweep(typeid(DiagSweepTag<K, W>), tier));
}

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_LANE_SWEEP_HH
