/**
 * @file
 * Shared vocabulary of the systolic back-end's execution paths.
 *
 * The engine decouples *functional* DP computation from *schedule*
 * (cycle) accounting: cycle statistics are analytic functions of the
 * wavefront trip counts, so any execution order that reproduces the
 * per-cell data flow produces bit-identical results AND bit-identical
 * cycle numbers. This header holds everything the paths share:
 *
 *  - EngineConfig and the execution-path selector;
 *  - the chunk/wavefront loop-bound formulas (Section 4, step 1.6) used
 *    both to schedule the reference path and to account cycles for the
 *    fast path;
 *  - the analytic per-phase cycle accounting;
 *  - optimum-eligibility per traceback strategy and the shared result
 *    epilogue (reduction semantics, traceback walk, empty/band-excluded
 *    fallbacks).
 *
 * Concrete paths: `wavefront_path.hh` (the cycle-faithful reference
 * schedule, required for ScheduleTrace) and `fast_path.hh` (row-major
 * functional path). `engine.hh` is the facade selecting between them.
 */

#ifndef DPHLS_SYSTOLIC_ENGINE_COMMON_HH
#define DPHLS_SYSTOLIC_ENGINE_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/alignment.hh"
#include "core/kernel_concept.hh"
#include "core/traceback_walk.hh"
#include "core/types.hh"
#include "seq/alphabet.hh"
#include "systolic/cycle_model.hh"
#include "systolic/isa_tier.hh"
#include "systolic/trace.hh"

namespace dphls::sim {

/** Bits per streamed character, used by the sequence-load cycle model. */
template <typename C>
struct CharBits
{
    static constexpr int value = C::bits;
};
template <>
struct CharBits<seq::ProfileColumn>
{
    static constexpr int value = 80; // 5 x 16-bit frequencies
};
template <>
struct CharBits<seq::ComplexSample>
{
    static constexpr int value = 64; // two 32-bit fixed-point samples
};
template <>
struct CharBits<seq::SignalSample>
{
    static constexpr int value = 16;
};

/**
 * Which execution path align() runs.
 *
 * Both paths produce bit-identical results and cycle statistics; they
 * differ only in host-side speed and in what they can observe:
 *
 *  - Wavefront: the cycle-faithful reference schedule. Required when a
 *    ScheduleTrace is attached (it is the only path that actually visits
 *    cells in wavefront order).
 *  - Fast: cache-blocked row-major functional path; several times faster
 *    on the host, no schedule observability.
 *  - DiagSimd: intra-pair anti-diagonal SIMD path (diag_path.hh) — the
 *    cells of ONE alignment's wavefront fill the vector lanes, for
 *    single long pairs where the inter-pair lane engine can't fill its
 *    lanes. Falls back to Fast for kernels without a lane cell or when
 *    the resolved ISA tier is Scalar; no schedule observability.
 *  - Auto: Fast unless a trace sink is attached.
 */
enum class EnginePath : uint8_t
{
    Auto,
    Wavefront,
    Fast,
    DiagSimd,
};

/** Configuration of one systolic block (paper front-end steps 1 and 5). */
struct EngineConfig
{
    int numPe = 32;             //!< NPE: processing elements per block
    int bandWidth = 64;         //!< fixed band half-width (banded kernels)
    int maxQueryLength = 1024;  //!< MAX_QUERY_LENGTH
    int maxReferenceLength = 1024; //!< MAX_REFERENCE_LENGTH
    bool skipTraceback = false; //!< disable traceback (GPU-baseline mode)
    CycleModelOptions cycles{}; //!< phase-overlap model
    EnginePath path = EnginePath::Auto; //!< execution-path selection
    /**
     * Host SIMD tier for the lane/diagonal sweeps (isa_tier.hh).
     * Dispatch-time only — every tier is bit-identical in results and
     * cycle stats, so this field is deliberately absent from
     * host::engineConfigSalt.
     */
    IsaTier isaTier = IsaTier::Auto;
    /** Optional structural schedule sink (testing/inspection only). */
    ScheduleTrace *trace = nullptr;
};

/** 64-bit-bus transfer cycles for a sequence of alphabet @p CharT. */
template <typename CharT>
inline uint64_t
busCycles(int len)
{
    const int bits = CharBits<CharT>::value;
    return static_cast<uint64_t>((static_cast<int64_t>(len) * bits + 63) /
                                 64);
}

inline int
log2Ceil(int v)
{
    int l = 0;
    while ((1 << l) < v)
        l++;
    return l;
}

/** Number of NPE-row query chunks for a query of @p qlen rows. */
inline int
numChunks(int qlen, int npe)
{
    return qlen > 0 ? (qlen + npe - 1) / npe : 0;
}

/**
 * Wavefront loop bounds of chunk @p c; banding narrows them (Section 4,
 * step 1.6). A chunk whose band window is empty (wLo > wHi) is skipped
 * entirely by the hardware and contributes no fill cycles.
 */
struct ChunkBounds
{
    int row0 = 1;  //!< first query row of the chunk (1-based)
    int rows = 0;  //!< active rows (== PEs) in the chunk
    int wLo = 0;   //!< first wavefront index
    int wHi = -1;  //!< last wavefront index

    bool active() const { return wLo <= wHi; }
    int trips() const { return active() ? wHi - wLo + 1 : 0; }
};

template <core::KernelSpec K>
inline ChunkBounds
chunkBounds(int c, int npe, int band, int qlen, int rlen)
{
    ChunkBounds b;
    b.row0 = c * npe + 1;
    b.rows = std::min(npe, qlen - c * npe);
    b.wLo = 0;
    b.wHi = rlen + b.rows - 2;
    if (K::banded) {
        b.wLo = std::max(b.wLo, b.row0 - band - 1);
        b.wHi = std::min(b.wHi, b.row0 + 2 * (b.rows - 1) + band - 1);
    }
    return b;
}

/** Sequence-load / init / host-stream phases (identical on all paths). */
template <core::KernelSpec K>
inline void
accountLoadInit(const EngineConfig &cfg, int qlen, int rlen,
                CycleStats &stats)
{
    using CharT = typename K::CharT;
    stats.seqLoad = busCycles<CharT>(qlen) + busCycles<CharT>(rlen);
    stats.init = static_cast<uint64_t>(std::max(qlen, rlen));
    stats.extra =
        static_cast<uint64_t>(cfg.cycles.hostStreamCyclesPerChar) *
        static_cast<uint64_t>(qlen + rlen);
}

/**
 * Matrix-fill phase accounting, derived purely from the wavefront
 * trip-count formulas. Returns the total trips over all active chunks,
 * which is also the per-PE traceback-bank depth (address coalescing maps
 * one bank slot per wavefront trip).
 */
template <core::KernelSpec K>
inline uint64_t
accountFill(const EngineConfig &cfg, int qlen, int rlen, CycleStats &stats)
{
    uint64_t total_trips = 0;
    const int n_chunks = numChunks(qlen, cfg.numPe);
    for (int c = 0; c < n_chunks; c++) {
        const auto b =
            chunkBounds<K>(c, cfg.numPe, cfg.bandWidth, qlen, rlen);
        if (!b.active())
            continue;
        const uint64_t trips = static_cast<uint64_t>(b.trips());
        total_trips += trips;
        stats.fillTrips += trips;
        stats.fill += trips * static_cast<uint64_t>(K::ii) +
                      static_cast<uint64_t>(cfg.cycles.pipelineDepth);
        stats.chunks++;
    }
    return total_trips;
}

/**
 * In-band column range of row @p i when the band is applied as loop
 * bounds (row-major paths). Must agree with the wavefront validity
 * predicate |i - j| <= band.
 */
template <core::KernelSpec K>
inline int
bandJLo(int i, int band)
{
    return K::banded ? std::max(1, i - band) : 1;
}

template <core::KernelSpec K>
inline int
bandJHi(int i, int rlen, int band)
{
    return K::banded ? std::min(rlen, i + band) : rlen;
}

/**
 * Band-compressed traceback-bank layout shared by the row-major paths:
 * row i's cells live at row_base[i] + (j - bandJLo(i)). Returns the
 * total cell count so the bank can be sized exactly once.
 */
template <core::KernelSpec K>
inline int64_t
buildTbRowBase(int qlen, int rlen, int band,
               std::vector<int64_t> &row_base)
{
    row_base.assign(static_cast<size_t>(qlen + 1), 0);
    int64_t off = 0;
    for (int i = 1; i <= qlen; i++) {
        row_base[static_cast<size_t>(i)] = off;
        const int width =
            bandJHi<K>(i, rlen, band) - bandJLo<K>(i, band) + 1;
        if (width > 0)
            off += width;
    }
    return off;
}

/** Cells eligible for optimum tracking under the traceback strategy. */
template <core::KernelSpec K>
inline bool
cellEligible(int i, int j, int qlen, int rlen)
{
    switch (K::alignKind) {
      case core::AlignmentKind::Global:
        return i == qlen && j == rlen;
      case core::AlignmentKind::Local:
        return true;
      case core::AlignmentKind::SemiGlobal:
        return i == qlen;
      case core::AlignmentKind::Overlap:
        return i == qlen || j == rlen;
    }
    return false;
}

/**
 * Result when no eligible cell was computed: empty input, or the band
 * excludes the whole eligible region. Matches the full-matrix reference
 * semantics exactly: a global alignment reads the (possibly
 * sentinel/init) end cell, other strategies report a zero score at the
 * origin.
 */
template <core::KernelSpec K>
inline core::AlignResult<typename K::ScoreT>
noEligibleResult(const typename K::Params &params, int qlen, int rlen,
                 bool keep_tb)
{
    using ScoreT = typename K::ScoreT;
    core::AlignResult<ScoreT> res;
    if (K::alignKind == core::AlignmentKind::Global) {
        if (qlen == 0 && rlen == 0) {
            res.score = K::originScore(0, params);
        } else if (qlen == 0) {
            res.score = K::initRowScore(rlen, 0, params);
        } else if (rlen == 0) {
            res.score = K::initColScore(qlen, 0, params);
        } else {
            // Band excludes the end cell.
            res.score = core::scoreSentinelWorst<ScoreT>(K::objective);
        }
        res.end = core::Coord{qlen, rlen};
        if (keep_tb && (qlen == 0 || rlen == 0)) {
            // Border-only path: the walker needs no pointers.
            auto walk = core::walkTraceback<K>(
                res.end, [](int, int) { return core::TbPtr{}; });
            res.ops = std::move(walk.ops);
            res.start = walk.start;
            return res;
        }
    } else {
        res.score = typename K::ScoreT{};
        res.end = core::Coord{0, 0};
    }
    res.start = res.end;
    return res;
}

/**
 * Shared result epilogue: reduction-phase accounting, traceback walk and
 * traceback/write-back cycle accounting. @p fetch resolves a (row, col)
 * cell to its stored traceback pointer in whatever layout the calling
 * path used. The optimum handed in must already follow the
 * first-optimum-in-(row,col)-order semantics of the PE reduction tree.
 */
template <core::KernelSpec K, typename Fetch>
inline core::AlignResult<typename K::ScoreT>
finishResult(const EngineConfig &cfg, const typename K::Params &params,
             int qlen, int rlen, bool found,
             typename K::ScoreT best_score, core::Coord best_cell,
             bool keep_tb, Fetch &&fetch, CycleStats &stats)
{
    using Result = core::AlignResult<typename K::ScoreT>;
    if (!found)
        return noEligibleResult<K>(params, qlen, rlen, keep_tb);

    Result res;
    res.score = best_score;
    res.end = best_cell;
    if (K::alignKind != core::AlignmentKind::Global)
        stats.reduction = static_cast<uint64_t>(log2Ceil(cfg.numPe) + 2);

    if (keep_tb) {
        auto walk =
            core::walkTraceback<K>(res.end, std::forward<Fetch>(fetch));
        res.ops = std::move(walk.ops);
        res.start = walk.start;
        stats.traceback = static_cast<uint64_t>(walk.steps) *
            static_cast<uint64_t>(cfg.cycles.tracebackCyclesPerStep);
        stats.writeback = (res.ops.size() +
            static_cast<size_t>(cfg.cycles.writebackOpsPerCycle) - 1) /
            static_cast<size_t>(cfg.cycles.writebackOpsPerCycle);
    } else {
        res.start = res.end;
    }
    return res;
}

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ENGINE_COMMON_HH
