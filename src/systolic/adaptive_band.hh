/**
 * @file
 * Adaptive banding extension (paper Section 2.2.4).
 *
 * The paper's kernels use *fixed* banding; adaptive methods (X-Drop,
 * Suzuki-Kasahara) move a constant-width band to follow the best-scoring
 * diagonal, pruning far more of the matrix for the same accuracy. This
 * module implements that variation on top of any score-only kernel
 * specification: after each row the band re-centers on the row's best
 * column. It reports the cells actually computed and a device-cycle
 * estimate for the equivalent systolic schedule, enabling the
 * fixed-vs-adaptive ablation in the micro-benchmarks.
 *
 * Like kernels #10/#12/#14, this is a score-only path (adaptive-band
 * traceback needs GACT-style tiling on top; see host/tiling.hh).
 */

#ifndef DPHLS_SYSTOLIC_ADAPTIVE_BAND_HH
#define DPHLS_SYSTOLIC_ADAPTIVE_BAND_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "core/alignment.hh"
#include "core/kernel_concept.hh"
#include "core/types.hh"
#include "seq/alphabet.hh"

namespace dphls::sim {

/** Outcome of an adaptive-banded alignment. */
template <typename ScoreT>
struct AdaptiveBandResult
{
    ScoreT score{};
    core::Coord end;
    bool feasible = false;      //!< the strategy's end region was covered
    uint64_t cellsComputed = 0;
    uint64_t cycleEstimate = 0; //!< systolic cycles for this schedule
};

/**
 * Adaptive-banded score-only aligner for kernel @p K: a band of width
 * @p band_width re-centers each row on the previous row's best column.
 */
template <core::KernelSpec K>
class AdaptiveBandAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;

    explicit AdaptiveBandAligner(int band_width = 64, int npe = 32,
                                 typename K::Params params =
                                     K::defaultParams())
        : _bandWidth(std::max(2, band_width)), _npe(std::max(1, npe)),
          _params(params)
    {}

    AdaptiveBandResult<ScoreT>
    align(const seq::Sequence<CharT> &query,
          const seq::Sequence<CharT> &reference) const
    {
        const int qlen = query.length();
        const int rlen = reference.length();
        const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
        constexpr int layers = K::nLayers;

        AdaptiveBandResult<ScoreT> out;
        if (qlen == 0 || rlen == 0)
            return out;

        // Rolling rows over the full width; only band cells are touched.
        std::vector<std::array<ScoreT, layers>> prev(
            static_cast<size_t>(rlen + 1)),
            cur(static_cast<size_t>(rlen + 1));
        for (int j = 0; j <= rlen; j++) {
            for (int l = 0; l < layers; l++) {
                prev[static_cast<size_t>(j)][static_cast<size_t>(l)] =
                    j == 0 ? K::originScore(l, _params)
                           : K::initRowScore(j, l, _params);
            }
        }
        int prev_lo = 0, prev_hi = rlen; // row 0 fully initialized

        core::PeIn<ScoreT, CharT, layers> in;
        std::array<ScoreT, layers> sentinel_cell;
        sentinel_cell.fill(worst);

        ScoreT best_score{};
        core::Coord best_cell;
        bool best_valid = false;
        auto consider = [&](ScoreT v, int i, int j) {
            if (!best_valid || core::isBetter(K::objective, v, best_score)) {
                best_score = v;
                best_cell = core::Coord{i, j};
                best_valid = true;
            }
        };

        int lo = 1, hi = std::min(rlen, _bandWidth);
        for (int i = 1; i <= qlen; i++) {
            // Left edge of the band: column 0 init or a pruned cell.
            for (int l = 0; l < layers; l++) {
                cur[static_cast<size_t>(lo - 1)][static_cast<size_t>(l)] =
                    lo == 1 ? K::initColScore(i, l, _params) : worst;
            }
            ScoreT row_best{};
            int row_best_col = lo;
            bool row_best_valid = false;
            for (int j = lo; j <= hi; j++) {
                const auto &up =
                    (j >= prev_lo && j <= prev_hi)
                        ? prev[static_cast<size_t>(j)] : sentinel_cell;
                const auto &diag =
                    (j - 1 >= prev_lo && j - 1 <= prev_hi)
                        ? prev[static_cast<size_t>(j - 1)] : sentinel_cell;
                const auto &left = cur[static_cast<size_t>(j - 1)];
                for (int l = 0; l < layers; l++) {
                    in.up[static_cast<size_t>(l)] =
                        up[static_cast<size_t>(l)];
                    in.diag[static_cast<size_t>(l)] =
                        diag[static_cast<size_t>(l)];
                    in.left[static_cast<size_t>(l)] =
                        left[static_cast<size_t>(l)];
                }
                in.qryVal = query[i - 1];
                in.refVal = reference[j - 1];
                in.row = i;
                in.col = j;
                const auto cell = K::peFunc(in, _params);
                for (int l = 0; l < layers; l++) {
                    cur[static_cast<size_t>(j)][static_cast<size_t>(l)] =
                        cell.score[static_cast<size_t>(l)];
                }
                out.cellsComputed++;

                const ScoreT v = cell.score[0];
                if (!row_best_valid ||
                    core::isBetter(K::objective, v, row_best)) {
                    row_best = v;
                    row_best_col = j;
                    row_best_valid = true;
                }
                if (eligible(i, j, qlen, rlen))
                    consider(v, i, j);
            }

            // Re-center the band, never moving left (the alignment path
            // is monotone). Two forces combine: the row's best column
            // (score-following) and the expected main diagonal
            // (drift-following); the latter keeps the band moving through
            // score valleys such as long gaps, where the per-row argmax
            // stalls on the old diagonal.
            const int center = row_best_col + 1;
            const int diag_col = static_cast<int>(
                (static_cast<int64_t>(i + 1) * rlen + qlen / 2) / qlen);
            const int next_lo = std::clamp(
                std::max(center, diag_col) - _bandWidth / 2, lo, rlen);
            prev_lo = lo;
            prev_hi = hi;
            lo = std::max(1, next_lo);
            hi = std::min(rlen, lo + _bandWidth - 1);
            std::swap(prev, cur);
        }

        out.feasible = best_valid;
        if (best_valid) {
            out.score = best_score;
            out.end = best_cell;
        } else {
            out.score = worst;
            out.end = core::Coord{qlen, rlen};
        }

        // Systolic schedule estimate: same chunked wavefront mapping as
        // the fixed-band engine, with band-width loop bounds.
        uint64_t fill = 0;
        int remaining = qlen;
        while (remaining > 0) {
            const int rows = std::min(_npe, remaining);
            fill += static_cast<uint64_t>(
                        (_bandWidth + 2 * (rows - 1)) * K::ii) + 6;
            remaining -= rows;
        }
        out.cycleEstimate = fill +
            static_cast<uint64_t>(std::max(qlen, rlen)) + // init
            static_cast<uint64_t>((qlen + rlen) / 32 + 2); // load
        return out;
    }

  private:
    static bool
    eligible(int i, int j, int qlen, int rlen)
    {
        switch (K::alignKind) {
          case core::AlignmentKind::Global:
            return i == qlen && j == rlen;
          case core::AlignmentKind::Local:
            return true;
          case core::AlignmentKind::SemiGlobal:
            return i == qlen;
          case core::AlignmentKind::Overlap:
            return i == qlen || j == rlen;
        }
        return false;
    }

    int _bandWidth;
    int _npe;
    typename K::Params _params;
};

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ADAPTIVE_BAND_HH
