#include "systolic/lane_sweep.hh"

#include <map>
#include <typeindex>
#include <utility>

namespace dphls::sim {

// Defined by the per-tier sweep translation units (lane_sweep_*.cc).
// This TU is pulled in by every engine (it defines lookupSweep), and
// its references to these anchors force the linker to keep the
// otherwise-unreferenced tier objects, whose static registrars
// populate the table below. Without the anchors a static-library link
// would drop the tier objects and every lookup would miss.
void dphlsLinkLaneSweepSse2();
void dphlsLinkLaneSweepAvx2();
void dphlsLinkLaneSweepAvx512();

namespace {

using SweepKey = std::pair<std::type_index, int>;

std::map<SweepKey, SweepFnErased> &
sweepTable()
{
    static std::map<SweepKey, SweepFnErased> table;
    return table;
}

} // namespace

void
registerSweep(const std::type_info &tag, IsaTier tier, SweepFnErased fn)
{
    // Called only from static initializers (single-threaded, pre-main).
    sweepTable()[{std::type_index(tag), static_cast<int>(tier)}] = fn;
}

SweepFnErased
lookupSweep(const std::type_info &tag, IsaTier tier)
{
    static const bool anchored = [] {
        dphlsLinkLaneSweepSse2();
        dphlsLinkLaneSweepAvx2();
        dphlsLinkLaneSweepAvx512();
        return true;
    }();
    (void)anchored;

    const auto &table = sweepTable();
    const auto it =
        table.find({std::type_index(tag), static_cast<int>(tier)});
    return it == table.end() ? nullptr : it->second;
}

} // namespace dphls::sim
