/**
 * @file
 * The row-major fast functional path of the systolic engine.
 *
 * The wavefront schedule in `wavefront_path.hh` is what the hardware
 * executes, but its cycle statistics are *analytic* (trip-count formulas
 * over the chunk bounds) — nothing about the cycle numbers requires the
 * host simulator to actually visit cells in wavefront order. This path
 * exploits that: it computes the same recurrence cache-blocked and
 * row-major over two flattened per-layer row buffers, handles the fixed
 * band with loop bounds instead of per-cell validity branches, writes
 * traceback pointers into one pre-reserved band-compressed bank, and
 * reproduces the PE reduction exactly (first optimum in (row, col)
 * scan order, which is what the per-PE tracking plus the reduction
 * tree's tie-break produce).
 *
 * Equivalence argument (enforced by tests/test_fastpath_equivalence.cc):
 *
 *  - kernel PE functions depend only on the three neighbor scores and
 *    the two characters, never on the schedule;
 *  - the wavefront path feeds `worst` for every neighbor outside the
 *    band (invalid cells write `worst`, stale preserved-row entries
 *    fetch `worst`), which is exactly the boundary value this path
 *    maintains at the band edges;
 *  - cycle statistics are recomputed from the same trip-count formulas
 *    (`accountFill`), so they are bit-identical by construction.
 */

#ifndef DPHLS_SYSTOLIC_FAST_PATH_HH
#define DPHLS_SYSTOLIC_FAST_PATH_HH

#include <array>
#include <vector>

#include "systolic/engine_common.hh"

namespace dphls::sim {

/**
 * Reusable buffers of the fast path. Owning them in the aligner object
 * lets batch hosts amortize the row buffers and the traceback bank
 * across alignments instead of reallocating per pair.
 */
template <core::KernelSpec K>
struct FastWorkspace
{
    std::array<std::vector<typename K::ScoreT>, K::nLayers> rowPrev;
    std::array<std::vector<typename K::ScoreT>, K::nLayers> rowCur;
    /** Band-compressed traceback bank, rows concatenated. */
    std::vector<core::TbPtr> tb;
    /** Offset of row i's first in-band cell inside `tb`. */
    std::vector<int64_t> rowBase;
};

/**
 * Everything the traceback stage needs after the DP fill of one pair.
 *
 * Staged executors move the traceback bank out of the workspace so the
 * traceback of pair i can run on another thread while pair i+1 fills
 * into fresh buffers; `fastAlign` moves the buffers back afterwards to
 * keep the monolithic path's allocation amortization. `stats` holds the
 * load/init + fill components on return from `fastFill`; the traceback
 * stage adds its reduction/traceback/writeback components in place.
 */
template <core::KernelSpec K>
struct FastFillState
{
    int qlen = 0;
    int rlen = 0;
    int band = 0;
    bool keepTb = false;
    bool found = false;
    typename K::ScoreT bestScore{};
    core::Coord bestCell{};
    CycleStats stats;
    std::vector<core::TbPtr> tb;
    std::vector<int64_t> rowBase;
};

/** Fill stage of the fast path: DP fill + optimum tracking, no traceback. */
template <core::KernelSpec K>
void
fastFill(const EngineConfig &cfg, const typename K::Params &params,
         const seq::Sequence<typename K::CharT> &query,
         const seq::Sequence<typename K::CharT> &reference,
         FastWorkspace<K> &ws, FastFillState<K> &st)
{
    CycleStats &stats = st.stats;
    using ScoreT = typename K::ScoreT;
    constexpr int nLayers = K::nLayers;

    const int qlen = query.length();
    const int rlen = reference.length();
    const int band = cfg.bandWidth;
    const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
    const bool keep_tb = K::hasTraceback && !cfg.skipTraceback;

    stats = CycleStats{};
    accountLoadInit<K>(cfg, qlen, rlen, stats);
    accountFill<K>(cfg, qlen, rlen, stats);

    const auto j_lo = [&](int i) { return bandJLo<K>(i, band); };
    const auto j_hi = [&](int i) { return bandJHi<K>(i, rlen, band); };

    // Pre-reserve the whole traceback bank once: row offsets are the
    // running sum of in-band row widths (the address-coalescing analog).
    if (keep_tb) {
        const int64_t cells =
            buildTbRowBase<K>(qlen, rlen, band, ws.rowBase);
        ws.tb.resize(static_cast<size_t>(cells));
    }

    // Row score buffers: previous and current row, per layer. Row 0 is
    // the init row; column 0 carries the init column value of the row.
    for (int l = 0; l < nLayers; l++) {
        auto &prev = ws.rowPrev[static_cast<size_t>(l)];
        auto &cur = ws.rowCur[static_cast<size_t>(l)];
        prev.assign(static_cast<size_t>(rlen + 1), worst);
        cur.assign(static_cast<size_t>(rlen + 1), worst);
        prev[0] = K::originScore(l, params);
        for (int j = 1; j <= rlen; j++)
            prev[static_cast<size_t>(j)] = K::initRowScore(j, l, params);
    }

    bool found = false;
    ScoreT best_score{};
    int best_i = 0, best_j = 0;
    const auto consider = [&](ScoreT v, int i, int j) {
        if (!found || core::isBetter(K::objective, v, best_score)) {
            found = true;
            best_score = v;
            best_i = i;
            best_j = j;
        }
    };

    core::PeIn<ScoreT, typename K::CharT, nLayers> in;
    const typename K::CharT *qdata = query.chars.data();
    const typename K::CharT *rdata = reference.chars.data();
    int i = 1;

    // Two-row cache blocking for unbanded kernels: rows (a, b) advance
    // together through one column sweep. Row b's up/diag/left all come
    // from registers (row a's outputs and its own carries), so the
    // block does ONE score load per layer per two cells. Row b writes
    // in place over the previous row's buffer — always after row a has
    // consumed that column — so no swap is needed and ws.rowPrev ends
    // every block holding the newest row.
    if constexpr (!K::banded) {
        core::PeIn<ScoreT, typename K::CharT, nLayers> ina, inb;
        for (; rlen > 0 && i + 1 <= qlen; i += 2) {
            const int a = i;
            const int b = i + 1;
            // Row a is never stored: row b consumes it entirely from
            // registers, and nothing after the block reads it (the next
            // block's input is row b, scores after the DP are only read
            // at the tracked optimum).
            ScoreT *pb[nLayers]; //!< row a-1 input / row b output
            for (int l = 0; l < nLayers; l++)
                pb[l] = ws.rowPrev[static_cast<size_t>(l)].data();
            for (int l = 0; l < nLayers; l++) {
                const size_t ls = static_cast<size_t>(l);
                const ScoreT ea = K::initColScore(a, l, params);
                const ScoreT eb = K::initColScore(b, l, params);
                ina.left[ls] = ea;
                ina.diag[ls] = pb[l][0]; // read before the overwrite
                inb.left[ls] = eb;
                inb.diag[ls] = ea;
                pb[l][0] = eb;
            }
            ina.qryVal = qdata[a - 1];
            inb.qryVal = qdata[b - 1];
            ina.row = a;
            inb.row = b;
            core::TbPtr *tb_data = keep_tb ? ws.tb.data() : nullptr;
            const int64_t tba =
                keep_tb ? ws.rowBase[static_cast<size_t>(a)] - 1 : 0;
            const int64_t tbb =
                keep_tb ? ws.rowBase[static_cast<size_t>(b)] - 1 : 0;

            // In-row optimum tracking: first candidate unconditionally
            // (j == 1), then strictly-better only — the per-row merge
            // below preserves the (row, col)-order reduction exactly.
            constexpr bool track_all =
                K::alignKind == core::AlignmentKind::Local;
            const bool track_a = track_all;
            const bool track_b = track_all ||
                ((K::alignKind == core::AlignmentKind::SemiGlobal ||
                  K::alignKind == core::AlignmentKind::Overlap) &&
                 b == qlen);
            ScoreT rsa = worst, rsb = worst;
            int rja = 1, rjb = 1;
            ScoreT last_a{}; // row a's final-column score (Overlap merge)

            for (int j = 1; j <= rlen; j++) {
                for (int l = 0; l < nLayers; l++)
                    ina.up[static_cast<size_t>(l)] = pb[l][j];
                ina.refVal = rdata[j - 1];
                ina.col = j;
                const auto outa = K::peFunc(ina, params);
                inb.refVal = ina.refVal;
                inb.col = j;
                for (int l = 0; l < nLayers; l++)
                    inb.up[static_cast<size_t>(l)] =
                        outa.score[static_cast<size_t>(l)];
                const auto outb = K::peFunc(inb, params);
                for (int l = 0; l < nLayers; l++) {
                    const size_t ls = static_cast<size_t>(l);
                    pb[l][j] = outb.score[ls];
                    ina.diag[ls] = ina.up[ls];
                    ina.left[ls] = outa.score[ls];
                    inb.diag[ls] = outa.score[ls];
                    inb.left[ls] = outb.score[ls];
                }
                if constexpr (K::alignKind == core::AlignmentKind::Overlap)
                    last_a = j == rlen ? outa.score[0] : last_a;
                if (keep_tb) {
                    tb_data[tba + j] = outa.tbPtr;
                    tb_data[tbb + j] = outb.tbPtr;
                }
                if (track_a) {
                    const ScoreT v = outa.score[0];
                    const bool w = (j == 1) |
                        core::isBetter(K::objective, v, rsa);
                    rsa = w ? v : rsa;
                    rja = w ? j : rja;
                }
                if (track_b) {
                    const ScoreT v = outb.score[0];
                    const bool w = (j == 1) |
                        core::isBetter(K::objective, v, rsb);
                    rsb = w ? v : rsb;
                    rjb = w ? j : rjb;
                }
            }

            // Merge the rows' candidates in (row, col) order.
            if constexpr (K::alignKind == core::AlignmentKind::Local) {
                consider(rsa, a, rja);
                consider(rsb, b, rjb);
            } else if constexpr (K::alignKind ==
                                 core::AlignmentKind::SemiGlobal) {
                if (b == qlen)
                    consider(rsb, b, rjb);
            } else if constexpr (K::alignKind ==
                                 core::AlignmentKind::Overlap) {
                consider(last_a, a, rlen);
                if (b == qlen)
                    consider(rsb, b, rjb);
                else
                    consider(pb[0][rlen], b, rlen);
            } else { // Global
                if (b == qlen)
                    consider(pb[0][rlen], b, rlen);
            }
        }
    }

    for (; i <= qlen; i++) {
        const int jlo = j_lo(i);
        const int jhi = j_hi(i);
        if (jlo > jhi)
            continue; // band fully outside this row

        // Raw row pointers hoisted out of the hot loop (the two rows
        // never alias each other).
        const ScoreT *prev[nLayers];
        ScoreT *cur[nLayers];
        for (int l = 0; l < nLayers; l++) {
            prev[l] = ws.rowPrev[static_cast<size_t>(l)].data();
            cur[l] = ws.rowCur[static_cast<size_t>(l)].data();
        }

        // Band-edge boundary values: the left edge is the init column
        // (j == 1) or the out-of-band sentinel; they feed this row's
        // first `left` and the next row's first `diag`. `left`/`diag`
        // then stay in registers across the row: left(j) is the cell
        // just computed, diag(j+1) is up(j).
        for (int l = 0; l < nLayers; l++) {
            const ScoreT edge =
                jlo == 1 ? K::initColScore(i, l, params) : worst;
            cur[l][jlo - 1] = edge;
            in.left[static_cast<size_t>(l)] = edge;
            in.diag[static_cast<size_t>(l)] = prev[l][jlo - 1];
        }
        in.qryVal = qdata[i - 1];
        in.row = i;
        core::TbPtr *tb_data = keep_tb ? ws.tb.data() : nullptr;
        const int64_t tb_base =
            keep_tb ? ws.rowBase[static_cast<size_t>(i)] - jlo : 0;

        for (int j = jlo; j <= jhi; j++) {
            for (int l = 0; l < nLayers; l++)
                in.up[static_cast<size_t>(l)] = prev[l][j];
            in.refVal = rdata[j - 1];
            in.col = j;
            const auto out = K::peFunc(in, params);
            for (int l = 0; l < nLayers; l++) {
                const size_t ls = static_cast<size_t>(l);
                cur[l][j] = out.score[ls];
                in.diag[ls] = in.up[ls];
                in.left[ls] = out.score[ls];
            }
            if (keep_tb)
                tb_data[tb_base + j] = out.tbPtr;

            // Optimum tracking in scan order == first optimum in
            // (row, col) order, matching the PE reduction tree.
            if constexpr (K::alignKind == core::AlignmentKind::Local) {
                consider(out.score[0], i, j);
            } else if constexpr (K::alignKind ==
                                 core::AlignmentKind::SemiGlobal) {
                if (i == qlen)
                    consider(out.score[0], i, j);
            } else if constexpr (K::alignKind ==
                                 core::AlignmentKind::Overlap) {
                if (i == qlen || j == rlen)
                    consider(out.score[0], i, j);
            }
        }
        if constexpr (K::alignKind == core::AlignmentKind::Global) {
            if (i == qlen && rlen >= jlo && rlen <= jhi)
                consider(cur[0][rlen], qlen, rlen);
        }
        // Out-of-band sentinel past the right band edge: the next row
        // reads it as `up` at its last cell (the band moves right by at
        // most one column per row).
        if (jhi < rlen) {
            for (int l = 0; l < nLayers; l++)
                cur[l][jhi + 1] = worst;
        }
        for (int l = 0; l < nLayers; l++) {
            std::swap(ws.rowPrev[static_cast<size_t>(l)],
                      ws.rowCur[static_cast<size_t>(l)]);
        }
    }

    st.qlen = qlen;
    st.rlen = rlen;
    st.band = band;
    st.keepTb = keep_tb;
    st.found = found;
    st.bestScore = best_score;
    st.bestCell = core::Coord{best_i, best_j};
    st.tb = std::move(ws.tb);
    st.rowBase = std::move(ws.rowBase);
}

/** Traceback stage over a fill state; adds its cycles into `st.stats`. */
template <core::KernelSpec K>
core::AlignResult<typename K::ScoreT>
fastTraceback(const EngineConfig &cfg, const typename K::Params &params,
              FastFillState<K> &st)
{
    const int band = st.band;
    const int rlen = st.rlen;
    const auto fetch = [&](int i, int j) {
        const int jlo = bandJLo<K>(i, band);
        if (j < jlo || j > bandJHi<K>(i, rlen, band))
            return core::TbPtr{};
        return st.tb[static_cast<size_t>(
            st.rowBase[static_cast<size_t>(i)] + (j - jlo))];
    };
    return finishResult<K>(cfg, params, st.qlen, st.rlen, st.found,
                           st.bestScore, st.bestCell, st.keepTb, fetch,
                           st.stats);
}

/** Align one pair on the row-major fast path. */
template <core::KernelSpec K>
core::AlignResult<typename K::ScoreT>
fastAlign(const EngineConfig &cfg, const typename K::Params &params,
          const seq::Sequence<typename K::CharT> &query,
          const seq::Sequence<typename K::CharT> &reference,
          CycleStats &stats, FastWorkspace<K> &ws)
{
    FastFillState<K> st;
    fastFill<K>(cfg, params, query, reference, ws, st);
    auto res = fastTraceback<K>(cfg, params, st);
    stats = st.stats;
    // Hand the bank back so batch hosts keep amortizing allocations.
    ws.tb = std::move(st.tb);
    ws.rowBase = std::move(st.rowBase);
    return res;
}

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_FAST_PATH_HH
