/**
 * @file
 * Structural schedule tracing for the systolic engine.
 *
 * Section 7.2 of the paper verifies that the HLS-generated RTL "exhibits
 * the expected linear systolic array behavior" by checking throughput and
 * resource scaling. The simulator can do better: it can emit the exact
 * compute schedule (which PE computes which cell on which wavefront of
 * which chunk, and which traceback-bank address it writes) so tests can
 * assert the structural invariants directly:
 *
 *  - PE p of chunk c always computes row c*NPE + p + 1;
 *  - cell (i, j) is computed on wavefront (j-1) + p of its chunk
 *    (anti-diagonal schedule);
 *  - all PEs write the same traceback-bank address on a given wavefront
 *    (address coalescing, Section 5.2);
 *  - every in-band cell is computed exactly once.
 */

#ifndef DPHLS_SYSTOLIC_TRACE_HH
#define DPHLS_SYSTOLIC_TRACE_HH

#include <cstdint>
#include <vector>

namespace dphls::sim {

/** One PE-cycle of the systolic schedule. */
struct ScheduleEvent
{
    int chunk = 0;     //!< query chunk index
    int wavefront = 0; //!< wavefront (anti-diagonal) within the chunk
    int pe = 0;        //!< processing element index
    int row = 0;       //!< matrix row computed (1-based)
    int col = 0;       //!< matrix column computed (1-based)
    bool valid = false; //!< inside the matrix and the band
    int tbAddr = -1;   //!< traceback-bank address written (-1 if none)
};

/** Schedule sink; attach to EngineConfig::trace to record execution. */
using ScheduleTrace = std::vector<ScheduleEvent>;

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_TRACE_HH
