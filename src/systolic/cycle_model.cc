#include "systolic/cycle_model.hh"

#include <algorithm>

namespace dphls::sim {

uint64_t
totalCycles(const CycleStats &stats, const CycleModelOptions &opt)
{
    const uint64_t front = stats.seqLoad + stats.init;
    const uint64_t body = stats.fill + stats.reduction + stats.traceback +
                          stats.writeback + stats.extra;
    if (opt.overlapLoadInit) {
        // Load/init of alignment N+1 proceeds while alignment N computes:
        // in steady state only the larger of the two phases is exposed.
        return std::max<uint64_t>(front, body);
    }
    return front + body;
}

} // namespace dphls::sim
