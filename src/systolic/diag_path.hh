/**
 * @file
 * Intra-pair anti-diagonal SIMD path of the systolic engine.
 *
 * The lane engine recovers SIMD throughput across *pairs*; at low batch
 * occupancy (one long read against one long reference) there are no
 * sibling pairs to fill the lanes. This path vectorizes *within* one
 * alignment instead: all cells of an anti-diagonal are mutually
 * independent, so W consecutive cells of diagonal d = i + j advance in
 * lockstep, exactly the parallelism the systolic array itself exploits
 * (one anti-diagonal per initiation interval, Fig. 2C of the paper).
 *
 * The hot loop is the tier-compiled `diagSweep` (lane_sweep_impl.hh),
 * dispatched at runtime through the sweep registry like the lane
 * engine's row sweep; this wrapper marshals one pair into the sweep's
 * plane-major raw layout (reference stored reversed so both operands of
 * a diagonal load contiguously), seeds the three rotating diagonal
 * buffers, and finishes with the shared analytic cycle accounting and
 * traceback walk — so results AND cycle statistics stay bit-identical
 * to the wavefront reference path (enforced by tests/test_isa_tiers.cc).
 *
 * Kernels without a registered sweep, and IsaTier::Scalar, fall back to
 * the row-major fast path: EnginePath::DiagSimd is a performance hint,
 * never a behavior change.
 */

#ifndef DPHLS_SYSTOLIC_DIAG_PATH_HH
#define DPHLS_SYSTOLIC_DIAG_PATH_HH

#include <array>
#include <vector>

#include "systolic/engine_common.hh"
#include "systolic/fast_path.hh"
#include "systolic/lane_sweep.hh"

namespace dphls::sim {

/** Reusable buffers of the anti-diagonal path. */
template <core::KernelSpec K>
struct DiagWorkspace
{
    RawLaneBuf q32, rrev32;
    RawLaneBuf rowInitRaw, colInitRaw;
    /** Three rotating per-layer diagonal buffers (d-2, d-1, d). */
    std::array<RawLaneBuf, K::nLayers> bufA, bufB, bufC;
    std::vector<core::TbPtr> tb;
    std::vector<int64_t> rowBase;
};

/**
 * Align one pair on the anti-diagonal SIMD path; falls back to the
 * row-major fast path when no sweep is registered for the kernel at the
 * resolved tier.
 */
template <core::KernelSpec K>
core::AlignResult<typename K::ScoreT>
diagAlign(const EngineConfig &cfg, const typename K::Params &params,
          const seq::Sequence<typename K::CharT> &query,
          const seq::Sequence<typename K::CharT> &reference,
          CycleStats &stats, DiagWorkspace<K> &ws, FastWorkspace<K> &fastWs)
{
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    constexpr int nLayers = K::nLayers;

    if constexpr (!laneSweepEnabled<K>) {
        return fastAlign<K>(cfg, params, query, reference, stats, fastWs);
    } else {
        const IsaTier tier = resolveIsaTier(cfg.isaTier);
        DiagSweepFn<K> fn = nullptr;
        if (tier != IsaTier::Scalar) {
            // Tier TUs register every width up to their native lane
            // count, so the native width either hits or the tier has
            // no sweep for this kernel at all.
            switch (isaTierLanes(tier)) {
            case 16: fn = lookupDiagSweep<K, 16>(tier); break;
            case 8: fn = lookupDiagSweep<K, 8>(tier); break;
            default: fn = lookupDiagSweep<K, 4>(tier); break;
            }
        }
        if (fn == nullptr)
            return fastAlign<K>(cfg, params, query, reference, stats,
                                fastWs);

        using CharTr = LaneCharTraits<CharT>;
        constexpr int planes = CharTr::planes;
        const int qlen = query.length();
        const int rlen = reference.length();
        const int band = cfg.bandWidth;
        const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
        const int32_t worst_raw = LaneScoreTraits<ScoreT>::toRaw(worst);
        const bool keep_tb = K::hasTraceback && !cfg.skipTraceback;

        stats = CycleStats{};
        accountLoadInit<K>(cfg, qlen, rlen, stats);
        accountFill<K>(cfg, qlen, rlen, stats);

        // Plane-major widened characters with zeroed slack so the tail
        // chunk's overhanging vector loads stay in bounds. The
        // reference is stored reversed: cell (i, d - i) reads
        // ref[d - i - 1] == rrev[rlen - d + i], contiguous in i.
        const size_t q_stride =
            static_cast<size_t>(qlen) + kMaxSweepLanes;
        const size_t r_stride =
            static_cast<size_t>(rlen) + kMaxSweepLanes;
        ws.q32.assign(q_stride * planes, 0);
        ws.rrev32.assign(r_stride * planes, 0);
        for (int i = 0; i < qlen; i++)
            for (int pl = 0; pl < planes; pl++)
                ws.q32[static_cast<size_t>(pl) * q_stride +
                       static_cast<size_t>(i)] =
                    CharTr::plane(query[i], pl);
        for (int j = 0; j < rlen; j++)
            for (int pl = 0; pl < planes; pl++)
                ws.rrev32[static_cast<size_t>(pl) * r_stride +
                          static_cast<size_t>(rlen - 1 - j)] =
                    CharTr::plane(reference[j], pl);

        // Raw boundary tables; colInit slot 0 carries the origin.
        ws.rowInitRaw.assign(static_cast<size_t>(rlen + 1) * nLayers, 0);
        ws.colInitRaw.assign(static_cast<size_t>(qlen + 1) * nLayers, 0);
        for (int l = 0; l < nLayers; l++)
            ws.colInitRaw[static_cast<size_t>(l)] =
                LaneScoreTraits<ScoreT>::toRaw(K::originScore(l, params));
        for (int j = 1; j <= rlen; j++)
            for (int l = 0; l < nLayers; l++)
                ws.rowInitRaw[static_cast<size_t>(j) * nLayers +
                              static_cast<size_t>(l)] =
                    LaneScoreTraits<ScoreT>::toRaw(
                        K::initRowScore(j, l, params));
        for (int i = 1; i <= qlen; i++)
            for (int l = 0; l < nLayers; l++)
                ws.colInitRaw[static_cast<size_t>(i) * nLayers +
                              static_cast<size_t>(l)] =
                    LaneScoreTraits<ScoreT>::toRaw(
                        K::initColScore(i, l, params));

        // Three rotating diagonal buffers, slot i of diagonal d holds
        // cell (i, d - i); slack covers the tail chunk's overhang.
        // Seed diagonals 0 (origin at slot 0) and 1 (row-init cell
        // (0,1) at slot 0, col-init cell (1,0) at slot 1).
        const size_t diag_slots =
            static_cast<size_t>(qlen) + 2 + kMaxSweepLanes;
        std::array<int32_t *, nLayers> d2{}, d1{}, dc{};
        for (int l = 0; l < nLayers; l++) {
            const size_t ls = static_cast<size_t>(l);
            ws.bufA[ls].assign(diag_slots, worst_raw);
            ws.bufB[ls].assign(diag_slots, worst_raw);
            ws.bufC[ls].assign(diag_slots, worst_raw);
            ws.bufA[ls][0] = ws.colInitRaw[ls]; // origin, cell (0, 0)
            if (rlen >= 1)
                ws.bufB[ls][0] =
                    ws.rowInitRaw[static_cast<size_t>(nLayers) + ls];
            if (qlen >= 1)
                ws.bufB[ls][1] =
                    ws.colInitRaw[static_cast<size_t>(nLayers) + ls];
            d2[ls] = ws.bufA[ls].data();
            d1[ls] = ws.bufB[ls].data();
            dc[ls] = ws.bufC[ls].data();
        }

        // Band-compressed traceback bank, same layout as the fast path.
        if (keep_tb) {
            const int64_t cells =
                buildTbRowBase<K>(qlen, rlen, band, ws.rowBase);
            ws.tb.resize(static_cast<size_t>(cells));
        } else {
            ws.rowBase.assign(static_cast<size_t>(qlen + 1), 0);
        }

        int32_t out_found = 0, out_best = 0, out_i = 0, out_j = 0;
        DiagSweepArgs<K> args;
        args.qlen = qlen;
        args.rlen = rlen;
        args.band = band;
        args.worstRaw = worst_raw;
        args.keepTb = keep_tb;
        args.q32 = ws.q32.data();
        args.rrev32 = ws.rrev32.data();
        args.qStride = q_stride;
        args.rStride = r_stride;
        args.rowInit = ws.rowInitRaw.data();
        args.colInit = ws.colInitRaw.data();
        args.d2 = d2.data();
        args.d1 = d1.data();
        args.cur = dc.data();
        args.tb = ws.tb.data();
        args.rowBase = ws.rowBase.data();
        args.params = &params;
        args.found = &out_found;
        args.bestRaw = &out_best;
        args.bestI = &out_i;
        args.bestJ = &out_j;
        fn(args);

        const auto fetch = [&](int fi, int fj) {
            const int flo = bandJLo<K>(fi, band);
            if (fj < flo || fj > bandJHi<K>(fi, rlen, band))
                return core::TbPtr{};
            return ws.tb[static_cast<size_t>(
                ws.rowBase[static_cast<size_t>(fi)] + (fj - flo))];
        };
        return finishResult<K>(
            cfg, params, qlen, rlen, out_found != 0,
            LaneScoreTraits<ScoreT>::fromRaw(out_best),
            core::Coord{out_i, out_j}, keep_tb, fetch, stats);
    }
}

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_DIAG_PATH_HH
