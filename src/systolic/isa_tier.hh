/**
 * @file
 * Runtime ISA-tier selection for the host SIMD paths.
 *
 * The lane engine's sweep bodies are compiled once per ISA tier (SSE2
 * baseline, AVX2, AVX-512) into separate translation units with the
 * matching -m flags; at runtime the widest tier the CPU supports is
 * picked once via CPUID and dispatched through the sweep registry
 * (`lane_sweep.hh`). The tier is a *dispatch-time* property, never a
 * result-affecting one: every tier computes bit-identical scores,
 * CIGARs and cycle statistics (enforced by tests/test_isa_tiers.cc),
 * so it deliberately stays out of `engineConfigSalt`.
 *
 * `IsaTier::Scalar` forces the per-lane scalar fallback loop (no vector
 * sweep at all) and exists for differential testing; `Auto` resolves to
 * the widest supported tier. The `DPHLS_ISA_TIER` environment variable
 * caps what `Auto` resolves to (used by the forced-sse2 CI job).
 */

#ifndef DPHLS_SYSTOLIC_ISA_TIER_HH
#define DPHLS_SYSTOLIC_ISA_TIER_HH

#include <cstdint>
#include <string_view>

namespace dphls::sim {

/** Host SIMD tier of the lane sweeps, widening left to right. */
enum class IsaTier : uint8_t
{
    Auto,   //!< resolve to the widest supported tier at startup
    Scalar, //!< force the scalar per-lane loop (testing)
    Sse2,   //!< 128-bit packs, 4 lanes (x86-64 baseline codegen)
    Avx2,   //!< 256-bit packs, 8 lanes
    Avx512, //!< 512-bit packs, 16 lanes
};

/** Canonical lower-case name ("auto", "sse2", ...). */
const char *isaTierName(IsaTier tier);

/** Parse a tier name; returns false on unknown input. */
bool parseIsaTier(std::string_view name, IsaTier &out);

/** True if this host can execute @p tier (Scalar/Sse2 always can). */
bool isaTierSupported(IsaTier tier);

/**
 * Widest tier this host supports, probed once via CPUID. The
 * DPHLS_ISA_TIER environment variable (when set to a supported tier)
 * caps the answer, so whole test suites can be pinned to a fallback
 * tier without touching every config.
 */
IsaTier detectIsaTier();

/**
 * Resolve a configured tier: Auto becomes detectIsaTier(); explicit
 * tiers are validated against the host (throws std::invalid_argument
 * for an unsupported request, e.g. --isa-tier avx512 on an SSE2 box).
 */
IsaTier resolveIsaTier(IsaTier requested);

/** Lockstep lane count of a tier's native vector width. */
constexpr int
isaTierLanes(IsaTier tier)
{
    switch (tier) {
      case IsaTier::Avx512:
        return 16;
      case IsaTier::Avx2:
        return 8;
      default:
        return 4; // Sse2 native width; Scalar groups like the baseline
    }
}

/**
 * Per-tier seed for the CPU backend's cells/sec EWMA (host/backend.hh):
 * the cost-model router needs a sane throughput guess before the first
 * measurement lands, and one hardcoded baseline mis-calibrates routing
 * on hosts whose lane engine runs 2-4x the SSE2 rate.
 */
double isaTierSeedCellsPerSec(IsaTier tier);

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ISA_TIER_HH
