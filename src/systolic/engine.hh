/**
 * @file
 * The DP-HLS back-end: a cycle-level linear systolic array engine.
 *
 * `SystolicAligner` executes any kernel satisfying core::KernelSpec
 * through one of three execution paths that decouple functional DP
 * computation from schedule modeling:
 *
 *  - the **wavefront reference path** (`wavefront_path.hh`) runs the
 *    exact micro-architecture the paper's HLS pragmas produce (Fig. 2C):
 *    NPE-row chunks, one anti-diagonal per initiation interval,
 *    preserved-row buffer, address-coalesced traceback banks, per-PE
 *    optimum tracking and reduction (Section 5.2), fixed banding via
 *    wavefront loop bounds (Section 4, step 1.6);
 *  - the **fast functional path** (`fast_path.hh`) computes the same
 *    recurrence row-major over flattened per-layer row buffers with the
 *    band handled by loop bounds — several times faster on the host;
 *  - the **anti-diagonal SIMD path** (`diag_path.hh`) vectorizes one
 *    alignment along its anti-diagonals through the runtime-dispatched
 *    ISA-tier sweeps — the host analog of the array's own wavefront
 *    parallelism, for single long pairs that cannot fill the lane
 *    engine's inter-pair lanes.
 *
 * Cycle statistics are analytic functions of the wavefront trip counts
 * (`engine_common.hh`), so results AND cycle numbers are bit-identical
 * across paths (enforced by tests/test_fastpath_equivalence.cc). The
 * engine selects the fast path automatically unless a ScheduleTrace is
 * attached; `EngineConfig::path` overrides the selection.
 *
 * Functional results are bit-identical to the full-matrix reference
 * aligner (enforced by the test suite); cycle counts per phase feed the
 * throughput model.
 */

#ifndef DPHLS_SYSTOLIC_ENGINE_HH
#define DPHLS_SYSTOLIC_ENGINE_HH

#include <stdexcept>

#include "systolic/diag_path.hh"
#include "systolic/engine_common.hh"
#include "systolic/fast_path.hh"
#include "systolic/wavefront_path.hh"

namespace dphls::sim {

/**
 * Systolic-array aligner for kernel @p K: one DP-HLS block of NPE PEs.
 */
template <core::KernelSpec K>
class SystolicAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Params = typename K::Params;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;

    explicit SystolicAligner(EngineConfig cfg = {},
                             Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {
        if (_cfg.numPe < 1)
            throw std::invalid_argument("numPe must be >= 1");
        if ((_cfg.path == EnginePath::Fast ||
             _cfg.path == EnginePath::DiagSimd) &&
            _cfg.trace != nullptr)
            throw std::invalid_argument(
                "ScheduleTrace requires the wavefront path");
    }

    const EngineConfig &config() const { return _cfg; }
    const Params &params() const { return _params; }

    /** The execution path align() runs under the current config. */
    EnginePath
    activePath() const
    {
        if (_cfg.path == EnginePath::Auto) {
            return _cfg.trace == nullptr ? EnginePath::Fast
                                         : EnginePath::Wavefront;
        }
        return _cfg.path;
    }

    /** Cycle statistics of the most recent align() call. */
    const CycleStats &lastStats() const { return _stats; }

    /** Total cycles of the most recent align() call per the cycle model. */
    uint64_t
    lastTotalCycles() const
    {
        return totalCycles(_stats, _cfg.cycles);
    }

    /** Align one pair; returns score/optimum/traceback path. */
    Result
    align(const seq::Sequence<CharT> &query,
          const seq::Sequence<CharT> &reference)
    {
        if (query.length() > _cfg.maxQueryLength)
            throw std::invalid_argument("query exceeds MAX_QUERY_LENGTH");
        if (reference.length() > _cfg.maxReferenceLength)
            throw std::invalid_argument(
                "reference exceeds MAX_REFERENCE_LENGTH");

        switch (activePath()) {
        case EnginePath::DiagSimd:
            return diagAlign<K>(_cfg, _params, query, reference, _stats,
                                _diagWs, _fastWs);
        case EnginePath::Fast:
            return fastAlign<K>(_cfg, _params, query, reference, _stats,
                                _fastWs);
        default:
            return wavefrontAlign<K>(_cfg, _params, query, reference,
                                     _stats);
        }
    }

  private:
    EngineConfig _cfg;
    Params _params;
    CycleStats _stats;
    FastWorkspace<K> _fastWs;
    DiagWorkspace<K> _diagWs;
};

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ENGINE_HH
