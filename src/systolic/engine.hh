/**
 * @file
 * The DP-HLS back-end: a cycle-level linear systolic array engine.
 *
 * `SystolicAligner` executes any kernel satisfying core::KernelSpec
 * through one of three execution paths that decouple functional DP
 * computation from schedule modeling:
 *
 *  - the **wavefront reference path** (`wavefront_path.hh`) runs the
 *    exact micro-architecture the paper's HLS pragmas produce (Fig. 2C):
 *    NPE-row chunks, one anti-diagonal per initiation interval,
 *    preserved-row buffer, address-coalesced traceback banks, per-PE
 *    optimum tracking and reduction (Section 5.2), fixed banding via
 *    wavefront loop bounds (Section 4, step 1.6);
 *  - the **fast functional path** (`fast_path.hh`) computes the same
 *    recurrence row-major over flattened per-layer row buffers with the
 *    band handled by loop bounds — several times faster on the host;
 *  - the **anti-diagonal SIMD path** (`diag_path.hh`) vectorizes one
 *    alignment along its anti-diagonals through the runtime-dispatched
 *    ISA-tier sweeps — the host analog of the array's own wavefront
 *    parallelism, for single long pairs that cannot fill the lane
 *    engine's inter-pair lanes.
 *
 * Cycle statistics are analytic functions of the wavefront trip counts
 * (`engine_common.hh`), so results AND cycle numbers are bit-identical
 * across paths (enforced by tests/test_fastpath_equivalence.cc). The
 * engine selects the fast path automatically unless a ScheduleTrace is
 * attached; `EngineConfig::path` overrides the selection.
 *
 * Functional results are bit-identical to the full-matrix reference
 * aligner (enforced by the test suite); cycle counts per phase feed the
 * throughput model.
 */

#ifndef DPHLS_SYSTOLIC_ENGINE_HH
#define DPHLS_SYSTOLIC_ENGINE_HH

#include <mutex>
#include <stdexcept>

#include "systolic/diag_path.hh"
#include "systolic/engine_common.hh"
#include "systolic/fast_path.hh"
#include "systolic/wavefront_path.hh"

namespace dphls::sim {

/**
 * Systolic-array aligner for kernel @p K: one DP-HLS block of NPE PEs.
 */
template <core::KernelSpec K>
class SystolicAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Params = typename K::Params;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;

    explicit SystolicAligner(EngineConfig cfg = {},
                             Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {
        if (_cfg.numPe < 1)
            throw std::invalid_argument("numPe must be >= 1");
        if ((_cfg.path == EnginePath::Fast ||
             _cfg.path == EnginePath::DiagSimd) &&
            _cfg.trace != nullptr)
            throw std::invalid_argument(
                "ScheduleTrace requires the wavefront path");
    }

    const EngineConfig &config() const { return _cfg; }
    const Params &params() const { return _params; }

    /** The execution path align() runs under the current config. */
    EnginePath
    activePath() const
    {
        if (_cfg.path == EnginePath::Auto) {
            return _cfg.trace == nullptr ? EnginePath::Fast
                                         : EnginePath::Wavefront;
        }
        return _cfg.path;
    }

    /** Cycle statistics of the most recent align() call. */
    const CycleStats &lastStats() const { return _stats; }

    /** Total cycles of the most recent align() call per the cycle model. */
    uint64_t
    lastTotalCycles() const
    {
        return totalCycles(_stats, _cfg.cycles);
    }

    /** Align one pair; returns score/optimum/traceback path. */
    Result
    align(const seq::Sequence<CharT> &query,
          const seq::Sequence<CharT> &reference)
    {
        if (query.length() > _cfg.maxQueryLength)
            throw std::invalid_argument("query exceeds MAX_QUERY_LENGTH");
        if (reference.length() > _cfg.maxReferenceLength)
            throw std::invalid_argument(
                "reference exceeds MAX_REFERENCE_LENGTH");

        switch (activePath()) {
        case EnginePath::DiagSimd:
            return diagAlign<K>(_cfg, _params, query, reference, _stats,
                                _diagWs, _fastWs);
        case EnginePath::Fast:
            return fastAlign<K>(_cfg, _params, query, reference, _stats,
                                _fastWs);
        default:
            return wavefrontAlign<K>(_cfg, _params, query, reference,
                                     _stats);
        }
    }

    /**
     * True when align() would run the fast path, whose DP fill and
     * traceback can execute as separate pipeline stages.
     */
    bool
    supportsStagedFill() const
    {
        return activePath() == EnginePath::Fast;
    }

    /**
     * Fill stage of one pair. The returned state owns the traceback
     * bank, so tracebackStage() may run on another thread while this
     * engine fills the next pair. Does not touch lastStats(): staged
     * callers read cycles out of the state's CycleStats instead.
     */
    FastFillState<K>
    fillStage(const seq::Sequence<CharT> &query,
              const seq::Sequence<CharT> &reference)
    {
        if (query.length() > _cfg.maxQueryLength)
            throw std::invalid_argument("query exceeds MAX_QUERY_LENGTH");
        if (reference.length() > _cfg.maxReferenceLength)
            throw std::invalid_argument(
                "reference exceeds MAX_REFERENCE_LENGTH");
        // fastFill moves the workspace bank into the returned state, so
        // a staged run would otherwise allocate (and first-touch fault)
        // a fresh bank per pair; reclaim the consumer's recycled one.
        if (_fastWs.tb.capacity() == 0 ||
            _fastWs.rowBase.capacity() == 0) {
            std::lock_guard lock(_spareMutex);
            if (_fastWs.tb.capacity() == 0)
                _fastWs.tb = std::move(_spareTb);
            if (_fastWs.rowBase.capacity() == 0)
                _fastWs.rowBase = std::move(_spareRowBase);
        }
        FastFillState<K> st;
        fastFill<K>(_cfg, _params, query, reference, _fastWs, st);
        return st;
    }

    /**
     * Traceback stage over a fill state. Reads only the immutable
     * config/params, so it is safe to call concurrently with
     * fillStage() on this same engine (the staged-shard consumer).
     */
    Result
    tracebackStage(FastFillState<K> &st) const
    {
        return fastTraceback<K>(_cfg, _params, st);
    }

    /**
     * Hand a finished fill state's buffers back for reuse. The staged
     * consumer calls this after tracebackStage() so the producer's next
     * fillStage() reuses the traceback bank instead of paying a fresh
     * allocation per pair (the monolithic path amortizes the same way
     * by moving the bank back into the workspace). Keeps the single
     * largest bank; thread-safe against fillStage() on this engine.
     */
    void
    recycleStage(FastFillState<K> &&st)
    {
        std::lock_guard lock(_spareMutex);
        if (st.tb.capacity() > _spareTb.capacity())
            _spareTb = std::move(st.tb);
        if (st.rowBase.capacity() > _spareRowBase.capacity())
            _spareRowBase = std::move(st.rowBase);
    }

  private:
    EngineConfig _cfg;
    Params _params;
    CycleStats _stats;
    FastWorkspace<K> _fastWs;
    DiagWorkspace<K> _diagWs;
    std::mutex _spareMutex; //!< guards the recycled-bank pool below
    std::vector<core::TbPtr> _spareTb;
    std::vector<int64_t> _spareRowBase;
};

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ENGINE_HH
