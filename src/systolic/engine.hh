/**
 * @file
 * The DP-HLS back-end: a cycle-level linear systolic array engine.
 *
 * This simulator executes any kernel satisfying core::KernelSpec through
 * the exact micro-architecture the paper's HLS pragmas produce (Fig. 2C):
 *
 *  - the query is split into chunks of NPE consecutive rows, one row per
 *    processing element; the reference streams through the array;
 *  - each wavefront (anti-diagonal) is computed in one pipeline initiation
 *    interval; the two previous wavefronts live in the DP memory buffer
 *    and the current one in the score buffer;
 *  - a preserved-row score buffer carries the last PE's row into the next
 *    chunk's first PE;
 *  - every PE owns a private traceback memory bank; consecutive wavefronts
 *    map to consecutive bank addresses (address coalescing, Section 5.2),
 *    so all PEs write the same address each cycle;
 *  - PEs track their local optimum over the traceback strategy's eligible
 *    region and a reduction tree picks the global optimum (Section 5.2);
 *  - fixed banding restricts the wavefront loop bounds (Section 4, step 1.6).
 *
 * Functional results are bit-identical to the full-matrix reference
 * aligner (enforced by the test suite); cycle counts per phase feed the
 * throughput model.
 */

#ifndef DPHLS_SYSTOLIC_ENGINE_HH
#define DPHLS_SYSTOLIC_ENGINE_HH

#include <algorithm>
#include <array>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/alignment.hh"
#include "core/kernel_concept.hh"
#include "core/traceback_walk.hh"
#include "core/types.hh"
#include "seq/alphabet.hh"
#include "systolic/cycle_model.hh"
#include "systolic/trace.hh"

namespace dphls::sim {

/** Bits per streamed character, used by the sequence-load cycle model. */
template <typename C>
struct CharBits
{
    static constexpr int value = C::bits;
};
template <>
struct CharBits<seq::ProfileColumn>
{
    static constexpr int value = 80; // 5 x 16-bit frequencies
};
template <>
struct CharBits<seq::ComplexSample>
{
    static constexpr int value = 64; // two 32-bit fixed-point samples
};
template <>
struct CharBits<seq::SignalSample>
{
    static constexpr int value = 16;
};

/** Configuration of one systolic block (paper front-end steps 1 and 5). */
struct EngineConfig
{
    int numPe = 32;             //!< NPE: processing elements per block
    int bandWidth = 64;         //!< fixed band half-width (banded kernels)
    int maxQueryLength = 1024;  //!< MAX_QUERY_LENGTH
    int maxReferenceLength = 1024; //!< MAX_REFERENCE_LENGTH
    bool skipTraceback = false; //!< disable traceback (GPU-baseline mode)
    CycleModelOptions cycles{}; //!< phase-overlap model
    /** Optional structural schedule sink (testing/inspection only). */
    ScheduleTrace *trace = nullptr;
};

/**
 * Systolic-array aligner for kernel @p K: one DP-HLS block of NPE PEs.
 */
template <core::KernelSpec K>
class SystolicAligner
{
  public:
    using ScoreT = typename K::ScoreT;
    using CharT = typename K::CharT;
    using Params = typename K::Params;
    using Result = core::AlignResult<ScoreT>;
    static constexpr int nLayers = K::nLayers;

    explicit SystolicAligner(EngineConfig cfg = {},
                             Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {
        if (_cfg.numPe < 1)
            throw std::invalid_argument("numPe must be >= 1");
    }

    const EngineConfig &config() const { return _cfg; }
    const Params &params() const { return _params; }

    /** Cycle statistics of the most recent align() call. */
    const CycleStats &lastStats() const { return _stats; }

    /** Total cycles of the most recent align() call per the cycle model. */
    uint64_t
    lastTotalCycles() const
    {
        return totalCycles(_stats, _cfg.cycles);
    }

    /** Align one pair; returns score/optimum/traceback path. */
    Result
    align(const seq::Sequence<CharT> &query,
          const seq::Sequence<CharT> &reference)
    {
        const int qlen = query.length();
        const int rlen = reference.length();
        if (qlen > _cfg.maxQueryLength)
            throw std::invalid_argument("query exceeds MAX_QUERY_LENGTH");
        if (rlen > _cfg.maxReferenceLength)
            throw std::invalid_argument(
                "reference exceeds MAX_REFERENCE_LENGTH");

        const int npe = _cfg.numPe;
        const int band = _cfg.bandWidth;
        const auto worst = core::scoreSentinelWorst<ScoreT>(K::objective);
        const bool keep_tb = K::hasTraceback && !_cfg.skipTraceback;

        _stats = CycleStats{};
        _stats.seqLoad = busCycles(qlen) + busCycles(rlen);
        _stats.init = static_cast<uint64_t>(std::max(qlen, rlen));
        _stats.extra = static_cast<uint64_t>(
            _cfg.cycles.hostStreamCyclesPerChar) *
            static_cast<uint64_t>(qlen + rlen);

        // Init score buffers (front-end step 2); index 0 is the origin.
        std::array<std::vector<ScoreT>, nLayers> init_row, init_col;
        for (int l = 0; l < nLayers; l++) {
            auto &row = init_row[static_cast<size_t>(l)];
            auto &col = init_col[static_cast<size_t>(l)];
            row.assign(static_cast<size_t>(rlen + 1), worst);
            col.assign(static_cast<size_t>(qlen + 1), worst);
            row[0] = col[0] = K::originScore(l, _params);
            for (int j = 1; j <= rlen; j++)
                row[static_cast<size_t>(j)] = K::initRowScore(j, l, _params);
            for (int i = 1; i <= qlen; i++)
                col[static_cast<size_t>(i)] = K::initColScore(i, l, _params);
        }

        // Preserved row score buffer: scores of row (chunk * NPE), plus a
        // row stamp so banded chunks never read stale entries. A single
        // shadow generation models the hardware's read-before-write
        // register: in chunks with one active row the same PE reads row
        // i-1 from an entry it overwrites with row i one cycle earlier.
        std::array<std::vector<ScoreT>, nLayers> preserved, shadow;
        std::vector<int> preserved_row_of(static_cast<size_t>(rlen + 1), 0);
        std::vector<int> shadow_row_of(static_cast<size_t>(rlen + 1), -1);
        for (int l = 0; l < nLayers; l++) {
            preserved[static_cast<size_t>(l)] =
                init_row[static_cast<size_t>(l)];
            shadow[static_cast<size_t>(l)] =
                init_row[static_cast<size_t>(l)];
        }

        // Per-PE wavefront buffers (N-1th and N-2th wavefronts).
        std::array<std::vector<ScoreT>, nLayers> prev1, prev2, cur;
        for (int l = 0; l < nLayers; l++) {
            prev1[static_cast<size_t>(l)].assign(
                static_cast<size_t>(npe), worst);
            prev2[static_cast<size_t>(l)].assign(
                static_cast<size_t>(npe), worst);
            cur[static_cast<size_t>(l)].assign(
                static_cast<size_t>(npe), worst);
        }

        // Traceback memory: one bank per PE, address-coalesced by
        // wavefront within each chunk.
        std::vector<std::vector<core::TbPtr>> tb_mem;
        if (keep_tb)
            tb_mem.assign(static_cast<size_t>(npe), {});
        std::vector<int> chunk_base, chunk_wstart;

        // Per-PE local optimum over the eligible region.
        struct Best
        {
            ScoreT score{};
            core::Coord cell;
            bool valid = false;
        };
        std::vector<Best> best(static_cast<size_t>(npe));

        const int n_chunks = qlen > 0 ? (qlen + npe - 1) / npe : 0;
        core::PeIn<ScoreT, CharT, nLayers> in;

        for (int c = 0; c < n_chunks; c++) {
            const int row0 = c * npe + 1;
            const int rows = std::min(npe, qlen - c * npe);

            // Wavefront loop bounds; banding narrows them (Section 4 1.6).
            int w_lo = 0;
            int w_hi = rlen + rows - 2;
            if (K::banded) {
                w_lo = std::max(w_lo, row0 - band - 1);
                w_hi = std::min(w_hi, row0 + 2 * (rows - 1) + band - 1);
            }
            chunk_wstart.push_back(w_lo);
            chunk_base.push_back(
                keep_tb && !tb_mem.empty()
                    ? static_cast<int>(tb_mem[0].size()) : 0);
            if (w_lo > w_hi)
                continue;

            for (int l = 0; l < nLayers; l++) {
                std::fill(prev1[static_cast<size_t>(l)].begin(),
                          prev1[static_cast<size_t>(l)].end(), worst);
                std::fill(prev2[static_cast<size_t>(l)].begin(),
                          prev2[static_cast<size_t>(l)].end(), worst);
            }

            const int trips = w_hi - w_lo + 1;
            _stats.fillTrips += static_cast<uint64_t>(trips);
            _stats.fill += static_cast<uint64_t>(trips) *
                           static_cast<uint64_t>(K::ii) +
                           static_cast<uint64_t>(_cfg.cycles.pipelineDepth);
            _stats.chunks++;
            if (keep_tb) {
                for (auto &bank : tb_mem) {
                    bank.resize(bank.size() + static_cast<size_t>(trips));
                }
            }

            for (int w = w_lo; w <= w_hi; w++) {
                for (int p = 0; p < rows; p++) {
                    const int i = row0 + p;
                    const int j = w - p + 1;
                    const bool valid = j >= 1 && j <= rlen &&
                        (!K::banded || std::abs(i - j) <= band);
                    core::TbPtr ptr{};
                    if (!valid) {
                        for (int l = 0; l < nLayers; l++)
                            cur[static_cast<size_t>(l)]
                               [static_cast<size_t>(p)] = worst;
                    } else {
                        for (int l = 0; l < nLayers; l++) {
                            const size_t ls = static_cast<size_t>(l);
                            const size_t ps = static_cast<size_t>(p);
                            if (j == 1) {
                                in.left[ls] =
                                    init_col[ls][static_cast<size_t>(i)];
                                in.diag[ls] =
                                    init_col[ls][static_cast<size_t>(i - 1)];
                                in.up[ls] = p == 0
                                    ? preservedFetch(preserved, shadow,
                                                     preserved_row_of,
                                                     shadow_row_of, l, 1,
                                                     i - 1, worst)
                                    : prev1[ls][ps - 1];
                            } else {
                                in.left[ls] = prev1[ls][ps];
                                if (p == 0) {
                                    in.up[ls] = preservedFetch(
                                        preserved, shadow, preserved_row_of,
                                        shadow_row_of, l, j, i - 1, worst);
                                    in.diag[ls] = preservedFetch(
                                        preserved, shadow, preserved_row_of,
                                        shadow_row_of, l, j - 1, i - 1,
                                        worst);
                                } else {
                                    in.up[ls] = prev1[ls][ps - 1];
                                    in.diag[ls] = prev2[ls][ps - 1];
                                }
                            }
                        }
                        in.qryVal = query[i - 1];
                        in.refVal = reference[j - 1];
                        in.row = i;
                        in.col = j;
                        const auto out = K::peFunc(in, _params);
                        for (int l = 0; l < nLayers; l++) {
                            cur[static_cast<size_t>(l)]
                               [static_cast<size_t>(p)] =
                                out.score[static_cast<size_t>(l)];
                        }
                        ptr = out.tbPtr;

                        // Local optimum tracking (Section 5.2): strictly
                        // better only, so the per-PE best is the first
                        // optimum in (row, col) order.
                        if (eligible(i, j, qlen, rlen)) {
                            auto &b = best[static_cast<size_t>(p)];
                            const ScoreT v = out.score[0];
                            if (!b.valid ||
                                core::isBetter(K::objective, v, b.score)) {
                                b.score = v;
                                b.cell = core::Coord{i, j};
                                b.valid = true;
                            }
                        }
                    }
                    if (keep_tb) {
                        tb_mem[static_cast<size_t>(p)]
                              [static_cast<size_t>(chunk_base.back() +
                                                   (w - w_lo))] = ptr;
                    }
                    if (_cfg.trace) {
                        ScheduleEvent ev;
                        ev.chunk = c;
                        ev.wavefront = w - w_lo;
                        ev.pe = p;
                        ev.row = i;
                        ev.col = j;
                        ev.valid = valid;
                        ev.tbAddr =
                            keep_tb ? chunk_base.back() + (w - w_lo) : -1;
                        _cfg.trace->push_back(ev);
                    }
                    // Preserved-row update by the chunk's last PE; the old
                    // value drops into the shadow generation.
                    if (p == rows - 1 && j >= 1 && j <= rlen) {
                        for (int l = 0; l < nLayers; l++) {
                            const size_t ls = static_cast<size_t>(l);
                            const size_t js = static_cast<size_t>(j);
                            shadow[ls][js] = preserved[ls][js];
                            preserved[ls][js] =
                                cur[ls][static_cast<size_t>(p)];
                        }
                        shadow_row_of[static_cast<size_t>(j)] =
                            preserved_row_of[static_cast<size_t>(j)];
                        preserved_row_of[static_cast<size_t>(j)] = i;
                    }
                }
                for (int l = 0; l < nLayers; l++) {
                    std::swap(prev2[static_cast<size_t>(l)],
                              prev1[static_cast<size_t>(l)]);
                    std::swap(prev1[static_cast<size_t>(l)],
                              cur[static_cast<size_t>(l)]);
                }
            }
        }

        // Reduction over the PEs' local optima (Section 5.2).
        Result res;
        bool found = false;
        for (const auto &b : best) {
            if (!b.valid)
                continue;
            const bool better = !found ||
                core::isBetter(K::objective, b.score, res.score) ||
                (b.score == res.score &&
                 (b.cell.row < res.end.row ||
                  (b.cell.row == res.end.row &&
                   b.cell.col < res.end.col)));
            if (better) {
                res.score = b.score;
                res.end = b.cell;
                found = true;
            }
        }
        if (!found) {
            // No eligible cell was computed: empty input, or the band
            // excludes the whole eligible region. Match the full-matrix
            // reference semantics exactly: a global alignment reads the
            // (possibly sentinel/init) end cell, other strategies report
            // a zero score at the origin.
            if (K::alignKind == core::AlignmentKind::Global) {
                if (qlen == 0 && rlen == 0) {
                    res.score = K::originScore(0, _params);
                } else if (qlen == 0) {
                    res.score = init_row[0][static_cast<size_t>(rlen)];
                } else if (rlen == 0) {
                    res.score = init_col[0][static_cast<size_t>(qlen)];
                } else {
                    res.score = worst; // band excludes the end cell
                }
                res.end = core::Coord{qlen, rlen};
                if (keep_tb && (qlen == 0 || rlen == 0)) {
                    // Border-only path: the walker needs no pointers.
                    auto walk = core::walkTraceback<K>(
                        res.end, [](int, int) { return core::TbPtr{}; });
                    res.ops = std::move(walk.ops);
                    res.start = walk.start;
                    return res;
                }
            } else {
                res.score = typename K::ScoreT{};
                res.end = core::Coord{0, 0};
            }
            res.start = res.end;
            return res;
        }
        if (K::alignKind != core::AlignmentKind::Global)
            _stats.reduction = static_cast<uint64_t>(log2Ceil(npe) + 2);

        if (keep_tb) {
            auto fetch = [&](int i, int j) {
                const int c = (i - 1) / npe;
                const int p = (i - 1) % npe;
                const int w = (j - 1) + p;
                const int addr =
                    chunk_base[static_cast<size_t>(c)] +
                    (w - chunk_wstart[static_cast<size_t>(c)]);
                return tb_mem[static_cast<size_t>(p)]
                             [static_cast<size_t>(addr)];
            };
            auto walk = core::walkTraceback<K>(res.end, fetch);
            res.ops = std::move(walk.ops);
            res.start = walk.start;
            _stats.traceback = static_cast<uint64_t>(walk.steps) *
                static_cast<uint64_t>(_cfg.cycles.tracebackCyclesPerStep);
            _stats.writeback = (res.ops.size() +
                static_cast<size_t>(_cfg.cycles.writebackOpsPerCycle) - 1) /
                static_cast<size_t>(_cfg.cycles.writebackOpsPerCycle);
        } else {
            res.start = res.end;
        }
        return res;
    }

  private:
    /** Cells eligible for optimum tracking under the traceback strategy. */
    static bool
    eligible(int i, int j, int qlen, int rlen)
    {
        switch (K::alignKind) {
          case core::AlignmentKind::Global:
            return i == qlen && j == rlen;
          case core::AlignmentKind::Local:
            return true;
          case core::AlignmentKind::SemiGlobal:
            return i == qlen;
          case core::AlignmentKind::Overlap:
            return i == qlen || j == rlen;
        }
        return false;
    }

    /**
     * Preserved-row fetch guarded by row stamps: the current generation,
     * then the shadow (read-before-write) generation, else a sentinel
     * (stale entry outside a banded chunk's window).
     */
    static ScoreT
    preservedFetch(const std::array<std::vector<ScoreT>, nLayers> &preserved,
                   const std::array<std::vector<ScoreT>, nLayers> &shadow,
                   const std::vector<int> &row_of,
                   const std::vector<int> &shadow_row_of, int l, int j,
                   int expect_row, ScoreT worst)
    {
        if (row_of[static_cast<size_t>(j)] == expect_row)
            return preserved[static_cast<size_t>(l)][static_cast<size_t>(j)];
        if (shadow_row_of[static_cast<size_t>(j)] == expect_row)
            return shadow[static_cast<size_t>(l)][static_cast<size_t>(j)];
        return worst;
    }

    /** 64-bit-bus transfer cycles for a sequence of this alphabet. */
    static uint64_t
    busCycles(int len)
    {
        const int bits = CharBits<CharT>::value;
        return static_cast<uint64_t>((static_cast<int64_t>(len) * bits + 63) /
                                     64);
    }

    static int
    log2Ceil(int v)
    {
        int l = 0;
        while ((1 << l) < v)
            l++;
        return l;
    }

    EngineConfig _cfg;
    Params _params;
    CycleStats _stats;
};

} // namespace dphls::sim

#endif // DPHLS_SYSTOLIC_ENGINE_HH
