#include "host/tiling.hh"

#include <algorithm>

namespace dphls::host {

int
committedOps(const std::vector<core::AlnOp> &ops, int tile_q, int tile_r,
             int overlap, bool last_tile)
{
    const int n = static_cast<int>(ops.size());
    if (last_tile || n == 0)
        return n;

    const int keep_q = std::max(1, tile_q - overlap);
    const int keep_r = std::max(1, tile_r - overlap);
    int dq = 0, dr = 0;
    for (int k = 0; k < n; k++) {
        const auto op = ops[static_cast<size_t>(k)];
        if (op != core::AlnOp::Del)
            dq++;
        if (op != core::AlnOp::Ins)
            dr++;
        if (dq >= keep_q || dr >= keep_r)
            return k + 1;
    }
    return n;
}

} // namespace dphls::host
