/**
 * @file
 * GACT-style tiling for long-read alignment (paper Section 6.2 and
 * contribution 5).
 *
 * The device kernels operate on fixed MAX_QUERY/MAX_REFERENCE windows;
 * long alignments are handled host-side with the tiling heuristic of
 * Darwin's GACT [11]: align a TxT tile globally, commit the traceback
 * path except for the last `overlap` cells, advance the tile origin to
 * the end of the committed path, repeat. The committed path is provably
 * independent of sequence length for a fixed tile size, which is what
 * makes the approach hardware-friendly.
 */

#ifndef DPHLS_HOST_TILING_HH
#define DPHLS_HOST_TILING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/alignment.hh"
#include "host/scheduler.hh"
#include "seq/alphabet.hh"
#include "systolic/engine.hh"

namespace dphls::host {

/** Tiling parameters (GACT defaults). */
struct TilingConfig
{
    int tileSize = 512;
    int tileOverlap = 128;
    /**
     * Run each tile through the intra-pair anti-diagonal SIMD path
     * (EnginePath::DiagSimd): a tiled long read is one alignment at a
     * time, so there are no sibling pairs for inter-pair lanes and the
     * tile's own anti-diagonal parallelism is the only SIMD available.
     * Results and cycle accounting are bit-identical to the given
     * engine's path (kernels without a sweep fall back silently).
     */
    bool intraPairSimd = false;
    /**
     * Cooperative preemption flag polled between tiles (null = run to
     * completion). A tiled long read cannot overlap its stages — tile
     * t's committed traceback determines tile t+1's origin — so the
     * tile boundary is its only scheduling point: when the token is
     * requested, tiledAlign stops before the next tile and reports
     * the committed resume origin. At least one tile always runs, so
     * a resume loop is guaranteed progress.
     */
    const PreemptToken *preempt = nullptr;
};

/** Outcome of a tiled long alignment. */
struct TiledAlignment
{
    std::vector<core::AlnOp> ops; //!< full stitched path
    int tiles = 0;                //!< tiles executed
    uint64_t totalCycles = 0;     //!< device cycles across all tiles
    /** Stopped at a tile boundary on a preemption request; ops holds
     *  the committed prefix and resume* the next tile's origin. */
    bool preempted = false;
    int resumeQuery = 0;     //!< query chars committed so far
    int resumeReference = 0; //!< reference chars committed so far
};

/**
 * Truncate a tile's committed path: keep ops until the query or the
 * reference has consumed (tile - overlap) characters; returns the number
 * of ops kept (at least one, to guarantee progress).
 */
int committedOps(const std::vector<core::AlnOp> &ops, int tile_q,
                 int tile_r, int overlap, bool last_tile);

/**
 * Tiled global alignment of a long pair using the given aligner (any
 * global-strategy kernel engine).
 */
template <core::KernelSpec K>
TiledAlignment
tiledAlign(sim::SystolicAligner<K> &engine,
           const seq::Sequence<typename K::CharT> &query,
           const seq::Sequence<typename K::CharT> &reference,
           const TilingConfig &cfg)
{
    static_assert(K::alignKind == core::AlignmentKind::Global,
                  "tiling drives a global-strategy kernel per tile");
    TiledAlignment out;
    // Intra-pair SIMD: clone the engine's configuration onto the
    // anti-diagonal path and run every tile through it.
    std::unique_ptr<sim::SystolicAligner<K>> diag;
    if (cfg.intraPairSimd) {
        sim::EngineConfig ecfg = engine.config();
        ecfg.path = sim::EnginePath::DiagSimd;
        ecfg.trace = nullptr; // DiagSimd has no schedule observability
        diag = std::make_unique<sim::SystolicAligner<K>>(ecfg,
                                                         engine.params());
    }
    sim::SystolicAligner<K> &eng = diag ? *diag : engine;
    const int qlen = query.length();
    const int rlen = reference.length();
    int qi = 0;
    int rj = 0;

    while (qi < qlen || rj < rlen) {
        if (out.tiles > 0 && cfg.preempt != nullptr &&
            cfg.preempt->requested()) {
            out.preempted = true;
            break;
        }
        const int tq = std::min(cfg.tileSize, qlen - qi);
        const int tr = std::min(cfg.tileSize, rlen - rj);
        seq::Sequence<typename K::CharT> qs, rs;
        qs.chars.assign(query.chars.begin() + qi,
                        query.chars.begin() + qi + tq);
        rs.chars.assign(reference.chars.begin() + rj,
                        reference.chars.begin() + rj + tr);

        const auto res = eng.align(qs, rs);
        out.totalCycles += eng.lastTotalCycles();
        out.tiles++;

        const bool last = tq == qlen - qi && tr == rlen - rj;
        const int keep =
            committedOps(res.ops, tq, tr, cfg.tileOverlap, last);
        int dq = 0, dr = 0;
        for (int k = 0; k < keep; k++) {
            const auto op = res.ops[static_cast<size_t>(k)];
            out.ops.push_back(op);
            if (op != core::AlnOp::Del)
                dq++;
            if (op != core::AlnOp::Ins)
                dr++;
        }
        qi += dq;
        rj += dr;
        if (last)
            break;
    }
    out.resumeQuery = qi;
    out.resumeReference = rj;
    return out;
}

/**
 * Re-score a stitched global path under affine gap scoring; used to
 * compare tiled scores against the optimal untiled alignment. Params must
 * expose match/mismatch/gapOpen/gapExtend.
 */
template <typename CharT, typename ParamsT>
int64_t
rescoreAffinePath(const seq::Sequence<CharT> &query,
                  const seq::Sequence<CharT> &reference,
                  const std::vector<core::AlnOp> &ops, const ParamsT &p)
{
    int64_t score = 0;
    int qi = 0, rj = 0;
    core::AlnOp prev = core::AlnOp::Match;
    for (const auto op : ops) {
        switch (op) {
          case core::AlnOp::Match:
            score += query[qi] == reference[rj] ? p.match : p.mismatch;
            qi++;
            rj++;
            break;
          case core::AlnOp::Ins:
            score -= (prev == core::AlnOp::Ins) ? p.gapExtend : p.gapOpen;
            qi++;
            break;
          case core::AlnOp::Del:
            score -= (prev == core::AlnOp::Del) ? p.gapExtend : p.gapOpen;
            rj++;
            break;
        }
        prev = op;
    }
    return score;
}

} // namespace dphls::host

#endif // DPHLS_HOST_TILING_HH
