/**
 * @file
 * Batched multi-channel host pipeline.
 *
 * The paper's host programs (front-end step 6) keep the device's NK
 * independent channels saturated: the host shards a batch of alignment
 * jobs round-robin over the channels, each channel feeds its NB blocks
 * through a greedy arbiter, and the host threads stream results back.
 *
 * BatchPipeline packages that arrangement behind two interfaces:
 *
 *  - runAll(): blocking — shard a batch, run every job through the
 *    cycle-level systolic engine, return aggregate statistics (and
 *    optionally per-job results/cycles);
 *  - submit()/drain(): asynchronous — enqueue batches from any thread;
 *    drain() blocks until all outstanding work completes and returns the
 *    aggregate since the previous drain.
 *
 * Each channel owns one engine instance, so batched results are
 * bit-identical to sequential single-job engine runs (enforced by
 * tests/test_batch_pipeline.cc). Cycle accounting matches the device
 * throughput model: per-channel busy cycles are the makespan of its
 * NB-block arbiter, and the batch makespan is the slowest channel.
 *
 * Two host-side accelerations sit in front of the engine, both
 * result- and accounting-transparent:
 *
 *  - **SIMD lanes** (`laneWidth` > 1): each channel shard is grouped
 *    into lanes of up to 16 same-kernel jobs and run through the
 *    lockstep struct-of-arrays LaneAligner (inter-pair parallelism, the
 *    BSW-style CPU-aligner technique). Per-job results and cycle stats
 *    are bit-identical to scalar engine runs.
 *  - **Result cache** (`cacheEntries` > 0): a sharded LRU keyed on an
 *    FNV-1a digest of both sequences plus kernel params; repeated pairs
 *    replay the stored result and device cycles without touching the
 *    engine. The device model is deterministic, so accounting is
 *    unchanged.
 */

#ifndef DPHLS_HOST_BATCH_PIPELINE_HH
#define DPHLS_HOST_BATCH_PIPELINE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/alignment_stats.hh"
#include "host/result_cache.hh"
#include "host/scheduler.hh"
#include "systolic/engine.hh"
#include "systolic/lane_engine.hh"

namespace dphls::host {

/** One alignment job: a query/reference pair. */
template <typename CharT>
struct AlignmentJob
{
    seq::Sequence<CharT> query;
    seq::Sequence<CharT> reference;
};

/** Pipeline configuration: parallelism, frequency and engine options. */
struct BatchConfig
{
    int npe = 32;                  //!< PEs per systolic block
    int nb = 16;                   //!< blocks per channel (arbiter width)
    int nk = 4;                    //!< independent channels / host threads
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /** Host/DMA overhead cycles charged per alignment. */
    uint64_t hostOverheadCycles = 2000;
    /** Aggregate path-level AlignmentStats over all tracebacks. */
    bool collectPathStats = true;
    /**
     * Jobs per SIMD lane group (1 = scalar engine per job; 8 or 16 are
     * the intended widths, capped at LaneAligner::maxLanes). Per-job
     * results and accounting are identical either way.
     */
    int laneWidth = 1;
    /**
     * Result-cache capacity in entries; 0 (the default) disables the
     * cache. Enable it for workloads with repeated pairs (all-vs-all
     * search, mapping seeds) — on all-distinct batches it only costs
     * hashing plus result copies into the LRU.
     */
    size_t cacheEntries = 0;
    /** Result-cache shard count (lock granularity). */
    size_t cacheShards = 8;
};

/** Per-channel accounting from one drained epoch. */
struct ChannelStats
{
    uint64_t busyCycles = 0;  //!< makespan of the channel's NB blocks
    uint64_t totalCycles = 0; //!< sum of job cycles on this channel
    int alignments = 0;       //!< jobs this channel processed
};

/** Aggregate outcome of one runAll() / drain() epoch. */
struct BatchStats
{
    std::vector<ChannelStats> channels;
    uint64_t makespanCycles = 0; //!< slowest channel's busy cycles
    uint64_t totalCycles = 0;    //!< sum over all alignments
    int alignments = 0;
    double seconds = 0;          //!< makespan / fmax
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;
    /** Path-level statistics summed over every traceback in the epoch. */
    core::AlignmentStats paths;
};

/** Round-robin shard of @p jobs job indices over @p channels channels. */
std::vector<std::vector<int>> shardRoundRobin(int jobs, int channels);

/** Sum the counting fields of @p add into @p into. */
void mergePathStats(core::AlignmentStats &into,
                    const core::AlignmentStats &add);

/**
 * Fill the derived fields (makespan, totals, seconds, throughput) of
 * @p stats from its per-channel accounting.
 */
void finalizeBatchStats(BatchStats &stats, double fmax_mhz);

/**
 * Batched multi-channel pipeline running kernel @p K.
 *
 * Thread-safety: submit() may be called concurrently from multiple
 * producers, but every producer must be quiesced (joined or otherwise
 * done submitting) before drain()/runAll() is called — a submit()
 * overlapping a drain() races the epoch accounting.
 */
template <core::KernelSpec K>
class BatchPipeline
{
  public:
    using CharT = typename K::CharT;
    using ScoreT = typename K::ScoreT;
    using Result = core::AlignResult<ScoreT>;
    using Job = AlignmentJob<CharT>;
    using Params = typename K::Params;

    explicit BatchPipeline(BatchConfig cfg = {},
                           Params params = K::defaultParams())
        : _cfg(cfg), _params(params),
          _cache(cfg.cacheEntries, cfg.cacheShards),
          _pool(std::max(1, cfg.nk))
    {
        _cfg.nk = std::max(1, _cfg.nk);
        _cfg.nb = std::max(1, _cfg.nb);
        _cfg.laneWidth = std::clamp(_cfg.laneWidth, 1,
                                    sim::LaneAligner<K>::maxLanes);
        sim::EngineConfig ecfg;
        ecfg.numPe = _cfg.npe;
        ecfg.bandWidth = _cfg.bandWidth;
        ecfg.maxQueryLength = _cfg.maxQueryLength;
        ecfg.maxReferenceLength = _cfg.maxReferenceLength;
        ecfg.skipTraceback = _cfg.skipTraceback;
        ecfg.cycles = _cfg.cycles;
        _channels.reserve(static_cast<size_t>(_cfg.nk));
        for (int c = 0; c < _cfg.nk; c++)
            _channels.push_back(std::make_unique<Channel>(
                ecfg, _params, _cfg.nb, _cfg.laneWidth));
    }

    const BatchConfig &config() const { return _cfg; }
    int channelCount() const { return _cfg.nk; }

    /** Result-cache hit/miss/eviction counters (lifetime totals). */
    CacheCounters cacheCounters() const { return _cache.counters(); }

    /**
     * Enqueue a batch for asynchronous execution. The batch is sharded
     * round-robin over the channels; each channel shard becomes one
     * thread-pool task. Safe to call from multiple producer threads.
     */
    void
    submit(std::vector<Job> jobs)
    {
        auto batch = std::make_shared<Batch>();
        batch->jobs = std::move(jobs);
        enqueue(std::move(batch));
    }

    /**
     * Block until every submitted batch has completed; return the
     * aggregate statistics since the previous drain and reset the
     * accounting. Optionally collect per-job results and device cycles,
     * ordered by submission.
     */
    BatchStats
    drain(std::vector<Result> *results = nullptr,
          std::vector<uint64_t> *job_cycles = nullptr)
    {
        _pool.wait();

        BatchStats stats;
        stats.channels.reserve(_channels.size());
        for (auto &ch : _channels) {
            stats.channels.push_back(ch->stats);
            mergePathStats(stats.paths, ch->paths);
            ch->stats = ChannelStats{};
            ch->paths = core::AlignmentStats{};
            std::fill(ch->blockFree.begin(), ch->blockFree.end(), 0);
        }
        finalizeBatchStats(stats, _cfg.fmaxMhz);

        std::vector<std::shared_ptr<Batch>> drained;
        {
            std::lock_guard lock(_batchesMutex);
            drained.swap(_batches);
        }
        if (results) {
            results->clear();
            for (const auto &b : drained) {
                results->insert(results->end(),
                                std::make_move_iterator(b->results.begin()),
                                std::make_move_iterator(b->results.end()));
            }
        }
        if (job_cycles) {
            job_cycles->clear();
            for (const auto &b : drained) {
                job_cycles->insert(job_cycles->end(), b->cycles.begin(),
                                   b->cycles.end());
            }
        }
        return stats;
    }

    /**
     * Blocking convenience: run one batch to completion. Must not race
     * with concurrent submit()/drain() on the same pipeline.
     */
    BatchStats
    runAll(const std::vector<Job> &jobs,
           std::vector<Result> *results = nullptr,
           std::vector<uint64_t> *job_cycles = nullptr)
    {
        auto batch = std::make_shared<Batch>();
        // Non-owning view: runAll() blocks until the work completes, so
        // the caller's vector outlives every task.
        batch->view = &jobs;
        enqueue(std::move(batch));
        return drain(results, job_cycles);
    }

  private:
    /** One submitted batch and its per-job output slots. */
    struct Batch
    {
        std::vector<Job> jobs;           //!< owned (submit path)
        const std::vector<Job> *view = nullptr; //!< borrowed (runAll path)
        std::vector<Result> results;
        std::vector<uint64_t> cycles;

        const std::vector<Job> &all() const { return view ? *view : jobs; }
    };

    /** One device channel: engine, NB-block arbiter and accounting. */
    struct Channel
    {
        Channel(const sim::EngineConfig &ecfg, const Params &params, int nb,
                int lane_width)
            : engine(ecfg, params),
              blockFree(static_cast<size_t>(nb), 0)
        {
            if (lane_width > 1)
                lanes = std::make_unique<sim::LaneAligner<K>>(ecfg, params);
        }

        std::mutex mutex; //!< serializes shards from different batches
        sim::SystolicAligner<K> engine;
        std::unique_ptr<sim::LaneAligner<K>> lanes; //!< laneWidth > 1 only
        std::vector<uint64_t> blockFree;
        ChannelStats stats;
        core::AlignmentStats paths;
    };

    void
    enqueue(std::shared_ptr<Batch> batch)
    {
        const auto &jobs = batch->all();
        const int n = static_cast<int>(jobs.size());
        batch->results.resize(static_cast<size_t>(n));
        batch->cycles.assign(static_cast<size_t>(n), 0);
        {
            std::lock_guard lock(_batchesMutex);
            _batches.push_back(batch);
        }
        auto shards = shardRoundRobin(n, _cfg.nk);
        for (int c = 0; c < _cfg.nk; c++) {
            auto shard = std::move(shards[static_cast<size_t>(c)]);
            if (shard.empty())
                continue;
            Channel *ch = _channels[static_cast<size_t>(c)].get();
            _pool.submit([this, batch, ch, shard = std::move(shard)] {
                runShard(*batch, *ch, shard);
            });
        }
    }

    void
    runShard(Batch &batch, Channel &ch, const std::vector<int> &shard)
    {
        std::lock_guard lock(ch.mutex);
        const auto &jobs = batch.all();

        // Phase 1 — functional results and per-job device cycles, via
        // the result cache, the SIMD lane engine, or the scalar engine.
        // Device cycles are independent of block placement, so the
        // arbiter accounting can run as a separate phase below. Cache
        // lookups interleave with lane-group flushes so a pair repeated
        // later in the same shard hits once its first instance's group
        // has been computed and inserted.
        std::vector<PairHash> keys;
        if (_cache.enabled())
            keys.resize(shard.size());
        const auto finishJob = [&](size_t k, Result res,
                                   uint64_t engine_cycles) {
            const int idx = shard[k];
            if (_cache.enabled())
                _cache.insert(keys[k], res, engine_cycles);
            batch.cycles[static_cast<size_t>(idx)] =
                engine_cycles + _cfg.hostOverheadCycles;
            batch.results[static_cast<size_t>(idx)] = std::move(res);
        };

        std::vector<size_t> group; // shard positions awaiting the engine
        const size_t width = ch.lanes && _cfg.laneWidth > 1
            ? static_cast<size_t>(_cfg.laneWidth) : 1;
        group.reserve(width);
        const auto flushGroup = [&]() {
            if (group.empty())
                return;
            if (ch.lanes && group.size() > 1) {
                using Lane = typename sim::LaneAligner<K>::LanePair;
                std::vector<Lane> lanes(group.size());
                for (size_t m = 0; m < group.size(); m++) {
                    const auto &job =
                        jobs[static_cast<size_t>(shard[group[m]])];
                    lanes[m] = Lane{&job.query, &job.reference};
                }
                auto results = ch.lanes->alignLanes(lanes);
                for (size_t m = 0; m < group.size(); m++) {
                    finishJob(group[m], std::move(results[m]),
                              ch.lanes->laneTotalCycles(
                                  static_cast<int>(m)));
                }
            } else {
                for (const size_t k : group) {
                    const auto &job =
                        jobs[static_cast<size_t>(shard[k])];
                    Result res =
                        ch.engine.align(job.query, job.reference);
                    finishJob(k, std::move(res),
                              ch.engine.lastTotalCycles());
                }
            }
            group.clear();
        };

        for (size_t k = 0; k < shard.size(); k++) {
            const int idx = shard[k];
            const auto &job = jobs[static_cast<size_t>(idx)];
            if (_cache.enabled()) {
                keys[k] = pairHash(job.query, job.reference, _params);
                if (auto hit = _cache.lookup(keys[k])) {
                    batch.results[static_cast<size_t>(idx)] =
                        std::move(hit->result);
                    batch.cycles[static_cast<size_t>(idx)] =
                        hit->cycles + _cfg.hostOverheadCycles;
                    continue;
                }
            }
            group.push_back(k);
            if (group.size() >= width)
                flushGroup();
        }
        flushGroup();

        // Phase 2 — greedy NB-block arbiter and accounting, in shard
        // order (identical to the interleaved accounting the scalar
        // loop used to do).
        for (int idx : shard) {
            const auto &job = jobs[static_cast<size_t>(idx)];
            const auto &res = batch.results[static_cast<size_t>(idx)];
            const uint64_t cycles = batch.cycles[static_cast<size_t>(idx)];

            // Greedy arbiter: the job lands on the earliest-free block.
            auto it = std::min_element(ch.blockFree.begin(),
                                       ch.blockFree.end());
            *it += cycles;
            ch.stats.busyCycles = *std::max_element(ch.blockFree.begin(),
                                                    ch.blockFree.end());
            ch.stats.totalCycles += cycles;
            ch.stats.alignments++;

            if (_cfg.collectPathStats && !res.ops.empty()) {
                mergePathStats(
                    ch.paths, core::computeStats(job.query, job.reference,
                                                 res.ops, res.start));
            }
        }
    }

    BatchConfig _cfg;
    Params _params;
    ShardedResultCache<Result> _cache;
    std::mutex _batchesMutex;
    std::vector<std::shared_ptr<Batch>> _batches;
    std::vector<std::unique_ptr<Channel>> _channels;
    // Declared last: ~ThreadPool drains every queued shard task, so the
    // pool must be destroyed before the channels/batches those tasks
    // reference (pipeline destroyed with submitted-but-undrained work).
    ThreadPool _pool;
};

} // namespace dphls::host

#endif // DPHLS_HOST_BATCH_PIPELINE_HH
