/**
 * @file
 * Compatibility facade for the batched multi-channel host pipeline.
 *
 * BatchPipeline is now an alias of the streaming executor
 * (host/stream_pipeline.hh): the historical blocking API — runAll(),
 * fire-and-forget submit() (the returned ticket may be ignored) and the
 * epoch-aggregating drain() — is a strict subset of StreamPipeline's.
 * The old restriction that a submit() must not overlap a drain() is
 * gone: accounting is per-ticket, so concurrent submissions land either
 * wholly in the drained epoch or wholly in the next one.
 */

#ifndef DPHLS_HOST_BATCH_PIPELINE_HH
#define DPHLS_HOST_BATCH_PIPELINE_HH

#include "host/stream_pipeline.hh"

namespace dphls::host {

template <core::KernelSpec K>
using BatchPipeline = StreamPipeline<K>;

} // namespace dphls::host

#endif // DPHLS_HOST_BATCH_PIPELINE_HH
