/**
 * @file
 * Modeled ticket-latency probe for two-class scheduling workloads.
 *
 * Shared by `dphls_align --two-class-demo` and bench_engine_micro's
 * `priority_scheduling` section: both queue an interactive/bulk ticket
 * mix on a paused one-channel pipeline, release it, and record each
 * ticket's completion latency as the channel's cumulative busy cycles
 * at that completion converted at fmax — arrival is the shared release
 * instant, so the latency is pure modeled queueing + service time and
 * deterministic across runs and machines.
 */

#ifndef DPHLS_HOST_LATENCY_PROBE_HH
#define DPHLS_HOST_LATENCY_PROBE_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dphls::host {

/**
 * p-th percentile (p in [0, 1], nearest-rank) of @p values; 0 when
 * empty. p <= 0 returns the minimum, p >= 1 the maximum.
 */
inline double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const size_t rank = static_cast<size_t>(std::max(
        1.0, std::ceil(p * static_cast<double>(values.size()))));
    return values[std::min(values.size() - 1, rank - 1)];
}

/**
 * Accumulates per-class modeled completion latencies. Call record()
 * from each ticket's completion callback with the ticket's makespan
 * cycles; thread-safe, read the vectors only after every ticket has
 * completed.
 */
class TwoClassLatencyProbe
{
  public:
    explicit TwoClassLatencyProbe(double fmax_mhz) : _fmaxMhz(fmax_mhz) {}

    void
    record(uint64_t makespan_cycles, bool interactive)
    {
        std::lock_guard lock(_mutex);
        _cumCycles += makespan_cycles;
        const double seconds =
            static_cast<double>(_cumCycles) / (_fmaxMhz * 1e6);
        (interactive ? _interactive : _bulk).push_back(seconds);
    }

    const std::vector<double> &interactive() const { return _interactive; }
    const std::vector<double> &bulk() const { return _bulk; }

  private:
    double _fmaxMhz;
    std::mutex _mutex;
    uint64_t _cumCycles = 0;
    std::vector<double> _interactive, _bulk;
};

} // namespace dphls::host

#endif // DPHLS_HOST_LATENCY_PROBE_HH
