/**
 * @file
 * Modeled ticket-latency probe for two-class scheduling workloads.
 *
 * Shared by `dphls_align --two-class-demo` and bench_engine_micro's
 * `priority_scheduling` section: both queue an interactive/bulk ticket
 * mix on a paused one-channel pipeline, release it, and record each
 * ticket's completion latency as the channel's cumulative busy cycles
 * at that completion converted at fmax — arrival is the shared release
 * instant, so the latency is pure modeled queueing + service time and
 * deterministic across runs and machines.
 */

#ifndef DPHLS_HOST_LATENCY_PROBE_HH
#define DPHLS_HOST_LATENCY_PROBE_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dphls::host {

/**
 * p-th percentile (nearest-rank) of @p values; 0 when empty. @p p is
 * clamped into [0, 1] (non-finite p included): p <= 0 returns the
 * minimum, p >= 1 the maximum, and a single-element vector returns its
 * element for every p. O(n) via std::nth_element on the caller's
 * vector — the hot two-class probes call this repeatedly per report,
 * so the old by-value copy + full sort per call was pure overhead. The
 * vector is partially reordered (any permutation yields the same
 * percentile), never resized.
 */
inline double
percentile(std::vector<double> &values, double p)
{
    if (values.empty())
        return 0;
    if (!(p > 0)) // also catches NaN
        p = 0;
    else if (p > 1)
        p = 1;
    const size_t n = values.size();
    const size_t rank = std::min(
        n, static_cast<size_t>(std::max(
               1.0, std::ceil(p * static_cast<double>(n)))));
    const auto nth = values.begin() +
                     static_cast<std::ptrdiff_t>(rank - 1);
    std::nth_element(values.begin(), nth, values.end());
    return *nth;
}

/** percentile() over a temporary (single-use callers). */
inline double
percentile(std::vector<double> &&values, double p)
{
    return percentile(values, p);
}

/**
 * Accumulates per-class modeled completion latencies. Call record()
 * from each ticket's completion callback with the ticket's makespan
 * cycles; thread-safe, read the vectors only after every ticket has
 * completed.
 */
class TwoClassLatencyProbe
{
  public:
    explicit TwoClassLatencyProbe(double fmax_mhz) : _fmaxMhz(fmax_mhz) {}

    void
    record(uint64_t makespan_cycles, bool interactive)
    {
        std::lock_guard lock(_mutex);
        _cumCycles += makespan_cycles;
        const double seconds =
            static_cast<double>(_cumCycles) / (_fmaxMhz * 1e6);
        (interactive ? _interactive : _bulk).push_back(seconds);
    }

    const std::vector<double> &interactive() const { return _interactive; }
    const std::vector<double> &bulk() const { return _bulk; }

  private:
    double _fmaxMhz;
    std::mutex _mutex;
    uint64_t _cumCycles = 0;
    std::vector<double> _interactive, _bulk;
};

} // namespace dphls::host

#endif // DPHLS_HOST_LATENCY_PROBE_HH
