#include "host/batch_pipeline.hh"

namespace dphls::host {

std::vector<std::vector<int>>
shardRoundRobin(int jobs, int channels)
{
    std::vector<std::vector<int>> shards(
        static_cast<size_t>(std::max(1, channels)));
    if (jobs <= 0)
        return shards;
    const int nk = static_cast<int>(shards.size());
    for (auto &s : shards)
        s.reserve(static_cast<size_t>((jobs + nk - 1) / nk));
    for (int i = 0; i < jobs; i++)
        shards[static_cast<size_t>(i % nk)].push_back(i);
    return shards;
}

void
mergePathStats(core::AlignmentStats &into, const core::AlignmentStats &add)
{
    into.matches += add.matches;
    into.mismatches += add.mismatches;
    into.insertions += add.insertions;
    into.deletions += add.deletions;
    into.gapOpens += add.gapOpens;
    into.columns += add.columns;
}

void
finalizeBatchStats(BatchStats &stats, double fmax_mhz)
{
    stats.makespanCycles = 0;
    stats.totalCycles = 0;
    stats.alignments = 0;
    for (const auto &ch : stats.channels) {
        stats.makespanCycles = std::max(stats.makespanCycles, ch.busyCycles);
        stats.totalCycles += ch.totalCycles;
        stats.alignments += ch.alignments;
    }
    stats.seconds =
        static_cast<double>(stats.makespanCycles) / (fmax_mhz * 1e6);
    stats.alignsPerSec =
        stats.seconds > 0 ? stats.alignments / stats.seconds : 0.0;
    stats.cyclesPerAlign =
        stats.alignments > 0
            ? static_cast<double>(stats.totalCycles) / stats.alignments
            : 0.0;
}

} // namespace dphls::host
