#include "host/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <utility>

namespace dphls::host {

StageWorker::StageWorker(std::function<void()> fn)
    : _thread(std::move(fn))
{}

StageWorker::~StageWorker()
{
    join();
}

void
StageWorker::join()
{
    if (_thread.joinable())
        _thread.join();
}

ThreadPool::ThreadPool(int threads, int aging_every)
    : _agingEvery(std::max(0, aging_every))
{
    const int n = std::max(1, threads);
    _workers.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(_mutex);
        _stop = true;
        // Notify while holding the lock: a waiter woken between unlock
        // and notify could otherwise finish and destroy the CV (the
        // notify-after-unlock race class).
        _cv.notify_all();
    }
    for (auto &w : _workers)
        w.join();
}

bool
ThreadPool::runsBefore(const Entry &a, const Entry &b)
{
    if (a.priority != b.priority)
        return a.priority > b.priority;
    if (a.deadline != b.deadline)
        return a.deadline < b.deadline;
    return a.seq < b.seq;
}

void
ThreadPool::submit(std::function<void()> task)
{
    submit(std::move(task), TaskOptions{});
}

void
ThreadPool::submit(std::function<void()> task, const TaskOptions &options)
{
    {
        std::unique_lock lock(_mutex);
        _tasks.push_back(Entry{options.priority, options.deadlineSeconds,
                               _nextSeq++, std::move(task)});
        std::push_heap(_tasks.begin(), _tasks.end(),
                       [](const Entry &a, const Entry &b) {
                           return runsBefore(b, a);
                       });
        _cv.notify_one();
    }
}

void
ThreadPool::wait()
{
    std::unique_lock lock(_mutex);
    _idleCv.wait(lock, [this] { return _tasks.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(_mutex);
            _cv.wait(lock, [this] { return _stop || !_tasks.empty(); });
            if (_stop && _tasks.empty())
                return;
            _pops++;
            if (_agingEvery > 0 && _tasks.size() > 1 &&
                _pops % static_cast<uint64_t>(_agingEvery) == 0) {
                // Aging pop: serve the oldest submission so bulk tasks
                // keep a latency bound under saturating high-priority
                // traffic. The heap order is restored afterwards.
                auto oldest = std::min_element(
                    _tasks.begin(), _tasks.end(),
                    [](const Entry &a, const Entry &b) {
                        return a.seq < b.seq;
                    });
                task = std::move(oldest->fn);
                *oldest = std::move(_tasks.back());
                _tasks.pop_back();
                std::make_heap(_tasks.begin(), _tasks.end(),
                               [](const Entry &a, const Entry &b) {
                                   return runsBefore(b, a);
                               });
            } else {
                std::pop_heap(_tasks.begin(), _tasks.end(),
                              [](const Entry &a, const Entry &b) {
                                  return runsBefore(b, a);
                              });
                task = std::move(_tasks.back().fn);
                _tasks.pop_back();
            }
            _active++;
        }
        task();
        {
            std::unique_lock lock(_mutex);
            _active--;
            if (_tasks.empty() && _active == 0)
                _idleCv.notify_all();
        }
    }
}

void
parallelFor(int n, int threads, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    const int t = std::max(1, std::min(threads, n));
    if (t == 1) {
        for (int i = 0; i < n; i++)
            fn(i);
        return;
    }
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(t));
    for (int w = 0; w < t; w++) {
        pool.emplace_back([&] {
            for (;;) {
                const int i = next.fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (auto &th : pool)
        th.join();
}

} // namespace dphls::host
