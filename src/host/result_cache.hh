/**
 * @file
 * Sharded LRU cache of alignment results keyed on sequence-pair hashes.
 *
 * All-vs-all protein search and seed-chain mapping workloads repeat
 * query/reference pairs; the device model is deterministic, so a
 * repeated pair can skip the engine entirely and replay the stored
 * result and device cycles (accounting stays bit-identical because the
 * engine would have produced exactly the same numbers).
 *
 * Keys are 128 bits: two independent FNV-1a passes (different offset
 * basis and a post-mix) over the raw character bytes of both sequences,
 * their lengths as domain separators, the kernel parameter block, and a
 * caller-supplied configuration salt (the backends derive it from the
 * effective EngineConfig scoring/band fields, so two backends sharing
 * one cache with different band widths or cycle options can never alias
 * to each other's results). The full key is stored and compared on
 * lookup, so a 64-bit collision cannot alias results. The cache is
 * sharded by key to keep channel threads from serializing on one mutex.
 */

#ifndef DPHLS_HOST_RESULT_CACHE_HH
#define DPHLS_HOST_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "seq/alphabet.hh"

namespace dphls::host {

/** 128-bit cache key (two independent 64-bit digests). */
struct PairHash
{
    uint64_t h1 = 0;
    uint64_t h2 = 0;

    bool operator==(const PairHash &) const = default;
};

namespace detail {

constexpr uint64_t fnvPrime = 1099511628211ULL;
constexpr uint64_t fnvBasis1 = 14695981039346656037ULL; // FNV-1a offset
constexpr uint64_t fnvBasis2 = 0x9e3779b97f4a7c15ULL;   // independent seed

inline void
fnvMix(PairHash &h, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; i++) {
        h.h1 = (h.h1 ^ p[i]) * fnvPrime;
        h.h2 = (h.h2 ^ (p[i] + 0x9eU)) * fnvPrime;
    }
}

} // namespace detail

/**
 * Stable FNV-1a digest of an alignment job: both sequences' character
 * bytes plus the kernel parameter block and a configuration salt
 * (engineConfigSalt in host/backend.hh digests the result-affecting
 * EngineConfig fields — band width, NPE, maxima, traceback and cycle
 * options — so entries from differently-configured backends sharing a
 * cache cannot alias). Character and parameter types must be trivially
 * copyable (all shipped alphabets and kernels are); a
 * non-trivially-copyable Params is skipped — safe because a cache
 * lives inside one pipeline whose params never change.
 */
template <typename CharT, typename Params>
PairHash
pairHash(const seq::Sequence<CharT> &query,
         const seq::Sequence<CharT> &reference, const Params &params,
         uint64_t config_salt = 0)
{
    static_assert(std::is_trivially_copyable_v<CharT>,
                  "alphabet characters must be raw-byte hashable");
    PairHash h{detail::fnvBasis1, detail::fnvBasis2};
    detail::fnvMix(h, &config_salt, sizeof(config_salt));
    const uint64_t qlen = static_cast<uint64_t>(query.length());
    const uint64_t rlen = static_cast<uint64_t>(reference.length());
    detail::fnvMix(h, &qlen, sizeof(qlen));
    if (qlen > 0)
        detail::fnvMix(h, query.chars.data(), query.chars.size() *
                                                  sizeof(CharT));
    detail::fnvMix(h, &rlen, sizeof(rlen));
    if (rlen > 0)
        detail::fnvMix(h, reference.chars.data(),
                       reference.chars.size() * sizeof(CharT));
    if constexpr (std::is_trivially_copyable_v<Params>)
        detail::fnvMix(h, &params, sizeof(Params));
    return h;
}

/** Cache hit/miss counters (monotonic over the cache's lifetime). */
struct CacheCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/**
 * Sharded LRU map from PairHash to (result, device cycles). Value type
 * @p Result is copied out on hit; thread-safe per shard.
 */
template <typename Result>
class ShardedResultCache
{
  public:
    struct Entry
    {
        Result result;
        uint64_t cycles = 0;
    };

    /** @p capacity total entries over @p shards shards; 0 disables. */
    explicit ShardedResultCache(size_t capacity, size_t shards = 8)
        : _shards(std::max<size_t>(1, shards))
    {
        const size_t per =
            capacity == 0 ? 0
                          : std::max<size_t>(1, capacity / _shards.size());
        for (auto &s : _shards)
            s.capacity = per;
    }

    bool enabled() const { return _shards[0].capacity > 0; }

    /** Copy out the entry for @p key, refreshing its LRU position. */
    std::optional<Entry>
    lookup(const PairHash &key)
    {
        if (!enabled())
            return std::nullopt;
        Shard &s = shardOf(key);
        std::lock_guard lock(s.mutex);
        auto it = s.index.find(key);
        if (it == s.index.end()) {
            s.misses.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        s.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second->entry;
    }

    /** Insert (or refresh) @p key; evicts the shard's LRU tail. */
    void
    insert(const PairHash &key, Result result, uint64_t cycles)
    {
        if (!enabled())
            return;
        Shard &s = shardOf(key);
        std::lock_guard lock(s.mutex);
        auto it = s.index.find(key);
        if (it != s.index.end()) {
            it->second->entry = Entry{std::move(result), cycles};
            s.lru.splice(s.lru.begin(), s.lru, it->second);
            return;
        }
        s.lru.push_front(Node{key, Entry{std::move(result), cycles}});
        s.index.emplace(key, s.lru.begin());
        if (s.lru.size() > s.capacity) {
            s.index.erase(s.lru.back().key);
            s.lru.pop_back();
            s.evictions.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Aggregate counters over all shards. */
    CacheCounters
    counters() const
    {
        CacheCounters c;
        for (const auto &s : _shards) {
            c.hits += s.hits.load(std::memory_order_relaxed);
            c.misses += s.misses.load(std::memory_order_relaxed);
            c.evictions += s.evictions.load(std::memory_order_relaxed);
        }
        return c;
    }

    /** Entries currently resident (over all shards). */
    size_t
    size() const
    {
        size_t n = 0;
        for (const auto &s : _shards) {
            std::lock_guard lock(s.mutex);
            n += s.lru.size();
        }
        return n;
    }

  private:
    struct Node
    {
        PairHash key;
        Entry entry;
    };

    struct KeyHasher
    {
        size_t operator()(const PairHash &k) const
        {
            return static_cast<size_t>(k.h1 ^ (k.h2 >> 1));
        }
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Node> lru; //!< front = most recent
        std::unordered_map<PairHash, typename std::list<Node>::iterator,
                           KeyHasher>
            index;
        size_t capacity = 0;
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        std::atomic<uint64_t> evictions{0};
    };

    Shard &
    shardOf(const PairHash &key)
    {
        return _shards[static_cast<size_t>(key.h2) % _shards.size()];
    }

    std::vector<Shard> _shards;
};

} // namespace dphls::host

#endif // DPHLS_HOST_RESULT_CACHE_HH
