/**
 * @file
 * The device-level throughput model: NK channels x NB blocks.
 *
 * Paper front-end step 5 exposes three parallelism knobs: NPE (wavefront
 * parallelism inside one block), NB (blocks sharing one arbiter within a
 * kernel) and NK (independent kernels, each with its own host channel).
 * The device processes NB x NK alignments concurrently; the host keeps
 * the channels fed with batches from NK threads (step 6).
 *
 * This model simulates that arrangement: alignments are distributed
 * round-robin over channels; within a channel a greedy arbiter hands the
 * next alignment to the earliest-free block. Functional results come from
 * the cycle-level systolic engine; the makespan in cycles plus the
 * achieved frequency yields alignments/second, matching the paper's
 * throughput methodology (Section 6.2).
 */

#ifndef DPHLS_HOST_DEVICE_MODEL_HH
#define DPHLS_HOST_DEVICE_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "host/scheduler.hh"
#include "systolic/engine.hh"

namespace dphls::host {

/** One alignment job: a query/reference pair. */
template <typename CharT>
struct AlignmentJob
{
    seq::Sequence<CharT> query;
    seq::Sequence<CharT> reference;
};

/** Device configuration: parallelism, frequency and engine options. */
struct DeviceConfig
{
    int npe = 32;
    int nb = 16;
    int nk = 4;
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /**
     * Host/DMA overhead cycles charged per alignment (OpenCL invocation,
     * batching and PCIe transfers amortized over a batch).
     */
    uint64_t hostOverheadCycles = 2000;
};

/** Aggregate outcome of one batched device run. */
struct DeviceRunStats
{
    uint64_t makespanCycles = 0;   //!< slowest block's busy cycles
    uint64_t totalCycles = 0;      //!< sum over all alignments
    double seconds = 0;            //!< makespan / fmax
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;     //!< mean per-alignment device cycles
    int alignments = 0;
};

/** A simulated DP-HLS device running kernel @p K. */
template <core::KernelSpec K>
class DeviceModel
{
  public:
    using CharT = typename K::CharT;
    using Result = core::AlignResult<typename K::ScoreT>;
    using Job = AlignmentJob<CharT>;

    explicit DeviceModel(DeviceConfig cfg = {},
                         typename K::Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {}

    const DeviceConfig &config() const { return _cfg; }

    /**
     * Run a batch of jobs; optionally collect per-job results (indexed
     * like @p jobs).
     */
    DeviceRunStats
    run(const std::vector<Job> &jobs, std::vector<Result> *results = nullptr)
    {
        const int n = static_cast<int>(jobs.size());
        if (results)
            results->resize(static_cast<size_t>(n));

        std::vector<uint64_t> job_cycles(static_cast<size_t>(n), 0);

        // NK channels run concurrently, each fed by one host thread; the
        // jobs are distributed round-robin over channels (step 6).
        std::vector<std::vector<int>> channel_jobs(
            static_cast<size_t>(_cfg.nk));
        for (int i = 0; i < n; i++)
            channel_jobs[static_cast<size_t>(i % _cfg.nk)].push_back(i);

        std::vector<uint64_t> channel_makespan(
            static_cast<size_t>(_cfg.nk), 0);

        parallelFor(_cfg.nk, _cfg.nk, [&](int ch) {
            sim::EngineConfig ecfg;
            ecfg.numPe = _cfg.npe;
            ecfg.bandWidth = _cfg.bandWidth;
            ecfg.maxQueryLength = _cfg.maxQueryLength;
            ecfg.maxReferenceLength = _cfg.maxReferenceLength;
            ecfg.skipTraceback = _cfg.skipTraceback;
            ecfg.cycles = _cfg.cycles;
            sim::SystolicAligner<K> engine(ecfg, _params);

            // Greedy arbiter: next job goes to the earliest-free block.
            std::vector<uint64_t> block_free(
                static_cast<size_t>(_cfg.nb), 0);
            for (int idx : channel_jobs[static_cast<size_t>(ch)]) {
                const auto &job = jobs[static_cast<size_t>(idx)];
                Result res = engine.align(job.query, job.reference);
                const uint64_t cycles =
                    engine.lastTotalCycles() + _cfg.hostOverheadCycles;
                job_cycles[static_cast<size_t>(idx)] = cycles;
                auto it = std::min_element(block_free.begin(),
                                           block_free.end());
                *it += cycles;
                if (results)
                    (*results)[static_cast<size_t>(idx)] = std::move(res);
            }
            channel_makespan[static_cast<size_t>(ch)] = *std::max_element(
                block_free.begin(), block_free.end());
        });

        DeviceRunStats stats;
        stats.alignments = n;
        for (auto c : job_cycles)
            stats.totalCycles += c;
        stats.makespanCycles = *std::max_element(channel_makespan.begin(),
                                                 channel_makespan.end());
        stats.seconds =
            static_cast<double>(stats.makespanCycles) / (_cfg.fmaxMhz * 1e6);
        stats.alignsPerSec =
            stats.seconds > 0 ? n / stats.seconds : 0.0;
        stats.cyclesPerAlign =
            n > 0 ? static_cast<double>(stats.totalCycles) / n : 0.0;
        return stats;
    }

  private:
    DeviceConfig _cfg;
    typename K::Params _params;
};

} // namespace dphls::host

#endif // DPHLS_HOST_DEVICE_MODEL_HH
