/**
 * @file
 * The device-level throughput model: NK channels x NB blocks.
 *
 * Paper front-end step 5 exposes three parallelism knobs: NPE (wavefront
 * parallelism inside one block), NB (blocks sharing one arbiter within a
 * kernel) and NK (independent kernels, each with its own host channel).
 * The device processes NB x NK alignments concurrently; the host keeps
 * the channels fed with batches from its worker threads (step 6).
 *
 * This model simulates that arrangement: alignments are distributed
 * round-robin over channels; within a channel a greedy arbiter hands the
 * next alignment to the earliest-free block. Functional results come from
 * the cycle-level systolic engine; the makespan in cycles plus the
 * achieved frequency yields alignments/second, matching the paper's
 * throughput methodology (Section 6.2). The execution itself runs on the
 * streaming executor (host/stream_pipeline.hh); one ticket per run().
 */

#ifndef DPHLS_HOST_DEVICE_MODEL_HH
#define DPHLS_HOST_DEVICE_MODEL_HH

#include <cstdint>
#include <vector>

#include "host/stream_pipeline.hh"
#include "systolic/engine.hh"

namespace dphls::host {

/** Device configuration: parallelism, frequency and engine options. */
struct DeviceConfig
{
    int npe = 32;
    int nb = 16;
    int nk = 4;
    /** Host worker threads (0 = one per channel); see BatchConfig. */
    int threads = 0;
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /**
     * Host/DMA overhead cycles charged per alignment (OpenCL invocation,
     * batching and PCIe transfers amortized over a batch).
     */
    uint64_t hostOverheadCycles = 2000;
    /** Backend routing rule (see BatchConfig::dispatch). */
    DispatchPolicy dispatch = DispatchPolicy::Threshold;
    /** Keep a CPU fallback backend alongside the device channels. */
    bool cpuFallback = false;
    /** Deterministic CPU rate for cost-model runs (0 = measure). */
    double cpuModeledCellsPerSec = 0;
    /** Add the modeled GPU backend (covered kernels only). */
    bool gpuModel = false;
};

/** Aggregate outcome of one batched device run. */
struct DeviceRunStats
{
    uint64_t makespanCycles = 0;   //!< slowest block's busy cycles
    uint64_t totalCycles = 0;      //!< sum over all alignments
    double seconds = 0;            //!< makespan / fmax
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;     //!< mean per-alignment device cycles
    int alignments = 0;
    int cancelled = 0;             //!< jobs dropped by ticket cancel()
    int deadlineMisses = 0;        //!< jobs finished past their deadline
};

/** The pipeline configuration equivalent to a DeviceConfig. */
inline BatchConfig
toBatchConfig(const DeviceConfig &cfg)
{
    BatchConfig bc;
    bc.npe = cfg.npe;
    bc.nb = cfg.nb;
    bc.nk = cfg.nk;
    bc.threads = cfg.threads;
    bc.fmaxMhz = cfg.fmaxMhz;
    bc.bandWidth = cfg.bandWidth;
    bc.maxQueryLength = cfg.maxQueryLength;
    bc.maxReferenceLength = cfg.maxReferenceLength;
    bc.skipTraceback = cfg.skipTraceback;
    bc.cycles = cfg.cycles;
    bc.hostOverheadCycles = cfg.hostOverheadCycles;
    bc.dispatch = cfg.dispatch;
    bc.cpuFallback = cfg.cpuFallback;
    bc.cpuModeledCellsPerSec = cfg.cpuModeledCellsPerSec;
    bc.gpuModel = cfg.gpuModel;
    bc.collectPathStats = false; // throughput-only model
    return bc;
}

/** Device-level view of one ticket's / epoch's batch statistics. */
inline DeviceRunStats
toDeviceRunStats(const BatchStats &bs)
{
    DeviceRunStats stats;
    stats.makespanCycles = bs.makespanCycles;
    stats.totalCycles = bs.totalCycles;
    stats.seconds = bs.seconds;
    stats.alignsPerSec = bs.alignsPerSec;
    stats.cyclesPerAlign = bs.cyclesPerAlign;
    stats.alignments = bs.alignments;
    stats.cancelled = bs.cancelled;
    stats.deadlineMisses = bs.deadlineMisses;
    return stats;
}

/** A simulated DP-HLS device running kernel @p K. */
template <core::KernelSpec K>
class DeviceModel
{
  public:
    using CharT = typename K::CharT;
    using Result = core::AlignResult<typename K::ScoreT>;
    using Job = AlignmentJob<CharT>;

    explicit DeviceModel(DeviceConfig cfg = {},
                         typename K::Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {}

    const DeviceConfig &config() const { return _cfg; }

    /**
     * Run a batch of jobs; optionally collect per-job results (indexed
     * like @p jobs). @p options carries the batch's scheduling class
     * (priority/deadline) — with the default options the run is the
     * historical FIFO device model.
     */
    DeviceRunStats
    run(const std::vector<Job> &jobs, std::vector<Result> *results = nullptr,
        TicketOptions options = {})
    {
        StreamPipeline<K> pipeline(toBatchConfig(_cfg), _params);
        return toDeviceRunStats(
            pipeline.runAll(jobs, results, nullptr, std::move(options)));
    }

  private:
    DeviceConfig _cfg;
    typename K::Params _params;
};

} // namespace dphls::host

#endif // DPHLS_HOST_DEVICE_MODEL_HH
