/**
 * @file
 * The device-level throughput model: NK channels x NB blocks.
 *
 * Paper front-end step 5 exposes three parallelism knobs: NPE (wavefront
 * parallelism inside one block), NB (blocks sharing one arbiter within a
 * kernel) and NK (independent kernels, each with its own host channel).
 * The device processes NB x NK alignments concurrently; the host keeps
 * the channels fed with batches from NK threads (step 6).
 *
 * This model simulates that arrangement: alignments are distributed
 * round-robin over channels; within a channel a greedy arbiter hands the
 * next alignment to the earliest-free block. Functional results come from
 * the cycle-level systolic engine; the makespan in cycles plus the
 * achieved frequency yields alignments/second, matching the paper's
 * throughput methodology (Section 6.2).
 */

#ifndef DPHLS_HOST_DEVICE_MODEL_HH
#define DPHLS_HOST_DEVICE_MODEL_HH

#include <cstdint>
#include <vector>

#include "host/batch_pipeline.hh"
#include "systolic/engine.hh"

namespace dphls::host {

/** Device configuration: parallelism, frequency and engine options. */
struct DeviceConfig
{
    int npe = 32;
    int nb = 16;
    int nk = 4;
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /**
     * Host/DMA overhead cycles charged per alignment (OpenCL invocation,
     * batching and PCIe transfers amortized over a batch).
     */
    uint64_t hostOverheadCycles = 2000;
};

/** Aggregate outcome of one batched device run. */
struct DeviceRunStats
{
    uint64_t makespanCycles = 0;   //!< slowest block's busy cycles
    uint64_t totalCycles = 0;      //!< sum over all alignments
    double seconds = 0;            //!< makespan / fmax
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;     //!< mean per-alignment device cycles
    int alignments = 0;
};

/** A simulated DP-HLS device running kernel @p K. */
template <core::KernelSpec K>
class DeviceModel
{
  public:
    using CharT = typename K::CharT;
    using Result = core::AlignResult<typename K::ScoreT>;
    using Job = AlignmentJob<CharT>;

    explicit DeviceModel(DeviceConfig cfg = {},
                         typename K::Params params = K::defaultParams())
        : _cfg(cfg), _params(params)
    {}

    const DeviceConfig &config() const { return _cfg; }

    /**
     * Run a batch of jobs; optionally collect per-job results (indexed
     * like @p jobs).
     */
    DeviceRunStats
    run(const std::vector<Job> &jobs, std::vector<Result> *results = nullptr)
    {
        // The batched pipeline owns the sharding and arbiter accounting
        // (NK channels x NB blocks, step 6); one blocking epoch per run.
        BatchConfig bc;
        bc.npe = _cfg.npe;
        bc.nb = _cfg.nb;
        bc.nk = _cfg.nk;
        bc.fmaxMhz = _cfg.fmaxMhz;
        bc.bandWidth = _cfg.bandWidth;
        bc.maxQueryLength = _cfg.maxQueryLength;
        bc.maxReferenceLength = _cfg.maxReferenceLength;
        bc.skipTraceback = _cfg.skipTraceback;
        bc.cycles = _cfg.cycles;
        bc.hostOverheadCycles = _cfg.hostOverheadCycles;
        bc.collectPathStats = false;
        BatchPipeline<K> pipeline(bc, _params);
        const BatchStats bs = pipeline.runAll(jobs, results);

        DeviceRunStats stats;
        stats.makespanCycles = bs.makespanCycles;
        stats.totalCycles = bs.totalCycles;
        stats.seconds = bs.seconds;
        stats.alignsPerSec = bs.alignsPerSec;
        stats.cyclesPerAlign = bs.cyclesPerAlign;
        stats.alignments = bs.alignments;
        return stats;
    }

  private:
    DeviceConfig _cfg;
    typename K::Params _params;
};

} // namespace dphls::host

#endif // DPHLS_HOST_DEVICE_MODEL_HH
