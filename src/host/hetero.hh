/**
 * @file
 * Heterogeneous kernel channels.
 *
 * Paper Section 4, step 5: "The design allows linking NK heterogeneous
 * kernels (e.g., a mix of global and local aligners) seamlessly in the
 * design, a process that would be quite cumbersome with HDL." This module
 * models exactly that: two different kernels instantiated on the same
 * device, each owning its share of channels and blocks, fed concurrently
 * by the host and sharing the FPGA's resource budget.
 *
 * Built on the streaming executor: both partitions are submitted as
 * tickets up front and collected afterwards, so their host-side
 * execution genuinely overlaps — exactly how independent channel groups
 * behave on the FPGA (the old implementation ran the partitions
 * back-to-back and only modeled the overlap in the makespan).
 */

#ifndef DPHLS_HOST_HETERO_HH
#define DPHLS_HOST_HETERO_HH

#include <algorithm>

#include "host/device_model.hh"
#include "model/resource_model.hh"

namespace dphls::host {

/** Aggregate outcome of a heterogeneous run. */
struct HeteroRunStats
{
    DeviceRunStats first;
    DeviceRunStats second;
    uint64_t makespanCycles = 0; //!< slower of the two kernel partitions
    double seconds = 0;
    double alignsPerSec = 0;     //!< combined throughput
};

/**
 * A device hosting two kernels side by side. Each kernel gets its own
 * DeviceConfig (NPE/NB/NK partition); both partitions run concurrently,
 * as independent channels do on the FPGA.
 */
template <core::KernelSpec K1, core::KernelSpec K2>
class HeteroDevice
{
  public:
    HeteroDevice(DeviceConfig cfg1, DeviceConfig cfg2,
                 typename K1::Params p1 = K1::defaultParams(),
                 typename K2::Params p2 = K2::defaultParams())
        : _cfg1(cfg1), _cfg2(cfg2),
          _pipe1(toBatchConfig(cfg1), p1), _pipe2(toBatchConfig(cfg2), p2)
    {}

    /** Combined resource estimate of both partitions. */
    model::DeviceResources
    resources(const model::KernelHwDesc &d1,
              const model::KernelHwDesc &d2) const
    {
        return model::estimateKernel(d1, _cfg1.npe, _cfg1.nb) *
                   static_cast<double>(_cfg1.nk) +
               model::estimateKernel(d2, _cfg2.npe, _cfg2.nb) *
                   static_cast<double>(_cfg2.nk);
    }

    /** Run both workloads concurrently; results optional, per kernel. */
    HeteroRunStats
    run(const std::vector<AlignmentJob<typename K1::CharT>> &jobs1,
        const std::vector<AlignmentJob<typename K2::CharT>> &jobs2,
        std::vector<core::AlignResult<typename K1::ScoreT>> *res1 = nullptr,
        std::vector<core::AlignResult<typename K2::ScoreT>> *res2 = nullptr)
    {
        HeteroRunStats stats;
        // The two partitions are physically independent channel groups;
        // submit both tickets before collecting either so the host
        // feeds them in parallel. Their wall-clock union is the max of
        // the two makespans converted at each partition's clock.
        auto t1 = _pipe1.submitBorrowed(jobs1);
        auto t2 = _pipe2.submitBorrowed(jobs2);
        stats.first = toDeviceRunStats(_pipe1.collect(t1, res1));
        stats.second = toDeviceRunStats(_pipe2.collect(t2, res2));
        stats.makespanCycles =
            std::max(stats.first.makespanCycles, stats.second.makespanCycles);
        stats.seconds = std::max(stats.first.seconds, stats.second.seconds);
        stats.alignsPerSec = stats.seconds > 0
            ? (jobs1.size() + jobs2.size()) / stats.seconds
            : 0.0;
        return stats;
    }

  private:
    DeviceConfig _cfg1, _cfg2;
    StreamPipeline<K1> _pipe1;
    StreamPipeline<K2> _pipe2;
};

} // namespace dphls::host

#endif // DPHLS_HOST_HETERO_HH
