/**
 * @file
 * Pluggable alignment backends for the streaming host executor.
 *
 * The paper's host front-end (step 6) feeds NK independent device
 * channels; real deployments additionally keep a CPU path for jobs the
 * device cannot take (sequences over the synthesized MAX_*_LENGTH) or
 * should not take (tiny pairs whose DMA/invocation overhead dominates).
 * AlignBackend is the seam between the two: the StreamPipeline routes
 * each job to a backend and aggregates per-backend accounting, so the
 * heterogeneous split stays visible in the epoch statistics.
 *
 * Four implementations:
 *
 *  - DeviceChannelBackend: one simulated device channel — the scalar
 *    cycle-level systolic engine plus the greedy NB-block arbiter
 *    (extracted from the old BatchPipeline::Channel). Per-job device
 *    cycles are the engine's analytic totals plus the configured host
 *    overhead; channel busy cycles are the arbiter makespan.
 *  - LaneChannelBackend: the same channel driven through the SIMD lane
 *    engine — jobs are sorted by (qlen, rlen) and grouped into lockstep
 *    lanes so mixed-length batches share a smaller padded iteration
 *    space. Results and per-job cycles are bit-identical to the scalar
 *    backend (the lane engine's per-lane guarantees); the arbiter runs
 *    in original shard order so channel accounting is unchanged too.
 *  - CpuBaselineBackend: the classic full-matrix CPU implementation
 *    (the golden model the engine is verified against) executed across
 *    host threads with cpu_runner's wall-clock methodology; cycles are
 *    derived from measured seconds at a configurable equivalent clock,
 *    and its "blocks" are the host threads.
 *  - GpuModelBackend: the iso-cost GPU throughput model
 *    (baselines/gpu_model.hh) promoted onto the backend seam. Results
 *    come from the same full-matrix golden model; cycles and busy time
 *    are modeled from the published GASAL2 / CUDASW++ GCUPS plus a
 *    per-batch launch overhead, for the kernels the paper benchmarks
 *    on a GPU (Fig. 6B).
 *
 * Every backend also answers estimate(job) — a cost-model service-time
 * estimate (device channels from the analytic cycle formulas in
 * engine_common.hh, the CPU backend from an EWMA of measured cells/sec,
 * the GPU model from its GCUPS) — and carries a live queued-work signal
 * the StreamPipeline's cost-model dispatch policy reads to pick the
 * backend with the lowest estimated completion time.
 */

#ifndef DPHLS_HOST_BACKEND_HH
#define DPHLS_HOST_BACKEND_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "baselines/cpu_runner.hh"
#include "baselines/gpu_model.hh"
#include "host/result_cache.hh"
#include "host/scheduler.hh"
#include "host/stage_flow.hh"
#include "reference/matrix_aligner.hh"
#include "systolic/engine.hh"
#include "systolic/isa_tier.hh"
#include "systolic/lane_engine.hh"

namespace dphls::host {

/**
 * Digest of the result- and cycle-affecting EngineConfig fields, mixed
 * into every cache key so backends with different band widths, PE
 * counts, maxima, traceback or cycle options can share one
 * ShardedResultCache without aliasing each other's entries.
 */
inline uint64_t
engineConfigSalt(const sim::EngineConfig &cfg)
{
    PairHash h{detail::fnvBasis1, detail::fnvBasis2};
    // Field-by-field (never the raw struct bytes: padding after the
    // bools is unspecified and would make logically equal configs hash
    // differently, silently splitting a shared cache).
    const int32_t fields[] = {cfg.numPe,
                              cfg.bandWidth,
                              cfg.maxQueryLength,
                              cfg.maxReferenceLength,
                              cfg.skipTraceback ? 1 : 0,
                              cfg.cycles.overlapLoadInit ? 1 : 0,
                              cfg.cycles.pipelineDepth,
                              cfg.cycles.tracebackCyclesPerStep,
                              cfg.cycles.writebackOpsPerCycle,
                              cfg.cycles.hostStreamCyclesPerChar};
    detail::fnvMix(h, fields, sizeof(fields));
    return h.h1 ^ (h.h2 * detail::fnvPrime);
}

/** One alignment job: a query/reference pair. */
template <typename CharT>
struct AlignmentJob
{
    seq::Sequence<CharT> query;
    seq::Sequence<CharT> reference;
};

/** Accounting of one backend run (a channel shard or a CPU shard). */
struct ChannelStats
{
    uint64_t busyCycles = 0;  //!< makespan of the backend's blocks/slots
    uint64_t totalCycles = 0; //!< sum of job cycles on this backend
    int alignments = 0;       //!< jobs this backend processed
    /** Jobs dropped from this backend's queue by a ticket cancel(). */
    int cancelled = 0;
    /** Jobs that completed after their ticket's deadline had passed. */
    int deadlineMisses = 0;
    /** In-flight shards that yielded the slot at a preemption point. */
    int preemptions = 0;
};

/**
 * Cost-model service-time estimate for one job on one backend. The
 * estimate is a routing signal, not an accounting value: it may be
 * approximate (traceback length is unknown before the alignment runs)
 * but must be deterministic for a given backend state so dispatch
 * decisions are reproducible.
 */
struct CostEstimate
{
    double seconds = 0;   //!< estimated marginal service time
    bool feasible = true; //!< false when the backend cannot run the job
};

/**
 * A backend that can align a set of jobs. run() fills the per-job
 * output slots (indexed by job index, so submission-order collation is
 * free) and folds its arbiter accounting into @p acct. Implementations
 * are stateful (engines, scratch buffers); the pipeline serializes
 * run() calls per backend instance.
 *
 * For cost-model dispatch the base class additionally tracks queued
 * estimated work: callers pair noteEnqueued() with noteCompleted() so
 * queuedSeconds() is a live backlog signal. (The StreamPipeline now
 * keeps its routing backlog in its own dispatch slots rather than in
 * backend state, so releasing a cancelled shard's backlog never has to
 * reach into a backend whose pipeline may be mid-destruction; the
 * signal stays available here for hosts driving backends directly.)
 */
template <core::KernelSpec K>
class AlignBackend
{
  public:
    using CharT = typename K::CharT;
    using ScoreT = typename K::ScoreT;
    using Result = core::AlignResult<ScoreT>;
    using Job = AlignmentJob<CharT>;
    using Params = typename K::Params;

    virtual ~AlignBackend() = default;

    /** Stable backend name used in per-backend stats sections. */
    virtual const char *name() const = 0;
    /** Clock the backend's cycles are counted at (MHz). */
    virtual double clockMhz() const = 0;

    /** Estimated marginal service time for @p job on this backend. */
    virtual CostEstimate estimate(const Job &job) const = 0;

    /**
     * Fixed cost the backend pays once per submitted shard regardless
     * of its size (the GPU model's kernel-launch overhead). The router
     * charges it to the first job it routes to this backend within a
     * batch, so small batches see the backend's true marginal cost.
     */
    virtual double batchOverheadSeconds() const { return 0; }

    /**
     * Align jobs[indices[k]] for every k; write each job's result and
     * cycle count into results[idx] / cycles[idx]; add the run's
     * arbiter accounting to @p acct.
     */
    virtual void run(const std::vector<Job> &jobs,
                     const std::vector<int> &indices, Result *results,
                     uint64_t *cycles, ChannelStats &acct) = 0;

    /**
     * True when runStaged() actually decouples fill from traceback
     * with preemption points between stages; false means runStaged()
     * degrades to a monolithic run() that never yields.
     */
    virtual bool supportsStagedRun() const { return false; }

    /**
     * Stage-pipelined variant of run(): the backend executes the shard
     * as fill (producer) and traceback/writeback (consumer) stages over
     * a bounded FIFO, polling @p ctl at stage boundaries. On return,
     * ctl.done marks which jobs wrote back; the dispatcher re-queues or
     * cancel-accounts the rest. The default is the monolithic run() with
     * every job marked done — correct for backends with no separable
     * stages.
     */
    virtual void
    runStaged(const std::vector<Job> &jobs,
              const std::vector<int> &indices, Result *results,
              uint64_t *cycles, ChannelStats &acct, StageRunControl &ctl)
    {
        run(jobs, indices, results, cycles, acct);
        std::fill(ctl.done.begin(), ctl.done.end(), uint8_t{1});
    }

    /** Estimated seconds of routed-but-unfinished work (queue depth). */
    double
    queuedSeconds() const
    {
        return static_cast<double>(
                   _queuedMicros.load(std::memory_order_relaxed)) *
               1e-6;
    }

    /** Router-side: account @p seconds of estimated work as queued. */
    void
    noteEnqueued(double seconds)
    {
        _queuedMicros.fetch_add(toMicros(seconds),
                                std::memory_order_relaxed);
    }

    /** Executor-side: retire @p seconds of previously queued work. */
    void
    noteCompleted(double seconds)
    {
        _queuedMicros.fetch_sub(toMicros(seconds),
                                std::memory_order_relaxed);
    }

  private:
    static int64_t
    toMicros(double seconds)
    {
        return static_cast<int64_t>(std::llround(seconds * 1e6));
    }

    std::atomic<int64_t> _queuedMicros{0};
};

/**
 * One simulated device channel: scalar cycle-level engine, shared
 * result cache, and the greedy NB-block arbiter.
 */
template <core::KernelSpec K>
class DeviceChannelBackend : public AlignBackend<K>
{
  public:
    using Base = AlignBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    DeviceChannelBackend(const sim::EngineConfig &ecfg, const Params &params,
                         int nb, uint64_t host_overhead_cycles,
                         double fmax_mhz, ShardedResultCache<Result> *cache)
        : _engine(ecfg, params), _params(params),
          _cache(cache), _cfgSalt(engineConfigSalt(ecfg)),
          _hostOverhead(host_overhead_cycles), _fmaxMhz(fmax_mhz),
          _blockFree(static_cast<size_t>(std::max(1, nb)), 0)
    {}

    const char *name() const override { return "device"; }
    double clockMhz() const override { return _fmaxMhz; }

    /**
     * Analytic service-time estimate from the engine_common cycle
     * formulas: load/init/fill are exact (they are the same formulas
     * the engine accounts with); traceback is bounded by the worst-case
     * walk length since the real path is unknown before alignment. The
     * NB blocks serve jobs concurrently, so the marginal completion
     * contribution of one job is its cycles divided by the arbiter
     * width.
     */
    CostEstimate
    estimate(const Job &job) const override
    {
        const sim::EngineConfig &ecfg = _engine.config();
        const int qlen = job.query.length();
        const int rlen = job.reference.length();
        if (qlen > ecfg.maxQueryLength || rlen > ecfg.maxReferenceLength)
            return {0, false};
        sim::CycleStats cs;
        sim::accountLoadInit<K>(ecfg, qlen, rlen, cs);
        sim::accountFill<K>(ecfg, qlen, rlen, cs);
        if (!ecfg.skipTraceback && K::hasTraceback) {
            const uint64_t steps = static_cast<uint64_t>(qlen + rlen);
            cs.traceback = steps *
                static_cast<uint64_t>(ecfg.cycles.tracebackCyclesPerStep);
            // writebackOpsPerCycle is a user-configurable knob; a 0
            // must degrade to the slowest rate, not divide by zero on
            // the routing hot path.
            cs.writeback = steps /
                static_cast<uint64_t>(
                    std::max(1, ecfg.cycles.writebackOpsPerCycle));
        }
        const uint64_t cycles =
            sim::totalCycles(cs, ecfg.cycles) + _hostOverhead;
        const double width =
            static_cast<double>(std::max<size_t>(1, _blockFree.size()));
        return {static_cast<double>(cycles) / (_fmaxMhz * 1e6 * width),
                true};
    }

    void
    run(const std::vector<Job> &jobs, const std::vector<int> &indices,
        Result *results, uint64_t *cycles, ChannelStats &acct) override
    {
        computeResults(jobs, indices, results, cycles);
        arbitrate(indices, cycles, acct);
    }

    bool
    supportsStagedRun() const override
    {
        return _engine.supportsStagedFill();
    }

    /**
     * Staged shard execution: this worker fills job i+1 while a
     * consumer thread runs the traceback + writeback of job i off the
     * bounded FIFO. Cache hits travel through the FIFO too, so every
     * writeback happens on the consumer in submission order. Results
     * and cycles are bit-identical to run(): the fill/traceback split
     * reproduces the exact per-cell dataflow and the analytic cycle
     * accounting is order-independent.
     */
    void
    runStaged(const std::vector<Job> &jobs,
              const std::vector<int> &indices, Result *results,
              uint64_t *cycles, ChannelStats &acct,
              StageRunControl &ctl) override
    {
        if (!_engine.supportsStagedFill()) {
            Base::runStaged(jobs, indices, results, cycles, acct, ctl);
            return;
        }

        struct Item
        {
            size_t k = 0; //!< position in indices
            bool fromCache = false;
            Result res;           //!< cache-hit payload
            uint64_t resCycles = 0;
            sim::FastFillState<K> fill;
            PairHash key;
        };

        BoundedFifo<Item> fifo(static_cast<size_t>(ctl.fifoDepth));
        const sim::CycleModelOptions cycle_model =
            _engine.config().cycles;
        StageWorker consumer([&] {
            while (auto item = fifo.pop()) {
                const size_t idx = static_cast<size_t>(
                    indices[item->k]);
                if (item->fromCache) {
                    results[idx] = std::move(item->res);
                    cycles[idx] = item->resCycles;
                } else {
                    Result res = _engine.tracebackStage(item->fill);
                    const uint64_t engine_cycles =
                        sim::totalCycles(item->fill.stats, cycle_model);
                    if (cacheEnabled())
                        _cache->insert(item->key, res, engine_cycles);
                    cycles[idx] = engine_cycles + _hostOverhead;
                    results[idx] = std::move(res);
                    _engine.recycleStage(std::move(item->fill));
                }
                ctl.done[item->k] = 1;
            }
        });

        for (size_t k = 0; k < indices.size(); k++) {
            if (ctl.shouldYield())
                break;
            const auto &job =
                jobs[static_cast<size_t>(indices[k])];
            Item item;
            item.k = k;
            if (cacheEnabled()) {
                item.key = pairHash(job.query, job.reference, _params,
                                    _cfgSalt);
                if (auto hit = _cache->lookup(item.key)) {
                    item.fromCache = true;
                    item.res = std::move(hit->result);
                    item.resCycles = hit->cycles + _hostOverhead;
                    fifo.push(std::move(item));
                    continue;
                }
            }
            item.fill = _engine.fillStage(job.query, job.reference);
            fifo.push(std::move(item));
        }
        fifo.close();
        consumer.join();

        // Arbitrate the jobs that wrote back, in indices order — the
        // same set and order as run() when nothing yielded; a partial
        // run's makespan sums with its resumption's (accounting split
        // across resumptions).
        std::vector<int> completed;
        completed.reserve(indices.size());
        for (size_t k = 0; k < indices.size(); k++) {
            if (ctl.done[k])
                completed.push_back(indices[k]);
        }
        arbitrate(completed, cycles, acct);
    }

  protected:
    /** Functional results and per-job device cycles (scalar engine). */
    virtual void
    computeResults(const std::vector<Job> &jobs,
                   const std::vector<int> &indices, Result *results,
                   uint64_t *cycles)
    {
        for (const int idx : indices) {
            const auto &job = jobs[static_cast<size_t>(idx)];
            PairHash key;
            if (cacheEnabled()) {
                key = pairHash(job.query, job.reference, _params,
                               _cfgSalt);
                if (lookupCached(key, idx, results, cycles))
                    continue;
            }
            Result res = _engine.align(job.query, job.reference);
            finishJob(key, idx, std::move(res),
                      _engine.lastTotalCycles(), results, cycles);
        }
    }

    /**
     * Greedy NB-block arbiter over the per-job cycles, in @p indices
     * order: each job lands on the earliest-free block; busy cycles are
     * the block makespan. Device cycles are independent of block
     * placement, so this runs as a separate phase after the compute.
     */
    void
    arbitrate(const std::vector<int> &indices, const uint64_t *cycles,
              ChannelStats &acct)
    {
        std::fill(_blockFree.begin(), _blockFree.end(), 0);
        for (const int idx : indices) {
            const uint64_t c = cycles[static_cast<size_t>(idx)];
            auto it =
                std::min_element(_blockFree.begin(), _blockFree.end());
            *it += c;
            acct.totalCycles += c;
            acct.alignments++;
        }
        acct.busyCycles +=
            *std::max_element(_blockFree.begin(), _blockFree.end());
    }

    bool cacheEnabled() const { return _cache && _cache->enabled(); }

    bool
    lookupCached(const PairHash &key, int idx, Result *results,
                 uint64_t *cycles)
    {
        auto hit = _cache->lookup(key);
        if (!hit)
            return false;
        results[static_cast<size_t>(idx)] = std::move(hit->result);
        cycles[static_cast<size_t>(idx)] = hit->cycles + _hostOverhead;
        return true;
    }

    void
    finishJob(const PairHash &key, int idx, Result res,
              uint64_t engine_cycles, Result *results, uint64_t *cycles)
    {
        if (cacheEnabled())
            _cache->insert(key, res, engine_cycles);
        cycles[static_cast<size_t>(idx)] = engine_cycles + _hostOverhead;
        results[static_cast<size_t>(idx)] = std::move(res);
    }

    sim::SystolicAligner<K> _engine;
    Params _params;
    ShardedResultCache<Result> *_cache;
    uint64_t _cfgSalt;
    uint64_t _hostOverhead;
    double _fmaxMhz;
    std::vector<uint64_t> _blockFree;
};

/**
 * A device channel whose compute phase runs the lockstep SIMD lane
 * engine with length-aware grouping: jobs are processed in (qlen, rlen)
 * order so each lane group shares a similar padded iteration space.
 * Cache lookups interleave with lane-group flushes, so a pair repeated
 * later in the same shard hits once its first instance's group has been
 * computed and inserted.
 */
template <core::KernelSpec K>
class LaneChannelBackend : public DeviceChannelBackend<K>
{
  public:
    using Base = DeviceChannelBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    LaneChannelBackend(const sim::EngineConfig &ecfg, const Params &params,
                       int nb, uint64_t host_overhead_cycles,
                       double fmax_mhz,
                       ShardedResultCache<Result> *cache, int lane_width,
                       bool sort_by_length, bool intra_pair_simd = false,
                       int intra_pair_min_len = 1024)
        : Base(ecfg, params, nb, host_overhead_cycles, fmax_mhz, cache),
          _lanes(ecfg, params), _diagEngine(diagConfig(ecfg), params),
          _width(std::clamp(lane_width, 1,
                            sim::LaneAligner<K>::maxLanes)),
          _sortByLength(sort_by_length), _intraPairSimd(intra_pair_simd),
          _intraPairMinLen(intra_pair_min_len)
    {}

    /** Lane groups always fill/traceback-split (singles fall back). */
    bool supportsStagedRun() const override { return true; }

    /**
     * Staged lane-channel shard: lane-group fills are the producer
     * stage, per-lane traceback epilogues the consumer stage, and the
     * boundaries between lane groups are the preemption/cancel points.
     * Intra-pair (DiagSimd) and non-fast single jobs complete in the
     * producer and travel through the FIFO as ready writebacks, so the
     * consumer remains the only writer of results/cycles/done.
     */
    void
    runStaged(const std::vector<Job> &jobs,
              const std::vector<int> &indices, Result *results,
              uint64_t *cycles, ChannelStats &acct,
              StageRunControl &ctl) override
    {
        using LaneFill = typename sim::LaneAligner<K>::LaneFillState;
        enum class Kind : uint8_t
        {
            Ready,      //!< producer-finished result, writeback only
            SingleFill, //!< one fast-path fill state
            Group       //!< one lane group's fill states
        };
        struct Item
        {
            Kind kind = Kind::Ready;
            size_t k = 0; //!< Ready/SingleFill: position in indices
            Result res;
            uint64_t resCycles = 0;
            sim::FastFillState<K> fill;
            PairHash key;
            std::vector<LaneFill> states;
            std::vector<size_t> ks; //!< Group: per-lane positions
            std::vector<PairHash> keys;
        };

        const sim::CycleModelOptions cycle_model =
            this->_engine.config().cycles;
        BoundedFifo<Item> fifo(static_cast<size_t>(ctl.fifoDepth));
        StageWorker consumer([&] {
            while (auto item = fifo.pop()) {
                if (item->kind == Kind::Ready) {
                    const size_t idx =
                        static_cast<size_t>(indices[item->k]);
                    results[idx] = std::move(item->res);
                    cycles[idx] = item->resCycles;
                    ctl.done[item->k] = 1;
                } else if (item->kind == Kind::SingleFill) {
                    const size_t idx =
                        static_cast<size_t>(indices[item->k]);
                    Result res =
                        this->_engine.tracebackStage(item->fill);
                    const uint64_t ec = sim::totalCycles(
                        item->fill.stats, cycle_model);
                    if (this->cacheEnabled())
                        this->_cache->insert(item->key, res, ec);
                    cycles[idx] = ec + this->_hostOverhead;
                    results[idx] = std::move(res);
                    this->_engine.recycleStage(std::move(item->fill));
                    ctl.done[item->k] = 1;
                } else {
                    size_t m = 0;
                    for (LaneFill &st : item->states) {
                        for (int lane = 0; lane < st.count;
                             lane++, m++) {
                            sim::CycleStats stats;
                            Result res =
                                _lanes.laneTraceback(st, lane, stats);
                            const uint64_t ec =
                                sim::totalCycles(stats, cycle_model);
                            const size_t kpos = item->ks[m];
                            const size_t idx =
                                static_cast<size_t>(indices[kpos]);
                            if (this->cacheEnabled())
                                this->_cache->insert(item->keys[m], res,
                                                     ec);
                            cycles[idx] = ec + this->_hostOverhead;
                            results[idx] = std::move(res);
                            ctl.done[kpos] = 1;
                        }
                        _lanes.recycleBank(std::move(st));
                    }
                }
            }
        });

        // Producer: same length-aware grouping as computeResults().
        std::vector<int> order(indices);
        if (_sortByLength && order.size() > 1) {
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                const auto &ja = jobs[static_cast<size_t>(a)];
                const auto &jb = jobs[static_cast<size_t>(b)];
                return std::make_tuple(ja.query.length(),
                                       ja.reference.length(), a) <
                       std::make_tuple(jb.query.length(),
                                       jb.reference.length(), b);
            });
        }
        std::unordered_map<int, size_t> pos;
        pos.reserve(indices.size());
        for (size_t k = 0; k < indices.size(); k++)
            pos[indices[k]] = k;

        std::vector<int> group;
        group.reserve(static_cast<size_t>(_width));
        std::vector<PairHash> group_keys;
        group_keys.reserve(static_cast<size_t>(_width));
        const auto flushGroup = [&]() {
            if (group.empty())
                return;
            Item item;
            if (group.size() > 1) {
                using Lane = typename sim::LaneAligner<K>::LanePair;
                std::vector<Lane> lanes(group.size());
                for (size_t m = 0; m < group.size(); m++) {
                    const auto &job =
                        jobs[static_cast<size_t>(group[m])];
                    lanes[m] = Lane{&job.query, &job.reference};
                }
                item.kind = Kind::Group;
                item.states = _lanes.fillLanes(lanes);
                item.ks.reserve(group.size());
                for (const int g : group)
                    item.ks.push_back(pos[g]);
                item.keys = group_keys;
            } else {
                const auto &job =
                    jobs[static_cast<size_t>(group[0])];
                const bool intra = _intraPairSimd &&
                    std::min(job.query.length(),
                             job.reference.length()) >= _intraPairMinLen;
                if (!intra && this->_engine.supportsStagedFill()) {
                    item.kind = Kind::SingleFill;
                    item.k = pos[group[0]];
                    item.key = group_keys[0];
                    item.fill = this->_engine.fillStage(job.query,
                                                        job.reference);
                } else {
                    auto &engine = intra ? _diagEngine : this->_engine;
                    Result res =
                        engine.align(job.query, job.reference);
                    const uint64_t ec = engine.lastTotalCycles();
                    if (this->cacheEnabled())
                        this->_cache->insert(group_keys[0], res, ec);
                    item.kind = Kind::Ready;
                    item.k = pos[group[0]];
                    item.resCycles = ec + this->_hostOverhead;
                    item.res = std::move(res);
                }
            }
            fifo.push(std::move(item));
            group.clear();
            group_keys.clear();
        };

        bool yielded = false;
        for (const int idx : order) {
            if (ctl.shouldYield()) {
                yielded = true;
                break;
            }
            const auto &job = jobs[static_cast<size_t>(idx)];
            PairHash key;
            if (this->cacheEnabled()) {
                key = pairHash(job.query, job.reference, this->_params,
                               this->_cfgSalt);
                if (auto hit = this->_cache->lookup(key)) {
                    Item item;
                    item.kind = Kind::Ready;
                    item.k = pos[idx];
                    item.res = std::move(hit->result);
                    item.resCycles = hit->cycles + this->_hostOverhead;
                    fifo.push(std::move(item));
                    continue;
                }
            }
            group.push_back(idx);
            group_keys.push_back(key);
            if (static_cast<int>(group.size()) >= _width)
                flushGroup();
        }
        // On yield, the partially-formed group never started: its jobs
        // stay not-done and re-queue with the remainder.
        if (!yielded)
            flushGroup();
        fifo.close();
        consumer.join();

        std::vector<int> completed;
        completed.reserve(indices.size());
        for (size_t k = 0; k < indices.size(); k++) {
            if (ctl.done[k])
                completed.push_back(indices[k]);
        }
        this->arbitrate(completed, cycles, acct);
    }

  protected:
    void
    computeResults(const std::vector<Job> &jobs,
                   const std::vector<int> &indices, Result *results,
                   uint64_t *cycles) override
    {
        // Length-aware grouping (sorting only reorders the compute; the
        // arbiter still runs in shard order, and per-lane results and
        // analytic cycle stats are grouping-independent, so everything
        // observable stays bit-identical).
        std::vector<int> order(indices);
        if (_sortByLength && order.size() > 1) {
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                const auto &ja = jobs[static_cast<size_t>(a)];
                const auto &jb = jobs[static_cast<size_t>(b)];
                return std::make_tuple(ja.query.length(),
                                       ja.reference.length(), a) <
                       std::make_tuple(jb.query.length(),
                                       jb.reference.length(), b);
            });
        }

        std::vector<int> group; // job indices awaiting the engine
        group.reserve(static_cast<size_t>(_width));
        std::vector<PairHash> group_keys;
        group_keys.reserve(static_cast<size_t>(_width));

        const auto flushGroup = [&]() {
            if (group.empty())
                return;
            if (group.size() > 1) {
                using Lane = typename sim::LaneAligner<K>::LanePair;
                std::vector<Lane> lanes(group.size());
                for (size_t m = 0; m < group.size(); m++) {
                    const auto &job =
                        jobs[static_cast<size_t>(group[m])];
                    lanes[m] = Lane{&job.query, &job.reference};
                }
                auto lane_results = _lanes.alignLanes(lanes);
                for (size_t m = 0; m < group.size(); m++) {
                    this->finishJob(
                        group_keys[m], group[m],
                        std::move(lane_results[m]),
                        _lanes.laneTotalCycles(static_cast<int>(m)),
                        results, cycles);
                }
            } else {
                const auto &job =
                    jobs[static_cast<size_t>(group[0])];
                // A group of one means no sibling pairs fill the SIMD
                // lanes; a long enough pair instead vectorizes along
                // its own anti-diagonals (results and cycle stats are
                // bit-identical across paths, so routing is free).
                const bool intra = _intraPairSimd &&
                    std::min(job.query.length(),
                             job.reference.length()) >= _intraPairMinLen;
                auto &engine = intra ? _diagEngine : this->_engine;
                Result res = engine.align(job.query, job.reference);
                this->finishJob(group_keys[0], group[0], std::move(res),
                                engine.lastTotalCycles(), results,
                                cycles);
            }
            group.clear();
            group_keys.clear();
        };

        for (const int idx : order) {
            const auto &job = jobs[static_cast<size_t>(idx)];
            PairHash key;
            if (this->cacheEnabled()) {
                key = pairHash(job.query, job.reference, this->_params,
                               this->_cfgSalt);
                if (this->lookupCached(key, idx, results, cycles))
                    continue;
            }
            group.push_back(idx);
            group_keys.push_back(key);
            if (static_cast<int>(group.size()) >= _width)
                flushGroup();
        }
        flushGroup();
    }

  private:
    static sim::EngineConfig
    diagConfig(sim::EngineConfig ecfg)
    {
        ecfg.path = sim::EnginePath::DiagSimd;
        ecfg.trace = nullptr; // DiagSimd has no schedule observability
        return ecfg;
    }

    sim::LaneAligner<K> _lanes;
    sim::SystolicAligner<K> _diagEngine;
    int _width;
    bool _sortByLength;
    bool _intraPairSimd;
    int _intraPairMinLen;
};

/**
 * Full-matrix cell count of one job as the CPU/GPU baselines pay it:
 * banded kernels only sweep the band's columns per row.
 */
template <core::KernelSpec K, typename Job>
inline double
baselineCells(const Job &job, int band_width)
{
    const double qlen = static_cast<double>(job.query.length());
    const double rlen = static_cast<double>(job.reference.length());
    if (K::banded) {
        const double band_cols =
            std::min(rlen, 2.0 * std::max(1, band_width) + 1.0);
        return std::max(1.0, qlen * band_cols);
    }
    return std::max(1.0, qlen * rlen);
}

/**
 * CPU fallback backend: the classic full-matrix implementation (the
 * golden model the systolic engine is verified against bit-for-bit, so
 * in-range jobs produce identical results) executed across host
 * threads. There is no analytic cycle model for the host CPU; cycles
 * are derived from per-job wall-clock measurements at an equivalent
 * clock, cpu_runner's baseline methodology. The backend's "blocks" are
 * its host threads: busy cycles are the greedy makespan over them.
 *
 * The cost model's service-time estimate comes from an EWMA of the
 * measured cells/sec, updated after every completed job — the backend
 * learns the host's actual throughput instead of assuming one. Passing
 * modeled_cells_per_sec > 0 pins the rate AND derives cycles from it
 * instead of the wall clock, making accounting deterministic (benches
 * and differential tests use this; real hosts leave it 0).
 */
template <core::KernelSpec K>
class CpuBaselineBackend : public AlignBackend<K>
{
  public:
    using Base = AlignBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    CpuBaselineBackend(const Params &params, int band_width,
                       double cpu_mhz, int threads,
                       bool skip_traceback,
                       double modeled_cells_per_sec = 0)
        : _aligner(params, band_width), _bandWidth(band_width),
          _cpuMhz(cpu_mhz), _threads(std::max(1, threads)),
          _skipTraceback(skip_traceback),
          _modeledCellsPerSec(modeled_cells_per_sec)
    {
        // Seed every bucket's throughput estimate from the host's
        // detected ISA tier (isa_tier.hh) instead of a fixed constant:
        // the first routing decisions on an AVX-512 host shouldn't
        // assume an SSE2-era rate. Measurements take over per bucket
        // after its first job.
        const double seed = modeled_cells_per_sec > 0
            ? modeled_cells_per_sec
            : sim::isaTierSeedCellsPerSec(sim::detectIsaTier());
        for (auto &b : _ewmaCellsPerSec)
            b.store(seed, std::memory_order_relaxed);
    }

    const char *name() const override { return "cpu"; }
    double clockMhz() const override { return _cpuMhz; }

    /**
     * Current cells/sec estimate for a job of @p cells DP cells: the
     * EWMA of the job's log2-cell-count shape bucket (or the pinned
     * modeled rate). Bucketing keeps one long job from skewing the
     * estimates of short jobs — cache behavior and per-job overhead
     * make measured cells/sec strongly shape-dependent.
     */
    double
    cellsPerSecEstimate(double cells) const
    {
        return _ewmaCellsPerSec[bucketOf(cells)].load(
            std::memory_order_relaxed);
    }

    CostEstimate
    estimate(const Job &job) const override
    {
        const double cells = baselineCells<K>(job, _bandWidth);
        const double rate = cellsPerSecEstimate(cells);
        // The host threads serve jobs concurrently, so one job's
        // marginal completion contribution shrinks with the pool.
        return {cells / (rate * _threads), true};
    }

    void
    run(const std::vector<Job> &jobs, const std::vector<int> &indices,
        Result *results, uint64_t *cycles, ChannelStats &acct) override
    {
        const int n = static_cast<int>(indices.size());
        parallelFor(n, std::min(_threads, std::max(1, n)), [&](int k) {
            const int idx = indices[static_cast<size_t>(k)];
            const auto &job = jobs[static_cast<size_t>(idx)];
            const double cells = baselineCells<K>(job, _bandWidth);
            const auto t0 = std::chrono::steady_clock::now();
            Result res = _aligner.align(job.query, job.reference);
            double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (_modeledCellsPerSec > 0)
                seconds = cells / _modeledCellsPerSec; // pinned rate
            else if (seconds > 0)
                updateEwma(cells, cells / seconds);
            if (_skipTraceback) {
                res.ops.clear();
                res.start = res.end;
            }
            cycles[static_cast<size_t>(idx)] =
                baseline::wallClockCycles(seconds, _cpuMhz);
            results[static_cast<size_t>(idx)] = std::move(res);
        });

        // Host threads as slots: greedy earliest-free packing, same
        // arbiter shape as the device channels' NB blocks. The slot
        // vector is run-local: the pipeline's CPU dispatch slot has
        // capacity > 1, so run() calls for different tickets may
        // execute concurrently (this backend has no other mutable
        // state — MatrixAligner::align is const).
        std::vector<uint64_t> slot_free(
            static_cast<size_t>(_threads), 0);
        for (const int idx : indices) {
            const uint64_t c = cycles[static_cast<size_t>(idx)];
            auto it = std::min_element(slot_free.begin(), slot_free.end());
            *it += c;
            acct.totalCycles += c;
            acct.alignments++;
        }
        acct.busyCycles +=
            *std::max_element(slot_free.begin(), slot_free.end());
    }

  private:
    /** Shape buckets: log2(cell count), clamped. 2^31 cells tops out
     *  well past the longest dispatchable pairs. */
    static constexpr int kEwmaBuckets = 32;

    static size_t
    bucketOf(double cells)
    {
        const int b = static_cast<int>(std::log2(std::max(1.0, cells)));
        return static_cast<size_t>(std::clamp(b, 0, kEwmaBuckets - 1));
    }

    /**
     * Relaxed-atomic per-bucket EWMA (alpha 0.25): concurrent updates
     * may drop a sample, which only costs estimate freshness, never
     * correctness.
     */
    void
    updateEwma(double cells, double rate)
    {
        std::atomic<double> &slot = _ewmaCellsPerSec[bucketOf(cells)];
        const double prev = slot.load(std::memory_order_relaxed);
        slot.store(prev + 0.25 * (rate - prev),
                   std::memory_order_relaxed);
    }

    ref::MatrixAligner<K> _aligner;
    int _bandWidth;
    double _cpuMhz;
    int _threads;
    bool _skipTraceback;
    double _modeledCellsPerSec;
    std::array<std::atomic<double>, kEwmaBuckets> _ewmaCellsPerSec;
};

/**
 * Modeled GPU backend: baselines/gpu_model promoted onto the backend
 * seam for the kernels the paper benchmarks on a GPU (GASAL2 for the
 * DNA global/local/banded-local families, CUDASW++ for protein local).
 * Functional results come from the same full-matrix golden model the
 * CPU backend uses (bit-identical to the device for in-range shapes);
 * accounting is modeled, not measured: each run() is one batched
 * kernel launch — a fixed launch overhead plus the batch's DP cells at
 * the published iso-cost GCUPS — with per-job cycles proportional to
 * each job's cells, all counted at the V100 clock. The "arbiter" is
 * the GPU itself: one fully-shared slot whose busy time is the modeled
 * batch service time.
 */
template <core::KernelSpec K>
class GpuModelBackend : public AlignBackend<K>
{
  public:
    using Base = AlignBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    /** True when the paper has a GPU baseline for kernel @p K. */
    static bool covered() { return baseline::hasGpuBaseline(K::kernelId); }

    GpuModelBackend(const Params &params, int band_width, int threads,
                    bool skip_traceback)
        : _aligner(params, band_width), _bandWidth(band_width),
          _threads(std::max(1, threads)), _skipTraceback(skip_traceback)
    {}

    const char *name() const override { return "gpu"; }
    double clockMhz() const override { return baseline::gpuModelClockMhz(); }

    CostEstimate
    estimate(const Job &job) const override
    {
        if (!covered())
            return {0, false};
        // Pure service cost; the per-launch overhead is reported via
        // batchOverheadSeconds() so the router charges it exactly once
        // per shard (run() accounts it the same way).
        const double cells = baselineCells<K>(job, _bandWidth);
        return {baseline::gpuModelServiceSec(K::kernelId, cells), true};
    }

    double
    batchOverheadSeconds() const override
    {
        return baseline::gpuModelLaunchOverheadSec();
    }

    void
    run(const std::vector<Job> &jobs, const std::vector<int> &indices,
        Result *results, uint64_t *cycles, ChannelStats &acct) override
    {
        // Functional pass on host threads (the model has no GPU to run
        // on); accounting below is purely analytic.
        const int n = static_cast<int>(indices.size());
        parallelFor(n, std::min(_threads, std::max(1, n)), [&](int k) {
            const int idx = indices[static_cast<size_t>(k)];
            const auto &job = jobs[static_cast<size_t>(idx)];
            Result res = _aligner.align(job.query, job.reference);
            if (_skipTraceback) {
                res.ops.clear();
                res.start = res.end;
            }
            cycles[static_cast<size_t>(idx)] = std::max<uint64_t>(
                1, baseline::gpuModelServiceCycles(
                       K::kernelId, baselineCells<K>(job, _bandWidth)));
            results[static_cast<size_t>(idx)] = std::move(res);
        });

        // One batched launch: overhead + total cells at the tool's
        // GCUPS. The batch runs concurrently on the GPU, so busy time
        // is the batch service time, not a per-job sum.
        double batch_cells = 0;
        for (const int idx : indices) {
            batch_cells +=
                baselineCells<K>(jobs[static_cast<size_t>(idx)],
                                 _bandWidth);
            acct.totalCycles += cycles[static_cast<size_t>(idx)];
            acct.alignments++;
        }
        acct.busyCycles +=
            static_cast<uint64_t>(baseline::gpuModelLaunchOverheadSec() *
                                  baseline::gpuModelClockMhz() * 1e6) +
            baseline::gpuModelServiceCycles(K::kernelId, batch_cells);
    }

  private:
    ref::MatrixAligner<K> _aligner;
    int _bandWidth;
    int _threads;
    bool _skipTraceback;
};

} // namespace dphls::host

#endif // DPHLS_HOST_BACKEND_HH
