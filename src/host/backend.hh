/**
 * @file
 * Pluggable alignment backends for the streaming host executor.
 *
 * The paper's host front-end (step 6) feeds NK independent device
 * channels; real deployments additionally keep a CPU path for jobs the
 * device cannot take (sequences over the synthesized MAX_*_LENGTH) or
 * should not take (tiny pairs whose DMA/invocation overhead dominates).
 * AlignBackend is the seam between the two: the StreamPipeline routes
 * each job to a backend and aggregates per-backend accounting, so the
 * heterogeneous split stays visible in the epoch statistics.
 *
 * Three implementations:
 *
 *  - DeviceChannelBackend: one simulated device channel — the scalar
 *    cycle-level systolic engine plus the greedy NB-block arbiter
 *    (extracted from the old BatchPipeline::Channel). Per-job device
 *    cycles are the engine's analytic totals plus the configured host
 *    overhead; channel busy cycles are the arbiter makespan.
 *  - LaneChannelBackend: the same channel driven through the SIMD lane
 *    engine — jobs are sorted by (qlen, rlen) and grouped into lockstep
 *    lanes so mixed-length batches share a smaller padded iteration
 *    space. Results and per-job cycles are bit-identical to the scalar
 *    backend (the lane engine's per-lane guarantees); the arbiter runs
 *    in original shard order so channel accounting is unchanged too.
 *  - CpuBaselineBackend: the classic full-matrix CPU implementation
 *    (the golden model the engine is verified against) executed across
 *    host threads with cpu_runner's wall-clock methodology; cycles are
 *    derived from measured seconds at a configurable equivalent clock,
 *    and its "blocks" are the host threads.
 */

#ifndef DPHLS_HOST_BACKEND_HH
#define DPHLS_HOST_BACKEND_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <tuple>
#include <vector>

#include "baselines/cpu_runner.hh"
#include "host/result_cache.hh"
#include "host/scheduler.hh"
#include "reference/matrix_aligner.hh"
#include "systolic/engine.hh"
#include "systolic/lane_engine.hh"

namespace dphls::host {

/** One alignment job: a query/reference pair. */
template <typename CharT>
struct AlignmentJob
{
    seq::Sequence<CharT> query;
    seq::Sequence<CharT> reference;
};

/** Accounting of one backend run (a channel shard or a CPU shard). */
struct ChannelStats
{
    uint64_t busyCycles = 0;  //!< makespan of the backend's blocks/slots
    uint64_t totalCycles = 0; //!< sum of job cycles on this backend
    int alignments = 0;       //!< jobs this backend processed
};

/**
 * A backend that can align a set of jobs. run() fills the per-job
 * output slots (indexed by job index, so submission-order collation is
 * free) and folds its arbiter accounting into @p acct. Implementations
 * are stateful (engines, scratch buffers); the pipeline serializes
 * run() calls per backend instance.
 */
template <core::KernelSpec K>
class AlignBackend
{
  public:
    using CharT = typename K::CharT;
    using ScoreT = typename K::ScoreT;
    using Result = core::AlignResult<ScoreT>;
    using Job = AlignmentJob<CharT>;
    using Params = typename K::Params;

    virtual ~AlignBackend() = default;

    /** Stable backend name used in per-backend stats sections. */
    virtual const char *name() const = 0;
    /** Clock the backend's cycles are counted at (MHz). */
    virtual double clockMhz() const = 0;

    /**
     * Align jobs[indices[k]] for every k; write each job's result and
     * cycle count into results[idx] / cycles[idx]; add the run's
     * arbiter accounting to @p acct.
     */
    virtual void run(const std::vector<Job> &jobs,
                     const std::vector<int> &indices, Result *results,
                     uint64_t *cycles, ChannelStats &acct) = 0;
};

/**
 * One simulated device channel: scalar cycle-level engine, shared
 * result cache, and the greedy NB-block arbiter.
 */
template <core::KernelSpec K>
class DeviceChannelBackend : public AlignBackend<K>
{
  public:
    using Base = AlignBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    DeviceChannelBackend(const sim::EngineConfig &ecfg, const Params &params,
                         int nb, uint64_t host_overhead_cycles,
                         double fmax_mhz, ShardedResultCache<Result> *cache)
        : _engine(ecfg, params), _params(params), _cache(cache),
          _hostOverhead(host_overhead_cycles), _fmaxMhz(fmax_mhz),
          _blockFree(static_cast<size_t>(std::max(1, nb)), 0)
    {}

    const char *name() const override { return "device"; }
    double clockMhz() const override { return _fmaxMhz; }

    void
    run(const std::vector<Job> &jobs, const std::vector<int> &indices,
        Result *results, uint64_t *cycles, ChannelStats &acct) override
    {
        computeResults(jobs, indices, results, cycles);
        arbitrate(indices, cycles, acct);
    }

  protected:
    /** Functional results and per-job device cycles (scalar engine). */
    virtual void
    computeResults(const std::vector<Job> &jobs,
                   const std::vector<int> &indices, Result *results,
                   uint64_t *cycles)
    {
        for (const int idx : indices) {
            const auto &job = jobs[static_cast<size_t>(idx)];
            PairHash key;
            if (cacheEnabled()) {
                key = pairHash(job.query, job.reference, _params);
                if (lookupCached(key, idx, results, cycles))
                    continue;
            }
            Result res = _engine.align(job.query, job.reference);
            finishJob(key, idx, std::move(res),
                      _engine.lastTotalCycles(), results, cycles);
        }
    }

    /**
     * Greedy NB-block arbiter over the per-job cycles, in @p indices
     * order: each job lands on the earliest-free block; busy cycles are
     * the block makespan. Device cycles are independent of block
     * placement, so this runs as a separate phase after the compute.
     */
    void
    arbitrate(const std::vector<int> &indices, const uint64_t *cycles,
              ChannelStats &acct)
    {
        std::fill(_blockFree.begin(), _blockFree.end(), 0);
        for (const int idx : indices) {
            const uint64_t c = cycles[static_cast<size_t>(idx)];
            auto it =
                std::min_element(_blockFree.begin(), _blockFree.end());
            *it += c;
            acct.totalCycles += c;
            acct.alignments++;
        }
        acct.busyCycles +=
            *std::max_element(_blockFree.begin(), _blockFree.end());
    }

    bool cacheEnabled() const { return _cache && _cache->enabled(); }

    bool
    lookupCached(const PairHash &key, int idx, Result *results,
                 uint64_t *cycles)
    {
        auto hit = _cache->lookup(key);
        if (!hit)
            return false;
        results[static_cast<size_t>(idx)] = std::move(hit->result);
        cycles[static_cast<size_t>(idx)] = hit->cycles + _hostOverhead;
        return true;
    }

    void
    finishJob(const PairHash &key, int idx, Result res,
              uint64_t engine_cycles, Result *results, uint64_t *cycles)
    {
        if (cacheEnabled())
            _cache->insert(key, res, engine_cycles);
        cycles[static_cast<size_t>(idx)] = engine_cycles + _hostOverhead;
        results[static_cast<size_t>(idx)] = std::move(res);
    }

    sim::SystolicAligner<K> _engine;
    Params _params;
    ShardedResultCache<Result> *_cache;
    uint64_t _hostOverhead;
    double _fmaxMhz;
    std::vector<uint64_t> _blockFree;
};

/**
 * A device channel whose compute phase runs the lockstep SIMD lane
 * engine with length-aware grouping: jobs are processed in (qlen, rlen)
 * order so each lane group shares a similar padded iteration space.
 * Cache lookups interleave with lane-group flushes, so a pair repeated
 * later in the same shard hits once its first instance's group has been
 * computed and inserted.
 */
template <core::KernelSpec K>
class LaneChannelBackend : public DeviceChannelBackend<K>
{
  public:
    using Base = DeviceChannelBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    LaneChannelBackend(const sim::EngineConfig &ecfg, const Params &params,
                       int nb, uint64_t host_overhead_cycles,
                       double fmax_mhz,
                       ShardedResultCache<Result> *cache, int lane_width,
                       bool sort_by_length)
        : Base(ecfg, params, nb, host_overhead_cycles, fmax_mhz, cache),
          _lanes(ecfg, params),
          _width(std::clamp(lane_width, 1,
                            sim::LaneAligner<K>::maxLanes)),
          _sortByLength(sort_by_length)
    {}

  protected:
    void
    computeResults(const std::vector<Job> &jobs,
                   const std::vector<int> &indices, Result *results,
                   uint64_t *cycles) override
    {
        // Length-aware grouping (sorting only reorders the compute; the
        // arbiter still runs in shard order, and per-lane results and
        // analytic cycle stats are grouping-independent, so everything
        // observable stays bit-identical).
        std::vector<int> order(indices);
        if (_sortByLength && order.size() > 1) {
            std::sort(order.begin(), order.end(), [&](int a, int b) {
                const auto &ja = jobs[static_cast<size_t>(a)];
                const auto &jb = jobs[static_cast<size_t>(b)];
                return std::make_tuple(ja.query.length(),
                                       ja.reference.length(), a) <
                       std::make_tuple(jb.query.length(),
                                       jb.reference.length(), b);
            });
        }

        std::vector<int> group; // job indices awaiting the engine
        group.reserve(static_cast<size_t>(_width));
        std::vector<PairHash> group_keys;
        group_keys.reserve(static_cast<size_t>(_width));

        const auto flushGroup = [&]() {
            if (group.empty())
                return;
            if (group.size() > 1) {
                using Lane = typename sim::LaneAligner<K>::LanePair;
                std::vector<Lane> lanes(group.size());
                for (size_t m = 0; m < group.size(); m++) {
                    const auto &job =
                        jobs[static_cast<size_t>(group[m])];
                    lanes[m] = Lane{&job.query, &job.reference};
                }
                auto lane_results = _lanes.alignLanes(lanes);
                for (size_t m = 0; m < group.size(); m++) {
                    this->finishJob(
                        group_keys[m], group[m],
                        std::move(lane_results[m]),
                        _lanes.laneTotalCycles(static_cast<int>(m)),
                        results, cycles);
                }
            } else {
                const auto &job =
                    jobs[static_cast<size_t>(group[0])];
                Result res =
                    this->_engine.align(job.query, job.reference);
                this->finishJob(group_keys[0], group[0], std::move(res),
                                this->_engine.lastTotalCycles(), results,
                                cycles);
            }
            group.clear();
            group_keys.clear();
        };

        for (const int idx : order) {
            const auto &job = jobs[static_cast<size_t>(idx)];
            PairHash key;
            if (this->cacheEnabled()) {
                key = pairHash(job.query, job.reference, this->_params);
                if (this->lookupCached(key, idx, results, cycles))
                    continue;
            }
            group.push_back(idx);
            group_keys.push_back(key);
            if (static_cast<int>(group.size()) >= _width)
                flushGroup();
        }
        flushGroup();
    }

  private:
    sim::LaneAligner<K> _lanes;
    int _width;
    bool _sortByLength;
};

/**
 * CPU fallback backend: the classic full-matrix implementation (the
 * golden model the systolic engine is verified against bit-for-bit, so
 * in-range jobs produce identical results) executed across host
 * threads. There is no analytic cycle model for the host CPU; cycles
 * are derived from per-job wall-clock measurements at an equivalent
 * clock, cpu_runner's baseline methodology. The backend's "blocks" are
 * its host threads: busy cycles are the greedy makespan over them.
 */
template <core::KernelSpec K>
class CpuBaselineBackend : public AlignBackend<K>
{
  public:
    using Base = AlignBackend<K>;
    using typename Base::Job;
    using typename Base::Params;
    using typename Base::Result;

    CpuBaselineBackend(const Params &params, int band_width,
                       double cpu_mhz, int threads,
                       bool skip_traceback)
        : _aligner(params, band_width), _cpuMhz(cpu_mhz),
          _threads(std::max(1, threads)), _skipTraceback(skip_traceback)
    {}

    const char *name() const override { return "cpu"; }
    double clockMhz() const override { return _cpuMhz; }

    void
    run(const std::vector<Job> &jobs, const std::vector<int> &indices,
        Result *results, uint64_t *cycles, ChannelStats &acct) override
    {
        const int n = static_cast<int>(indices.size());
        parallelFor(n, std::min(_threads, std::max(1, n)), [&](int k) {
            const int idx = indices[static_cast<size_t>(k)];
            const auto &job = jobs[static_cast<size_t>(idx)];
            const auto t0 = std::chrono::steady_clock::now();
            Result res = _aligner.align(job.query, job.reference);
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (_skipTraceback) {
                res.ops.clear();
                res.start = res.end;
            }
            cycles[static_cast<size_t>(idx)] =
                baseline::wallClockCycles(seconds, _cpuMhz);
            results[static_cast<size_t>(idx)] = std::move(res);
        });

        // Host threads as slots: greedy earliest-free packing, same
        // arbiter shape as the device channels' NB blocks. The slot
        // vector is run-local: the pipeline does not serialize CPU
        // shards of different tickets (this backend has no other
        // mutable state — MatrixAligner::align is const).
        std::vector<uint64_t> slot_free(
            static_cast<size_t>(_threads), 0);
        for (const int idx : indices) {
            const uint64_t c = cycles[static_cast<size_t>(idx)];
            auto it = std::min_element(slot_free.begin(), slot_free.end());
            *it += c;
            acct.totalCycles += c;
            acct.alignments++;
        }
        acct.busyCycles +=
            *std::max_element(slot_free.begin(), slot_free.end());
    }

  private:
    ref::MatrixAligner<K> _aligner;
    double _cpuMhz;
    int _threads;
    bool _skipTraceback;
};

} // namespace dphls::host

#endif // DPHLS_HOST_BACKEND_HH
