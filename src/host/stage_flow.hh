/**
 * @file
 * Inter-stage plumbing of stage-pipelined shard execution.
 *
 * DP-HLS's device throughput comes from deeply pipelined dataflow
 * between DP stages; the host analog here decouples a shard into
 * producer (encode + band/fill) and consumer (traceback + writeback)
 * stages connected by a bounded SPSC FIFO, so the traceback of job i
 * overlaps the fill of job i+1 on the same backend slot. The FIFO bound
 * is the stage decoupling depth: capacity 1 degenerates to lockstep
 * hand-off (the differential tests' degenerate mode), larger capacities
 * let a fast fill run ahead of a slow traceback.
 *
 * Stage boundaries double as cooperative scheduling points: between
 * jobs (and lane groups) the producer polls the shard's PreemptToken
 * and the owning ticket's cancellation flag through StageRunControl,
 * so a higher-priority ticket can take the slot mid-shard and a
 * cancelled ticket drops its not-yet-started stages instead of running
 * the whole shard to completion.
 */

#ifndef DPHLS_HOST_STAGE_FLOW_HH
#define DPHLS_HOST_STAGE_FLOW_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "host/check.hh"
#include "host/scheduler.hh"

namespace dphls::host {

/**
 * Bounded single-producer single-consumer FIFO between shard stages.
 * push() blocks while full; pop() blocks until an item or close().
 */
template <typename T>
class BoundedFifo
{
  public:
    explicit BoundedFifo(size_t capacity)
        : _capacity(capacity < 1 ? 1 : capacity)
    {}

    /** Enqueue one item; blocks while the FIFO is at capacity. */
    void
    push(T item)
    {
        std::unique_lock<std::mutex> lock(_mutex);
        // SPSC state machine: only the producer closes, so a push
        // observing _closed is a use-after-close in the producer.
        DPHLS_DCHECK(!_closed, "BoundedFifo::push after close()");
        _spaceCv.wait(lock,
                      [this] { return _items.size() < _capacity; });
        DPHLS_DCHECK(_items.size() < _capacity,
                     "BoundedFifo over capacity: ", _items.size(),
                     " items, capacity ", _capacity);
        _items.push_back(std::move(item));
        _itemCv.notify_one();
    }

    /**
     * Dequeue one item; blocks until one is available. Returns empty
     * once the FIFO is closed AND drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _itemCv.wait(lock,
                     [this] { return !_items.empty() || _closed; });
        DPHLS_DCHECK(!_items.empty() || _closed,
                     "BoundedFifo::pop woke with no item and not closed");
        if (_items.empty())
            return std::nullopt;
        DPHLS_DCHECK(_items.size() <= _capacity,
                     "BoundedFifo over capacity: ", _items.size(),
                     " items, capacity ", _capacity);
        T item = std::move(_items.front());
        _items.pop_front();
        _spaceCv.notify_one();
        return item;
    }

    /** Producer is done; pending items still drain. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _closed = true;
        _itemCv.notify_all();
    }

  private:
    const size_t _capacity;
    std::deque<T> _items;
    bool _closed = false;
    std::mutex _mutex;
    std::condition_variable _itemCv;
    std::condition_variable _spaceCv;
};

/**
 * Per-staged-run control block handed from the dispatcher into
 * AlignBackend::runStaged(). Inputs tell the backend when to yield;
 * outputs tell the dispatcher which jobs actually wrote back so it can
 * re-queue or cancel-account the remainder.
 */
struct StageRunControl
{
    /** Preemption token of this run; null = preemption disabled. */
    const PreemptToken *preempt = nullptr;
    /** Owning ticket's cancellation flag; null = not cancellable. */
    const std::atomic<bool> *cancelled = nullptr;
    /** Capacity of the fill -> traceback FIFO (>= 1). */
    int fifoDepth = 4;

    /**
     * Out: done[k] == 1 once jobs[indices[k]]'s writeback completed.
     * Sized/zeroed by the dispatcher before the call. Not an indices
     * prefix: grouping backends may finish out of submission order.
     */
    std::vector<uint8_t> done;
    /** Out: the producer stopped at a preemption point. */
    bool preempted = false;
    /** Out: the producer stopped because the ticket was cancelled. */
    bool sawCancel = false;

    /** True when the producer must stop issuing new fill stages. */
    bool
    shouldYield()
    {
        if (cancelled != nullptr &&
            cancelled->load(std::memory_order_acquire)) {
            sawCancel = true;
            return true;
        }
        if (preempt != nullptr && preempt->requested()) {
            preempted = true;
            return true;
        }
        return false;
    }
};

} // namespace dphls::host

#endif // DPHLS_HOST_STAGE_FLOW_HH
