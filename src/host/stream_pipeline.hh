/**
 * @file
 * Streaming multi-backend host executor with priority scheduling.
 *
 * The paper's host programs (front-end step 6) keep the device's NK
 * independent channels saturated. StreamPipeline generalizes the old
 * barrier-epoch BatchPipeline into a streaming executor over pluggable
 * AlignBackends (host/backend.hh):
 *
 *  - submit() returns a per-batch **ticket**; batches complete
 *    independently (no global barrier), completion callbacks fire as
 *    each batch's last shard finishes, and collect()/wait() retire one
 *    ticket at a time so hosts can pipeline parse -> align -> writeback.
 *  - Accounting is **per ticket**: every ticket carries its own channel
 *    and backend statistics, finalized at completion, so a submit()
 *    overlapping a drain() can no longer race the epoch accounting (the
 *    documented BatchPipeline restriction is gone).
 *  - A **dispatch policy** routes each job to a backend. The Threshold
 *    policy is the shape rule: jobs the device cannot take (sequences
 *    over MAX_*_LENGTH) or should not take (pairs below a configurable
 *    floor) go to the CPU baseline backend, everything else round-robins
 *    over the device channels. The CostModel policy instead asks every
 *    enabled backend for a service-time estimate (device channels:
 *    analytic cycle formulas; CPU: EWMA of measured cells/sec; GPU
 *    model: published GCUPS) and routes each job to the backend — and
 *    channel — with the lowest estimated completion time given its
 *    current queued work. When the ticket carries a deadline the router
 *    folds it into the argmin: among backends whose estimated completion
 *    beats the deadline it picks the one with the lowest marginal
 *    service cost, even if another backend would complete sooner — fast
 *    capacity stays free for traffic that actually needs it. Either
 *    way, per-backend stats sections make the heterogeneous split
 *    visible, and they sum to the epoch totals. A job no enabled
 *    backend can take fails loudly at submission with its index and
 *    shape.
 *  - Shards wait in **per-backend dispatch queues**, not FIFO: each
 *    device channel (and the CPU/GPU backend) pulls its
 *    highest-priority queued shard next, ties broken by earliest
 *    deadline, then submission order. TicketOptions carries the
 *    priority, deadline and tag; with no options every ticket is class
 *    0 with no deadline and dispatch degrades to exact FIFO. Deadline
 *    misses are counted per backend (ChannelStats/BackendStats
 *    ::deadlineMisses) and summed into BatchStats::deadlineMisses.
 *  - Tickets can be **cancelled**: queued shards are dropped (and
 *    accounted per backend as ChannelStats::cancelled), in-flight
 *    shards run to completion, and the ticket still completes — wait()
 *    returns, the completion callback fires once, and results() holds a
 *    partial result set (BatchTicket::completed() says which jobs ran;
 *    the rest hold default-constructed results and zero cycles).
 *  - Host worker **threads are decoupled from NK**: with the lane
 *    engine one thread can saturate several modeled channels, so
 *    BatchConfig::threads sizes the pool independently (0 = one thread
 *    per channel, the old arrangement). When threads are scarcer than
 *    runnable shards the pool pops tasks in the same (priority,
 *    deadline, FIFO) order as the dispatch queues.
 *
 * pause()/resume() gate dispatch without blocking submission: while
 * paused, submitted shards accumulate in the dispatch queues and
 * resume() releases them in scheduling order — letting hosts (and the
 * benches) batch a backlog and observe a deterministic dispatch order.
 *
 * drain() remains as a compatibility wrapper that waits for every
 * outstanding ticket and aggregates in submission order; BatchPipeline
 * (host/batch_pipeline.hh) is now an alias of this class. For a single
 * batch, results, CIGARs and per-job device cycles are bit-identical to
 * the old pipeline (enforced by tests/test_stream_pipeline.cc), and the
 * priority machinery is transparent when unused (enforced by
 * tests/test_scheduler_torture.cc).
 *
 * Multi-batch epoch accounting sums each channel's per-ticket arbiter
 * makespans (batches synchronize at batch boundaries); for one batch
 * this equals the old epoch-wide greedy packing exactly.
 */

#ifndef DPHLS_HOST_STREAM_PIPELINE_HH
#define DPHLS_HOST_STREAM_PIPELINE_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/alignment_stats.hh"
#include "host/backend.hh"
#include "host/check.hh"
#include "host/result_cache.hh"
#include "host/scheduler.hh"

namespace dphls::host {

/** How the pipeline routes jobs across its backends. */
enum class DispatchPolicy : uint8_t
{
    /**
     * Shape thresholds (the original rule): oversized/tiny jobs to the
     * CPU backend, everything else round-robin over device channels.
     * Bit-identical to the pre-cost-model pipeline.
     */
    Threshold,
    /**
     * Pick the backend (and channel) with the lowest estimated
     * completion time: per-job service estimate plus the backend's
     * live queued-work signal. Balances load across heterogeneous
     * executors instead of cutting on shape alone. Tickets with a
     * deadline instead prefer the cheapest backend that still meets
     * it (see the file comment).
     */
    CostModel,
};

/** Scheduling class of one submitted ticket. */
struct TicketOptions
{
    /** Higher is dispatched first; the default class is 0. */
    int priority = 0;
    /**
     * Completion deadline; time_point::max() (the default) means none.
     * Queued shards of an earlier-deadline ticket run first within a
     * priority class, completions after the deadline are counted as
     * deadline misses, and the cost-model router prefers backends whose
     * estimated completion beats the deadline.
     */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /** Free-form label for logs and host-side bookkeeping. */
    std::string tag;

    bool
    hasDeadline() const
    {
        return deadline != std::chrono::steady_clock::time_point::max();
    }

    /** Options with a deadline @p deadline_ms from now. */
    static TicketOptions
    afterMs(int priority, double deadline_ms, std::string tag = {})
    {
        TicketOptions opt;
        opt.priority = priority;
        opt.deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               deadline_ms));
        opt.tag = std::move(tag);
        return opt;
    }
};

/** Pipeline configuration: parallelism, frequency and engine options. */
struct BatchConfig
{
    int npe = 32;                  //!< PEs per systolic block
    int nb = 16;                   //!< blocks per channel (arbiter width)
    int nk = 4;                    //!< independent device channels
    /**
     * Host worker threads, decoupled from NK: 0 (the default) sizes
     * the pool at one thread per channel; with SIMD lanes a single
     * thread can saturate several modeled channels, so fewer threads
     * than channels is a legitimate configuration. Accounting is
     * modeled (cycle-domain), so thread count never changes results or
     * statistics — only host wall-clock.
     */
    int threads = 0;
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /** Host/DMA overhead cycles charged per alignment. */
    uint64_t hostOverheadCycles = 2000;
    /** Aggregate path-level AlignmentStats over all tracebacks. */
    bool collectPathStats = true;
    /**
     * Jobs per SIMD lane group (1 = scalar engine per job; 8 or 16 are
     * the intended widths, capped at LaneAligner::maxLanes). Per-job
     * results and accounting are identical either way.
     */
    int laneWidth = 1;
    /**
     * Length-aware lane grouping: sort each device shard by
     * (qlen, rlen) before forming lane groups so lockstep lanes share a
     * similar padded iteration space. Observable output is unchanged
     * (results, per-job cycles and arbiter accounting are
     * grouping-independent); only host wall-clock improves on
     * mixed-length batches. Ignored when laneWidth == 1.
     */
    bool sortLanesByLength = true;
    /**
     * Host SIMD ISA tier of the lane engines (Auto = widest the CPU
     * supports, capped by the DPHLS_ISA_TIER env var). Dispatch-time
     * only: results and accounting are bit-identical across tiers, so
     * the choice never splits the result cache. An explicitly requested
     * tier the host cannot run makes the pipeline constructor throw.
     */
    sim::IsaTier isaTier = sim::IsaTier::Auto;
    /**
     * Vectorize single leftover jobs along their own anti-diagonals
     * (EnginePath::DiagSimd) when a lane group of one has both lengths
     * >= intraPairSimdMinLen: at low batch occupancy there are no
     * sibling pairs to fill the SIMD lanes, so long pairs recover the
     * throughput intra-pair instead. Results and cycle accounting are
     * bit-identical either way. Ignored when laneWidth == 1.
     */
    bool intraPairSimd = false;
    /** Minimum min(qlen, rlen) for the intra-pair SIMD path. */
    int intraPairSimdMinLen = 1024;
    /**
     * Route jobs the device cannot take (qlen/rlen over the configured
     * maxima) or should not take (both dimensions under cpuFloorLen) to
     * the CPU baseline backend. Off by default: without it, oversized
     * jobs throw exactly as before.
     */
    bool cpuFallback = false;
    /** Jobs with max(qlen, rlen) < floor go to the CPU backend. */
    int cpuFloorLen = 0;
    /** Equivalent clock (MHz) for wall-derived CPU-backend cycles. */
    double cpuEquivalentMhz = 1500.0;
    /** CPU-backend worker threads (0 = same as the pool size). */
    int cpuThreads = 0;
    /**
     * Pin the CPU backend's cells/sec instead of learning it from wall
     * -clock measurements, and derive its cycles from the pinned rate.
     * Makes CPU-backend accounting deterministic — benches and
     * differential tests use it; real hosts leave it 0 (measure).
     */
    double cpuModeledCellsPerSec = 0;
    /** Backend routing rule; Threshold preserves the original path. */
    DispatchPolicy dispatch = DispatchPolicy::Threshold;
    /**
     * Add the modeled GPU backend (GASAL2/CUDASW++ iso-cost GCUPS) for
     * kernels the paper benchmarks on a GPU. It only receives jobs
     * under the CostModel policy.
     */
    bool gpuModel = false;
    /**
     * Result-cache capacity in entries; 0 (the default) disables the
     * cache. Enable it for workloads with repeated pairs (all-vs-all
     * search, mapping seeds) — on all-distinct batches it only costs
     * hashing plus result copies into the LRU.
     */
    size_t cacheEntries = 0;
    /** Result-cache shard count (lock granularity). */
    size_t cacheShards = 8;
    /**
     * Anti-starvation aging for the dispatch queues (and the worker
     * pool): every N-th pop from a queue takes the *oldest* queued
     * shard (lowest submission sequence) instead of the
     * highest-priority one, so a saturating high-priority stream
     * cannot keep bulk-class shards queued for more than N-1
     * consecutive pops. 0 (the default) disables aging and preserves
     * the exact (priority, deadline, FIFO) order — the transparency
     * guarantees of the priority machinery are unchanged.
     */
    int agingEvery = 0;
    /**
     * Stage-pipelined shard execution: split each device shard into a
     * fill producer and a traceback/writeback consumer connected by a
     * bounded FIFO, so the traceback of job i overlaps the fill of
     * job i+1 on the same channel. Results, per-job cycles and epoch
     * accounting are bit-identical to the monolithic path (the cycle
     * domain is analytic, so execution overlap cannot change it);
     * only host wall-clock improves on traceback-heavy workloads.
     */
    bool stagePipeline = false;
    /**
     * Fill -> traceback FIFO capacity (clamped to >= 1). Capacity 1
     * degenerates to lockstep stage hand-off; larger values let a
     * fast fill run ahead of a slow traceback.
     */
    int stageFifoDepth = 4;
    /**
     * Let a strictly-higher-priority submission interrupt an
     * in-flight staged shard at its next stage boundary: the shard
     * yields its slot, the jobs whose stages had not started re-queue
     * as a same-sequence remainder shard, and the yield is counted in
     * ChannelStats::preemptions. Requires stagePipeline. When no
     * preemption fires the output is bit-identical to preemption off.
     */
    bool preemption = false;
};

/** One backend's section of an epoch/ticket accounting. */
struct BackendStats
{
    const char *name = "device";
    double clockMhz = 0;     //!< clock its cycles are counted at
    uint64_t busyCycles = 0; //!< makespan across the backend's blocks
    uint64_t totalCycles = 0;
    int alignments = 0;
    int cancelled = 0;       //!< jobs dropped from this backend's queue
    int deadlineMisses = 0;  //!< jobs completed past their deadline
    int preemptions = 0;     //!< staged shards that yielded mid-flight
    double seconds = 0;      //!< busyCycles / clockMhz
};

/** Aggregate outcome of one ticket / drained epoch. */
struct BatchStats
{
    /** Resolved host SIMD tier the device channels dispatched to
     *  (isaTierName: "scalar", "sse2", "avx2", "avx512"). */
    const char *isaTier = "";
    std::vector<ChannelStats> channels; //!< device channels
    ChannelStats cpu;                   //!< CPU-fallback backend totals
    ChannelStats gpu;                   //!< modeled GPU backend totals
    /** Per-backend sections (derived by finalizeBatchStats); their
     *  alignments, cancelled and totalCycles sum to the epoch totals
     *  below. */
    std::vector<BackendStats> backends;
    uint64_t makespanCycles = 0; //!< slowest device channel's busy cycles
    uint64_t totalCycles = 0;    //!< sum over all alignments, all backends
    int alignments = 0;          //!< jobs that actually ran
    int cancelled = 0;           //!< jobs dropped by a ticket cancel()
    int deadlineMisses = 0;      //!< jobs completed past their deadline
    int preemptions = 0;         //!< staged shards that yielded mid-flight
    double seconds = 0;          //!< slowest backend section's wall time
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;
    /** Path-level statistics summed over every traceback in the epoch. */
    core::AlignmentStats paths;
};

/** Round-robin shard of @p jobs job indices over @p channels channels. */
std::vector<std::vector<int>> shardRoundRobin(int jobs, int channels);

/** Round-robin shard of explicit job indices over @p channels channels. */
std::vector<std::vector<int>>
shardIndicesRoundRobin(const std::vector<int> &indices, int channels);

/** Sum the counting fields of @p add into @p into. */
void mergePathStats(core::AlignmentStats &into,
                    const core::AlignmentStats &add);

/**
 * Fill the derived fields (backend sections, makespan, totals, seconds,
 * throughput) of @p stats from its per-channel and CPU accounting.
 */
void finalizeBatchStats(BatchStats &stats, double fmax_mhz,
                        double cpu_mhz = 0);

/**
 * Sum @p add's raw accounting (channels, cpu, paths) into @p into;
 * the caller re-finalizes afterwards. Channel busy cycles add up as
 * sequential per-batch makespans.
 */
void accumulateBatchStats(BatchStats &into, const BatchStats &add);

template <core::KernelSpec K>
class StreamPipeline;

template <core::KernelSpec K>
class BatchTicket;

/**
 * A booked slice of the dispatch backlog, created by
 * StreamPipeline::reserveCompletion(). The reservation adds the batch's
 * routed per-slot work to the live queued-work signal *atomically with
 * the estimate*, so two concurrent admission checks can no longer both
 * be admitted against the same free capacity: the second reserver's
 * estimate already includes the first one's booking.
 *
 * Lifecycle (admission control):
 *  - reserve-on-estimate: reserveCompletion() books and returns this;
 *  - commit-on-submit: pass it to submit() — the real enqueue replaces
 *    the booking (added before the booking is dropped, so the backlog
 *    transiently double-counts but never under-counts);
 *  - release-on-reject: call release() (or just drop the object — the
 *    destructor releases, so an exception path cannot leak capacity).
 *
 * Move-only; releasing twice is a no-op. A reservation outliving its
 * pipeline releases into nothing (weak reference) rather than touching
 * freed slots.
 */
class AdmissionReservation
{
  public:
    AdmissionReservation() = default;

    AdmissionReservation(AdmissionReservation &&other) noexcept
        : _release(std::move(other._release)), _estimate(other._estimate)
    {
        other._release = nullptr;
    }

    AdmissionReservation &
    operator=(AdmissionReservation &&other) noexcept
    {
        if (this != &other) {
            release();
            _release = std::move(other._release);
            _estimate = other._estimate;
            other._release = nullptr;
        }
        return *this;
    }

    AdmissionReservation(const AdmissionReservation &) = delete;
    AdmissionReservation &operator=(const AdmissionReservation &) = delete;

    ~AdmissionReservation() { release(); }

    /**
     * Modeled completion seconds of the reserved batch: the worst used
     * slot's backlog — including this reservation and any concurrent
     * ones booked first — plus the batch's own routed work.
     */
    double estimateSeconds() const { return _estimate; }

    /** True while this reservation still holds booked capacity. */
    bool active() const { return static_cast<bool>(_release); }

    /** Return the booked capacity (the reject path); idempotent. */
    void
    release()
    {
        if (_release) {
            auto fn = std::move(_release);
            _release = nullptr;
            fn();
        }
    }

  private:
    template <core::KernelSpec K>
    friend class StreamPipeline;

    std::function<void()> _release; //!< unbooks the per-slot amounts
    double _estimate = 0;
};

namespace detail {

/**
 * Shared dispatch state: one queue of pending shards per backend slot
 * (NK device channels, then the CPU backend, then the GPU model),
 * popped in (priority, deadline, FIFO) order up to the slot's
 * concurrency capacity — 1 for the stateful device channels, the pool
 * width for the stateless CPU/GPU backends, which therefore keep
 * serving shards of different tickets concurrently as they did before
 * the dispatch queues existed. The pipeline holds the owning
 * shared_ptr; tickets hold a weak_ptr upgraded on cancel(), so a
 * cancel() races pipeline destruction safely: ~StreamPipeline drains
 * every queue before its backends die, and once the core itself is
 * gone the upgrade simply fails and cancel() only flips the ticket
 * flag (nothing queued can remain by then).
 */
template <core::KernelSpec K>
class DispatchCore
{
  public:
    using Ticket = std::shared_ptr<BatchTicket<K>>;
    using Clock = std::chrono::steady_clock;

    /** One queued shard: its ticket, job indices and scheduling key. */
    struct ShardEntry
    {
        Ticket ticket;
        std::vector<int> indices;
        double estSeconds = 0; //!< routed-work estimate (backlog signal)
        int priority = 0;
        Clock::time_point deadline = Clock::time_point::max();
        uint64_t seq = 0; //!< submission order (FIFO tiebreak)
    };

    /** Dispatch order: entryBefore() as a strict weak ordering (seq is
     *  unique, so it is in fact total — pops are deterministic). */
    struct EntryOrder
    {
        bool
        operator()(const ShardEntry &a, const ShardEntry &b) const
        {
            return entryBefore(a, b);
        }
    };

    /** One backend execution slot and its dispatch queue. */
    struct Slot
    {
        /** Protects queue and busy. Rank-checked: slot locks never
         *  nest (neither with each other nor inside other host locks
         *  of equal-or-higher rank). */
        DebugMutex mutex{lockrank::kDispatchSlot, "dispatch-slot"};
        int busy = 0;     //!< shards currently executing (<= capacity)
        /**
         * Concurrent-shard limit: 1 for stateful device channels (the
         * engine serializes), pool width for the stateless CPU/GPU
         * backends (MatrixAligner::align is const, so shards of
         * different tickets may run concurrently).
         */
        int capacity = 1;
        /**
         * Pending shards, best-first: O(log n) insert and pop keep a
         * large paused backlog's release at O(n log n) overall (a
         * linear scan per pop would make it quadratic). Cancellation
         * still scans — it is the rare path.
         */
        std::multiset<ShardEntry, EntryOrder> queue;
        /** Estimated seconds of routed-but-unfinished work. */
        std::atomic<int64_t> queuedMicros{0};
        /** Pops so far (aging phase); guarded by mutex. */
        uint64_t pops = 0;
        /**
         * Preemption target: token of the staged shard occupying the
         * slot (null while idle, or when preemption is disabled);
         * guarded by mutex. The token outlives its registration — it
         * lives on the running worker's stack and is deregistered
         * before the run returns.
         */
        PreemptToken *runningToken = nullptr;
        /** Priority of the running shard (valid with runningToken). */
        int runningPriority = 0;
    };

    DispatchCore(int nk, double fmax_mhz, double cpu_mhz,
                 int aging_every = 0)
        : _nk(nk), _fmaxMhz(fmax_mhz), _cpuMhz(cpu_mhz),
          _agingEvery(std::max(0, aging_every)),
          _slots(static_cast<size_t>(nk) + 2)
    {}

    /** Anti-starvation period (0 = strict priority order). */
    int agingEvery() const { return _agingEvery; }

    int cpuSlot() const { return _nk; }
    int gpuSlot() const { return _nk + 1; }
    int slotCount() const { return _nk + 2; }
    Slot &slot(int s) { return _slots[static_cast<size_t>(s)]; }

    uint64_t nextSeq() { return _seq.fetch_add(1, std::memory_order_relaxed); }

    double
    queuedSeconds(int s)
    {
        return static_cast<double>(slot(s).queuedMicros.load(
                   std::memory_order_relaxed)) *
               1e-6;
    }

    void
    noteEnqueued(int s, double seconds)
    {
        slot(s).queuedMicros.fetch_add(toMicros(seconds),
                                       std::memory_order_relaxed);
    }

    void
    noteCompleted(int s, double seconds)
    {
        slot(s).queuedMicros.fetch_sub(toMicros(seconds),
                                       std::memory_order_relaxed);
    }

    /** True when @p a should be dispatched before @p b. */
    static bool
    entryBefore(const ShardEntry &a, const ShardEntry &b)
    {
        if (a.priority != b.priority)
            return a.priority > b.priority;
        if (a.deadline != b.deadline)
            return a.deadline < b.deadline;
        return a.seq < b.seq;
    }

    /** The ticket-stats bucket slot @p s accounts into. */
    ChannelStats &acctFor(BatchTicket<K> &ticket, int s);

    /**
     * Drop every queued shard of @p ticket, accounting the dropped jobs
     * as cancelled on the backend they were queued for and retiring
     * their shards (the last retire completes the ticket). In-flight
     * shards are untouched and run to completion.
     */
    void dropTicket(BatchTicket<K> &ticket);

    /**
     * Mark one shard done; the last one finalizes the ticket, runs the
     * completion callback and only then releases waiters — so wait()
     * returning guarantees the callback has finished (a callback must
     * therefore never wait on its own ticket).
     */
    void finishShard(BatchTicket<K> &ticket);

    /** Dispatch gate: while set, pumps leave queued shards in place. */
    std::atomic<bool> paused{false};

  private:
    static int64_t
    toMicros(double seconds)
    {
        return static_cast<int64_t>(std::llround(seconds * 1e6));
    }

    int _nk;
    double _fmaxMhz;
    double _cpuMhz;
    int _agingEvery;
    std::atomic<uint64_t> _seq{0};
    std::deque<Slot> _slots; //!< deque: Slot is neither movable nor copyable
};

} // namespace detail

/**
 * One submitted batch: per-job outputs in submission order, per-ticket
 * accounting, and a completion latch. Tickets are shared between the
 * submitting host and the worker tasks; results()/cycles()/stats() are
 * valid once done() (or after wait()).
 */
template <core::KernelSpec K>
class BatchTicket
{
  public:
    using CharT = typename K::CharT;
    using Result = core::AlignResult<typename K::ScoreT>;
    using Job = AlignmentJob<CharT>;

    bool
    done() const
    {
        std::lock_guard lock(_mutex);
        return _done;
    }

    /**
     * Block until every shard of this batch has completed or been
     * dropped by cancel() — a cancelled ticket still completes (with a
     * partial result set) rather than blocking forever.
     */
    void
    wait() const
    {
        std::unique_lock lock(_mutex);
        _cv.wait(lock, [&] { return _done; });
    }

    /**
     * Request cancellation: shards still queued are dropped immediately
     * and accounted as cancelled on their backend; shards already
     * running finish normally. When the drop retires the ticket's last
     * outstanding shard, its completion callback runs synchronously on
     * the cancelling thread. Returns false when the ticket had already
     * completed (nothing to cancel), true otherwise — including repeat
     * calls while the cancellation is in flight.
     */
    bool
    cancel()
    {
        {
            std::lock_guard lock(_mutex);
            if (_done)
                return false;
            if (_cancelled.exchange(true, std::memory_order_acq_rel))
                return true; // first cancel() already dropped the queues
        }
        if (auto core = _core.lock())
            core->dropTicket(*this);
        return true;
    }

    /** True once cancel() has been requested. */
    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_acquire);
    }

    /** The scheduling class this ticket was submitted with. */
    const TicketOptions &options() const { return _options; }

    /** The batch's jobs (owned or borrowed), in submission order. */
    const std::vector<Job> &jobs() const { return _view ? *_view : _jobs; }

    /** Per-job results, indexed like jobs(). Valid once done(). */
    const std::vector<Result> &results() const { return _results; }

    /** Per-job cycle counts, indexed like jobs(). Valid once done(). */
    const std::vector<uint64_t> &cycles() const { return _cycles; }

    /**
     * Per-job completion mask, indexed like jobs(), valid once done():
     * 1 when the job actually ran (its result/cycles slots are live),
     * 0 when its shard was dropped by cancel() (the slots hold default
     * values). All-ones unless the ticket was cancelled.
     */
    const std::vector<uint8_t> &completed() const { return _completed; }

    /** Per-ticket accounting, finalized at completion. */
    const BatchStats &stats() const { return _stats; }

  private:
    friend class StreamPipeline<K>;
    friend class detail::DispatchCore<K>;

    std::vector<Job> _jobs;                 //!< owned (submit path)
    const std::vector<Job> *_view = nullptr; //!< borrowed (runAll path)
    std::vector<Result> _results;
    std::vector<uint64_t> _cycles;
    std::vector<uint8_t> _completed;
    BatchStats _stats;
    TicketOptions _options;
    std::function<void(BatchTicket &)> _callback;
    std::weak_ptr<detail::DispatchCore<K>> _core;
    std::atomic<bool> _cancelled{false};
    int _pending = 0; //!< shards still running (under _mutex)
    bool _done = false;
    mutable std::mutex _mutex;
    mutable std::condition_variable _cv;
};

namespace detail {

template <core::KernelSpec K>
ChannelStats &
DispatchCore<K>::acctFor(BatchTicket<K> &ticket, int s)
{
    if (s < _nk)
        return ticket._stats.channels[static_cast<size_t>(s)];
    if (s == _nk)
        return ticket._stats.cpu;
    return ticket._stats.gpu;
}

template <core::KernelSpec K>
void
DispatchCore<K>::dropTicket(BatchTicket<K> &ticket)
{
    for (int s = 0; s < slotCount(); s++) {
        ShardEntry dropped;
        bool found = false;
        {
            std::lock_guard lock(slot(s).mutex);
            auto &q = slot(s).queue;
            // At most one entry per (ticket, slot): routing emits one
            // shard per backend slot per batch.
            auto it = std::find_if(q.begin(), q.end(),
                                   [&](const ShardEntry &e) {
                                       return e.ticket.get() == &ticket;
                                   });
            if (it != q.end()) {
                auto node = q.extract(it);
                dropped = std::move(node.value());
                found = true;
            }
        }
        if (!found)
            continue;
        noteCompleted(s, dropped.estSeconds);
        // No writer race: the entry is out of its queue, so no worker
        // will account this (ticket, slot) bucket concurrently.
        acctFor(ticket, s).cancelled +=
            static_cast<int>(dropped.indices.size());
        finishShard(ticket);
    }
}

template <core::KernelSpec K>
void
DispatchCore<K>::finishShard(BatchTicket<K> &ticket)
{
    std::function<void(BatchTicket<K> &)> callback;
    {
        std::lock_guard lock(ticket._mutex);
        if (ticket._pending > 0 && --ticket._pending > 0)
            return;
        finalizeBatchStats(ticket._stats, _fmaxMhz, _cpuMhz);
        DPHLS_DCHECK(ticket._stats.alignments + ticket._stats.cancelled ==
                         static_cast<int>(ticket.jobs().size()),
                     "ticket accounting not closed: ",
                     ticket._stats.alignments, " aligned + ",
                     ticket._stats.cancelled, " cancelled != ",
                     ticket.jobs().size(), " jobs");
        callback = std::move(ticket._callback);
    }
    if (callback)
        callback(ticket);
    {
        std::lock_guard lock(ticket._mutex);
        ticket._done = true;
        // Notify under the lock: a collect()or woken between unlock and
        // notify may destroy the ticket (and its CV) mid-broadcast.
        ticket._cv.notify_all();
    }
}

} // namespace detail

/**
 * Streaming multi-backend pipeline running kernel @p K.
 *
 * Thread-safety: submit()/collect()/drain()/pause()/resume() and ticket
 * cancel() may be called concurrently from any thread. Completion
 * callbacks usually run on a worker thread, but fire synchronously on
 * the thread that retires the ticket's last shard: submit() of an
 * empty batch, a cancel() that drops the last queued shard, or a
 * resume()/submit() whose pump discards a cancelled entry — callbacks
 * must not throw, must never wait on their own ticket, and must not
 * take locks the cancelling/submitting thread may already hold.
 * Destroying the
 * pipeline drains every queued and in-flight shard first (releasing a
 * pause if one is active), so held tickets complete (and become
 * collectible) even when the pipeline dies before they are waited on —
 * including cancelled-but-unwaited tickets, whose callbacks have
 * already run or been destroyed with the ticket, never leaked.
 */
template <core::KernelSpec K>
class StreamPipeline
{
  public:
    using CharT = typename K::CharT;
    using ScoreT = typename K::ScoreT;
    using Result = core::AlignResult<ScoreT>;
    using Job = AlignmentJob<CharT>;
    using Params = typename K::Params;
    using Ticket = std::shared_ptr<BatchTicket<K>>;
    using Callback = std::function<void(BatchTicket<K> &)>;

    explicit StreamPipeline(BatchConfig cfg = {},
                            Params params = K::defaultParams())
        : _cfg(cfg), _params(params),
          _cache(cfg.cacheEntries, cfg.cacheShards),
          _pool(poolThreads(cfg), cfg.agingEvery)
    {
        _cfg.nk = std::max(1, _cfg.nk);
        _cfg.nb = std::max(1, _cfg.nb);
        _cfg.threads = poolThreads(cfg);
        _cfg.agingEvery = std::max(0, _cfg.agingEvery);
        _cfg.stageFifoDepth = std::max(1, _cfg.stageFifoDepth);
        _cfg.laneWidth = std::clamp(_cfg.laneWidth, 1,
                                    sim::LaneAligner<K>::maxLanes);
        _core = std::make_shared<detail::DispatchCore<K>>(
            _cfg.nk, _cfg.fmaxMhz, _cfg.cpuEquivalentMhz,
            _cfg.agingEvery);
        const int baseline_width = std::max(
            1, _cfg.cpuThreads > 0 ? _cfg.cpuThreads : _cfg.threads);
        _core->slot(_core->cpuSlot()).capacity = baseline_width;
        _core->slot(_core->gpuSlot()).capacity = baseline_width;
        sim::EngineConfig ecfg;
        ecfg.numPe = _cfg.npe;
        ecfg.bandWidth = _cfg.bandWidth;
        ecfg.maxQueryLength = _cfg.maxQueryLength;
        ecfg.maxReferenceLength = _cfg.maxReferenceLength;
        ecfg.skipTraceback = _cfg.skipTraceback;
        ecfg.cycles = _cfg.cycles;
        ecfg.isaTier = _cfg.isaTier;
        // Resolve now so an unsupported explicit tier fails at
        // construction, not on the first aligned batch.
        _resolvedTier = sim::resolveIsaTier(_cfg.isaTier);
        _channels.reserve(static_cast<size_t>(_cfg.nk));
        for (int c = 0; c < _cfg.nk; c++) {
            if (_cfg.laneWidth > 1) {
                _channels.push_back(
                    std::make_unique<LaneChannelBackend<K>>(
                        ecfg, _params, _cfg.nb, _cfg.hostOverheadCycles,
                        _cfg.fmaxMhz, &_cache, _cfg.laneWidth,
                        _cfg.sortLanesByLength, _cfg.intraPairSimd,
                        _cfg.intraPairSimdMinLen));
            } else {
                _channels.push_back(
                    std::make_unique<DeviceChannelBackend<K>>(
                        ecfg, _params, _cfg.nb, _cfg.hostOverheadCycles,
                        _cfg.fmaxMhz, &_cache));
            }
        }
        if (_cfg.cpuFallback) {
            const int cpu_threads = _cfg.cpuThreads > 0 ? _cfg.cpuThreads
                                                        : _cfg.threads;
            _cpu = std::make_unique<CpuBaselineBackend<K>>(
                _params, _cfg.bandWidth, _cfg.cpuEquivalentMhz,
                cpu_threads, _cfg.skipTraceback,
                _cfg.cpuModeledCellsPerSec);
        }
        if (_cfg.gpuModel && GpuModelBackend<K>::covered()) {
            const int gpu_threads = _cfg.cpuThreads > 0 ? _cfg.cpuThreads
                                                        : _cfg.threads;
            _gpu = std::make_unique<GpuModelBackend<K>>(
                _params, _cfg.bandWidth, gpu_threads,
                _cfg.skipTraceback);
        }
    }

    /**
     * Drains every queued and in-flight shard (releasing any pause), so
     * the backends outlive all work that references them and every held
     * ticket reaches its terminal state.
     */
    ~StreamPipeline()
    {
        resume();
        // After the pool idles the dispatch queues are empty (every
        // pop chains the next pump before its task retires), so a
        // concurrent ticket cancel() can no longer reach backend state.
        _pool.wait();
    }

    const BatchConfig &config() const { return _cfg; }
    int channelCount() const { return _cfg.nk; }
    int threadCount() const { return _pool.threadCount(); }

    /** Resolved host SIMD tier the device channels dispatch to. */
    sim::IsaTier activeIsaTier() const { return _resolvedTier; }

    /** Result-cache hit/miss/eviction counters (lifetime totals). */
    CacheCounters cacheCounters() const { return _cache.counters(); }

    /**
     * Stop starting new shards; submissions still queue (in scheduling
     * order) until resume(). Shards already running finish normally.
     */
    void
    pause()
    {
        _core->paused.store(true, std::memory_order_release);
    }

    /** Re-open dispatch and release queued shards in scheduling order. */
    void
    resume()
    {
        _core->paused.store(false, std::memory_order_release);
        for (int s = 0; s < _core->slotCount(); s++)
            pump(s);
    }

    /**
     * Enqueue an owned batch for asynchronous execution; the returned
     * ticket completes when every shard has finished. @p callback (if
     * any) fires once on a worker thread at completion.
     */
    Ticket
    submit(std::vector<Job> jobs, Callback callback = nullptr)
    {
        return submit(std::move(jobs), TicketOptions{},
                      std::move(callback));
    }

    /** submit() with an explicit scheduling class. */
    Ticket
    submit(std::vector<Job> jobs, TicketOptions options,
           Callback callback = nullptr)
    {
        auto ticket = std::make_shared<BatchTicket<K>>();
        ticket->_jobs = std::move(jobs);
        ticket->_options = std::move(options);
        ticket->_callback = std::move(callback);
        enqueue(ticket);
        return ticket;
    }

    /**
     * Enqueue a borrowed batch: the caller guarantees @p jobs outlives
     * the ticket's completion (runAll() and the hetero device use this
     * to avoid copying).
     */
    Ticket
    submitBorrowed(const std::vector<Job> &jobs, Callback callback = nullptr)
    {
        return submitBorrowed(jobs, TicketOptions{}, std::move(callback));
    }

    /** submitBorrowed() with an explicit scheduling class. */
    Ticket
    submitBorrowed(const std::vector<Job> &jobs, TicketOptions options,
                   Callback callback = nullptr)
    {
        auto ticket = std::make_shared<BatchTicket<K>>();
        ticket->_view = &jobs;
        ticket->_options = std::move(options);
        ticket->_callback = std::move(callback);
        enqueue(ticket);
        return ticket;
    }

    /**
     * Wait for @p ticket, retire it from the outstanding set and return
     * its per-ticket statistics. When @p results / @p job_cycles are
     * given, the ticket's outputs are moved into them (collect with
     * outputs at most once per ticket); otherwise they stay readable on
     * the ticket.
     */
    BatchStats
    collect(const Ticket &ticket, std::vector<Result> *results = nullptr,
            std::vector<uint64_t> *job_cycles = nullptr)
    {
        ticket->wait();
        {
            std::lock_guard lock(_outstandingMutex);
            auto it = std::find(_outstanding.begin(), _outstanding.end(),
                                ticket);
            if (it != _outstanding.end())
                _outstanding.erase(it);
        }
        if (results)
            *results = std::move(ticket->_results);
        if (job_cycles)
            *job_cycles = std::move(ticket->_cycles);
        return ticket->_stats;
    }

    /**
     * Compatibility wrapper: block until every outstanding ticket has
     * completed and return the aggregate statistics, with optional
     * per-job results and cycles ordered by submission. Safe to overlap
     * with concurrent submit(): accounting is per-ticket, so a racing
     * submission lands either in this epoch or in the next one, never
     * half in each. Cancelled tickets contribute their partial outputs
     * (default results for dropped jobs) and cancelled counts.
     */
    BatchStats
    drain(std::vector<Result> *results = nullptr,
          std::vector<uint64_t> *job_cycles = nullptr)
    {
        std::vector<Ticket> drained;
        {
            std::lock_guard lock(_outstandingMutex);
            drained.swap(_outstanding);
        }
        if (results)
            results->clear();
        if (job_cycles)
            job_cycles->clear();

        BatchStats agg;
        agg.isaTier = sim::isaTierName(_resolvedTier);
        agg.channels.assign(static_cast<size_t>(_cfg.nk), ChannelStats{});
        for (const auto &t : drained) {
            t->wait();
            accumulateBatchStats(agg, t->_stats);
            if (results) {
                results->insert(
                    results->end(),
                    std::make_move_iterator(t->_results.begin()),
                    std::make_move_iterator(t->_results.end()));
            }
            if (job_cycles) {
                job_cycles->insert(job_cycles->end(), t->_cycles.begin(),
                                   t->_cycles.end());
            }
        }
        finalizeBatchStats(agg, _cfg.fmaxMhz, _cfg.cpuEquivalentMhz);
        return agg;
    }

    /**
     * Admission view: modeled completion time (seconds from now) of
     * routing @p jobs onto the current backlog — the cost-model
     * routing's worst slot, i.e. each used slot's live queued-seconds
     * signal plus the work this batch would add to it. Deadline-aware
     * admission control (serve/admission.hh) rejects a ticket at
     * submit when this estimate already exceeds its deadline budget,
     * instead of counting a miss after the fact. Throws
     * std::invalid_argument (like submit()) when some job no enabled
     * backend can take. The estimate is advisory: it reads the live
     * backlog counters racily and does not reserve capacity — two
     * concurrent callers can both be told the same slot is free. Use
     * reserveCompletion() when the answer gates admission.
     */
    double
    estimateCompletionSeconds(const std::vector<Job> &jobs) const
    {
        const Routing r = routeCostModel(jobs, TicketOptions{});
        double worst = 0;
        for (int c = 0; c < _cfg.nk; c++) {
            if (!r.shards[static_cast<size_t>(c)].empty())
                worst = std::max(worst,
                                 _core->queuedSeconds(c) +
                                     r.shardEst[static_cast<size_t>(c)]);
        }
        if (!r.cpu.empty())
            worst = std::max(worst, _core->queuedSeconds(
                                        _core->cpuSlot()) +
                                        r.cpuEst);
        if (!r.gpu.empty())
            worst = std::max(worst, _core->queuedSeconds(
                                        _core->gpuSlot()) +
                                        r.gpuEst);
        return worst;
    }

    /**
     * Reserving admission view: route @p jobs, book their per-slot
     * estimates into the live backlog signal, and return a reservation
     * whose estimateSeconds() is the modeled completion time *given
     * every earlier booking*. Unlike estimateCompletionSeconds() this
     * closes the estimate/submit race: concurrent reservers serialize
     * through the slots' atomic backlog counters, so the total work
     * admitted against a deadline budget is bounded even under
     * concurrent submitters (tests/test_admission_reserve.cc).
     *
     * On admit, pass the reservation to submit() — the enqueue swaps
     * the booking for the ticket's live entries. On reject, release()
     * it (or let it go out of scope). Throws std::invalid_argument
     * (like submit()) when some job no enabled backend can take,
     * booking nothing.
     */
    AdmissionReservation
    reserveCompletion(const std::vector<Job> &jobs)
    {
        const Routing r = routeCostModel(jobs, TicketOptions{});
        std::vector<std::pair<int, double>> booked;
        auto book = [&](int s, double est, bool used) {
            if (!used)
                return;
            _core->noteEnqueued(s, est);
            booked.emplace_back(s, est);
        };
        for (int c = 0; c < _cfg.nk; c++) {
            book(c, r.shardEst[static_cast<size_t>(c)],
                 !r.shards[static_cast<size_t>(c)].empty());
        }
        book(_core->cpuSlot(), r.cpuEst, !r.cpu.empty());
        book(_core->gpuSlot(), r.gpuEst, !r.gpu.empty());

        // Read the backlog *after* booking: the loaded value includes
        // this batch's own work plus every reservation booked before it
        // in the counters' modification order, which is what makes
        // concurrent admission decisions sum correctly (a later value
        // can only be larger — conservative, never optimistic).
        AdmissionReservation res;
        for (const auto &[s, est] : booked) {
            res._estimate =
                std::max(res._estimate, _core->queuedSeconds(s));
        }
        std::weak_ptr<Core> core = _core;
        res._release = [core, entries = std::move(booked)] {
            if (auto c = core.lock()) {
                for (const auto &[s, est] : entries)
                    c->noteCompleted(s, est);
            }
        };
        return res;
    }

    /**
     * submit() committing an admission reservation: the ticket enqueues
     * normally (adding its live routed estimates), then the reservation
     * is released — add-before-release, so the backlog signal never
     * dips below the real queued work. When submission throws, the
     * reservation parameter's destructor still releases the booking.
     */
    Ticket
    submit(std::vector<Job> jobs, TicketOptions options,
           Callback callback, AdmissionReservation reservation)
    {
        Ticket ticket =
            submit(std::move(jobs), std::move(options),
                   std::move(callback));
        reservation.release();
        return ticket;
    }

    /**
     * Blocking convenience: run one batch to completion and return its
     * statistics (other in-flight tickets are untouched).
     */
    BatchStats
    runAll(const std::vector<Job> &jobs,
           std::vector<Result> *results = nullptr,
           std::vector<uint64_t> *job_cycles = nullptr,
           TicketOptions options = {})
    {
        auto ticket = submitBorrowed(jobs, std::move(options));
        return collect(ticket, results, job_cycles);
    }

  private:
    using Core = detail::DispatchCore<K>;
    using ShardEntry = typename Core::ShardEntry;

    static int
    poolThreads(const BatchConfig &cfg)
    {
        return std::max(1, cfg.threads > 0 ? cfg.threads
                                           : std::max(1, cfg.nk));
    }

    /** True when the Threshold policy routes @p job to the CPU backend. */
    bool
    routeToCpu(const Job &job) const
    {
        if (!_cpu)
            return false;
        const int qlen = job.query.length();
        const int rlen = job.reference.length();
        if (qlen > _cfg.maxQueryLength || rlen > _cfg.maxReferenceLength)
            return true;
        return _cfg.cpuFloorLen > 0 &&
               std::max(qlen, rlen) < _cfg.cpuFloorLen;
    }

    [[noreturn]] void
    throwUndispatchable(int idx, const Job &job) const
    {
        throw std::invalid_argument(
            "dispatch: job " + std::to_string(idx) + " (" +
            std::to_string(job.query.length()) + " x " +
            std::to_string(job.reference.length()) +
            ") exceeds device maxima (" +
            std::to_string(_cfg.maxQueryLength) + " x " +
            std::to_string(_cfg.maxReferenceLength) +
            ") and no fallback backend is enabled");
    }

    /** Routing outcome of one batch: per-channel shards + CPU/GPU. */
    struct Routing
    {
        std::vector<std::vector<int>> shards;
        std::vector<int> cpu, gpu;
        std::vector<double> shardEst; //!< per-channel estimated seconds
        double cpuEst = 0, gpuEst = 0;
    };

    /**
     * Threshold routing: the original shape rule — CPU for oversized/
     * tiny jobs, round-robin device sharding for the rest. Exactly the
     * old sharding when nothing routes to the CPU. An oversized job
     * with no CPU backend falls back to the GPU model when that is
     * enabled (its full-matrix implementation has no length limit)
     * before failing loudly.
     */
    Routing
    routeThreshold(const std::vector<Job> &jobs) const
    {
        Routing r;
        std::vector<int> device_idx;
        device_idx.reserve(jobs.size());
        for (int i = 0; i < static_cast<int>(jobs.size()); i++) {
            const Job &job = jobs[static_cast<size_t>(i)];
            const bool oversized =
                job.query.length() > _cfg.maxQueryLength ||
                job.reference.length() > _cfg.maxReferenceLength;
            if (routeToCpu(job)) {
                r.cpu.push_back(i);
            } else if (oversized) {
                if (_gpu)
                    r.gpu.push_back(i);
                else
                    throwUndispatchable(i, job);
            } else {
                device_idx.push_back(i);
            }
        }
        r.shards = shardIndicesRoundRobin(device_idx, _cfg.nk);
        // Threshold routing ignores estimates for its *decisions*, but
        // the queued-work signal the estimates feed (noteEnqueued /
        // estimateCompletionSeconds / reserveCompletion) must be real
        // under every dispatch policy — admission control against a
        // permanently-zero backlog admits everything
        // (tests/test_admission_reserve.cc).
        r.shardEst.assign(r.shards.size(), 0.0);
        for (size_t c = 0; c < r.shards.size(); c++) {
            if (r.shards[c].empty())
                continue;
            r.shardEst[c] = _channels[0]->batchOverheadSeconds();
            for (int i : r.shards[c])
                r.shardEst[c] +=
                    _channels[0]->estimate(jobs[static_cast<size_t>(i)])
                        .seconds;
        }
        if (!r.cpu.empty()) {
            r.cpuEst = _cpu->batchOverheadSeconds();
            for (int i : r.cpu)
                r.cpuEst +=
                    _cpu->estimate(jobs[static_cast<size_t>(i)]).seconds;
        }
        if (!r.gpu.empty()) {
            r.gpuEst = _gpu->batchOverheadSeconds();
            for (int i : r.gpu)
                r.gpuEst +=
                    _gpu->estimate(jobs[static_cast<size_t>(i)]).seconds;
        }
        return r;
    }

    /**
     * Cost-model routing: every job goes to the feasible backend slot
     * (each device channel, the CPU backend, the GPU model) with the
     * lowest estimated completion time — the slot's live queued-work
     * signal, plus work routed earlier in this same batch, plus the
     * job's service estimate. Ties prefer the device (its estimates
     * are exact; the baselines' are learned or modeled).
     *
     * With a ticket deadline the argmin is deadline-aware: among slots
     * whose estimated completion beats the remaining deadline budget,
     * the one with the lowest marginal *service* cost wins even if
     * another slot would complete sooner — meeting the deadline on the
     * cheapest capacity keeps the fast backends free. When no slot can
     * meet the deadline the router falls back to earliest completion
     * (least lateness).
     */
    Routing
    routeCostModel(const std::vector<Job> &jobs,
                   const TicketOptions &options) const
    {
        constexpr double inf = std::numeric_limits<double>::infinity();
        double deadline_budget = inf;
        if (options.hasDeadline()) {
            deadline_budget = std::max(
                0.0, std::chrono::duration<double>(
                         options.deadline -
                         std::chrono::steady_clock::now())
                         .count());
        }

        Routing r;
        r.shards.assign(static_cast<size_t>(_cfg.nk), {});
        r.shardEst.assign(static_cast<size_t>(_cfg.nk), 0.0);
        std::vector<double> ch_queued(static_cast<size_t>(_cfg.nk), 0.0);
        for (int c = 0; c < _cfg.nk; c++)
            ch_queued[static_cast<size_t>(c)] = _core->queuedSeconds(c);
        const double cpu_queued =
            _cpu ? _core->queuedSeconds(_core->cpuSlot()) : 0;
        const double gpu_queued =
            _gpu ? _core->queuedSeconds(_core->gpuSlot()) : 0;
        // Per-shard fixed costs (the GPU model's kernel launch): paid
        // by the first job routed to the slot in this batch, so small
        // batches see the true marginal cost of waking a backend.
        const double dev_overhead = _channels[0]->batchOverheadSeconds();
        const double cpu_overhead =
            _cpu ? _cpu->batchOverheadSeconds() : 0;
        const double gpu_overhead =
            _gpu ? _gpu->batchOverheadSeconds() : 0;

        for (int i = 0; i < static_cast<int>(jobs.size()); i++) {
            const Job &job = jobs[static_cast<size_t>(i)];
            // All device channels share one configuration, so one
            // estimate covers them; the choice between channels is
            // purely their backlog.
            const CostEstimate dev = _channels[0]->estimate(job);
            const CostEstimate cpu_est =
                _cpu ? _cpu->estimate(job) : CostEstimate{0, false};
            const CostEstimate gpu_est =
                _gpu ? _gpu->estimate(job) : CostEstimate{0, false};

            int best_channel = -1;
            double best = inf;
            if (dev.feasible) {
                for (int c = 0; c < _cfg.nk; c++) {
                    const double first =
                        r.shards[static_cast<size_t>(c)].empty()
                            ? dev_overhead
                            : 0;
                    const double t = ch_queued[static_cast<size_t>(c)] +
                                     r.shardEst[static_cast<size_t>(c)] +
                                     dev.seconds + first;
                    if (t < best) {
                        best = t;
                        best_channel = c;
                    }
                }
            }
            const double dev_total = best;
            const double cpu_first = r.cpu.empty() ? cpu_overhead : 0;
            const double gpu_first = r.gpu.empty() ? gpu_overhead : 0;
            const double cpu_total =
                cpu_est.feasible
                    ? cpu_queued + r.cpuEst + cpu_est.seconds + cpu_first
                    : inf;
            const double gpu_total =
                gpu_est.feasible
                    ? gpu_queued + r.gpuEst + gpu_est.seconds + gpu_first
                    : inf;
            enum { Device, Cpu, Gpu } target = Device;
            if (cpu_total < best) {
                best = cpu_total;
                target = Cpu;
            }
            if (gpu_total < best) {
                best = gpu_total;
                target = Gpu;
            }
            if (!dev.feasible && target == Device) {
                if (cpu_est.feasible) {
                    target = Cpu;
                } else if (gpu_est.feasible) {
                    target = Gpu;
                } else {
                    throwUndispatchable(i, job);
                }
            }
            if (deadline_budget < inf) {
                // Deadline-aware override: cheapest service cost among
                // the slots that still meet the deadline (iteration
                // order keeps the device-first tie preference).
                double best_cost = inf;
                int met = -1;
                if (dev.feasible && dev_total <= deadline_budget) {
                    best_cost = dev.seconds;
                    met = Device;
                }
                if (cpu_est.feasible && cpu_total <= deadline_budget &&
                    cpu_est.seconds < best_cost) {
                    best_cost = cpu_est.seconds;
                    met = Cpu;
                }
                if (gpu_est.feasible && gpu_total <= deadline_budget &&
                    gpu_est.seconds < best_cost) {
                    best_cost = gpu_est.seconds;
                    met = Gpu;
                }
                if (met == Device)
                    target = Device;
                else if (met == Cpu)
                    target = Cpu;
                else if (met == Gpu)
                    target = Gpu;
            }
            switch (target) {
              case Device: {
                auto &shard = r.shards[static_cast<size_t>(best_channel)];
                if (shard.empty())
                    r.shardEst[static_cast<size_t>(best_channel)] +=
                        dev_overhead;
                shard.push_back(i);
                r.shardEst[static_cast<size_t>(best_channel)] +=
                    dev.seconds;
                break;
              }
              case Cpu:
                r.cpu.push_back(i);
                r.cpuEst += cpu_est.seconds + cpu_first;
                break;
              case Gpu:
                r.gpu.push_back(i);
                r.gpuEst += gpu_est.seconds + gpu_first;
                break;
            }
        }
        return r;
    }

    void
    enqueue(const Ticket &ticket)
    {
        const auto &jobs = ticket->jobs();
        const int n = static_cast<int>(jobs.size());
        const TicketOptions &opt = ticket->_options;

        // Route first: an undispatchable job throws here, before the
        // ticket is registered, so a failed submit leaves the pipeline
        // with nothing outstanding.
        Routing routing = _cfg.dispatch == DispatchPolicy::CostModel
                              ? routeCostModel(jobs, opt)
                              : routeThreshold(jobs);

        ticket->_core = _core;
        ticket->_results.resize(static_cast<size_t>(n));
        ticket->_cycles.assign(static_cast<size_t>(n), 0);
        ticket->_completed.assign(static_cast<size_t>(n), 0);
        ticket->_stats.isaTier = sim::isaTierName(_resolvedTier);
        ticket->_stats.channels.assign(static_cast<size_t>(_cfg.nk),
                                       ChannelStats{});

        // Collect (slot, shard, estimate) triples for every non-empty
        // shard the routing produced.
        std::vector<std::pair<int, ShardEntry>> entries;
        const uint64_t seq = _core->nextSeq();
        auto addEntry = [&](int slot, std::vector<int> &&indices,
                            double est) {
            if (indices.empty())
                return;
            ShardEntry e;
            e.ticket = ticket;
            e.indices = std::move(indices);
            e.estSeconds = est;
            e.priority = opt.priority;
            e.deadline = opt.deadline;
            e.seq = seq;
            entries.emplace_back(slot, std::move(e));
        };
        for (int c = 0; c < _cfg.nk; c++) {
            addEntry(c, std::move(routing.shards[static_cast<size_t>(c)]),
                     routing.shardEst[static_cast<size_t>(c)]);
        }
        addEntry(_core->cpuSlot(), std::move(routing.cpu), routing.cpuEst);
        addEntry(_core->gpuSlot(), std::move(routing.gpu), routing.gpuEst);

        ticket->_pending = static_cast<int>(entries.size());
        {
            std::lock_guard lock(_outstandingMutex);
            _outstanding.push_back(ticket);
        }
        if (entries.empty()) {
            _core->finishShard(*ticket); // empty batch completes now
            return;
        }

        for (auto &[slot, entry] : entries) {
            _core->noteEnqueued(slot, entry.estSeconds);
            const int prio = entry.priority;
            {
                std::lock_guard lock(_core->slot(slot).mutex);
                auto &sl = _core->slot(slot);
                sl.queue.insert(std::move(entry));
                // A strictly-higher-priority arrival asks the staged
                // shard occupying the slot to yield at its next stage
                // boundary (pointless while paused: nothing would
                // start in its place).
                if (_cfg.preemption && sl.runningToken != nullptr &&
                    prio > sl.runningPriority &&
                    !_core->paused.load(std::memory_order_acquire)) {
                    sl.runningToken->request();
                }
            }
            pump(slot);
        }
    }

    /**
     * Start queued shards of slot @p s, best first, until its
     * concurrency capacity is full or dispatch is paused. Shards of
     * cancelled tickets are dropped here when the cancel() raced the
     * queue scan.
     */
    void
    pump(int s)
    {
        auto &slot = _core->slot(s);
        for (;;) {
            ShardEntry entry;
            bool start = false;
            {
                std::lock_guard lock(slot.mutex);
                if (slot.busy >= slot.capacity ||
                    _core->paused.load(std::memory_order_acquire) ||
                    slot.queue.empty()) {
                    return;
                }
                auto it = slot.queue.begin();
                slot.pops++;
                if (_core->agingEvery() > 0 && slot.queue.size() > 1 &&
                    slot.pops % static_cast<uint64_t>(
                                    _core->agingEvery()) ==
                        0) {
                    // Aging pop: the oldest submission runs regardless
                    // of priority, bounding bulk-class queueing under a
                    // saturating high-priority stream.
                    it = std::min_element(
                        slot.queue.begin(), slot.queue.end(),
                        [](const ShardEntry &a, const ShardEntry &b) {
                            return a.seq < b.seq;
                        });
                }
                auto node = slot.queue.extract(it);
                entry = std::move(node.value());
                // Decide under the lock: if the shard starts, its
                // capacity unit must be owned by exactly this pop.
                start = !entry.ticket->cancelled();
                if (start)
                    slot.busy++;
            }
            if (!start) {
                _core->noteCompleted(s, entry.estSeconds);
                _core->acctFor(*entry.ticket, s).cancelled +=
                    static_cast<int>(entry.indices.size());
                _core->finishShard(*entry.ticket);
                continue;
            }
            TaskOptions attrs;
            attrs.priority = entry.priority;
            if (entry.deadline !=
                detail::DispatchCore<K>::Clock::time_point::max()) {
                attrs.deadlineSeconds =
                    std::chrono::duration<double>(
                        entry.deadline.time_since_epoch())
                        .count();
            }
            // shared_ptr capture: std::function requires copyability.
            auto shared = std::make_shared<ShardEntry>(std::move(entry));
            _pool.submit([this, s, shared] { runShard(s, *shared); },
                         attrs);
            // Loop on: a slot with spare capacity starts its next-best
            // shard too (only the CPU/GPU slots have capacity > 1).
        }
    }

    /** Execute one popped shard on slot @p s, then chain the pump. */
    void
    runShard(int s, ShardEntry &entry)
    {
        BatchTicket<K> &ticket = *entry.ticket;
        AlignBackend<K> *backend;
        if (s < _cfg.nk)
            backend = _channels[static_cast<size_t>(s)].get();
        else if (s == _core->cpuSlot())
            backend = _cpu.get();
        else
            backend = _gpu.get();
        ChannelStats &acct = _core->acctFor(ticket, s);

        if (_cfg.stagePipeline && backend->supportsStagedRun()) {
            runShardStaged(s, entry, *backend, acct);
            return;
        }

        backend->run(ticket.jobs(), entry.indices,
                     ticket._results.data(), ticket._cycles.data(), acct);
        for (const int idx : entry.indices)
            ticket._completed[static_cast<size_t>(idx)] = 1;
        if (entry.deadline !=
                detail::DispatchCore<K>::Clock::time_point::max() &&
            detail::DispatchCore<K>::Clock::now() > entry.deadline) {
            acct.deadlineMisses += static_cast<int>(entry.indices.size());
        }
        _core->noteCompleted(s, entry.estSeconds);

        // Free the slot before the (possibly slow) path-stats merge and
        // completion callback, so the next shard overlaps them.
        {
            std::lock_guard lock(_core->slot(s).mutex);
            _core->slot(s).busy--;
        }
        pump(s);

        collectPaths(ticket, entry.indices);
        _core->finishShard(ticket);
    }

    /**
     * Staged variant of runShard(): the backend overlaps fill and
     * traceback internally and may stop early at a stage boundary —
     * on preemption the unstarted jobs re-queue as a remainder shard
     * with the same submission sequence (the ticket stays pending
     * across resumptions); on cancellation they are accounted as
     * cancelled and the shard retires.
     */
    void
    runShardStaged(int s, ShardEntry &entry, AlignBackend<K> &backend,
                   ChannelStats &acct)
    {
        BatchTicket<K> &ticket = *entry.ticket;
        PreemptToken token;
        if (_cfg.preemption) {
            std::lock_guard lock(_core->slot(s).mutex);
            _core->slot(s).runningToken = &token;
            _core->slot(s).runningPriority = entry.priority;
        }
        StageRunControl ctl;
        ctl.preempt = _cfg.preemption ? &token : nullptr;
        ctl.cancelled = &ticket._cancelled;
        ctl.fifoDepth = _cfg.stageFifoDepth;
        ctl.done.assign(entry.indices.size(), 0);

        backend.runStaged(ticket.jobs(), entry.indices,
                          ticket._results.data(), ticket._cycles.data(),
                          acct, ctl);

        if (_cfg.preemption) {
            std::lock_guard lock(_core->slot(s).mutex);
            _core->slot(s).runningToken = nullptr;
            _core->slot(s).runningPriority = 0;
        }

        // Partition by writeback outcome (grouping backends may finish
        // out of submission order, so this is not a prefix split).
        std::vector<int> completed, remainder;
        completed.reserve(entry.indices.size());
        for (size_t k = 0; k < entry.indices.size(); k++) {
            if (ctl.done[k])
                completed.push_back(entry.indices[k]);
            else
                remainder.push_back(entry.indices[k]);
        }
        for (const int idx : completed)
            ticket._completed[static_cast<size_t>(idx)] = 1;
        if (!completed.empty() &&
            entry.deadline !=
                detail::DispatchCore<K>::Clock::time_point::max() &&
            detail::DispatchCore<K>::Clock::now() > entry.deadline) {
            acct.deadlineMisses += static_cast<int>(completed.size());
        }

        const bool requeue = ctl.preempted && !remainder.empty() &&
                             !ticket.cancelled();
        if (requeue) {
            // Split the backlog estimate across the resumptions in
            // proportion to the work done, so the queued-seconds
            // signal stays truthful while the remainder waits.
            const double frac =
                static_cast<double>(completed.size()) /
                static_cast<double>(entry.indices.size());
            const double est_done = entry.estSeconds * frac;
            _core->noteCompleted(s, est_done);
            acct.preemptions++;
            ShardEntry rest;
            rest.ticket = entry.ticket;
            rest.indices = std::move(remainder);
            rest.estSeconds = entry.estSeconds - est_done;
            rest.priority = entry.priority;
            rest.deadline = entry.deadline;
            rest.seq = entry.seq; // keeps its FIFO-tiebreak position
            {
                std::lock_guard lock(_core->slot(s).mutex);
                _core->slot(s).queue.insert(std::move(rest));
            }
            // A cancel() racing this insert is safe: dropTicket or the
            // pump's cancelled-entry discard retires the shard either
            // way, exactly once.
        } else {
            if (!remainder.empty())
                acct.cancelled += static_cast<int>(remainder.size());
            _core->noteCompleted(s, entry.estSeconds);
        }

        {
            std::lock_guard lock(_core->slot(s).mutex);
            _core->slot(s).busy--;
        }
        pump(s);

        collectPaths(ticket, completed);
        if (!requeue)
            _core->finishShard(ticket);
    }

    void
    collectPaths(BatchTicket<K> &ticket, const std::vector<int> &indices)
    {
        if (!_cfg.collectPathStats)
            return;
        core::AlignmentStats local;
        const auto &jobs = ticket.jobs();
        for (const int idx : indices) {
            const auto &res = ticket._results[static_cast<size_t>(idx)];
            if (res.ops.empty())
                continue;
            const auto &job = jobs[static_cast<size_t>(idx)];
            mergePathStats(local,
                           core::computeStats(job.query, job.reference,
                                              res.ops, res.start));
        }
        std::lock_guard lock(ticket._mutex);
        mergePathStats(ticket._stats.paths, local);
    }

    BatchConfig _cfg;
    Params _params;
    sim::IsaTier _resolvedTier = sim::IsaTier::Scalar;
    ShardedResultCache<Result> _cache;
    DebugMutex _outstandingMutex{lockrank::kOutstanding, "outstanding"};
    std::vector<Ticket> _outstanding; //!< submitted, not yet retired
    std::shared_ptr<Core> _core;      //!< shared with issued tickets
    std::vector<std::unique_ptr<AlignBackend<K>>> _channels;
    std::unique_ptr<CpuBaselineBackend<K>> _cpu;
    std::unique_ptr<GpuModelBackend<K>> _gpu;
    // Declared last: ~ThreadPool drains every queued shard task, so the
    // pool must be destroyed before the channels/backends those tasks
    // reference (pipeline destroyed with in-flight tickets).
    ThreadPool _pool;
};

} // namespace dphls::host

#endif // DPHLS_HOST_STREAM_PIPELINE_HH
