/**
 * @file
 * Streaming multi-backend host executor.
 *
 * The paper's host programs (front-end step 6) keep the device's NK
 * independent channels saturated. StreamPipeline generalizes the old
 * barrier-epoch BatchPipeline into a streaming executor over pluggable
 * AlignBackends (host/backend.hh):
 *
 *  - submit() returns a per-batch **ticket**; batches complete
 *    independently (no global barrier), completion callbacks fire as
 *    each batch's last shard finishes, and collect()/wait() retire one
 *    ticket at a time so hosts can pipeline parse -> align -> writeback.
 *  - Accounting is **per ticket**: every ticket carries its own channel
 *    and backend statistics, finalized at completion, so a submit()
 *    overlapping a drain() can no longer race the epoch accounting (the
 *    documented BatchPipeline restriction is gone).
 *  - A **dispatch policy** routes each job to a backend. The Threshold
 *    policy is the shape rule: jobs the device cannot take (sequences
 *    over MAX_*_LENGTH) or should not take (pairs below a configurable
 *    floor) go to the CPU baseline backend, everything else round-robins
 *    over the device channels. The CostModel policy instead asks every
 *    enabled backend for a service-time estimate (device channels:
 *    analytic cycle formulas; CPU: EWMA of measured cells/sec; GPU
 *    model: published GCUPS) and routes each job to the backend — and
 *    channel — with the lowest estimated completion time given its
 *    current queued work. Either way, per-backend stats sections make
 *    the heterogeneous split visible, and they sum to the epoch totals.
 *    A job no enabled backend can take fails loudly at submission with
 *    its index and shape.
 *  - Host worker **threads are decoupled from NK**: with the lane
 *    engine one thread can saturate several modeled channels, so
 *    BatchConfig::threads sizes the pool independently (0 = one thread
 *    per channel, the old arrangement).
 *
 * drain() remains as a compatibility wrapper that waits for every
 * outstanding ticket and aggregates in submission order; BatchPipeline
 * (host/batch_pipeline.hh) is now an alias of this class. For a single
 * batch, results, CIGARs and per-job device cycles are bit-identical to
 * the old pipeline (enforced by tests/test_stream_pipeline.cc).
 *
 * Multi-batch epoch accounting sums each channel's per-ticket arbiter
 * makespans (batches synchronize at batch boundaries); for one batch
 * this equals the old epoch-wide greedy packing exactly.
 */

#ifndef DPHLS_HOST_STREAM_PIPELINE_HH
#define DPHLS_HOST_STREAM_PIPELINE_HH

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/alignment_stats.hh"
#include "host/backend.hh"
#include "host/result_cache.hh"
#include "host/scheduler.hh"

namespace dphls::host {

/** How the pipeline routes jobs across its backends. */
enum class DispatchPolicy : uint8_t
{
    /**
     * Shape thresholds (the original rule): oversized/tiny jobs to the
     * CPU backend, everything else round-robin over device channels.
     * Bit-identical to the pre-cost-model pipeline.
     */
    Threshold,
    /**
     * Pick the backend (and channel) with the lowest estimated
     * completion time: per-job service estimate plus the backend's
     * live queued-work signal. Balances load across heterogeneous
     * executors instead of cutting on shape alone.
     */
    CostModel,
};

/** Pipeline configuration: parallelism, frequency and engine options. */
struct BatchConfig
{
    int npe = 32;                  //!< PEs per systolic block
    int nb = 16;                   //!< blocks per channel (arbiter width)
    int nk = 4;                    //!< independent device channels
    /**
     * Host worker threads, decoupled from NK: 0 (the default) sizes
     * the pool at one thread per channel; with SIMD lanes a single
     * thread can saturate several modeled channels, so fewer threads
     * than channels is a legitimate configuration. Accounting is
     * modeled (cycle-domain), so thread count never changes results or
     * statistics — only host wall-clock.
     */
    int threads = 0;
    double fmaxMhz = 250.0;
    int bandWidth = 64;
    int maxQueryLength = 1024;
    int maxReferenceLength = 1024;
    bool skipTraceback = false;
    sim::CycleModelOptions cycles{};
    /** Host/DMA overhead cycles charged per alignment. */
    uint64_t hostOverheadCycles = 2000;
    /** Aggregate path-level AlignmentStats over all tracebacks. */
    bool collectPathStats = true;
    /**
     * Jobs per SIMD lane group (1 = scalar engine per job; 8 or 16 are
     * the intended widths, capped at LaneAligner::maxLanes). Per-job
     * results and accounting are identical either way.
     */
    int laneWidth = 1;
    /**
     * Length-aware lane grouping: sort each device shard by
     * (qlen, rlen) before forming lane groups so lockstep lanes share a
     * similar padded iteration space. Observable output is unchanged
     * (results, per-job cycles and arbiter accounting are
     * grouping-independent); only host wall-clock improves on
     * mixed-length batches. Ignored when laneWidth == 1.
     */
    bool sortLanesByLength = true;
    /**
     * Route jobs the device cannot take (qlen/rlen over the configured
     * maxima) or should not take (both dimensions under cpuFloorLen) to
     * the CPU baseline backend. Off by default: without it, oversized
     * jobs throw exactly as before.
     */
    bool cpuFallback = false;
    /** Jobs with max(qlen, rlen) < floor go to the CPU backend. */
    int cpuFloorLen = 0;
    /** Equivalent clock (MHz) for wall-derived CPU-backend cycles. */
    double cpuEquivalentMhz = 1500.0;
    /** CPU-backend worker threads (0 = same as the pool size). */
    int cpuThreads = 0;
    /**
     * Pin the CPU backend's cells/sec instead of learning it from wall
     * -clock measurements, and derive its cycles from the pinned rate.
     * Makes CPU-backend accounting deterministic — benches and
     * differential tests use it; real hosts leave it 0 (measure).
     */
    double cpuModeledCellsPerSec = 0;
    /** Backend routing rule; Threshold preserves the original path. */
    DispatchPolicy dispatch = DispatchPolicy::Threshold;
    /**
     * Add the modeled GPU backend (GASAL2/CUDASW++ iso-cost GCUPS) for
     * kernels the paper benchmarks on a GPU. It only receives jobs
     * under the CostModel policy.
     */
    bool gpuModel = false;
    /**
     * Result-cache capacity in entries; 0 (the default) disables the
     * cache. Enable it for workloads with repeated pairs (all-vs-all
     * search, mapping seeds) — on all-distinct batches it only costs
     * hashing plus result copies into the LRU.
     */
    size_t cacheEntries = 0;
    /** Result-cache shard count (lock granularity). */
    size_t cacheShards = 8;
};

/** One backend's section of an epoch/ticket accounting. */
struct BackendStats
{
    const char *name = "device";
    double clockMhz = 0;     //!< clock its cycles are counted at
    uint64_t busyCycles = 0; //!< makespan across the backend's blocks
    uint64_t totalCycles = 0;
    int alignments = 0;
    double seconds = 0;      //!< busyCycles / clockMhz
};

/** Aggregate outcome of one ticket / drained epoch. */
struct BatchStats
{
    std::vector<ChannelStats> channels; //!< device channels
    ChannelStats cpu;                   //!< CPU-fallback backend totals
    ChannelStats gpu;                   //!< modeled GPU backend totals
    /** Per-backend sections (derived by finalizeBatchStats); their
     *  alignments and totalCycles sum to the epoch totals below. */
    std::vector<BackendStats> backends;
    uint64_t makespanCycles = 0; //!< slowest device channel's busy cycles
    uint64_t totalCycles = 0;    //!< sum over all alignments, all backends
    int alignments = 0;
    double seconds = 0;          //!< slowest backend section's wall time
    double alignsPerSec = 0;
    double cyclesPerAlign = 0;
    /** Path-level statistics summed over every traceback in the epoch. */
    core::AlignmentStats paths;
};

/** Round-robin shard of @p jobs job indices over @p channels channels. */
std::vector<std::vector<int>> shardRoundRobin(int jobs, int channels);

/** Round-robin shard of explicit job indices over @p channels channels. */
std::vector<std::vector<int>>
shardIndicesRoundRobin(const std::vector<int> &indices, int channels);

/** Sum the counting fields of @p add into @p into. */
void mergePathStats(core::AlignmentStats &into,
                    const core::AlignmentStats &add);

/**
 * Fill the derived fields (backend sections, makespan, totals, seconds,
 * throughput) of @p stats from its per-channel and CPU accounting.
 */
void finalizeBatchStats(BatchStats &stats, double fmax_mhz,
                        double cpu_mhz = 0);

/**
 * Sum @p add's raw accounting (channels, cpu, paths) into @p into;
 * the caller re-finalizes afterwards. Channel busy cycles add up as
 * sequential per-batch makespans.
 */
void accumulateBatchStats(BatchStats &into, const BatchStats &add);

template <core::KernelSpec K>
class StreamPipeline;

/**
 * One submitted batch: per-job outputs in submission order, per-ticket
 * accounting, and a completion latch. Tickets are shared between the
 * submitting host and the worker tasks; results()/cycles()/stats() are
 * valid once done() (or after wait()).
 */
template <core::KernelSpec K>
class BatchTicket
{
  public:
    using CharT = typename K::CharT;
    using Result = core::AlignResult<typename K::ScoreT>;
    using Job = AlignmentJob<CharT>;

    bool
    done() const
    {
        std::lock_guard lock(_mutex);
        return _done;
    }

    /** Block until every shard of this batch has completed. */
    void
    wait() const
    {
        std::unique_lock lock(_mutex);
        _cv.wait(lock, [&] { return _done; });
    }

    /** The batch's jobs (owned or borrowed), in submission order. */
    const std::vector<Job> &jobs() const { return _view ? *_view : _jobs; }

    /** Per-job results, indexed like jobs(). Valid once done(). */
    const std::vector<Result> &results() const { return _results; }

    /** Per-job cycle counts, indexed like jobs(). Valid once done(). */
    const std::vector<uint64_t> &cycles() const { return _cycles; }

    /** Per-ticket accounting, finalized at completion. */
    const BatchStats &stats() const { return _stats; }

  private:
    friend class StreamPipeline<K>;

    std::vector<Job> _jobs;                 //!< owned (submit path)
    const std::vector<Job> *_view = nullptr; //!< borrowed (runAll path)
    std::vector<Result> _results;
    std::vector<uint64_t> _cycles;
    BatchStats _stats;
    std::function<void(BatchTicket &)> _callback;
    int _pending = 0; //!< shards still running (under _mutex)
    bool _done = false;
    mutable std::mutex _mutex;
    mutable std::condition_variable _cv;
};

/**
 * Streaming multi-backend pipeline running kernel @p K.
 *
 * Thread-safety: submit()/collect()/drain() may be called concurrently
 * from any thread. Completion callbacks run on worker threads and must
 * not throw. Destroying the pipeline drains every in-flight shard
 * first, so held tickets complete (and become collectible) even when
 * the pipeline dies before they are waited on.
 */
template <core::KernelSpec K>
class StreamPipeline
{
  public:
    using CharT = typename K::CharT;
    using ScoreT = typename K::ScoreT;
    using Result = core::AlignResult<ScoreT>;
    using Job = AlignmentJob<CharT>;
    using Params = typename K::Params;
    using Ticket = std::shared_ptr<BatchTicket<K>>;
    using Callback = std::function<void(BatchTicket<K> &)>;

    explicit StreamPipeline(BatchConfig cfg = {},
                            Params params = K::defaultParams())
        : _cfg(cfg), _params(params),
          _cache(cfg.cacheEntries, cfg.cacheShards),
          _pool(poolThreads(cfg))
    {
        _cfg.nk = std::max(1, _cfg.nk);
        _cfg.nb = std::max(1, _cfg.nb);
        _cfg.threads = poolThreads(cfg);
        _cfg.laneWidth = std::clamp(_cfg.laneWidth, 1,
                                    sim::LaneAligner<K>::maxLanes);
        sim::EngineConfig ecfg;
        ecfg.numPe = _cfg.npe;
        ecfg.bandWidth = _cfg.bandWidth;
        ecfg.maxQueryLength = _cfg.maxQueryLength;
        ecfg.maxReferenceLength = _cfg.maxReferenceLength;
        ecfg.skipTraceback = _cfg.skipTraceback;
        ecfg.cycles = _cfg.cycles;
        _channels.reserve(static_cast<size_t>(_cfg.nk));
        for (int c = 0; c < _cfg.nk; c++) {
            auto ch = std::make_unique<Channel>();
            if (_cfg.laneWidth > 1) {
                ch->backend = std::make_unique<LaneChannelBackend<K>>(
                    ecfg, _params, _cfg.nb, _cfg.hostOverheadCycles,
                    _cfg.fmaxMhz, &_cache, _cfg.laneWidth,
                    _cfg.sortLanesByLength);
            } else {
                ch->backend = std::make_unique<DeviceChannelBackend<K>>(
                    ecfg, _params, _cfg.nb, _cfg.hostOverheadCycles,
                    _cfg.fmaxMhz, &_cache);
            }
            _channels.push_back(std::move(ch));
        }
        if (_cfg.cpuFallback) {
            const int cpu_threads = _cfg.cpuThreads > 0 ? _cfg.cpuThreads
                                                        : _cfg.threads;
            _cpu = std::make_unique<CpuBaselineBackend<K>>(
                _params, _cfg.bandWidth, _cfg.cpuEquivalentMhz,
                cpu_threads, _cfg.skipTraceback,
                _cfg.cpuModeledCellsPerSec);
        }
        if (_cfg.gpuModel && GpuModelBackend<K>::covered()) {
            const int gpu_threads = _cfg.cpuThreads > 0 ? _cfg.cpuThreads
                                                        : _cfg.threads;
            _gpu = std::make_unique<GpuModelBackend<K>>(
                _params, _cfg.bandWidth, gpu_threads,
                _cfg.skipTraceback);
        }
    }

    const BatchConfig &config() const { return _cfg; }
    int channelCount() const { return _cfg.nk; }
    int threadCount() const { return _pool.threadCount(); }

    /** Result-cache hit/miss/eviction counters (lifetime totals). */
    CacheCounters cacheCounters() const { return _cache.counters(); }

    /**
     * Enqueue an owned batch for asynchronous execution; the returned
     * ticket completes when every shard has finished. @p callback (if
     * any) fires once on a worker thread at completion.
     */
    Ticket
    submit(std::vector<Job> jobs, Callback callback = nullptr)
    {
        auto ticket = std::make_shared<BatchTicket<K>>();
        ticket->_jobs = std::move(jobs);
        ticket->_callback = std::move(callback);
        enqueue(ticket);
        return ticket;
    }

    /**
     * Enqueue a borrowed batch: the caller guarantees @p jobs outlives
     * the ticket's completion (runAll() and the hetero device use this
     * to avoid copying).
     */
    Ticket
    submitBorrowed(const std::vector<Job> &jobs, Callback callback = nullptr)
    {
        auto ticket = std::make_shared<BatchTicket<K>>();
        ticket->_view = &jobs;
        ticket->_callback = std::move(callback);
        enqueue(ticket);
        return ticket;
    }

    /**
     * Wait for @p ticket, retire it from the outstanding set and return
     * its per-ticket statistics. When @p results / @p job_cycles are
     * given, the ticket's outputs are moved into them (collect with
     * outputs at most once per ticket); otherwise they stay readable on
     * the ticket.
     */
    BatchStats
    collect(const Ticket &ticket, std::vector<Result> *results = nullptr,
            std::vector<uint64_t> *job_cycles = nullptr)
    {
        ticket->wait();
        {
            std::lock_guard lock(_outstandingMutex);
            auto it = std::find(_outstanding.begin(), _outstanding.end(),
                                ticket);
            if (it != _outstanding.end())
                _outstanding.erase(it);
        }
        if (results)
            *results = std::move(ticket->_results);
        if (job_cycles)
            *job_cycles = std::move(ticket->_cycles);
        return ticket->_stats;
    }

    /**
     * Compatibility wrapper: block until every outstanding ticket has
     * completed and return the aggregate statistics, with optional
     * per-job results and cycles ordered by submission. Safe to overlap
     * with concurrent submit(): accounting is per-ticket, so a racing
     * submission lands either in this epoch or in the next one, never
     * half in each.
     */
    BatchStats
    drain(std::vector<Result> *results = nullptr,
          std::vector<uint64_t> *job_cycles = nullptr)
    {
        std::vector<Ticket> drained;
        {
            std::lock_guard lock(_outstandingMutex);
            drained.swap(_outstanding);
        }
        if (results)
            results->clear();
        if (job_cycles)
            job_cycles->clear();

        BatchStats agg;
        agg.channels.assign(static_cast<size_t>(_cfg.nk), ChannelStats{});
        for (const auto &t : drained) {
            t->wait();
            accumulateBatchStats(agg, t->_stats);
            if (results) {
                results->insert(
                    results->end(),
                    std::make_move_iterator(t->_results.begin()),
                    std::make_move_iterator(t->_results.end()));
            }
            if (job_cycles) {
                job_cycles->insert(job_cycles->end(), t->_cycles.begin(),
                                   t->_cycles.end());
            }
        }
        finalizeBatchStats(agg, _cfg.fmaxMhz, _cfg.cpuEquivalentMhz);
        return agg;
    }

    /**
     * Blocking convenience: run one batch to completion and return its
     * statistics (other in-flight tickets are untouched).
     */
    BatchStats
    runAll(const std::vector<Job> &jobs,
           std::vector<Result> *results = nullptr,
           std::vector<uint64_t> *job_cycles = nullptr)
    {
        auto ticket = submitBorrowed(jobs);
        return collect(ticket, results, job_cycles);
    }

  private:
    /** One device channel: its backend and the serializing mutex. */
    struct Channel
    {
        std::mutex mutex; //!< serializes shards from different tickets
        std::unique_ptr<AlignBackend<K>> backend;
    };

    static int
    poolThreads(const BatchConfig &cfg)
    {
        return std::max(1, cfg.threads > 0 ? cfg.threads
                                           : std::max(1, cfg.nk));
    }

    /** True when the Threshold policy routes @p job to the CPU backend. */
    bool
    routeToCpu(const Job &job) const
    {
        if (!_cpu)
            return false;
        const int qlen = job.query.length();
        const int rlen = job.reference.length();
        if (qlen > _cfg.maxQueryLength || rlen > _cfg.maxReferenceLength)
            return true;
        return _cfg.cpuFloorLen > 0 &&
               std::max(qlen, rlen) < _cfg.cpuFloorLen;
    }

    [[noreturn]] void
    throwUndispatchable(int idx, const Job &job) const
    {
        throw std::invalid_argument(
            "dispatch: job " + std::to_string(idx) + " (" +
            std::to_string(job.query.length()) + " x " +
            std::to_string(job.reference.length()) +
            ") exceeds device maxima (" +
            std::to_string(_cfg.maxQueryLength) + " x " +
            std::to_string(_cfg.maxReferenceLength) +
            ") and no fallback backend is enabled");
    }

    /** Routing outcome of one batch: per-channel shards + CPU/GPU. */
    struct Routing
    {
        std::vector<std::vector<int>> shards;
        std::vector<int> cpu, gpu;
        std::vector<double> shardEst; //!< per-channel estimated seconds
        double cpuEst = 0, gpuEst = 0;
    };

    /**
     * Threshold routing: the original shape rule — CPU for oversized/
     * tiny jobs, round-robin device sharding for the rest. Exactly the
     * old sharding when nothing routes to the CPU. An oversized job
     * with no CPU backend falls back to the GPU model when that is
     * enabled (its full-matrix implementation has no length limit)
     * before failing loudly.
     */
    Routing
    routeThreshold(const std::vector<Job> &jobs) const
    {
        Routing r;
        std::vector<int> device_idx;
        device_idx.reserve(jobs.size());
        for (int i = 0; i < static_cast<int>(jobs.size()); i++) {
            const Job &job = jobs[static_cast<size_t>(i)];
            const bool oversized =
                job.query.length() > _cfg.maxQueryLength ||
                job.reference.length() > _cfg.maxReferenceLength;
            if (routeToCpu(job)) {
                r.cpu.push_back(i);
            } else if (oversized) {
                if (_gpu)
                    r.gpu.push_back(i);
                else
                    throwUndispatchable(i, job);
            } else {
                device_idx.push_back(i);
            }
        }
        r.shards = shardIndicesRoundRobin(device_idx, _cfg.nk);
        r.shardEst.assign(r.shards.size(), 0.0);
        return r;
    }

    /**
     * Cost-model routing: every job goes to the feasible backend slot
     * (each device channel, the CPU backend, the GPU model) with the
     * lowest estimated completion time — the slot's live queued-work
     * signal, plus work routed earlier in this same batch, plus the
     * job's service estimate. Ties prefer the device (its estimates
     * are exact; the baselines' are learned or modeled).
     */
    Routing
    routeCostModel(const std::vector<Job> &jobs) const
    {
        Routing r;
        r.shards.assign(static_cast<size_t>(_cfg.nk), {});
        r.shardEst.assign(static_cast<size_t>(_cfg.nk), 0.0);
        std::vector<double> ch_queued(static_cast<size_t>(_cfg.nk), 0.0);
        for (int c = 0; c < _cfg.nk; c++) {
            ch_queued[static_cast<size_t>(c)] =
                _channels[static_cast<size_t>(c)]->backend->queuedSeconds();
        }
        const double cpu_queued = _cpu ? _cpu->queuedSeconds() : 0;
        const double gpu_queued = _gpu ? _gpu->queuedSeconds() : 0;
        // Per-shard fixed costs (the GPU model's kernel launch): paid
        // by the first job routed to the slot in this batch, so small
        // batches see the true marginal cost of waking a backend.
        const double dev_overhead =
            _channels[0]->backend->batchOverheadSeconds();
        const double cpu_overhead =
            _cpu ? _cpu->batchOverheadSeconds() : 0;
        const double gpu_overhead =
            _gpu ? _gpu->batchOverheadSeconds() : 0;

        for (int i = 0; i < static_cast<int>(jobs.size()); i++) {
            const Job &job = jobs[static_cast<size_t>(i)];
            // All device channels share one configuration, so one
            // estimate covers them; the choice between channels is
            // purely their backlog.
            const CostEstimate dev =
                _channels[0]->backend->estimate(job);
            const CostEstimate cpu_est =
                _cpu ? _cpu->estimate(job) : CostEstimate{0, false};
            const CostEstimate gpu_est =
                _gpu ? _gpu->estimate(job) : CostEstimate{0, false};

            int best_channel = -1;
            double best = std::numeric_limits<double>::infinity();
            if (dev.feasible) {
                for (int c = 0; c < _cfg.nk; c++) {
                    const double first =
                        r.shards[static_cast<size_t>(c)].empty()
                            ? dev_overhead
                            : 0;
                    const double t = ch_queued[static_cast<size_t>(c)] +
                                     r.shardEst[static_cast<size_t>(c)] +
                                     dev.seconds + first;
                    if (t < best) {
                        best = t;
                        best_channel = c;
                    }
                }
            }
            const double cpu_first = r.cpu.empty() ? cpu_overhead : 0;
            const double gpu_first = r.gpu.empty() ? gpu_overhead : 0;
            enum { Device, Cpu, Gpu } target = Device;
            if (cpu_est.feasible &&
                cpu_queued + r.cpuEst + cpu_est.seconds + cpu_first <
                    best) {
                best = cpu_queued + r.cpuEst + cpu_est.seconds + cpu_first;
                target = Cpu;
            }
            if (gpu_est.feasible &&
                gpu_queued + r.gpuEst + gpu_est.seconds + gpu_first <
                    best) {
                best = gpu_queued + r.gpuEst + gpu_est.seconds + gpu_first;
                target = Gpu;
            }
            if (!dev.feasible && target == Device) {
                if (cpu_est.feasible) {
                    target = Cpu;
                } else if (gpu_est.feasible) {
                    target = Gpu;
                } else {
                    throwUndispatchable(i, job);
                }
            }
            switch (target) {
              case Device: {
                auto &shard = r.shards[static_cast<size_t>(best_channel)];
                if (shard.empty())
                    r.shardEst[static_cast<size_t>(best_channel)] +=
                        dev_overhead;
                shard.push_back(i);
                r.shardEst[static_cast<size_t>(best_channel)] +=
                    dev.seconds;
                break;
              }
              case Cpu:
                r.cpu.push_back(i);
                r.cpuEst += cpu_est.seconds + cpu_first;
                break;
              case Gpu:
                r.gpu.push_back(i);
                r.gpuEst += gpu_est.seconds + gpu_first;
                break;
            }
        }
        return r;
    }

    void
    enqueue(const Ticket &ticket)
    {
        const auto &jobs = ticket->jobs();
        const int n = static_cast<int>(jobs.size());

        // Route first: an undispatchable job throws here, before the
        // ticket is registered, so a failed submit leaves the pipeline
        // with nothing outstanding.
        Routing routing = _cfg.dispatch == DispatchPolicy::CostModel
                              ? routeCostModel(jobs)
                              : routeThreshold(jobs);

        ticket->_results.resize(static_cast<size_t>(n));
        ticket->_cycles.assign(static_cast<size_t>(n), 0);
        ticket->_stats.channels.assign(static_cast<size_t>(_cfg.nk),
                                       ChannelStats{});

        int tasks = (routing.cpu.empty() ? 0 : 1) +
                    (routing.gpu.empty() ? 0 : 1);
        for (const auto &s : routing.shards)
            tasks += s.empty() ? 0 : 1;
        ticket->_pending = tasks;
        {
            std::lock_guard lock(_outstandingMutex);
            _outstanding.push_back(ticket);
        }
        if (tasks == 0) {
            finishShard(ticket); // empty batch completes immediately
            return;
        }

        for (int c = 0; c < _cfg.nk; c++) {
            auto shard = std::move(routing.shards[static_cast<size_t>(c)]);
            if (shard.empty())
                continue;
            const double est = routing.shardEst[static_cast<size_t>(c)];
            Channel &ch = *_channels[static_cast<size_t>(c)];
            if (est > 0)
                ch.backend->noteEnqueued(est);
            _pool.submit([this, ticket, c, est,
                          shard = std::move(shard)] {
                Channel &chan = *_channels[static_cast<size_t>(c)];
                {
                    std::lock_guard lock(chan.mutex);
                    chan.backend->run(
                        ticket->jobs(), shard, ticket->_results.data(),
                        ticket->_cycles.data(),
                        ticket->_stats.channels[static_cast<size_t>(c)]);
                }
                if (est > 0)
                    chan.backend->noteCompleted(est);
                collectPaths(*ticket, shard);
                finishShard(ticket);
            });
        }
        if (!routing.cpu.empty()) {
            const double est = routing.cpuEst;
            if (est > 0)
                _cpu->noteEnqueued(est);
            _pool.submit([this, ticket, est,
                          cpu = std::move(routing.cpu)] {
                // MatrixAligner is stateless-const, so the CPU backend
                // needs no serialization across tickets.
                _cpu->run(ticket->jobs(), cpu, ticket->_results.data(),
                          ticket->_cycles.data(), ticket->_stats.cpu);
                if (est > 0)
                    _cpu->noteCompleted(est);
                collectPaths(*ticket, cpu);
                finishShard(ticket);
            });
        }
        if (!routing.gpu.empty()) {
            const double est = routing.gpuEst;
            if (est > 0)
                _gpu->noteEnqueued(est);
            _pool.submit([this, ticket, est,
                          gpu = std::move(routing.gpu)] {
                // The GPU model batches each shard as one launch; like
                // the CPU backend it has no cross-ticket mutable state.
                _gpu->run(ticket->jobs(), gpu, ticket->_results.data(),
                          ticket->_cycles.data(), ticket->_stats.gpu);
                if (est > 0)
                    _gpu->noteCompleted(est);
                collectPaths(*ticket, gpu);
                finishShard(ticket);
            });
        }
    }

    void
    collectPaths(BatchTicket<K> &ticket, const std::vector<int> &indices)
    {
        if (!_cfg.collectPathStats)
            return;
        core::AlignmentStats local;
        const auto &jobs = ticket.jobs();
        for (const int idx : indices) {
            const auto &res = ticket._results[static_cast<size_t>(idx)];
            if (res.ops.empty())
                continue;
            const auto &job = jobs[static_cast<size_t>(idx)];
            mergePathStats(local,
                           core::computeStats(job.query, job.reference,
                                              res.ops, res.start));
        }
        std::lock_guard lock(ticket._mutex);
        mergePathStats(ticket._stats.paths, local);
    }

    /**
     * Mark one shard done; the last one finalizes the ticket, runs the
     * completion callback and only then releases waiters — so wait()
     * returning guarantees the callback has finished (a callback must
     * therefore never wait on its own ticket).
     */
    void
    finishShard(const Ticket &ticket)
    {
        std::function<void(BatchTicket<K> &)> callback;
        {
            std::lock_guard lock(ticket->_mutex);
            if (ticket->_pending > 0 && --ticket->_pending > 0)
                return;
            finalizeBatchStats(ticket->_stats, _cfg.fmaxMhz,
                               _cfg.cpuEquivalentMhz);
            callback = std::move(ticket->_callback);
        }
        if (callback)
            callback(*ticket);
        {
            std::lock_guard lock(ticket->_mutex);
            ticket->_done = true;
        }
        ticket->_cv.notify_all();
    }

    BatchConfig _cfg;
    Params _params;
    ShardedResultCache<Result> _cache;
    std::mutex _outstandingMutex;
    std::vector<Ticket> _outstanding; //!< submitted, not yet retired
    std::vector<std::unique_ptr<Channel>> _channels;
    std::unique_ptr<CpuBaselineBackend<K>> _cpu;
    std::unique_ptr<GpuModelBackend<K>> _gpu;
    // Declared last: ~ThreadPool drains every queued shard task, so the
    // pool must be destroyed before the channels/backends those tasks
    // reference (pipeline destroyed with in-flight tickets).
    ThreadPool _pool;
};

} // namespace dphls::host

#endif // DPHLS_HOST_STREAM_PIPELINE_HH
