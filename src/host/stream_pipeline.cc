#include "host/stream_pipeline.hh"

#include "baselines/gpu_model.hh"

namespace dphls::host {

std::vector<std::vector<int>>
shardRoundRobin(int jobs, int channels)
{
    std::vector<std::vector<int>> shards(
        static_cast<size_t>(std::max(1, channels)));
    if (jobs <= 0)
        return shards;
    const int nk = static_cast<int>(shards.size());
    for (auto &s : shards)
        s.reserve(static_cast<size_t>((jobs + nk - 1) / nk));
    for (int i = 0; i < jobs; i++)
        shards[static_cast<size_t>(i % nk)].push_back(i);
    return shards;
}

std::vector<std::vector<int>>
shardIndicesRoundRobin(const std::vector<int> &indices, int channels)
{
    std::vector<std::vector<int>> shards(
        static_cast<size_t>(std::max(1, channels)));
    const int nk = static_cast<int>(shards.size());
    const int n = static_cast<int>(indices.size());
    for (auto &s : shards)
        s.reserve(static_cast<size_t>((n + nk - 1) / nk));
    for (int i = 0; i < n; i++) {
        shards[static_cast<size_t>(i % nk)].push_back(
            indices[static_cast<size_t>(i)]);
    }
    return shards;
}

void
mergePathStats(core::AlignmentStats &into, const core::AlignmentStats &add)
{
    into.matches += add.matches;
    into.mismatches += add.mismatches;
    into.insertions += add.insertions;
    into.deletions += add.deletions;
    into.gapOpens += add.gapOpens;
    into.columns += add.columns;
}

void
finalizeBatchStats(BatchStats &stats, double fmax_mhz, double cpu_mhz)
{
    stats.makespanCycles = 0;
    uint64_t device_total = 0;
    int device_aligns = 0;
    int device_cancelled = 0;
    int device_misses = 0;
    int device_preempts = 0;
    for (const auto &ch : stats.channels) {
        stats.makespanCycles = std::max(stats.makespanCycles, ch.busyCycles);
        device_total += ch.totalCycles;
        device_aligns += ch.alignments;
        device_cancelled += ch.cancelled;
        device_misses += ch.deadlineMisses;
        device_preempts += ch.preemptions;
    }
    stats.totalCycles =
        device_total + stats.cpu.totalCycles + stats.gpu.totalCycles;
    stats.alignments =
        device_aligns + stats.cpu.alignments + stats.gpu.alignments;
    stats.cancelled =
        device_cancelled + stats.cpu.cancelled + stats.gpu.cancelled;
    stats.deadlineMisses =
        device_misses + stats.cpu.deadlineMisses + stats.gpu.deadlineMisses;
    stats.preemptions =
        device_preempts + stats.cpu.preemptions + stats.gpu.preemptions;

    stats.backends.clear();
    {
        BackendStats dev;
        dev.name = "device";
        dev.clockMhz = fmax_mhz;
        dev.busyCycles = stats.makespanCycles;
        dev.totalCycles = device_total;
        dev.alignments = device_aligns;
        dev.cancelled = device_cancelled;
        dev.deadlineMisses = device_misses;
        dev.preemptions = device_preempts;
        dev.seconds = fmax_mhz > 0
            ? static_cast<double>(dev.busyCycles) / (fmax_mhz * 1e6)
            : 0.0;
        stats.backends.push_back(dev);
    }
    if (stats.cpu.alignments > 0 || stats.cpu.cancelled > 0) {
        BackendStats cpu;
        cpu.name = "cpu";
        cpu.clockMhz = cpu_mhz;
        cpu.busyCycles = stats.cpu.busyCycles;
        cpu.totalCycles = stats.cpu.totalCycles;
        cpu.alignments = stats.cpu.alignments;
        cpu.cancelled = stats.cpu.cancelled;
        cpu.deadlineMisses = stats.cpu.deadlineMisses;
        cpu.preemptions = stats.cpu.preemptions;
        cpu.seconds = cpu_mhz > 0
            ? static_cast<double>(cpu.busyCycles) / (cpu_mhz * 1e6)
            : 0.0;
        stats.backends.push_back(cpu);
    }
    if (stats.gpu.alignments > 0 || stats.gpu.cancelled > 0) {
        BackendStats gpu;
        gpu.name = "gpu";
        gpu.clockMhz = baseline::gpuModelClockMhz();
        gpu.busyCycles = stats.gpu.busyCycles;
        gpu.totalCycles = stats.gpu.totalCycles;
        gpu.alignments = stats.gpu.alignments;
        gpu.cancelled = stats.gpu.cancelled;
        gpu.deadlineMisses = stats.gpu.deadlineMisses;
        gpu.preemptions = stats.gpu.preemptions;
        gpu.seconds =
            static_cast<double>(gpu.busyCycles) / (gpu.clockMhz * 1e6);
        stats.backends.push_back(gpu);
    }

#if DPHLS_DCHECK_ENABLED
    // The per-backend sections are the epoch totals re-bucketed; if a
    // future edit adds a backend without threading it through both
    // views, the books stop balancing.
    {
        uint64_t sec_cycles = 0;
        int sec_aligns = 0;
        int sec_cancelled = 0;
        for (const auto &b : stats.backends) {
            sec_cycles += b.totalCycles;
            sec_aligns += b.alignments;
            sec_cancelled += b.cancelled;
        }
        DPHLS_DCHECK(sec_cycles == stats.totalCycles,
                     "backend section cycles ", sec_cycles,
                     " != epoch total ", stats.totalCycles);
        DPHLS_DCHECK(sec_aligns == stats.alignments,
                     "backend section alignments ", sec_aligns,
                     " != epoch total ", stats.alignments);
        DPHLS_DCHECK(sec_cancelled == stats.cancelled,
                     "backend section cancelled ", sec_cancelled,
                     " != epoch total ", stats.cancelled);
    }
#endif

    // The backends run concurrently; the epoch's wall time is the
    // slowest section at its own clock.
    stats.seconds = 0;
    for (const auto &b : stats.backends)
        stats.seconds = std::max(stats.seconds, b.seconds);
    stats.alignsPerSec =
        stats.seconds > 0 ? stats.alignments / stats.seconds : 0.0;
    stats.cyclesPerAlign =
        stats.alignments > 0
            ? static_cast<double>(stats.totalCycles) / stats.alignments
            : 0.0;
}

void
accumulateBatchStats(BatchStats &into, const BatchStats &add)
{
    if (into.channels.size() < add.channels.size())
        into.channels.resize(add.channels.size());
    for (size_t c = 0; c < add.channels.size(); c++) {
        into.channels[c].busyCycles += add.channels[c].busyCycles;
        into.channels[c].totalCycles += add.channels[c].totalCycles;
        into.channels[c].alignments += add.channels[c].alignments;
        into.channels[c].cancelled += add.channels[c].cancelled;
        into.channels[c].deadlineMisses += add.channels[c].deadlineMisses;
        into.channels[c].preemptions += add.channels[c].preemptions;
    }
    into.cpu.busyCycles += add.cpu.busyCycles;
    into.cpu.totalCycles += add.cpu.totalCycles;
    into.cpu.alignments += add.cpu.alignments;
    into.cpu.cancelled += add.cpu.cancelled;
    into.cpu.deadlineMisses += add.cpu.deadlineMisses;
    into.cpu.preemptions += add.cpu.preemptions;
    into.gpu.busyCycles += add.gpu.busyCycles;
    into.gpu.totalCycles += add.gpu.totalCycles;
    into.gpu.alignments += add.gpu.alignments;
    into.gpu.cancelled += add.gpu.cancelled;
    into.gpu.deadlineMisses += add.gpu.deadlineMisses;
    into.gpu.preemptions += add.gpu.preemptions;
    mergePathStats(into.paths, add.paths);
}

} // namespace dphls::host
