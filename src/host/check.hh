/**
 * @file
 * Debug invariant checking for the host layer: CHECK/DCHECK macros and
 * a lock-rank-asserting mutex.
 *
 * The host layer's correctness rests on invariants the example-based
 * tests can only sample — accounting closure (alignments + cancelled
 * == jobs, per-backend sections summing to epoch totals), the
 * BoundedFifo state machine, and a deadlock-free lock acquisition
 * order. This header turns those invariants into executable assertions:
 *
 *  - DPHLS_CHECK(cond, msg...) aborts with a diagnostic in every build
 *    type. Use it for contract violations that must never ship.
 *  - DPHLS_DCHECK(cond, msg...) compiles to the same check in Debug
 *    builds (!NDEBUG) and to nothing in Release, so hot paths can
 *    assert freely. The scheduler torture suite runs Debug, so these
 *    assertions see heavily randomized interleavings in CI.
 *  - DebugMutex is a std::mutex wrapper carrying a lock *rank*. Debug
 *    builds keep a thread-local stack of held ranks and abort when a
 *    thread acquires a mutex whose rank is not strictly greater than
 *    every rank it already holds — enforcing a global acquisition
 *    order, which makes lock-order deadlocks impossible by
 *    construction. Release builds are a plain std::mutex (no tracking,
 *    no atomic traffic). Mutexes paired with a std::condition_variable
 *    stay std::mutex (the CV type requires it); only the non-CV host
 *    locks are ranked.
 *
 * The rank table (lockrank::) is the single source of truth for the
 * host+serve layer's lock order. Two mutexes of the same rank must
 * never be held together (strictly-greater comparison), which also
 * outlaws holding two dispatch-slot locks at once.
 */

#ifndef DPHLS_HOST_CHECK_HH
#define DPHLS_HOST_CHECK_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace dphls::host {

namespace checkdetail {

/** Fold any streamable arguments into one message string. */
template <typename... Args>
std::string
message(const Args &...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (os << ... << args);
        return os.str();
    }
}

[[noreturn]] inline void
fail(const char *kind, const char *expr, const char *file, int line,
     const std::string &msg)
{
    std::fprintf(stderr, "%s failed: %s at %s:%d%s%s\n", kind, expr,
                 file, line, msg.empty() ? "" : ": ", msg.c_str());
    std::fflush(stderr);
    std::abort();
}

} // namespace checkdetail

} // namespace dphls::host

/** Abort (all build types) when @p cond is false; extra args stream
 *  into the diagnostic. */
#define DPHLS_CHECK(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dphls::host::checkdetail::fail(                           \
                "DPHLS_CHECK", #cond, __FILE__, __LINE__,               \
                ::dphls::host::checkdetail::message(__VA_ARGS__));      \
        }                                                               \
    } while (0)

#ifndef NDEBUG
/** Debug-build invariant: identical to DPHLS_CHECK when NDEBUG is not
 *  defined, compiled out (condition unevaluated) in Release. */
#define DPHLS_DCHECK(cond, ...)                                         \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dphls::host::checkdetail::fail(                           \
                "DPHLS_DCHECK", #cond, __FILE__, __LINE__,              \
                ::dphls::host::checkdetail::message(__VA_ARGS__));      \
        }                                                               \
    } while (0)
#define DPHLS_DCHECK_ENABLED 1
#else
#define DPHLS_DCHECK(cond, ...)                                         \
    do {                                                                \
    } while (0)
#define DPHLS_DCHECK_ENABLED 0
#endif

namespace dphls::host {

/**
 * Lock ranks of the host + serve layer, outermost first. A thread may
 * only acquire a DebugMutex whose rank is strictly greater than every
 * rank it already holds.
 */
namespace lockrank {
/** StreamPipeline::_outstandingMutex (ticket registry). */
constexpr int kOutstanding = 10;
/** DispatchCore::Slot::mutex (one per backend slot; never nested). */
constexpr int kDispatchSlot = 20;
/** AlignService::_ticketMutex (live-ticket reaping list). */
constexpr int kServiceTickets = 30;
/** AlignService::_statsMutex (epoch accounting + counters). */
constexpr int kServiceStats = 40;
/** TenantQuotas::_mtx (innermost: leaf calls only). */
constexpr int kTenantQuota = 50;
/** workloads::ClassLatencyProbe::_mutex (leaf; taken from ticket
 *  completion callbacks, which may run under a dispatch slot). */
constexpr int kWorkloadProbe = 60;
} // namespace lockrank

#if DPHLS_DCHECK_ENABLED

namespace checkdetail {

/** Thread-local stack of held DebugMutexes (tiny; lock depth in this
 *  codebase never exceeds a handful). Identity is the mutex address —
 *  two slot mutexes share a rank and name but are distinct locks. */
struct HeldRanks
{
    static constexpr int kMaxDepth = 16;
    int ranks[kMaxDepth];
    const char *names[kMaxDepth];
    const void *owners[kMaxDepth];
    int depth = 0;
};

inline HeldRanks &
heldRanks()
{
    thread_local HeldRanks held;
    return held;
}

} // namespace checkdetail

/**
 * Rank-checked mutex (Debug builds). Satisfies Lockable, so
 * std::lock_guard / std::unique_lock / std::scoped_lock work unchanged.
 */
class DebugMutex
{
  public:
    explicit DebugMutex(int rank, const char *name)
        : _rank(rank), _name(name)
    {}

    void
    lock()
    {
        checkOrder();
        _m.lock();
        push();
    }

    bool
    try_lock()
    {
        // try_lock never blocks, so it cannot deadlock — but a success
        // still makes the thread *hold* the rank, so the order check
        // applies all the same.
        checkOrder();
        if (!_m.try_lock())
            return false;
        push();
        return true;
    }

    void
    unlock()
    {
        pop();
        _m.unlock();
    }

    /** True when the calling thread holds this mutex (for DCHECKs). */
    bool
    heldByThisThread() const
    {
        const auto &held = checkdetail::heldRanks();
        for (int i = 0; i < held.depth; i++) {
            if (held.owners[i] == this)
                return true;
        }
        return false;
    }

  private:
    void
    checkOrder() const
    {
        const auto &held = checkdetail::heldRanks();
        for (int i = 0; i < held.depth; i++) {
            DPHLS_CHECK(held.ranks[i] < _rank,
                        "lock-rank order violated: acquiring '", _name,
                        "' (rank ", _rank, ") while holding '",
                        held.names[i], "' (rank ", held.ranks[i], ")");
        }
    }

    void
    push()
    {
        auto &held = checkdetail::heldRanks();
        DPHLS_CHECK(held.depth < checkdetail::HeldRanks::kMaxDepth,
                    "lock depth over ", checkdetail::HeldRanks::kMaxDepth);
        held.ranks[held.depth] = _rank;
        held.names[held.depth] = _name;
        held.owners[held.depth] = this;
        held.depth++;
    }

    void
    pop()
    {
        auto &held = checkdetail::heldRanks();
        // Guards release LIFO almost always, but unique_lock allows
        // out-of-order unlocks: erase wherever this mutex sits.
        for (int i = held.depth - 1; i >= 0; i--) {
            if (held.owners[i] == this) {
                for (int j = i; j + 1 < held.depth; j++) {
                    held.ranks[j] = held.ranks[j + 1];
                    held.names[j] = held.names[j + 1];
                    held.owners[j] = held.owners[j + 1];
                }
                held.depth--;
                return;
            }
        }
        DPHLS_CHECK(false, "unlocking '", _name,
                    "' which this thread does not hold");
    }

    std::mutex _m;
    const int _rank;
    const char *_name;
};

#else // !DPHLS_DCHECK_ENABLED

/** Release builds: a plain mutex — rank checking compiles away. */
class DebugMutex
{
  public:
    explicit DebugMutex(int, const char *) {}

    void lock() { _m.lock(); }
    bool try_lock() { return _m.try_lock(); }
    void unlock() { _m.unlock(); }
    bool heldByThisThread() const { return true; }

  private:
    std::mutex _m;
};

#endif // DPHLS_DCHECK_ENABLED

} // namespace dphls::host

#endif // DPHLS_HOST_CHECK_HH
