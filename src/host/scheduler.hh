/**
 * @file
 * Host-side thread pool with priority/deadline-aware task ordering.
 *
 * The paper's host programs use multi-threading to keep the device's NK
 * independent channels busy (front-end step 6). The device model and the
 * CPU baseline runner both use this pool to parallelize work across host
 * threads.
 *
 * Tasks are popped highest-priority first, then earliest-deadline, then
 * in submission order, so when worker threads are scarcer than runnable
 * shards the pool itself honors the StreamPipeline's latency classes.
 * The plain submit() overload enqueues at the default priority with no
 * deadline, which degrades to exact FIFO order — existing callers see
 * the historical behavior unchanged.
 *
 * Starvation control: a pool constructed with aging_every = N > 0
 * serves the *oldest* queued task (lowest submission sequence) on every
 * N-th pop instead of the best-priority one, so a saturating
 * high-priority stream cannot hold a lower class off the workers for
 * more than N-1 consecutive pops. 0 (the default) disables aging and
 * preserves strict (priority, deadline, FIFO) order.
 */

#ifndef DPHLS_HOST_SCHEDULER_HH
#define DPHLS_HOST_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dphls::host {

/**
 * Cooperative preemption flag for an in-flight shard.
 *
 * The dispatcher registers one token per running staged shard; a
 * higher-priority enqueue request()s it, and the shard's producer loop
 * polls requested() at stage / lane-group boundaries, yielding the slot
 * with the remainder re-queued. Purely advisory: a backend that never
 * polls simply runs to completion (the monolithic behavior).
 */
class PreemptToken
{
  public:
    void request() { _requested.store(true, std::memory_order_release); }

    bool
    requested() const
    {
        return _requested.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> _requested{false};
};

/**
 * The consumer half of a staged shard: one dedicated thread draining
 * the inter-stage FIFO. Joined on destruction, so a backend can hold it
 * on the stack next to the FIFO it drains — close the FIFO, then let
 * scope end.
 */
class StageWorker
{
  public:
    explicit StageWorker(std::function<void()> fn);
    ~StageWorker();

    StageWorker(const StageWorker &) = delete;
    StageWorker &operator=(const StageWorker &) = delete;

    /** Block until the drain function returns (idempotent). */
    void join();

  private:
    std::thread _thread;
};

/** Scheduling attributes of one pool task. */
struct TaskOptions
{
    /** Higher runs first. The default class is 0. */
    int priority = 0;
    /**
     * Absolute deadline in seconds on the steady clock's epoch;
     * infinity (the default) means no deadline. Among equal-priority
     * tasks the earliest deadline runs first.
     */
    double deadlineSeconds = std::numeric_limits<double>::infinity();
};

/**
 * A fixed-size thread pool executing enqueued tasks in (priority,
 * deadline, FIFO) order.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count (clamped to >= 1).
     * @param aging_every anti-starvation period: every N-th pop takes
     *        the oldest queued task instead of the highest-priority
     *        one; 0 disables aging (strict priority order).
     */
    explicit ThreadPool(int threads, int aging_every = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task at the default priority (FIFO among its peers). */
    void submit(std::function<void()> task);

    /** Enqueue a task with explicit scheduling attributes. */
    void submit(std::function<void()> task, const TaskOptions &options);

    /** Block until all submitted tasks have completed. */
    void wait();

    int threadCount() const { return static_cast<int>(_workers.size()); }

  private:
    /** One queued task plus its pop-ordering key. */
    struct Entry
    {
        int priority = 0;
        double deadline = std::numeric_limits<double>::infinity();
        uint64_t seq = 0;
        std::function<void()> fn;
    };

    /** True when @p a should run before @p b. */
    static bool runsBefore(const Entry &a, const Entry &b);

    void workerLoop();

    std::vector<std::thread> _workers;
    std::vector<Entry> _tasks; //!< max-heap ordered by runsBefore
    int _agingEvery = 0;       //!< 0 = no aging
    uint64_t _pops = 0;        //!< pops so far (aging phase, under _mutex)
    uint64_t _nextSeq = 0;
    std::mutex _mutex;
    std::condition_variable _cv;
    std::condition_variable _idleCv;
    size_t _active = 0;
    bool _stop = false;
};

/**
 * Run fn(i) for i in [0, n) across the given number of threads; blocks
 * until all iterations complete.
 */
void parallelFor(int n, int threads, const std::function<void(int)> &fn);

} // namespace dphls::host

#endif // DPHLS_HOST_SCHEDULER_HH
