/**
 * @file
 * Host-side thread pool.
 *
 * The paper's host programs use multi-threading to keep the device's NK
 * independent channels busy (front-end step 6). The device model and the
 * CPU baseline runner both use this pool to parallelize work across host
 * threads.
 */

#ifndef DPHLS_HOST_SCHEDULER_HH
#define DPHLS_HOST_SCHEDULER_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dphls::host {

/** A fixed-size thread pool executing enqueued tasks. */
class ThreadPool
{
  public:
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void wait();

    int threadCount() const { return static_cast<int>(_workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::queue<std::function<void()>> _tasks;
    std::mutex _mutex;
    std::condition_variable _cv;
    std::condition_variable _idleCv;
    size_t _active = 0;
    bool _stop = false;
};

/**
 * Run fn(i) for i in [0, n) across the given number of threads; blocks
 * until all iterations complete.
 */
void parallelFor(int n, int threads, const std::function<void(int)> &fn);

} // namespace dphls::host

#endif // DPHLS_HOST_SCHEDULER_HH
