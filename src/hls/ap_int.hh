/**
 * @file
 * Arbitrary-precision integer types mirroring AMD Vitis HLS `ap_int` /
 * `ap_uint` semantics.
 *
 * DP-HLS kernels are written against the Vitis arbitrary-precision type
 * vocabulary; this header provides a portable, self-contained equivalent so
 * that the same kernel specifications compile off-FPGA. Semantics follow
 * Vitis defaults: two's-complement storage, wrap-around on overflow
 * (AP_WRAP), and value-preserving conversion from native integers with
 * truncation to the declared width.
 *
 * Widths up to 64 bits are supported, which covers every kernel in the
 * paper (the widest type used is the 32-bit fixed-point DTW sample).
 */

#ifndef DPHLS_HLS_AP_INT_HH
#define DPHLS_HLS_AP_INT_HH

#include <cstdint>
#include <limits>
#include <type_traits>

namespace dphls::hls {

/** Bit mask with the low @p w bits set (w in [1, 64]). */
constexpr uint64_t
bitMask(int w)
{
    return w >= 64 ? ~uint64_t{0} : ((uint64_t{1} << w) - 1);
}

/** Sign-extend the low @p w bits of @p v to a full int64_t. */
constexpr int64_t
signExtend(uint64_t v, int w)
{
    if (w >= 64)
        return static_cast<int64_t>(v);
    const uint64_t m = uint64_t{1} << (w - 1);
    v &= bitMask(w);
    return static_cast<int64_t>((v ^ m) - m);
}

/**
 * Signed arbitrary-precision integer of width W (two's complement,
 * wrap-around overflow). Drop-in stand-in for Vitis `ap_int<W>`.
 */
template <int W>
class ApInt
{
    static_assert(W >= 1 && W <= 64, "ApInt width must be in [1, 64]");

  public:
    static constexpr int width = W;

    constexpr ApInt() = default;

    /** Construct from any native integer, truncating to W bits. */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    constexpr
    ApInt(T v)
        : _val(signExtend(static_cast<uint64_t>(v), W))
    {}

    /** Construct from another width, re-truncating. */
    template <int W2>
    constexpr explicit
    ApInt(ApInt<W2> o)
        : _val(signExtend(static_cast<uint64_t>(o.raw()), W))
    {}

    /** The numeric value as a native 64-bit integer. */
    constexpr int64_t raw() const { return _val; }

    constexpr explicit operator int64_t() const { return _val; }
    constexpr explicit operator int() const { return static_cast<int>(_val); }
    constexpr explicit operator double() const
    {
        return static_cast<double>(_val);
    }

    /** Smallest representable value. */
    static constexpr ApInt
    lowest()
    {
        return ApInt(int64_t{-1} << (W - 1));
    }

    /** Largest representable value. */
    static constexpr ApInt
    highest()
    {
        return ApInt(static_cast<int64_t>(bitMask(W - 1)));
    }

    friend constexpr ApInt
    operator+(ApInt a, ApInt b)
    {
        return ApInt(a._val + b._val);
    }
    friend constexpr ApInt
    operator-(ApInt a, ApInt b)
    {
        return ApInt(a._val - b._val);
    }
    friend constexpr ApInt
    operator*(ApInt a, ApInt b)
    {
        return ApInt(a._val * b._val);
    }
    friend constexpr ApInt
    operator/(ApInt a, ApInt b)
    {
        return ApInt(a._val / b._val);
    }
    friend constexpr ApInt
    operator%(ApInt a, ApInt b)
    {
        return ApInt(a._val % b._val);
    }
    friend constexpr ApInt operator-(ApInt a) { return ApInt(-a._val); }

    friend constexpr ApInt
    operator&(ApInt a, ApInt b)
    {
        return ApInt(a._val & b._val);
    }
    friend constexpr ApInt
    operator|(ApInt a, ApInt b)
    {
        return ApInt(a._val | b._val);
    }
    friend constexpr ApInt
    operator^(ApInt a, ApInt b)
    {
        return ApInt(a._val ^ b._val);
    }
    friend constexpr ApInt
    operator<<(ApInt a, int s)
    {
        return ApInt(a._val << s);
    }
    friend constexpr ApInt
    operator>>(ApInt a, int s)
    {
        return ApInt(a._val >> s);
    }

    ApInt &operator+=(ApInt o) { return *this = *this + o; }
    ApInt &operator-=(ApInt o) { return *this = *this - o; }
    ApInt &operator*=(ApInt o) { return *this = *this * o; }

    friend constexpr bool
    operator==(ApInt a, ApInt b)
    {
        return a._val == b._val;
    }
    friend constexpr bool
    operator!=(ApInt a, ApInt b)
    {
        return a._val != b._val;
    }
    friend constexpr bool
    operator<(ApInt a, ApInt b)
    {
        return a._val < b._val;
    }
    friend constexpr bool
    operator<=(ApInt a, ApInt b)
    {
        return a._val <= b._val;
    }
    friend constexpr bool
    operator>(ApInt a, ApInt b)
    {
        return a._val > b._val;
    }
    friend constexpr bool
    operator>=(ApInt a, ApInt b)
    {
        return a._val >= b._val;
    }

  private:
    int64_t _val = 0;
};

/**
 * Unsigned arbitrary-precision integer of width W (wrap-around overflow).
 * Drop-in stand-in for Vitis `ap_uint<W>`.
 */
template <int W>
class ApUInt
{
    static_assert(W >= 1 && W <= 64, "ApUInt width must be in [1, 64]");

  public:
    static constexpr int width = W;

    constexpr ApUInt() = default;

    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    constexpr
    ApUInt(T v)
        : _val(static_cast<uint64_t>(v) & bitMask(W))
    {}

    template <int W2>
    constexpr explicit
    ApUInt(ApUInt<W2> o)
        : _val(o.raw() & bitMask(W))
    {}

    constexpr uint64_t raw() const { return _val; }
    constexpr explicit operator uint64_t() const { return _val; }
    constexpr explicit operator int() const { return static_cast<int>(_val); }

    static constexpr ApUInt lowest() { return ApUInt(uint64_t{0}); }
    static constexpr ApUInt highest() { return ApUInt(bitMask(W)); }

    friend constexpr ApUInt
    operator+(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val + b._val);
    }
    friend constexpr ApUInt
    operator-(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val - b._val);
    }
    friend constexpr ApUInt
    operator*(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val * b._val);
    }
    friend constexpr ApUInt
    operator/(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val / b._val);
    }
    friend constexpr ApUInt
    operator%(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val % b._val);
    }

    friend constexpr ApUInt
    operator&(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val & b._val);
    }
    friend constexpr ApUInt
    operator|(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val | b._val);
    }
    friend constexpr ApUInt
    operator^(ApUInt a, ApUInt b)
    {
        return ApUInt(a._val ^ b._val);
    }
    friend constexpr ApUInt
    operator<<(ApUInt a, int s)
    {
        return ApUInt(a._val << s);
    }
    friend constexpr ApUInt
    operator>>(ApUInt a, int s)
    {
        return ApUInt(a._val >> s);
    }

    ApUInt &operator+=(ApUInt o) { return *this = *this + o; }
    ApUInt &operator-=(ApUInt o) { return *this = *this - o; }

    friend constexpr bool
    operator==(ApUInt a, ApUInt b)
    {
        return a._val == b._val;
    }
    friend constexpr bool
    operator!=(ApUInt a, ApUInt b)
    {
        return a._val != b._val;
    }
    friend constexpr bool
    operator<(ApUInt a, ApUInt b)
    {
        return a._val < b._val;
    }
    friend constexpr bool
    operator<=(ApUInt a, ApUInt b)
    {
        return a._val <= b._val;
    }
    friend constexpr bool
    operator>(ApUInt a, ApUInt b)
    {
        return a._val > b._val;
    }
    friend constexpr bool
    operator>=(ApUInt a, ApUInt b)
    {
        return a._val >= b._val;
    }

  private:
    uint64_t _val = 0;
};

} // namespace dphls::hls

#endif // DPHLS_HLS_AP_INT_HH
