/**
 * @file
 * Fixed-point type mirroring AMD Vitis HLS `ap_fixed<W, I>` semantics.
 *
 * W is the total bit width and I the number of integer bits (including the
 * sign bit), so there are F = W - I fractional bits. Vitis defaults are
 * reproduced: quantization AP_TRN (truncate toward minus infinity) and
 * overflow AP_WRAP (two's-complement wrap-around).
 *
 * The DTW kernel (#9) represents complex signal samples as a struct of two
 * `ApFixed<32, 26>` values, exactly as Listing 1 (right) of the paper.
 */

#ifndef DPHLS_HLS_AP_FIXED_HH
#define DPHLS_HLS_AP_FIXED_HH

#include <cmath>
#include <cstdint>

#include "hls/ap_int.hh"

namespace dphls::hls {

/**
 * Signed fixed-point number with W total bits and I integer bits.
 *
 * Internally stores the scaled two's-complement raw value (value * 2^F) in
 * a 64-bit integer, renormalized to W bits after every operation.
 */
template <int W, int I>
class ApFixed
{
    static_assert(W >= 1 && W <= 32,
                  "ApFixed width limited to 32 so products fit in int64");
    static_assert(I >= 1 && I <= W, "integer bits must be in [1, W]");

  public:
    static constexpr int width = W;
    static constexpr int intBits = I;
    static constexpr int fracBits = W - I;

    constexpr ApFixed() = default;

    /** Construct from a double, truncating toward minus infinity. */
    ApFixed(double v)
        : _raw(normalize(static_cast<int64_t>(
              std::floor(v * double(uint64_t{1} << fracBits)))))
    {}

    /** Construct from a native integer value (exact if representable). */
    constexpr
    ApFixed(int v)
        : _raw(normalize(int64_t{v} << fracBits))
    {}

    /** Build directly from a raw scaled value. */
    static constexpr ApFixed
    fromRaw(int64_t raw)
    {
        ApFixed f;
        f._raw = normalize(raw);
        return f;
    }

    /** The raw scaled (value * 2^F) representation. */
    constexpr int64_t raw() const { return _raw; }

    /** Convert back to double (exact: raw / 2^F). */
    constexpr double
    toDouble() const
    {
        return static_cast<double>(_raw) /
               static_cast<double>(uint64_t{1} << fracBits);
    }
    constexpr explicit operator double() const { return toDouble(); }

    static constexpr ApFixed
    lowest()
    {
        return fromRaw(int64_t{-1} << (W - 1));
    }
    static constexpr ApFixed
    highest()
    {
        return fromRaw(static_cast<int64_t>(bitMask(W - 1)));
    }

    /** Smallest positive increment (1 ulp). */
    static constexpr ApFixed epsilon() { return fromRaw(1); }

    friend constexpr ApFixed
    operator+(ApFixed a, ApFixed b)
    {
        return fromRaw(a._raw + b._raw);
    }
    friend constexpr ApFixed
    operator-(ApFixed a, ApFixed b)
    {
        return fromRaw(a._raw - b._raw);
    }
    friend constexpr ApFixed operator-(ApFixed a) { return fromRaw(-a._raw); }

    /**
     * Fixed-point multiply: the 2F-fractional-bit product is truncated
     * back to F fractional bits (AP_TRN) and wrapped to W bits (AP_WRAP).
     */
    friend constexpr ApFixed
    operator*(ApFixed a, ApFixed b)
    {
        const int64_t prod = a._raw * b._raw;
        return fromRaw(prod >> fracBits);
    }

    ApFixed &operator+=(ApFixed o) { return *this = *this + o; }
    ApFixed &operator-=(ApFixed o) { return *this = *this - o; }
    ApFixed &operator*=(ApFixed o) { return *this = *this * o; }

    friend constexpr bool
    operator==(ApFixed a, ApFixed b)
    {
        return a._raw == b._raw;
    }
    friend constexpr bool
    operator!=(ApFixed a, ApFixed b)
    {
        return a._raw != b._raw;
    }
    friend constexpr bool
    operator<(ApFixed a, ApFixed b)
    {
        return a._raw < b._raw;
    }
    friend constexpr bool
    operator<=(ApFixed a, ApFixed b)
    {
        return a._raw <= b._raw;
    }
    friend constexpr bool
    operator>(ApFixed a, ApFixed b)
    {
        return a._raw > b._raw;
    }
    friend constexpr bool
    operator>=(ApFixed a, ApFixed b)
    {
        return a._raw >= b._raw;
    }

  private:
    /** Wrap a raw value into W bits (two's complement). */
    static constexpr int64_t
    normalize(int64_t raw)
    {
        return signExtend(static_cast<uint64_t>(raw), W);
    }

    int64_t _raw = 0;
};

/** Absolute value (wraps at lowest(), like hardware). */
template <int W, int I>
constexpr ApFixed<W, I>
abs(ApFixed<W, I> v)
{
    return v < ApFixed<W, I>(0) ? -v : v;
}

} // namespace dphls::hls

#endif // DPHLS_HLS_AP_FIXED_HH
