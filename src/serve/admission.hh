/**
 * @file
 * Deadline-aware admission control for the dphls_serve daemon.
 *
 * Policy half of the mechanism/policy split with
 * StreamPipeline::estimateCompletionSeconds(): the pipeline reports the
 * modeled completion time of a batch against its live backlog, and this
 * policy decides whether a request with a deadline should be admitted
 * at all. A request whose estimate already exceeds its budget is
 * rejected at submit (protocol RejectReason::DeadlineUnmeetable) —
 * accounted separately from deadline *misses*, which are requests that
 * were admitted and then completed late. Rejecting up front keeps
 * doomed work out of the dispatch queues, so it cannot delay requests
 * whose deadlines are still meetable.
 */

#ifndef DPHLS_SERVE_ADMISSION_HH
#define DPHLS_SERVE_ADMISSION_HH

namespace dphls::serve {

/** Admission-control knobs (daemon flags map straight onto these). */
struct AdmissionPolicy
{
    /** Master switch; off admits everything with a deadline. */
    bool enabled = true;
    /**
     * Estimate tolerance: admit while estimate <= slack * budget.
     * 1.0 trusts the cost model exactly; values above 1 admit
     * optimistically (the model over-estimates under contention because
     * the backlog signal counts queued work it may share capacity
     * with), values below 1 reserve headroom.
     */
    double slack = 1.0;
};

/**
 * True when a request estimated at @p estimate_seconds should be
 * admitted against a deadline budget of @p budget_seconds (seconds from
 * now; <= 0 means the request carries no deadline and is always
 * admitted — quota and dispatchability are checked elsewhere).
 */
inline bool
admits(const AdmissionPolicy &policy, double estimate_seconds,
       double budget_seconds)
{
    if (!policy.enabled || budget_seconds <= 0)
        return true;
    return estimate_seconds <= policy.slack * budget_seconds;
}

} // namespace dphls::serve

#endif // DPHLS_SERVE_ADMISSION_HH
