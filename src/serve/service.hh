/**
 * @file
 * Transport-independent request handling of the dphls_serve daemon.
 *
 * AlignService owns one StreamPipeline and turns decoded protocol
 * frames into pipeline operations: Align requests pass quota, then
 * deadline admission (serve/admission.hh over
 * StreamPipeline::reserveCompletion — the reservation books the
 * request's routed work into the backlog atomically with the estimate,
 * so concurrent sessions cannot double-book the same free slot; the
 * booking commits on submit and releases on reject), then submit with
 * the traffic class mapped onto a ticket priority; responses are
 * produced by the ticket's completion callback through a
 * caller-supplied sink, so they naturally arrive in completion order,
 * not submission order.
 *
 * The service is transport-agnostic on purpose: tools/dphls_serve.cc
 * drives it from Unix-socket session threads, tests/test_serve.cc
 * drives it directly with in-memory frames and a vector-of-frames sink
 * — admission, quota, accounting and encode/decode are all covered
 * without a socket in the loop.
 *
 * Thread-safety: handleFrame() may be called concurrently from any
 * number of session threads. The sink passed with each frame must be
 * callable from a worker thread (completion callbacks run there) and
 * from the calling thread itself (rejects and empty batches respond
 * synchronously), and must serialize its own writes.
 */

#ifndef DPHLS_SERVE_SERVICE_HH
#define DPHLS_SERVE_SERVICE_HH

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "host/check.hh"
#include "host/stream_pipeline.hh"
#include "serve/admission.hh"
#include "systolic/isa_tier.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"

namespace dphls::serve {

/** Service-level knobs on top of the pipeline's BatchConfig. */
struct ServiceConfig
{
    AdmissionPolicy admission{};
    /** Per-tenant in-flight job cap; 0 disables quotas. */
    uint64_t maxInFlightJobsPerTenant = 0;
    /** Ticket priority of TrafficClass::Interactive (bulk is 0). */
    int interactivePriority = 10;
    /**
     * Ticket priority of TrafficClass::Realtime (streaming basecaller
     * chunks, mapper extensions with deadlines): above Interactive so
     * per-chunk latency holds under an interactive burst.
     */
    int realtimePriority = 20;
    /** Jobs per Align request above which the request is malformed. */
    uint32_t maxJobsPerRequest = 1u << 16;
    /**
     * Extra accepted kernel name in Hello checks (the CLI spelling,
     * e.g. "global-affine", vs K::name's display spelling).
     */
    std::string kernelAlias;
};

/**
 * Protocol front-end over a StreamPipeline running kernel @p K
 * (sequence kernels only: K::CharT must be a single-code character —
 * DnaChar or AminoChar).
 */
template <core::KernelSpec K>
class AlignService
{
  public:
    using Pipeline = host::StreamPipeline<K>;
    using Ticket = typename Pipeline::Ticket;
    using CharT = typename K::CharT;
    using Job = typename Pipeline::Job;

    /** Response writer: (type, echoed request id, payload). */
    using Sink =
        std::function<void(MsgType, uint64_t, std::vector<uint8_t>)>;

    AlignService(host::BatchConfig pipeline_cfg, ServiceConfig cfg = {})
        : _cfg(cfg), _pipeline(pipeline_cfg),
          _quotas(cfg.maxInFlightJobsPerTenant)
    {
        _epoch.channels.assign(
            static_cast<size_t>(_pipeline.config().nk),
            host::ChannelStats{});
    }

    Pipeline &pipeline() { return _pipeline; }
    const ServiceConfig &config() const { return _cfg; }

    /** True once a Shutdown frame has been accepted. */
    bool
    draining() const
    {
        return _draining.load(std::memory_order_acquire);
    }

    /**
     * Handle one decoded frame; every response (including errors) goes
     * through @p sink with the frame's request id echoed.
     */
    void
    handleFrame(const Frame &frame, Sink sink)
    {
        reapCompleted();
        switch (frame.type()) {
          case MsgType::Hello:
            handleHello(frame, sink);
            return;
          case MsgType::Align:
            handleAlign(frame, std::move(sink));
            return;
          case MsgType::Stats:
            sink(MsgType::StatsOk, frame.requestId(),
                 encodeStats(snapshot()));
            return;
          case MsgType::Shutdown:
            _draining.store(true, std::memory_order_release);
            _pipeline.drain();
            reapCompleted();
            sink(MsgType::ShutdownOk, frame.requestId(), {});
            return;
          default:
            countMalformed();
            sink(MsgType::Error, frame.requestId(),
                 encodeReject({RejectReason::Malformed,
                               "unexpected message type"}));
            return;
        }
    }

    /** Current accounting snapshot (what StatsOk carries). */
    ServeStats
    snapshot()
    {
        reapCompleted();
        std::lock_guard lk(_statsMutex);
        host::BatchStats epoch = _epoch;
        host::finalizeBatchStats(epoch, _pipeline.config().fmaxMhz,
                                 _pipeline.config().cpuEquivalentMhz);
        ServeStats s;
        s.acceptedRequests = _acceptedRequests;
        s.rejectedDeadline = _rejectedDeadline;
        s.rejectedQuota = _rejectedQuota;
        s.rejectedUndispatchable = _rejectedUndispatchable;
        s.rejectedMalformed = _rejectedMalformed;
        s.completedJobs = _completedJobs;
        s.cancelledJobs = _cancelledJobs;
        s.deadlineMissJobs = _deadlineMissJobs;
        s.totalCycles = epoch.totalCycles;
        s.makespanCycles = epoch.makespanCycles;
        s.alignsPerSec = epoch.alignsPerSec;
        s.isaTier = sim::isaTierName(_pipeline.activeIsaTier());
        for (const auto &b : epoch.backends) {
            WireBackendStats wb;
            wb.name = b.name;
            wb.clockMhz = b.clockMhz;
            wb.busyCycles = b.busyCycles;
            wb.totalCycles = b.totalCycles;
            wb.alignments = b.alignments;
            wb.cancelled = b.cancelled;
            wb.deadlineMisses = b.deadlineMisses;
            // Preemptions are slot-yield events, not jobs: they ride
            // along per backend but stay out of the closure sums.
            wb.preemptions = b.preemptions;
            wb.seconds = b.seconds;
            s.backends.push_back(std::move(wb));
        }
        // Accounting closure, end to end: the per-backend sections must
        // sum to the epoch totals (the torture tests' invariant), and
        // the epoch totals must match the job counters this service
        // kept independently from ticket callbacks. Rejected requests
        // appear in neither — rejection happens before submit.
        uint64_t sec_aligns = 0, sec_cancelled = 0, sec_misses = 0,
                 sec_cycles = 0;
        for (const auto &b : s.backends) {
            sec_aligns += static_cast<uint64_t>(b.alignments);
            sec_cancelled += static_cast<uint64_t>(b.cancelled);
            sec_misses += static_cast<uint64_t>(b.deadlineMisses);
            sec_cycles += b.totalCycles;
        }
        s.accountingClosed =
            sec_aligns == static_cast<uint64_t>(epoch.alignments) &&
            sec_cancelled == static_cast<uint64_t>(epoch.cancelled) &&
            sec_misses ==
                static_cast<uint64_t>(epoch.deadlineMisses) &&
            sec_cycles == epoch.totalCycles &&
            sec_aligns == _completedJobs &&
            sec_cancelled == _cancelledJobs &&
            sec_misses == _deadlineMissJobs;
        DPHLS_DCHECK(s.accountingClosed,
                     "serve accounting not closed: sections (",
                     sec_aligns, " aligned, ", sec_cancelled,
                     " cancelled, ", sec_misses, " missed, ", sec_cycles,
                     " cycles) vs epoch (", epoch.alignments, ", ",
                     epoch.cancelled, ", ", epoch.deadlineMisses, ", ",
                     epoch.totalCycles, ") vs counters (",
                     _completedJobs, ", ", _cancelledJobs, ", ",
                     _deadlineMissJobs, ")");
        return s;
    }

    /** In-flight jobs of @p tenant (test hook). */
    uint64_t inFlight(const std::string &tenant) const
    {
        return _quotas.inFlight(tenant);
    }

  private:
    /** Map a wire traffic class onto its configured ticket priority. */
    int
    priorityOf(TrafficClass cls) const
    {
        switch (cls) {
          case TrafficClass::Realtime:
            return _cfg.realtimePriority;
          case TrafficClass::Interactive:
            return _cfg.interactivePriority;
          case TrafficClass::Bulk:
            break;
        }
        return 0;
    }

    void
    handleHello(const Frame &frame, const Sink &sink)
    {
        std::string wanted;
        try {
            wanted = decodeHello(frame);
        } catch (const ProtocolError &e) {
            countMalformed();
            sink(MsgType::Error, frame.requestId(),
                 encodeReject({RejectReason::Malformed, e.what()}));
            return;
        }
        if (!wanted.empty() && wanted != K::name &&
            wanted != _cfg.kernelAlias) {
            sink(MsgType::Error, frame.requestId(),
                 encodeReject({RejectReason::Malformed,
                               std::string("kernel mismatch: serving ") +
                                   K::name}));
            return;
        }
        ServerInfo info;
        info.kernel = K::name;
        info.maxQueryLength = static_cast<uint32_t>(
            _pipeline.config().maxQueryLength);
        info.maxReferenceLength = static_cast<uint32_t>(
            _pipeline.config().maxReferenceLength);
        info.alphabetSymbols = CharT::numSymbols;
        sink(MsgType::HelloOk, frame.requestId(), encodeHelloOk(info));
    }

    void
    handleAlign(const Frame &frame, Sink sink)
    {
        const uint64_t rid = frame.requestId();
        auto reject = [&](RejectReason reason, std::string msg) {
            sink(MsgType::Reject, rid,
                 encodeReject({reason, std::move(msg)}));
        };

        if (draining()) {
            reject(RejectReason::ShuttingDown, "daemon is draining");
            return;
        }

        AlignRequest req;
        try {
            req = decodeAlignRequest(frame);
        } catch (const ProtocolError &e) {
            countMalformed();
            reject(RejectReason::Malformed, e.what());
            return;
        }
        if (req.jobs.size() > _cfg.maxJobsPerRequest) {
            countMalformed();
            reject(RejectReason::Malformed, "too many jobs in request");
            return;
        }

        std::vector<Job> jobs;
        jobs.reserve(req.jobs.size());
        for (const WireJob &wj : req.jobs) {
            Job job;
            if (!decodeSequence(wj.query, job.query) ||
                !decodeSequence(wj.reference, job.reference)) {
                countMalformed();
                reject(RejectReason::Malformed,
                       "sequence code out of alphabet range");
                return;
            }
            jobs.push_back(std::move(job));
        }

        const uint64_t njobs = jobs.size();
        if (!_quotas.tryAcquire(req.tenant, njobs)) {
            {
                std::lock_guard lk(_statsMutex);
                _rejectedQuota++;
            }
            reject(RejectReason::QuotaExceeded,
                   "tenant over in-flight job quota");
            return;
        }

        // Reserve-on-estimate: the reservation holds the request's
        // routed work in the backlog signal until it either commits
        // into the submitted ticket or releases on a reject below —
        // concurrent sessions therefore see each other's admitted-but-
        // not-yet-submitted work and cannot double-book a free slot.
        const double budget =
            static_cast<double>(req.deadlineMicros) * 1e-6;
        host::AdmissionReservation reservation;
        if (req.deadlineMicros > 0 && _cfg.admission.enabled) {
            try {
                reservation = _pipeline.reserveCompletion(jobs);
            } catch (const std::invalid_argument &e) {
                _quotas.release(req.tenant, njobs);
                {
                    std::lock_guard lk(_statsMutex);
                    _rejectedUndispatchable++;
                }
                reject(RejectReason::Undispatchable, e.what());
                return;
            }
            if (!admits(_cfg.admission, reservation.estimateSeconds(),
                        budget)) {
                const double estimate = reservation.estimateSeconds();
                reservation.release();
                _quotas.release(req.tenant, njobs);
                {
                    std::lock_guard lk(_statsMutex);
                    _rejectedDeadline++;
                }
                reject(RejectReason::DeadlineUnmeetable,
                       "estimated completion " +
                           std::to_string(estimate) +
                           " s exceeds deadline budget " +
                           std::to_string(budget) + " s");
                return;
            }
        }

        host::TicketOptions topt;
        if (req.deadlineMicros > 0) {
            topt = host::TicketOptions::afterMs(
                priorityOf(req.trafficClass),
                static_cast<double>(req.deadlineMicros) * 1e-3,
                req.tenant);
        } else {
            topt.priority = priorityOf(req.trafficClass);
            topt.tag = req.tenant;
        }

        const std::string tenant = req.tenant;
        Ticket ticket;
        try {
            // sink is captured by copy: the reject path below must
            // still be able to answer when submit throws.
            // Commit-on-submit: the enqueue replaces the reservation's
            // booking with the ticket's live entries (an inactive
            // reservation — no-deadline path — commits nothing).
            ticket = _pipeline.submit(
                std::move(jobs), std::move(topt),
                [this, sink, rid, tenant,
                 njobs](host::BatchTicket<K> &t) {
                    completeTicket(t, sink, rid, tenant, njobs);
                },
                std::move(reservation));
        } catch (const std::invalid_argument &e) {
            // Undispatchable shape surfaced by submit-time routing
            // (no-deadline path, where admission did not pre-screen):
            // translated into a protocol-level Reject, never a crash.
            _quotas.release(tenant, njobs);
            {
                std::lock_guard lk(_statsMutex);
                _rejectedUndispatchable++;
            }
            reject(RejectReason::Undispatchable, e.what());
            return;
        }
        {
            std::lock_guard lk(_statsMutex);
            _acceptedRequests++;
        }
        std::lock_guard lk(_ticketMutex);
        _live.push_back(std::move(ticket));
    }

    /** Completion callback: account, release quota, answer. */
    void
    completeTicket(host::BatchTicket<K> &t, const Sink &sink,
                   uint64_t rid, const std::string &tenant,
                   uint64_t njobs)
    {
        AlignResponse res;
        res.deadlineMissed = t.stats().deadlineMisses > 0;
        res.totalCycles = t.stats().totalCycles;
        const auto &results = t.results();
        const auto &cycles = t.cycles();
        const auto &completed = t.completed();
        res.results.reserve(results.size());
        for (size_t i = 0; i < results.size(); i++) {
            WireJobResult jr;
            jr.completed = completed[i] != 0;
            jr.score = results[i].scoreAsDouble();
            jr.cycles = cycles[i];
            jr.runs = encodeRuns(results[i].ops);
            res.results.push_back(std::move(jr));
        }
        DPHLS_DCHECK(static_cast<uint64_t>(t.stats().alignments) +
                             static_cast<uint64_t>(t.stats().cancelled) ==
                         njobs,
                     "ticket accounting not closed at completion: ",
                     t.stats().alignments, " aligned + ",
                     t.stats().cancelled, " cancelled != ", njobs,
                     " jobs");
        {
            std::lock_guard lk(_statsMutex);
            host::accumulateBatchStats(_epoch, t.stats());
            _completedJobs +=
                static_cast<uint64_t>(t.stats().alignments);
            _cancelledJobs +=
                static_cast<uint64_t>(t.stats().cancelled);
            _deadlineMissJobs +=
                static_cast<uint64_t>(t.stats().deadlineMisses);
        }
        _quotas.release(tenant, njobs);
        sink(MsgType::AlignOk, rid, encodeAlignResponse(res));
    }

    /**
     * Retire completed tickets from the pipeline's outstanding set.
     * Completion callbacks cannot collect their own ticket (wait()
     * would deadlock before _done is set), so sessions sweep here on
     * their next frame instead; memory is bounded by the quotas.
     */
    void
    reapCompleted()
    {
        std::vector<Ticket> done;
        {
            std::lock_guard lk(_ticketMutex);
            for (auto it = _live.begin(); it != _live.end();) {
                if ((*it)->done()) {
                    done.push_back(std::move(*it));
                    it = _live.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (const Ticket &t : done)
            _pipeline.collect(t);
    }

    /** Map wire code bytes onto the kernel's character type. */
    static bool
    decodeSequence(const std::vector<uint8_t> &codes,
                   seq::Sequence<CharT> &out)
    {
        out.chars.reserve(codes.size());
        for (const uint8_t code : codes) {
            if (code >= CharT::numSymbols)
                return false;
            out.chars.push_back(CharT{code});
        }
        return true;
    }

    void
    countMalformed()
    {
        std::lock_guard lk(_statsMutex);
        _rejectedMalformed++;
    }

    ServiceConfig _cfg;
    Pipeline _pipeline;
    TenantQuotas _quotas;
    std::atomic<bool> _draining{false};

    host::DebugMutex _ticketMutex{host::lockrank::kServiceTickets,
                                  "service-tickets"};
    std::vector<Ticket> _live; //!< submitted, not yet reaped

    /** Guards _epoch and every counter below. */
    host::DebugMutex _statsMutex{host::lockrank::kServiceStats,
                                 "service-stats"};
    host::BatchStats _epoch;
    uint64_t _acceptedRequests = 0;
    uint64_t _rejectedDeadline = 0;
    uint64_t _rejectedQuota = 0;
    uint64_t _rejectedUndispatchable = 0;
    uint64_t _rejectedMalformed = 0;
    uint64_t _completedJobs = 0;
    uint64_t _cancelledJobs = 0;
    uint64_t _deadlineMissJobs = 0;
};

} // namespace dphls::serve

#endif // DPHLS_SERVE_SERVICE_HH
