/**
 * @file
 * POSIX stream-socket transport for the dphls_serve protocol: RAII
 * descriptors, a Unix-domain listener, and framed send/receive over
 * any connected stream fd (Unix socket or socketpair — the tests drive
 * the framing over a socketpair without a filesystem path).
 *
 * Error handling is return-value based (the daemon treats a failed
 * read as a disconnect, not an exception); readFrame() validates the
 * magic, version and payload cap before allocating, so a garbage
 * client cannot make the daemon allocate unbounded memory.
 */

#ifndef DPHLS_SERVE_SOCKET_IO_HH
#define DPHLS_SERVE_SOCKET_IO_HH

#include <mutex>
#include <string>

#include "serve/protocol.hh"

namespace dphls::serve {

/** RAII file descriptor (move-only). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&o) noexcept : _fd(o.release()) {}
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            _fd = o.release();
        }
        return *this;
    }

    int get() const { return _fd; }
    bool valid() const { return _fd >= 0; }

    int
    release()
    {
        const int fd = _fd;
        _fd = -1;
        return fd;
    }

    void reset();

  private:
    int _fd = -1;
};

/** Write exactly @p len bytes; false on error/disconnect. */
bool sendAll(int fd, const void *data, size_t len);

/** Read exactly @p len bytes; false on error/EOF. */
bool recvAll(int fd, void *data, size_t len);

/** Frame and send one message; false on error/disconnect. */
bool writeFrame(int fd, MsgType type, uint64_t request_id,
                const std::vector<uint8_t> &payload);

/**
 * Parse and validate one kFrameHeaderBytes-byte header: layout decode
 * plus the magic/version/payload-cap checks. Pure function (no I/O),
 * so the fuzz harness can drive it on raw bytes directly; readFrame()
 * is this over recvAll().
 */
bool parseFrameHeader(const uint8_t *hdr, FrameHeader &out,
                      std::string *err = nullptr);

/**
 * Read one frame. Returns false on clean EOF or transport error; sets
 * @p err (when given) and returns false on a malformed header (bad
 * magic/version or payload over kMaxPayloadBytes).
 */
bool readFrame(int fd, Frame &out, std::string *err = nullptr);

/**
 * Listening Unix-domain stream socket. The path is unlinked on bind
 * (stale socket from a previous run) and again on destruction.
 */
class UnixListener
{
  public:
    /** Bind and listen; throws std::runtime_error on failure. */
    explicit UnixListener(const std::string &path, int backlog = 16);
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Accept one connection; invalid Fd on error (e.g. closed). */
    Fd accept();

    /**
     * Close the listening socket (unblocks a pending accept()).
     * Idempotent and safe to call from any thread.
     */
    void close();

    const std::string &path() const { return _path; }

    /** Raw listening descriptor; for signal handlers. */
    int fd() const { return _fd.get(); }

  private:
    std::string _path;
    std::mutex _closeMutex;
    Fd _fd;
};

/** Connect to a Unix-domain socket; invalid Fd on failure. */
Fd unixConnect(const std::string &path);

} // namespace dphls::serve

#endif // DPHLS_SERVE_SOCKET_IO_HH
