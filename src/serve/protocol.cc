#include "serve/protocol.hh"

#include <bit>
#include <cstring>

namespace dphls::serve {

namespace {

/** Decoding limits (beyond the frame-level payload cap). */
constexpr uint32_t kMaxJobsPerRequest = 1u << 20;
constexpr uint32_t kMaxSeqLen = 1u << 24;
constexpr uint32_t kMaxRunsPerJob = 1u << 24;
constexpr uint32_t kMaxBackends = 256;
/**
 * Cap on one job's *expanded* CIGAR length. A run word carries a
 * 30-bit count, so without this a single 4-byte word could demand a
 * ~1 GiB expansion (fuzz-found allocation amplification); real paths
 * are bounded by query+reference length, i.e. 2 * kMaxSeqLen.
 */
constexpr uint64_t kMaxDecodedOps = 2ull * kMaxSeqLen;

} // namespace

void
WireWriter::u16(uint16_t v)
{
    _bytes.push_back(static_cast<uint8_t>(v));
    _bytes.push_back(static_cast<uint8_t>(v >> 8));
}

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; i++)
        _bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; i++)
        _bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
WireWriter::blob(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    _bytes.insert(_bytes.end(), p, p + len);
}

void
WireWriter::shortString(const std::string &s)
{
    if (s.size() > 255)
        throw ProtocolError("short string over 255 bytes");
    u8(static_cast<uint8_t>(s.size()));
    blob(s.data(), s.size());
}

void
WireReader::need(size_t n) const
{
    if (_len - _pos < n)
        throw ProtocolError("payload truncated");
}

uint8_t
WireReader::u8()
{
    need(1);
    return _data[_pos++];
}

uint16_t
WireReader::u16()
{
    need(2);
    uint16_t v = static_cast<uint16_t>(_data[_pos]) |
                 static_cast<uint16_t>(_data[_pos + 1]) << 8;
    _pos += 2;
    return v;
}

uint32_t
WireReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(_data[_pos + static_cast<size_t>(i)])
             << (8 * i);
    _pos += 4;
    return v;
}

uint64_t
WireReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(_data[_pos + static_cast<size_t>(i)])
             << (8 * i);
    _pos += 8;
    return v;
}

double
WireReader::f64()
{
    return std::bit_cast<double>(u64());
}

void
WireReader::blob(void *out, size_t len)
{
    need(len);
    std::memcpy(out, _data + _pos, len);
    _pos += len;
}

std::string
WireReader::shortString()
{
    const size_t len = u8();
    need(len);
    std::string s(reinterpret_cast<const char *>(_data + _pos), len);
    _pos += len;
    return s;
}

std::vector<uint32_t>
encodeRuns(const std::vector<core::AlnOp> &ops)
{
    std::vector<uint32_t> runs;
    size_t i = 0;
    while (i < ops.size()) {
        size_t j = i + 1;
        while (j < ops.size() && ops[j] == ops[i])
            j++;
        // 30-bit run counts: longer runs split (never occurs for real
        // paths, whose lengths are bounded by the sequence maxima).
        size_t count = j - i;
        while (count > 0) {
            const uint32_t piece = static_cast<uint32_t>(
                std::min<size_t>(count, (1u << 30) - 1));
            runs.push_back(piece << 2 |
                           static_cast<uint32_t>(ops[i]));
            count -= piece;
        }
        i = j;
    }
    return runs;
}

std::vector<core::AlnOp>
decodeRuns(const std::vector<uint32_t> &runs)
{
    std::vector<core::AlnOp> ops;
    uint64_t total = 0;
    for (const uint32_t run : runs) {
        const uint32_t count = run >> 2;
        const uint32_t op = run & 3;
        if (op > 2)
            throw ProtocolError("bad CIGAR op code");
        total += count;
        if (total > kMaxDecodedOps)
            throw ProtocolError("decoded CIGAR over length limit");
        ops.insert(ops.end(), count, static_cast<core::AlnOp>(op));
    }
    return ops;
}

std::vector<uint8_t>
encodeHello(const std::string &kernel)
{
    WireWriter w;
    w.shortString(kernel);
    return std::move(w.bytes());
}

std::string
decodeHello(const Frame &frame)
{
    WireReader r(frame.payload);
    std::string kernel = r.shortString();
    if (!r.done())
        throw ProtocolError("trailing bytes in Hello");
    return kernel;
}

std::vector<uint8_t>
encodeHelloOk(const ServerInfo &info)
{
    WireWriter w;
    w.shortString(info.kernel);
    w.u32(info.maxQueryLength);
    w.u32(info.maxReferenceLength);
    w.u32(info.alphabetSymbols);
    return std::move(w.bytes());
}

ServerInfo
decodeHelloOk(const Frame &frame)
{
    WireReader r(frame.payload);
    ServerInfo info;
    info.kernel = r.shortString();
    info.maxQueryLength = r.u32();
    info.maxReferenceLength = r.u32();
    info.alphabetSymbols = r.u32();
    if (!r.done())
        throw ProtocolError("trailing bytes in HelloOk");
    return info;
}

std::vector<uint8_t>
encodeAlignRequest(const AlignRequest &req)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(req.trafficClass));
    w.u64(req.deadlineMicros);
    w.shortString(req.tenant);
    w.u32(static_cast<uint32_t>(req.jobs.size()));
    for (const WireJob &job : req.jobs) {
        w.u32(static_cast<uint32_t>(job.query.size()));
        w.u32(static_cast<uint32_t>(job.reference.size()));
        w.blob(job.query.data(), job.query.size());
        w.blob(job.reference.data(), job.reference.size());
    }
    return std::move(w.bytes());
}

AlignRequest
decodeAlignRequest(const Frame &frame)
{
    WireReader r(frame.payload);
    AlignRequest req;
    const uint8_t cls = r.u8();
    if (cls > static_cast<uint8_t>(TrafficClass::Realtime))
        throw ProtocolError("bad traffic class");
    req.trafficClass = static_cast<TrafficClass>(cls);
    req.deadlineMicros = r.u64();
    req.tenant = r.shortString();
    const uint32_t count = r.u32();
    if (count > kMaxJobsPerRequest)
        throw ProtocolError("job count over limit");
    // Every job carries at least its two length words: a count the
    // remaining payload cannot possibly hold is malformed, and catching
    // it before reserve() keeps allocation off attacker-chosen counts
    // (fuzz-found: a 13-byte frame could demand a 48 MB reserve).
    if (static_cast<uint64_t>(count) * 8 > r.remaining())
        throw ProtocolError("job count exceeds payload");
    req.jobs.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        const uint32_t qlen = r.u32();
        const uint32_t rlen = r.u32();
        if (qlen > kMaxSeqLen || rlen > kMaxSeqLen)
            throw ProtocolError("sequence length over limit");
        // Validate before resize(): the declared bytes must actually
        // be present, so truncated frames fail without allocating.
        if (static_cast<uint64_t>(qlen) + rlen > r.remaining())
            throw ProtocolError("sequence bytes exceed payload");
        WireJob job;
        job.query.resize(qlen);
        job.reference.resize(rlen);
        if (qlen)
            r.blob(job.query.data(), qlen);
        if (rlen)
            r.blob(job.reference.data(), rlen);
        req.jobs.push_back(std::move(job));
    }
    if (!r.done())
        throw ProtocolError("trailing bytes in Align");
    return req;
}

std::vector<uint8_t>
encodeAlignResponse(const AlignResponse &res)
{
    WireWriter w;
    w.u8(res.deadlineMissed ? 1 : 0);
    w.u64(res.totalCycles);
    w.u32(static_cast<uint32_t>(res.results.size()));
    for (const WireJobResult &jr : res.results) {
        w.u8(jr.completed ? 1 : 0);
        w.f64(jr.score);
        w.u64(jr.cycles);
        w.u32(static_cast<uint32_t>(jr.runs.size()));
        for (const uint32_t run : jr.runs)
            w.u32(run);
    }
    return std::move(w.bytes());
}

AlignResponse
decodeAlignResponse(const Frame &frame)
{
    WireReader r(frame.payload);
    AlignResponse res;
    res.deadlineMissed = r.u8() != 0;
    res.totalCycles = r.u64();
    const uint32_t count = r.u32();
    if (count > kMaxJobsPerRequest)
        throw ProtocolError("result count over limit");
    // Each result is at least 21 bytes (flag + score + cycles + run
    // count): reject impossible counts before reserving.
    if (static_cast<uint64_t>(count) * 21 > r.remaining())
        throw ProtocolError("result count exceeds payload");
    res.results.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        WireJobResult jr;
        jr.completed = r.u8() != 0;
        jr.score = r.f64();
        jr.cycles = r.u64();
        const uint32_t runs = r.u32();
        if (runs > kMaxRunsPerJob)
            throw ProtocolError("run count over limit");
        // Run words are 4 bytes each; a declared count the payload
        // cannot hold must not drive a 64 MB reserve().
        if (static_cast<uint64_t>(runs) * 4 > r.remaining())
            throw ProtocolError("run words exceed payload");
        jr.runs.reserve(runs);
        for (uint32_t k = 0; k < runs; k++)
            jr.runs.push_back(r.u32());
        res.results.push_back(std::move(jr));
    }
    if (!r.done())
        throw ProtocolError("trailing bytes in AlignOk");
    return res;
}

std::vector<uint8_t>
encodeReject(const RejectInfo &info)
{
    WireWriter w;
    w.u8(static_cast<uint8_t>(info.reason));
    w.u32(static_cast<uint32_t>(info.message.size()));
    w.blob(info.message.data(), info.message.size());
    return std::move(w.bytes());
}

RejectInfo
decodeReject(const Frame &frame)
{
    WireReader r(frame.payload);
    RejectInfo info;
    const uint8_t reason = r.u8();
    if (reason < 1 ||
        reason > static_cast<uint8_t>(RejectReason::ShuttingDown))
        throw ProtocolError("bad reject reason");
    info.reason = static_cast<RejectReason>(reason);
    const uint32_t len = r.u32();
    if (len != r.remaining())
        throw ProtocolError("bad reject message length");
    info.message.resize(len);
    if (len)
        r.blob(info.message.data(), len);
    return info;
}

std::vector<uint8_t>
encodeStats(const ServeStats &stats)
{
    WireWriter w;
    w.u64(stats.acceptedRequests);
    w.u64(stats.rejectedDeadline);
    w.u64(stats.rejectedQuota);
    w.u64(stats.rejectedUndispatchable);
    w.u64(stats.rejectedMalformed);
    w.u64(stats.completedJobs);
    w.u64(stats.cancelledJobs);
    w.u64(stats.deadlineMissJobs);
    w.u64(stats.totalCycles);
    w.u64(stats.makespanCycles);
    w.f64(stats.alignsPerSec);
    w.shortString(stats.isaTier);
    w.u8(stats.accountingClosed ? 1 : 0);
    w.u32(static_cast<uint32_t>(stats.backends.size()));
    for (const WireBackendStats &b : stats.backends) {
        w.shortString(b.name);
        w.f64(b.clockMhz);
        w.u64(b.busyCycles);
        w.u64(b.totalCycles);
        w.u32(static_cast<uint32_t>(b.alignments));
        w.u32(static_cast<uint32_t>(b.cancelled));
        w.u32(static_cast<uint32_t>(b.deadlineMisses));
        w.u32(static_cast<uint32_t>(b.preemptions));
        w.f64(b.seconds);
    }
    return std::move(w.bytes());
}

ServeStats
decodeStats(const Frame &frame)
{
    WireReader r(frame.payload);
    ServeStats stats;
    stats.acceptedRequests = r.u64();
    stats.rejectedDeadline = r.u64();
    stats.rejectedQuota = r.u64();
    stats.rejectedUndispatchable = r.u64();
    stats.rejectedMalformed = r.u64();
    stats.completedJobs = r.u64();
    stats.cancelledJobs = r.u64();
    stats.deadlineMissJobs = r.u64();
    stats.totalCycles = r.u64();
    stats.makespanCycles = r.u64();
    stats.alignsPerSec = r.f64();
    stats.isaTier = r.shortString();
    stats.accountingClosed = r.u8() != 0;
    const uint32_t count = r.u32();
    if (count > kMaxBackends)
        throw ProtocolError("backend count over limit");
    stats.backends.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        WireBackendStats b;
        b.name = r.shortString();
        b.clockMhz = r.f64();
        b.busyCycles = r.u64();
        b.totalCycles = r.u64();
        b.alignments = static_cast<int32_t>(r.u32());
        b.cancelled = static_cast<int32_t>(r.u32());
        b.deadlineMisses = static_cast<int32_t>(r.u32());
        b.preemptions = static_cast<int32_t>(r.u32());
        b.seconds = r.f64();
        stats.backends.push_back(std::move(b));
    }
    if (!r.done())
        throw ProtocolError("trailing bytes in StatsOk");
    return stats;
}

} // namespace dphls::serve
