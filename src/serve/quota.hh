/**
 * @file
 * Per-tenant in-flight job quotas for the dphls_serve daemon.
 *
 * The quota is counted in *jobs*, not requests, so one tenant cannot
 * monopolize the pipeline by batching: a 10k-pair bulk request and
 * 10k single-pair interactive requests weigh the same. Acquisition is
 * all-or-nothing — a request either fits under the cap or is rejected
 * whole (partial admission would complicate response framing for no
 * scheduling benefit).
 */

#ifndef DPHLS_SERVE_QUOTA_HH
#define DPHLS_SERVE_QUOTA_HH

#include <cstdint>
#include <mutex>

#include "host/check.hh"
#include <string>
#include <unordered_map>

namespace dphls::serve {

/** Thread-safe per-tenant in-flight job counter with a shared cap. */
class TenantQuotas
{
  public:
    /** @param max_in_flight_jobs per-tenant cap; 0 disables quotas. */
    explicit TenantQuotas(uint64_t max_in_flight_jobs)
        : _cap(max_in_flight_jobs)
    {}

    /**
     * Reserve @p jobs slots for @p tenant. Returns false (and reserves
     * nothing) when the tenant would exceed the cap.
     */
    bool
    tryAcquire(const std::string &tenant, uint64_t jobs)
    {
        if (_cap == 0)
            return true;
        std::lock_guard lk(_mtx);
        uint64_t &used = _inFlight[tenant];
        if (used + jobs > _cap)
            return false;
        used += jobs;
        return true;
    }

    /** Return @p jobs slots (ticket completed or cancelled). */
    void
    release(const std::string &tenant, uint64_t jobs)
    {
        if (_cap == 0)
            return;
        std::lock_guard lk(_mtx);
        auto it = _inFlight.find(tenant);
        if (it == _inFlight.end())
            return;
        it->second = it->second > jobs ? it->second - jobs : 0;
        if (it->second == 0)
            _inFlight.erase(it);
    }

    /** Current in-flight jobs for @p tenant (0 when unknown). */
    uint64_t
    inFlight(const std::string &tenant) const
    {
        std::lock_guard lk(_mtx);
        const auto it = _inFlight.find(tenant);
        return it == _inFlight.end() ? 0 : it->second;
    }

    uint64_t cap() const { return _cap; }

  private:
    const uint64_t _cap;
    mutable host::DebugMutex _mtx{host::lockrank::kTenantQuota,
                                  "tenant-quota"};
    std::unordered_map<std::string, uint64_t> _inFlight;
};

} // namespace dphls::serve

#endif // DPHLS_SERVE_QUOTA_HH
