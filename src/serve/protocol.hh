/**
 * @file
 * Compact binary request/response protocol of the `dphls_serve`
 * multi-tenant alignment daemon.
 *
 * Everything before this spoke CLI: the streaming executor terminated
 * at a one-shot tool. dphls_serve turns it into a long-lived service,
 * and this header is the wire contract between the daemon and its
 * clients (tools/dphls_loadgen.cc, tests/test_serve.cc):
 *
 *  - Framing: every message is a fixed 20-byte little-endian header
 *    (magic, version, type, flags, payload length, request id) followed
 *    by a type-specific payload. Request ids are chosen by the client
 *    and echoed on every response, so responses may arrive out of
 *    submission order (tickets complete independently).
 *  - Sequences travel as raw alphabet codes (one byte per character:
 *    DNA 0..3, protein 0..19) — no ASCII re-encoding on either side.
 *  - CIGARs leave the daemon as binary run-length records
 *    (count << 2 | op), retiring the zero-copy-writeback roadmap item:
 *    the host never materializes a CIGAR string on the serving path.
 *  - Scheduling is first-class: each Align request carries a traffic
 *    class (bulk/interactive, mapped onto ticket priorities), a
 *    relative deadline, and a tenant id for quota accounting. Requests
 *    the daemon will not run come back as an explicit Reject frame
 *    with a machine-readable reason (deadline unmeetable at admission,
 *    quota exceeded, undispatchable shape, malformed payload) instead
 *    of an error-path crash or a silently-missed deadline.
 *  - Stats surfaces the per-backend BatchStats sections plus the
 *    admission/quota counters, so a load generator can assert
 *    accounting closure end to end.
 *
 * Encoding helpers throw ProtocolError on malformed input; the framing
 * layer (socket_io.hh) enforces magic/version/length limits before any
 * payload decoding runs.
 */

#ifndef DPHLS_SERVE_PROTOCOL_HH
#define DPHLS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/alignment.hh"

namespace dphls::serve {

constexpr uint32_t kMagic = 0x4C485044; // "DPHL" little-endian
constexpr uint8_t kVersion = 1;
/** Upper bound on one frame's payload (malformed-length guard). */
constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/** Wire message types. */
enum class MsgType : uint8_t
{
    Hello = 1,      //!< client -> server: expected kernel name
    HelloOk = 2,    //!< server -> client: kernel + configured maxima
    Align = 3,      //!< client -> server: one batch of pairs
    AlignOk = 4,    //!< server -> client: per-job binary results
    Reject = 5,     //!< server -> client: request refused (reason)
    Stats = 6,      //!< client -> server: stats snapshot request
    StatsOk = 7,    //!< server -> client: per-backend sections
    Error = 8,      //!< server -> client: protocol-level error (text)
    Shutdown = 9,   //!< client -> server: drain and exit
    ShutdownOk = 10 //!< server -> client: drained, closing
};

/** Why the daemon refused an Align request. */
enum class RejectReason : uint8_t
{
    DeadlineUnmeetable = 1, //!< admission: estimate exceeds the budget
    QuotaExceeded = 2,      //!< tenant over its in-flight job quota
    Undispatchable = 3,     //!< no enabled backend can take a job
    Malformed = 4,          //!< payload failed validation
    ShuttingDown = 5        //!< daemon is draining
};

/** Traffic classes mapped onto ticket priorities by the daemon. */
enum class TrafficClass : uint8_t
{
    Bulk = 0,
    Interactive = 1,
    /**
     * Real-time streams (basecaller chunks, mapper extensions on the
     * interactive path): dispatched ahead of Interactive. Same wire
     * version — old servers reject the unknown class as malformed.
     */
    Realtime = 2
};

/** Malformed frame/payload; the session answers Error and drops it. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One frame header as laid out on the wire (20 bytes, little-endian). */
struct FrameHeader
{
    uint32_t magic = kMagic;
    uint8_t version = kVersion;
    uint8_t type = 0;
    uint16_t flags = 0;
    uint32_t payloadLen = 0;
    uint64_t requestId = 0;
};

constexpr size_t kFrameHeaderBytes = 20;

/** One decoded frame: header plus raw payload bytes. */
struct Frame
{
    FrameHeader header;
    std::vector<uint8_t> payload;

    MsgType type() const { return static_cast<MsgType>(header.type); }
    uint64_t requestId() const { return header.requestId; }
};

/** Little-endian append-only payload builder. */
class WireWriter
{
  public:
    std::vector<uint8_t> &bytes() { return _bytes; }
    const std::vector<uint8_t> &bytes() const { return _bytes; }

    void u8(uint8_t v) { _bytes.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    void blob(const void *data, size_t len);
    /** Length-prefixed (u8) short string; throws when over 255 bytes. */
    void shortString(const std::string &s);

  private:
    std::vector<uint8_t> _bytes;
};

/** Little-endian payload reader; throws ProtocolError on underrun. */
class WireReader
{
  public:
    WireReader(const uint8_t *data, size_t len)
        : _data(data), _len(len)
    {}
    explicit WireReader(const std::vector<uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {}

    size_t remaining() const { return _len - _pos; }
    bool done() const { return _pos == _len; }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    double f64();
    void blob(void *out, size_t len);
    std::string shortString();

  private:
    void need(size_t n) const;

    const uint8_t *_data;
    size_t _len;
    size_t _pos = 0;
};

/** One alignment job on the wire: raw alphabet codes, one byte each. */
struct WireJob
{
    std::vector<uint8_t> query;
    std::vector<uint8_t> reference;
};

/** Decoded Align request. */
struct AlignRequest
{
    TrafficClass trafficClass = TrafficClass::Bulk;
    /** Relative completion deadline in microseconds; 0 = none. */
    uint64_t deadlineMicros = 0;
    std::string tenant;
    std::vector<WireJob> jobs;
};

/** One job's slice of an AlignOk response. */
struct WireJobResult
{
    bool completed = true; //!< false when the shard was cancelled
    double score = 0;
    uint64_t cycles = 0;
    /** Run-length CIGAR records: count << 2 | op (binary writeback). */
    std::vector<uint32_t> runs;
};

/** Decoded AlignOk response. */
struct AlignResponse
{
    bool deadlineMissed = false; //!< any job completed past deadline
    uint64_t totalCycles = 0;
    std::vector<WireJobResult> results;
};

/** Decoded Reject / Error body. */
struct RejectInfo
{
    RejectReason reason = RejectReason::Malformed;
    std::string message;
};

/** Decoded HelloOk body. */
struct ServerInfo
{
    std::string kernel;
    uint32_t maxQueryLength = 0;
    uint32_t maxReferenceLength = 0;
    uint32_t alphabetSymbols = 0;
};

/** One backend's section of a Stats response. */
struct WireBackendStats
{
    std::string name;
    double clockMhz = 0;
    uint64_t busyCycles = 0;
    uint64_t totalCycles = 0;
    int32_t alignments = 0;
    int32_t cancelled = 0;
    int32_t deadlineMisses = 0;
    int32_t preemptions = 0;
    double seconds = 0;
};

/** Decoded Stats response: epoch totals + admission/quota counters. */
struct ServeStats
{
    uint64_t acceptedRequests = 0;
    uint64_t rejectedDeadline = 0; //!< admission rejects (not misses)
    uint64_t rejectedQuota = 0;
    uint64_t rejectedUndispatchable = 0;
    uint64_t rejectedMalformed = 0;
    uint64_t completedJobs = 0;
    uint64_t cancelledJobs = 0;
    uint64_t deadlineMissJobs = 0;
    uint64_t totalCycles = 0;
    uint64_t makespanCycles = 0;
    double alignsPerSec = 0;
    /** Active SIMD ISA tier of the serving pipeline (e.g. "avx2"). */
    std::string isaTier;
    /** Per-backend sections sum to the totals (checked server-side). */
    bool accountingClosed = true;
    std::vector<WireBackendStats> backends;

    uint64_t
    rejectedRequests() const
    {
        return rejectedDeadline + rejectedQuota +
               rejectedUndispatchable + rejectedMalformed;
    }
};

/** Run-length encode a traceback path for the wire (count<<2 | op). */
std::vector<uint32_t> encodeRuns(const std::vector<core::AlnOp> &ops);

/** Expand wire run-length records back into an op list. */
std::vector<core::AlnOp> decodeRuns(const std::vector<uint32_t> &runs);

std::vector<uint8_t> encodeHello(const std::string &kernel);
std::string decodeHello(const Frame &frame);

std::vector<uint8_t> encodeHelloOk(const ServerInfo &info);
ServerInfo decodeHelloOk(const Frame &frame);

std::vector<uint8_t> encodeAlignRequest(const AlignRequest &req);
AlignRequest decodeAlignRequest(const Frame &frame);

std::vector<uint8_t> encodeAlignResponse(const AlignResponse &res);
AlignResponse decodeAlignResponse(const Frame &frame);

std::vector<uint8_t> encodeReject(const RejectInfo &info);
RejectInfo decodeReject(const Frame &frame);

std::vector<uint8_t> encodeStats(const ServeStats &stats);
ServeStats decodeStats(const Frame &frame);

} // namespace dphls::serve

#endif // DPHLS_SERVE_PROTOCOL_HH
