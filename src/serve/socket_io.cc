#include "serve/socket_io.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dphls::serve {

void
Fd::reset()
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
}

bool
sendAll(int fd, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *data, size_t len)
{
    auto *p = static_cast<uint8_t *>(data);
    while (len > 0) {
        const ssize_t n = ::recv(fd, p, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

namespace {

void
putU16(uint8_t *out, uint16_t v)
{
    out[0] = static_cast<uint8_t>(v);
    out[1] = static_cast<uint8_t>(v >> 8);
}

void
putU32(uint8_t *out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
putU64(uint8_t *out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t
getU16(const uint8_t *in)
{
    return static_cast<uint16_t>(static_cast<uint16_t>(in[0]) |
                                 static_cast<uint16_t>(in[1]) << 8);
}

uint32_t
getU32(const uint8_t *in)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(in[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *in)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(in[i]) << (8 * i);
    return v;
}

} // namespace

bool
writeFrame(int fd, MsgType type, uint64_t request_id,
           const std::vector<uint8_t> &payload)
{
    if (payload.size() > kMaxPayloadBytes)
        return false;
    uint8_t hdr[kFrameHeaderBytes];
    putU32(hdr, kMagic);
    hdr[4] = kVersion;
    hdr[5] = static_cast<uint8_t>(type);
    putU16(hdr + 6, 0);
    putU32(hdr + 8, static_cast<uint32_t>(payload.size()));
    putU64(hdr + 12, request_id);
    if (!sendAll(fd, hdr, sizeof(hdr)))
        return false;
    return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

bool
parseFrameHeader(const uint8_t *hdr, FrameHeader &out, std::string *err)
{
    out.magic = getU32(hdr);
    out.version = hdr[4];
    out.type = hdr[5];
    out.flags = getU16(hdr + 6);
    out.payloadLen = getU32(hdr + 8);
    out.requestId = getU64(hdr + 12);
    if (out.magic != kMagic) {
        if (err)
            *err = "bad frame magic";
        return false;
    }
    if (out.version != kVersion) {
        if (err)
            *err = "unsupported protocol version";
        return false;
    }
    if (out.payloadLen > kMaxPayloadBytes) {
        if (err)
            *err = "payload length over limit";
        return false;
    }
    return true;
}

bool
readFrame(int fd, Frame &out, std::string *err)
{
    uint8_t hdr[kFrameHeaderBytes];
    if (!recvAll(fd, hdr, sizeof(hdr)))
        return false; // EOF or transport error: caller drops session
    if (!parseFrameHeader(hdr, out.header, err))
        return false;
    out.payload.resize(out.header.payloadLen);
    if (out.header.payloadLen &&
        !recvAll(fd, out.payload.data(), out.payload.size()))
        return false;
    return true;
}

UnixListener::UnixListener(const std::string &path, int backlog)
    : _path(path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("socket path too long: " + path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        throw std::runtime_error(std::string("socket(): ") +
                                 std::strerror(errno));
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        throw std::runtime_error("bind(" + path + "): " +
                                 std::strerror(errno));
    if (::listen(fd.get(), backlog) != 0)
        throw std::runtime_error("listen(" + path + "): " +
                                 std::strerror(errno));
    _fd = std::move(fd);
}

UnixListener::~UnixListener()
{
    close();
    ::unlink(_path.c_str());
}

Fd
UnixListener::accept()
{
    int lfd;
    {
        std::lock_guard<std::mutex> lk(_closeMutex);
        lfd = _fd.get();
    }
    if (lfd < 0)
        return Fd();
    while (true) {
        const int c = ::accept(lfd, nullptr, nullptr);
        if (c >= 0)
            return Fd(c);
        if (errno != EINTR)
            return Fd();
    }
}

void
UnixListener::close()
{
    std::lock_guard<std::mutex> lk(_closeMutex);
    // shutdown() unblocks any thread parked in accept(); the fd itself
    // is left open until destruction so a racing accept() never sees
    // its descriptor number recycled.
    if (_fd.valid())
        ::shutdown(_fd.get(), SHUT_RDWR);
}

Fd
unixConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return Fd();
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        return Fd();
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return Fd();
    return fd;
}

} // namespace dphls::serve
