#include "seq/fasta.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dphls::seq {

std::vector<FastaRecord>
readFasta(std::istream &in)
{
    std::vector<FastaRecord> records;
    FastaStream stream(in);
    FastaRecord rec;
    while (stream.next(rec))
        records.push_back(std::move(rec));
    return records;
}

std::vector<FastaRecord>
readFastaFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("FASTA: cannot open " + path);
    return readFasta(in);
}

FastaStream::FastaStream(const std::string &path)
    : _file(path), _in(&_file)
{
    if (!_file)
        throw std::runtime_error("FASTA: cannot open " + path);
}

FastaStream::FastaStream(std::istream &in) : _in(&in) {}

bool
FastaStream::next(FastaRecord &out)
{
    out = FastaRecord{};
    bool have_record = false;
    if (_havePending) {
        out.name = std::move(_pendingName);
        _havePending = false;
        have_record = true;
    }

    std::string line;
    while (std::getline(*_in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '>') {
            if (have_record) {
                // Next record's header: stash it and yield this one.
                _pendingName = line.substr(1);
                _havePending = true;
                return true;
            }
            out.name = line.substr(1);
            have_record = true;
        } else {
            if (!have_record) {
                throw std::runtime_error(
                    "FASTA: residue line before any '>' header");
            }
            out.residues += line;
        }
    }
    return have_record;
}

void
writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
           int line_width)
{
    for (const auto &rec : records) {
        out << '>' << rec.name << '\n';
        for (size_t i = 0; i < rec.residues.size();
             i += static_cast<size_t>(line_width)) {
            out << rec.residues.substr(i, static_cast<size_t>(line_width))
                << '\n';
        }
    }
}

std::vector<DnaSequence>
toDna(const std::vector<FastaRecord> &records)
{
    std::vector<DnaSequence> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        out.push_back(dnaFromString(rec.residues, rec.name));
    return out;
}

std::vector<ProteinSequence>
toProtein(const std::vector<FastaRecord> &records)
{
    std::vector<ProteinSequence> out;
    out.reserve(records.size());
    for (const auto &rec : records)
        out.push_back(proteinFromString(rec.residues, rec.name));
    return out;
}

} // namespace dphls::seq
