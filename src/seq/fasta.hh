/**
 * @file
 * Minimal FASTA reader/writer for DNA and protein sequences.
 *
 * The host-side programs in the paper read workload sequences from FASTA
 * files before batching them to the device; the examples and benches here
 * do the same so users can substitute their own data.
 */

#ifndef DPHLS_SEQ_FASTA_HH
#define DPHLS_SEQ_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/alphabet.hh"

namespace dphls::seq {

/** A raw FASTA record: header (without '>') and residue string. */
struct FastaRecord
{
    std::string name;
    std::string residues;
};

/** Parse all records from a FASTA stream. Throws on malformed input. */
std::vector<FastaRecord> readFasta(std::istream &in);

/** Parse all records from a FASTA file. Throws if unreadable. */
std::vector<FastaRecord> readFastaFile(const std::string &path);

/** Write records as FASTA with the given line width. */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
                int line_width = 70);

/** Decode FASTA records as DNA sequences. */
std::vector<DnaSequence> toDna(const std::vector<FastaRecord> &records);

/** Decode FASTA records as protein sequences. */
std::vector<ProteinSequence> toProtein(const std::vector<FastaRecord> &records);

} // namespace dphls::seq

#endif // DPHLS_SEQ_FASTA_HH
