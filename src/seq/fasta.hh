/**
 * @file
 * Minimal FASTA reader/writer for DNA and protein sequences.
 *
 * The host-side programs in the paper read workload sequences from FASTA
 * files before batching them to the device; the examples and benches here
 * do the same so users can substitute their own data.
 */

#ifndef DPHLS_SEQ_FASTA_HH
#define DPHLS_SEQ_FASTA_HH

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "seq/alphabet.hh"

namespace dphls::seq {

/** A raw FASTA record: header (without '>') and residue string. */
struct FastaRecord
{
    std::string name;
    std::string residues;
};

/** Parse all records from a FASTA stream. Throws on malformed input. */
std::vector<FastaRecord> readFasta(std::istream &in);

/** Parse all records from a FASTA file. Throws if unreadable. */
std::vector<FastaRecord> readFastaFile(const std::string &path);

/**
 * Incremental FASTA reader: yields one record at a time so streaming
 * hosts can overlap parsing with alignment and writeback instead of
 * materializing the whole file up front (dphls_align's parse -> align
 * -> writeback pipeline). The batch readFasta()/readFastaFile() APIs
 * drain this parser, so there is exactly one copy of the FASTA
 * grammar. Throws on open failure or malformed input.
 */
class FastaStream
{
  public:
    /** Open and own @p path. */
    explicit FastaStream(const std::string &path);
    /** Borrow @p in (must outlive the stream). */
    explicit FastaStream(std::istream &in);

    /** Read the next record into @p out; false at end of input. */
    bool next(FastaRecord &out);

  private:
    std::ifstream _file; //!< owned storage for the path constructor
    std::istream *_in;
    std::string _pendingName;
    bool _havePending = false;
};

/** Write records as FASTA with the given line width. */
void writeFasta(std::ostream &out, const std::vector<FastaRecord> &records,
                int line_width = 70);

/** Decode FASTA records as DNA sequences. */
std::vector<DnaSequence> toDna(const std::vector<FastaRecord> &records);

/** Decode FASTA records as protein sequences. */
std::vector<ProteinSequence> toProtein(const std::vector<FastaRecord> &records);

} // namespace dphls::seq

#endif // DPHLS_SEQ_FASTA_HH
