#include "seq/alphabet.hh"

namespace dphls::seq {

namespace {

constexpr char dnaLetters[5] = "ACGT";

} // namespace

const char aminoLetters[21] = "ARNDCQEGHILKMFPSTWYV";

DnaChar
dnaFromAscii(char c)
{
    switch (c) {
      case 'A': case 'a': return DnaChar{0};
      case 'C': case 'c': return DnaChar{1};
      case 'G': case 'g': return DnaChar{2};
      case 'T': case 't': case 'U': case 'u': return DnaChar{3};
      default: return DnaChar{0};
    }
}

char
dnaToAscii(DnaChar c)
{
    return dnaLetters[c.code & 0x3];
}

AminoChar
aminoFromAscii(char c)
{
    for (uint8_t i = 0; i < 20; i++) {
        if (aminoLetters[i] == c || aminoLetters[i] == (c - 'a' + 'A'))
            return AminoChar{i};
    }
    return AminoChar{0};
}

char
aminoToAscii(AminoChar c)
{
    return aminoLetters[c.code % 20];
}

DnaSequence
dnaFromString(const std::string &s, std::string name)
{
    std::vector<DnaChar> chars;
    chars.reserve(s.size());
    for (char c : s)
        chars.push_back(dnaFromAscii(c));
    return DnaSequence(std::move(chars), std::move(name));
}

std::string
dnaToString(const DnaSequence &s)
{
    std::string out;
    out.reserve(s.chars.size());
    for (auto c : s.chars)
        out.push_back(dnaToAscii(c));
    return out;
}

ProteinSequence
proteinFromString(const std::string &s, std::string name)
{
    std::vector<AminoChar> chars;
    chars.reserve(s.size());
    for (char c : s)
        chars.push_back(aminoFromAscii(c));
    return ProteinSequence(std::move(chars), std::move(name));
}

std::string
proteinToString(const ProteinSequence &s)
{
    std::string out;
    out.reserve(s.chars.size());
    for (auto c : s.chars)
        out.push_back(aminoToAscii(c));
    return out;
}

} // namespace dphls::seq
