#include "seq/profile_builder.hh"

#include <algorithm>

#include "seq/read_simulator.hh"

namespace dphls::seq {

namespace {

/**
 * Derive one family member from the ancestor: substitutions keep columns
 * aligned; gap runs mark columns as gapped (code 4) for this member.
 */
std::vector<uint8_t>
deriveMember(const DnaSequence &ancestor, const ProfileConfig &cfg, Rng &rng)
{
    const int n = ancestor.length();
    std::vector<uint8_t> member(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
        if (rng.chance(cfg.subRate)) {
            member[static_cast<size_t>(i)] = static_cast<uint8_t>(
                (ancestor[i].code + 1 + rng.below(3)) & 0x3);
        } else {
            member[static_cast<size_t>(i)] = ancestor[i].code;
        }
    }
    // Gap runs.
    for (int i = 0; i < n; i++) {
        if (rng.chance(cfg.gapRate)) {
            int run = 1;
            while (rng.chance(1.0 - 1.0 / cfg.meanGapLength) &&
                   run < 4 * cfg.meanGapLength) {
                run++;
            }
            for (int j = i; j < std::min(n, i + run); j++)
                member[static_cast<size_t>(j)] = 4;
            i += run;
        }
    }
    return member;
}

ProfileSequence
profileFromAncestor(const DnaSequence &ancestor, const ProfileConfig &cfg,
                    Rng &rng)
{
    const int n = ancestor.length();
    std::vector<ProfileColumn> cols(static_cast<size_t>(n));
    for (int m = 0; m < cfg.familySize; m++) {
        const auto member = deriveMember(ancestor, cfg, rng);
        for (int i = 0; i < n; i++)
            cols[static_cast<size_t>(i)].freq[member[static_cast<size_t>(i)]]++;
    }
    return ProfileSequence(std::move(cols));
}

} // namespace

ProfileSequence
buildProfile(int columns, const ProfileConfig &cfg, Rng &rng)
{
    const DnaSequence ancestor = randomDna(columns, rng);
    return profileFromAncestor(ancestor, cfg, rng);
}

std::vector<ProfilePair>
sampleProfilePairs(int count, int columns, uint64_t seed)
{
    Rng rng(seed);
    ProfileConfig cfg;
    std::vector<ProfilePair> pairs;
    pairs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++) {
        // Both families descend from the same ancestor, so the profiles
        // are homologous, mirroring the two Drosophila species windows.
        const DnaSequence ancestor = randomDna(columns, rng);
        ProfilePair p;
        p.first = profileFromAncestor(ancestor, cfg, rng);
        p.second = profileFromAncestor(ancestor, cfg, rng);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

} // namespace dphls::seq
