/**
 * @file
 * Synthetic nanopore signal ("squiggle") generator.
 *
 * Substitutes for two paper datasets: randomly generated complex-number
 * sequences for the DTW kernel (#9) and the SquiggleFilter dataset for the
 * sDTW kernel (#14). The squiggle model follows the standard nanopore
 * abstraction: a DNA sequence passes through the pore k bases at a time
 * and each k-mer produces a characteristic current level; events dwell a
 * variable number of samples and carry Gaussian noise, which is what makes
 * time-warping alignment necessary.
 */

#ifndef DPHLS_SEQ_SQUIGGLE_HH
#define DPHLS_SEQ_SQUIGGLE_HH

#include <cstdint>
#include <vector>

#include "seq/alphabet.hh"
#include "seq/random.hh"

namespace dphls::seq {

/** Configuration for squiggle synthesis. */
struct SquiggleConfig
{
    int kmer = 6;              //!< pore model k-mer size
    double meanDwell = 8.0;    //!< mean samples per k-mer event
    double noiseSigma = 2.5;   //!< Gaussian noise on each sample
    int levelMin = 40;         //!< min pore current level (ADC units)
    int levelMax = 220;        //!< max pore current level (ADC units)
};

/**
 * Deterministic pore model: maps a k-mer code to its expected current
 * level via a seeded hash, so the same k-mer always yields the same level.
 */
int poreModelLevel(uint64_t kmer_code, const SquiggleConfig &cfg);

/**
 * Generate the noiseless expected signal for a DNA sequence (1/k-mer).
 * A sequence shorter than one k-mer has zero events and yields a truly
 * empty signal (the shared degenerate-input contract with rawSignal).
 */
SignalSequence expectedSignal(const DnaSequence &dna,
                              const SquiggleConfig &cfg);

/**
 * Generate a noisy, time-warped raw signal for a DNA sequence: each k-mer
 * event dwells a geometric number of samples around meanDwell and each
 * sample carries Gaussian noise. Same degenerate-input contract as
 * expectedSignal: fewer than k bases produce an empty signal, never a
 * padded zero sample.
 */
SignalSequence rawSignal(const DnaSequence &dna, const SquiggleConfig &cfg,
                         Rng &rng);

/** A query signal plus the reference signal window it was drawn from. */
struct SquigglePair
{
    SignalSequence query;      //!< noisy warped read signal
    SignalSequence reference;  //!< noiseless expected reference signal
};

/**
 * Sample sDTW workload pairs: reference = expected signal of a genome
 * window, query = raw signal of a sub-window read; query starts somewhere
 * inside the reference (semi-global setting).
 */
std::vector<SquigglePair> sampleSquigglePairs(int count, int ref_events,
                                              int query_events,
                                              uint64_t seed);

/** Generate random complex-number sequences for the DTW kernel (#9). */
ComplexSequence randomComplexSignal(int length, Rng &rng);

/**
 * Generate a warped + noisy copy of a complex signal (samples repeated or
 * dropped, small additive noise) so DTW has real structure to recover.
 */
ComplexSequence warpComplexSignal(const ComplexSequence &src,
                                  double warp_prob, double noise,
                                  Rng &rng);

} // namespace dphls::seq

#endif // DPHLS_SEQ_SQUIGGLE_HH
