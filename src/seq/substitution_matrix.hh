/**
 * @file
 * Substitution score matrices for DNA and protein alignment.
 *
 * Section 2.2.2(a) of the paper: beyond single match/mismatch values,
 * kernels may score substitutions from a full matrix (e.g. BLOSUM62 for
 * protein kernel #15, or a transition/transversion-aware DNA matrix).
 */

#ifndef DPHLS_SEQ_SUBSTITUTION_MATRIX_HH
#define DPHLS_SEQ_SUBSTITUTION_MATRIX_HH

#include <array>
#include <cstdint>

#include "seq/alphabet.hh"

namespace dphls::seq {

/** A dense N x N substitution score matrix over an encoded alphabet. */
template <int N>
struct ScoreMatrix
{
    std::array<std::array<int8_t, N>, N> score{};

    constexpr int8_t
    operator()(int a, int b) const
    {
        return score[a][b];
    }
};

using DnaMatrix = ScoreMatrix<4>;
using ProteinMatrix = ScoreMatrix<20>;

/** Simple DNA matrix: +match on the diagonal, -mismatch elsewhere. */
DnaMatrix makeDnaMatrix(int match, int mismatch);

/**
 * DNA matrix that penalizes transversions (purine<->pyrimidine) more than
 * transitions (A<->G, C<->T), as used by tools like LASTZ.
 */
DnaMatrix makeTransitionAwareDnaMatrix(int match, int transition,
                                       int transversion);

/** The BLOSUM62 matrix in the encoding order of `aminoLetters`. */
const ProteinMatrix &blosum62();

} // namespace dphls::seq

#endif // DPHLS_SEQ_SUBSTITUTION_MATRIX_HH
