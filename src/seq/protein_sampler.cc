#include "seq/protein_sampler.hh"

#include <algorithm>
#include <array>
#include <cmath>

namespace dphls::seq {

// Swiss-Prot release-level background frequencies (percent / 100),
// order: A R N D C Q E G H I L K M F P S T W Y V.
const double swissProtFrequencies[20] = {
    0.0826, 0.0553, 0.0406, 0.0546, 0.0137, 0.0393, 0.0674, 0.0708,
    0.0227, 0.0591, 0.0965, 0.0580, 0.0241, 0.0386, 0.0474, 0.0665,
    0.0536, 0.0110, 0.0292, 0.0686,
};

namespace {

const std::array<double, 20> &
cumulativeFrequencies()
{
    static const std::array<double, 20> cum = [] {
        std::array<double, 20> c{};
        double acc = 0;
        for (int i = 0; i < 20; i++) {
            acc += swissProtFrequencies[i];
            c[static_cast<size_t>(i)] = acc;
        }
        return c;
    }();
    return cum;
}

} // namespace

ProteinSequence
sampleProtein(int length, Rng &rng)
{
    const auto &cum = cumulativeFrequencies();
    std::vector<AminoChar> chars(static_cast<size_t>(length));
    for (auto &c : chars) {
        c = AminoChar{static_cast<uint8_t>(
            rng.discreteFromCumulative(cum, 20))};
    }
    return ProteinSequence(std::move(chars));
}

int
sampleProteinLength(Rng &rng, int min_len, int max_len)
{
    // Log-normal with median ~290 aa and sigma 0.65 approximates the
    // Swiss-Prot length histogram well enough for workload purposes.
    const double len = rng.logNormal(std::log(290.0), 0.65);
    return std::clamp(static_cast<int>(len), min_len, max_len);
}

ProteinSequence
mutateProtein(const ProteinSequence &src, double sub_rate, double indel_rate,
              Rng &rng)
{
    const auto &cum = cumulativeFrequencies();
    std::vector<AminoChar> out;
    out.reserve(src.chars.size());
    for (const auto &c : src.chars) {
        if (rng.chance(indel_rate / 2))
            continue;
        if (rng.chance(indel_rate / 2)) {
            out.push_back(AminoChar{static_cast<uint8_t>(
                rng.discreteFromCumulative(cum, 20))});
        }
        if (rng.chance(sub_rate)) {
            out.push_back(AminoChar{static_cast<uint8_t>(
                rng.discreteFromCumulative(cum, 20))});
        } else {
            out.push_back(c);
        }
    }
    if (out.empty())
        out.push_back(AminoChar{0});
    return ProteinSequence(std::move(out));
}

std::vector<ProteinPair>
sampleProteinPairs(int count, int length, double divergence, uint64_t seed)
{
    Rng rng(seed);
    std::vector<ProteinPair> pairs;
    pairs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++) {
        const int len = length > 0 ? length : sampleProteinLength(rng);
        ProteinPair p;
        p.target = sampleProtein(len, rng);
        p.query = mutateProtein(p.target, divergence, divergence / 4, rng);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

} // namespace dphls::seq
