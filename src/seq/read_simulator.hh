/**
 * @file
 * PacBio-like long-read simulator (PBSIM2 substitution).
 *
 * The paper's DNA workload is 1,000 simulated PacBio reads of 10,000 bases
 * at 30% error from GRCh38 (Section 6.1), truncated to 256 bases for the
 * short-alignment kernels. We do not ship a 3 GB genome; instead a
 * synthetic reference genome is generated from a seeded RNG and reads are
 * sampled from it with a configurable substitution/insertion/deletion
 * error mix (PBSIM2's CLR default mix is roughly 6:21:23 at high error
 * rates; we default to the same proportions).
 */

#ifndef DPHLS_SEQ_READ_SIMULATOR_HH
#define DPHLS_SEQ_READ_SIMULATOR_HH

#include <cstdint>
#include <vector>

#include "seq/alphabet.hh"
#include "seq/random.hh"

namespace dphls::seq {

/** Configuration for the read simulator. */
struct ReadSimConfig
{
    int readLength = 10000;      //!< bases per read (before errors)
    double errorRate = 0.30;     //!< total error fraction
    double subFraction = 0.12;   //!< share of errors that are substitutions
    double insFraction = 0.42;   //!< share of errors that are insertions
    double delFraction = 0.46;   //!< share of errors that are deletions
};

/** A simulated read together with its true origin on the reference. */
struct SimulatedRead
{
    DnaSequence read;       //!< the error-laden read
    int refStart = 0;       //!< origin position on the reference
    int refEnd = 0;         //!< one-past-the-end origin position
};

/** Generate a uniform-random DNA reference genome of the given length. */
DnaSequence makeReferenceGenome(int length, Rng &rng);

/** Sample one read with errors from the reference. */
SimulatedRead simulateRead(const DnaSequence &reference,
                           const ReadSimConfig &cfg, Rng &rng);

/**
 * Sample a batch of query/target pairs for alignment benchmarks: each pair
 * is a simulated read plus the matching reference window (so the two align
 * globally with ~errorRate divergence). Reads are truncated to
 * @p truncate_to bases when positive, mirroring the paper's 256-base
 * short-alignment workload.
 */
struct ReadPair
{
    DnaSequence query;
    DnaSequence target;
};

std::vector<ReadPair> simulateReadPairs(int count, const ReadSimConfig &cfg,
                                        int truncate_to, uint64_t seed);

/** Generate one uniform-random DNA sequence of the given length. */
DnaSequence randomDna(int length, Rng &rng);

/**
 * Mutate a sequence with the given substitution/indel rates; used by tests
 * and the profile builder to create related sequence families.
 */
DnaSequence mutateDna(const DnaSequence &src, double sub_rate,
                      double indel_rate, Rng &rng);

} // namespace dphls::seq

#endif // DPHLS_SEQ_READ_SIMULATOR_HH
