#include "seq/substitution_matrix.hh"

namespace dphls::seq {

DnaMatrix
makeDnaMatrix(int match, int mismatch)
{
    DnaMatrix m;
    for (int a = 0; a < 4; a++) {
        for (int b = 0; b < 4; b++)
            m.score[a][b] = static_cast<int8_t>(a == b ? match : mismatch);
    }
    return m;
}

DnaMatrix
makeTransitionAwareDnaMatrix(int match, int transition, int transversion)
{
    // Encoding: A=0, C=1, G=2, T=3. Transitions are A<->G and C<->T.
    DnaMatrix m;
    for (int a = 0; a < 4; a++) {
        for (int b = 0; b < 4; b++) {
            if (a == b) {
                m.score[a][b] = static_cast<int8_t>(match);
            } else if ((a ^ b) == 2) { // 0^2 == 2 (A/G), 1^3 == 2 (C/T)
                m.score[a][b] = static_cast<int8_t>(transition);
            } else {
                m.score[a][b] = static_cast<int8_t>(transversion);
            }
        }
    }
    return m;
}

const ProteinMatrix &
blosum62()
{
    // Row/column order follows aminoLetters: A R N D C Q E G H I L K M F P
    // S T W Y V (standard BLOSUM62 values).
    static const ProteinMatrix m = [] {
        ProteinMatrix b;
        static const int8_t rows[20][20] = {
            { 4,-1,-2,-2, 0,-1,-1, 0,-2,-1,-1,-1,-1,-2,-1, 1, 0,-3,-2, 0},
            {-1, 5, 0,-2,-3, 1, 0,-2, 0,-3,-2, 2,-1,-3,-2,-1,-1,-3,-2,-3},
            {-2, 0, 6, 1,-3, 0, 0, 0, 1,-3,-3, 0,-2,-3,-2, 1, 0,-4,-2,-3},
            {-2,-2, 1, 6,-3, 0, 2,-1,-1,-3,-4,-1,-3,-3,-1, 0,-1,-4,-3,-3},
            { 0,-3,-3,-3, 9,-3,-4,-3,-3,-1,-1,-3,-1,-2,-3,-1,-1,-2,-2,-1},
            {-1, 1, 0, 0,-3, 5, 2,-2, 0,-3,-2, 1, 0,-3,-1, 0,-1,-2,-1,-2},
            {-1, 0, 0, 2,-4, 2, 5,-2, 0,-3,-3, 1,-2,-3,-1, 0,-1,-3,-2,-2},
            { 0,-2, 0,-1,-3,-2,-2, 6,-2,-4,-4,-2,-3,-3,-2, 0,-2,-2,-3,-3},
            {-2, 0, 1,-1,-3, 0, 0,-2, 8,-3,-3,-1,-2,-1,-2,-1,-2,-2, 2,-3},
            {-1,-3,-3,-3,-1,-3,-3,-4,-3, 4, 2,-3, 1, 0,-3,-2,-1,-3,-1, 3},
            {-1,-2,-3,-4,-1,-2,-3,-4,-3, 2, 4,-2, 2, 0,-3,-2,-1,-2,-1, 1},
            {-1, 2, 0,-1,-3, 1, 1,-2,-1,-3,-2, 5,-1,-3,-1, 0,-1,-3,-2,-2},
            {-1,-1,-2,-3,-1, 0,-2,-3,-2, 1, 2,-1, 5, 0,-2,-1,-1,-1,-1, 1},
            {-2,-3,-3,-3,-2,-3,-3,-3,-1, 0, 0,-3, 0, 6,-4,-2,-2, 1, 3,-1},
            {-1,-2,-2,-1,-3,-1,-1,-2,-2,-3,-3,-1,-2,-4, 7,-1,-1,-4,-3,-2},
            { 1,-1, 1, 0,-1, 0, 0, 0,-1,-2,-2, 0,-1,-2,-1, 4, 1,-3,-2,-2},
            { 0,-1, 0,-1,-1,-1,-1,-2,-2,-1,-1,-1,-1,-2,-1, 1, 5,-2,-2, 0},
            {-3,-3,-4,-4,-2,-2,-3,-2,-2,-3,-2,-3,-1, 1,-4,-3,-2,11, 2,-3},
            {-2,-2,-2,-3,-2,-1,-2,-3, 2,-1,-1,-2,-1, 3,-3,-2,-2, 2, 7,-1},
            { 0,-3,-3,-3,-1,-2,-2,-3,-3, 3, 1,-2, 1,-1,-2,-2, 0,-3,-1, 4},
        };
        for (int a = 0; a < 20; a++) {
            for (int c = 0; c < 20; c++)
                b.score[a][c] = rows[a][c];
        }
        return b;
    }();
    return m;
}

} // namespace dphls::seq
