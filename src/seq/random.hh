/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All dataset generators (read simulator, protein sampler, squiggle
 * generator, profile builder) draw from this engine so that every test and
 * benchmark is exactly reproducible across platforms and standard-library
 * implementations. The core generator is SplitMix64, which is tiny, fast
 * and has well-understood statistical quality for this purpose.
 */

#ifndef DPHLS_SEQ_RANDOM_HH
#define DPHLS_SEQ_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace dphls::seq {

/** Deterministic 64-bit random engine (SplitMix64). */
class Rng
{
  public:
    explicit constexpr Rng(uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    constexpr uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n) for n >= 1. */
    constexpr uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    constexpr int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    constexpr double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    constexpr bool chance(double p) { return uniform() < p; }

    /** Standard normal deviate (Box-Muller, one value per call). */
    double
    normal()
    {
        // Avoid log(0) by nudging away from zero.
        double u1 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Log-normal deviate with the given log-space mean and sigma. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

    /**
     * Sample an index from a discrete distribution given cumulative
     * weights (last entry is the total weight).
     */
    template <typename Cum>
    int
    discreteFromCumulative(const Cum &cum, int n)
    {
        const double r = uniform() * cum[n - 1];
        for (int i = 0; i < n; i++) {
            if (r < cum[i])
                return i;
        }
        return n - 1;
    }

  private:
    uint64_t _state;
};

} // namespace dphls::seq

#endif // DPHLS_SEQ_RANDOM_HH
