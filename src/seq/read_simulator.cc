#include "seq/read_simulator.hh"

#include <algorithm>

namespace dphls::seq {

DnaSequence
makeReferenceGenome(int length, Rng &rng)
{
    return randomDna(length, rng);
}

DnaSequence
randomDna(int length, Rng &rng)
{
    std::vector<DnaChar> chars(static_cast<size_t>(length));
    for (auto &c : chars)
        c = DnaChar{static_cast<uint8_t>(rng.below(4))};
    return DnaSequence(std::move(chars));
}

SimulatedRead
simulateRead(const DnaSequence &reference, const ReadSimConfig &cfg, Rng &rng)
{
    // Walk the reference emitting bases; at each step an error event may
    // replace the base (substitution), emit an extra base (insertion) or
    // skip the reference base (deletion). The walk continues until the
    // read reaches the target length or the reference is exhausted.
    const double p_err = cfg.errorRate;
    const double f_total =
        cfg.subFraction + cfg.insFraction + cfg.delFraction;
    const double p_sub = p_err * cfg.subFraction / f_total;
    const double p_ins = p_err * cfg.insFraction / f_total;
    const double p_del = p_err * cfg.delFraction / f_total;

    const int ref_len = reference.length();
    // Valid starts are [0, ref_len - readLength]: a read beginning at
    // ref_len - readLength still spans a full window. (An off-by-one
    // here used to exclude that last start, so the final window of a
    // reference was never sampled.)
    const int max_start = std::max(0, ref_len - cfg.readLength);
    const int start = static_cast<int>(rng.below(
        static_cast<uint64_t>(max_start + 1)));

    std::vector<DnaChar> read;
    read.reserve(static_cast<size_t>(cfg.readLength));
    int pos = start;
    while (static_cast<int>(read.size()) < cfg.readLength && pos < ref_len) {
        const double r = rng.uniform();
        if (r < p_sub) {
            // Substitute with one of the three other bases.
            const uint8_t orig = reference[pos].code;
            const uint8_t repl = static_cast<uint8_t>(
                (orig + 1 + rng.below(3)) & 0x3);
            read.push_back(DnaChar{repl});
            pos++;
        } else if (r < p_sub + p_ins) {
            read.push_back(DnaChar{static_cast<uint8_t>(rng.below(4))});
            // Reference position does not advance.
        } else if (r < p_sub + p_ins + p_del) {
            pos++; // skip a reference base
        } else {
            read.push_back(reference[pos]);
            pos++;
        }
    }

    SimulatedRead out;
    out.read = DnaSequence(std::move(read));
    out.refStart = start;
    out.refEnd = pos;
    return out;
}

std::vector<ReadPair>
simulateReadPairs(int count, const ReadSimConfig &cfg, int truncate_to,
                  uint64_t seed)
{
    Rng rng(seed);
    // A reference long enough to sample `count` mostly-disjoint reads.
    const int genome_len =
        std::max(cfg.readLength * 4, cfg.readLength + count * 64);
    const DnaSequence genome = makeReferenceGenome(genome_len, rng);

    std::vector<ReadPair> pairs;
    pairs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++) {
        SimulatedRead sim = simulateRead(genome, cfg, rng);
        ReadPair p;
        p.query = std::move(sim.read);
        std::vector<DnaChar> window(
            genome.chars.begin() + sim.refStart,
            genome.chars.begin() + sim.refEnd);
        p.target = DnaSequence(std::move(window));
        if (truncate_to > 0) {
            if (p.query.length() > truncate_to)
                p.query.chars.resize(static_cast<size_t>(truncate_to));
            if (p.target.length() > truncate_to)
                p.target.chars.resize(static_cast<size_t>(truncate_to));
        }
        pairs.push_back(std::move(p));
    }
    return pairs;
}

DnaSequence
mutateDna(const DnaSequence &src, double sub_rate, double indel_rate,
          Rng &rng)
{
    std::vector<DnaChar> out;
    out.reserve(src.chars.size());
    for (const auto &c : src.chars) {
        if (rng.chance(indel_rate / 2)) {
            continue; // deletion
        }
        if (rng.chance(indel_rate / 2)) {
            out.push_back(DnaChar{static_cast<uint8_t>(rng.below(4))});
        }
        if (rng.chance(sub_rate)) {
            out.push_back(DnaChar{static_cast<uint8_t>(
                (c.code + 1 + rng.below(3)) & 0x3)});
        } else {
            out.push_back(c);
        }
    }
    if (out.empty())
        out.push_back(DnaChar{0});
    return DnaSequence(std::move(out));
}

} // namespace dphls::seq
