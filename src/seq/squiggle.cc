#include "seq/squiggle.hh"

#include <algorithm>
#include <cmath>

#include "seq/read_simulator.hh"

namespace dphls::seq {

int
poreModelLevel(uint64_t kmer_code, const SquiggleConfig &cfg)
{
    // SplitMix-style scramble keyed by the k-mer code: a fixed pseudo
    // pore model. Levels span [levelMin, levelMax].
    uint64_t z = kmer_code + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const int span = cfg.levelMax - cfg.levelMin + 1;
    return cfg.levelMin + static_cast<int>(z % static_cast<uint64_t>(span));
}

namespace {

uint64_t
kmerCode(const DnaSequence &dna, int start, int k)
{
    uint64_t code = 0;
    for (int i = 0; i < k; i++)
        code = (code << 2) | dna[start + i].code;
    return code;
}

} // namespace

SignalSequence
expectedSignal(const DnaSequence &dna, const SquiggleConfig &cfg)
{
    std::vector<SignalSample> out;
    const int n_events = dna.length() - cfg.kmer + 1;
    out.reserve(static_cast<size_t>(std::max(0, n_events)));
    for (int i = 0; i < n_events; i++) {
        out.push_back(SignalSample{static_cast<int16_t>(
            poreModelLevel(kmerCode(dna, i, cfg.kmer), cfg))});
    }
    return SignalSequence(std::move(out));
}

SignalSequence
rawSignal(const DnaSequence &dna, const SquiggleConfig &cfg, Rng &rng)
{
    // Degenerate inputs (dna shorter than one k-mer) produce zero
    // events, and therefore a truly empty signal — the same contract
    // as expectedSignal. (rawSignal used to pad one zero sample here,
    // so the two generators disagreed on empty inputs and downstream
    // sDTW consumers saw a phantom sample.)
    std::vector<SignalSample> out;
    const int n_events = dna.length() - cfg.kmer + 1;
    for (int i = 0; i < n_events; i++) {
        const int level = poreModelLevel(kmerCode(dna, i, cfg.kmer), cfg);
        // Geometric-ish dwell around the mean (at least one sample).
        int dwell = 1;
        while (rng.uniform() < 1.0 - 1.0 / cfg.meanDwell &&
               dwell < 4 * cfg.meanDwell) {
            dwell++;
        }
        for (int s = 0; s < dwell; s++) {
            const double noisy = level + cfg.noiseSigma * rng.normal();
            const int clamped = std::clamp(static_cast<int>(noisy), 0, 1023);
            out.push_back(SignalSample{static_cast<int16_t>(clamped)});
        }
    }
    return SignalSequence(std::move(out));
}

std::vector<SquigglePair>
sampleSquigglePairs(int count, int ref_events, int query_events,
                    uint64_t seed)
{
    Rng rng(seed);
    SquiggleConfig cfg;
    std::vector<SquigglePair> pairs;
    pairs.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; i++) {
        const DnaSequence genome =
            randomDna(ref_events + cfg.kmer - 1, rng);
        SquigglePair p;
        p.reference = expectedSignal(genome, cfg);

        // The query reads a random sub-window of the genome.
        const int max_start =
            std::max(0, ref_events - query_events);
        const int start = static_cast<int>(
            rng.below(static_cast<uint64_t>(max_start + 1)));
        std::vector<DnaChar> window(
            genome.chars.begin() + start,
            genome.chars.begin() + start + query_events + cfg.kmer - 1);
        DnaSequence sub(std::move(window));

        // One sample per event on average keeps query lengths bounded for
        // the fixed-size device buffers; dwell warping is still present.
        SquiggleConfig qcfg = cfg;
        qcfg.meanDwell = 1.3;
        p.query = rawSignal(sub, qcfg, rng);
        pairs.push_back(std::move(p));
    }
    return pairs;
}

ComplexSequence
randomComplexSignal(int length, Rng &rng)
{
    std::vector<ComplexSample> out(static_cast<size_t>(length));
    for (auto &s : out) {
        s.real = hls::ApFixed<32, 26>(rng.uniform() * 64.0 - 32.0);
        s.imag = hls::ApFixed<32, 26>(rng.uniform() * 64.0 - 32.0);
    }
    return ComplexSequence(std::move(out));
}

ComplexSequence
warpComplexSignal(const ComplexSequence &src, double warp_prob, double noise,
                  Rng &rng)
{
    std::vector<ComplexSample> out;
    out.reserve(src.chars.size());
    for (const auto &s : src.chars) {
        int copies = 1;
        if (rng.chance(warp_prob))
            copies = rng.chance(0.5) ? 0 : 2; // drop or repeat
        for (int c = 0; c < copies; c++) {
            ComplexSample w;
            w.real = s.real + hls::ApFixed<32, 26>(noise * rng.normal());
            w.imag = s.imag + hls::ApFixed<32, 26>(noise * rng.normal());
            out.push_back(w);
        }
    }
    if (out.empty())
        out.push_back(ComplexSample{});
    return ComplexSequence(std::move(out));
}

} // namespace dphls::seq
