/**
 * @file
 * Synthetic protein sequence sampler (UniProtKB/Swiss-Prot substitution).
 *
 * Kernel #15's workload in the paper is random samples from Swiss-Prot
 * (Section 6.1). Without the database we sample sequences whose amino-acid
 * composition follows the Swiss-Prot background frequencies and whose
 * lengths follow a log-normal fit of the Swiss-Prot length distribution
 * (median ~290 aa). Related pairs for alignment are produced by mutating a
 * sampled sequence under BLOSUM-like substitution pressure.
 */

#ifndef DPHLS_SEQ_PROTEIN_SAMPLER_HH
#define DPHLS_SEQ_PROTEIN_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "seq/alphabet.hh"
#include "seq/random.hh"

namespace dphls::seq {

/** Swiss-Prot background amino-acid frequencies in aminoLetters order. */
extern const double swissProtFrequencies[20];

/** Sample one protein sequence with background composition. */
ProteinSequence sampleProtein(int length, Rng &rng);

/** Sample a length from the Swiss-Prot-like log-normal distribution. */
int sampleProteinLength(Rng &rng, int min_len = 30, int max_len = 2000);

/** Mutate a protein with the given substitution and indel rates. */
ProteinSequence mutateProtein(const ProteinSequence &src, double sub_rate,
                              double indel_rate, Rng &rng);

/** A query/target protein pair with controlled divergence. */
struct ProteinPair
{
    ProteinSequence query;
    ProteinSequence target;
};

/**
 * Sample @p count protein pairs; each pair is a background-composition
 * sequence of length @p length (0 = sample from the length distribution)
 * and a mutated copy.
 */
std::vector<ProteinPair> sampleProteinPairs(int count, int length,
                                            double divergence,
                                            uint64_t seed);

} // namespace dphls::seq

#endif // DPHLS_SEQ_PROTEIN_SAMPLER_HH
