/**
 * @file
 * Sequence-profile construction for the Profile Alignment kernel (#8).
 *
 * The paper builds profiles from 256-bp windows of Drosophila genomes
 * (Section 6.1). We substitute a simulated sequence family: an ancestor
 * sequence is mutated (substitutions only, so columns stay aligned) into N
 * descendants, and each profile column counts the A/C/G/T/gap frequencies
 * across the family at that position. Gaps are introduced by masking runs
 * of columns in individual family members.
 */

#ifndef DPHLS_SEQ_PROFILE_BUILDER_HH
#define DPHLS_SEQ_PROFILE_BUILDER_HH

#include <cstdint>
#include <vector>

#include "seq/alphabet.hh"
#include "seq/random.hh"

namespace dphls::seq {

/** Configuration for family simulation. */
struct ProfileConfig
{
    int familySize = 8;        //!< sequences per profile
    double subRate = 0.05;     //!< per-base substitution rate vs ancestor
    double gapRate = 0.01;     //!< probability a member opens a gap run
    int meanGapLength = 4;     //!< mean length of a gap run
};

/**
 * Build a profile of the given column count from a simulated family
 * descended from a random ancestor.
 */
ProfileSequence buildProfile(int columns, const ProfileConfig &cfg, Rng &rng);

/** A pair of related profiles (families descended from the same ancestor). */
struct ProfilePair
{
    ProfileSequence first;
    ProfileSequence second;
};

/** Sample related profile pairs for the kernel #8 workload. */
std::vector<ProfilePair> sampleProfilePairs(int count, int columns,
                                            uint64_t seed);

} // namespace dphls::seq

#endif // DPHLS_SEQ_PROFILE_BUILDER_HH
