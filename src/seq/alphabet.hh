/**
 * @file
 * Sequence alphabets used by the 15 DP-HLS kernels.
 *
 * The paper's front-end step 1 lets a kernel define its own `char_t`; the
 * four alphabets used across Table 1 are reproduced here:
 *  - 2-bit DNA characters (kernels #1-7, #10-13),
 *  - 5-bit amino-acid characters (kernel #15),
 *  - profile columns of 5 frequencies (kernel #8),
 *  - complex fixed-point samples (kernel #9) and integer samples (#14).
 */

#ifndef DPHLS_SEQ_ALPHABET_HH
#define DPHLS_SEQ_ALPHABET_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "hls/ap_fixed.hh"
#include "hls/ap_int.hh"

namespace dphls::seq {

/** A DNA base encoded in 2 bits (A=0, C=1, G=2, T=3). */
struct DnaChar
{
    uint8_t code = 0;

    static constexpr int numSymbols = 4;
    static constexpr int bits = 2;

    constexpr bool operator==(const DnaChar &) const = default;
};

/** Encode an ASCII nucleotide; unknown characters map to A. */
DnaChar dnaFromAscii(char c);

/** Decode a DnaChar back to its ASCII letter. */
char dnaToAscii(DnaChar c);

/** An amino acid encoded in 5 bits (0..19, standard IUPAC order). */
struct AminoChar
{
    uint8_t code = 0;

    static constexpr int numSymbols = 20;
    static constexpr int bits = 5;

    constexpr bool operator==(const AminoChar &) const = default;
};

/** The 20 canonical amino-acid letters in encoding order. */
extern const char aminoLetters[21];

/** Encode an ASCII amino-acid letter; unknown characters map to A(lanine). */
AminoChar aminoFromAscii(char c);

/** Decode an AminoChar back to its ASCII letter. */
char aminoToAscii(AminoChar c);

/**
 * One column of a sequence profile: frequencies of A, C, G, T and gap.
 * Used by the Profile Alignment kernel (#8); each character is a tuple of
 * 5 integers as described in Section 2.2.1 of the paper.
 */
struct ProfileColumn
{
    std::array<uint16_t, 5> freq{};

    static constexpr int numSymbols = 5;

    /** Total number of observations in this column. */
    int
    total() const
    {
        int t = 0;
        for (auto f : freq)
            t += f;
        return t;
    }

    bool operator==(const ProfileColumn &) const = default;
};

/**
 * A complex signal sample for the DTW kernel (#9): two 32-bit fixed-point
 * numbers, exactly as Listing 1 (right) of the paper.
 */
struct ComplexSample
{
    hls::ApFixed<32, 26> real{0};
    hls::ApFixed<32, 26> imag{0};

    bool
    operator==(const ComplexSample &o) const
    {
        return real == o.real && imag == o.imag;
    }
};

/** An integer signal sample for the sDTW kernel (#14), SquiggleFilter style. */
struct SignalSample
{
    int16_t value = 0;

    bool operator==(const SignalSample &) const = default;
};

/**
 * A named sequence over an arbitrary alphabet.
 *
 * This is the host-side container handed to the device model; the systolic
 * engine copies characters into its local query/reference buffers exactly
 * as the FPGA kernel streams them in.
 */
template <typename C>
struct Sequence
{
    std::string name;
    std::vector<C> chars;

    Sequence() = default;
    explicit Sequence(std::vector<C> c, std::string n = {})
        : name(std::move(n)), chars(std::move(c))
    {}

    int length() const { return static_cast<int>(chars.size()); }
    const C &operator[](int i) const { return chars[i]; }
    C &operator[](int i) { return chars[i]; }
    bool empty() const { return chars.empty(); }
};

using DnaSequence = Sequence<DnaChar>;
using ProteinSequence = Sequence<AminoChar>;
using ProfileSequence = Sequence<ProfileColumn>;
using ComplexSequence = Sequence<ComplexSample>;
using SignalSequence = Sequence<SignalSample>;

/** Convert an ASCII DNA string to a sequence. */
DnaSequence dnaFromString(const std::string &s, std::string name = {});

/** Convert a DNA sequence back to an ASCII string. */
std::string dnaToString(const DnaSequence &s);

/** Convert an ASCII protein string to a sequence. */
ProteinSequence proteinFromString(const std::string &s, std::string name = {});

/** Convert a protein sequence back to an ASCII string. */
std::string proteinToString(const ProteinSequence &s);

} // namespace dphls::seq

#endif // DPHLS_SEQ_ALPHABET_HH
