/**
 * @file
 * CIGAR string encoding of alignment paths, as produced by standard
 * aligners (SAM convention: run-length encoded M/I/D operations).
 */

#ifndef DPHLS_CORE_CIGAR_HH
#define DPHLS_CORE_CIGAR_HH

#include <string>
#include <vector>

#include "core/alignment.hh"

namespace dphls::core {

/** Run-length encode a path as a CIGAR string (e.g. "12M1I4M2D"). */
std::string toCigar(const std::vector<AlnOp> &ops);

/** Parse a CIGAR string back into an op list. Throws on bad input. */
std::vector<AlnOp> fromCigar(const std::string &cigar);

} // namespace dphls::core

#endif // DPHLS_CORE_CIGAR_HH
