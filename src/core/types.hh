/**
 * @file
 * Core vocabulary of the DP-HLS front-end.
 *
 * These types are what a kernel author uses to describe a 2-D DP kernel
 * (paper Section 4): the alignment kind (traceback strategy), the
 * objective (max for alignment scores, min for DTW distances), traceback
 * pointers and FSM steps, and the per-PE resource profile consumed by the
 * analytical hardware model.
 */

#ifndef DPHLS_CORE_TYPES_HH
#define DPHLS_CORE_TYPES_HH

#include <cstdint>
#include <limits>

#include "hls/ap_fixed.hh"
#include "hls/ap_int.hh"

namespace dphls::core {

/**
 * Traceback strategy (paper Section 2.2.3). Determines where the
 * traceback path starts and stops, and which cells the PEs track maxima
 * over.
 */
enum class AlignmentKind : uint8_t
{
    Global,     //!< bottom-right cell to top-left cell
    Local,      //!< max-scoring cell to the first 0-score cell
    SemiGlobal, //!< max of bottom row to the top row
    Overlap,    //!< max of bottom row or right column to top row/left column
};

/** Objective of the recurrence: alignment scores maximize, DTW minimizes. */
enum class Objective : uint8_t { Maximize, Minimize };

/**
 * A packed per-cell traceback pointer. The kernel defines the bit layout
 * (e.g. 2 bits for linear-gap kernels, 4 for affine, 7 for two-piece
 * affine) and interprets it in its traceback FSM.
 */
struct TbPtr
{
    uint8_t bits = 0;

    constexpr bool operator==(const TbPtr &) const = default;
};

/** Canonical pointer values for single-layer (linear-gap) kernels. */
namespace tb {
constexpr uint8_t Diag = 0;
constexpr uint8_t Up = 1;
constexpr uint8_t Left = 2;
constexpr uint8_t End = 3;
} // namespace tb

/** Matrix move emitted by one traceback FSM step. */
enum class TbMove : uint8_t
{
    Diag, //!< to (i-1, j-1): consumes one query and one reference char
    Up,   //!< to (i-1, j): consumes one query char (insertion)
    Left, //!< to (i, j-1): consumes one reference char (deletion)
    None, //!< stay on the same cell (switch scoring layer only)
};

/**
 * Result of one traceback FSM transition: the move to apply, the next FSM
 * state, and whether the walk terminates at this cell (local alignment's
 * 0-score cell).
 */
struct TbStep
{
    TbMove move = TbMove::Diag;
    uint8_t nextState = 0;
    bool stop = false;
};

/**
 * Structural description of one processing element, hand-derived from the
 * kernel's recurrence equations. The resource and frequency models map
 * these op counts and widths to LUT/FF/DSP estimates and an fmax tier,
 * mirroring how the synthesized datapath consumes FPGA resources.
 */
struct PeProfile
{
    int addSub = 0;          //!< adders/subtractors per cell
    int maxMin2 = 0;         //!< 2-input max/min (compare + select) per cell
    int mult = 0;            //!< multipliers per cell
    int multWidth = 0;       //!< operand width of the multipliers
    int scoreWidth = 16;     //!< bits per score value
    int tableLookups = 0;    //!< substitution-table lookups per cell
    int tableEntries = 0;    //!< entries in the substitution table
    int critPathLevels = 4;  //!< dependent logic levels through the PE
    int lutExtra = 0;        //!< kernel-specific datapath overhead (LUTs)
};

/** Traits abstracting over native and arbitrary-precision score types. */
template <typename T>
struct ScoreTraits
{
    static constexpr int width = sizeof(T) * 8;

    static constexpr T zero() { return T{0}; }
    static constexpr T lowest() { return std::numeric_limits<T>::lowest(); }
    static constexpr T highest() { return std::numeric_limits<T>::max(); }
    static constexpr T halfLowest()
    {
        return static_cast<T>(std::numeric_limits<T>::lowest() / 2);
    }
    static constexpr T halfHighest()
    {
        return static_cast<T>(std::numeric_limits<T>::max() / 2);
    }
    static constexpr double toDouble(T v) { return static_cast<double>(v); }
};

template <int W, int I>
struct ScoreTraits<hls::ApFixed<W, I>>
{
    using T = hls::ApFixed<W, I>;
    static constexpr int width = W;

    static constexpr T zero() { return T::fromRaw(0); }
    static constexpr T lowest() { return T::lowest(); }
    static constexpr T highest() { return T::highest(); }
    static constexpr T halfLowest()
    {
        return T::fromRaw(T::lowest().raw() / 2);
    }
    static constexpr T halfHighest()
    {
        return T::fromRaw(T::highest().raw() / 2);
    }
    static constexpr double toDouble(T v) { return v.toDouble(); }
};

template <int W>
struct ScoreTraits<hls::ApInt<W>>
{
    using T = hls::ApInt<W>;
    static constexpr int width = W;

    static constexpr T zero() { return T(0); }
    static constexpr T lowest() { return T::lowest(); }
    static constexpr T highest() { return T::highest(); }
    static constexpr T halfLowest() { return T(T::lowest().raw() / 2); }
    static constexpr T halfHighest() { return T(T::highest().raw() / 2); }
    static constexpr double toDouble(T v)
    {
        return static_cast<double>(v.raw());
    }
};

/**
 * A "minus infinity"-like sentinel that still leaves headroom for one
 * round of additions without wrapping: half of the representable range.
 */
template <typename T>
constexpr T
scoreSentinelWorst(Objective obj)
{
    using Tr = ScoreTraits<T>;
    return obj == Objective::Maximize ? Tr::halfLowest() : Tr::halfHighest();
}

/** True if @p a is better than @p b under the objective. */
template <typename T>
constexpr bool
isBetter(Objective obj, T a, T b)
{
    return obj == Objective::Maximize ? (a > b) : (a < b);
}

} // namespace dphls::core

#endif // DPHLS_CORE_TYPES_HH
