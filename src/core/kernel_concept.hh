/**
 * @file
 * The DP-HLS kernel specification interface (the framework "front-end").
 *
 * A kernel is a plain struct describing everything a user customizes in
 * the paper's six front-end steps:
 *
 *  1. data types & parameters: `CharT`, `ScoreT`, `nLayers`, `Params`,
 *     `tbPtrBits`, `banded`, max lengths are runtime engine limits;
 *  2. initialization: `originScore`, `initRowScore`, `initColScore`;
 *  3. PE function: `peFunc` computing one cell from its three neighbors;
 *  4. traceback strategy: `alignKind`, `hasTraceback`, `tbStartState`,
 *     `tbStep` (the FSM transition);
 *  5. parallelism: NPE/NB/NK live in the engine/device configuration, not
 *     in the kernel;
 *  6. host program: see `host/`.
 *
 * The back-end (the systolic engine in `systolic/`) consumes any type
 * satisfying this concept and never needs kernel-specific changes, which
 * is the paper's central productivity claim.
 */

#ifndef DPHLS_CORE_KERNEL_CONCEPT_HH
#define DPHLS_CORE_KERNEL_CONCEPT_HH

#include <array>
#include <concepts>
#include <type_traits>

#include "core/types.hh"

namespace dphls::core {

/** Per-cell inputs handed to a kernel's PE function by the back-end. */
template <typename ScoreT, typename CharT, int NLayers>
struct PeIn
{
    /** Scores of the cell above (i-1, j), one per layer. */
    std::array<ScoreT, NLayers> up;
    /** Scores of the cell to the left (i, j-1), one per layer. */
    std::array<ScoreT, NLayers> left;
    /** Scores of the diagonal cell (i-1, j-1), one per layer. */
    std::array<ScoreT, NLayers> diag;
    /** The i-th query character (paper: lc_qry_val). */
    CharT qryVal;
    /** The j-th reference character (paper: lc_ref_val). */
    CharT refVal;
    /** 1-based cell coordinates (banded kernels need them). */
    int row = 0;
    int col = 0;
};

/** Per-cell outputs produced by a kernel's PE function. */
template <typename ScoreT, int NLayers>
struct PeOut
{
    /** Scores written for this cell (paper: wt_scr), one per layer. */
    std::array<ScoreT, NLayers> score;
    /** Traceback pointer for this cell (paper: wt_tbp). */
    TbPtr tbPtr;
};

/**
 * Concept satisfied by every DP-HLS kernel specification. See the 15
 * kernels under `kernels/` for concrete examples.
 */
template <typename K>
concept KernelSpec = requires (
    const typename K::Params &params,
    const PeIn<typename K::ScoreT, typename K::CharT, K::nLayers> &in,
    TbPtr ptr)
{
    typename K::CharT;
    typename K::ScoreT;
    typename K::Params;
    { K::kernelId } -> std::convertible_to<int>;
    { K::name } -> std::convertible_to<const char *>;
    { K::nLayers } -> std::convertible_to<int>;
    { K::hasTraceback } -> std::convertible_to<bool>;
    { K::banded } -> std::convertible_to<bool>;
    { K::alignKind } -> std::convertible_to<AlignmentKind>;
    { K::objective } -> std::convertible_to<Objective>;
    { K::tbPtrBits } -> std::convertible_to<int>;
    { K::ii } -> std::convertible_to<int>;
    { K::defaultParams() } -> std::same_as<typename K::Params>;
    {
        K::originScore(0, params)
    } -> std::same_as<typename K::ScoreT>;
    {
        K::initRowScore(1, 0, params)
    } -> std::same_as<typename K::ScoreT>;
    {
        K::initColScore(1, 0, params)
    } -> std::same_as<typename K::ScoreT>;
    {
        K::peFunc(in, params)
    } -> std::same_as<PeOut<typename K::ScoreT, K::nLayers>>;
    { K::tbStartState } -> std::convertible_to<uint8_t>;
    { K::tbStep(uint8_t{0}, ptr) } -> std::same_as<TbStep>;
    { K::peProfile() } -> std::same_as<PeProfile>;
};

} // namespace dphls::core

#endif // DPHLS_CORE_KERNEL_CONCEPT_HH
