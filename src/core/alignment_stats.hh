/**
 * @file
 * Summary statistics over alignment paths: identity, gap counts,
 * gap-compressed identity and edit distance — what downstream pipelines
 * (mappers, polishers, QC reports) compute from the device's traceback
 * output.
 */

#ifndef DPHLS_CORE_ALIGNMENT_STATS_HH
#define DPHLS_CORE_ALIGNMENT_STATS_HH

#include "core/alignment.hh"
#include "seq/alphabet.hh"

namespace dphls::core {

/** Path-level alignment statistics. */
struct AlignmentStats
{
    int matches = 0;      //!< diagonal steps with equal characters
    int mismatches = 0;   //!< diagonal steps with differing characters
    int insertions = 0;   //!< query-consuming gap characters
    int deletions = 0;    //!< reference-consuming gap characters
    int gapOpens = 0;     //!< maximal gap runs
    int columns = 0;      //!< total alignment columns

    /** BLAST-style identity: matches / columns. */
    double
    identity() const
    {
        return columns > 0 ? static_cast<double>(matches) / columns : 0.0;
    }

    /** Gap-compressed identity: gap runs count once. */
    double
    gapCompressedIdentity() const
    {
        const int denom = matches + mismatches + gapOpens;
        return denom > 0 ? static_cast<double>(matches) / denom : 0.0;
    }

    /** Unit-cost edit distance implied by the path. */
    int
    editDistance() const
    {
        return mismatches + insertions + deletions;
    }
};

/**
 * Compute statistics for a path over its sequences, starting at the
 * traceback start cell (1-based coordinates as in AlignResult).
 */
template <typename CharT>
AlignmentStats
computeStats(const seq::Sequence<CharT> &query,
             const seq::Sequence<CharT> &reference,
             const std::vector<AlnOp> &ops, Coord start)
{
    AlignmentStats s;
    int qi = start.row;
    int rj = start.col;
    AlnOp prev = AlnOp::Match;
    for (const auto op : ops) {
        s.columns++;
        switch (op) {
          case AlnOp::Match:
            if (query[qi] == reference[rj])
                s.matches++;
            else
                s.mismatches++;
            qi++;
            rj++;
            break;
          case AlnOp::Ins:
            s.insertions++;
            if (prev != AlnOp::Ins)
                s.gapOpens++;
            qi++;
            break;
          case AlnOp::Del:
            s.deletions++;
            if (prev != AlnOp::Del)
                s.gapOpens++;
            rj++;
            break;
        }
        prev = op;
    }
    return s;
}

} // namespace dphls::core

#endif // DPHLS_CORE_ALIGNMENT_STATS_HH
