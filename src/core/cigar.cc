#include "core/cigar.hh"

#include <cctype>
#include <stdexcept>

namespace dphls::core {

std::string
toCigar(const std::vector<AlnOp> &ops)
{
    std::string out;
    size_t i = 0;
    while (i < ops.size()) {
        size_t j = i;
        while (j < ops.size() && ops[j] == ops[i])
            j++;
        out += std::to_string(j - i);
        out.push_back(alnOpChar(ops[i]));
        i = j;
    }
    return out;
}

std::vector<AlnOp>
fromCigar(const std::string &cigar)
{
    std::vector<AlnOp> ops;
    size_t i = 0;
    while (i < cigar.size()) {
        size_t len = 0;
        if (!std::isdigit(static_cast<unsigned char>(cigar[i])))
            throw std::invalid_argument("CIGAR: expected digit");
        while (i < cigar.size() &&
               std::isdigit(static_cast<unsigned char>(cigar[i]))) {
            len = len * 10 + static_cast<size_t>(cigar[i] - '0');
            i++;
        }
        if (i >= cigar.size())
            throw std::invalid_argument("CIGAR: trailing count");
        AlnOp op;
        switch (cigar[i]) {
          case 'M': op = AlnOp::Match; break;
          case 'I': op = AlnOp::Ins; break;
          case 'D': op = AlnOp::Del; break;
          default:
            throw std::invalid_argument("CIGAR: unknown op");
        }
        for (size_t k = 0; k < len; k++)
            ops.push_back(op);
        i++;
    }
    return ops;
}

} // namespace dphls::core
