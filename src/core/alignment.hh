/**
 * @file
 * Alignment results: operations, coordinates, paths and scores.
 *
 * An alignment path is the ordered list of matrix moves recovered by the
 * traceback walker, expressed as operations over the query/reference pair.
 */

#ifndef DPHLS_CORE_ALIGNMENT_HH
#define DPHLS_CORE_ALIGNMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace dphls::core {

/** One alignment operation (CIGAR-style). */
enum class AlnOp : uint8_t
{
    Match,  //!< diagonal move: query char aligned to reference char
    Ins,    //!< up move: query char aligned to a gap
    Del,    //!< left move: reference char aligned to a gap
};

/** One-letter code for an operation ('M', 'I', 'D'). */
char alnOpChar(AlnOp op);

/** A cell coordinate in the DP matrix (1-based; 0 = init row/column). */
struct Coord
{
    int row = 0;
    int col = 0;

    constexpr bool operator==(const Coord &) const = default;
};

/**
 * The outcome of one alignment: optimal score, the cell it was achieved
 * at, the cell the traceback stopped at, and the path between them in
 * start-to-end order (empty when the kernel has no traceback).
 */
template <typename ScoreT>
struct AlignResult
{
    ScoreT score{};
    Coord end;                //!< cell of the optimal score
    Coord start;              //!< cell where the traceback stopped
    std::vector<AlnOp> ops;   //!< path from start to end

    double
    scoreAsDouble() const
    {
        return ScoreTraits<ScoreT>::toDouble(score);
    }
};

/** Count query characters consumed by a path. */
int pathQuerySpan(const std::vector<AlnOp> &ops);

/** Count reference characters consumed by a path. */
int pathRefSpan(const std::vector<AlnOp> &ops);

/** Render a path as an ASCII op string ("MMIDM..."). */
std::string pathString(const std::vector<AlnOp> &ops);

} // namespace dphls::core

#endif // DPHLS_CORE_ALIGNMENT_HH
