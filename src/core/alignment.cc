#include "core/alignment.hh"

namespace dphls::core {

char
alnOpChar(AlnOp op)
{
    switch (op) {
      case AlnOp::Match: return 'M';
      case AlnOp::Ins: return 'I';
      case AlnOp::Del: return 'D';
    }
    return '?';
}

int
pathQuerySpan(const std::vector<AlnOp> &ops)
{
    int n = 0;
    for (auto op : ops) {
        if (op == AlnOp::Match || op == AlnOp::Ins)
            n++;
    }
    return n;
}

int
pathRefSpan(const std::vector<AlnOp> &ops)
{
    int n = 0;
    for (auto op : ops) {
        if (op == AlnOp::Match || op == AlnOp::Del)
            n++;
    }
    return n;
}

std::string
pathString(const std::vector<AlnOp> &ops)
{
    std::string s;
    s.reserve(ops.size());
    for (auto op : ops)
        s.push_back(alnOpChar(op));
    return s;
}

} // namespace dphls::core
