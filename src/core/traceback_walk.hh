/**
 * @file
 * The traceback finite-state-machine walker (paper Section 5.2).
 *
 * The walk logic is shared verbatim between the full-matrix reference
 * aligner and the systolic engine: only the pointer fetcher differs (full
 * matrix vs. banked, address-coalesced traceback memory). Start and stop
 * conditions follow the kernel's AlignmentKind:
 *
 *  - Global:     start at (qlen, rlen), stop at (0, 0);
 *  - Local:      start at the max cell, stop on the FSM's stop pointer;
 *  - SemiGlobal: start at the best cell of the bottom row, stop at row 0;
 *  - Overlap:    start at the best cell of the bottom row or right column,
 *                stop at row 0 or column 0.
 */

#ifndef DPHLS_CORE_TRACEBACK_WALK_HH
#define DPHLS_CORE_TRACEBACK_WALK_HH

#include <algorithm>
#include <vector>

#include "core/alignment.hh"
#include "core/types.hh"

namespace dphls::core {

/** Result of a traceback walk: path (start-to-end order) and start cell. */
struct TbWalkResult
{
    std::vector<AlnOp> ops;
    Coord start;
    int steps = 0; //!< FSM transitions taken (cycle-model input)
};

/**
 * Walk the traceback from @p from using kernel @p K's FSM, fetching
 * per-cell pointers via @p fetch (callable: TbPtr fetch(int row, int col)).
 */
template <typename K, typename PtrFetch>
TbWalkResult
walkTraceback(Coord from, PtrFetch &&fetch)
{
    TbWalkResult out;
    int i = from.row;
    int j = from.col;
    uint8_t state = K::tbStartState;

    // Hard bound: every FSM transition either consumes a matrix cell or
    // switches layers (at most nLayers-1 consecutive layer switches).
    const int max_steps = (i + j + 2) * (K::nLayers + 1) + 8;

    while (out.steps < max_steps) {
        const auto kind = K::alignKind;
        if (kind == AlignmentKind::Global) {
            if (i == 0 && j == 0)
                break;
            if (i == 0) {
                out.ops.push_back(AlnOp::Del);
                out.steps++;
                j--;
                continue;
            }
            if (j == 0) {
                out.ops.push_back(AlnOp::Ins);
                out.steps++;
                i--;
                continue;
            }
        } else if (kind == AlignmentKind::SemiGlobal) {
            if (i == 0)
                break;
            if (j == 0) {
                out.ops.push_back(AlnOp::Ins);
                out.steps++;
                i--;
                continue;
            }
        } else if (kind == AlignmentKind::Overlap) {
            if (i == 0 || j == 0)
                break;
        } else { // Local
            if (i == 0 || j == 0)
                break;
        }

        const TbPtr ptr = fetch(i, j);
        const TbStep step = K::tbStep(state, ptr);
        out.steps++;
        if (step.stop)
            break;
        switch (step.move) {
          case TbMove::Diag:
            out.ops.push_back(AlnOp::Match);
            i--;
            j--;
            break;
          case TbMove::Up:
            out.ops.push_back(AlnOp::Ins);
            i--;
            break;
          case TbMove::Left:
            out.ops.push_back(AlnOp::Del);
            j--;
            break;
          case TbMove::None:
            break;
        }
        state = step.nextState;
    }

    out.start = Coord{i, j};
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

} // namespace dphls::core

#endif // DPHLS_CORE_TRACEBACK_WALK_HH
