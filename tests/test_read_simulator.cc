/**
 * @file
 * Read-simulator regression coverage, anchored on the start-position
 * off-by-one: simulateRead used to draw starts from
 * [0, ref_len - readLength - 1], so the final read-length window of a
 * reference was never sampled. These tests lock the corrected
 * boundary distribution and the basic read/origin invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "seq/read_simulator.hh"

using namespace dphls;

namespace {

seq::ReadSimConfig
errorFree(int read_length)
{
    seq::ReadSimConfig cfg;
    cfg.readLength = read_length;
    cfg.errorRate = 0.0;
    return cfg;
}

} // namespace

TEST(ReadSimulator, LastWindowIsReachable)
{
    seq::Rng rng(7);
    const auto genome = seq::makeReferenceGenome(40, rng);
    const auto cfg = errorFree(10);
    const int max_start = genome.length() - cfg.readLength; // 30

    std::vector<int> hits(static_cast<size_t>(max_start) + 1, 0);
    for (int i = 0; i < 5000; i++) {
        const auto sim = seq::simulateRead(genome, cfg, rng);
        ASSERT_GE(sim.refStart, 0);
        ASSERT_LE(sim.refStart, max_start);
        hits[static_cast<size_t>(sim.refStart)]++;
    }
    // Every valid start — including the last window, the one the
    // off-by-one excluded — must be drawn. 5000 draws over 31 bins
    // miss a bin with probability < 1e-50 under a uniform draw, and
    // the RNG is seeded, so this is deterministic in practice.
    for (int s = 0; s <= max_start; s++)
        EXPECT_GT(hits[static_cast<size_t>(s)], 0) << "start " << s;
}

TEST(ReadSimulator, ErrorFreeReadMatchesItsWindow)
{
    seq::Rng rng(11);
    const auto genome = seq::makeReferenceGenome(300, rng);
    const auto cfg = errorFree(64);
    for (int i = 0; i < 50; i++) {
        const auto sim = seq::simulateRead(genome, cfg, rng);
        ASSERT_EQ(sim.refEnd, sim.refStart + cfg.readLength);
        ASSERT_EQ(sim.read.length(), cfg.readLength);
        for (int j = 0; j < cfg.readLength; j++) {
            EXPECT_EQ(sim.read[j].code,
                      genome[sim.refStart + j].code)
                << "read " << i << " base " << j;
        }
    }
}

TEST(ReadSimulator, ReadCoveringWholeReferenceStartsAtZero)
{
    seq::Rng rng(13);
    const auto genome = seq::makeReferenceGenome(32, rng);
    // readLength == ref_len: the only valid start is 0 (the old code
    // clamped max_start to 0 here too, but via the std::max guard, not
    // by the range being correct).
    const auto cfg = errorFree(32);
    for (int i = 0; i < 20; i++) {
        const auto sim = seq::simulateRead(genome, cfg, rng);
        EXPECT_EQ(sim.refStart, 0);
        EXPECT_EQ(sim.refEnd, 32);
    }
}

TEST(ReadSimulator, ErroredReadsStayNearConfiguredLength)
{
    seq::Rng rng(17);
    const auto genome = seq::makeReferenceGenome(2000, rng);
    seq::ReadSimConfig cfg;
    cfg.readLength = 200;
    cfg.errorRate = 0.30;
    for (int i = 0; i < 20; i++) {
        const auto sim = seq::simulateRead(genome, cfg, rng);
        // Insertions and deletions shift the length; 30% error keeps it
        // within a loose band around the target.
        EXPECT_GT(sim.read.length(), 100);
        EXPECT_LT(sim.read.length(), 320);
        EXPECT_LE(sim.refEnd, genome.length());
    }
}
