/**
 * @file
 * Resource/frequency model tests: the structural scaling behaviors the
 * paper demonstrates in Fig. 3 and the frequency tiers of Table 2.
 */

#include <gtest/gtest.h>

#include "kernels/all.hh"
#include "kernels/registry.hh"
#include "model/frequency_model.hh"
#include "model/resource_model.hh"

using namespace dphls;
using namespace dphls::model;

namespace {

KernelHwDesc
descFor(int id)
{
    return kernels::kernelById(id).hw;
}

} // namespace

TEST(ResourceModel, LutAndFfScaleLinearlyWithNpe)
{
    // Fig. 3B/E: LUT and FF utilization scale perfectly with NPE.
    const auto desc = descFor(1);
    const auto r8 = estimateBlock(desc, 8);
    const auto r16 = estimateBlock(desc, 16);
    const auto r32 = estimateBlock(desc, 32);
    EXPECT_NEAR((r16.lut - r8.lut) / (r32.lut - r16.lut), 0.5, 0.05);
    EXPECT_NEAR((r16.ff - r8.ff) / (r32.ff - r16.ff), 0.5, 0.05);
}

TEST(ResourceModel, BlocksScaleEverythingLinearly)
{
    // Fig. 3C/F: every resource scales linearly with NB (identical
    // replicated blocks).
    const auto desc = descFor(9);
    const auto one = estimateBlock(desc, 32);
    for (const int nb : {2, 4, 8, 16}) {
        const auto k = estimateKernel(desc, 32, nb);
        EXPECT_NEAR(k.lut, one.lut * nb + 900.0, 1.0);
        EXPECT_NEAR(k.ff, one.ff * nb + 1400.0, 1.0);
        EXPECT_NEAR(k.bram36, one.bram36 * nb, 1e-9);
        EXPECT_NEAR(k.dsp, one.dsp * nb, 1e-9);
    }
}

TEST(ResourceModel, DspFlatForGlobalLinearScalingForDtw)
{
    // Fig. 3B vs 3E: kernel #1's DSPs are fixed traceback-address logic;
    // kernel #9's DSPs live inside every PE.
    const auto k1 = descFor(1);
    const auto k9 = descFor(9);
    EXPECT_EQ(estimateBlock(k1, 8).dsp, estimateBlock(k1, 64).dsp);
    EXPECT_GT(estimateBlock(k9, 64).dsp, estimateBlock(k9, 8).dsp * 6);
}

TEST(ResourceModel, BramDropsAtHighNpeViaLutram)
{
    // Fig. 3 (Section 7.2): at NPE=64 the per-bank depth falls below the
    // LUTRAM threshold and BRAM usage drops instead of growing.
    const auto desc = descFor(1);
    const auto r32 = estimateBlock(desc, 32);
    const auto r64 = estimateBlock(desc, 64);
    EXPECT_LT(r64.bram36, r32.bram36);
    // The banks moved into LUTs: LUT growth outpaces the linear term.
    EXPECT_GT(r64.lut, 2.0 * r32.lut * 0.95);
}

TEST(ResourceModel, NoTracebackKernelsUseMinimalBram)
{
    // Table 2: kernels #12 and #14 (no traceback) have the lowest BRAM.
    const auto with_tb = estimateBlock(descFor(4), 32).bram36;
    const auto without_tb = estimateBlock(descFor(12), 32).bram36;
    EXPECT_LT(without_tb, with_tb / 2);
}

TEST(ResourceModel, WiderPointersNeedMoreBram)
{
    // Two-piece affine (7-bit pointers) vs linear (2-bit).
    EXPECT_GT(estimateBlock(descFor(5), 32).bram36,
              estimateBlock(descFor(1), 32).bram36);
}

TEST(ResourceModel, ProteinTableAddsBram)
{
    // Kernel #15's 20x20 BLOSUM adds substitution-table BRAM (Table 2).
    EXPECT_GT(estimateBlock(descFor(15), 32).bram36,
              estimateBlock(descFor(3), 32).bram36);
}

TEST(ResourceModel, UtilizationPercentagesAgainstXcvu9p)
{
    const auto dev = FpgaDevice::xcvu9p();
    const auto u = dev.utilization(DeviceResources{11822.4, 23644.8, 21.6,
                                                   68.4});
    EXPECT_NEAR(u.lutPct, 1.0, 1e-9);
    EXPECT_NEAR(u.ffPct, 1.0, 1e-9);
    EXPECT_NEAR(u.bramPct, 1.0, 1e-9);
    EXPECT_NEAR(u.dspPct, 1.0, 1e-9);
}

TEST(ResourceModel, FitsChecksEveryResource)
{
    const auto dev = FpgaDevice::xcvu9p();
    EXPECT_TRUE(dev.fits({1000, 1000, 10, 10}));
    EXPECT_FALSE(dev.fits({2e6, 0, 0, 0}));
    EXPECT_FALSE(dev.fits({0, 3e6, 0, 0}));
    EXPECT_FALSE(dev.fits({0, 0, 3000, 0}));
    EXPECT_FALSE(dev.fits({0, 0, 0, 7000}));
}

TEST(ResourceModel, MaxParallelFitFindsNontrivialConfig)
{
    const auto dev = FpgaDevice::xcvu9p();
    const auto fit = maxParallelFit(descFor(1), 32, dev);
    EXPECT_GE(fit.nb * fit.nk, 32); // small kernel: many blocks fit
    EXPECT_TRUE(dev.fits(estimateDesign(descFor(1), 32, fit.nb, fit.nk)));
}

TEST(ResourceModel, DspHeavyKernelFitsFewerBlocks)
{
    const auto dev = FpgaDevice::xcvu9p();
    const auto small = maxParallelFit(descFor(1), 32, dev);
    const auto heavy = maxParallelFit(descFor(8), 32, dev);
    EXPECT_LT(heavy.nb * heavy.nk, small.nb * small.nk);
}

TEST(FrequencyModel, TiersMatchPaperTable2)
{
    // Every kernel's modeled frequency equals the paper's achieved
    // frequency tier.
    for (const auto &k : kernels::registry()) {
        EXPECT_NEAR(k.fmaxMhz, k.paper.fmaxMhz, 0.1)
            << "kernel #" << k.id << " " << k.name;
    }
}

TEST(FrequencyModel, DeeperCriticalPathsAreSlower)
{
    core::PeProfile shallow;
    shallow.critPathLevels = 3;
    core::PeProfile deep;
    deep.critPathLevels = 12;
    EXPECT_GT(frequencyMhz(shallow), frequencyMhz(deep));
    EXPECT_EQ(frequencyMhz(shallow), targetFrequencyMhz);
}

TEST(ResourceModel, Table2UtilizationWithinBand)
{
    // Modeled 32-PE block utilization should land near the paper's
    // Table 2 values: same order of magnitude and ordering-preserving.
    const auto dev = FpgaDevice::xcvu9p();
    for (const auto &k : kernels::registry()) {
        const auto u = dev.utilization(estimateBlock(k.hw, 32));
        EXPECT_GT(u.lutPct, k.paper.lutPct * 0.4) << "kernel " << k.id;
        EXPECT_LT(u.lutPct, k.paper.lutPct * 2.5) << "kernel " << k.id;
        EXPECT_GT(u.dspPct, k.paper.dspPct * 0.4) << "kernel " << k.id;
        EXPECT_LT(u.dspPct, k.paper.dspPct * 2.5) << "kernel " << k.id;
    }
}

TEST(ResourceModel, DspOrderingMatchesPaper)
{
    // #8 >> #9 >> everything else (Table 2).
    const auto dev = FpgaDevice::xcvu9p();
    const auto dsp = [&](int id) {
        return dev.utilization(estimateBlock(descFor(id), 32)).dspPct;
    };
    EXPECT_GT(dsp(8), dsp(9) * 5);
    EXPECT_GT(dsp(9), dsp(1) * 10);
}
