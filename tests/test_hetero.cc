/**
 * @file
 * Tests for heterogeneous kernel channels (paper Section 4 step 5: NK
 * heterogeneous kernels linked in one design).
 */

#include <gtest/gtest.h>

#include "host/hetero.hh"
#include "kernels/global_affine.hh"
#include "kernels/local_linear.hh"
#include "model/resource_model.hh"
#include "seq/read_simulator.hh"

using namespace dphls;

namespace {

std::vector<host::AlignmentJob<seq::DnaChar>>
makeJobs(int n, uint64_t seed)
{
    std::vector<host::AlignmentJob<seq::DnaChar>> jobs;
    seq::Rng rng(seed);
    for (int i = 0; i < n; i++) {
        host::AlignmentJob<seq::DnaChar> j;
        j.query = seq::randomDna(80, rng);
        j.reference = seq::mutateDna(j.query, 0.1, 0.05, rng);
        jobs.push_back(std::move(j));
    }
    return jobs;
}

host::DeviceConfig
cfgOf(int nb, int nk)
{
    host::DeviceConfig c;
    c.npe = 8;
    c.nb = nb;
    c.nk = nk;
    return c;
}

} // namespace

TEST(HeteroDevice, ResultsMatchDedicatedDevices)
{
    const auto jobs_g = makeJobs(20, 91);
    const auto jobs_l = makeJobs(20, 92);

    host::HeteroDevice<kernels::GlobalAffine, kernels::LocalLinear> hetero(
        cfgOf(2, 1), cfgOf(2, 1));
    std::vector<core::AlignResult<int32_t>> res_g, res_l;
    hetero.run(jobs_g, jobs_l, &res_g, &res_l);

    host::DeviceModel<kernels::GlobalAffine> solo_g(cfgOf(2, 1));
    host::DeviceModel<kernels::LocalLinear> solo_l(cfgOf(2, 1));
    std::vector<core::AlignResult<int32_t>> want_g, want_l;
    solo_g.run(jobs_g, &want_g);
    solo_l.run(jobs_l, &want_l);

    ASSERT_EQ(res_g.size(), want_g.size());
    ASSERT_EQ(res_l.size(), want_l.size());
    for (size_t i = 0; i < res_g.size(); i++) {
        EXPECT_EQ(res_g[i].score, want_g[i].score);
        EXPECT_EQ(res_g[i].ops, want_g[i].ops);
    }
    for (size_t i = 0; i < res_l.size(); i++)
        EXPECT_EQ(res_l[i].score, want_l[i].score);
}

TEST(HeteroDevice, MakespanIsMaxOfPartitions)
{
    const auto jobs_g = makeJobs(40, 93);
    const auto jobs_l = makeJobs(4, 94);
    host::HeteroDevice<kernels::GlobalAffine, kernels::LocalLinear> hetero(
        cfgOf(2, 1), cfgOf(2, 1));
    const auto stats = hetero.run(jobs_g, jobs_l);
    EXPECT_EQ(stats.makespanCycles,
              std::max(stats.first.makespanCycles,
                       stats.second.makespanCycles));
    EXPECT_GT(stats.first.makespanCycles, stats.second.makespanCycles);
}

TEST(HeteroDevice, CombinedThroughputExceedsEitherPartition)
{
    const auto jobs_g = makeJobs(32, 95);
    const auto jobs_l = makeJobs(32, 96);
    host::HeteroDevice<kernels::GlobalAffine, kernels::LocalLinear> hetero(
        cfgOf(2, 2), cfgOf(2, 2));
    const auto stats = hetero.run(jobs_g, jobs_l);
    EXPECT_GT(stats.alignsPerSec, stats.first.alignsPerSec);
    EXPECT_GT(stats.alignsPerSec, stats.second.alignsPerSec);
}

TEST(HeteroDevice, CombinedResourcesFitTheDevice)
{
    host::HeteroDevice<kernels::GlobalAffine, kernels::LocalLinear> hetero(
        cfgOf(8, 2), cfgOf(8, 2));
    const auto r = hetero.resources(
        model::kernelHwDesc<kernels::GlobalAffine>(256, 256, 2),
        model::kernelHwDesc<kernels::LocalLinear>(256, 256, 1));
    EXPECT_TRUE(model::FpgaDevice::xcvu9p().fits(r));
    EXPECT_GT(r.lut, 0.0);
}
