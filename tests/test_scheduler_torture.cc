/**
 * @file
 * Scheduler torture suite for the priority/deadline dispatch queues.
 *
 * Randomized interleavings of submit / cancel / wait across priorities,
 * deadlines and producer threads — with shapes drawn from every
 * registered kernel's alphabet — asserting the invariants the
 * StreamPipeline's dispatch layer must never lose:
 *
 *  - no lost results: a ticket that was not cancelled completes with
 *    every job computed (completed mask all ones), and its outputs are
 *    bit-identical to a blocking golden run of the same jobs;
 *  - no duplicated or post-cancel results: per ticket,
 *    alignments + cancelled == jobs, the completed mask has exactly
 *    `alignments` ones, and dropped jobs hold default results with
 *    zero cycles;
 *  - accounting closure: per-backend stats sections sum to each
 *    ticket's totals, and ticket totals sum to the epoch totals across
 *    every submission.
 *
 * Plus the transparency differential: with priorities assigned but a
 * single worker and equal priorities, result sets, CIGARs and per-job
 * cycles are bit-identical to the default FIFO path for all 15 kernels
 * — the priority machinery must be invisible when it has nothing to
 * reorder.
 *
 * The staged round re-runs the randomized interleavings with the
 * stage pipeline and preemption enabled and a chaos preemptor thread
 * submitting top-priority tickets that interrupt in-flight shards at
 * stage boundaries — every invariant above must survive arbitrary
 * preempt/resume/cancel interleavings (a preempted shard's remainder
 * re-queues within the same ticket, so ticket- and epoch-level closure
 * are unchanged).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cigar.hh"
#include "helpers.hh"
#include "host/stream_pipeline.hh"
#include "kernels/all.hh"

using namespace dphls;

namespace {

/** Small random jobs over kernel @p K's alphabet (shapes 0..max_len). */
template <typename K>
std::vector<typename host::StreamPipeline<K>::Job>
tortureJobs(seq::Rng &rng, int count, int max_len)
{
    std::vector<typename host::StreamPipeline<K>::Job> jobs;
    for (int i = 0; i < count; i++) {
        const int qlen = static_cast<int>(
            rng.below(static_cast<uint64_t>(max_len + 1)));
        const int rlen = static_cast<int>(
            rng.below(static_cast<uint64_t>(max_len + 1)));
        auto p = test::shapedPair<K>(rng, qlen, rlen);
        jobs.push_back({std::move(p.query), std::move(p.reference)});
    }
    return jobs;
}

/** Sum of a stats' per-backend section fields, for closure checks. */
struct SectionSums
{
    int alignments = 0;
    int cancelled = 0;
    uint64_t totalCycles = 0;
};

SectionSums
sumSections(const host::BatchStats &stats)
{
    SectionSums s;
    for (const auto &b : stats.backends) {
        s.alignments += b.alignments;
        s.cancelled += b.cancelled;
        s.totalCycles += b.totalCycles;
    }
    return s;
}

/**
 * One torture round for kernel @p K: several producer threads submit
 * small batches with random priorities and deadlines, randomly wait on
 * or cancel their tickets, while a chaos thread cancels random tickets
 * from the side. Afterwards every invariant above is checked against a
 * blocking golden pipeline with the same configuration.
 */
template <typename K>
void
tortureKernel(uint64_t seed, bool staged = false)
{
    using Pipeline = host::StreamPipeline<K>;
    using Ticket = typename Pipeline::Ticket;

    host::BatchConfig cfg;
    cfg.npe = 4;
    cfg.nb = 2;
    cfg.nk = 2;
    cfg.threads = 3;
    cfg.laneWidth = 2;
    cfg.bandWidth = 8;
    cfg.maxQueryLength = 64;
    cfg.maxReferenceLength = 64;
    cfg.cpuFallback = true;
    cfg.cpuFloorLen = 6; // some tiny jobs route to the CPU backend
    cfg.cpuModeledCellsPerSec = 1e9;
    cfg.collectPathStats = false;
    cfg.stagePipeline = staged;
    cfg.preemption = staged;
    cfg.stageFifoDepth = 2;
    Pipeline pipeline(cfg);
    Pipeline golden(cfg); // blocking reference runs, same config

    constexpr int producers = 3;
    constexpr int batches_per_producer = 8;

    std::mutex ticketsMutex;
    std::vector<Ticket> tickets;
    std::atomic<int> submitted_jobs{0};
    std::atomic<int> callback_fires{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; p++) {
        threads.emplace_back([&, p] {
            seq::Rng rng(seed + static_cast<uint64_t>(p) * 7919);
            for (int b = 0; b < batches_per_producer; b++) {
                // Staged rounds submit bigger shards so the chaos
                // preemptor has something in flight to interrupt.
                const int count = staged
                    ? 4 + static_cast<int>(rng.below(12))
                    : 1 + static_cast<int>(rng.below(4));
                auto jobs = tortureJobs<K>(rng, count, 40);
                submitted_jobs += count;

                host::TicketOptions opt;
                opt.priority = static_cast<int>(rng.below(4));
                switch (rng.below(3)) {
                  case 0:
                    break; // no deadline
                  case 1:   // already (or almost) expired
                    opt = host::TicketOptions::afterMs(opt.priority,
                                                       0.01);
                    break;
                  default: // comfortably in the future
                    opt = host::TicketOptions::afterMs(opt.priority,
                                                       60000.0);
                    break;
                }

                auto ticket = pipeline.submit(
                    std::move(jobs), std::move(opt),
                    [&callback_fires](host::BatchTicket<K> &) {
                        callback_fires++;
                    });
                {
                    std::lock_guard lock(ticketsMutex);
                    tickets.push_back(ticket);
                }
                switch (rng.below(4)) {
                  case 0:
                    ticket->cancel(); // cancel immediately
                    break;
                  case 1:
                    std::this_thread::yield(); // cancel mid-flight
                    ticket->cancel();
                    break;
                  case 2:
                    ticket->wait(); // wait inline, racing the others
                    break;
                  default:
                    break; // fire and forget
                }
            }
        });
    }
    // Chaos canceller: cancels random tickets (its own double-cancels
    // included) while producers are mid-submission.
    std::atomic<bool> stop{false};
    std::thread chaos([&] {
        seq::Rng rng(seed ^ 0xc4a5u);
        while (!stop.load()) {
            Ticket victim;
            {
                std::lock_guard lock(ticketsMutex);
                if (!tickets.empty()) {
                    victim = tickets[static_cast<size_t>(rng.below(
                        static_cast<uint64_t>(tickets.size())))];
                }
            }
            if (victim && rng.below(2) == 0)
                victim->cancel();
            std::this_thread::yield();
        }
    });
    // Chaos preemptor (staged rounds): top-priority one-job tickets
    // that land above every producer class, requesting the token of
    // whatever staged shard holds the slot; waiting each one out keeps
    // the stream paced to the pipeline instead of flooding the queue.
    std::thread preemptor;
    if (staged) {
        preemptor = std::thread([&] {
            seq::Rng rng(seed ^ 0x9e37u);
            while (!stop.load()) {
                auto jobs = tortureJobs<K>(rng, 1, 24);
                submitted_jobs += 1;
                host::TicketOptions opt;
                opt.priority = 100;
                auto t = pipeline.submit(
                    std::move(jobs), std::move(opt),
                    [&callback_fires](host::BatchTicket<K> &) {
                        callback_fires++;
                    });
                {
                    std::lock_guard lock(ticketsMutex);
                    tickets.push_back(t);
                }
                t->wait();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    stop = true;
    chaos.join();
    if (preemptor.joinable())
        preemptor.join();

    // Every ticket reaches a terminal state — cancel() never strands a
    // waiter.
    int total_alignments = 0;
    int total_cancelled = 0;
    for (const auto &t : tickets) {
        t->wait();
        ASSERT_TRUE(t->done());
        const auto &stats = t->stats();
        const int n = static_cast<int>(t->jobs().size());
        const std::string ctx =
            std::string(K::name) + " ticket prio " +
            std::to_string(t->options().priority);

        // Exactly one accounting bucket per job: computed or cancelled.
        EXPECT_EQ(stats.alignments + stats.cancelled, n) << ctx;
        int completed_count = 0;
        for (int i = 0; i < n; i++) {
            if (t->completed()[static_cast<size_t>(i)]) {
                completed_count++;
                EXPECT_GT(t->cycles()[static_cast<size_t>(i)], 0u)
                    << ctx << " job " << i;
            } else {
                // No post-cancel results: dropped slots stay default.
                EXPECT_EQ(t->cycles()[static_cast<size_t>(i)], 0u)
                    << ctx << " job " << i;
                EXPECT_TRUE(
                    t->results()[static_cast<size_t>(i)].ops.empty())
                    << ctx << " job " << i;
            }
        }
        EXPECT_EQ(completed_count, stats.alignments) << ctx;
        if (!t->cancelled()) {
            EXPECT_EQ(completed_count, n) << ctx << " lost results";
        }

        // Per-backend sections close over the ticket totals.
        const SectionSums sums = sumSections(stats);
        EXPECT_EQ(sums.alignments, stats.alignments) << ctx;
        EXPECT_EQ(sums.cancelled, stats.cancelled) << ctx;
        EXPECT_EQ(sums.totalCycles, stats.totalCycles) << ctx;
        uint64_t per_job = 0;
        for (const auto c : t->cycles())
            per_job += c;
        EXPECT_EQ(per_job, stats.totalCycles) << ctx;

        // Fully-completed tickets are bit-identical to a blocking
        // golden run of the same jobs (no duplicated, reordered or
        // corrupted outputs).
        if (!t->cancelled()) {
            std::vector<typename Pipeline::Result> want;
            std::vector<uint64_t> want_cycles;
            golden.runAll(t->jobs(), &want, &want_cycles);
            ASSERT_EQ(want.size(), t->results().size()) << ctx;
            EXPECT_EQ(want_cycles, t->cycles()) << ctx;
            for (size_t i = 0; i < want.size(); i++) {
                EXPECT_EQ(want[i].score, t->results()[i].score)
                    << ctx << " job " << i;
                EXPECT_EQ(core::toCigar(want[i].ops),
                          core::toCigar(t->results()[i].ops))
                    << ctx << " job " << i;
            }
        }
        total_alignments += stats.alignments;
        total_cancelled += stats.cancelled;
    }

    // Epoch closure: every submitted job landed in exactly one bucket,
    // and every ticket fired its callback exactly once.
    EXPECT_EQ(total_alignments + total_cancelled, submitted_jobs.load());
    EXPECT_EQ(callback_fires.load(),
              static_cast<int>(tickets.size()));
    EXPECT_EQ(pipeline.drain().alignments, total_alignments);
}

/**
 * The transparency differential: priorities assigned (one equal class)
 * with a single worker must leave results, CIGARs, per-job cycles and
 * channel accounting bit-identical to the default FIFO path.
 */
template <typename K>
void
priorityTransparentWhenUnused()
{
    using Pipeline = host::StreamPipeline<K>;
    seq::Rng rng(static_cast<uint64_t>(K::kernelId) * 271 + 17);
    const std::pair<int, int> shapes[] = {
        {0, 0},  {1, 33},  {33, 1},  {17, 29}, {31, 32},
        {32, 31}, {48, 48}, {57, 63}, {9, 60},  {62, 21},
    };
    std::vector<typename Pipeline::Job> jobs;
    for (const auto &[qlen, rlen] : shapes) {
        auto p = test::shapedPair<K>(rng, qlen, rlen);
        jobs.push_back({std::move(p.query), std::move(p.reference)});
    }

    host::BatchConfig cfg;
    cfg.npe = 8;
    cfg.nb = 2;
    cfg.nk = 2;
    cfg.threads = 1; // single worker: dispatch order fully determined
    cfg.laneWidth = 4;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 64;
    cfg.maxReferenceLength = 64;

    Pipeline fifo(cfg);
    std::vector<typename Pipeline::Result> want, got, got2;
    std::vector<uint64_t> want_cycles, got_cycles, got_cycles2;
    const auto want_stats = fifo.runAll(jobs, &want, &want_cycles);

    // Same jobs as two equal-priority tickets through the priority
    // machinery.
    Pipeline prio(cfg);
    host::TicketOptions opt;
    opt.priority = 2;
    opt.tag = "transparent";
    const size_t split = jobs.size() / 2;
    std::vector<typename Pipeline::Job> first(jobs.begin(),
                                              jobs.begin() + split);
    std::vector<typename Pipeline::Job> second(jobs.begin() + split,
                                               jobs.end());
    auto t1 = prio.submit(std::move(first), opt);
    auto t2 = prio.submit(std::move(second), opt);
    const auto s1 = prio.collect(t1, &got, &got_cycles);
    const auto s2 = prio.collect(t2, &got2, &got_cycles2);
    got.insert(got.end(), std::make_move_iterator(got2.begin()),
               std::make_move_iterator(got2.end()));
    got_cycles.insert(got_cycles.end(), got_cycles2.begin(),
                      got_cycles2.end());

    ASSERT_EQ(want.size(), got.size()) << K::name;
    ASSERT_EQ(want_cycles, got_cycles) << K::name;
    for (size_t i = 0; i < want.size(); i++) {
        EXPECT_EQ(want[i].score, got[i].score) << K::name << " " << i;
        EXPECT_EQ(want[i].start, got[i].start) << K::name << " " << i;
        EXPECT_EQ(want[i].end, got[i].end) << K::name << " " << i;
        EXPECT_EQ(core::toCigar(want[i].ops), core::toCigar(got[i].ops))
            << K::name << " " << i;
    }
    EXPECT_EQ(s1.alignments + s2.alignments, want_stats.alignments)
        << K::name;
    EXPECT_EQ(s1.totalCycles + s2.totalCycles, want_stats.totalCycles)
        << K::name;
    EXPECT_EQ(s1.cancelled + s2.cancelled, 0) << K::name;
}

} // namespace

TEST(SchedulerTorture, RandomizedSubmitCancelWaitAllKernels)
{
    tortureKernel<kernels::GlobalLinear>(11);
    tortureKernel<kernels::GlobalAffine>(12);
    tortureKernel<kernels::LocalLinear>(13);
    tortureKernel<kernels::LocalAffine>(14);
    tortureKernel<kernels::GlobalTwoPiece>(15);
    tortureKernel<kernels::Overlap>(16);
    tortureKernel<kernels::SemiGlobal>(17);
    tortureKernel<kernels::ProfileAlignment>(18);
    tortureKernel<kernels::Dtw>(19);
    tortureKernel<kernels::Viterbi>(20);
    tortureKernel<kernels::BandedGlobalLinear>(21);
    tortureKernel<kernels::BandedLocalAffine>(22);
    tortureKernel<kernels::BandedGlobalTwoPiece>(23);
    tortureKernel<kernels::Sdtw>(24);
    tortureKernel<kernels::ProteinLocal>(25);
}

TEST(SchedulerTorture, StagedPreemptInterleavingsAllKernels)
{
    tortureKernel<kernels::GlobalLinear>(111, true);
    tortureKernel<kernels::GlobalAffine>(112, true);
    tortureKernel<kernels::LocalLinear>(113, true);
    tortureKernel<kernels::LocalAffine>(114, true);
    tortureKernel<kernels::GlobalTwoPiece>(115, true);
    tortureKernel<kernels::Overlap>(116, true);
    tortureKernel<kernels::SemiGlobal>(117, true);
    tortureKernel<kernels::ProfileAlignment>(118, true);
    tortureKernel<kernels::Dtw>(119, true);
    tortureKernel<kernels::Viterbi>(120, true);
    tortureKernel<kernels::BandedGlobalLinear>(121, true);
    tortureKernel<kernels::BandedLocalAffine>(122, true);
    tortureKernel<kernels::BandedGlobalTwoPiece>(123, true);
    tortureKernel<kernels::Sdtw>(124, true);
    tortureKernel<kernels::ProteinLocal>(125, true);
}

/**
 * Anti-starvation aging: on a single worker with a saturating queue of
 * high-priority interactive tickets, a bulk (priority 0) ticket queued
 * *first* must complete within the first agingEvery pops — and with
 * aging off, the same workload serves it dead last.
 */
TEST(SchedulerTorture, AgingBoundsBulkStarvation)
{
    using K = kernels::GlobalLinear;
    using Pipeline = host::StreamPipeline<K>;
    constexpr int interactive_count = 8;
    constexpr int aging_every = 3;

    for (const int aging : {aging_every, 0}) {
        host::BatchConfig cfg;
        cfg.npe = 4;
        cfg.nb = 1;
        cfg.nk = 1;
        cfg.threads = 1; // serial pops: completion order == pop order
        cfg.bandWidth = 8;
        cfg.maxQueryLength = 64;
        cfg.maxReferenceLength = 64;
        cfg.agingEvery = aging;
        Pipeline pipeline(cfg);
        pipeline.pause(); // queue everything before the first pop

        std::mutex orderMutex;
        std::vector<int> completionOrder; // ticket ids, completion order
        auto recorder = [&](int id) {
            return [&, id](host::BatchTicket<K> &) {
                std::lock_guard lock(orderMutex);
                completionOrder.push_back(id);
            };
        };

        seq::Rng rng(4242);
        std::vector<typename Pipeline::Ticket> tickets;
        auto oneJob = [&] {
            auto p = test::shapedPair<K>(rng, 24, 24);
            std::vector<typename Pipeline::Job> jobs;
            jobs.push_back({std::move(p.query), std::move(p.reference)});
            return jobs;
        };

        host::TicketOptions bulk;
        bulk.priority = 0;
        tickets.push_back(pipeline.submit(oneJob(), bulk, recorder(0)));
        for (int i = 1; i <= interactive_count; i++) {
            host::TicketOptions interactive;
            interactive.priority = 10;
            tickets.push_back(
                pipeline.submit(oneJob(), interactive, recorder(i)));
        }

        pipeline.resume();
        for (const auto &t : tickets)
            t->wait();
        ASSERT_EQ(completionOrder.size(), tickets.size());

        size_t bulkPos = completionOrder.size();
        for (size_t i = 0; i < completionOrder.size(); i++) {
            if (completionOrder[i] == 0)
                bulkPos = i;
        }
        ASSERT_LT(bulkPos, completionOrder.size());
        if (aging > 0) {
            // The aging pop (every aging_every-th) must have served the
            // oldest queued shard ahead of the interactive backlog.
            EXPECT_LT(bulkPos, static_cast<size_t>(aging))
                << "bulk ticket starved past the aging bound";
        } else {
            EXPECT_EQ(bulkPos, completionOrder.size() - 1)
                << "strict priority order should serve bulk last";
        }
        EXPECT_EQ(pipeline.drain().alignments, interactive_count + 1);
    }
}

/**
 * Submit-time rejection accounting: jobs refused by
 * estimateCompletionSeconds/submit (undispatchable shape) must appear
 * in *no* accounting bucket, while accepted work — including a
 * cancelled ticket — still closes the epoch as alignments + cancelled.
 */
TEST(SchedulerTorture, SubmitRejectsStayOutsideEpochAccounting)
{
    using K = kernels::GlobalLinear;
    using Pipeline = host::StreamPipeline<K>;

    host::BatchConfig cfg;
    cfg.npe = 4;
    cfg.nb = 1;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.bandWidth = 8;
    cfg.maxQueryLength = 32; // undispatchable above this, no fallback
    cfg.maxReferenceLength = 32;
    cfg.cpuFallback = false;
    Pipeline pipeline(cfg);

    seq::Rng rng(977);
    auto jobsOf = [&](int count, int len) {
        std::vector<typename Pipeline::Job> jobs;
        for (int i = 0; i < count; i++) {
            auto p = test::shapedPair<K>(rng, len, len);
            jobs.push_back({std::move(p.query), std::move(p.reference)});
        }
        return jobs;
    };

    // The admission probe and submit must agree on the reject, and a
    // rejected batch must not touch the backlog counters.
    const auto oversized = jobsOf(2, 48);
    EXPECT_THROW((void)pipeline.estimateCompletionSeconds(oversized),
                 std::invalid_argument);
    auto copy = oversized;
    EXPECT_THROW((void)pipeline.submit(std::move(copy)),
                 std::invalid_argument);

    // A dispatchable batch still has a positive modeled estimate.
    const auto accepted_jobs = jobsOf(6, 24);
    EXPECT_GT(pipeline.estimateCompletionSeconds(accepted_jobs), 0.0);

    pipeline.pause(); // so the cancel below lands before execution
    auto t1 = pipeline.submit(jobsOf(6, 24));
    auto t2 = pipeline.submit(jobsOf(4, 20));
    t2->cancel();
    pipeline.resume();
    t1->wait();
    t2->wait();

    // Epoch closure: 6 completed + 4 cancelled-or-completed, and the 2
    // rejected jobs in neither bucket.
    const auto epoch = pipeline.drain();
    EXPECT_EQ(epoch.alignments, t1->stats().alignments +
                                    t2->stats().alignments);
    EXPECT_EQ(epoch.cancelled, t2->stats().cancelled);
    EXPECT_EQ(t1->stats().alignments, 6);
    EXPECT_EQ(t2->stats().alignments + t2->stats().cancelled, 4);
    EXPECT_EQ(epoch.alignments + epoch.cancelled, 10);
    const SectionSums sums = sumSections(epoch);
    EXPECT_EQ(sums.alignments, epoch.alignments);
    EXPECT_EQ(sums.cancelled, epoch.cancelled);
    EXPECT_EQ(sums.totalCycles, epoch.totalCycles);
}

TEST(SchedulerTorture, PriorityMachineryTransparentWhenUnusedAllKernels)
{
    priorityTransparentWhenUnused<kernels::GlobalLinear>();
    priorityTransparentWhenUnused<kernels::GlobalAffine>();
    priorityTransparentWhenUnused<kernels::LocalLinear>();
    priorityTransparentWhenUnused<kernels::LocalAffine>();
    priorityTransparentWhenUnused<kernels::GlobalTwoPiece>();
    priorityTransparentWhenUnused<kernels::Overlap>();
    priorityTransparentWhenUnused<kernels::SemiGlobal>();
    priorityTransparentWhenUnused<kernels::ProfileAlignment>();
    priorityTransparentWhenUnused<kernels::Dtw>();
    priorityTransparentWhenUnused<kernels::Viterbi>();
    priorityTransparentWhenUnused<kernels::BandedGlobalLinear>();
    priorityTransparentWhenUnused<kernels::BandedLocalAffine>();
    priorityTransparentWhenUnused<kernels::BandedGlobalTwoPiece>();
    priorityTransparentWhenUnused<kernels::Sdtw>();
    priorityTransparentWhenUnused<kernels::ProteinLocal>();
}
