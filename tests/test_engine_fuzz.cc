/**
 * @file
 * Randomized fuzz harness for the central back-end invariant: engine ==
 * full-matrix reference, with *randomized configurations* (NPE, band
 * width, sequence shapes) rather than the fixed sweeps of
 * test_engine_equivalence.cc. Each seed drives dozens of comparisons
 * across four representative kernels (one per scoring family).
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "reference/matrix_aligner.hh"
#include "systolic/engine.hh"

using namespace dphls;

namespace {

template <typename K>
void
fuzzOne(seq::Rng &rng, const seq::Sequence<typename K::CharT> &q,
        const seq::Sequence<typename K::CharT> &r)
{
    const int npe = 1 + static_cast<int>(rng.below(70));
    const int band = 1 + static_cast<int>(rng.below(48));

    ref::MatrixAligner<K> gold_aligner(K::defaultParams(), band);
    const auto gold = gold_aligner.align(q, r);

    sim::EngineConfig cfg;
    cfg.numPe = npe;
    cfg.bandWidth = band;
    cfg.maxQueryLength = 4096;
    cfg.maxReferenceLength = 4096;
    sim::SystolicAligner<K> engine(cfg);
    const auto got = engine.align(q, r);

    ASSERT_EQ(core::ScoreTraits<typename K::ScoreT>::toDouble(gold.score),
              core::ScoreTraits<typename K::ScoreT>::toDouble(got.score))
        << K::name << " npe=" << npe << " band=" << band
        << " qlen=" << q.length() << " rlen=" << r.length();
    ASSERT_EQ(gold.end, got.end) << K::name << " npe=" << npe;
    ASSERT_EQ(gold.ops, got.ops) << K::name << " npe=" << npe;
}

} // namespace

class EngineFuzz : public ::testing::TestWithParam<uint64_t>
{
  protected:
    seq::Rng rng{GetParam() * 7919 + 13};
};

TEST_P(EngineFuzz, LinearFamily)
{
    for (int t = 0; t < 15; t++) {
        const auto p = test::randomDnaPair(
            rng, 1 + static_cast<int>(rng.below(160)), t % 3 != 0);
        fuzzOne<kernels::GlobalLinear>(rng, p.query, p.reference);
        fuzzOne<kernels::LocalLinear>(rng, p.query, p.reference);
    }
}

TEST_P(EngineFuzz, AffineFamily)
{
    for (int t = 0; t < 12; t++) {
        const auto p = test::randomDnaPair(
            rng, 1 + static_cast<int>(rng.below(130)), t % 3 != 0);
        fuzzOne<kernels::GlobalAffine>(rng, p.query, p.reference);
        fuzzOne<kernels::LocalAffine>(rng, p.query, p.reference);
    }
}

TEST_P(EngineFuzz, TwoPieceAndStrategies)
{
    for (int t = 0; t < 10; t++) {
        const auto p = test::randomDnaPair(
            rng, 1 + static_cast<int>(rng.below(110)), true);
        fuzzOne<kernels::GlobalTwoPiece>(rng, p.query, p.reference);
        fuzzOne<kernels::Overlap>(rng, p.query, p.reference);
        fuzzOne<kernels::SemiGlobal>(rng, p.query, p.reference);
    }
}

TEST_P(EngineFuzz, BandedFamily)
{
    for (int t = 0; t < 10; t++) {
        const auto p = test::randomDnaPair(
            rng, 1 + static_cast<int>(rng.below(120)), true, true);
        fuzzOne<kernels::BandedGlobalLinear>(rng, p.query, p.reference);
        fuzzOne<kernels::BandedLocalAffine>(rng, p.query, p.reference);
        fuzzOne<kernels::BandedGlobalTwoPiece>(rng, p.query, p.reference);
    }
}

TEST_P(EngineFuzz, MinimizeObjectives)
{
    for (int t = 0; t < 6; t++) {
        const auto a = seq::randomComplexSignal(
            1 + static_cast<int>(rng.below(90)), rng);
        const auto b = seq::warpComplexSignal(a, 0.2, 0.3, rng);
        fuzzOne<kernels::Dtw>(rng, b, a);

        const auto pairs = seq::sampleSquigglePairs(
            1, 60 + static_cast<int>(rng.below(120)), 30, rng.next());
        fuzzOne<kernels::Sdtw>(rng, pairs[0].query, pairs[0].reference);
    }
}

TEST_P(EngineFuzz, ExtremeShapes)
{
    // Degenerate aspect ratios: 1xN, Nx1, long-and-thin.
    const auto one = seq::randomDna(1, rng);
    const auto lng = seq::randomDna(
        50 + static_cast<int>(rng.below(200)), rng);
    fuzzOne<kernels::GlobalLinear>(rng, one, lng);
    fuzzOne<kernels::GlobalLinear>(rng, lng, one);
    fuzzOne<kernels::LocalAffine>(rng, one, lng);
    fuzzOne<kernels::SemiGlobal>(rng, one, lng);

    const auto thin = seq::randomDna(4, rng);
    fuzzOne<kernels::GlobalAffine>(rng, thin, lng);
    fuzzOne<kernels::Overlap>(rng, lng, thin);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<uint64_t>(1, 13));
