/**
 * @file
 * Batch-level SIMD lane tests: the lockstep LaneAligner and the
 * BatchPipeline lane grouping must be bit-identical — results and cycle
 * accounting — to scalar engine runs, at group sizes around the lane
 * width (1, lane-1, lane, lane+1) and with mixed/degenerate lengths.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "host/batch_pipeline.hh"
#include "kernels/all.hh"
#include "systolic/lane_engine.hh"

using namespace dphls;

namespace {

template <typename K>
void
expectLanesMatchScalar(
    const std::vector<test::Pair<typename K::CharT>> &pairs, int npe,
    int band)
{
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    cfg.bandWidth = band;
    cfg.maxQueryLength = 4096;
    cfg.maxReferenceLength = 4096;

    sim::LaneAligner<K> lanes(cfg);
    std::vector<typename sim::LaneAligner<K>::LanePair> group;
    group.reserve(pairs.size());
    for (const auto &p : pairs)
        group.push_back({&p.query, &p.reference});
    const auto got = lanes.alignLanes(group);
    ASSERT_EQ(got.size(), pairs.size());

    sim::SystolicAligner<K> engine(cfg);
    using Tr = core::ScoreTraits<typename K::ScoreT>;
    for (size_t i = 0; i < pairs.size(); i++) {
        const auto gold =
            engine.align(pairs[i].query, pairs[i].reference);
        const std::string ctx = std::string(K::name) + " lane " +
            std::to_string(i) + "/" + std::to_string(pairs.size()) +
            " qlen=" + std::to_string(pairs[i].query.length()) +
            " rlen=" + std::to_string(pairs[i].reference.length());
        ASSERT_EQ(Tr::toDouble(gold.score), Tr::toDouble(got[i].score))
            << ctx;
        ASSERT_EQ(gold.end, got[i].end) << ctx;
        ASSERT_EQ(gold.start, got[i].start) << ctx;
        ASSERT_EQ(gold.ops, got[i].ops) << ctx;
        EXPECT_TRUE(engine.lastStats() ==
                    lanes.laneStats()[i]) << ctx;
        EXPECT_EQ(engine.lastTotalCycles(),
                  lanes.laneTotalCycles(static_cast<int>(i))) << ctx;
    }
}

template <typename K>
std::vector<test::Pair<typename K::CharT>>
dnaPairs(seq::Rng &rng, int count, int max_len)
{
    std::vector<test::Pair<typename K::CharT>> pairs;
    for (int i = 0; i < count; i++)
        pairs.push_back(test::randomDnaPair(rng, max_len, i % 3 != 0));
    return pairs;
}

} // namespace

TEST(LaneAligner, GroupSizesAroundLaneWidth)
{
    seq::Rng rng(101);
    for (const int count : {1, 7, 8, 9, 15, 16}) {
        auto pairs = dnaPairs<kernels::LocalAffine>(rng, count, 120);
        expectLanesMatchScalar<kernels::LocalAffine>(pairs, 32, 16);
    }
}

TEST(LaneAligner, MixedLengthsAndEmptyLanes)
{
    seq::Rng rng(202);
    auto pairs = dnaPairs<kernels::GlobalAffine>(rng, 6, 90);
    // Degenerate lanes mixed into one group: empty query, empty
    // reference, both empty, single character.
    pairs.push_back({seq::DnaSequence{}, seq::randomDna(40, rng)});
    pairs.push_back({seq::randomDna(40, rng), seq::DnaSequence{}});
    pairs.push_back({seq::DnaSequence{}, seq::DnaSequence{}});
    pairs.push_back({seq::randomDna(1, rng), seq::randomDna(77, rng)});
    expectLanesMatchScalar<kernels::GlobalAffine>(pairs, 8, 16);
}

TEST(LaneAligner, AllKindsAndAlphabets)
{
    seq::Rng rng(303);
    expectLanesMatchScalar<kernels::GlobalLinear>(
        dnaPairs<kernels::GlobalLinear>(rng, 9, 100), 16, 8);
    expectLanesMatchScalar<kernels::LocalLinear>(
        dnaPairs<kernels::LocalLinear>(rng, 9, 100), 16, 8);
    expectLanesMatchScalar<kernels::SemiGlobal>(
        dnaPairs<kernels::SemiGlobal>(rng, 9, 100), 16, 8);
    expectLanesMatchScalar<kernels::Overlap>(
        dnaPairs<kernels::Overlap>(rng, 9, 100), 16, 8);
    expectLanesMatchScalar<kernels::GlobalTwoPiece>(
        dnaPairs<kernels::GlobalTwoPiece>(rng, 5, 80), 16, 8);

    // Banded kernels share the band across lanes of different lengths.
    {
        std::vector<test::Pair<seq::DnaChar>> pairs;
        for (const int len : {30, 64, 5, 90, 64, 1, 33}) {
            auto p = test::randomDnaPair(rng, len, true, true);
            pairs.push_back(std::move(p));
        }
        expectLanesMatchScalar<kernels::BandedGlobalLinear>(pairs, 32, 12);
        expectLanesMatchScalar<kernels::BandedLocalAffine>(pairs, 32, 12);
        expectLanesMatchScalar<kernels::BandedGlobalTwoPiece>(pairs, 32,
                                                              12);
    }

    // Fixed-point scores (ApFixed) run their raw-int32 vector lane
    // cells; the scalar per-lane fallback only remains for forced
    // IsaTier::Scalar runs (covered in test_isa_tiers.cc).
    expectLanesMatchScalar<kernels::Viterbi>(
        [&] {
            std::vector<test::Pair<seq::DnaChar>> pairs;
            for (const int len : {20, 45, 31})
                pairs.push_back(test::randomDnaPair(rng, len, true, true));
            return pairs;
        }(),
        16, 8);

    // Protein and signal alphabets (both vectorized lane cells).
    {
        std::vector<test::Pair<seq::AminoChar>> pairs;
        for (const int len : {40, 80, 17, 120, 61}) {
            test::Pair<seq::AminoChar> p;
            p.query = seq::sampleProtein(len, rng);
            p.reference = seq::mutateProtein(p.query, 0.2, 0.05, rng);
            pairs.push_back(std::move(p));
        }
        expectLanesMatchScalar<kernels::ProteinLocal>(pairs, 32, 16);
    }
    {
        std::vector<test::Pair<seq::SignalSample>> pairs;
        auto sq = seq::sampleSquigglePairs(5, 100, 40, 404);
        for (auto &p : sq)
            pairs.push_back({std::move(p.query), std::move(p.reference)});
        expectLanesMatchScalar<kernels::Sdtw>(pairs, 32, 16);
    }
}

#ifdef DPHLS_VEC
// The protein family must run the gathered-substitution vector path,
// not the scalar per-lane fallback: the laneCell hook has to be visible
// to the lane engine's dispatch concept. (The vector type is only
// probed, never stored, so the dropped alignment attribute is noise.)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wignored-attributes"
static_assert(
    sim::KernelHasLaneCell<
        kernels::ProteinLocal,
        kernels::detail::simd::VecPack<4>::I32>,
    "ProteinLocal must expose a vectorized laneCell");
#pragma GCC diagnostic pop
#endif

/**
 * Gathered-substitution protein lane cells: sweep group sizes around
 * the lane width with log-normal-ish mixed lengths plus degenerate
 * lanes, so every sub-group shape of the vector path is diffed against
 * scalar BLOSUM62 Smith-Waterman runs.
 */
TEST(LaneAligner, ProteinGatheredSubstitutionGroupSweep)
{
    seq::Rng rng(707);
    for (const int count : {1, 4, 7, 8, 9, 16}) {
        std::vector<test::Pair<seq::AminoChar>> pairs;
        for (int i = 0; i < count; i++) {
            const int len = seq::sampleProteinLength(rng, 10, 200);
            test::Pair<seq::AminoChar> p;
            p.query = seq::sampleProtein(len, rng);
            p.reference = seq::mutateProtein(p.query, 0.25, 0.08, rng);
            pairs.push_back(std::move(p));
        }
        expectLanesMatchScalar<kernels::ProteinLocal>(pairs, 16, 8);
    }

    // Degenerate lanes inside a full-width protein group.
    std::vector<test::Pair<seq::AminoChar>> pairs;
    for (const int len : {55, 1, 90, 33})
        pairs.push_back({seq::sampleProtein(len, rng),
                         seq::sampleProtein(std::max(1, len / 2), rng)});
    pairs.push_back({seq::ProteinSequence{}, seq::sampleProtein(25, rng)});
    pairs.push_back({seq::sampleProtein(25, rng), seq::ProteinSequence{}});
    pairs.push_back({seq::ProteinSequence{}, seq::ProteinSequence{}});
    pairs.push_back({seq::sampleProtein(140, rng),
                     seq::sampleProtein(140, rng)});
    expectLanesMatchScalar<kernels::ProteinLocal>(pairs, 32, 8);
}

TEST(LaneAligner, RejectsOversizedGroup)
{
    seq::Rng rng(505);
    auto pairs = dnaPairs<kernels::GlobalLinear>(
        rng, sim::LaneAligner<kernels::GlobalLinear>::maxLanes + 1, 30);
    sim::LaneAligner<kernels::GlobalLinear> lanes;
    std::vector<sim::LaneAligner<kernels::GlobalLinear>::LanePair> group;
    for (const auto &p : pairs)
        group.push_back({&p.query, &p.reference});
    EXPECT_THROW(lanes.alignLanes(group), std::invalid_argument);
}

TEST(BatchPipeline, LaneWidthIsResultAndAccountingTransparent)
{
    seq::Rng rng(606);
    using K = kernels::LocalAffine;
    using Pipeline = host::BatchPipeline<K>;

    for (const int batch_size : {1, 7, 8, 9, 31}) {
        std::vector<typename Pipeline::Job> jobs;
        for (int i = 0; i < batch_size; i++) {
            auto p = test::randomDnaPair(rng, 100, i % 2 == 0);
            jobs.push_back({std::move(p.query), std::move(p.reference)});
        }

        host::BatchConfig scfg;
        scfg.nk = 2;
        scfg.nb = 4;
        scfg.cacheEntries = 0; // isolate the lane path
        scfg.laneWidth = 1;
        host::BatchConfig lcfg = scfg;
        lcfg.laneWidth = 8;

        Pipeline scalar(scfg), laned(lcfg);
        std::vector<typename Pipeline::Result> sres, lres;
        std::vector<uint64_t> scyc, lcyc;
        const auto sstats = scalar.runAll(jobs, &sres, &scyc);
        const auto lstats = laned.runAll(jobs, &lres, &lcyc);

        ASSERT_EQ(sres.size(), lres.size());
        for (size_t i = 0; i < sres.size(); i++) {
            ASSERT_EQ(sres[i].score, lres[i].score) << i;
            ASSERT_EQ(sres[i].end, lres[i].end) << i;
            ASSERT_EQ(sres[i].ops, lres[i].ops) << i;
        }
        ASSERT_EQ(scyc, lcyc);
        EXPECT_EQ(sstats.makespanCycles, lstats.makespanCycles);
        EXPECT_EQ(sstats.totalCycles, lstats.totalCycles);
        EXPECT_EQ(sstats.alignments, lstats.alignments);
        EXPECT_EQ(sstats.paths.matches, lstats.paths.matches);
        EXPECT_EQ(sstats.paths.columns, lstats.paths.columns);
        ASSERT_EQ(sstats.channels.size(), lstats.channels.size());
        for (size_t c = 0; c < sstats.channels.size(); c++) {
            EXPECT_EQ(sstats.channels[c].busyCycles,
                      lstats.channels[c].busyCycles) << c;
            EXPECT_EQ(sstats.channels[c].totalCycles,
                      lstats.channels[c].totalCycles) << c;
        }
    }
}
