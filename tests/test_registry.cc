/**
 * @file
 * Kernel-registry tests: all 15 kernels present with consistent metadata
 * and working standard-workload runners.
 */

#include <gtest/gtest.h>

#include "kernels/registry.hh"

using namespace dphls;
using kernels::registry;

TEST(Registry, HasAllFifteenKernels)
{
    ASSERT_EQ(registry().size(), 15u);
    for (int id = 1; id <= 15; id++)
        EXPECT_EQ(registry()[static_cast<size_t>(id - 1)].id, id);
}

TEST(Registry, LookupById)
{
    EXPECT_EQ(kernels::kernelById(1).name,
              "Global Linear (Needleman-Wunsch)");
    EXPECT_EQ(kernels::kernelById(14).name, "Semi-global DTW (sDTW)");
    EXPECT_THROW(kernels::kernelById(16), std::out_of_range);
    EXPECT_THROW(kernels::kernelById(0), std::out_of_range);
}

TEST(Registry, MetadataMatchesTable1)
{
    // Layer counts (paper front-end step 1.2).
    EXPECT_EQ(kernels::kernelById(1).nLayers, 1);
    EXPECT_EQ(kernels::kernelById(2).nLayers, 3);
    EXPECT_EQ(kernels::kernelById(5).nLayers, 5);
    EXPECT_EQ(kernels::kernelById(10).nLayers, 3);
    EXPECT_EQ(kernels::kernelById(13).nLayers, 5);
    // Traceback pointer widths (step 1.5).
    EXPECT_EQ(kernels::kernelById(1).tbPtrBits, 2);
    EXPECT_EQ(kernels::kernelById(2).tbPtrBits, 4);
    EXPECT_EQ(kernels::kernelById(5).tbPtrBits, 7);
    // Banding (step 1.6).
    EXPECT_TRUE(kernels::kernelById(11).banded);
    EXPECT_TRUE(kernels::kernelById(12).banded);
    EXPECT_TRUE(kernels::kernelById(13).banded);
    EXPECT_FALSE(kernels::kernelById(1).banded);
    // No-traceback kernels (Table 1).
    EXPECT_FALSE(kernels::kernelById(10).hasTraceback);
    EXPECT_FALSE(kernels::kernelById(12).hasTraceback);
    EXPECT_FALSE(kernels::kernelById(14).hasTraceback);
    // Alphabets.
    EXPECT_EQ(kernels::kernelById(8).alphabet, "Seq. Profiles");
    EXPECT_EQ(kernels::kernelById(9).alphabet, "Complex Nos.");
    EXPECT_EQ(kernels::kernelById(15).alphabet, "Amino acids");
}

TEST(Registry, PaperRowsPopulated)
{
    for (const auto &k : registry()) {
        EXPECT_GT(k.paper.lutPct, 0.0) << k.id;
        EXPECT_GT(k.paper.alignsPerSec, 0.0) << k.id;
        EXPECT_GE(k.paper.fmaxMhz, 125.0) << k.id;
        EXPECT_LE(k.paper.fmaxMhz, 250.0) << k.id;
        EXPECT_GE(k.paper.npe, 16) << k.id;
    }
}

TEST(Registry, RunnersProducePositiveThroughput)
{
    for (const auto &k : registry()) {
        kernels::RunConfig rc;
        rc.npe = 16;
        rc.nb = 2;
        rc.nk = 2;
        rc.count = 8;
        const auto res = k.run(rc);
        EXPECT_GT(res.alignsPerSec, 0.0) << k.name;
        EXPECT_GT(res.cyclesPerAlign, 0.0) << k.name;
        EXPECT_GT(res.cellsPerAlign, 0.0) << k.name;
        EXPECT_NEAR(res.fmaxMhz, k.fmaxMhz, 1e-9) << k.name;
    }
}

TEST(Registry, RunnersAreDeterministic)
{
    const auto &k = kernels::kernelById(3);
    kernels::RunConfig rc;
    rc.count = 8;
    const auto a = k.run(rc);
    const auto b = k.run(rc);
    EXPECT_DOUBLE_EQ(a.alignsPerSec, b.alignsPerSec);
    EXPECT_DOUBLE_EQ(a.cyclesPerAlign, b.cyclesPerAlign);
}

TEST(Registry, MorePesFasterKernels)
{
    const auto &k = kernels::kernelById(1);
    kernels::RunConfig lo, hi;
    lo.npe = 8;
    hi.npe = 64;
    lo.count = hi.count = 16;
    EXPECT_GT(k.run(hi).alignsPerSec, k.run(lo).alignsPerSec);
}

TEST(Registry, SkipTracebackSpeedsUpTracebackKernels)
{
    const auto &k = kernels::kernelById(15);
    kernels::RunConfig with, without;
    with.count = without.count = 8;
    without.skipTraceback = true;
    EXPECT_GT(without.skipTraceback ? k.run(without).alignsPerSec : 0.0,
              k.run(with).alignsPerSec);
}
