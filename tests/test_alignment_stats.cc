/**
 * @file
 * Tests for alignment path statistics.
 */

#include <gtest/gtest.h>

#include "core/alignment_stats.hh"
#include "core/cigar.hh"
#include "kernels/global_linear.hh"
#include "seq/read_simulator.hh"
#include "systolic/engine.hh"

using namespace dphls;
using core::AlnOp;

TEST(AlignmentStats, PerfectMatchPath)
{
    const auto q = seq::dnaFromString("ACGTACGT");
    const auto stats = core::computeStats(
        q, q, std::vector<AlnOp>(8, AlnOp::Match), core::Coord{0, 0});
    EXPECT_EQ(stats.matches, 8);
    EXPECT_EQ(stats.mismatches, 0);
    EXPECT_EQ(stats.columns, 8);
    EXPECT_DOUBLE_EQ(stats.identity(), 1.0);
    EXPECT_DOUBLE_EQ(stats.gapCompressedIdentity(), 1.0);
    EXPECT_EQ(stats.editDistance(), 0);
}

TEST(AlignmentStats, MixedPathCounts)
{
    const auto q = seq::dnaFromString("ACGTA");
    const auto r = seq::dnaFromString("AGTCA");
    // A-CGTA
    // AGTC-A  : 1M(match) 1D 1M(?) ...
    const auto ops = core::fromCigar("1M1D2M1I1M");
    const auto stats = core::computeStats(q, r, ops, core::Coord{0, 0});
    EXPECT_EQ(stats.columns, 6);
    EXPECT_EQ(stats.insertions, 1);
    EXPECT_EQ(stats.deletions, 1);
    EXPECT_EQ(stats.gapOpens, 2);
    EXPECT_EQ(stats.matches + stats.mismatches, 4);
}

TEST(AlignmentStats, GapRunsCompress)
{
    const auto q = seq::dnaFromString("AAAA");
    const auto r = seq::dnaFromString("AAAATTTT");
    const auto ops = core::fromCigar("4M4D");
    const auto stats = core::computeStats(q, r, ops, core::Coord{0, 0});
    EXPECT_EQ(stats.gapOpens, 1);
    EXPECT_EQ(stats.deletions, 4);
    EXPECT_DOUBLE_EQ(stats.identity(), 0.5);
    EXPECT_DOUBLE_EQ(stats.gapCompressedIdentity(), 4.0 / 5.0);
}

TEST(AlignmentStats, ConsistentWithEnginePaths)
{
    seq::Rng rng(404);
    sim::SystolicAligner<kernels::GlobalLinear> engine;
    for (int t = 0; t < 10; t++) {
        const auto r = seq::randomDna(120, rng);
        const auto q = seq::mutateDna(r, 0.1, 0.05, rng);
        const auto res = engine.align(q, r);
        const auto stats =
            core::computeStats(q, r, res.ops, res.start);
        // Score under match=1/mismatch=-1/gap=-1 decomposes exactly.
        EXPECT_EQ(res.score, stats.matches - stats.mismatches -
                                 stats.insertions - stats.deletions);
        EXPECT_EQ(stats.columns, static_cast<int>(res.ops.size()));
        EXPECT_GT(stats.identity(), 0.6);
    }
}

TEST(AlignmentStats, EmptyPath)
{
    const auto q = seq::dnaFromString("A");
    const auto stats =
        core::computeStats(q, q, {}, core::Coord{0, 0});
    EXPECT_EQ(stats.columns, 0);
    EXPECT_DOUBLE_EQ(stats.identity(), 0.0);
    EXPECT_EQ(stats.editDistance(), 0);
}
