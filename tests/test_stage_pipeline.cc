/**
 * @file
 * Stage-pipelined shard dataflow tests.
 *
 * The stage pipeline overlaps a shard's traceback with the next job's
 * fill behind a bounded FIFO; because cycle accounting is analytic
 * (trip-count formulas, not execution timing), the staged path must be
 * bit-identical to the monolithic path — results, per-job cycles, and
 * channel accounting — for every registered kernel, at every FIFO
 * depth, with preemption armed or not. Preemption that actually fires
 * may split a shard's arbiter accounting across resumptions (busy
 * cycles are then a sum of per-resumption makespans), but per-job
 * results and cycles must still match the never-preempted run exactly,
 * with no lost or duplicated writebacks. A cancel() landing mid-shard
 * must drop only not-yet-started stages and still close the epoch:
 * alignments + cancelled == jobs, and the completion mask's population
 * count == alignments.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/cigar.hh"
#include "helpers.hh"
#include "host/stream_pipeline.hh"
#include "kernels/all.hh"

using namespace dphls;

namespace {

using test::shapedPair;

template <typename K>
std::vector<typename host::StreamPipeline<K>::Job>
shapedJobs(uint64_t seed)
{
    seq::Rng rng(seed);
    const std::pair<int, int> shapes[] = {
        {0, 0},   {1, 40},  {40, 1},   {3, 37},  {31, 33},
        {33, 31}, {64, 64}, {97, 113}, {17, 90}, {120, 45},
        {80, 80}, {5, 5},   {113, 97}, {48, 96}, {96, 48},
    };
    std::vector<typename host::StreamPipeline<K>::Job> jobs;
    for (const auto &[qlen, rlen] : shapes) {
        auto p = shapedPair<K>(rng, qlen, rlen);
        jobs.push_back({std::move(p.query), std::move(p.reference)});
    }
    return jobs;
}

/** A uniform batch of @p n pairs, all @p len x @p len. */
template <typename K>
std::vector<typename host::StreamPipeline<K>::Job>
uniformJobs(uint64_t seed, int n, int len)
{
    seq::Rng rng(seed);
    std::vector<typename host::StreamPipeline<K>::Job> jobs;
    jobs.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
        auto p = shapedPair<K>(rng, len, len);
        jobs.push_back({std::move(p.query), std::move(p.reference)});
    }
    return jobs;
}

template <typename K>
void
expectSameOutputs(
    const std::vector<typename host::StreamPipeline<K>::Result> &want,
    const std::vector<uint64_t> &want_cycles,
    const std::vector<typename host::StreamPipeline<K>::Result> &got,
    const std::vector<uint64_t> &got_cycles, const char *what)
{
    using Tr = core::ScoreTraits<typename K::ScoreT>;
    ASSERT_EQ(want.size(), got.size()) << K::name << " " << what;
    ASSERT_EQ(want_cycles, got_cycles) << K::name << " " << what;
    for (size_t i = 0; i < want.size(); i++) {
        const std::string ctx = std::string(K::name) + " " + what +
            " job " + std::to_string(i);
        ASSERT_EQ(Tr::toDouble(want[i].score), Tr::toDouble(got[i].score))
            << ctx;
        ASSERT_EQ(want[i].end, got[i].end) << ctx;
        ASSERT_EQ(want[i].start, got[i].start) << ctx;
        ASSERT_EQ(core::toCigar(want[i].ops), core::toCigar(got[i].ops))
            << ctx;
    }
}

host::BatchConfig
baseConfig(int lane_width)
{
    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 2;
    cfg.nk = 3;
    cfg.threads = 2;
    cfg.laneWidth = lane_width;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    cfg.cacheEntries = 0; // keep hit/miss effects out of the diff
    return cfg;
}

/**
 * The acceptance differential: staged execution (at the given lane
 * width and FIFO depth, optionally with preemption armed but never
 * firing) must be bit-identical to the monolithic path — results,
 * per-job cycles, totals, makespan, and per-channel busy cycles.
 */
template <typename K>
void
stagedMatchesMonolithic(int lane_width, int fifo_depth, bool preemption)
{
    using Pipeline = host::StreamPipeline<K>;
    auto jobs = shapedJobs<K>(static_cast<uint64_t>(K::kernelId) * 193 +
                              static_cast<uint64_t>(lane_width));

    host::BatchConfig cfg = baseConfig(lane_width);
    Pipeline mono(cfg);
    std::vector<typename Pipeline::Result> want;
    std::vector<uint64_t> want_cycles;
    const auto want_stats = mono.runAll(jobs, &want, &want_cycles);

    host::BatchConfig scfg = cfg;
    scfg.stagePipeline = true;
    scfg.stageFifoDepth = fifo_depth;
    scfg.preemption = preemption;
    Pipeline staged(scfg);
    std::vector<typename Pipeline::Result> got;
    std::vector<uint64_t> got_cycles;
    const auto got_stats = staged.runAll(jobs, &got, &got_cycles);

    const std::string what = "staged lanes=" +
        std::to_string(lane_width) + " fifo=" +
        std::to_string(fifo_depth) + (preemption ? " preempt" : "");
    expectSameOutputs<K>(want, want_cycles, got, got_cycles,
                         what.c_str());
    EXPECT_EQ(want_stats.alignments, got_stats.alignments) << K::name;
    EXPECT_EQ(want_stats.totalCycles, got_stats.totalCycles) << K::name;
    EXPECT_EQ(want_stats.makespanCycles, got_stats.makespanCycles)
        << K::name;
    ASSERT_EQ(want_stats.channels.size(), got_stats.channels.size());
    for (size_t c = 0; c < want_stats.channels.size(); c++) {
        EXPECT_EQ(want_stats.channels[c].busyCycles,
                  got_stats.channels[c].busyCycles)
            << K::name << " channel " << c;
        EXPECT_EQ(want_stats.channels[c].alignments,
                  got_stats.channels[c].alignments)
            << K::name << " channel " << c;
    }
    EXPECT_EQ(got_stats.preemptions, 0) << K::name;
}

template <typename K>
void
stagedDifferential()
{
    stagedMatchesMonolithic<K>(4, 4, false); // lane backend, overlapped
    stagedMatchesMonolithic<K>(1, 4, false); // scalar channel backend
}

} // namespace

TEST(StagePipeline, StagedMatchesMonolithicAllKernels)
{
    stagedDifferential<kernels::GlobalLinear>();
    stagedDifferential<kernels::GlobalAffine>();
    stagedDifferential<kernels::LocalLinear>();
    stagedDifferential<kernels::LocalAffine>();
    stagedDifferential<kernels::GlobalTwoPiece>();
    stagedDifferential<kernels::Overlap>();
    stagedDifferential<kernels::SemiGlobal>();
    stagedDifferential<kernels::ProfileAlignment>();
    stagedDifferential<kernels::Dtw>();
    stagedDifferential<kernels::Viterbi>();
    stagedDifferential<kernels::BandedGlobalLinear>();
    stagedDifferential<kernels::BandedLocalAffine>();
    stagedDifferential<kernels::BandedGlobalTwoPiece>();
    stagedDifferential<kernels::Sdtw>();
    stagedDifferential<kernels::ProteinLocal>();
}

TEST(StagePipeline, FifoCapacityOneDegeneratesToLockstep)
{
    // Depth 1 serializes the stage hand-off (producer blocks on every
    // push until the consumer drains) — the degenerate schedule must
    // still be bit-identical.
    stagedMatchesMonolithic<kernels::GlobalAffine>(4, 1, false);
    stagedMatchesMonolithic<kernels::BandedLocalAffine>(1, 1, false);
    stagedMatchesMonolithic<kernels::Dtw>(4, 1, false);
}

TEST(StagePipeline, ArmedPreemptionThatNeverFiresIsTransparent)
{
    // Single-class workload: the token is registered but never
    // requested, so the armed run must match monolithic bit for bit.
    stagedMatchesMonolithic<kernels::GlobalLinear>(4, 4, true);
    stagedMatchesMonolithic<kernels::LocalAffine>(1, 4, true);
    stagedMatchesMonolithic<kernels::ProteinLocal>(4, 2, true);
}

TEST(StagePipeline, PreemptedRunIsBitIdenticalToUnpreempted)
{
    using K = kernels::GlobalLinear;
    using Pipeline = host::StreamPipeline<K>;

    const int n_bulk = 600;
    auto bulk = uniformJobs<K>(2026, n_bulk, 96);
    auto urgent = uniformJobs<K>(7, 4, 64);

    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 2;
    cfg.nk = 1; // one channel, one worker: the contended-slot case
    cfg.threads = 1;
    cfg.laneWidth = 4;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 256;
    cfg.maxReferenceLength = 256;
    cfg.cacheEntries = 0;
    cfg.stagePipeline = true;
    cfg.preemption = true;

    // Golden leg: same config, each batch alone (nothing to preempt).
    std::vector<Pipeline::Result> want_bulk, want_urgent;
    std::vector<uint64_t> want_bulk_cycles, want_urgent_cycles;
    {
        Pipeline golden(cfg);
        golden.runAll(bulk, &want_bulk, &want_bulk_cycles);
        golden.runAll(urgent, &want_urgent, &want_urgent_cycles);
    }

    // Contended leg: the bulk shard occupies the only channel when the
    // higher-priority ticket arrives, which requests its token; the
    // shard yields at a stage boundary and the remainder resumes after
    // the urgent ticket drains.
    Pipeline pipeline(cfg);
    auto t_bulk = pipeline.submit(bulk);
    host::TicketOptions hi;
    hi.priority = 10;
    auto t_urgent = pipeline.submit(urgent, hi);

    std::vector<Pipeline::Result> got_bulk, got_urgent;
    std::vector<uint64_t> got_bulk_cycles, got_urgent_cycles;
    const auto bulk_stats =
        pipeline.collect(t_bulk, &got_bulk, &got_bulk_cycles);
    pipeline.collect(t_urgent, &got_urgent, &got_urgent_cycles);

    // No lost or duplicated writebacks, and bit-identical outputs in
    // spite of any number of preempt/resume rounds (zero is legal:
    // the bulk shard may win the race and finish first).
    expectSameOutputs<K>(want_bulk, want_bulk_cycles, got_bulk,
                         got_bulk_cycles, "preempted bulk");
    expectSameOutputs<K>(want_urgent, want_urgent_cycles, got_urgent,
                         got_urgent_cycles, "preempting urgent");
    EXPECT_EQ(bulk_stats.alignments, n_bulk);
    int completed = 0;
    for (const uint8_t c : t_bulk->completed())
        completed += c;
    EXPECT_EQ(completed, n_bulk);
    EXPECT_GE(bulk_stats.preemptions, 0);
    // Sections close: preemptions ride along per backend without
    // entering the jobs closure.
    int sec_preempts = 0;
    for (const auto &b : bulk_stats.backends)
        sec_preempts += b.preemptions;
    EXPECT_EQ(sec_preempts, bulk_stats.preemptions);
}

TEST(StagePipeline, ForcedPreemptionFiresAndStaysIdentical)
{
    using K = kernels::GlobalAffine;
    using Pipeline = host::StreamPipeline<K>;

    const int n_bulk = 800;
    auto bulk = uniformJobs<K>(11, n_bulk, 96);
    auto urgent = uniformJobs<K>(13, 2, 64);

    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 2;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.laneWidth = 4;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 256;
    cfg.maxReferenceLength = 256;
    cfg.cacheEntries = 0;
    cfg.stagePipeline = true;
    cfg.preemption = true;

    std::vector<Pipeline::Result> want_bulk;
    std::vector<uint64_t> want_bulk_cycles;
    {
        Pipeline golden(cfg);
        golden.runAll(bulk, &want_bulk, &want_bulk_cycles);
    }

    // Retry until a preemption actually lands: the request is
    // asynchronous, so a single attempt can lose the race when the
    // bulk shard drains before the urgent submit reaches the token —
    // or, on a single-CPU host, when the urgent submit lands before
    // the worker thread ever starts the bulk shard (so the urgent
    // ticket is simply dispatched first and nothing is running to
    // preempt). The sleep yields the CPU so the shard gets going; the
    // sleep grows with the attempt to cover slow/loaded machines.
    bool fired = false;
    for (int attempt = 0; attempt < 10 && !fired; attempt++) {
        Pipeline pipeline(cfg);
        auto t_bulk = pipeline.submit(bulk);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + attempt));
        host::TicketOptions hi;
        hi.priority = 10;
        auto t_urgent = pipeline.submit(urgent, hi);
        std::vector<Pipeline::Result> got_bulk;
        std::vector<uint64_t> got_bulk_cycles;
        const auto stats =
            pipeline.collect(t_bulk, &got_bulk, &got_bulk_cycles);
        pipeline.collect(t_urgent);
        expectSameOutputs<K>(want_bulk, want_bulk_cycles, got_bulk,
                             got_bulk_cycles, "forced preempt");
        EXPECT_EQ(stats.alignments, n_bulk);
        fired = stats.preemptions > 0;
    }
    EXPECT_TRUE(fired)
        << "no preemption fired in 10 attempts of an 800-job bulk "
           "shard contended by a priority-10 ticket";
}

TEST(StagePipeline, CancelMidShardDropsUnstartedStagesAndClosesEpoch)
{
    using K = kernels::GlobalLinear;
    using Pipeline = host::StreamPipeline<K>;

    const int n = 500;
    auto jobs = uniformJobs<K>(31, n, 96);

    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 2;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.laneWidth = 4;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 256;
    cfg.maxReferenceLength = 256;
    cfg.cacheEntries = 0;
    cfg.stagePipeline = true;

    // Every interleaving must close the epoch: cancel before the shard
    // starts (all jobs cancelled), mid-shard (the staged split), or
    // after completion (nothing cancelled).
    for (const int spin : {0, 1000, 200000}) {
        Pipeline pipeline(cfg);
        std::atomic<int> callbacks{0};
        auto ticket = pipeline.submit(
            jobs, [&](host::BatchTicket<K> &) { callbacks++; });
        for (int i = 0; i < spin; i++) {
            asm volatile("" ::: "memory"); // spin the optimizer can't fold
        }
        ticket->cancel();
        ticket->wait();
        const auto &stats = ticket->stats();
        EXPECT_EQ(stats.alignments + stats.cancelled, n)
            << "spin " << spin;
        int completed = 0;
        for (const uint8_t c : ticket->completed())
            completed += c;
        EXPECT_EQ(completed, stats.alignments) << "spin " << spin;
        // Completed jobs hold live outputs; dropped ones defaults.
        const auto &results = ticket->results();
        const auto &cycles = ticket->cycles();
        for (size_t i = 0; i < results.size(); i++) {
            if (ticket->completed()[i]) {
                EXPECT_GT(cycles[i], 0u) << "job " << i;
            } else {
                EXPECT_EQ(cycles[i], 0u) << "job " << i;
                EXPECT_TRUE(results[i].ops.empty()) << "job " << i;
            }
        }
        // Per-backend sections close over the partial epoch.
        int sec_aligns = 0, sec_cancelled = 0;
        for (const auto &b : stats.backends) {
            sec_aligns += b.alignments;
            sec_cancelled += b.cancelled;
        }
        EXPECT_EQ(sec_aligns, stats.alignments) << "spin " << spin;
        EXPECT_EQ(sec_cancelled, stats.cancelled) << "spin " << spin;
        EXPECT_EQ(callbacks.load(), 1) << "spin " << spin;
    }
}

TEST(StagePipeline, StagedTicketsCoexistWithCpuFallback)
{
    // Mixed routing: the CPU backend has no staged path (its default
    // runStaged falls back to run()), so a hetero batch exercises both
    // the staged device channels and the monolithic fallback in one
    // ticket. Outputs must match the unstaged hetero pipeline.
    using K = kernels::LocalAffine;
    using Pipeline = host::StreamPipeline<K>;
    auto jobs = shapedJobs<K>(401);

    host::BatchConfig cfg = baseConfig(4);
    cfg.cpuFallback = true;
    cfg.cpuFloorLen = 8;
    cfg.cpuModeledCellsPerSec = 4e8;

    Pipeline mono(cfg);
    std::vector<Pipeline::Result> want;
    std::vector<uint64_t> want_cycles;
    const auto want_stats = mono.runAll(jobs, &want, &want_cycles);

    host::BatchConfig scfg = cfg;
    scfg.stagePipeline = true;
    scfg.preemption = true;
    Pipeline staged(scfg);
    std::vector<Pipeline::Result> got;
    std::vector<uint64_t> got_cycles;
    const auto got_stats = staged.runAll(jobs, &got, &got_cycles);

    expectSameOutputs<K>(want, want_cycles, got, got_cycles,
                         "hetero staged");
    EXPECT_EQ(want_stats.alignments, got_stats.alignments);
    EXPECT_EQ(want_stats.totalCycles, got_stats.totalCycles);
    EXPECT_EQ(want_stats.cpu.alignments, got_stats.cpu.alignments);
}
