/**
 * @file
 * Device-model tests: NB/NK parallel scaling, arbiter behavior, result
 * consistency with the bare engine, and host-overhead accounting.
 */

#include <gtest/gtest.h>

#include "host/device_model.hh"
#include "kernels/all.hh"
#include "seq/read_simulator.hh"

using namespace dphls;
using Job = host::AlignmentJob<seq::DnaChar>;

namespace {

std::vector<Job>
makeJobs(int n, uint64_t seed, int len = 96)
{
    std::vector<Job> jobs;
    seq::Rng rng(seed);
    for (int i = 0; i < n; i++) {
        Job j;
        j.query = seq::randomDna(len, rng);
        j.reference = seq::mutateDna(j.query, 0.1, 0.05, rng);
        if (j.reference.length() > len)
            j.reference.chars.resize(static_cast<size_t>(len));
        jobs.push_back(std::move(j));
    }
    return jobs;
}

} // namespace

TEST(DeviceModel, ResultsMatchBareEngine)
{
    const auto jobs = makeJobs(24, 31);
    host::DeviceConfig cfg;
    cfg.npe = 16;
    cfg.nb = 4;
    cfg.nk = 2;
    host::DeviceModel<kernels::GlobalAffine> device(cfg);
    std::vector<host::DeviceModel<kernels::GlobalAffine>::Result> results;
    device.run(jobs, &results);
    ASSERT_EQ(results.size(), jobs.size());

    sim::EngineConfig ecfg;
    ecfg.numPe = 16;
    sim::SystolicAligner<kernels::GlobalAffine> engine(ecfg);
    for (size_t i = 0; i < jobs.size(); i++) {
        const auto want = engine.align(jobs[i].query, jobs[i].reference);
        EXPECT_EQ(results[i].score, want.score) << i;
        EXPECT_EQ(results[i].ops, want.ops) << i;
    }
}

TEST(DeviceModel, ThroughputScalesWithBlocks)
{
    const auto jobs = makeJobs(128, 32);
    auto run = [&](int nb, int nk) {
        host::DeviceConfig cfg;
        cfg.npe = 8;
        cfg.nb = nb;
        cfg.nk = nk;
        host::DeviceModel<kernels::GlobalLinear> device(cfg);
        return device.run(jobs).alignsPerSec;
    };
    const double t1 = run(1, 1);
    const double t4 = run(4, 1);
    const double t16 = run(8, 2);
    // Near-perfect inter-alignment parallelism (Fig. 3A/D, NB scaling).
    EXPECT_NEAR(t4 / t1, 4.0, 0.5);
    EXPECT_NEAR(t16 / t1, 16.0, 2.0);
}

TEST(DeviceModel, ChannelsSplitWorkEvenly)
{
    const auto jobs = makeJobs(64, 33);
    host::DeviceConfig a;
    a.npe = 8;
    a.nb = 4;
    a.nk = 1;
    host::DeviceConfig b = a;
    b.nb = 2;
    b.nk = 2;
    // Same total blocks => nearly the same makespan.
    host::DeviceModel<kernels::GlobalLinear> da(a), db(b);
    const auto sa = da.run(jobs);
    const auto sb = db.run(jobs);
    EXPECT_NEAR(static_cast<double>(sa.makespanCycles),
                static_cast<double>(sb.makespanCycles),
                0.15 * static_cast<double>(sa.makespanCycles));
}

TEST(DeviceModel, CyclesPerAlignIndependentOfParallelism)
{
    const auto jobs = makeJobs(64, 34);
    auto cycles = [&](int nb, int nk) {
        host::DeviceConfig cfg;
        cfg.npe = 8;
        cfg.nb = nb;
        cfg.nk = nk;
        host::DeviceModel<kernels::GlobalLinear> device(cfg);
        return device.run(jobs).cyclesPerAlign;
    };
    EXPECT_DOUBLE_EQ(cycles(1, 1), cycles(8, 4));
}

TEST(DeviceModel, HostOverheadLowersThroughput)
{
    const auto jobs = makeJobs(32, 35);
    auto run = [&](uint64_t overhead) {
        host::DeviceConfig cfg;
        cfg.npe = 8;
        cfg.hostOverheadCycles = overhead;
        host::DeviceModel<kernels::GlobalLinear> device(cfg);
        return device.run(jobs).alignsPerSec;
    };
    EXPECT_GT(run(0), run(4000));
}

TEST(DeviceModel, FrequencyScalesThroughput)
{
    const auto jobs = makeJobs(32, 36);
    auto run = [&](double mhz) {
        host::DeviceConfig cfg;
        cfg.npe = 8;
        cfg.fmaxMhz = mhz;
        host::DeviceModel<kernels::GlobalLinear> device(cfg);
        return device.run(jobs).alignsPerSec;
    };
    EXPECT_NEAR(run(250.0) / run(125.0), 2.0, 1e-6);
}

TEST(DeviceModel, EmptyBatch)
{
    host::DeviceModel<kernels::GlobalLinear> device;
    const auto stats = device.run({});
    EXPECT_EQ(stats.alignments, 0);
    EXPECT_EQ(stats.makespanCycles, 0u);
}

TEST(DeviceModel, StatsAccounting)
{
    const auto jobs = makeJobs(16, 37);
    host::DeviceConfig cfg;
    cfg.npe = 8;
    cfg.nb = 2;
    cfg.nk = 2;
    host::DeviceModel<kernels::GlobalLinear> device(cfg);
    const auto stats = device.run(jobs);
    EXPECT_EQ(stats.alignments, 16);
    EXPECT_GT(stats.totalCycles, 0u);
    EXPECT_GE(stats.totalCycles,
              stats.makespanCycles); // work spread over 4 blocks
    EXPECT_GT(stats.alignsPerSec, 0.0);
    EXPECT_GT(stats.cyclesPerAlign, 0.0);
}
