/**
 * @file
 * Tests for sequence alphabets and conversions.
 */

#include <gtest/gtest.h>

#include "seq/alphabet.hh"

using namespace dphls::seq;

TEST(DnaAlphabet, EncodeDecodeRoundTrip)
{
    const std::string bases = "ACGT";
    for (char c : bases)
        EXPECT_EQ(dnaToAscii(dnaFromAscii(c)), c);
}

TEST(DnaAlphabet, LowercaseAndRna)
{
    EXPECT_EQ(dnaFromAscii('a').code, dnaFromAscii('A').code);
    EXPECT_EQ(dnaFromAscii('u').code, dnaFromAscii('T').code);
    EXPECT_EQ(dnaFromAscii('U').code, dnaFromAscii('T').code);
}

TEST(DnaAlphabet, UnknownMapsToA)
{
    EXPECT_EQ(dnaFromAscii('N').code, 0);
    EXPECT_EQ(dnaFromAscii('-').code, 0);
}

TEST(DnaAlphabet, TwoBitCodes)
{
    EXPECT_EQ(dnaFromAscii('A').code, 0);
    EXPECT_EQ(dnaFromAscii('C').code, 1);
    EXPECT_EQ(dnaFromAscii('G').code, 2);
    EXPECT_EQ(dnaFromAscii('T').code, 3);
    EXPECT_EQ(DnaChar::bits, 2);
    EXPECT_EQ(DnaChar::numSymbols, 4);
}

TEST(ProteinAlphabet, EncodeDecodeRoundTrip)
{
    for (int i = 0; i < 20; i++) {
        const char c = aminoLetters[i];
        const AminoChar a = aminoFromAscii(c);
        EXPECT_EQ(a.code, i);
        EXPECT_EQ(aminoToAscii(a), c);
    }
}

TEST(ProteinAlphabet, LowercaseAccepted)
{
    EXPECT_EQ(aminoFromAscii('w').code, aminoFromAscii('W').code);
}

TEST(ProteinAlphabet, TwentySymbolsFiveBits)
{
    EXPECT_EQ(AminoChar::numSymbols, 20);
    EXPECT_EQ(AminoChar::bits, 5);
}

TEST(SequenceConversion, DnaStringRoundTrip)
{
    const std::string s = "GATTACACATTAG";
    const DnaSequence seq = dnaFromString(s, "test");
    EXPECT_EQ(seq.name, "test");
    EXPECT_EQ(seq.length(), static_cast<int>(s.size()));
    EXPECT_EQ(dnaToString(seq), s);
}

TEST(SequenceConversion, ProteinStringRoundTrip)
{
    const std::string s = "MKTAYIAKQR";
    EXPECT_EQ(proteinToString(proteinFromString(s)), s);
}

TEST(SequenceConversion, EmptySequence)
{
    const DnaSequence seq = dnaFromString("");
    EXPECT_TRUE(seq.empty());
    EXPECT_EQ(seq.length(), 0);
    EXPECT_EQ(dnaToString(seq), "");
}

TEST(ProfileColumnTest, TotalSumsFrequencies)
{
    ProfileColumn col;
    col.freq = {3, 2, 1, 1, 1};
    EXPECT_EQ(col.total(), 8);
    EXPECT_EQ(ProfileColumn{}.total(), 0);
}

TEST(ProfileColumnTest, Equality)
{
    ProfileColumn a, b;
    a.freq = {1, 2, 3, 4, 5};
    b.freq = {1, 2, 3, 4, 5};
    EXPECT_EQ(a, b);
    b.freq[0] = 9;
    EXPECT_NE(a, b);
}

TEST(ComplexSampleTest, Equality)
{
    ComplexSample a, b;
    a.real = dphls::hls::ApFixed<32, 26>(1.5);
    b.real = dphls::hls::ApFixed<32, 26>(1.5);
    EXPECT_TRUE(a == b);
    b.imag = dphls::hls::ApFixed<32, 26>(0.25);
    EXPECT_FALSE(a == b);
}

TEST(SequenceContainer, IndexingAndMutation)
{
    DnaSequence seq = dnaFromString("ACGT");
    EXPECT_EQ(seq[0].code, 0);
    seq[0] = DnaChar{3};
    EXPECT_EQ(dnaToString(seq), "TCGT");
}
