/**
 * @file
 * Cycle-model tests: closed-form expectations for the wavefront loop,
 * monotonicity in NPE, banding savings, phase overlap and the streaming
 * stall used by the Vitis baseline model.
 */

#include <gtest/gtest.h>

#include "kernels/all.hh"
#include "seq/profile_builder.hh"
#include "seq/read_simulator.hh"
#include "systolic/cycle_model.hh"
#include "systolic/engine.hh"

using namespace dphls;

namespace {

template <typename K>
sim::CycleStats
statsFor(int npe, int qlen, int rlen, uint64_t seed,
         sim::CycleModelOptions opts = {}, int band = 64)
{
    seq::Rng rng(seed);
    const auto q = seq::randomDna(qlen, rng);
    const auto r = seq::randomDna(rlen, rng);
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    cfg.bandWidth = band;
    cfg.cycles = opts;
    cfg.maxQueryLength = 4096;
    cfg.maxReferenceLength = 4096;
    sim::SystolicAligner<K> engine(cfg);
    engine.align(q, r);
    return engine.lastStats();
}

} // namespace

TEST(CycleModel, UnbandedFillTripsClosedForm)
{
    // chunks = ceil(q/npe); full chunks run (rlen + npe - 1) wavefronts,
    // the final partial chunk (rlen + rows - 1).
    for (const int npe : {1, 4, 16, 32}) {
        for (const int qlen : {16, 33, 64, 100}) {
            const int rlen = 48;
            const auto s =
                statsFor<kernels::GlobalLinear>(npe, qlen, rlen, 9);
            uint64_t want = 0;
            int remaining = qlen;
            while (remaining > 0) {
                const int rows = std::min(npe, remaining);
                want += static_cast<uint64_t>(rlen + rows - 1);
                remaining -= rows;
            }
            EXPECT_EQ(s.fillTrips, want)
                << "npe=" << npe << " qlen=" << qlen;
            EXPECT_EQ(s.chunks,
                      static_cast<uint64_t>((qlen + npe - 1) / npe));
        }
    }
}

TEST(CycleModel, FillIncludesPipelineDepthPerChunk)
{
    sim::CycleModelOptions opts;
    opts.pipelineDepth = 11;
    const auto s = statsFor<kernels::GlobalLinear>(8, 32, 40, 10, opts);
    // 4 chunks x (40 + 8 - 1) trips + 4 x 11 overhead.
    EXPECT_EQ(s.fill, 4u * 47u + 4u * 11u);
}

TEST(CycleModel, InitiationIntervalMultipliesTrips)
{
    // Kernel #8 has II=4 (paper Section 7.1): fill = trips*4 + overhead.
    const auto pairs = seq::sampleProfilePairs(1, 40, 11);
    sim::EngineConfig cfg;
    cfg.numPe = 8;
    sim::SystolicAligner<kernels::ProfileAlignment> engine(cfg);
    engine.align(pairs[0].first, pairs[0].second);
    const auto &s = engine.lastStats();
    EXPECT_EQ(s.fill, s.fillTrips * 4 +
                          s.chunks * static_cast<uint64_t>(
                                         cfg.cycles.pipelineDepth));
}

TEST(CycleModel, MorePesFewerFillCycles)
{
    uint64_t prev = ~0ull;
    for (const int npe : {1, 2, 4, 8, 16, 32, 64}) {
        const auto s = statsFor<kernels::GlobalLinear>(npe, 256, 256, 12);
        EXPECT_LT(s.fill, prev) << "npe=" << npe;
        prev = s.fill;
    }
}

TEST(CycleModel, BandedFewerTripsThanUnbanded)
{
    const auto banded = statsFor<kernels::BandedGlobalLinear>(
        16, 200, 200, 13, {}, 16);
    const auto full = statsFor<kernels::GlobalLinear>(16, 200, 200, 13);
    EXPECT_LT(banded.fillTrips, full.fillTrips);
    // Band window per chunk is about 2*band + 2*rows - 1 wavefronts.
    EXPECT_LE(banded.fillTrips,
              static_cast<uint64_t>((200 / 16 + 1) * (2 * 16 + 2 * 16)));
}

TEST(CycleModel, WiderBandMoreTrips)
{
    uint64_t prev = 0;
    for (const int band : {4, 16, 64, 256}) {
        const auto s = statsFor<kernels::BandedGlobalLinear>(
            16, 192, 192, 14, {}, band);
        EXPECT_GT(s.fillTrips, prev) << "band=" << band;
        prev = s.fillTrips;
    }
}

TEST(CycleModel, SequenceLoadUsesBusPacking)
{
    // DNA: 2 bits/char, 64-bit bus -> 32 chars per cycle.
    const auto s = statsFor<kernels::GlobalLinear>(8, 64, 128, 15);
    EXPECT_EQ(s.seqLoad, static_cast<uint64_t>(64 * 2 + 63) / 64 +
                             static_cast<uint64_t>(128 * 2 + 63) / 64);
}

TEST(CycleModel, InitCostsMaxOfLengths)
{
    const auto s = statsFor<kernels::GlobalLinear>(8, 40, 100, 16);
    EXPECT_EQ(s.init, 100u);
}

TEST(CycleModel, TotalIsSumOfPhasesWithoutOverlap)
{
    sim::CycleStats s;
    s.seqLoad = 10;
    s.init = 20;
    s.fill = 100;
    s.reduction = 5;
    s.traceback = 30;
    s.writeback = 8;
    s.extra = 2;
    sim::CycleModelOptions opts;
    EXPECT_EQ(totalCycles(s, opts), 175u);
}

TEST(CycleModel, OverlapHidesFrontEndBehindBody)
{
    sim::CycleStats s;
    s.seqLoad = 10;
    s.init = 20;
    s.fill = 100;
    sim::CycleModelOptions opts;
    opts.overlapLoadInit = true;
    EXPECT_EQ(totalCycles(s, opts), 100u); // body dominates
    s.fill = 5;
    EXPECT_EQ(totalCycles(s, opts), 30u); // front dominates
}

TEST(CycleModel, RtlOverlapBeatsSequentialDpHls)
{
    sim::CycleModelOptions seq_opts;
    sim::CycleModelOptions rtl_opts;
    rtl_opts.overlapLoadInit = true;
    const auto s = statsFor<kernels::GlobalAffine>(32, 256, 256, 17);
    EXPECT_LT(totalCycles(s, rtl_opts), totalCycles(s, seq_opts));
}

TEST(CycleModel, HostStreamStallChargesPerCharacter)
{
    sim::CycleModelOptions opts;
    opts.hostStreamCyclesPerChar = 2;
    const auto s = statsFor<kernels::GlobalLinear>(8, 50, 70, 18, opts);
    EXPECT_EQ(s.extra, 2u * (50 + 70));
}

TEST(CycleModel, TracebackCyclesTrackPathSteps)
{
    seq::Rng rng(19);
    const auto q = seq::randomDna(100, rng);
    const auto r = seq::mutateDna(q, 0.1, 0.05, rng);
    sim::SystolicAligner<kernels::GlobalLinear> engine;
    const auto res = engine.align(q, r);
    const auto &s = engine.lastStats();
    // One FSM step per committed op for a linear kernel.
    EXPECT_EQ(s.traceback, res.ops.size());
    EXPECT_EQ(s.writeback, (res.ops.size() + 3) / 4);
}

TEST(CycleModel, ReductionOnlyForNonGlobalStrategies)
{
    const auto global = statsFor<kernels::GlobalLinear>(16, 64, 64, 20);
    EXPECT_EQ(global.reduction, 0u);
    const auto local = statsFor<kernels::LocalLinear>(16, 64, 64, 20);
    EXPECT_GT(local.reduction, 0u);
    // ceil(log2(16)) + 2 = 6.
    EXPECT_EQ(local.reduction, 6u);
}
