/**
 * @file
 * End-to-end traceback validation: paths recovered from the banked,
 * address-coalesced traceback memory are independently re-scored over the
 * original sequences and must reproduce the reported DP score exactly.
 * This catches pointer-encoding, FSM and memory-addressing bugs that
 * score comparison alone cannot.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "systolic/engine.hh"

using namespace dphls;
using test::randomDnaPair;

namespace {

const auto dnaEq = [](seq::DnaChar a, seq::DnaChar b) { return a == b; };

} // namespace

class TracebackRescore : public ::testing::TestWithParam<int>
{};

TEST_P(TracebackRescore, GlobalLinearPathReproducesScore)
{
    const int npe = GetParam();
    seq::Rng rng(100 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::GlobalLinear> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, t % 2 == 0);
        const auto res = engine.align(p.query, p.reference);
        // Global: path must span both sequences fully.
        EXPECT_EQ(core::pathQuerySpan(res.ops), p.query.length());
        EXPECT_EQ(core::pathRefSpan(res.ops), p.reference.length());
        EXPECT_EQ(res.start, (core::Coord{0, 0}));
        const auto rescored = test::rescoreLinearPath(
            p.query, p.reference, res.ops, res.start, 1, -1, -1, dnaEq);
        EXPECT_EQ(rescored, res.score);
    }
}

TEST_P(TracebackRescore, GlobalAffinePathReproducesScore)
{
    const int npe = GetParam();
    seq::Rng rng(200 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, t % 2 == 0);
        const auto res = engine.align(p.query, p.reference);
        EXPECT_EQ(core::pathQuerySpan(res.ops), p.query.length());
        EXPECT_EQ(core::pathRefSpan(res.ops), p.reference.length());
        const auto rescored = test::rescoreAffinePath(
            p.query, p.reference, res.ops, res.start, 2, -3, 4, 1, dnaEq);
        EXPECT_EQ(rescored, res.score);
    }
}

TEST_P(TracebackRescore, LocalLinearPathReproducesScore)
{
    const int npe = GetParam();
    seq::Rng rng(300 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::LocalLinear> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, t % 2 == 0);
        const auto res = engine.align(p.query, p.reference);
        // Local: the path spans exactly the [start, end] sub-rectangle.
        EXPECT_EQ(core::pathQuerySpan(res.ops),
                  res.end.row - res.start.row);
        EXPECT_EQ(core::pathRefSpan(res.ops), res.end.col - res.start.col);
        const auto rescored = test::rescoreLinearPath(
            p.query, p.reference, res.ops, res.start, 2, -1, -1, dnaEq);
        EXPECT_EQ(rescored, res.score);
        EXPECT_GE(res.score, 0);
    }
}

TEST_P(TracebackRescore, LocalAffinePathReproducesScore)
{
    const int npe = GetParam();
    seq::Rng rng(400 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::LocalAffine> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, t % 2 == 0);
        const auto res = engine.align(p.query, p.reference);
        const auto rescored = test::rescoreAffinePath(
            p.query, p.reference, res.ops, res.start, 2, -3, 4, 1, dnaEq);
        EXPECT_EQ(rescored, res.score);
    }
}

TEST_P(TracebackRescore, SemiGlobalPathSpansQuery)
{
    const int npe = GetParam();
    seq::Rng rng(500 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::SemiGlobal> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, true);
        const auto res = engine.align(p.query, p.reference);
        // The query must be consumed end-to-end; the path stops at row 0.
        EXPECT_EQ(res.start.row, 0);
        EXPECT_EQ(core::pathQuerySpan(res.ops), p.query.length());
        const auto rescored = test::rescoreLinearPath(
            p.query, p.reference, res.ops, res.start, 1, -2, -2, dnaEq);
        EXPECT_EQ(rescored, res.score);
    }
}

TEST_P(TracebackRescore, OverlapPathTouchesBorders)
{
    const int npe = GetParam();
    seq::Rng rng(600 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::Overlap> engine(cfg);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 120, t % 2 == 0);
        const auto res = engine.align(p.query, p.reference);
        // Overlap: starts on the top row or left column and ends on the
        // bottom row or right column.
        EXPECT_TRUE(res.start.row == 0 || res.start.col == 0);
        EXPECT_TRUE(res.end.row == p.query.length() ||
                    res.end.col == p.reference.length());
        const auto rescored = test::rescoreLinearPath(
            p.query, p.reference, res.ops, res.start, 1, -2, -2, dnaEq);
        EXPECT_EQ(rescored, res.score);
    }
}

TEST_P(TracebackRescore, TwoPiecePathReproducesScore)
{
    const int npe = GetParam();
    seq::Rng rng(700 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::GlobalTwoPiece> engine(cfg);
    const auto params = kernels::GlobalTwoPiece::defaultParams();
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 100, true);
        const auto res = engine.align(p.query, p.reference);
        // Re-score with the two-piece convex cost: each gap run costs the
        // cheaper of the two affine pieces.
        int64_t score = 0;
        int qi = 0, rj = 0;
        size_t k = 0;
        while (k < res.ops.size()) {
            const auto op = res.ops[k];
            if (op == core::AlnOp::Match) {
                score += p.query[qi] == p.reference[rj] ? params.match
                                                        : params.mismatch;
                qi++;
                rj++;
                k++;
                continue;
            }
            size_t run = 0;
            while (k + run < res.ops.size() && res.ops[k + run] == op)
                run++;
            const int64_t len = static_cast<int64_t>(run);
            const int64_t c1 =
                params.gapOpen1 + params.gapExtend1 * (len - 1);
            const int64_t c2 =
                params.gapOpen2 + params.gapExtend2 * (len - 1);
            score -= std::min(c1, c2);
            if (op == core::AlnOp::Ins)
                qi += static_cast<int>(run);
            else
                rj += static_cast<int>(run);
            k += run;
        }
        // The optimal path may split a long gap between pieces; the
        // re-scored path cost can only be >= the DP score if the DP chose
        // per-run pieces optimally, and must never be better.
        EXPECT_GE(score, res.score);
        // For moderate gaps the run-level re-scoring is exact.
        if (score != res.score) {
            // Accept only tiny discrepancies from mixed-piece runs.
            EXPECT_LE(score - res.score, 4);
        }
    }
}

TEST_P(TracebackRescore, ProteinLocalPathReproducesScore)
{
    const int npe = GetParam();
    const auto pairs = seq::sampleProteinPairs(
        6, 100, 0.2, 800 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::ProteinLocal> engine(cfg);
    const auto &m = seq::blosum62();
    for (const auto &p : pairs) {
        const auto res = engine.align(p.query, p.target);
        int64_t score = 0;
        int qi = res.start.row, rj = res.start.col;
        for (const auto op : res.ops) {
            switch (op) {
              case core::AlnOp::Match:
                score += m(p.query[qi].code, p.target[rj].code);
                qi++;
                rj++;
                break;
              case core::AlnOp::Ins:
                score += -4;
                qi++;
                break;
              case core::AlnOp::Del:
                score += -4;
                rj++;
                break;
            }
        }
        EXPECT_EQ(score, res.score);
    }
}

TEST_P(TracebackRescore, DtwPathCostMatchesScore)
{
    const int npe = GetParam();
    seq::Rng rng(900 + static_cast<uint64_t>(npe));
    sim::EngineConfig cfg;
    cfg.numPe = npe;
    sim::SystolicAligner<kernels::Dtw> engine(cfg);
    for (int t = 0; t < 5; t++) {
        const auto a = seq::randomComplexSignal(
            20 + static_cast<int>(rng.below(60)), rng);
        const auto b = seq::warpComplexSignal(a, 0.2, 0.3, rng);
        const auto res = engine.align(b, a);
        // Walk the path accumulating fixed-point distances; DTW charges
        // the cell distance at every visited cell. The first op lands on
        // cell (1, 1), accounted for by the initial term.
        using F = kernels::Dtw::ScoreT;
        ASSERT_FALSE(res.ops.empty());
        F acc = kernels::Dtw::distance(b[0], a[0]);
        int qi = 1, rj = 1;
        for (size_t k = 1; k < res.ops.size(); k++) {
            switch (res.ops[k]) {
              case core::AlnOp::Match:
                qi++;
                rj++;
                break;
              case core::AlnOp::Ins:
                qi++;
                break;
              case core::AlnOp::Del:
                rj++;
                break;
            }
            ASSERT_LE(qi, b.length());
            ASSERT_LE(rj, a.length());
            acc += kernels::Dtw::distance(b[qi - 1], a[rj - 1]);
        }
        EXPECT_EQ(acc.raw(), res.score.raw());
    }
}

INSTANTIATE_TEST_SUITE_P(PeWidths, TracebackRescore,
                         ::testing::Values(1, 4, 32));
