/**
 * @file
 * Streaming sDTW basecaller coverage:
 *
 *  - SdtwStream equals the full-matrix golden model bit-for-bit, for
 *    any chunking of the query (chunk boundaries are invisible to the
 *    DP), including degenerate empty-query / empty-reference shapes —
 *    the unified squiggle degenerate-input contract;
 *  - the prefix score is a monotone, admissible lower bound;
 *  - early-abandon pruning never changes a surviving read's outcome
 *    (bit-identity pruned vs unpruned) and only abandons reads whose
 *    bound really exceeded the threshold;
 *  - survivors' device tickets agree with the host DP;
 *  - chunk_io framing round-trips and rejects malformed input.
 */

#include <gtest/gtest.h>

#include <vector>

#include "host/stream_pipeline.hh"
#include "kernels/sdtw.hh"
#include "reference/matrix_aligner.hh"
#include "seq/read_simulator.hh"
#include "seq/squiggle.hh"
#include "workloads/basecaller.hh"
#include "workloads/chunk_io.hh"
#include "workloads/sdtw_stream.hh"

using namespace dphls;
using workloads::BasecallConfig;
using workloads::SdtwStream;
using workloads::SignalChunk;
using workloads::StreamingBasecaller;

namespace {

seq::SignalSequence
randomSignal(int length, seq::Rng &rng)
{
    seq::SignalSequence s;
    s.chars.reserve(static_cast<size_t>(length));
    for (int i = 0; i < length; i++) {
        s.chars.push_back(seq::SignalSample{
            static_cast<int16_t>(40 + rng.below(180))});
    }
    return s;
}

/** Split a signal into chunks of @p chunk samples (last may be short). */
std::vector<seq::SignalSequence>
chunked(const seq::SignalSequence &signal, int chunk)
{
    std::vector<seq::SignalSequence> out;
    for (int at = 0; at < signal.length(); at += chunk) {
        seq::SignalSequence c;
        const int end = std::min(signal.length(), at + chunk);
        c.chars.assign(signal.chars.begin() + at,
                       signal.chars.begin() + end);
        out.push_back(std::move(c));
    }
    return out;
}

host::BatchConfig
sdtwConfig()
{
    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 1;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.maxQueryLength = 1024;
    cfg.maxReferenceLength = 1024;
    cfg.hostOverheadCycles = 0;
    cfg.cacheEntries = 0;
    cfg.collectPathStats = false;
    return cfg;
}

} // namespace

TEST(SdtwStream, MatchesGoldenModelForAnyChunking)
{
    seq::Rng rng(31);
    const ref::MatrixAligner<kernels::Sdtw> golden;
    for (const auto [qlen, rlen] :
         {std::pair{1, 1}, {5, 9}, {64, 80}, {127, 200}, {200, 64}}) {
        const auto query = randomSignal(qlen, rng);
        const auto reference = randomSignal(rlen, rng);
        const auto want = golden.align(query, reference).score;
        for (const int chunk : {1, 3, 7, 64, qlen}) {
            SdtwStream dp(reference);
            for (const auto &c : chunked(query, chunk))
                dp.feed(c);
            ASSERT_EQ(dp.samplesFed(), qlen);
            EXPECT_EQ(dp.score(), want)
                << "qlen " << qlen << " rlen " << rlen << " chunk "
                << chunk;
        }
    }
}

TEST(SdtwStream, DegenerateShapesScoreZeroLikeTheGoldenModel)
{
    seq::Rng rng(32);
    const ref::MatrixAligner<kernels::Sdtw> golden;
    const auto signal = randomSignal(24, rng);
    const seq::SignalSequence empty;

    // Empty query: nothing fed.
    SdtwStream no_query(signal);
    EXPECT_EQ(no_query.score(), 0);
    EXPECT_EQ(no_query.score(), golden.align(empty, signal).score);

    // Empty reference: samples fed against nothing.
    SdtwStream no_ref(empty);
    no_ref.feed(signal);
    EXPECT_EQ(no_ref.score(), 0);
    EXPECT_EQ(no_ref.score(), golden.align(signal, empty).score);

    // Both empty.
    SdtwStream neither(empty);
    EXPECT_EQ(neither.score(), 0);
    EXPECT_EQ(neither.score(), golden.align(empty, empty).score);
}

TEST(SdtwStream, ShortSignalFromSquiggleModelIsEmptyNotPadded)
{
    // The satellite squiggle fix: a DNA sequence shorter than one k-mer
    // yields a truly empty signal from BOTH generators, so a stream fed
    // from it stays at zero samples (no phantom zero-sample event).
    seq::Rng rng(33);
    const seq::SquiggleConfig scfg; // kmer = 6
    const auto tiny = seq::randomDna(5, rng);
    EXPECT_TRUE(seq::expectedSignal(tiny, scfg).empty());
    EXPECT_TRUE(seq::rawSignal(tiny, scfg, rng).empty());

    SdtwStream dp(seq::expectedSignal(seq::randomDna(200, rng), scfg));
    dp.feed(seq::rawSignal(tiny, scfg, rng));
    EXPECT_EQ(dp.samplesFed(), 0);
    EXPECT_EQ(dp.score(), 0);
}

TEST(SdtwStream, PrefixScoreIsMonotoneAdmissibleLowerBound)
{
    seq::Rng rng(34);
    const auto reference = randomSignal(120, rng);
    const auto query = randomSignal(90, rng);
    const ref::MatrixAligner<kernels::Sdtw> golden;
    const auto final_score = golden.align(query, reference).score;

    SdtwStream dp(reference);
    int32_t prev = 0;
    for (int i = 0; i < query.length(); i++) {
        dp.feed(&query.chars[static_cast<size_t>(i)], 1);
        const int32_t bound = dp.score();
        ASSERT_GE(bound, prev) << "row minima must be non-decreasing";
        ASSERT_LE(bound, final_score) << "bound must be admissible";
        prev = bound;
    }
    EXPECT_EQ(prev, final_score);
}

TEST(Basecaller, PruningIsBitIdenticalOnSurvivors)
{
    seq::Rng rng(35);
    const seq::SquiggleConfig scfg;
    const auto target = seq::randomDna(400, rng);
    const auto background = seq::randomDna(400, rng);
    const auto target_signal = seq::expectedSignal(target, scfg);

    BasecallConfig pruned_cfg;
    pruned_cfg.abandonPerSample = 8.0;
    pruned_cfg.minSamplesBeforeAbandon = 32;
    BasecallConfig unpruned_cfg; // abandonPerSample 0: run everything
    const StreamingBasecaller pruned(target_signal, pruned_cfg);
    const StreamingBasecaller unpruned(target_signal, unpruned_cfg);

    int abandoned = 0, survived = 0;
    for (int i = 0; i < 16; i++) {
        const auto &origin = i % 2 == 0 ? target : background;
        const int start = static_cast<int>(rng.below(200));
        seq::DnaSequence sub;
        sub.chars.assign(origin.chars.begin() + start,
                         origin.chars.begin() + start + 120);
        seq::SquiggleConfig q = scfg;
        q.meanDwell = 1.4;
        const auto chunks =
            chunked(seq::rawSignal(sub, q, rng), 48);

        const auto with = pruned.classify(chunks);
        const auto without = unpruned.classify(chunks);
        if (with.abandoned) {
            abandoned++;
            // The abandon decision was justified by the admissible
            // bound at the decision point...
            EXPECT_GT(with.perSample, pruned_cfg.abandonPerSample);
            // ...and the full run can only confirm it (final >= bound).
            EXPECT_GE(without.hostScore, with.hostScore);
        } else {
            survived++;
            // Survivors are untouched by pruning: bit-identical.
            EXPECT_EQ(with.hostScore, without.hostScore);
            EXPECT_EQ(with.samplesConsumed, without.samplesConsumed);
            EXPECT_EQ(with.chunksConsumed, without.chunksConsumed);
            EXPECT_EQ(with.perSample, without.perSample);
        }
    }
    // The threshold must actually separate the draw: both outcomes
    // occur (on-target reads survive, background reads abandon).
    EXPECT_GT(abandoned, 0);
    EXPECT_GT(survived, 0);
}

TEST(Basecaller, DeviceTicketAgreesWithHostStream)
{
    seq::Rng rng(36);
    const seq::SquiggleConfig scfg;
    const auto target = seq::randomDna(160, rng);
    const auto target_signal = seq::expectedSignal(target, scfg);
    const StreamingBasecaller caller(target_signal, BasecallConfig{});
    StreamingBasecaller::Pipeline pipeline(sdtwConfig());

    seq::DnaSequence sub;
    sub.chars.assign(target.chars.begin() + 20,
                     target.chars.begin() + 120);
    seq::SquiggleConfig q = scfg;
    q.meanDwell = 1.5;
    const auto chunks = chunked(seq::rawSignal(sub, q, rng), 32);

    const auto outcome = caller.process(
        pipeline, chunks, host::TicketOptions::afterMs(20, 500, "rt"));
    ASSERT_FALSE(outcome.abandoned);
    ASSERT_TRUE(outcome.deviceScored);
    EXPECT_EQ(outcome.deviceScore, outcome.hostScore);
    EXPECT_GT(outcome.deviceCycles, 0u);
}

// ------------------------------------------------------------ chunk_io

TEST(ChunkIo, RoundTripsInterleavedReads)
{
    seq::Rng rng(37);
    std::vector<SignalChunk> chunks;
    for (int i = 0; i < 6; i++) {
        SignalChunk c;
        c.readId = static_cast<uint32_t>(i % 2);
        c.last = i >= 4;
        c.samples = randomSignal(5 + i, rng);
        chunks.push_back(std::move(c));
    }
    const auto bytes = workloads::encodeChunkStream(chunks);
    const auto decoded = workloads::decodeChunkStream(bytes);
    ASSERT_EQ(decoded.size(), chunks.size());
    for (size_t i = 0; i < chunks.size(); i++) {
        EXPECT_EQ(decoded[i].readId, chunks[i].readId);
        EXPECT_EQ(decoded[i].last, chunks[i].last);
        ASSERT_EQ(decoded[i].samples.chars, chunks[i].samples.chars);
    }

    const auto grouped = workloads::groupChunksByRead(decoded);
    ASSERT_EQ(grouped.size(), 2u);
    EXPECT_EQ(grouped[0].first, 0u);
    EXPECT_EQ(grouped[0].second.size(), 3u);
    EXPECT_EQ(grouped[1].first, 1u);
    EXPECT_EQ(grouped[1].second.size(), 3u);
}

TEST(ChunkIo, ReusedReadIdStartsANewGroup)
{
    seq::Rng rng(38);
    std::vector<SignalChunk> chunks(3);
    chunks[0] = {9, true, randomSignal(4, rng)};
    chunks[1] = {9, false, randomSignal(4, rng)};
    chunks[2] = {9, true, randomSignal(4, rng)};
    const auto grouped = workloads::groupChunksByRead(chunks);
    ASSERT_EQ(grouped.size(), 2u);
    EXPECT_EQ(grouped[0].second.size(), 1u);
    EXPECT_EQ(grouped[1].second.size(), 2u);
}

TEST(ChunkIo, MalformedStreamsThrow)
{
    seq::Rng rng(39);
    SignalChunk c;
    c.readId = 3;
    c.last = true;
    c.samples = randomSignal(8, rng);
    auto bytes = workloads::encodeChunkStream({c});

    // Truncations at every byte boundary must throw, never over-read —
    // except exactly at the magic boundary, which is the valid empty
    // stream (a producer that opened the stream but sent no chunks).
    for (size_t cut = 1; cut < bytes.size(); cut++) {
        if (cut == 4) {
            EXPECT_TRUE(workloads::decodeChunkStream(bytes.data(), cut)
                            .empty());
            continue;
        }
        EXPECT_THROW(workloads::decodeChunkStream(bytes.data(), cut),
                     workloads::ChunkFormatError)
            << "cut " << cut;
    }
    // Bad magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(workloads::decodeChunkStream(bad_magic),
                 workloads::ChunkFormatError);
    // Reserved flag bits.
    auto bad_flags = bytes;
    bad_flags[8] = 0x80; // flags byte of the first frame
    EXPECT_THROW(workloads::decodeChunkStream(bad_flags),
                 workloads::ChunkFormatError);
    // Sample count over the cap (and over the payload).
    auto bad_count = bytes;
    bad_count[9] = 0xff;
    bad_count[10] = 0xff;
    EXPECT_THROW(workloads::decodeChunkStream(bad_count),
                 workloads::ChunkFormatError);
    // Empty input lacks even the magic.
    EXPECT_THROW(workloads::decodeChunkStream(nullptr, 0),
                 workloads::ChunkFormatError);
}
