/**
 * @file
 * Cross-kernel algebraic properties: relations between the scoring
 * families and traceback strategies that must hold for any input. These
 * complement the classic-implementation equivalence tests by checking
 * the *kernels against each other*.
 */

#include <gtest/gtest.h>

#include <limits>

#include "helpers.hh"
#include "reference/classic.hh"
#include "reference/matrix_aligner.hh"
#include "systolic/engine.hh"

using namespace dphls;
using test::randomDnaPair;

class KernelProperties : public ::testing::TestWithParam<uint64_t>
{
  protected:
    seq::Rng rng{GetParam()};
};

TEST_P(KernelProperties, AffineWithEqualOpenExtendEqualsLinear)
{
    // cost(k) = open + (k-1)*extend collapses to k*g when open == extend.
    kernels::GlobalAffine::Params ap;
    ap.match = 1;
    ap.mismatch = -1;
    ap.gapOpen = 2;
    ap.gapExtend = 2;
    kernels::GlobalLinear::Params lp;
    lp.match = 1;
    lp.mismatch = -1;
    lp.linearGap = -2;
    sim::SystolicAligner<kernels::GlobalAffine> affine({}, ap);
    sim::SystolicAligner<kernels::GlobalLinear> linear({}, lp);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 100, t % 2 == 0);
        EXPECT_EQ(affine.align(p.query, p.reference).score,
                  linear.align(p.query, p.reference).score);
    }
}

TEST_P(KernelProperties, TwoPieceWithIdenticalPiecesEqualsAffine)
{
    kernels::GlobalTwoPiece::Params tp;
    tp.match = 2;
    tp.mismatch = -3;
    tp.gapOpen1 = tp.gapOpen2 = 4;
    tp.gapExtend1 = tp.gapExtend2 = 1;
    kernels::GlobalAffine::Params ap;
    ap.match = 2;
    ap.mismatch = -3;
    ap.gapOpen = 4;
    ap.gapExtend = 1;
    sim::SystolicAligner<kernels::GlobalTwoPiece> two({}, tp);
    sim::SystolicAligner<kernels::GlobalAffine> affine({}, ap);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 90, t % 2 == 0);
        EXPECT_EQ(two.align(p.query, p.reference).score,
                  affine.align(p.query, p.reference).score);
    }
}

TEST_P(KernelProperties, LocalDominatesGlobalUnderSameScoring)
{
    // A local alignment may take any sub-path of the global one, so its
    // score is an upper bound when scoring parameters agree.
    kernels::LocalLinear::Params lp;
    lp.match = 1;
    lp.mismatch = -1;
    lp.linearGap = -1;
    kernels::GlobalLinear::Params gp;
    gp.match = 1;
    gp.mismatch = -1;
    gp.linearGap = -1;
    sim::SystolicAligner<kernels::LocalLinear> local({}, lp);
    sim::SystolicAligner<kernels::GlobalLinear> global({}, gp);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 100, t % 2 == 0);
        EXPECT_GE(local.align(p.query, p.reference).score,
                  global.align(p.query, p.reference).score);
    }
}

TEST_P(KernelProperties, StrategyDominanceChain)
{
    // Free ends only help: local >= overlap >= semi-global >= global
    // under identical match/mismatch/gap parameters.
    kernels::LocalLinear::Params lp{1, -2, -2};
    kernels::Overlap::Params op{1, -2, -2};
    kernels::SemiGlobal::Params sp{1, -2, -2};
    kernels::GlobalLinear::Params gp{1, -2, -2};
    sim::SystolicAligner<kernels::LocalLinear> local({}, lp);
    sim::SystolicAligner<kernels::Overlap> overlap({}, op);
    sim::SystolicAligner<kernels::SemiGlobal> semi({}, sp);
    sim::SystolicAligner<kernels::GlobalLinear> global({}, gp);
    for (int t = 0; t < 10; t++) {
        const auto p = randomDnaPair(rng, 100, t % 2 == 0);
        const auto l = local.align(p.query, p.reference).score;
        const auto o = overlap.align(p.query, p.reference).score;
        const auto s = semi.align(p.query, p.reference).score;
        const auto g = global.align(p.query, p.reference).score;
        EXPECT_GE(l, o);
        EXPECT_GE(o, s);
        EXPECT_GE(s, g);
    }
}

TEST_P(KernelProperties, BandedConvergesToUnbandedAsBandGrows)
{
    const auto p = randomDnaPair(rng, 120, true, true);
    sim::SystolicAligner<kernels::GlobalLinear> unbanded;
    const auto full = unbanded.align(p.query, p.reference).score;
    int32_t prev = std::numeric_limits<int32_t>::min();
    for (const int band : {2, 8, 32, 128, 512}) {
        sim::EngineConfig cfg;
        cfg.bandWidth = band;
        sim::SystolicAligner<kernels::BandedGlobalLinear> banded(cfg);
        const auto s = banded.align(p.query, p.reference).score;
        EXPECT_GE(s, prev) << "band " << band;
        EXPECT_LE(s, full) << "band " << band;
        prev = s;
    }
    EXPECT_EQ(prev, full); // band 512 covers everything
}

TEST_P(KernelProperties, IdenticalSequencesScorePerfect)
{
    const auto q = seq::randomDna(
        20 + static_cast<int>(rng.below(100)), rng);
    sim::SystolicAligner<kernels::GlobalLinear> global;
    EXPECT_EQ(global.align(q, q).score, q.length()); // match = +1

    sim::SystolicAligner<kernels::LocalLinear> local;
    EXPECT_EQ(local.align(q, q).score, 2 * q.length()); // match = +2

    sim::SystolicAligner<kernels::Dtw> dtw;
    seq::Rng crng(GetParam() + 1);
    const auto sig = seq::randomComplexSignal(60, crng);
    EXPECT_EQ(dtw.align(sig, sig).score.raw(), 0);

    sim::SystolicAligner<kernels::Sdtw> sdtw(
        sim::EngineConfig{.maxQueryLength = 2048,
                          .maxReferenceLength = 2048});
    const auto pairs = seq::sampleSquigglePairs(1, 100, 40, GetParam());
    // An exact sub-signal of the reference scores 0 under sDTW.
    seq::SignalSequence sub;
    sub.chars.assign(pairs[0].reference.chars.begin() + 10,
                     pairs[0].reference.chars.begin() + 50);
    EXPECT_EQ(sdtw.align(sub, pairs[0].reference).score, 0);
}

TEST_P(KernelProperties, MismatchPenaltyMonotonicity)
{
    // A harsher mismatch penalty can never increase the global score.
    const auto p = randomDnaPair(rng, 100, true);
    kernels::GlobalLinear::Params mild{1, -1, -1};
    kernels::GlobalLinear::Params harsh{1, -4, -1};
    sim::SystolicAligner<kernels::GlobalLinear> a({}, mild);
    sim::SystolicAligner<kernels::GlobalLinear> b({}, harsh);
    EXPECT_GE(a.align(p.query, p.reference).score,
              b.align(p.query, p.reference).score);
}

TEST_P(KernelProperties, SwapSymmetryOfGlobalScore)
{
    // Global alignment with symmetric scoring is symmetric in its
    // arguments (paths transpose, scores match).
    const auto p = randomDnaPair(rng, 90, true);
    sim::SystolicAligner<kernels::GlobalLinear> engine;
    const auto ab = engine.align(p.query, p.reference);
    const auto ba = engine.align(p.reference, p.query);
    EXPECT_EQ(ab.score, ba.score);
    // Transposed path: Ins <-> Del swapped, Match preserved.
    int ins_ab = 0, del_ab = 0, ins_ba = 0, del_ba = 0;
    for (auto op : ab.ops) {
        ins_ab += op == core::AlnOp::Ins;
        del_ab += op == core::AlnOp::Del;
    }
    for (auto op : ba.ops) {
        ins_ba += op == core::AlnOp::Ins;
        del_ba += op == core::AlnOp::Del;
    }
    EXPECT_EQ(ins_ab, del_ba);
    EXPECT_EQ(del_ab, ins_ba);
}

TEST_P(KernelProperties, ViterbiDominatedByPerfectMatchChain)
{
    // The all-match state path upper-bounds any pair-HMM path score.
    const auto q = seq::randomDna(
        10 + static_cast<int>(rng.below(60)), rng);
    const auto r = seq::mutateDna(q, 0.2, 0.1, rng);
    sim::SystolicAligner<kernels::Viterbi> engine;
    const auto params = kernels::Viterbi::defaultParams();
    const auto res = engine.align(q, r);
    const double per_step =
        params.log1M2Delta.toDouble() + params.logEmission[0][0].toDouble();
    const double upper =
        per_step * std::min(q.length(), r.length()) - per_step;
    EXPECT_LE(res.scoreAsDouble(), upper + 1e-6);
}

TEST_P(KernelProperties, ProfileOfSingletonsMatchesPlainAlignment)
{
    // Unit profiles (one sequence per family, gapScale 1) reduce the
    // sum-of-pairs kernel to plain global linear alignment with the
    // pairScore matrix.
    const auto p = randomDnaPair(rng, 60, true, true);
    kernels::ProfileAlignment::Params pp;
    pp.gapScale = 1;
    seq::ProfileSequence q, r;
    for (const auto &c : p.query.chars) {
        seq::ProfileColumn col;
        col.freq[c.code] = 1;
        q.chars.push_back(col);
    }
    for (const auto &c : p.reference.chars) {
        seq::ProfileColumn col;
        col.freq[c.code] = 1;
        r.chars.push_back(col);
    }
    sim::SystolicAligner<kernels::ProfileAlignment> profile({}, pp);

    kernels::GlobalLinear::Params lp{2, -1, -2};
    sim::SystolicAligner<kernels::GlobalLinear> plain({}, lp);
    EXPECT_EQ(profile.align(q, r).score,
              plain.align(p.query, p.reference).score);
}

TEST_P(KernelProperties, ProteinUnitMatrixEqualsDnaStyleScoring)
{
    // BLOSUM replaced by +2/-1 behaves like simple local alignment.
    kernels::ProteinLocal::Params pp;
    for (int a = 0; a < 20; a++) {
        for (int b = 0; b < 20; b++)
            pp.subst.score[a][b] = static_cast<int8_t>(a == b ? 2 : -1);
    }
    pp.linearGap = -1;
    sim::SystolicAligner<kernels::ProteinLocal> prot({}, pp);
    const auto pair = seq::sampleProteinPairs(1, 80, 0.2, GetParam());
    const auto got = prot.align(pair[0].query, pair[0].target);

    // Map the proteins onto a 20-symbol "DNA-like" local alignment via
    // the classic implementation with the same unit matrix.
    const auto want = ref::classic::proteinSwScore(
        pair[0].query, pair[0].target, pp.subst, -1);
    EXPECT_EQ(got.score, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));
