/**
 * @file
 * Admission-reservation torture test: the estimate/submit race that
 * let concurrent submitters over-admit against a deadline budget is
 * closed by reserve-on-estimate / commit-on-submit / release-on-reject
 * (host::AdmissionReservation). With the pipeline paused so nothing
 * drains, T threads hammering reserve→admit-or-release against a
 * budget of B seconds must never admit more than floor(B / E) batches
 * of per-batch work E: the k-th admitted reserver's estimate already
 * includes the k-1 earlier bookings, so it reads at least k·E.
 *
 * Also locked here: release() restores the backlog counters exactly
 * (a fresh reservation on the drained pipeline sees the same estimate
 * as the very first one), and committing via submit() never
 * double-counts once the ticket completes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "host/stream_pipeline.hh"
#include "kernels/semi_global.hh"
#include "seq/read_simulator.hh"

using namespace dphls;
using Pipeline = host::StreamPipeline<kernels::SemiGlobal>;

namespace {

host::BatchConfig
oneChannelConfig()
{
    host::BatchConfig cfg;
    cfg.npe = 16;
    cfg.nb = 1;
    cfg.nk = 1; // a single device channel: all work lands on one slot
    cfg.threads = 1;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    cfg.cpuFallback = false; // no second slot to leak admissions onto
    cfg.gpuModel = false;
    cfg.cacheEntries = 0;
    cfg.collectPathStats = false;
    return cfg;
}

std::vector<Pipeline::Job>
someJobs(int count, seq::Rng &rng)
{
    std::vector<Pipeline::Job> jobs;
    for (int i = 0; i < count; i++) {
        Pipeline::Job job;
        job.query = seq::randomDna(256, rng);
        job.reference = seq::randomDna(320, rng);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

} // namespace

TEST(AdmissionReserve, ReleaseRestoresTheBacklogExactly)
{
    Pipeline pipeline(oneChannelConfig());
    pipeline.pause();
    seq::Rng rng(41);
    const auto jobs = someJobs(6, rng);

    auto first = pipeline.reserveCompletion(jobs);
    const double e = first.estimateSeconds();
    ASSERT_GT(e, 0.0);
    ASSERT_TRUE(first.active());

    // A second reservation stacked on the first sees both bookings.
    auto second = pipeline.reserveCompletion(jobs);
    EXPECT_GE(second.estimateSeconds(), 2 * e * 0.999);

    // Releasing both (out of order) restores the empty backlog: a
    // fresh reservation reads the original estimate again.
    first.release();
    EXPECT_FALSE(first.active());
    first.release(); // idempotent
    second.release();
    auto fresh = pipeline.reserveCompletion(jobs);
    EXPECT_NEAR(fresh.estimateSeconds(), e, e * 1e-6 + 1e-9);
    fresh.release();
    pipeline.resume();
}

TEST(AdmissionReserve, DroppedReservationReleasesInItsDestructor)
{
    Pipeline pipeline(oneChannelConfig());
    pipeline.pause();
    seq::Rng rng(42);
    const auto jobs = someJobs(4, rng);
    const double e = pipeline.reserveCompletion(jobs).estimateSeconds();
    {
        auto scoped = pipeline.reserveCompletion(jobs);
        ASSERT_TRUE(scoped.active());
    } // exception-path semantics: scope exit alone must unbook
    EXPECT_NEAR(pipeline.reserveCompletion(jobs).estimateSeconds(), e,
                e * 1e-6 + 1e-9);
    pipeline.resume();
}

TEST(AdmissionReserve, ConcurrentReserversNeverOverAdmit)
{
    Pipeline pipeline(oneChannelConfig());
    pipeline.pause(); // nothing drains: admissions accumulate
    seq::Rng rng(43);
    const auto jobs = someJobs(6, rng);

    // Per-batch work E on the empty, paused pipeline.
    const double e = [&] {
        auto probe = pipeline.reserveCompletion(jobs);
        return probe.estimateSeconds();
    }();
    ASSERT_GT(e, 0.0);

    // Budget admits at most 5 batches; make it land strictly between
    // multiples of E so float jitter cannot flip the floor.
    const int max_admit = 5;
    const double budget = e * (max_admit + 0.5);

    constexpr int kThreads = 16;
    constexpr int kAttemptsPerThread = 6;
    std::atomic<int> admitted{0};
    std::atomic<int> rejected{0};
    std::vector<Pipeline::Ticket> tickets[kThreads];
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            for (int a = 0; a < kAttemptsPerThread; a++) {
                auto res = pipeline.reserveCompletion(jobs);
                if (res.estimateSeconds() <= budget) {
                    tickets[t].push_back(pipeline.submit(
                        jobs, host::TicketOptions{}, nullptr,
                        std::move(res)));
                    admitted.fetch_add(1, std::memory_order_relaxed);
                } else {
                    res.release();
                    rejected.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    // The bound the reservation protocol guarantees: the k-th admitted
    // reserver read at least k·E, so nobody past floor(budget/E) got
    // in — under ANY interleaving of the 96 attempts.
    EXPECT_LE(admitted.load(), max_admit);
    EXPECT_GE(admitted.load(), 1); // the budget wasn't vacuously tight
    EXPECT_EQ(admitted.load() + rejected.load(),
              kThreads * kAttemptsPerThread);

    // Every reject released its booking; every admit committed into
    // live ticket entries: the backlog now carries exactly the
    // admitted batches.
    auto settled = pipeline.reserveCompletion(jobs);
    EXPECT_NEAR(settled.estimateSeconds(), (admitted.load() + 1) * e,
                e * 1e-3);
    settled.release();

    // Drain everything; completion must return the backlog to empty —
    // committed reservations are not double-counted.
    pipeline.resume();
    for (auto &per_thread : tickets)
        for (auto &ticket : per_thread)
            ticket->wait();
    pipeline.drain();
    auto after = pipeline.reserveCompletion(jobs);
    EXPECT_NEAR(after.estimateSeconds(), e, e * 1e-6 + 1e-9);
    after.release();
}
