/**
 * @file
 * dphls_serve coverage without a daemon process in the loop:
 *
 *  - protocol encode/decode roundtrips, including the ProtocolError
 *    paths (truncated payloads, trailing bytes, bad enum codes) and
 *    binary run-length CIGAR records;
 *  - TenantQuotas all-or-nothing acquire/release semantics;
 *  - admission-policy arithmetic;
 *  - AlignService driven directly with in-memory frames and a
 *    vector-of-frames sink: completed alignments match a blocking
 *    pipeline run bit-for-bit, unmeetable deadlines are rejected at
 *    submit (accounted as rejects, not deadline misses), quota and
 *    malformed rejects answer with the right reason, Stats closes the
 *    accounting, and Shutdown drains;
 *  - framed transport over a socketpair, including header validation.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "kernels/all.hh"
#include "serve/admission.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "serve/service.hh"
#include "serve/socket_io.hh"

using namespace dphls;
using namespace dphls::serve;

namespace {

using Kernel = kernels::GlobalLinear;
using Service = AlignService<Kernel>;
using Pipeline = host::StreamPipeline<Kernel>;

Frame
makeFrame(MsgType type, uint64_t rid, std::vector<uint8_t> payload = {})
{
    Frame f;
    f.header.type = static_cast<uint8_t>(type);
    f.header.requestId = rid;
    f.header.payloadLen = static_cast<uint32_t>(payload.size());
    f.payload = std::move(payload);
    return f;
}

/** Thread-safe response recorder (completion callbacks answer from
 *  worker threads). */
struct CapturedFrames
{
    std::mutex m;
    std::condition_variable cv;
    std::vector<std::tuple<MsgType, uint64_t, std::vector<uint8_t>>>
        frames;

    Service::Sink
    sink()
    {
        return [this](MsgType t, uint64_t rid,
                      std::vector<uint8_t> payload) {
            // Notify under the lock: a waiter woken by the predicate may
            // destroy this recorder as soon as it re-acquires the mutex,
            // so the notify must complete before the unlock.
            std::lock_guard<std::mutex> lk(m);
            frames.emplace_back(t, rid, std::move(payload));
            cv.notify_all();
        };
    }

    bool
    waitFor(size_t n)
    {
        std::unique_lock<std::mutex> lk(m);
        return cv.wait_for(lk, std::chrono::seconds(30),
                           [&] { return frames.size() >= n; });
    }

    std::tuple<MsgType, uint64_t, std::vector<uint8_t>>
    at(size_t i)
    {
        std::lock_guard<std::mutex> lk(m);
        return frames.at(i);
    }

    size_t
    size()
    {
        std::lock_guard<std::mutex> lk(m);
        return frames.size();
    }
};

/** Deterministic DNA code vector (codes 0..3). */
std::vector<uint8_t>
dnaCodes(size_t len, uint64_t seed)
{
    std::vector<uint8_t> codes(len);
    uint64_t state = seed * 2654435761u + 1;
    for (auto &c : codes) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        c = static_cast<uint8_t>((state >> 33) & 3);
    }
    return codes;
}

Pipeline::Job
jobFromCodes(const std::vector<uint8_t> &q, const std::vector<uint8_t> &r)
{
    Pipeline::Job job;
    for (const uint8_t c : q)
        job.query.chars.push_back(seq::DnaChar{c});
    for (const uint8_t c : r)
        job.reference.chars.push_back(seq::DnaChar{c});
    return job;
}

host::BatchConfig
smallConfig()
{
    host::BatchConfig cfg;
    cfg.npe = 8;
    cfg.nb = 1;
    cfg.nk = 1;
    cfg.threads = 1;
    cfg.bandWidth = 16;
    cfg.maxQueryLength = 256;
    cfg.maxReferenceLength = 256;
    cfg.hostOverheadCycles = 0;
    cfg.cacheEntries = 0;
    cfg.collectPathStats = false;
    return cfg;
}

// --------------------------------------------------------- protocol

TEST(ServeProtocol, HelloRoundtrip)
{
    const Frame f =
        makeFrame(MsgType::Hello, 7, encodeHello("global-linear"));
    EXPECT_EQ(decodeHello(f), "global-linear");
}

TEST(ServeProtocol, HelloTrailingBytesThrow)
{
    auto payload = encodeHello("x");
    payload.push_back(0);
    const Frame f = makeFrame(MsgType::Hello, 1, std::move(payload));
    EXPECT_THROW(decodeHello(f), ProtocolError);
}

TEST(ServeProtocol, HelloOkRoundtrip)
{
    ServerInfo info;
    info.kernel = "Global Linear";
    info.maxQueryLength = 1024;
    info.maxReferenceLength = 2048;
    info.alphabetSymbols = 4;
    const Frame f = makeFrame(MsgType::HelloOk, 2, encodeHelloOk(info));
    const ServerInfo got = decodeHelloOk(f);
    EXPECT_EQ(got.kernel, info.kernel);
    EXPECT_EQ(got.maxQueryLength, info.maxQueryLength);
    EXPECT_EQ(got.maxReferenceLength, info.maxReferenceLength);
    EXPECT_EQ(got.alphabetSymbols, info.alphabetSymbols);
}

TEST(ServeProtocol, AlignRequestRoundtrip)
{
    AlignRequest req;
    req.trafficClass = TrafficClass::Interactive;
    req.deadlineMicros = 1500;
    req.tenant = "tenant-a";
    req.jobs.push_back({dnaCodes(12, 1), dnaCodes(17, 2)});
    req.jobs.push_back({{}, dnaCodes(3, 3)}); // empty query is legal
    const Frame f =
        makeFrame(MsgType::Align, 3, encodeAlignRequest(req));
    const AlignRequest got = decodeAlignRequest(f);
    EXPECT_EQ(got.trafficClass, TrafficClass::Interactive);
    EXPECT_EQ(got.deadlineMicros, 1500u);
    EXPECT_EQ(got.tenant, "tenant-a");
    ASSERT_EQ(got.jobs.size(), 2u);
    EXPECT_EQ(got.jobs[0].query, req.jobs[0].query);
    EXPECT_EQ(got.jobs[0].reference, req.jobs[0].reference);
    EXPECT_TRUE(got.jobs[1].query.empty());
    EXPECT_EQ(got.jobs[1].reference, req.jobs[1].reference);
}

TEST(ServeProtocol, AlignRequestTruncationThrows)
{
    AlignRequest req;
    req.tenant = "t";
    req.jobs.push_back({dnaCodes(8, 1), dnaCodes(8, 2)});
    auto payload = encodeAlignRequest(req);
    for (const size_t keep : {size_t{0}, size_t{1}, payload.size() / 2,
                              payload.size() - 1}) {
        std::vector<uint8_t> cut(payload.begin(),
                                 payload.begin() +
                                     static_cast<ptrdiff_t>(keep));
        const Frame f = makeFrame(MsgType::Align, 4, std::move(cut));
        EXPECT_THROW(decodeAlignRequest(f), ProtocolError)
            << "kept " << keep << " of " << payload.size();
    }
    payload.push_back(0); // trailing byte
    const Frame f = makeFrame(MsgType::Align, 4, std::move(payload));
    EXPECT_THROW(decodeAlignRequest(f), ProtocolError);
}

TEST(ServeProtocol, AlignRequestBadTrafficClassThrows)
{
    AlignRequest req;
    req.tenant = "t";
    auto payload = encodeAlignRequest(req);
    payload[0] = 9; // first byte is the traffic class
    const Frame f = makeFrame(MsgType::Align, 5, std::move(payload));
    EXPECT_THROW(decodeAlignRequest(f), ProtocolError);
}

TEST(ServeProtocol, AlignResponseRoundtrip)
{
    AlignResponse res;
    res.deadlineMissed = true;
    res.totalCycles = 123456;
    WireJobResult jr;
    jr.completed = true;
    jr.score = -3.5;
    jr.cycles = 99;
    jr.runs = {4u << 2 | 0u, 1u << 2 | 1u, 2u << 2 | 2u};
    res.results.push_back(jr);
    jr.completed = false;
    jr.runs.clear();
    res.results.push_back(jr);
    const Frame f =
        makeFrame(MsgType::AlignOk, 6, encodeAlignResponse(res));
    const AlignResponse got = decodeAlignResponse(f);
    EXPECT_TRUE(got.deadlineMissed);
    EXPECT_EQ(got.totalCycles, 123456u);
    ASSERT_EQ(got.results.size(), 2u);
    EXPECT_TRUE(got.results[0].completed);
    EXPECT_EQ(got.results[0].score, -3.5);
    EXPECT_EQ(got.results[0].cycles, 99u);
    EXPECT_EQ(got.results[0].runs, res.results[0].runs);
    EXPECT_FALSE(got.results[1].completed);
    EXPECT_TRUE(got.results[1].runs.empty());
}

TEST(ServeProtocol, RejectRoundtripAndBadReason)
{
    const Frame f = makeFrame(
        MsgType::Reject, 7,
        encodeReject({RejectReason::QuotaExceeded, "over quota"}));
    const RejectInfo got = decodeReject(f);
    EXPECT_EQ(got.reason, RejectReason::QuotaExceeded);
    EXPECT_EQ(got.message, "over quota");

    auto bad = encodeReject({RejectReason::Malformed, ""});
    bad[0] = 0; // reason codes start at 1
    EXPECT_THROW(decodeReject(makeFrame(MsgType::Reject, 8,
                                        std::move(bad))),
                 ProtocolError);
}

TEST(ServeProtocol, StatsRoundtrip)
{
    ServeStats stats;
    stats.acceptedRequests = 10;
    stats.rejectedDeadline = 2;
    stats.rejectedQuota = 1;
    stats.completedJobs = 40;
    stats.deadlineMissJobs = 3;
    stats.totalCycles = 777;
    stats.alignsPerSec = 1e6;
    stats.accountingClosed = true;
    WireBackendStats b;
    b.name = "device0";
    b.clockMhz = 250.0;
    b.busyCycles = 500;
    b.totalCycles = 700;
    b.alignments = 40;
    b.preemptions = 6;
    b.seconds = 2.8e-6;
    stats.backends.push_back(b);
    const Frame f = makeFrame(MsgType::StatsOk, 9, encodeStats(stats));
    const ServeStats got = decodeStats(f);
    EXPECT_EQ(got.acceptedRequests, 10u);
    EXPECT_EQ(got.rejectedDeadline, 2u);
    EXPECT_EQ(got.rejectedRequests(), 3u);
    EXPECT_EQ(got.completedJobs, 40u);
    EXPECT_EQ(got.deadlineMissJobs, 3u);
    EXPECT_TRUE(got.accountingClosed);
    ASSERT_EQ(got.backends.size(), 1u);
    EXPECT_EQ(got.backends[0].name, "device0");
    EXPECT_EQ(got.backends[0].alignments, 40);
    EXPECT_EQ(got.backends[0].preemptions, 6);
    EXPECT_DOUBLE_EQ(got.backends[0].clockMhz, 250.0);
}

TEST(ServeProtocol, RunsRoundtrip)
{
    using core::AlnOp;
    std::vector<AlnOp> ops;
    for (int i = 0; i < 5; i++)
        ops.push_back(AlnOp::Match);
    ops.push_back(AlnOp::Ins);
    ops.push_back(AlnOp::Ins);
    ops.push_back(AlnOp::Del);
    for (int i = 0; i < 3; i++)
        ops.push_back(AlnOp::Match);
    const auto runs = encodeRuns(ops);
    ASSERT_EQ(runs.size(), 4u); // 5M 2I 1D 3M
    EXPECT_EQ(runs[0], 5u << 2 | 0u);
    EXPECT_EQ(runs[1], 2u << 2 | 1u);
    EXPECT_EQ(runs[2], 1u << 2 | 2u);
    EXPECT_EQ(runs[3], 3u << 2 | 0u);
    EXPECT_EQ(decodeRuns(runs), ops);
    EXPECT_TRUE(encodeRuns({}).empty());
    EXPECT_TRUE(decodeRuns({}).empty());
}

TEST(ServeProtocol, DecodeRunsRejectsBadOp)
{
    EXPECT_THROW(decodeRuns({1u << 2 | 3u}), ProtocolError);
}

// ---------------------------------------------- fuzz-found regressions
// Named reproducers for what the first fuzz session surfaced; the raw
// byte inputs also live in fuzz/regressions/ and replay in every build
// through the fuzz_replay_* CTest cases.

TEST(FuzzRegression, DecodeRunsCapsSingleWordExpansion)
{
    // One 4-byte run word with a 30-bit count demanded a ~1 GiB
    // allocation before the expansion cap existed.
    EXPECT_THROW(decodeRuns({((1u << 30) - 1) << 2 | 0u}),
                 ProtocolError);
}

TEST(FuzzRegression, DecodeRunsCapsSummedExpansion)
{
    // Each word stays under the cap; their sum must still trip it.
    const uint32_t word = (1u << 28) << 2;
    EXPECT_THROW(decodeRuns({word | 0u, word | 1u, word | 2u}),
                 ProtocolError);
    // A legitimately long single run still decodes.
    EXPECT_EQ(decodeRuns({100000u << 2 | 0u}).size(), 100000u);
}

TEST(FuzzRegression, AlignRequestImpossibleJobCountThrows)
{
    // 13-byte payload declaring 2^20 jobs: must be rejected before
    // reserve() allocates ~48 MB on the attacker's count.
    WireWriter w;
    w.u8(0);          // traffic class
    w.u64(0);         // deadline
    w.shortString(""); // tenant
    w.u32(1u << 20);  // declared job count, no job bytes follow
    const Frame f = makeFrame(MsgType::Align, 90, std::move(w.bytes()));
    EXPECT_THROW(decodeAlignRequest(f), ProtocolError);
}

TEST(FuzzRegression, AlignRequestDeclaredSeqBeyondPayloadThrows)
{
    // Declared 16 MB sequences on a frame holding 2 bytes: validation
    // must precede the resize() so truncation never allocates.
    WireWriter w;
    w.u8(0);
    w.u64(0);
    w.shortString("");
    w.u32(1);
    w.u32(1u << 24); // qlen
    w.u32(1u << 24); // rlen
    w.u8(0);
    w.u8(1); // 2 of the declared 32 MB
    const Frame f = makeFrame(MsgType::Align, 91, std::move(w.bytes()));
    EXPECT_THROW(decodeAlignRequest(f), ProtocolError);
}

TEST(FuzzRegression, AlignResponseImpossibleRunCountThrows)
{
    // One result declaring 2^24 run words with none present: must be
    // rejected before the 64 MB reserve().
    WireWriter w;
    w.u8(0);
    w.u64(0);
    w.u32(1); // result count
    w.u8(1);  // completed
    w.f64(0.0);
    w.u64(0);
    w.u32(1u << 24); // declared run words, none follow
    const Frame f =
        makeFrame(MsgType::AlignOk, 92, std::move(w.bytes()));
    EXPECT_THROW(decodeAlignResponse(f), ProtocolError);
}

TEST(FuzzRegression, ParseFrameHeaderValidates)
{
    uint8_t hdr[kFrameHeaderBytes] = {};
    hdr[0] = 'D';
    hdr[1] = 'P';
    hdr[2] = 'H';
    hdr[3] = 'L';
    hdr[4] = kVersion;
    hdr[5] = static_cast<uint8_t>(MsgType::Stats);
    FrameHeader out;
    std::string err;
    EXPECT_TRUE(parseFrameHeader(hdr, out, &err)) << err;
    EXPECT_EQ(out.type, static_cast<uint8_t>(MsgType::Stats));

    uint8_t bad_magic[kFrameHeaderBytes] = {};
    std::memcpy(bad_magic, hdr, sizeof(hdr));
    bad_magic[0] = 'X';
    EXPECT_FALSE(parseFrameHeader(bad_magic, out, &err));
    EXPECT_EQ(err, "bad frame magic");

    uint8_t bad_version[kFrameHeaderBytes] = {};
    std::memcpy(bad_version, hdr, sizeof(hdr));
    bad_version[4] = kVersion + 1;
    EXPECT_FALSE(parseFrameHeader(bad_version, out, &err));
    EXPECT_EQ(err, "unsupported protocol version");

    uint8_t oversize[kFrameHeaderBytes] = {};
    std::memcpy(oversize, hdr, sizeof(hdr));
    oversize[8] = 0xFF;
    oversize[9] = 0xFF;
    oversize[10] = 0xFF;
    oversize[11] = 0xFF;
    EXPECT_FALSE(parseFrameHeader(oversize, out, &err));
    EXPECT_EQ(err, "payload length over limit");
}

// ------------------------------------------------------------ quota

TEST(TenantQuotas, AllOrNothingUnderCap)
{
    TenantQuotas q(10);
    EXPECT_TRUE(q.tryAcquire("a", 6));
    EXPECT_EQ(q.inFlight("a"), 6u);
    EXPECT_FALSE(q.tryAcquire("a", 5)); // 6 + 5 > 10: nothing reserved
    EXPECT_EQ(q.inFlight("a"), 6u);
    EXPECT_TRUE(q.tryAcquire("a", 4));
    EXPECT_EQ(q.inFlight("a"), 10u);
    EXPECT_TRUE(q.tryAcquire("b", 10)); // caps are per tenant
    q.release("a", 10);
    EXPECT_EQ(q.inFlight("a"), 0u);
    EXPECT_EQ(q.inFlight("b"), 10u);
}

TEST(TenantQuotas, ZeroCapDisables)
{
    TenantQuotas q(0);
    EXPECT_TRUE(q.tryAcquire("a", 1'000'000));
    EXPECT_EQ(q.inFlight("a"), 0u); // not even tracked
}

TEST(TenantQuotas, ReleaseClampsAndForgets)
{
    TenantQuotas q(5);
    EXPECT_TRUE(q.tryAcquire("a", 3));
    q.release("a", 100); // over-release clamps to zero
    EXPECT_EQ(q.inFlight("a"), 0u);
    q.release("never-seen", 1); // unknown tenant is a no-op
}

// -------------------------------------------------------- admission

TEST(Admission, PolicyArithmetic)
{
    AdmissionPolicy p;
    EXPECT_TRUE(admits(p, 0.5, 1.0));
    EXPECT_TRUE(admits(p, 1.0, 1.0)); // boundary admits
    EXPECT_FALSE(admits(p, 1.1, 1.0));
    EXPECT_TRUE(admits(p, 100.0, 0.0)); // no budget = no deadline
    p.slack = 2.0;
    EXPECT_TRUE(admits(p, 1.9, 1.0));
    p.enabled = false;
    EXPECT_TRUE(admits(p, 1e9, 1.0));
}

// ---------------------------------------------------------- service

TEST(AlignService, HelloAnswersAndChecksKernel)
{
    Service service(smallConfig(),
                    {.kernelAlias = "global-linear"});
    CapturedFrames out;
    service.handleFrame(
        makeFrame(MsgType::Hello, 1, encodeHello("global-linear")),
        out.sink());
    service.handleFrame(
        makeFrame(MsgType::Hello, 2, encodeHello(Kernel::name)),
        out.sink());
    service.handleFrame(
        makeFrame(MsgType::Hello, 3, encodeHello("local-affine")),
        out.sink());
    ASSERT_EQ(out.size(), 3u);
    auto [t1, rid1, p1] = out.at(0);
    EXPECT_EQ(t1, MsgType::HelloOk);
    EXPECT_EQ(rid1, 1u);
    const ServerInfo info =
        decodeHelloOk(makeFrame(MsgType::HelloOk, rid1, p1));
    EXPECT_EQ(info.kernel, Kernel::name);
    EXPECT_EQ(info.alphabetSymbols, seq::DnaChar::numSymbols);
    EXPECT_EQ(info.maxQueryLength, 256u);
    EXPECT_EQ(std::get<0>(out.at(1)), MsgType::HelloOk);
    EXPECT_EQ(std::get<0>(out.at(2)), MsgType::Error);
}

TEST(AlignService, AlignMatchesBlockingPipeline)
{
    const auto cfg = smallConfig();
    Service service(cfg);
    CapturedFrames out;

    AlignRequest req;
    req.tenant = "t";
    std::vector<Pipeline::Job> jobs;
    for (int i = 0; i < 4; i++) {
        WireJob wj{dnaCodes(40 + static_cast<size_t>(i) * 13,
                            static_cast<uint64_t>(i) * 2 + 1),
                   dnaCodes(35 + static_cast<size_t>(i) * 17,
                            static_cast<uint64_t>(i) * 2 + 2)};
        jobs.push_back(jobFromCodes(wj.query, wj.reference));
        req.jobs.push_back(std::move(wj));
    }

    Pipeline blocking(cfg);
    std::vector<Pipeline::Result> want;
    std::vector<uint64_t> want_cycles;
    blocking.runAll(jobs, &want, &want_cycles);

    service.handleFrame(
        makeFrame(MsgType::Align, 42, encodeAlignRequest(req)),
        out.sink());
    ASSERT_TRUE(out.waitFor(1));
    auto [type, rid, payload] = out.at(0);
    ASSERT_EQ(type, MsgType::AlignOk);
    EXPECT_EQ(rid, 42u);
    const AlignResponse res =
        decodeAlignResponse(makeFrame(MsgType::AlignOk, rid, payload));
    EXPECT_FALSE(res.deadlineMissed);
    ASSERT_EQ(res.results.size(), want.size());
    for (size_t i = 0; i < want.size(); i++) {
        EXPECT_TRUE(res.results[i].completed) << i;
        EXPECT_EQ(res.results[i].score, want[i].scoreAsDouble()) << i;
        EXPECT_EQ(res.results[i].cycles, want_cycles[i]) << i;
        EXPECT_EQ(res.results[i].runs, encodeRuns(want[i].ops)) << i;
    }

    const ServeStats stats = service.snapshot();
    EXPECT_EQ(stats.acceptedRequests, 1u);
    EXPECT_EQ(stats.rejectedRequests(), 0u);
    EXPECT_EQ(stats.completedJobs, jobs.size());
    EXPECT_EQ(stats.deadlineMissJobs, 0u);
    EXPECT_TRUE(stats.accountingClosed);
    ASSERT_FALSE(stats.backends.empty());
}

TEST(AlignService, UnmeetableDeadlineRejectedAtSubmit)
{
    Service service(smallConfig());
    CapturedFrames out;

    AlignRequest req;
    req.trafficClass = TrafficClass::Interactive;
    req.deadlineMicros = 1; // no 200-length DP fits in a microsecond
    req.tenant = "t";
    for (int i = 0; i < 4; i++)
        req.jobs.push_back(
            {dnaCodes(200, static_cast<uint64_t>(i) + 1),
             dnaCodes(200, static_cast<uint64_t>(i) + 100)});

    service.handleFrame(
        makeFrame(MsgType::Align, 5, encodeAlignRequest(req)),
        out.sink());
    ASSERT_EQ(out.size(), 1u); // rejects answer synchronously
    auto [type, rid, payload] = out.at(0);
    ASSERT_EQ(type, MsgType::Reject);
    EXPECT_EQ(rid, 5u);
    const RejectInfo info =
        decodeReject(makeFrame(MsgType::Reject, rid, payload));
    EXPECT_EQ(info.reason, RejectReason::DeadlineUnmeetable);

    // Rejected at submit: an admission reject, never a deadline miss,
    // and absent from the job accounting entirely.
    const ServeStats stats = service.snapshot();
    EXPECT_EQ(stats.rejectedDeadline, 1u);
    EXPECT_EQ(stats.deadlineMissJobs, 0u);
    EXPECT_EQ(stats.acceptedRequests, 0u);
    EXPECT_EQ(stats.completedJobs, 0u);
    EXPECT_TRUE(stats.accountingClosed);
    EXPECT_EQ(service.inFlight("t"), 0u); // quota released on reject
}

TEST(AlignService, AdmissionDisabledAcceptsTightDeadline)
{
    ServiceConfig scfg;
    scfg.admission.enabled = false;
    Service service(smallConfig(), scfg);
    CapturedFrames out;

    AlignRequest req;
    req.deadlineMicros = 1;
    req.tenant = "t";
    req.jobs.push_back({dnaCodes(64, 1), dnaCodes(64, 2)});
    // Deadline misses are wall-clock: hold the pipeline paused past the
    // one-microsecond deadline so the miss is deterministic.
    service.pipeline().pause();
    service.handleFrame(
        makeFrame(MsgType::Align, 6, encodeAlignRequest(req)),
        out.sink());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    service.pipeline().resume();
    ASSERT_TRUE(out.waitFor(1));
    EXPECT_EQ(std::get<0>(out.at(0)), MsgType::AlignOk);
    const ServeStats stats = service.snapshot();
    EXPECT_EQ(stats.acceptedRequests, 1u);
    // The deadline was accepted and then (deterministically) missed:
    // the miss shows up in the miss counter, not the reject counter.
    EXPECT_EQ(stats.rejectedDeadline, 0u);
    EXPECT_EQ(stats.deadlineMissJobs, 1u);
    EXPECT_TRUE(stats.accountingClosed);
}

TEST(AlignService, QuotaRejectsOversizedTenant)
{
    ServiceConfig scfg;
    scfg.maxInFlightJobsPerTenant = 2;
    Service service(smallConfig(), scfg);
    CapturedFrames out;

    AlignRequest req;
    req.tenant = "greedy";
    for (int i = 0; i < 3; i++)
        req.jobs.push_back(
            {dnaCodes(16, static_cast<uint64_t>(i) + 1),
             dnaCodes(16, static_cast<uint64_t>(i) + 50)});
    service.handleFrame(
        makeFrame(MsgType::Align, 7, encodeAlignRequest(req)),
        out.sink());
    ASSERT_EQ(out.size(), 1u);
    auto [type, rid, payload] = out.at(0);
    ASSERT_EQ(type, MsgType::Reject);
    const RejectInfo info =
        decodeReject(makeFrame(MsgType::Reject, rid, payload));
    EXPECT_EQ(info.reason, RejectReason::QuotaExceeded);
    EXPECT_EQ(service.inFlight("greedy"), 0u);

    // Under the cap the same tenant is served, and the quota drains
    // back to zero once the ticket completes.
    req.jobs.resize(2);
    service.handleFrame(
        makeFrame(MsgType::Align, 8, encodeAlignRequest(req)),
        out.sink());
    ASSERT_TRUE(out.waitFor(2));
    EXPECT_EQ(std::get<0>(out.at(1)), MsgType::AlignOk);
    EXPECT_EQ(service.inFlight("greedy"), 0u);
    const ServeStats stats = service.snapshot();
    EXPECT_EQ(stats.rejectedQuota, 1u);
    EXPECT_EQ(stats.completedJobs, 2u);
    EXPECT_TRUE(stats.accountingClosed);
}

TEST(AlignService, BadAlphabetCodeIsMalformed)
{
    Service service(smallConfig());
    CapturedFrames out;

    AlignRequest req;
    req.tenant = "t";
    WireJob wj{dnaCodes(8, 1), dnaCodes(8, 2)};
    wj.query[3] = seq::DnaChar::numSymbols; // first out-of-range code
    req.jobs.push_back(std::move(wj));
    service.handleFrame(
        makeFrame(MsgType::Align, 9, encodeAlignRequest(req)),
        out.sink());
    ASSERT_EQ(out.size(), 1u);
    auto [type, rid, payload] = out.at(0);
    ASSERT_EQ(type, MsgType::Reject);
    const RejectInfo info =
        decodeReject(makeFrame(MsgType::Reject, rid, payload));
    EXPECT_EQ(info.reason, RejectReason::Malformed);
    EXPECT_EQ(service.snapshot().rejectedMalformed, 1u);
}

TEST(AlignService, UnexpectedTypeAnswersError)
{
    Service service(smallConfig());
    CapturedFrames out;
    service.handleFrame(makeFrame(MsgType::HelloOk, 10), out.sink());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(std::get<0>(out.at(0)), MsgType::Error);
}

TEST(AlignService, ShutdownDrainsThenRejectsNewWork)
{
    Service service(smallConfig());
    CapturedFrames out;

    AlignRequest req;
    req.tenant = "t";
    req.jobs.push_back({dnaCodes(32, 1), dnaCodes(32, 2)});
    service.handleFrame(
        makeFrame(MsgType::Align, 11, encodeAlignRequest(req)),
        out.sink());
    service.handleFrame(makeFrame(MsgType::Shutdown, 12), out.sink());
    EXPECT_TRUE(service.draining());
    // Shutdown drains first, so the in-flight AlignOk precedes
    // ShutdownOk in the sink.
    ASSERT_TRUE(out.waitFor(2));
    EXPECT_EQ(std::get<0>(out.at(0)), MsgType::AlignOk);
    EXPECT_EQ(std::get<0>(out.at(1)), MsgType::ShutdownOk);
    EXPECT_EQ(std::get<1>(out.at(1)), 12u);

    service.handleFrame(
        makeFrame(MsgType::Align, 13, encodeAlignRequest(req)),
        out.sink());
    ASSERT_EQ(out.size(), 3u);
    auto [type, rid, payload] = out.at(2);
    ASSERT_EQ(type, MsgType::Reject);
    const RejectInfo info =
        decodeReject(makeFrame(MsgType::Reject, rid, payload));
    EXPECT_EQ(info.reason, RejectReason::ShuttingDown);
}

TEST(AlignService, StatsFrameReturnsClosedAccounting)
{
    Service service(smallConfig());
    CapturedFrames out;
    AlignRequest req;
    req.tenant = "t";
    req.jobs.push_back({dnaCodes(24, 1), dnaCodes(24, 2)});
    service.handleFrame(
        makeFrame(MsgType::Align, 14, encodeAlignRequest(req)),
        out.sink());
    ASSERT_TRUE(out.waitFor(1));
    service.handleFrame(makeFrame(MsgType::Stats, 15), out.sink());
    ASSERT_TRUE(out.waitFor(2));
    auto [type, rid, payload] = out.at(1);
    ASSERT_EQ(type, MsgType::StatsOk);
    EXPECT_EQ(rid, 15u);
    const ServeStats stats =
        decodeStats(makeFrame(MsgType::StatsOk, rid, payload));
    EXPECT_EQ(stats.acceptedRequests, 1u);
    EXPECT_EQ(stats.completedJobs, 1u);
    EXPECT_TRUE(stats.accountingClosed);
    uint64_t section_aligns = 0;
    for (const auto &b : stats.backends)
        section_aligns += static_cast<uint64_t>(b.alignments);
    EXPECT_EQ(section_aligns, stats.completedJobs);
}

// -------------------------------------------------------- transport

TEST(SocketIo, FrameRoundtripOverSocketpair)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Fd a(sv[0]), b(sv[1]);

    const auto payload = encodeHello("global-linear");
    ASSERT_TRUE(writeFrame(a.get(), MsgType::Hello, 99, payload));
    Frame got;
    std::string err;
    ASSERT_TRUE(readFrame(b.get(), got, &err)) << err;
    EXPECT_EQ(got.type(), MsgType::Hello);
    EXPECT_EQ(got.requestId(), 99u);
    EXPECT_EQ(got.payload, payload);

    // Empty payload frames work too.
    ASSERT_TRUE(writeFrame(a.get(), MsgType::Stats, 100, {}));
    ASSERT_TRUE(readFrame(b.get(), got, &err)) << err;
    EXPECT_EQ(got.type(), MsgType::Stats);
    EXPECT_TRUE(got.payload.empty());

    // Clean EOF: false with no error message.
    a.reset();
    err.clear();
    EXPECT_FALSE(readFrame(b.get(), got, &err));
    EXPECT_TRUE(err.empty());
}

TEST(SocketIo, BadMagicReportsError)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Fd a(sv[0]), b(sv[1]);

    uint8_t junk[kFrameHeaderBytes] = {};
    std::memset(junk, 0xEE, sizeof junk);
    ASSERT_TRUE(sendAll(a.get(), junk, sizeof junk));
    Frame got;
    std::string err;
    EXPECT_FALSE(readFrame(b.get(), got, &err));
    EXPECT_FALSE(err.empty());
}

TEST(SocketIo, OversizedPayloadLengthReportsError)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    Fd a(sv[0]), b(sv[1]);

    // Valid magic/version but a payload length over the cap: the
    // reader must refuse before allocating.
    uint8_t hdr[kFrameHeaderBytes] = {};
    for (int i = 0; i < 4; i++)
        hdr[i] = static_cast<uint8_t>(kMagic >> (8 * i));
    hdr[4] = kVersion;
    hdr[5] = static_cast<uint8_t>(MsgType::Align);
    const uint32_t huge = kMaxPayloadBytes + 1;
    for (int i = 0; i < 4; i++)
        hdr[8 + i] = static_cast<uint8_t>(huge >> (8 * i));
    ASSERT_TRUE(sendAll(a.get(), hdr, sizeof hdr));
    Frame got;
    std::string err;
    EXPECT_FALSE(readFrame(b.get(), got, &err));
    EXPECT_FALSE(err.empty());
}

// -------------------------------------------- realtime traffic class

TEST(ServeProtocol, RealtimeClassRoundtrip)
{
    AlignRequest req;
    req.trafficClass = TrafficClass::Realtime;
    req.deadlineMicros = 900;
    req.tenant = "pore-0";
    req.jobs.push_back({dnaCodes(16, 1), dnaCodes(16, 2)});
    const Frame f =
        makeFrame(MsgType::Align, 8, encodeAlignRequest(req));
    const AlignRequest got = decodeAlignRequest(f);
    EXPECT_EQ(got.trafficClass, TrafficClass::Realtime);
    EXPECT_EQ(got.deadlineMicros, 900u);
}

TEST(ServeProtocol, ClassJustAboveRealtimeIsMalformed)
{
    // Realtime = 2 is the last known class; 3 must be rejected as
    // malformed exactly like any other unknown value, so an old server
    // never silently mis-schedules traffic from a newer client.
    AlignRequest req;
    req.tenant = "t";
    auto payload = encodeAlignRequest(req);
    payload[0] =
        static_cast<uint8_t>(TrafficClass::Realtime) + 1;
    const Frame f = makeFrame(MsgType::Align, 9, std::move(payload));
    EXPECT_THROW(decodeAlignRequest(f), ProtocolError);
}

TEST(AlignService, RealtimeRequestServedAndAccounted)
{
    ServiceConfig scfg;
    scfg.realtimePriority = 42; // custom knob must be accepted as-is
    Service service(smallConfig(), scfg);
    CapturedFrames out;

    AlignRequest req;
    req.trafficClass = TrafficClass::Realtime;
    req.tenant = "pore-0";
    req.jobs.push_back({dnaCodes(48, 5), dnaCodes(48, 6)});
    service.handleFrame(
        makeFrame(MsgType::Align, 11, encodeAlignRequest(req)),
        out.sink());
    ASSERT_TRUE(out.waitFor(1));
    auto [type, rid, payload] = out.at(0);
    ASSERT_EQ(type, MsgType::AlignOk);
    EXPECT_EQ(rid, 11u);
    const AlignResponse res =
        decodeAlignResponse(makeFrame(MsgType::AlignOk, rid, payload));
    ASSERT_EQ(res.results.size(), 1u);
    EXPECT_TRUE(res.results[0].completed);

    const ServeStats stats = service.snapshot();
    EXPECT_EQ(stats.acceptedRequests, 1u);
    EXPECT_EQ(stats.completedJobs, 1u);
    EXPECT_TRUE(stats.accountingClosed);
}

} // namespace
