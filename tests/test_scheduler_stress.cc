/**
 * @file
 * ThreadPool stress tests guarding the StreamPipeline's async paths:
 * concurrent submit() from multiple producers, wait() reentrancy
 * (including wait() racing wait()), tasks that submit follow-up tasks,
 * destruction with work still queued, and — at the pipeline level —
 * submissions racing completion waits and drains (the old
 * BatchPipeline's documented accounting race, now fixed by per-ticket
 * accounting).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "host/scheduler.hh"
#include "host/stream_pipeline.hh"
#include "kernels/local_affine.hh"
#include "seq/read_simulator.hh"

using namespace dphls::host;

TEST(ThreadPoolStress, ManyProducersManyTasks)
{
    for (int round = 0; round < 5; round++) {
        ThreadPool pool(4);
        std::atomic<int> count{0};
        const int producers = 8;
        const int per_producer = 200;
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; p++) {
            threads.emplace_back([&] {
                for (int i = 0; i < per_producer; i++)
                    pool.submit([&count] { count++; });
            });
        }
        for (auto &t : threads)
            t.join();
        pool.wait();
        EXPECT_EQ(count.load(), producers * per_producer) << round;
    }
}

TEST(ThreadPoolStress, WaitFromMultipleThreads)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; i++) {
        pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::microseconds(10));
            count++;
        });
    }
    // Several threads wait() on the same pool concurrently; each must
    // observe all 500 tasks complete.
    std::vector<std::thread> waiters;
    for (int w = 0; w < 4; w++) {
        waiters.emplace_back([&] {
            pool.wait();
            EXPECT_EQ(count.load(), 500);
        });
    }
    for (auto &t : waiters)
        t.join();
}

TEST(ThreadPoolStress, WaitIsReentrantAfterIdle)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 50; round++) {
        pool.submit([&count] { count++; });
        pool.wait();
        EXPECT_EQ(count.load(), round + 1);
        pool.wait(); // idle wait() must return immediately
    }
}

TEST(ThreadPoolStress, TasksSubmittingTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    // Each parent enqueues its child before finishing, so wait() cannot
    // observe an empty queue with pending work.
    for (int i = 0; i < 100; i++) {
        pool.submit([&pool, &count] {
            pool.submit([&count] { count++; });
            count++;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolStress, DestructionDrainsQueuedWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; i++) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(5));
                count++;
            });
        }
        // Destructor runs with most of the queue still pending; queued
        // work must complete, not be dropped.
    }
    EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPoolStress, PopOrderIsPriorityThenDeadlineThenFifo)
{
    ThreadPool pool(1);
    // Gate the single worker so every task below is queued before any
    // of them can run; the drain order is then pure pop order. The
    // submissions must wait until the worker has actually entered the
    // gate task — otherwise a high-priority task submitted early could
    // be popped ahead of the gate itself.
    std::mutex mutex;
    std::condition_variable cv;
    bool go = false;
    std::atomic<bool> gate_entered{false};
    pool.submit([&] {
        gate_entered = true;
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return go; });
    });
    while (!gate_entered.load())
        std::this_thread::yield();

    std::vector<int> order;
    std::mutex order_mutex;
    const auto record = [&](int id) {
        return [&order, &order_mutex, id] {
            std::lock_guard lock(order_mutex);
            order.push_back(id);
        };
    };
    pool.submit(record(0));                        // class 0, FIFO first
    pool.submit(record(1), {.priority = 5});       // highest class
    pool.submit(record(2), {.priority = 5, .deadlineSeconds = 10.0});
    pool.submit(record(3), {.priority = 5, .deadlineSeconds = 2.0});
    pool.submit(record(4), {.priority = 1});
    pool.submit(record(5));                        // class 0, FIFO second

    {
        std::lock_guard lock(mutex);
        go = true;
        cv.notify_all();
    }
    pool.wait();

    // Priority desc, then deadline asc (finite before infinite), then
    // submission order.
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 4, 0, 5}));
}

TEST(ThreadPoolStress, SubmitRacingWait)
{
    for (int round = 0; round < 10; round++) {
        ThreadPool pool(3);
        std::atomic<int> count{0};
        std::thread producer([&] {
            for (int i = 0; i < 100; i++)
                pool.submit([&count] { count++; });
        });
        // wait() may legitimately return while the producer is still
        // submitting; it must never deadlock or crash.
        pool.wait();
        producer.join();
        pool.wait();
        EXPECT_EQ(count.load(), 100) << round;
    }
}

namespace {

using StressKernel = dphls::kernels::LocalAffine;
using StressPipeline = StreamPipeline<StressKernel>;

std::vector<StressPipeline::Job>
stressJobs(int n, uint64_t seed)
{
    std::vector<StressPipeline::Job> jobs;
    dphls::seq::Rng rng(seed);
    for (int i = 0; i < n; i++) {
        StressPipeline::Job j;
        j.query = dphls::seq::randomDna(
            12 + static_cast<int>(rng.below(40)), rng);
        j.reference = dphls::seq::mutateDna(j.query, 0.1, 0.05, rng);
        jobs.push_back(std::move(j));
    }
    return jobs;
}

} // namespace

/**
 * The old BatchPipeline documented that a submit() overlapping a
 * drain() races the epoch accounting. Accounting is now per-ticket:
 * producers submit and wait on their own tickets while a consumer
 * thread drains concurrently, and every job must land in exactly one
 * accounting bucket (per-ticket stats observed by producers always
 * cover their whole batch; drained epochs plus the final drain cover
 * every submission exactly once).
 */
TEST(StreamPipelineStress, SubmitConcurrentWithCompletionWaitsAndDrain)
{
    BatchConfig cfg;
    cfg.npe = 4;
    cfg.nk = 3;
    cfg.threads = 2;
    StressPipeline pipeline(cfg);

    const int producers = 4;
    const int batches_per_producer = 12;
    const int jobs_per_batch = 3;

    std::atomic<int> ticket_alignments{0};
    std::atomic<int> callback_fires{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; p++) {
        threads.emplace_back([&, p] {
            for (int b = 0; b < batches_per_producer; b++) {
                auto ticket = pipeline.submit(
                    stressJobs(jobs_per_batch,
                               static_cast<uint64_t>(p * 1000 + b)),
                    [&callback_fires](BatchTicket<StressKernel> &) {
                        callback_fires++;
                    });
                // Completion wait racing other producers' submissions
                // and the consumer's drains.
                ticket->wait();
                EXPECT_EQ(ticket->stats().alignments, jobs_per_batch);
                EXPECT_EQ(ticket->results().size(),
                          static_cast<size_t>(jobs_per_batch));
                ticket_alignments += ticket->stats().alignments;
            }
        });
    }

    // Consumer drains while producers are mid-submission; each drain
    // must observe whole batches only.
    std::atomic<bool> stop{false};
    int drained_alignments = 0;
    std::thread consumer([&] {
        while (!stop.load()) {
            const auto stats = pipeline.drain();
            EXPECT_EQ(stats.alignments % jobs_per_batch, 0);
            drained_alignments += stats.alignments;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    for (auto &t : threads)
        t.join();
    stop = true;
    consumer.join();
    drained_alignments += pipeline.drain().alignments;

    const int total = producers * batches_per_producer * jobs_per_batch;
    EXPECT_EQ(ticket_alignments.load(), total);
    EXPECT_EQ(drained_alignments, total);
    EXPECT_EQ(callback_fires.load(), producers * batches_per_producer);
}
