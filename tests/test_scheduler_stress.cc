/**
 * @file
 * ThreadPool stress tests guarding the BatchPipeline's async drain()
 * path: concurrent submit() from multiple producers, wait() reentrancy
 * (including wait() racing wait()), tasks that submit follow-up tasks,
 * and destruction with work still queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "host/scheduler.hh"

using namespace dphls::host;

TEST(ThreadPoolStress, ManyProducersManyTasks)
{
    for (int round = 0; round < 5; round++) {
        ThreadPool pool(4);
        std::atomic<int> count{0};
        const int producers = 8;
        const int per_producer = 200;
        std::vector<std::thread> threads;
        for (int p = 0; p < producers; p++) {
            threads.emplace_back([&] {
                for (int i = 0; i < per_producer; i++)
                    pool.submit([&count] { count++; });
            });
        }
        for (auto &t : threads)
            t.join();
        pool.wait();
        EXPECT_EQ(count.load(), producers * per_producer) << round;
    }
}

TEST(ThreadPoolStress, WaitFromMultipleThreads)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; i++) {
        pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::microseconds(10));
            count++;
        });
    }
    // Several threads wait() on the same pool concurrently; each must
    // observe all 500 tasks complete.
    std::vector<std::thread> waiters;
    for (int w = 0; w < 4; w++) {
        waiters.emplace_back([&] {
            pool.wait();
            EXPECT_EQ(count.load(), 500);
        });
    }
    for (auto &t : waiters)
        t.join();
}

TEST(ThreadPoolStress, WaitIsReentrantAfterIdle)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 50; round++) {
        pool.submit([&count] { count++; });
        pool.wait();
        EXPECT_EQ(count.load(), round + 1);
        pool.wait(); // idle wait() must return immediately
    }
}

TEST(ThreadPoolStress, TasksSubmittingTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    // Each parent enqueues its child before finishing, so wait() cannot
    // observe an empty queue with pending work.
    for (int i = 0; i < 100; i++) {
        pool.submit([&pool, &count] {
            pool.submit([&count] { count++; });
            count++;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolStress, DestructionDrainsQueuedWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 300; i++) {
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(5));
                count++;
            });
        }
        // Destructor runs with most of the queue still pending; queued
        // work must complete, not be dropped.
    }
    EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPoolStress, SubmitRacingWait)
{
    for (int round = 0; round < 10; round++) {
        ThreadPool pool(3);
        std::atomic<int> count{0};
        std::thread producer([&] {
            for (int i = 0; i < 100; i++)
                pool.submit([&count] { count++; });
        });
        // wait() may legitimately return while the producer is still
        // submitting; it must never deadlock or crash.
        pool.wait();
        producer.join();
        pool.wait();
        EXPECT_EQ(count.load(), 100) << round;
    }
}
