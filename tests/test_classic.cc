/**
 * @file
 * Tests for the independent textbook reference implementations: known
 * hand-computed examples plus algebraic properties relating the
 * algorithm family members to one another.
 */

#include <gtest/gtest.h>

#include "reference/classic.hh"
#include "seq/read_simulator.hh"
#include "seq/squiggle.hh"

using namespace dphls;
using namespace dphls::ref::classic;
using seq::dnaFromString;
using seq::Rng;

TEST(ClassicNw, HandComputedExamples)
{
    // Identical sequences: all matches.
    EXPECT_EQ(nwScore(dnaFromString("ACGT"), dnaFromString("ACGT"), 1, -1,
                      -1),
              4);
    // One mismatch.
    EXPECT_EQ(nwScore(dnaFromString("ACGT"), dnaFromString("AGGT"), 1, -1,
                      -1),
              2);
    // Fig. 1 of the paper: ACTG vs ACTC, match 1, mismatch -1, gap -1.
    EXPECT_EQ(nwScore(dnaFromString("ACTG"), dnaFromString("ACTC"), 1, -1,
                      -1),
              2);
    // Pure gaps: empty vs non-empty.
    EXPECT_EQ(nwScore(dnaFromString(""), dnaFromString("ACGT"), 1, -1, -1),
              -4);
    EXPECT_EQ(nwScore(dnaFromString("AC"), dnaFromString(""), 1, -1, -1),
              -2);
}

TEST(ClassicNw, GapVersusMismatchTradeoff)
{
    // With cheap gaps, deletion+insertion beats a mismatch.
    const auto q = dnaFromString("AG");
    const auto r = dnaFromString("AT");
    EXPECT_EQ(nwScore(q, r, 2, -5, -1), 0); // match + del + ins = 2-1-1
}

TEST(ClassicSw, HandComputedExamples)
{
    // Local alignment of a shared core.
    EXPECT_EQ(swScore(dnaFromString("TTTACGTTT"), dnaFromString("GGACGTGG"),
                      2, -3, -3),
              8); // "ACGT" x2
    // Disjoint content: best local score is a single match at least 0.
    EXPECT_GE(swScore(dnaFromString("AAAA"), dnaFromString("CCCC"), 2, -3,
                      -3),
              0);
}

TEST(ClassicSw, NeverNegative)
{
    Rng rng(31);
    for (int t = 0; t < 30; t++) {
        const auto q = seq::randomDna(1 + (int)rng.below(80), rng);
        const auto r = seq::randomDna(1 + (int)rng.below(80), rng);
        EXPECT_GE(swScore(q, r, 1, -2, -2), 0);
    }
}

TEST(ClassicGotoh, EqualsLinearWhenOpenEqualsExtend)
{
    // Affine cost open + (k-1)*ext with open == ext == g is k*g: linear.
    Rng rng(32);
    for (int t = 0; t < 30; t++) {
        const auto q = seq::randomDna(1 + (int)rng.below(60), rng);
        const auto r = seq::randomDna(1 + (int)rng.below(60), rng);
        EXPECT_EQ(gotohScore(q, r, 1, -1, 2, 2), nwScore(q, r, 1, -1, -2));
    }
}

TEST(ClassicGotoh, OpeningCostsMoreThanExtending)
{
    // One long gap must beat two short gaps under affine scoring.
    const auto q = dnaFromString("AAAATTTT");
    const auto r = dnaFromString("AAAACCTTTT");
    const auto affine = gotohScore(q, r, 1, -4, 5, 1);
    // Expected: 8 matches - (open 5 + extend 1) for the 2-gap = 8 - 6.
    EXPECT_EQ(affine, 2);
}

TEST(ClassicTwoPiece, ReducesToAffineWithIdenticalPieces)
{
    Rng rng(33);
    for (int t = 0; t < 30; t++) {
        const auto q = seq::randomDna(1 + (int)rng.below(60), rng);
        const auto r = seq::randomDna(1 + (int)rng.below(60), rng);
        EXPECT_EQ(twoPieceScore(q, r, 2, -3, 4, 1, 4, 1),
                  gotohScore(q, r, 2, -3, 4, 1));
    }
}

TEST(ClassicTwoPiece, LongGapsUseCheapPiece)
{
    // A 20-base gap: piece 1 costs 4+19*2 = 42, piece 2 costs 13+19 = 32.
    const auto q = dnaFromString("ACGTACGTAC");
    std::string with_gap = "ACGTA" + std::string(20, 'G') + "CGTAC";
    const auto r = dnaFromString(with_gap);
    const auto score = twoPieceScore(q, r, 1, -2, 4, 2, 13, 1);
    EXPECT_EQ(score, 10 - 32);
}

TEST(ClassicTwoPiece, AlwaysAtLeastAffine)
{
    // The two-piece max over both pieces can only help.
    Rng rng(34);
    for (int t = 0; t < 20; t++) {
        const auto q = seq::randomDna(1 + (int)rng.below(50), rng);
        const auto r = seq::mutateDna(q, 0.2, 0.3, rng);
        EXPECT_GE(twoPieceScore(q, r, 2, -3, 4, 2, 13, 1),
                  gotohScore(q, r, 2, -3, 4, 2));
    }
}

TEST(ClassicBanded, EqualsUnbandedWhenBandCovers)
{
    Rng rng(35);
    for (int t = 0; t < 30; t++) {
        const auto q = seq::randomDna(1 + (int)rng.below(50), rng);
        const auto r = seq::mutateDna(q, 0.1, 0.05, rng);
        const int band = std::max(q.length(), r.length());
        EXPECT_EQ(bandedNwScore(q, r, 1, -1, -1, band),
                  nwScore(q, r, 1, -1, -1));
    }
}

TEST(ClassicBanded, NarrowBandNeverBeatsUnbanded)
{
    Rng rng(36);
    for (int t = 0; t < 30; t++) {
        const auto q = seq::randomDna(40, rng);
        const auto r = seq::mutateDna(q, 0.2, 0.1, rng);
        if (std::abs(q.length() - r.length()) > 4)
            continue;
        EXPECT_LE(bandedNwScore(q, r, 1, -1, -1, 4),
                  nwScore(q, r, 1, -1, -1));
    }
}

TEST(ClassicOverlap, PerfectSuffixPrefixOverlap)
{
    // query suffix "CCGG" == reference prefix.
    const auto q = dnaFromString("AAAACCGG");
    const auto r = dnaFromString("CCGGTTTT");
    EXPECT_EQ(overlapScore(q, r, 1, -3, -3), 4);
}

TEST(ClassicOverlap, AtLeastLocalContentLowerBound)
{
    // Overlap allows free ends, so a perfect overlap scores the overlap
    // length; unrelated sequences can still go to ~0 via empty overlap.
    const auto q = dnaFromString("AAAA");
    const auto r = dnaFromString("TTTT");
    EXPECT_GE(overlapScore(q, r, 1, -1, -1), -1);
}

TEST(ClassicSemiGlobal, FindsContainedQuery)
{
    // Query contained in reference: all matches, free flanks.
    const auto q = dnaFromString("CGTA");
    const auto r = dnaFromString("TTTTCGTATTTT");
    EXPECT_EQ(semiGlobalScore(q, r, 1, -2, -2), 4);
}

TEST(ClassicSemiGlobal, QueryGapsPenalized)
{
    const auto q = dnaFromString("CGATA");
    const auto r = dnaFromString("TTCGTATT");
    // Best: CG-ATA vs CG.TA with one query char unmatched -> 4 matches
    // minus one gap.
    EXPECT_EQ(semiGlobalScore(q, r, 1, -2, -2), 2);
}

TEST(ClassicDtw, IdenticalSignalsHaveZeroDistance)
{
    Rng rng(37);
    const auto a = seq::randomComplexSignal(60, rng);
    EXPECT_DOUBLE_EQ(dtwDistance(a, a), 0.0);
}

TEST(ClassicDtw, WarpedCopyFarCloserThanUnrelatedSignal)
{
    Rng rng(38);
    const auto a = seq::randomComplexSignal(60, rng);
    const auto warped = seq::warpComplexSignal(a, 0.2, 0.05, rng);
    const auto unrelated = seq::randomComplexSignal(60, rng);
    EXPECT_LT(dtwDistance(a, warped), dtwDistance(a, unrelated) / 5.0);
}

TEST(ClassicDtw, RepeatOnlyWarpIsFree)
{
    // Pure dwell (repeated samples) costs nothing under DTW: construct a
    // copy where every sample appears twice.
    Rng rng(381);
    const auto a = seq::randomComplexSignal(40, rng);
    seq::ComplexSequence doubled;
    for (const auto &s : a.chars) {
        doubled.chars.push_back(s);
        doubled.chars.push_back(s);
    }
    EXPECT_DOUBLE_EQ(dtwDistance(a, doubled), 0.0);
}

TEST(ClassicSdtw, FindsSubSignal)
{
    Rng rng(39);
    const auto dna = seq::randomDna(300, rng);
    seq::SquiggleConfig cfg;
    const auto ref = seq::expectedSignal(dna, cfg);
    // Query = exact middle slice of the reference: distance 0.
    seq::SignalSequence q;
    q.chars.assign(ref.chars.begin() + 100, ref.chars.begin() + 160);
    EXPECT_EQ(sdtwDistance(q, ref), 0);
}

TEST(ClassicSdtw, NoisierQueryScoresWorse)
{
    const auto pairs = seq::sampleSquigglePairs(1, 200, 60, 40);
    const auto base = sdtwDistance(pairs[0].query, pairs[0].reference);
    // Add strong noise to the query; the distance must grow.
    auto noisy = pairs[0].query;
    Rng rng(41);
    for (auto &s : noisy.chars) {
        s.value = static_cast<int16_t>(
            std::min(1023, std::max(0, s.value + (int)rng.range(-60, 60))));
    }
    EXPECT_GT(sdtwDistance(noisy, pairs[0].reference), base);
}

TEST(ClassicViterbi, IdenticalSequencesMoreLikely)
{
    Rng rng(42);
    const auto q = seq::randomDna(40, rng);
    const auto r = seq::mutateDna(q, 0.3, 0.0, rng);
    const double same = viterbiLogProb(q, q, 0.1, 0.3, 0.22, 0.01);
    const double diff = viterbiLogProb(q, r, 0.1, 0.3, 0.22, 0.01);
    EXPECT_GT(same, diff);
    EXPECT_TRUE(std::isfinite(same));
    EXPECT_TRUE(std::isfinite(diff));
}

TEST(ClassicViterbi, MonotoneInMatchProbability)
{
    Rng rng(43);
    const auto q = seq::randomDna(30, rng);
    EXPECT_GT(viterbiLogProb(q, q, 0.1, 0.3, 0.25, 0.01),
              viterbiLogProb(q, q, 0.1, 0.3, 0.15, 0.01));
}

TEST(ClassicProfile, UnitProfilesReduceToPairScores)
{
    // Profiles with a single sequence each: sum-of-pairs = pair score.
    const int8_t m[5][5] = {
        { 2, -1, -1, -1, -2},
        {-1,  2, -1, -1, -2},
        {-1, -1,  2, -1, -2},
        {-1, -1, -1,  2, -2},
        {-2, -2, -2, -2,  0},
    };
    auto make_unit = [](const std::string &s) {
        seq::ProfileSequence p;
        for (char c : s) {
            seq::ProfileColumn col;
            col.freq[seq::dnaFromAscii(c).code] = 1;
            p.chars.push_back(col);
        }
        return p;
    };
    const auto p1 = make_unit("ACGT");
    const auto p2 = make_unit("ACGT");
    EXPECT_EQ(profileScore(p1, p2, m, 1), 8); // 4 matches x 2
}

TEST(ClassicProteinSw, UniformMatrixReducesToDnaStyleSw)
{
    // A matrix with +2 diagonal and -1 off-diagonal behaves like simple
    // match/mismatch local alignment.
    seq::ProteinMatrix m;
    for (int a = 0; a < 20; a++) {
        for (int b = 0; b < 20; b++)
            m.score[a][b] = static_cast<int8_t>(a == b ? 2 : -1);
    }
    const auto q = seq::proteinFromString("WWWACDEFWWW");
    const auto r = seq::proteinFromString("YYACDEFYY");
    EXPECT_EQ(proteinSwScore(q, r, m, -2), 10); // "ACDEF" x2
}

TEST(ClassicProteinSw, Blosum62KnownAlignment)
{
    const auto q = seq::proteinFromString("HEAGAWGHEE");
    const auto r = seq::proteinFromString("PAWHEAE");
    // Classic textbook pair (Durbin et al.); with BLOSUM62 and linear
    // gap -8 the best local alignment is AWGHE vs AW-HE.
    const auto s = proteinSwScore(q, r, seq::blosum62(), -8);
    EXPECT_EQ(s, 20);
}
