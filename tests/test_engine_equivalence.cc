/**
 * @file
 * The central back-end correctness property: for every kernel and every
 * PE-array width, the systolic engine (chunked wavefront execution,
 * two-wavefront buffers, preserved-row buffer, banked coalesced traceback
 * memory, local-max reduction) must produce results bit-identical to the
 * obviously-correct full-matrix executor running the same kernel
 * specification — score, optimum cell, traceback start and the entire
 * path.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "reference/matrix_aligner.hh"
#include "systolic/engine.hh"

using namespace dphls;
using test::randomDnaPair;

namespace {

template <typename K>
void
expectEqualResults(const core::AlignResult<typename K::ScoreT> &gold,
                   const core::AlignResult<typename K::ScoreT> &got,
                   int npe)
{
    EXPECT_EQ(core::ScoreTraits<typename K::ScoreT>::toDouble(gold.score),
              core::ScoreTraits<typename K::ScoreT>::toDouble(got.score))
        << K::name << " npe=" << npe;
    EXPECT_EQ(gold.end, got.end) << K::name << " npe=" << npe;
    EXPECT_EQ(gold.start, got.start) << K::name << " npe=" << npe;
    EXPECT_EQ(gold.ops, got.ops) << K::name << " npe=" << npe;
}

/** Run one pair through reference and engine across a sweep of NPEs. */
template <typename K>
void
crossCheck(const seq::Sequence<typename K::CharT> &q,
           const seq::Sequence<typename K::CharT> &r, int band)
{
    ref::MatrixAligner<K> gold_aligner(K::defaultParams(), band);
    const auto gold = gold_aligner.align(q, r);
    for (const int npe : {1, 2, 3, 7, 16, 32, 128}) {
        sim::EngineConfig cfg;
        cfg.numPe = npe;
        cfg.bandWidth = band;
        cfg.maxQueryLength = 4096;
        cfg.maxReferenceLength = 4096;
        sim::SystolicAligner<K> engine(cfg);
        expectEqualResults<K>(gold, engine.align(q, r), npe);
    }
}

} // namespace

/** DNA-alphabet kernels share a typed test. */
template <typename K>
class DnaEngineEquivalence : public ::testing::Test
{};

using DnaKernels = ::testing::Types<
    kernels::GlobalLinear, kernels::GlobalAffine, kernels::LocalLinear,
    kernels::LocalAffine, kernels::GlobalTwoPiece, kernels::Overlap,
    kernels::SemiGlobal, kernels::Viterbi, kernels::BandedGlobalLinear,
    kernels::BandedLocalAffine, kernels::BandedGlobalTwoPiece>;
TYPED_TEST_SUITE(DnaEngineEquivalence, DnaKernels);

TYPED_TEST(DnaEngineEquivalence, RelatedPairs)
{
    seq::Rng rng(1000 + TypeParam::kernelId);
    for (int t = 0; t < 8; t++) {
        const auto p = randomDnaPair(rng, 150, true, TypeParam::banded);
        crossCheck<TypeParam>(p.query, p.reference, 24);
    }
}

TYPED_TEST(DnaEngineEquivalence, UnrelatedPairs)
{
    seq::Rng rng(2000 + TypeParam::kernelId);
    for (int t = 0; t < 8; t++) {
        const auto p = randomDnaPair(rng, 150, false, TypeParam::banded);
        crossCheck<TypeParam>(p.query, p.reference, 24);
    }
}

TYPED_TEST(DnaEngineEquivalence, ShortSequences)
{
    seq::Rng rng(3000 + TypeParam::kernelId);
    for (int t = 0; t < 12; t++) {
        const auto p = randomDnaPair(rng, 6, false, TypeParam::banded);
        crossCheck<TypeParam>(p.query, p.reference, 24);
    }
}

TYPED_TEST(DnaEngineEquivalence, ChunkBoundaryLengths)
{
    // Lengths straddling multiples of common NPE values exercise partial
    // final chunks (including single-row chunks).
    seq::Rng rng(4000 + TypeParam::kernelId);
    for (const int qlen : {15, 16, 17, 31, 32, 33, 63, 64, 65}) {
        auto q = seq::randomDna(qlen, rng);
        auto r = seq::mutateDna(q, 0.1, 0.05, rng);
        if (TypeParam::banded) {
            const int len = std::min(q.length(), r.length());
            q.chars.resize(static_cast<size_t>(len));
            r.chars.resize(static_cast<size_t>(len));
        }
        crossCheck<TypeParam>(q, r, 24);
    }
}

TEST(EngineEquivalenceDtw, RandomWarpedSignals)
{
    seq::Rng rng(51);
    for (int t = 0; t < 6; t++) {
        const auto a = seq::randomComplexSignal(
            20 + static_cast<int>(rng.below(100)), rng);
        const auto b = seq::warpComplexSignal(a, 0.2, 0.4, rng);
        crossCheck<kernels::Dtw>(b, a, 0);
    }
}

TEST(EngineEquivalenceSdtw, SquigglePairs)
{
    const auto pairs = seq::sampleSquigglePairs(6, 180, 50, 52);
    for (const auto &p : pairs)
        crossCheck<kernels::Sdtw>(p.query, p.reference, 0);
}

TEST(EngineEquivalenceProfile, RelatedProfiles)
{
    const auto pairs = seq::sampleProfilePairs(5, 70, 53);
    for (const auto &p : pairs)
        crossCheck<kernels::ProfileAlignment>(p.first, p.second, 0);
}

TEST(EngineEquivalenceProtein, SampledPairs)
{
    const auto pairs = seq::sampleProteinPairs(6, 120, 0.25, 54);
    for (const auto &p : pairs)
        crossCheck<kernels::ProteinLocal>(p.query, p.target, 0);
}

/** Parameterized band sweep for the banded kernels. */
class BandSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BandSweep, BandedKernelsMatchReferenceAtAllBandWidths)
{
    const int band = GetParam();
    seq::Rng rng(60 + static_cast<uint64_t>(band));
    for (int t = 0; t < 5; t++) {
        const auto p = randomDnaPair(rng, 100, true, true);
        {
            ref::MatrixAligner<kernels::BandedGlobalLinear> gold(
                kernels::BandedGlobalLinear::defaultParams(), band);
            sim::EngineConfig cfg;
            cfg.numPe = 16;
            cfg.bandWidth = band;
            sim::SystolicAligner<kernels::BandedGlobalLinear> engine(cfg);
            expectEqualResults<kernels::BandedGlobalLinear>(
                gold.align(p.query, p.reference),
                engine.align(p.query, p.reference), 16);
        }
        {
            ref::MatrixAligner<kernels::BandedLocalAffine> gold(
                kernels::BandedLocalAffine::defaultParams(), band);
            sim::EngineConfig cfg;
            cfg.numPe = 16;
            cfg.bandWidth = band;
            sim::SystolicAligner<kernels::BandedLocalAffine> engine(cfg);
            expectEqualResults<kernels::BandedLocalAffine>(
                gold.align(p.query, p.reference),
                engine.align(p.query, p.reference), 16);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bands, BandSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 48, 512));
