/**
 * @file
 * Tests for the GACT-style tiling driver (paper contribution 5): path
 * validity, near-optimal scores on long reads, and progress guarantees.
 */

#include <gtest/gtest.h>

#include "host/tiling.hh"
#include "kernels/global_affine.hh"
#include "reference/classic.hh"
#include "seq/read_simulator.hh"

using namespace dphls;

namespace {

struct LongPair
{
    seq::DnaSequence query;
    seq::DnaSequence reference;
};

LongPair
makeLongPair(int len, double err, uint64_t seed)
{
    seq::Rng rng(seed);
    LongPair p;
    p.reference = seq::randomDna(len, rng);
    p.query = seq::mutateDna(p.reference, err, err / 2, rng);
    return p;
}

} // namespace

TEST(CommittedOps, LastTileKeepsEverything)
{
    const std::vector<core::AlnOp> ops(40, core::AlnOp::Match);
    EXPECT_EQ(host::committedOps(ops, 40, 40, 16, true), 40);
}

TEST(CommittedOps, TruncatesAtTileMinusOverlap)
{
    // 40 matches in a 40x40 tile with overlap 16: keep 24.
    const std::vector<core::AlnOp> ops(40, core::AlnOp::Match);
    EXPECT_EQ(host::committedOps(ops, 40, 40, 16, false), 24);
}

TEST(CommittedOps, GapsCountAgainstTheirSequenceOnly)
{
    // 10 deletions then matches: deletions consume only the reference.
    std::vector<core::AlnOp> ops(10, core::AlnOp::Del);
    ops.insert(ops.end(), 30, core::AlnOp::Match);
    // keep_r = 24: reached after 10 D + 14 M = 24 ops.
    EXPECT_EQ(host::committedOps(ops, 40, 40, 16, false), 24);
}

TEST(CommittedOps, AlwaysMakesProgress)
{
    const std::vector<core::AlnOp> ops{core::AlnOp::Match};
    EXPECT_GE(host::committedOps(ops, 2, 2, 16, false), 1);
}

TEST(Tiling, PathSpansBothSequences)
{
    const auto p = makeLongPair(3000, 0.1, 41);
    sim::EngineConfig cfg;
    cfg.numPe = 32;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
    const auto tiled =
        host::tiledAlign(engine, p.query, p.reference,
                         host::TilingConfig{512, 128});
    EXPECT_EQ(core::pathQuerySpan(tiled.ops), p.query.length());
    EXPECT_EQ(core::pathRefSpan(tiled.ops), p.reference.length());
    EXPECT_GT(tiled.tiles, 4);
    EXPECT_GT(tiled.totalCycles, 0u);
}

TEST(Tiling, NearOptimalScoreOnLongReads)
{
    // GACT's guarantee: with sufficient overlap the tiled path score is
    // within a small margin of the optimal untiled score.
    for (const uint64_t seed : {42ull, 43ull, 44ull}) {
        const auto p = makeLongPair(2500, 0.08, seed);
        sim::EngineConfig cfg;
        cfg.numPe = 32;
        cfg.maxQueryLength = 512;
        cfg.maxReferenceLength = 512;
        sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
        const auto tiled = host::tiledAlign(
            engine, p.query, p.reference, host::TilingConfig{512, 128});
        const auto tiled_score = host::rescoreAffinePath(
            p.query, p.reference, tiled.ops,
            kernels::GlobalAffine::defaultParams());
        const auto optimal = ref::classic::gotohScore(
            p.query, p.reference, 2, -3, 4, 1);
        ASSERT_GT(optimal, 0);
        EXPECT_GE(tiled_score,
                  static_cast<int64_t>(0.95 * static_cast<double>(optimal)))
            << "seed " << seed;
        EXPECT_LE(tiled_score, optimal) << "seed " << seed;
    }
}

TEST(Tiling, SingleTileEqualsDirectAlignment)
{
    const auto p = makeLongPair(300, 0.1, 45);
    sim::EngineConfig cfg;
    cfg.numPe = 16;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
    const auto tiled = host::tiledAlign(
        engine, p.query, p.reference, host::TilingConfig{512, 128});
    EXPECT_EQ(tiled.tiles, 1);
    const auto direct = engine.align(p.query, p.reference);
    EXPECT_EQ(tiled.ops, direct.ops);
}

TEST(Tiling, MoreOverlapNeverFewerTiles)
{
    const auto p = makeLongPair(4000, 0.1, 46);
    sim::EngineConfig cfg;
    cfg.numPe = 32;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
    const auto small = host::tiledAlign(engine, p.query, p.reference,
                                        host::TilingConfig{512, 64});
    const auto large = host::tiledAlign(engine, p.query, p.reference,
                                        host::TilingConfig{512, 192});
    EXPECT_GE(large.tiles, small.tiles);
}

TEST(Tiling, HandlesAsymmetricLengths)
{
    seq::Rng rng(47);
    auto p = makeLongPair(2000, 0.1, 48);
    // Append extra reference tail: global tiling must still consume it.
    const auto tail = seq::randomDna(300, rng);
    p.reference.chars.insert(p.reference.chars.end(), tail.chars.begin(),
                             tail.chars.end());
    sim::EngineConfig cfg;
    cfg.numPe = 32;
    cfg.maxQueryLength = 512;
    cfg.maxReferenceLength = 512;
    sim::SystolicAligner<kernels::GlobalAffine> engine(cfg);
    const auto tiled = host::tiledAlign(engine, p.query, p.reference,
                                        host::TilingConfig{512, 128});
    EXPECT_EQ(core::pathQuerySpan(tiled.ops), p.query.length());
    EXPECT_EQ(core::pathRefSpan(tiled.ops), p.reference.length());
}
